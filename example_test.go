package ssrec_test

import (
	"context"
	"errors"
	"fmt"

	"ssrec"
)

// The canonical v2 usage loop: train on history, then for each incoming
// item ask for its top-k users and feed observed interactions back in
// micro-batches.
func Example() {
	ds := ssrec.GenerateYTubeLike(0.2, 7)
	rec := ssrec.New(ssrec.Config{Categories: ds.Categories()})
	if err := rec.TrainDataset(ds, 1.0/3); err != nil {
		panic(err)
	}

	ctx := context.Background()
	items := ds.Items()
	incoming := items[len(items)-1]
	res, err := rec.RecommendCtx(ctx, incoming, ssrec.WithK(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("deliveries:", len(res.Recommendations) > 0)

	// Streaming maintenance: batched ingestion takes one write lock and
	// runs one index flush per micro-batch.
	report, err := rec.ObserveBatch(ctx, []ssrec.Observation{{
		UserID: res.Recommendations[0].UserID, Item: incoming, Timestamp: incoming.Timestamp + 1,
	}})
	if err != nil {
		panic(err)
	}
	fmt.Println("applied:", report.Applied)
	// Output:
	// deliveries: true
	// applied: 1
}

// RecommendBatch answers many items in one call; per-item failures are
// reported item-scoped instead of failing the batch.
func ExampleRecommender_RecommendBatch() {
	ds := ssrec.GenerateYTubeLike(0.2, 7)
	rec := ssrec.New(ssrec.Config{Categories: ds.Categories()})
	if err := rec.TrainDataset(ds, 1.0/3); err != nil {
		panic(err)
	}

	items := ds.Items()
	batch := []ssrec.Item{
		items[len(items)-1],
		{ID: "odd-one-out", Category: "not-a-category"},
	}
	results, err := rec.RecommendBatch(context.Background(), batch, ssrec.WithK(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("first ok:", results[0].Err == nil)
	fmt.Println("second rejected:", errorsIsUnknownCategory(results[1].Err))
	// Output:
	// first ok: true
	// second rejected: true
}

func errorsIsUnknownCategory(err error) bool { return errors.Is(err, ssrec.ErrUnknownCategory) }

// OpenSession is the paper's standing stream loop as an API: one ordered
// full-duplex stream of pushed observations and asked items, answered in
// admission order on the Results channel — every answer reflects exactly
// the events pushed before it. The wire form is POST /v2/session.
func ExampleRecommender_OpenSession() {
	ds := ssrec.GenerateYTubeLike(0.2, 7)
	rec := ssrec.New(ssrec.Config{Categories: ds.Categories()})
	if err := rec.TrainDataset(ds, 1.0/3); err != nil {
		panic(err)
	}

	ses := rec.OpenSession(context.Background(), ssrec.WithSessionBatch(32))
	answered := make(chan int)
	go func() {
		n := 0
		for res := range ses.Results() {
			if res.Err == nil && len(res.Recommendations) > 0 {
				n++
			}
		}
		answered <- n
	}()

	// Interleave the live stream: observations accumulate into micro-
	// batches; each Ask admits the pending batch first, then answers.
	items := ds.Items()
	interactions := ds.Interactions()
	for _, ir := range interactions[len(interactions)-40:] {
		if v, ok := ds.Item(ir.ItemID); ok {
			if err := ses.Push(ssrec.Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp}); err != nil {
				panic(err)
			}
		}
	}
	if err := ses.Ask(items[len(items)-1], ssrec.WithK(5)); err != nil {
		panic(err)
	}
	if err := ses.Close(); err != nil {
		panic(err)
	}

	st := ses.Stats()
	fmt.Println("answered:", <-answered)
	fmt.Println("observations admitted:", st.Admitted == st.Pushed && st.Pushed > 0)
	// Output:
	// answered: 1
	// observations admitted: true
}

// Open with WithShards serves the identical API from an n-shard
// scatter-gather deployment — same rankings, same scores, same order as
// the single engine (the conformance suite in internal/shard enforces
// it), with index maintenance split across the shards.
func ExampleOpen() {
	ds := ssrec.GenerateYTubeLike(0.15, 11)
	cfg := ssrec.Config{Categories: ds.Categories()}

	single := ssrec.Open(cfg)
	sharded := ssrec.Open(cfg, ssrec.WithShards(2))
	if err := single.TrainDataset(ds, 1.0/3); err != nil {
		panic(err)
	}
	if err := sharded.TrainDataset(ds, 1.0/3); err != nil {
		panic(err)
	}

	items := ds.Items()
	incoming := items[len(items)-1]
	ctx := context.Background()
	a, err := single.RecommendCtx(ctx, incoming, ssrec.WithK(5))
	if err != nil {
		panic(err)
	}
	b, err := sharded.RecommendCtx(ctx, incoming, ssrec.WithK(5))
	if err != nil {
		panic(err)
	}
	identical := len(a.Recommendations) == len(b.Recommendations)
	for i := range a.Recommendations {
		identical = identical && a.Recommendations[i] == b.Recommendations[i]
	}
	fmt.Println("shards:", sharded.Shards())
	fmt.Println("identical rankings:", identical)
	// Output:
	// shards: 2
	// identical rankings: true
}

// WithRemoteShards drives the same scatter-gather deployment over the
// network: one ssrec-shardd process per shard, dialed lazily, booted by
// the first Train (or Handoff) call, with failover while shards are
// down. This example needs running shardd processes, so it is compiled
// but not executed; start the fleet with
//
//	ssrec-shardd -addr :9101 -index 0 -of 2
//	ssrec-shardd -addr :9102 -index 1 -of 2
func ExampleWithRemoteShards() {
	ds := ssrec.GenerateYTubeLike(0.15, 11)
	rec := ssrec.Open(
		ssrec.Config{Categories: ds.Categories()},
		ssrec.WithRemoteShards("127.0.0.1:9101", "127.0.0.1:9102"),
	)
	// Train locally, snapshot, and hand the snapshot to every shardd.
	if err := rec.TrainDataset(ds, 1.0/3); err != nil {
		panic(err)
	}

	items := ds.Items()
	res, err := rec.RecommendCtx(context.Background(), items[len(items)-1], ssrec.WithK(10))
	if errors.Is(err, ssrec.ErrShardUnavailable) {
		// Degraded mode: a shard is down. res still ranks the users the
		// reachable shards own; recover with rec.Handoff(ctx, snapshot).
		fmt.Println("partial:", len(res.Recommendations))
	} else if err != nil {
		panic(err)
	}
	fmt.Println("deliveries:", len(res.Recommendations))
}

// Items are plain values; bring your own catalog instead of the generator.
func ExampleRecommender_Train() {
	items := []ssrec.Item{
		{ID: "v1", Category: "sports", Producer: "espn", Entities: []string{"Nadal"}, Timestamp: 100},
		{ID: "v2", Category: "sports", Producer: "espn", Entities: []string{"Federer"}, Timestamp: 200},
	}
	byID := map[string]ssrec.Item{"v1": items[0], "v2": items[1]}
	interactions := []ssrec.Interaction{
		{UserID: "john", ItemID: "v1", Timestamp: 150},
		{UserID: "john", ItemID: "v2", Timestamp: 250},
	}

	rec := ssrec.New(ssrec.Config{Categories: []string{"sports"}})
	err := rec.Train(items, interactions, func(id string) (ssrec.Item, bool) {
		v, ok := byID[id]
		return v, ok
	})
	fmt.Println("trained:", err == nil)
	// Output: trained: true
}

// Evaluate runs the paper's six-partition stream-simulation protocol.
func ExampleEvaluate() {
	ds := ssrec.GenerateYTubeLike(0.15, 3)
	res, err := ssrec.Evaluate(ssrec.Config{
		Categories:   ds.Categories(),
		TrainMaxIter: 4,
	}, ds, []int{10})
	if err != nil {
		panic(err)
	}
	fmt.Println("system:", res.System)
	fmt.Println("measured items:", res.ItemsTested > 0)
	// Output:
	// system: ssRec
	// measured items: true
}
