package ssrec_test

import (
	"fmt"

	"ssrec"
)

// The canonical usage loop: train on history, then for each incoming item
// ask for its top-k users and feed observed interactions back.
func Example() {
	ds := ssrec.GenerateYTubeLike(0.2, 7)
	rec := ssrec.New(ssrec.Config{Categories: ds.Categories()})
	if err := rec.TrainDataset(ds, 1.0/3); err != nil {
		panic(err)
	}

	items := ds.Items()
	incoming := items[len(items)-1]
	top := rec.Recommend(incoming, 3)
	fmt.Println("deliveries:", len(top) > 0)

	// Streaming maintenance keeps short-term windows and the index fresh.
	rec.Observe(ssrec.Interaction{
		UserID: top[0].UserID, ItemID: incoming.ID, Timestamp: incoming.Timestamp + 1,
	}, incoming)
	// Output: deliveries: true
}

// Items are plain values; bring your own catalog instead of the generator.
func ExampleRecommender_Train() {
	items := []ssrec.Item{
		{ID: "v1", Category: "sports", Producer: "espn", Entities: []string{"Nadal"}, Timestamp: 100},
		{ID: "v2", Category: "sports", Producer: "espn", Entities: []string{"Federer"}, Timestamp: 200},
	}
	byID := map[string]ssrec.Item{"v1": items[0], "v2": items[1]}
	interactions := []ssrec.Interaction{
		{UserID: "john", ItemID: "v1", Timestamp: 150},
		{UserID: "john", ItemID: "v2", Timestamp: 250},
	}

	rec := ssrec.New(ssrec.Config{Categories: []string{"sports"}})
	err := rec.Train(items, interactions, func(id string) (ssrec.Item, bool) {
		v, ok := byID[id]
		return v, ok
	})
	fmt.Println("trained:", err == nil)
	// Output: trained: true
}

// Evaluate runs the paper's six-partition stream-simulation protocol.
func ExampleEvaluate() {
	ds := ssrec.GenerateYTubeLike(0.15, 3)
	res, err := ssrec.Evaluate(ssrec.Config{
		Categories:   ds.Categories(),
		TrainMaxIter: 4,
	}, ds, []int{10})
	if err != nil {
		panic(err)
	}
	fmt.Println("system:", res.System)
	fmt.Println("measured items:", res.ItemsTested > 0)
	// Output:
	// system: ssRec
	// measured items: true
}
