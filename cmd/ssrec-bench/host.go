// host.go captures the run environment every BENCH artifact should pin
// (a throughput number without its core count is not comparable) and the
// optional /metrics scrape that snapshots a live fleet's counters into
// the same JSON artifact.
package main

import (
	"bufio"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
)

// hostInfo is the run-environment block embedded in every JSON artifact:
// scheduler width, physical core count, and the GC's view of the run.
type hostInfo struct {
	NumCPU         int    `json:"num_cpu"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
}

// captureHostInfo snapshots the environment; call it AFTER the measured
// section so the heap/GC numbers describe the run, not the startup.
func captureHostInfo() hostInfo {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return hostInfo{
		NumCPU:         runtime.NumCPU(),
		HeapAllocBytes: ms.HeapAlloc,
		GCPauseTotalNs: ms.PauseTotalNs,
	}
}

// scrapeMetrics fetches a Prometheus text exposition (the GET /metrics
// surface of ssrec-server / ssrec-shardd) and flattens it into
// name{labels} → value. Comment and malformed lines are skipped; the
// parser accepts exactly what internal/telemetry emits plus any other
// 0.0.4 text exposition.
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %s", url, resp.Status)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
