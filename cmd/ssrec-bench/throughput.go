// throughput.go is the serving-throughput mode of ssrec-bench: it trains
// an engine on the leading third of a generated stream, then replays the
// remaining items as concurrent Recommend requests against the RWMutex
// engine — optionally with concurrent writers ingesting the post-training
// interaction stream through ObserveBatch — reporting reader and writer
// throughput plus the per-item latency distribution.
//
//	ssrec-bench -throughput -parallel 8 -partitions 4 -writers 2 -batch 64 -json out.json
//
// -parallel   N  concurrent request workers (serving concurrency)
// -partitions M  intra-query worker count (core.Config.Parallelism,
//
//	the paper's Fig 10 partition axis with real goroutines)
//
// -writers    W  concurrent ingestion workers (0 = read-only replay)
// -batch      B  observe micro-batch size: B interactions per write-lock
//
//	acquisition + index flush (ObserveBatch); B <= 1 replays
//	the v1 per-interaction Observe path for comparison
//
// -shards     N  replay through an N-shard scatter-gather deployment
//
//	(internal/shard) booted from the trained engine's snapshot;
//	reader latency then includes the fan-out/merge and writers
//	measure the broadcast ingest with sharded leaf refreshes
//
// -remote-shards X  replay through REMOTE shardd endpoints over the shard
//
//	RPC transport (internal/shardrpc): X is either "N" — spawn N
//	loopback shards in-process (self-contained; still real TCP +
//	HTTP/2 + the bound-streaming protocol) — or a comma-separated
//	list of running ssrec-shardd addresses in shard-index order.
//	Either way the trained snapshot is pushed to every shard via
//	the handoff protocol before the replay; reader latency then
//	includes the network scatter/gather round trip
//
// -scatter stream|item  (with -remote-shards) multiplex every query over
//
//	one per-shard query stream (default), or open one HTTP/2
//	stream per item — the pre-mux wire behavior, kept for
//	before/after comparison (BENCH_PR5.json)
//
// -session  drive readers and writers through ordered Push/Ask sessions
//
//	(core.Session — the OpenSession path) instead of direct
//	Recommend/ObserveBatch calls
//
// -wal <dir>  (single-engine only) interpose the durable ingest WAL
//
//	(internal/wal via server.WrapWAL — the exact production wrapper)
//	between the writers and the engine: every write batch is logged,
//	and per -fsync fsynced, BEFORE it is applied, so the writer
//	numbers measure the durability tax on the ingest path
//
// -fsync batch|interval|off  (with -wal) the log's fsync policy; the
//
//	batch-vs-off spread is the raw fsync cost per micro-batch, and
//	interval sits between (bounded loss window, amortised syncs)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/model"
	"ssrec/internal/server"
	"ssrec/internal/shard"
	"ssrec/internal/shardrpc"
	"ssrec/internal/wal"
)

// throughputConfig is the parsed flag set of the throughput mode.
type throughputConfig struct {
	Scale        float64
	Seed         int64
	Parallel     int
	Partitions   int
	Shards       int
	Replicas     int
	RemoteShards string
	Writers      int
	Batch        int
	K            int
	Session      bool
	Scatter      string // "stream" (multiplexed, default) or "item"
	WALDir       string // non-empty: wrap the single engine with the durable ingest WAL
	Fsync        string // WAL fsync policy: "batch", "interval" or "off"
	JSONPath     string
	ScrapeURL    string // non-empty: snapshot this /metrics exposition into the artifact
}

// bootRemoteShards stands up the -remote-shards deployment: a numeric
// spec "N" spawns N loopback shard servers in-process (still real TCP,
// HTTP/2 and the bound-streaming protocol — the self-contained way to
// measure the RPC transport), anything else is a comma-separated list of
// running ssrec-shardd addresses in shard-index order. Either way the
// trained engine's snapshot is pushed to every shard over the handoff
// protocol before the replay starts. scatter "item" disables the
// multiplexed query stream (one HTTP/2 stream per item — the pre-mux
// behavior, kept measurable for BENCH_PR5.json comparisons). replicas > 1
// replicates every slot that many ways: a numeric spec spawns N*replicas
// loopback servers (slot-major), an address list must already be
// slot-major with N*replicas entries; writes broadcast to every replica
// and reads load-balance across them, so the R=1 vs R=2 read numbers
// measure the replica fan-in directly.
func bootRemoteShards(eng *core.Engine, spec, scatter string, replicas int) (*shard.Router, int) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "throughput: "+format+"\n", args...)
		os.Exit(1)
	}
	if replicas < 1 {
		replicas = 1
	}
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		fail("snapshot: %v", err)
	}
	var addrs []string
	if n, err := strconv.Atoi(spec); err == nil {
		if n < 1 {
			fail("-remote-shards %q: need at least 1 shard", spec)
		}
		for i := 0; i < n*replicas; i++ {
			srv, err := shardrpc.NewServer(i/replicas, n)
			if err != nil {
				fail("shard %d: %v", i/replicas, err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fail("shard %d: listen: %v", i/replicas, err)
			}
			go srv.NewHTTPServer(ln.Addr().String()).Serve(ln) //nolint:errcheck // lives for the process
			addrs = append(addrs, ln.Addr().String())
		}
		fmt.Fprintf(os.Stderr, "spawned %d loopback shards (%d slots x %d replicas): %s\n",
			n*replicas, n, replicas, strings.Join(addrs, ","))
	} else {
		addrs = shardrpc.SplitAddrs(spec)
		if len(addrs) == 0 {
			fail("-remote-shards %q: no addresses", spec)
		}
		if len(addrs)%replicas != 0 {
			fail("-remote-shards: %d addresses not divisible by -replicas %d", len(addrs), replicas)
		}
	}
	n := len(addrs) / replicas
	slots := make([]shard.Shard, n)
	for i := 0; i < n; i++ {
		group := make([]shard.Shard, replicas)
		for j := 0; j < replicas; j++ {
			c := shardrpc.NewClient(addrs[i*replicas+j], i, n)
			c.DisableMuxScatter = scatter == "item"
			group[j] = c
		}
		if replicas == 1 {
			slots[i] = group[0]
		} else {
			rs, err := shard.NewReplicaSet(i, group...)
			if err != nil {
				fail("slot %d: %v", i, err)
			}
			slots[i] = rs
		}
	}
	router, err := shard.NewRouter(slots...)
	if err != nil {
		fail("assemble remote deployment: %v", err)
	}
	if err := router.HandoffSnapshot(context.Background(), buf.Bytes()); err != nil {
		fail("snapshot handoff: %v", err)
	}
	return router, n
}

// benchBackend is the serving surface the replay drives — one engine or a
// sharded router, interchangeably. It is a superset of core.SessionBackend
// so -session can open sessions over it.
type benchBackend interface {
	Recommend(v model.Item, k int) []model.Recommendation
	Observe(ir model.Interaction, v model.Item)
	ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error)
	RecommendBatch(ctx context.Context, items []model.Item, opts ...core.Option) ([]core.Result, error)
	RegisterItem(v model.Item)
}

// ThroughputResult is the JSON report of one throughput run.
type ThroughputResult struct {
	Bench      string  `json:"bench"`
	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	GoMaxProcs int     `json:"gomaxprocs"`
	hostInfo
	K           int     `json:"k"`
	Parallel    int     `json:"parallel"`            // concurrent request workers
	Partitions  int     `json:"partitions"`          // intra-query parallelism
	Shards      int     `json:"shards"`              // scatter-gather deployment width (1 = single engine)
	Replicas    int     `json:"replicas,omitempty"`  // replicas per shard slot (omitted when 1)
	Transport   string  `json:"transport,omitempty"` // "rpc" when the shards are remote (loopback or external)
	Scatter     string  `json:"scatter,omitempty"`   // "stream" (multiplexed) or "item" (one h2 stream per item); rpc only
	Session     bool    `json:"session,omitempty"`   // replay driven through sessions (Push/Ask) instead of direct calls
	Items       int     `json:"items"`
	TotalSec    float64 `json:"total_sec"`
	ItemsPerSec float64 `json:"items_per_sec"`
	MeanUs      float64 `json:"mean_us"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	MaxUs       float64 `json:"max_us"`

	// Writer-side numbers (zero when -writers 0).
	Writers             int     `json:"writers,omitempty"`
	Batch               int     `json:"batch,omitempty"`
	WriterItems         int     `json:"writer_items,omitempty"`
	WriterSec           float64 `json:"writer_sec,omitempty"`
	WriterItemsPerSec   float64 `json:"writer_items_per_sec,omitempty"`
	WriterFlushedUsers  int     `json:"writer_flushed_users,omitempty"`
	WriterLockAcquires  int     `json:"writer_lock_acquires,omitempty"`
	WriterObservePath   string  `json:"writer_observe_path,omitempty"` // "observe" (v1) or "observe_batch" (v2)
	WriterMeanBatchSize float64 `json:"writer_mean_batch_size,omitempty"`

	// Durable-ingest numbers (zero without -wal).
	WALDir     string `json:"wal_dir,omitempty"`
	WALFsync   string `json:"wal_fsync,omitempty"`
	WALAppends uint64 `json:"wal_appends,omitempty"`
	WALSyncs   uint64 `json:"wal_syncs,omitempty"`
	WALBytes   int64  `json:"wal_bytes,omitempty"`

	// ScrapedMetrics snapshots a live /metrics exposition into the
	// artifact when -scrape-metrics is given (name{labels} → value).
	ScrapedMetrics map[string]float64 `json:"scraped_metrics,omitempty"`
}

func runThroughput(tc throughputConfig) {
	scale, seed := tc.Scale, tc.Seed
	parallel, partitions, shards := tc.Parallel, tc.Partitions, tc.Shards
	remoteShards, writers, batch, k := tc.RemoteShards, tc.Writers, tc.Batch, tc.K
	jsonPath := tc.JSONPath
	if parallel < 1 {
		parallel = 1
	}
	if batch < 1 {
		batch = 1
	}
	if shards < 1 {
		shards = 1
	}
	if tc.Scatter != "item" && tc.Scatter != "stream" {
		fmt.Fprintf(os.Stderr, "throughput: -scatter must be \"stream\" or \"item\", got %q\n", tc.Scatter)
		os.Exit(1)
	}
	cfg := dataset.YTubeConfig(scale)
	cfg.Seed = seed
	ds := dataset.Generate(cfg)
	eng := core.New(core.Config{
		Categories:  ds.Categories,
		Parallelism: partitions,
		Seed:        seed,
	})
	nTrain := len(ds.Interactions) / 3
	if nTrain < 1 {
		fmt.Fprintf(os.Stderr, "throughput: dataset too small at scale %v (%d interactions)\n",
			scale, len(ds.Interactions))
		os.Exit(1)
	}
	if err := eng.Train(ds.Items, ds.Interactions[:nTrain], ds.Item); err != nil {
		fmt.Fprintf(os.Stderr, "throughput: train: %v\n", err)
		os.Exit(1)
	}
	// Replay items newer than the training horizon as queries.
	lastTS := ds.Interactions[nTrain-1].Timestamp
	var queries []model.Item
	for _, v := range ds.Items {
		if v.Timestamp > lastTS {
			queries = append(queries, v)
		}
	}
	if len(queries) == 0 {
		queries = ds.Items
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "throughput: no items to replay")
		os.Exit(1)
	}
	// Sharded serving: boot an N-shard deployment from the trained
	// engine's snapshot — in-process (-shards) or over the shard RPC
	// transport (-remote-shards) — and replay through the scatter-gather
	// router.
	var backend benchBackend = eng
	transport := ""
	if remoteShards != "" {
		router, n := bootRemoteShards(eng, remoteShards, tc.Scatter, tc.Replicas)
		backend, shards, transport = router, n, "rpc"
	} else if shards > 1 {
		var buf bytes.Buffer
		if err := eng.SaveTo(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "throughput: snapshot: %v\n", err)
			os.Exit(1)
		}
		router, err := shard.FromSnapshot(buf.Bytes(), shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "throughput: boot shards: %v\n", err)
			os.Exit(1)
		}
		backend = router
	}

	// Register every item up front so the measured section stays on the
	// read-locked path (registration is the write-lock upgrade).
	for _, v := range queries {
		backend.RegisterItem(v)
	}

	// -wal: interpose the durable ingest log — through server.WrapWAL, the
	// exact production wrapper — AFTER the boot-state setup (training and
	// registrations), anchored by a checkpoint the way a daemon anchors
	// its boot, so the log captures only the measured writes.
	var walLog *wal.Log
	if tc.WALDir != "" {
		if transport != "" || shards > 1 {
			fmt.Fprintln(os.Stderr, "throughput: -wal measures the single-engine ingest path; sharded durability lives in ssrec-shardd -wal-dir")
			os.Exit(1)
		}
		policy, err := wal.ParsePolicy(tc.Fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "throughput: -fsync: %v\n", err)
			os.Exit(1)
		}
		walLog, err = wal.Open(wal.Options{Dir: tc.WALDir, Policy: policy, SyncInterval: 100 * time.Millisecond})
		if err != nil {
			fmt.Fprintf(os.Stderr, "throughput: open wal %s: %v\n", tc.WALDir, err)
			os.Exit(1)
		}
		wb := server.WrapWAL(eng, walLog)
		if err := wb.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "throughput: wal checkpoint: %v\n", err)
			os.Exit(1)
		}
		backend = wb
	}

	// Writer stream: the post-training interactions, resolved to items.
	var obs []core.Observation
	if writers > 0 {
		for _, ir := range ds.Interactions[nTrain:] {
			v, ok := ds.Item(ir.ItemID)
			if !ok {
				continue
			}
			obs = append(obs, core.Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp})
		}
	}

	latencies := make([]time.Duration, len(queries))
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// -session: each worker is one continuous-recommendation
			// client — Ask on an ordered session stream, await the pushed
			// answer — measuring the session path end to end.
			var ses *core.Session
			if tc.Session {
				ses = core.NewSession(context.Background(), backend)
				defer ses.Close()
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				t0 := time.Now()
				if ses != nil {
					if err := ses.Ask(queries[i], core.WithK(k)); err != nil {
						return
					}
					<-ses.Results() // ordered: the one pending ask's answer
				} else {
					backend.Recommend(queries[i], k)
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}

	// Concurrent writers: contiguous shards of the interaction stream,
	// ingested in micro-batches of `batch` (one write lock + one index
	// flush per micro-batch). batch <= 1 replays the v1 per-interaction
	// Observe path as the amortisation baseline.
	var (
		writerWG sync.WaitGroup
		// writerEndNs is the elapsed-since-start time of the last writer
		// to finish (atomic max): writers start with the readers, so this
		// is the writer-side wall clock even when readers run longer.
		writerEndNs   atomic.Int64
		flushedUsers  atomic.Int64
		lockAcquires  atomic.Int64
		writerApplied atomic.Int64
	)
	if writers > 0 && len(obs) > 0 {
		shard := (len(obs) + writers - 1) / writers
		for w := 0; w < writers; w++ {
			lo := w * shard
			hi := min(lo+shard, len(obs))
			if lo >= hi {
				continue
			}
			writerWG.Add(1)
			go func(chunk []core.Observation) {
				defer writerWG.Done()
				if tc.Session {
					// -session: one ordered ingest stream per writer; the
					// session micro-batches Pushes into ObserveBatch calls.
					ses := core.NewSession(context.Background(), backend,
						core.WithSessionBatch(batch))
					for _, o := range chunk {
						if ses.Push(o) != nil {
							break
						}
					}
					ses.Close() //nolint:errcheck // stats read below
					st := ses.Stats()
					writerApplied.Add(int64(st.Admitted))
					flushedUsers.Add(int64(st.Flushed))
					lockAcquires.Add(int64(st.Batches))
				} else {
					for len(chunk) > 0 {
						n := min(batch, len(chunk))
						if batch <= 1 {
							o := chunk[0]
							backend.Observe(model.Interaction{UserID: o.UserID, ItemID: o.Item.ID, Timestamp: o.Timestamp}, o.Item)
							writerApplied.Add(1)
						} else {
							rep, _ := backend.ObserveBatch(context.Background(), chunk[:n])
							writerApplied.Add(int64(rep.Applied))
							flushedUsers.Add(int64(rep.Flushed))
						}
						lockAcquires.Add(1)
						chunk = chunk[n:]
					}
				}
				end := time.Since(start).Nanoseconds()
				for {
					old := writerEndNs.Load()
					if end <= old || writerEndNs.CompareAndSwap(old, end) {
						break
					}
				}
			}(obs[lo:hi])
		}
	}

	wg.Wait()
	total := time.Since(start)
	writerWG.Wait()
	writerWall := time.Duration(writerEndNs.Load())

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	var sum time.Duration
	for _, d := range latencies {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	res := ThroughputResult{
		Bench:       "throughput",
		Dataset:     ds.Name,
		Scale:       scale,
		Seed:        seed,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		hostInfo:    captureHostInfo(),
		K:           k,
		Parallel:    parallel,
		Partitions:  partitions,
		Shards:      shards,
		Transport:   transport,
		Session:     tc.Session,
		Items:       len(queries),
		TotalSec:    total.Seconds(),
		ItemsPerSec: float64(len(queries)) / total.Seconds(),
		MeanUs:      us(sum / time.Duration(len(latencies))),
		P50Us:       us(pct(0.50)),
		P99Us:       us(pct(0.99)),
		MaxUs:       us(latencies[len(latencies)-1]),
	}
	if res.Transport == "rpc" {
		res.Scatter = tc.Scatter
		if tc.Replicas > 1 {
			res.Replicas = tc.Replicas
		}
	}
	shardsDesc := fmt.Sprintf("%d shards", res.Shards)
	if res.Transport == "rpc" {
		shardsDesc = fmt.Sprintf("%d remote shards (scatter=%s)", res.Shards, res.Scatter)
		if res.Replicas > 1 {
			shardsDesc += fmt.Sprintf(" x%d replicas", res.Replicas)
		}
	}
	mode := ""
	if res.Session {
		mode = ", sessions"
	}
	fmt.Printf("throughput: %d items, %d workers, %d partitions, %s%s: %.0f items/sec  p50=%.0fµs p99=%.0fµs\n",
		res.Items, res.Parallel, res.Partitions, shardsDesc, mode, res.ItemsPerSec, res.P50Us, res.P99Us)
	if writers > 0 && writerWall > 0 {
		res.Writers = writers
		res.Batch = batch
		res.WriterItems = int(writerApplied.Load())
		res.WriterSec = writerWall.Seconds()
		res.WriterItemsPerSec = float64(writerApplied.Load()) / writerWall.Seconds()
		res.WriterFlushedUsers = int(flushedUsers.Load())
		res.WriterLockAcquires = int(lockAcquires.Load())
		res.WriterObservePath = "observe_batch"
		if batch <= 1 {
			res.WriterObservePath = "observe"
		}
		if n := lockAcquires.Load(); n > 0 {
			res.WriterMeanBatchSize = float64(writerApplied.Load()) / float64(n)
		}
		fmt.Printf("ingest:     %d interactions, %d writers, batch=%d (%s): %.0f interactions/sec, %d lock acquisitions\n",
			res.WriterItems, res.Writers, res.Batch, res.WriterObservePath, res.WriterItemsPerSec, res.WriterLockAcquires)
	}
	if walLog != nil {
		st := walLog.Stats()
		res.WALDir, res.WALFsync = st.Dir, string(st.Policy)
		res.WALAppends, res.WALSyncs, res.WALBytes = st.Appends, st.Syncs, st.Bytes
		fmt.Printf("wal:        %s fsync=%s: %d appends, %d syncs, %d bytes\n",
			res.WALDir, res.WALFsync, res.WALAppends, res.WALSyncs, res.WALBytes)
		walLog.Close() //nolint:errcheck // report already captured
	}
	if tc.ScrapeURL != "" {
		m, err := scrapeMetrics(tc.ScrapeURL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "throughput: scrape-metrics: %v\n", err)
			os.Exit(1)
		}
		res.ScrapedMetrics = m
		fmt.Fprintf(os.Stderr, "scraped %d metric series from %s\n", len(m), tc.ScrapeURL)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "throughput: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "throughput: encode: %v\n", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
}
