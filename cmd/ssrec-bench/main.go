// Command ssrec-bench regenerates every table and figure of the paper's
// evaluation section (Zhou et al., ICDE 2019, §VI) plus the ablations, and
// prints the rows in the order the paper reports them.
//
// Usage:
//
//	ssrec-bench                     # run everything at the default scale
//	ssrec-bench -exp fig8,fig10     # selected experiments
//	ssrec-bench -scale 1.0          # larger datasets (slower, sharper shapes)
//	ssrec-bench -quick              # coarse grids for a fast pass
//
// Throughput mode replays the post-training item stream as concurrent
// Recommend requests and reports items/sec plus P50/P99 per-item latency
// (optionally as JSON):
//
//	ssrec-bench -throughput -parallel 8 -partitions 4 -json out.json
//
// Refresh mode runs the index-refresh micro-benchmark family (the write
// path the dirty-category masks optimise) and reports ns/op, B/op and
// allocs/op per scenario:
//
//	ssrec-bench -refresh -json refresh.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ssrec/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiments: table2,table3,fig5,fig6,fig7,fig8,fig9,fig10,fig11,ablations")
		scale     = flag.Float64("scale", 0.5, "dataset scale factor")
		seed      = flag.Int64("seed", 42, "base random seed")
		quick     = flag.Bool("quick", false, "coarse parameter grids and item caps")
		fig67Data = flag.String("sweepdata", "YTube", "dataset for the fig6/fig7 sweeps (YTube or MLens)")

		throughput   = flag.Bool("throughput", false, "serving-throughput mode (items/sec, P50/P99 latency)")
		refresh      = flag.Bool("refresh", false, "index-refresh micro-benchmark mode (ns/op per refresh scenario)")
		parallel     = flag.Int("parallel", 1, "throughput mode: concurrent Recommend workers")
		partitions   = flag.Int("partitions", 1, "throughput mode: intra-query partitions (Config.Parallelism)")
		shards       = flag.Int("shards", 1, "throughput mode: serve through an N-shard scatter-gather deployment")
		remoteShards = flag.String("remote-shards", "", "throughput mode: serve through REMOTE shardd endpoints — either \"N\" (spawn N loopback shards in-process) or comma-separated shardd addresses in shard-index order; the trained snapshot is pushed via the handoff protocol")
		replicas     = flag.Int("replicas", 1, "throughput mode: replicas per -remote-shards slot (numeric spec spawns shards*R loopback servers, address lists must be slot-major with shards*R entries)")
		writers      = flag.Int("writers", 0, "throughput mode: concurrent ObserveBatch ingestion workers (0 = read-only)")
		batch        = flag.Int("batch", 64, "throughput mode: observe micro-batch size (<=1 replays per-item Observe)")
		topK         = flag.Int("k", 30, "throughput mode: recommendations per item")
		session      = flag.Bool("session", false, "throughput mode: drive readers and writers through OpenSession-style sessions (one ordered Push/Ask stream per worker) instead of direct calls")
		scatter      = flag.String("scatter", "stream", "throughput mode, -remote-shards only: scatter transport — \"stream\" multiplexes every query over one per-shard query stream, \"item\" opens one HTTP/2 stream per item (the pre-mux wire behavior, for comparison)")
		walDir       = flag.String("wal", "", "throughput mode, single-engine only: durable ingest WAL directory — every write batch is logged (and per -fsync, fsynced) before it is applied, measuring the durability tax on the ingest path")
		fsync        = flag.String("fsync", "batch", "throughput mode, -wal only: fsync policy — batch (sync before every ack), interval (background 100ms ticker), off (OS page cache only)")
		jsonOut      = flag.String("json", "", "throughput mode: write the JSON report here")
		scrapeURL    = flag.String("scrape-metrics", "", "throughput/refresh modes: after the run, scrape this /metrics URL (ssrec-server or ssrec-shardd) and embed the series in the JSON artifact")
	)
	flag.Parse()

	if *refresh {
		runRefresh(*jsonOut, *scrapeURL)
		return
	}
	if *throughput {
		runThroughput(throughputConfig{
			Scale: *scale, Seed: *seed, Parallel: *parallel, Partitions: *partitions,
			Shards: *shards, Replicas: *replicas, RemoteShards: *remoteShards, Writers: *writers, Batch: *batch,
			K: *topK, Session: *session, Scatter: *scatter, WALDir: *walDir, Fsync: *fsync, JSONPath: *jsonOut,
			ScrapeURL: *scrapeURL,
		})
		return
	}

	o := experiments.Options{Scale: *scale, Seed: *seed, Quick: *quick, Ks: []int{5, 10, 20, 30}}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(name string) bool { return all || want[name] }
	start := time.Now()

	if run("table2") {
		section("Table II — user-profile signature size vs user block count (YTube)")
		for _, r := range experiments.Table2(o) {
			fmt.Printf("  blocks=%-3d maxEntityNum=%-6d maxProducerNum=%d\n", r.Blocks, r.MaxEntity, r.MaxProducer)
		}
	}
	if run("table3") {
		section("Table III — overview of datasets")
		for _, s := range experiments.Table3(o) {
			fmt.Printf("  %s\n", s)
		}
	}
	if run("fig5") {
		section("Fig. 5 — BiHMM vs HMM prediction accuracy, grouped by optimal hidden states")
		for _, r := range experiments.Fig5(o) {
			fmt.Printf("  %-9s states=%d users=%-3d HMM=%.3f BiHMM=%.3f\n",
				r.Dataset, r.States, r.Users, r.HMM, r.BiHMM)
		}
	}
	if run("fig6") {
		section(fmt.Sprintf("Fig. 6 — effect of short-term window size |W| (%s, best λs per point)", *fig67Data))
		for _, r := range experiments.Fig6(o, *fig67Data) {
			fmt.Printf("  |W|=%-3.0f %s\n", r.X, experiments.FormatPAtK(r.PAtK, o.Ks))
		}
	}
	if run("fig7") {
		section(fmt.Sprintf("Fig. 7 — effect of short-term weight λs (%s, |W|=5)", *fig67Data))
		for _, r := range experiments.Fig7(o, *fig67Data) {
			fmt.Printf("  λs=%-5.2f %s\n", r.X, experiments.FormatPAtK(r.PAtK, o.Ks))
		}
	}
	if run("fig8") {
		section("Fig. 8 — effectiveness comparison (CTT / UCD / ssRec-ne / ssRec)")
		for _, r := range experiments.Fig8(o) {
			fmt.Printf("  %-9s %-9s %s\n", r.Dataset, r.System, experiments.FormatPAtK(r.PAtK, o.Ks))
		}
	}
	if run("fig9") {
		section("Fig. 9 — effect of user profile updates (ssRec-nu vs ssRec)")
		for _, r := range experiments.Fig9(o) {
			fmt.Printf("  %-9s %-9s %s\n", r.Dataset, r.System, experiments.FormatPAtK(r.PAtK, o.Ks))
		}
	}
	if run("fig10") {
		section("Fig. 10 — per-item response time vs number of partitions (k=30)")
		for _, r := range experiments.Fig10(o) {
			fmt.Printf("  %-9s %-12s partitions=%d perItem=%v\n", r.Dataset, r.System, r.Partitions, r.PerItem)
		}
	}
	if run("fig11") {
		section("Fig. 11 — cumulative index update cost vs update size")
		for _, r := range experiments.Fig11(o) {
			fmt.Printf("  %-9s partitions=%d total=%v\n", r.Dataset, r.Partitions, r.Total)
		}
	}
	if run("ablations") {
		section("Ablation — upper-bound pruning (Alg. 1) vs full candidate scan")
		fmt.Printf("  %s\n", experiments.AblationPruning(o))
		section("Ablation — user block count vs tree width and query latency")
		for _, r := range experiments.AblationBlocks(o) {
			fmt.Printf("  %s\n", r)
		}
		section("Ablation — shift-add-xor chained hash table vs Go map")
		fmt.Printf("  %s\n", experiments.AblationHash(o))
		section("Ablation — entity expansion cost and effectiveness")
		for _, r := range experiments.AblationExpansion(o) {
			fmt.Printf("  %s\n", r)
		}
	}

	fmt.Fprintf(os.Stderr, "\ntotal: %v (scale=%.2f quick=%v)\n", time.Since(start).Round(time.Millisecond), *scale, *quick)
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
