// refresh.go is the index-refresh micro-benchmark mode of ssrec-bench: it
// measures the write-path cost of keeping the CPPse-index consistent with
// a mutating profile — the per-flush work the dirty-category masks cut —
// through the same scenario family as the internal/cppse benchmarks, but
// runnable standalone (and in CI) with a JSON artifact:
//
//	ssrec-bench -refresh -json refresh.json
//
// Scenarios:
//
//	cold_user        first refresh of a brand-new user (block assignment
//	                 plus leaf inserts) — cost masks cannot avoid
//	one_dirty_masked one observation in ONE of the user's categories,
//	                 masked refresh (rebuild one leaf, restamp the rest)
//	one_dirty_full   the same stream through the rebuild-everything path —
//	                 the before/after axis of the masks
//	window_roll      every observation rolls the short-term window, so the
//	                 all-dirty sentinel forces full rebuilds — the masked
//	                 path's upper bound
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"ssrec/internal/cppse"
	"ssrec/internal/profile"
)

// refreshScenario is one measured row of the refresh family.
type refreshScenario struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// refreshReport is the JSON artifact of -refresh.
type refreshReport struct {
	Bench      string `json:"bench"`
	GoMaxProcs int    `json:"gomaxprocs"`
	hostInfo
	Users      int               `json:"users"`
	WindowSize int               `json:"window_size"`
	Scenarios  []refreshScenario `json:"scenarios"`

	// ScrapedMetrics snapshots a live /metrics exposition into the
	// artifact when -scrape-metrics is given (name{labels} → value).
	ScrapedMetrics map[string]float64 `json:"scraped_metrics,omitempty"`
}

// refreshFixture builds a three-cohort store (the internal/cppse test
// fixture's shape, scaled) and an index over it.
func refreshFixture(nPerCohort int) (*cppse.Index, *profile.Store) {
	cats := []string{"sports", "music", "news"}
	store := profile.NewStore(5)
	mkEvent := func(cat string, i int) profile.Event {
		return profile.Event{
			Category: cat,
			Producer: fmt.Sprintf("%s-up%d", cat, i%3),
			Entities: []string{fmt.Sprintf("%s-e%d", cat, i%8)},
		}
	}
	for c := 0; c < nPerCohort; c++ {
		sports := store.Get(fmt.Sprintf("sports%03d", c))
		music := store.Get(fmt.Sprintf("music%03d", c))
		mixed := store.Get(fmt.Sprintf("mixed%03d", c))
		for i := 0; i < 20; i++ {
			sports.ObserveLongTerm(mkEvent("sports", i+c))
			music.ObserveLongTerm(mkEvent("music", i+c))
			if i%2 == 0 {
				mixed.ObserveLongTerm(mkEvent("sports", i+c))
			} else {
				mixed.ObserveLongTerm(mkEvent("news", i+c))
			}
		}
	}
	bg := profile.NewBackground(nil, 10)
	probs := cppse.MLEProbs{Store: store, NCats: len(cats)}
	ix, err := cppse.Build(store, bg, probs, cppse.Config{Categories: cats})
	if err != nil {
		fmt.Fprintf(os.Stderr, "refresh: build index: %v\n", err)
		os.Exit(1)
	}
	return ix, store
}

// mixedRefreshEvent cycles through the three fixture categories.
func mixedRefreshEvent(i int) profile.Event {
	cats := []string{"sports", "music", "news"}
	cat := cats[i%3]
	return profile.Event{
		Category: cat,
		Producer: fmt.Sprintf("%s-up%d", cat, i%3),
		Entities: []string{fmt.Sprintf("%s-e%d", cat, i%8)},
	}
}

// inhabitAllCats gives the target user long-term history in all three
// fixture categories, so the one-dirty scenarios measure a user whose
// non-dirty leaves are real (the heavy-tailed steady state masks target).
func inhabitAllCats(p *profile.Profile) {
	for i := 0; i < 30; i++ {
		p.ObserveLongTerm(mixedRefreshEvent(i))
	}
}

func runRefresh(jsonPath, scrapeURL string) {
	const nPerCohort = 100
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "refresh: %v\n", err)
		os.Exit(1)
	}

	scenarios := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"cold_user", func(b *testing.B) {
			ix, store := refreshFixture(nPerCohort)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := fmt.Sprintf("cold%06d", i)
				p := store.Get(id)
				for j := 0; j < 6; j++ {
					p.ObserveLongTerm(mixedRefreshEvent(j))
				}
				if err := ix.UpdateUserCats(id, nil, true); err != nil {
					fail(err)
				}
			}
		}},
		{"one_dirty_masked", func(b *testing.B) {
			ix, store := refreshFixture(nPerCohort)
			p, _ := store.Lookup("mixed000")
			inhabitAllCats(p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rolled := p.Observe(profile.Event{Category: "sports", Producer: "sports-up0",
					Entities: []string{fmt.Sprintf("sports-e%d", i%6)}})
				if err := ix.UpdateUserCats("mixed000", []string{"sports"}, rolled); err != nil {
					fail(err)
				}
			}
		}},
		{"one_dirty_full", func(b *testing.B) {
			ix, store := refreshFixture(nPerCohort)
			p, _ := store.Lookup("mixed000")
			inhabitAllCats(p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Observe(profile.Event{Category: "sports", Producer: "sports-up0",
					Entities: []string{fmt.Sprintf("sports-e%d", i%6)}})
				if err := ix.UpdateUserCats("mixed000", nil, true); err != nil {
					fail(err)
				}
			}
		}},
		{"window_roll", func(b *testing.B) {
			ix, store := refreshFixture(nPerCohort)
			p, _ := store.Lookup("mixed000")
			inhabitAllCats(p)
			// Fill the window so every subsequent observation rolls it.
			for i := 0; i < p.WindowSize(); i++ {
				p.Observe(mixedRefreshEvent(i))
			}
			if err := ix.UpdateUserCats("mixed000", nil, true); err != nil {
				fail(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rolled := p.Observe(mixedRefreshEvent(i))
				if err := ix.UpdateUserCats("mixed000", []string{"sports"}, rolled); err != nil {
					fail(err)
				}
			}
		}},
	}

	rep := refreshReport{Bench: "refresh", Users: 3 * nPerCohort, WindowSize: 5}
	for _, sc := range scenarios {
		r := testing.Benchmark(sc.fn)
		row := refreshScenario{
			Name:        sc.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		rep.Scenarios = append(rep.Scenarios, row)
		fmt.Printf("refresh/%-17s %12.0f ns/op %8d B/op %6d allocs/op  (%d iterations)\n",
			row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, row.Iterations)
	}

	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.hostInfo = captureHostInfo()
	if scrapeURL != "" {
		m, err := scrapeMetrics(scrapeURL)
		if err != nil {
			fail(err)
		}
		rep.ScrapedMetrics = m
		fmt.Fprintf(os.Stderr, "scraped %d metric series from %s\n", len(m), scrapeURL)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
}
