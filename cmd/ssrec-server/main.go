// Command ssrec-server serves a trained ssRec engine over the JSON HTTP
// API of internal/server (v2 batch-first protocol + deprecated v1).
//
// Either load a model saved with the library's persistence support:
//
//	ssrec-server -model engine.bin -addr :8080
//
// or bootstrap a demo engine on generated data:
//
//	ssrec-server -demo -scale 0.3 -addr :8080
//
// Either way, -shards N serves the same snapshot as an N-shard
// scatter-gather deployment (internal/shard): identical wire responses,
// with per-shard entries in /v2/stats:
//
//	ssrec-server -demo -shards 4 -addr :8080
//
// and -shard-addrs serves it from REMOTE shardd processes
// (cmd/ssrec-shardd) instead — the snapshot is pushed to every address
// over the handoff protocol, then queries scatter-gather over HTTP/2 with
// shared-lower-bound pruning and failover (see OPERATIONS.md):
//
//	ssrec-shardd -addr :9101 -index 0 -of 2 &
//	ssrec-shardd -addr :9102 -index 1 -of 2 &
//	ssrec-server -demo -shard-addrs 127.0.0.1:9101,127.0.0.1:9102 -addr :8080
//
// -replicas R replicates every shard slot R ways for fault-tolerant
// reads: the -shard-addrs list becomes slot-major with shards*R entries
// (slot i's replicas are entries i*R .. i*R+R-1), writes broadcast to all
// replicas of a slot, reads load-balance across the healthy ones, and a
// background supervisor (-supervise) auto-reseeds crashed replicas from a
// healthy sibling:
//
//	ssrec-server -demo -replicas 2 \
//	  -shard-addrs 127.0.0.1:9101,127.0.0.1:9102,127.0.0.1:9201,127.0.0.1:9202
//
// Then:
//
//	curl -s localhost:8080/v2/stats
//	curl -s -X POST localhost:8080/v2/recommend \
//	  -d '{"items":[{"id":"x","category":"cat02","producer":"up0003","entities":["c02e001"]}],"k":5}'
//	printf '%s\n' '{"user_id":"u1","item":{"id":"x","category":"cat02"},"timestamp":1}' |
//	  curl -s -X POST --data-binary @- localhost:8080/v2/observe
//
// The server drains gracefully on SIGINT/SIGTERM: in-flight requests get
// -drain-timeout to finish before the listener is torn down.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/server"
	"ssrec/internal/shard"
	"ssrec/internal/shardrpc"
	"ssrec/internal/telemetry"
	"ssrec/internal/wal"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		model = flag.String("model", "", "path to a saved engine (core.SaveFile format)")
		demo  = flag.Bool("demo", false, "bootstrap a demo engine on generated data")
		scale = flag.Float64("scale", 0.3, "demo dataset scale")
		seed  = flag.Int64("seed", 42, "demo dataset seed")

		partitions = flag.Int("partitions", 1, "intra-query search partitions (Config.Parallelism); overrides a loaded model's setting")
		shards     = flag.Int("shards", 1, "serve an N-shard scatter-gather deployment (every shard boots from the same model/demo snapshot)")
		replicas   = flag.Int("replicas", 1, "replicate every shard slot R ways: writes broadcast to all replicas, reads load-balance across healthy ones; with -shard-addrs the list must be slot-major with shards*R entries")
		supervise  = flag.Duration("supervise", shard.DefaultSupervisorInterval, "replica supervisor sweep interval (auto-reseed of stale/blank replicas from a healthy sibling; 0 disables; only with -replicas > 1)")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated ssrec-shardd addresses (shard-index order, or slot-major with -replicas); serve a remote deployment, pushing the model/demo snapshot to every shard")
		save       = flag.String("save", "", "after -demo training, save the engine here (core.SaveFile format)")

		maxK         = flag.Int("max-k", 100, "cap on per-request k")
		maxBatch     = flag.Int("max-batch", 256, "cap on items per /v2/recommend call")
		batchSize    = flag.Int("batch-size", 64, "observe/session micro-batch: command lines per ObserveBatch call")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout (bulk NDJSON ingests count against it; /v2/session clears it per stream)")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout (/v2/session clears it per stream)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window after SIGINT/SIGTERM")

		walDir        = flag.String("wal-dir", "", "durable ingest WAL directory for the single-engine server: every admitted write is logged before it is applied, and on boot the latest checkpoint plus the log tail are recovered (taking precedence over -model/-demo; incompatible with -shards/-shard-addrs — give each shardd its own -wal-dir instead)")
		walFsync      = flag.String("wal-fsync", "batch", "WAL fsync policy: batch (sync before every ack), interval (background ticker), off (OS page cache only)")
		walSyncEvery  = flag.Duration("wal-sync-interval", 100*time.Millisecond, "fsync cadence of -wal-fsync=interval")
		walCheckpoint = flag.Duration("wal-checkpoint", time.Minute, "periodic checkpoint cadence: snapshot the engine into the WAL and compact the covered segments (0 disables)")

		authToken     = flag.String("auth-token", "", "shared bearer token: required on every /v1/* and /v2/* call (including /v2/session) AND presented to -shard-addrs shardds (pair with ssrec-shardd -auth-token)")
		adminReshard  = flag.Bool("admin-reshard", false, "enable POST /v2/reshard: online in-process split/merge of a -shards deployment to the requested width (403 when off; pair with -auth-token in production)")
		maxSessions   = flag.Int("max-sessions", 64, "cap on concurrent /v2/session streams (excess rejected 503 + Retry-After; <= 0 disables)")
		sessionCredit = flag.Int("session-credit", server.DefaultSessionCredit, "per-session flow-control window (command lines in flight before the client must wait for credit)")
		sessionRate   = flag.Float64("session-rate", 0, "per-session rate limit in command lines/sec (token bucket; 0 = unpaced)")
		sessionBurst  = flag.Int("session-burst", 0, "token-bucket burst of -session-rate (default max(1, rate))")
		sessionLinger = flag.Duration("session-linger", 200*time.Millisecond, "flush a session's pending observations at most this long after the first arrives (<= 0 disables the timer)")

		principalRate  = flag.Float64("principal-rate", 0, "per-principal request quota in requests/sec on /v1/* and /v2/* (principal = bearer token, else client host; token bucket; 0 = unlimited)")
		principalBurst = flag.Int("principal-burst", 0, "token-bucket burst of -principal-rate (default max(1, rate))")

		traceAll  = flag.Bool("trace", false, "trace EVERY request (otherwise only requests carrying an X-Ssrec-Trace header are traced); fetch span trees via GET /v2/trace/{id}")
		traceSlow = flag.Duration("trace-slow", 0, "slow-query log threshold: a traced request slower than this logs its full span tree to stderr (0 disables)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof + GET /debug/exectrace on this side address (e.g. 127.0.0.1:6060; empty disables; never expose publicly)")
	)
	flag.Parse()
	partitionsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "partitions" {
			partitionsSet = true
		}
	})

	// Resolve the serving state: a saved model file or a freshly trained
	// demo engine. With -shards > 1 a snapshot boots every shard of a
	// scatter-gather deployment, and with -shard-addrs it is pushed to
	// every remote shardd over the handoff protocol; a single-engine
	// server keeps the trained/loaded engine directly (no snapshot
	// round-trip).
	remote := shardrpc.SplitAddrs(*shardAddrs)
	sharded := *shards > 1 || len(remote) > 0
	if *walDir != "" && sharded {
		log.Fatal("-wal-dir applies to the single-engine server only; make a sharded deployment durable per shard with ssrec-shardd -wal-dir")
	}
	var (
		eng      *core.Engine
		snapshot []byte
		walLog   *wal.Log
	)
	walRecovered := false
	if *walDir != "" {
		policy, err := wal.ParsePolicy(*walFsync)
		if err != nil {
			log.Fatalf("-wal-fsync: %v", err)
		}
		walLog, err = wal.Open(wal.Options{Dir: *walDir, Policy: policy, SyncInterval: *walSyncEvery})
		if err != nil {
			log.Fatalf("open wal %s: %v", *walDir, err)
		}
		defer walLog.Close() //nolint:errcheck // final checkpoint below is the durability point
		ckpt, seq, ok, err := walLog.LatestCheckpoint()
		switch {
		case err != nil:
			log.Fatalf("wal checkpoint: %v", err)
		case ok:
			eng, err = core.LoadFrom(ckpt)
			ckpt.Close() //nolint:errcheck // read-only
			if err != nil {
				log.Fatalf("boot engine from wal checkpoint: %v", err)
			}
			replayed := 0
			if err := walLog.Replay(seq+1, func(rec wal.Record) error {
				replayed++
				return wal.Apply(context.Background(), rec, eng)
			}); err != nil {
				log.Fatalf("replay wal tail: %v", err)
			}
			walRecovered = true
			log.Printf("engine recovered from wal %s: checkpoint seq %d + %d replayed record(s), fsync=%s (%d users)",
				*walDir, seq, replayed, policy, eng.Users())
			if *model != "" || *demo {
				log.Printf("-model/-demo ignored: the wal already holds the serving state")
			}
		case walLog.Stats().LastSeq > 0:
			// Records without a checkpoint describe deltas over a base state
			// this process does not have — refusing beats replaying onto the
			// wrong engine.
			log.Fatalf("wal %s holds records but no checkpoint; recover the directory or point -wal-dir elsewhere", *walDir)
		default:
			log.Printf("wal %s empty: logging writes from first boot, fsync=%s", *walDir, policy)
		}
	}
	switch {
	case walRecovered:
		// Serving state came from the WAL above.
	case *model != "":
		data, err := os.ReadFile(*model)
		if err != nil {
			log.Fatalf("load model: %v", err)
		}
		snapshot = data
		log.Printf("loaded model snapshot from %s (%d bytes)", *model, len(snapshot))
		if !sharded {
			if eng, err = core.LoadFrom(bytes.NewReader(snapshot)); err != nil {
				log.Fatalf("boot engine: %v", err)
			}
			log.Printf("engine ready (%d users)", eng.Users())
		}
	case *demo:
		cfg := dataset.YTubeConfig(*scale)
		cfg.Seed = *seed
		ds := dataset.Generate(cfg)
		eng = core.New(core.Config{Categories: ds.Categories, Seed: *seed, Parallelism: *partitions})
		if err := evalx.Train(eng, ds, evalx.Setup{}); err != nil {
			log.Fatalf("train demo engine: %v", err)
		}
		log.Printf("demo engine trained: %s", ds.ComputeStats())
		if *save != "" || sharded {
			var buf bytes.Buffer
			if err := eng.SaveTo(&buf); err != nil {
				log.Fatalf("snapshot demo engine: %v", err)
			}
			snapshot = buf.Bytes()
		}
		if *save != "" {
			if err := os.WriteFile(*save, snapshot, 0o644); err != nil {
				log.Fatalf("save model: %v", err)
			}
			log.Printf("saved engine to %s", *save)
		}
	default:
		log.Fatal("either -model or -demo is required")
	}

	var backend server.Backend
	var supervisor *shard.Supervisor
	switch {
	case len(remote) > 0:
		// ONE -auth-token secures both roles: this server's /v2 surface
		// and its client legs into the shardd fleet.
		var (
			router *shard.Router
			err    error
		)
		if *replicas > 1 {
			router, err = shardrpc.DialReplicaRouterAuth(remote, *replicas, *authToken)
		} else {
			router, err = shardrpc.DialRouterAuth(remote, *authToken)
		}
		if err != nil {
			log.Fatalf("assemble remote deployment: %v", err)
		}
		if partitionsSet {
			// Intra-query parallelism is a per-shardd setting on a remote
			// deployment; SetParallelism cannot reach across the wire.
			log.Printf("warning: -partitions is ignored with -shard-addrs; set it per shard with ssrec-shardd -partitions")
		}
		log.Printf("pushing snapshot to %d remote shard(s)...", len(remote))
		if err := router.HandoffSnapshot(context.Background(), snapshot); err != nil {
			log.Fatalf("snapshot handoff: %v", err)
		}
		for _, st := range router.ShardStats() {
			if *replicas > 1 {
				slot := remote[st.Shard**replicas : (st.Shard+1)**replicas]
				log.Printf("slot %d @ %v (%d replicas): %d/%d owned users, %d leaves", st.Shard, slot, *replicas, st.OwnedUsers, st.Users, st.Leaves)
			} else {
				log.Printf("shard %d @ %s: %d/%d owned users, %d leaves", st.Shard, remote[st.Shard], st.OwnedUsers, st.Users, st.Leaves)
			}
		}
		if *replicas > 1 && *supervise > 0 {
			supervisor = router.StartSupervisor(*supervise)
			log.Printf("replica supervisor running (sweep every %v)", *supervise)
		}
		backend = router
	case *shards > 1:
		var (
			router *shard.Router
			err    error
		)
		if *replicas > 1 {
			router, err = shard.FromSnapshotReplicated(snapshot, *shards, *replicas)
		} else {
			router, err = shard.FromSnapshot(snapshot, *shards)
		}
		if err != nil {
			log.Fatalf("boot %d-shard deployment: %v", *shards, err)
		}
		if partitionsSet {
			router.SetParallelism(*partitions)
		}
		for _, st := range router.ShardStats() {
			log.Printf("shard %d: %d/%d owned users, %d leaves", st.Shard, st.OwnedUsers, st.Users, st.Leaves)
		}
		if *replicas > 1 && *supervise > 0 {
			supervisor = router.StartSupervisor(*supervise)
			log.Printf("replica supervisor running (sweep every %v, %d replicas/slot)", *supervise, *replicas)
		}
		backend = router
	default:
		if partitionsSet {
			eng.SetParallelism(*partitions) // explicit flag overrides the snapshot's value
		}
		backend = core.WrapSafe(eng)
	}

	var walBackend *server.WALBackend
	if walLog != nil {
		// Durable single-engine serving: writes append to the log before
		// they apply, so an acked write is recoverable.
		walBackend = server.WrapWAL(eng, walLog)
		backend = walBackend
		if err := walBackend.Checkpoint(); err != nil {
			// Anchor the boot state: a crash before the first periodic
			// checkpoint must still recover to it.
			log.Fatalf("initial wal checkpoint: %v", err)
		}
	}

	srv := server.NewBackend(backend)
	srv.MaxK = *maxK
	srv.MaxBatch = *maxBatch
	srv.BatchSize = *batchSize
	srv.AuthToken = *authToken
	srv.MaxSessions = *maxSessions
	srv.SessionCredit = *sessionCredit
	srv.SessionRate = *sessionRate
	srv.SessionBurst = *sessionBurst
	srv.SessionLinger = *sessionLinger
	srv.WAL = walLog
	srv.AdminReshard = *adminReshard
	srv.TraceAll = *traceAll
	srv.PrincipalRate = *principalRate
	srv.PrincipalBurst = *principalBurst
	if *traceSlow > 0 {
		srv.Tracer().SlowThreshold = *traceSlow
		srv.Tracer().SlowWriter = os.Stderr
		log.Printf("slow-query log enabled: traced requests over %v dump their span tree", *traceSlow)
	}
	if *traceAll {
		log.Printf("request tracing enabled for every request (GET /v2/trace/{id})")
	}
	if *principalRate > 0 {
		log.Printf("per-principal quota enabled: %.3g req/s on /v1/* and /v2/*", *principalRate)
	}
	if *pprofAddr != "" {
		telemetry.ServePprof(*pprofAddr, func(err error) { log.Printf("pprof listener: %v", err) })
		log.Printf("pprof + exectrace serving on %s", *pprofAddr)
	}
	if *adminReshard {
		log.Printf("admin resharding enabled on POST /v2/reshard")
	}
	if *authToken != "" {
		log.Printf("bearer auth enabled on /v1/* and /v2/* (only /healthz stays open)")
	}

	var checkpointStop chan struct{}
	if walBackend != nil && *walCheckpoint > 0 {
		checkpointStop = make(chan struct{})
		go func() {
			t := time.NewTicker(*walCheckpoint)
			defer t.Stop()
			for {
				select {
				case <-checkpointStop:
					return
				case <-t.C:
					if err := walBackend.Checkpoint(); err != nil {
						log.Printf("wal checkpoint: %v", err)
					}
				}
			}
		}()
	}
	// Serve HTTP/1.1 AND unencrypted HTTP/2 (h2c with prior knowledge):
	// the /v2/session full-duplex exchange needs h2c — request and
	// response stream concurrently on one stream, which a plaintext
	// HTTP/1.1 client cannot do — while every other route keeps working
	// over plain HTTP/1.1.
	protocols := new(http.Protocols)
	protocols.SetHTTP1(true)
	protocols.SetUnencryptedHTTP2(true)
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		Protocols:    protocols,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ssrec-server listening on %s\n", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("shutdown signal received; draining for up to %v", *drainTimeout)
		if supervisor != nil {
			supervisor.Stop()
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
			httpSrv.Close() //nolint:errcheck // force-close remaining connections
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		if checkpointStop != nil {
			close(checkpointStop)
		}
		if walBackend != nil {
			// Compact the log so the next boot recovers from one snapshot;
			// failure is not fatal — the un-compacted log replays exactly.
			if err := walBackend.Checkpoint(); err != nil {
				log.Printf("final wal checkpoint: %v", err)
			}
		}
		log.Printf("server stopped")
	}
}
