// Command ssrec-server serves a trained ssRec engine over the JSON HTTP
// API of internal/server (v2 batch-first protocol + deprecated v1).
//
// Either load a model saved with the library's persistence support:
//
//	ssrec-server -model engine.bin -addr :8080
//
// or bootstrap a demo engine on generated data:
//
//	ssrec-server -demo -scale 0.3 -addr :8080
//
// Then:
//
//	curl -s localhost:8080/v2/stats
//	curl -s -X POST localhost:8080/v2/recommend \
//	  -d '{"items":[{"id":"x","category":"cat02","producer":"up0003","entities":["c02e001"]}],"k":5}'
//	printf '%s\n' '{"user_id":"u1","item":{"id":"x","category":"cat02"},"timestamp":1}' |
//	  curl -s -X POST --data-binary @- localhost:8080/v2/observe
//
// The server drains gracefully on SIGINT/SIGTERM: in-flight requests get
// -drain-timeout to finish before the listener is torn down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/server"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		model = flag.String("model", "", "path to a saved engine (core.SaveFile format)")
		demo  = flag.Bool("demo", false, "bootstrap a demo engine on generated data")
		scale = flag.Float64("scale", 0.3, "demo dataset scale")
		seed  = flag.Int64("seed", 42, "demo dataset seed")

		partitions = flag.Int("partitions", 1, "intra-query search partitions (Config.Parallelism); overrides a loaded model's setting")
		save       = flag.String("save", "", "after -demo training, save the engine here (core.SaveFile format)")

		maxK         = flag.Int("max-k", 100, "cap on per-request k")
		maxBatch     = flag.Int("max-batch", 256, "cap on items per /v2/recommend call")
		batchSize    = flag.Int("batch-size", 64, "observe micro-batch: NDJSON lines per ObserveBatch call")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout (bulk NDJSON ingests count against it)")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window after SIGINT/SIGTERM")
	)
	flag.Parse()
	partitionsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "partitions" {
			partitionsSet = true
		}
	})

	var eng *core.Engine
	switch {
	case *model != "":
		loaded, err := core.LoadFile(*model)
		if err != nil {
			log.Fatalf("load model: %v", err)
		}
		eng = loaded
		if partitionsSet {
			eng.SetParallelism(*partitions) // explicit flag overrides the snapshot's value
		}
		log.Printf("loaded engine from %s (%d users)", *model, eng.Store().Len())
	case *demo:
		cfg := dataset.YTubeConfig(*scale)
		cfg.Seed = *seed
		ds := dataset.Generate(cfg)
		eng = core.New(core.Config{Categories: ds.Categories, Seed: *seed, Parallelism: *partitions})
		if err := evalx.Train(eng, ds, evalx.Setup{}); err != nil {
			log.Fatalf("train demo engine: %v", err)
		}
		log.Printf("demo engine trained: %s", ds.ComputeStats())
		if *save != "" {
			if err := eng.SaveFile(*save); err != nil {
				log.Fatalf("save model: %v", err)
			}
			log.Printf("saved engine to %s", *save)
		}
	default:
		log.Fatal("either -model or -demo is required")
	}

	srv := server.New(core.WrapSafe(eng))
	srv.MaxK = *maxK
	srv.MaxBatch = *maxBatch
	srv.BatchSize = *batchSize
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ssrec-server listening on %s\n", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("shutdown signal received; draining for up to %v", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
			httpSrv.Close() //nolint:errcheck // force-close remaining connections
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		log.Printf("server stopped")
	}
}
