// Command ssrec-server serves a trained ssRec engine over the JSON HTTP
// API of internal/server.
//
// Either load a model saved with the library's persistence support:
//
//	ssrec-server -model engine.bin -addr :8080
//
// or bootstrap a demo engine on generated data:
//
//	ssrec-server -demo -scale 0.3 -addr :8080
//
// Then:
//
//	curl -s localhost:8080/v1/stats
//	curl -s -X POST localhost:8080/v1/recommend \
//	  -d '{"item":{"id":"x","category":"cat02","producer":"up0003","entities":["c02e001"]},"k":5}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/server"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		model = flag.String("model", "", "path to a saved engine (core.SaveFile format)")
		demo  = flag.Bool("demo", false, "bootstrap a demo engine on generated data")
		scale = flag.Float64("scale", 0.3, "demo dataset scale")
		seed  = flag.Int64("seed", 42, "demo dataset seed")

		partitions = flag.Int("partitions", 1, "intra-query search partitions (Config.Parallelism); overrides a loaded model's setting")
		save       = flag.String("save", "", "after -demo training, save the engine here (core.SaveFile format)")
	)
	flag.Parse()
	partitionsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "partitions" {
			partitionsSet = true
		}
	})

	var eng *core.Engine
	switch {
	case *model != "":
		loaded, err := core.LoadFile(*model)
		if err != nil {
			log.Fatalf("load model: %v", err)
		}
		eng = loaded
		if partitionsSet {
			eng.SetParallelism(*partitions) // explicit flag overrides the snapshot's value
		}
		log.Printf("loaded engine from %s (%d users)", *model, eng.Store().Len())
	case *demo:
		cfg := dataset.YTubeConfig(*scale)
		cfg.Seed = *seed
		ds := dataset.Generate(cfg)
		eng = core.New(core.Config{Categories: ds.Categories, Seed: *seed, Parallelism: *partitions})
		if err := evalx.Train(eng, ds, evalx.Setup{}); err != nil {
			log.Fatalf("train demo engine: %v", err)
		}
		log.Printf("demo engine trained: %s", ds.ComputeStats())
		if *save != "" {
			if err := eng.SaveFile(*save); err != nil {
				log.Fatalf("save model: %v", err)
			}
			log.Printf("saved engine to %s", *save)
		}
	default:
		log.Fatal("either -model or -demo is required")
	}

	srv := server.New(core.WrapSafe(eng))
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	fmt.Printf("ssrec-server listening on %s\n", *addr)
	log.Fatal(httpSrv.ListenAndServe())
}
