// Command ssrec-shardd serves ONE shard of a distributed ssRec deployment
// over the shard RPC protocol (internal/shardrpc): HTTP/2 + NDJSON, with
// the full-duplex bound-streaming recommend exchange, micro-batch
// replication, per-shard stats and the snapshot boot/handoff endpoint.
//
// A shardd always knows its identity — shard -index of an -of-wide
// deployment — and boots in one of two ways:
//
//	ssrec-shardd -addr :9101 -index 0 -of 2 -model engine.bin   # boot from a snapshot file
//	ssrec-shardd -addr :9102 -index 1 -of 2                     # blank: await a snapshot handoff
//
// A blank shardd answers liveness checks and 503s every
// serving endpoint until a router pushes a trained-engine snapshot to
// POST /shard/v1/snapshot (shard.Router.HandoffSnapshot, ssrec-server
// -shard-addrs, or ssrec.Open(..., ssrec.WithRemoteShards(...)).Train).
// The same handoff is the RECOVERY path: a shardd that crashed or was
// partitioned has missed replicated micro-batches and must be re-seeded
// with a fresh snapshot before the router re-includes it. See
// OPERATIONS.md for the runbook and deployment topologies.
//
// Probe it:
//
//	curl -s localhost:9101/shard/v1/livez   # liveness: 200 while the process is up
//	curl -s localhost:9101/shard/v1/readyz  # readiness: 200 only when booted AND trained
//	curl -s localhost:9101/shard/v1/stats
//
// (/shard/v1/health is a deprecated alias of the old combined check; it
// keeps answering, with a Deprecation header — point restart probes at
// /livez and load-balancer membership at /readyz.)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/shardrpc"
)

func main() {
	var (
		addr  = flag.String("addr", ":9100", "listen address")
		index = flag.Int("index", 0, "this shard's position in the deployment (0-based)")
		of    = flag.Int("of", 1, "deployment width (total shard count)")
		model = flag.String("model", "", "boot from a saved engine snapshot (core.SaveFile format); omit to await a snapshot handoff")

		partitions = flag.Int("partitions", 0, "intra-query search partitions; > 0 overrides the snapshot's setting and applies to handoff boots")
		boundFlush = flag.Duration("bound-flush", shardrpc.DefaultBoundFlush, "sampling interval of the bound-raise stream on the recommend exchange")
		authToken  = flag.String("auth-token", "", "shared bearer token: every endpoint (health included) answers 401 without \"Authorization: Bearer <token>\"; pair with ssrec-server -auth-token / ssrec.WithAuthToken")

		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window after SIGINT/SIGTERM")
	)
	flag.Parse()

	srv, err := shardrpc.NewServer(*index, *of)
	if err != nil {
		log.Fatal(err)
	}
	srv.Parallelism = *partitions
	srv.BoundFlush = *boundFlush
	srv.AuthToken = *authToken
	if *authToken != "" {
		log.Printf("bearer auth enabled on every endpoint")
	}

	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatalf("open model: %v", err)
		}
		eng, err := core.LoadShardFrom(f, *index, *of)
		f.Close()
		if err != nil {
			log.Fatalf("boot shard %d/%d from %s: %v", *index, *of, *model, err)
		}
		srv.Boot(eng)
		if ist, ok := eng.IndexStats(); ok {
			log.Printf("shard %d/%d booted from %s: %d/%d owned users, %d leaves",
				*index, *of, *model, ist.OwnedUsers, eng.Users(), ist.TotalLeafCount)
		}
	} else {
		log.Printf("shard %d/%d blank: awaiting snapshot handoff on POST /shard/v1/snapshot", *index, *of)
	}

	httpSrv := srv.NewHTTPServer(*addr)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ssrec-shardd %d/%d listening on %s\n", *index, *of, *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("shutdown signal received; draining for up to %v", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
			httpSrv.Close() //nolint:errcheck // force-close remaining connections
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		log.Printf("shard stopped")
	}
}
