// Command ssrec-shardd serves ONE shard of a distributed ssRec deployment
// over the shard RPC protocol (internal/shardrpc): HTTP/2 + NDJSON, with
// the full-duplex bound-streaming recommend exchange, micro-batch
// replication, per-shard stats and the snapshot boot/handoff endpoint.
//
// A shardd always knows its identity — shard -index of an -of-wide
// deployment — and boots in one of two ways:
//
//	ssrec-shardd -addr :9101 -index 0 -of 2 -model engine.bin   # boot from a snapshot file
//	ssrec-shardd -addr :9102 -index 1 -of 2                     # blank: await a snapshot handoff
//
// A blank shardd answers liveness checks and 503s every
// serving endpoint until a router pushes a trained-engine snapshot to
// POST /shard/v1/snapshot (shard.Router.HandoffSnapshot, ssrec-server
// -shard-addrs, or ssrec.Open(..., ssrec.WithRemoteShards(...)).Train).
// The same handoff is the RECOVERY path: a shardd that crashed or was
// partitioned has missed replicated micro-batches and must be re-seeded
// with a fresh snapshot before the router re-includes it. See
// OPERATIONS.md for the runbook and deployment topologies.
//
// With -wal-dir the shardd is additionally durable on its own: every
// admitted write batch is appended (and per -wal-fsync, fsynced) to a
// segmented write-ahead log BEFORE it is applied, periodic checkpoints
// compact the log, and a restarted shardd recovers its exact pre-crash
// state from the latest checkpoint plus the log tail — no snapshot
// handoff needed:
//
//	ssrec-shardd -addr :9101 -index 0 -of 2 -model engine.bin -wal-dir /var/lib/ssrec/shard0
//	# ...crash, restart:
//	ssrec-shardd -addr :9101 -index 0 -of 2 -wal-dir /var/lib/ssrec/shard0   # recovers itself
//
// Probe it:
//
//	curl -s localhost:9101/shard/v1/livez   # liveness: 200 while the process is up
//	curl -s localhost:9101/shard/v1/readyz  # readiness: 200 only when booted AND trained
//	curl -s localhost:9101/shard/v1/stats
//
// (/shard/v1/health is a deprecated alias of the old combined check; it
// keeps answering, with a Deprecation header — point restart probes at
// /livez and load-balancer membership at /readyz.)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/shardrpc"
	"ssrec/internal/telemetry"
	"ssrec/internal/wal"
)

func main() {
	var (
		addr  = flag.String("addr", ":9100", "listen address")
		index = flag.Int("index", 0, "this shard's position in the deployment (0-based)")
		of    = flag.Int("of", 1, "deployment width (total shard count)")
		model = flag.String("model", "", "boot from a saved engine snapshot (core.SaveFile format); omit to await a snapshot handoff")

		partitions = flag.Int("partitions", 0, "intra-query search partitions; > 0 overrides the snapshot's setting and applies to handoff boots")
		boundFlush = flag.Duration("bound-flush", shardrpc.DefaultBoundFlush, "sampling interval of the bound-raise stream on the recommend exchange")
		authToken  = flag.String("auth-token", "", "shared bearer token: every endpoint (health included) answers 401 without \"Authorization: Bearer <token>\"; pair with ssrec-server -auth-token / ssrec.WithAuthToken")

		walDir        = flag.String("wal-dir", "", "durable ingest WAL directory: every admitted write batch is logged before it is applied, and on boot the latest checkpoint plus the log tail are recovered (taking precedence over -model)")
		walFsync      = flag.String("wal-fsync", "batch", "WAL fsync policy: batch (sync before every ack), interval (background ticker), off (OS page cache only)")
		walSyncEvery  = flag.Duration("wal-sync-interval", 100*time.Millisecond, "fsync cadence of -wal-fsync=interval")
		walCheckpoint = flag.Duration("wal-checkpoint", time.Minute, "periodic checkpoint cadence: snapshot the engine into the WAL and compact the covered segments (0 disables)")

		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window after SIGINT/SIGTERM")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof + GET /debug/exectrace on this side address (e.g. 127.0.0.1:6061; empty disables; never expose publicly)")
	)
	flag.Parse()

	srv, err := shardrpc.NewServer(*index, *of)
	if err != nil {
		log.Fatal(err)
	}
	srv.Parallelism = *partitions
	srv.BoundFlush = *boundFlush
	srv.AuthToken = *authToken
	if *authToken != "" {
		log.Printf("bearer auth enabled on every endpoint")
	}
	if *pprofAddr != "" {
		telemetry.ServePprof(*pprofAddr, func(err error) { log.Printf("pprof listener: %v", err) })
		log.Printf("pprof + exectrace serving on %s", *pprofAddr)
	}

	recovered := false
	if *walDir != "" {
		policy, err := wal.ParsePolicy(*walFsync)
		if err != nil {
			log.Fatalf("-wal-fsync: %v", err)
		}
		walLog, err := wal.Open(wal.Options{Dir: *walDir, Policy: policy, SyncInterval: *walSyncEvery})
		if err != nil {
			log.Fatalf("open wal %s: %v", *walDir, err)
		}
		defer walLog.Close() //nolint:errcheck // final checkpoint below is the durability point
		srv.WAL = walLog
		var replayed int
		recovered, replayed, err = srv.BootFromWAL(context.Background())
		if err != nil {
			log.Fatalf("recover from wal %s: %v", *walDir, err)
		}
		if recovered {
			st := walLog.Stats()
			log.Printf("shard %d/%d recovered from wal %s: checkpoint seq %d + %d replayed record(s), fsync=%s",
				*index, *of, *walDir, st.CheckpointSeq, replayed, policy)
			if *model != "" {
				log.Printf("-model %s ignored: the wal already holds this shard's state", *model)
			}
		} else {
			log.Printf("wal %s empty: logging writes from first boot, fsync=%s", *walDir, policy)
		}
	}

	if *model != "" && !recovered {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatalf("open model: %v", err)
		}
		eng, err := core.LoadShardFrom(f, *index, *of)
		f.Close()
		if err != nil {
			log.Fatalf("boot shard %d/%d from %s: %v", *index, *of, *model, err)
		}
		srv.Boot(eng)
		if ist, ok := eng.IndexStats(); ok {
			log.Printf("shard %d/%d booted from %s: %d/%d owned users, %d leaves",
				*index, *of, *model, ist.OwnedUsers, eng.Users(), ist.TotalLeafCount)
		}
		if srv.WAL != nil {
			// Anchor the fresh boot in the log so a crash before the first
			// periodic checkpoint still recovers to this state.
			if err := srv.CheckpointWAL(); err != nil {
				log.Fatalf("initial wal checkpoint: %v", err)
			}
		}
	} else if !recovered {
		log.Printf("shard %d/%d blank: awaiting snapshot handoff on POST /shard/v1/snapshot", *index, *of)
	}

	var checkpointStop chan struct{}
	if srv.WAL != nil && *walCheckpoint > 0 {
		checkpointStop = make(chan struct{})
		go func() {
			t := time.NewTicker(*walCheckpoint)
			defer t.Stop()
			for {
				select {
				case <-checkpointStop:
					return
				case <-t.C:
					if err := srv.CheckpointWAL(); err != nil {
						log.Printf("wal checkpoint: %v", err)
					}
				}
			}
		}()
	}

	httpSrv := srv.NewHTTPServer(*addr)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ssrec-shardd %d/%d listening on %s\n", *index, *of, *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("shutdown signal received; draining for up to %v", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
			httpSrv.Close() //nolint:errcheck // force-close remaining connections
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		if checkpointStop != nil {
			close(checkpointStop)
		}
		if srv.WAL != nil {
			// A final checkpoint compacts the log so the next boot recovers
			// from one snapshot instead of a long replay; failure is not
			// fatal — the un-compacted log still replays exactly.
			if err := srv.CheckpointWAL(); err != nil {
				log.Printf("final wal checkpoint: %v", err)
			}
		}
		log.Printf("shard stopped")
	}
}
