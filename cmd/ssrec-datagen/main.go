// Command ssrec-datagen generates the four evaluation datasets (YTube,
// SynYTube, MLens, SynMLens — §VI-A of the paper) and writes them as
// gzip-compressed gob files.
//
// Usage:
//
//	ssrec-datagen -out ./data -scale 1.0 -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ssrec/internal/dataset"
)

func main() {
	var (
		out   = flag.String("out", "./data", "output directory")
		scale = flag.Float64("scale", 1.0, "dataset scale factor")
		seed  = flag.Int64("seed", 42, "base random seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("mkdir %s: %v", *out, err)
	}

	ytCfg := dataset.YTubeConfig(*scale)
	ytCfg.Seed = *seed
	yt := dataset.Generate(ytCfg)

	mlCfg := dataset.MLensConfig(*scale)
	mlCfg.Seed = *seed + 1
	ml := dataset.Generate(mlCfg)

	sets := []*dataset.Dataset{
		yt,
		dataset.Replicate(yt, "SynYTube", *seed+2),
		ml,
		dataset.Replicate(ml, "SynMLens", *seed+3),
	}
	for _, ds := range sets {
		path := filepath.Join(*out, ds.Name+".gob.gz")
		if err := ds.SaveFile(path); err != nil {
			log.Fatalf("save %s: %v", path, err)
		}
		fmt.Printf("%-30s %s\n", path, ds.ComputeStats())
	}
}
