// Command ssrec-stream runs the live stream-recommendation topology: the
// paper's deployment shape (one recommendation bolt per item category over
// Apache Storm, §VI-D) on the package stream substitute.
//
// A spout replays the item stream; items are fields-grouped by category
// onto recommendation bolts, each owning an independently trained ssRec
// engine; a sink prints the top-k users per item and final throughput
// numbers.
//
// Usage:
//
//	ssrec-stream -scale 0.3 -k 5 -items 40 -v
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/model"
	"ssrec/internal/stream"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.3, "dataset scale factor")
		k       = flag.Int("k", 5, "recommendations per item")
		nItems  = flag.Int("items", 30, "number of streamed items to print (0 = all)")
		seed    = flag.Int64("seed", 42, "random seed")
		verbose = flag.Bool("v", false, "print each recommendation")
	)
	flag.Parse()

	cfg := dataset.YTubeConfig(*scale)
	cfg.Seed = *seed
	ds := dataset.Generate(cfg)
	fmt.Printf("dataset: %s\n", ds.ComputeStats())

	// The test stream: items first appearing after the training prefix.
	parts := ds.Partition(6)
	trainEnd := parts[1][len(parts[1])-1].Timestamp
	var testItems []model.Item
	for _, v := range ds.Items {
		if v.Timestamp > trainEnd {
			testItems = append(testItems, v)
		}
	}
	if *nItems > 0 && len(testItems) > *nItems {
		testItems = testItems[:*nItems]
	}
	fmt.Printf("streaming %d items across %d category bolts (k=%d)\n\n",
		len(testItems), len(ds.Categories), *k)

	tuples := make([]stream.Tuple, len(testItems))
	for i, v := range testItems {
		tuples[i] = stream.Tuple{Key: v.Category, Value: v, Ts: v.Timestamp}
	}

	type result struct {
		item model.Item
		recs []model.Recommendation
		took time.Duration
	}

	tp := stream.NewTopology("ssrec-stream")
	tp.AddSpout("items", &stream.SliceSpout{Tuples: tuples})
	// One bolt instance per category (fields grouping keeps each category
	// on one instance), each with its own trained engine.
	tp.AddBolt("recommend", len(ds.Categories), func(instance int) stream.Bolt {
		eng := core.New(core.Config{Categories: ds.Categories, TrainMaxIter: 6, Restarts: 1, Seed: *seed})
		if err := evalx.Train(eng, ds, evalx.Setup{}); err != nil {
			log.Fatalf("bolt %d train: %v", instance, err)
		}
		return stream.BoltFunc(func(t stream.Tuple, emit func(stream.Tuple)) error {
			v := t.Value.(model.Item)
			t0 := time.Now()
			recs := eng.Recommend(v, *k)
			emit(stream.Tuple{Key: v.Category, Value: result{item: v, recs: recs, took: time.Since(t0)}})
			return nil
		})
	}).FieldsBy("items")
	tp.AddBolt("sink", 1, func(int) stream.Bolt {
		return stream.BoltFunc(func(t stream.Tuple, emit func(stream.Tuple)) error {
			r := t.Value.(result)
			if !*verbose {
				return nil
			}
			fmt.Printf("%-10s %-8s by %-7s -> ", r.item.ID, r.item.Category, r.item.Producer)
			for i, rec := range r.recs {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("%s(%.2f)", rec.UserID, rec.Score)
			}
			fmt.Printf("   [%v]\n", r.took.Round(time.Microsecond))
			return nil
		})
	}).Shuffle("recommend")

	start := time.Now()
	metrics, err := tp.Run(stream.Options{})
	if err != nil {
		log.Fatalf("topology: %v", err)
	}
	wall := time.Since(start)

	fmt.Printf("\ntopology finished in %v\n", wall.Round(time.Millisecond))
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tot := metrics[name].Totals()
		fmt.Printf("  bolt %-10s processed=%-6d emitted=%-6d errors=%d busy=%v\n",
			name, tot.Processed, tot.Emitted, tot.Errors, time.Duration(tot.BusyNanos).Round(time.Microsecond))
	}
	if n := len(testItems); n > 0 {
		fmt.Printf("  throughput: %.0f items/s\n", float64(n)/wall.Seconds())
	}
}
