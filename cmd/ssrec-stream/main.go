// Command ssrec-stream runs the live stream-recommendation topology: the
// paper's deployment shape (one recommendation bolt per item category over
// Apache Storm, §VI-D) on the package stream substitute.
//
// A spout replays the merged item + interaction stream in timestamp
// order; tuples are fields-grouped by category onto recommendation bolts,
// each owning an independently trained ssRec engine. Items trigger top-k
// queries; interactions accumulate into per-bolt micro-batches that are
// ingested through Engine.ObserveBatch — one write lock + one index flush
// per batch (-batch), the v2 amortised write path. A sink prints the
// top-k users per item and final throughput numbers.
//
// Usage:
//
//	ssrec-stream -scale 0.3 -k 5 -items 40 -batch 64 -v
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"sync/atomic"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/model"
	"ssrec/internal/stream"
)

// ingestTotals aggregates ObserveBatch activity across all bolt instances.
var ingestTotals struct {
	applied atomic.Int64
	flushed atomic.Int64
	batches atomic.Int64
}

// recommendBolt is one per-category bolt, rewired onto the session API:
// its engine is driven through ONE ordered core.Session per bolt instance
// — observation tuples are Pushed (the session micro-batches them into
// ObserveBatch admissions), item tuples are Asked and their answer awaited
// from the ordered Results stream — so each bolt runs exactly the
// continuous Push/Ask loop a /v2/session client would.
type recommendBolt struct {
	ses *core.Session
	k   int
}

func newRecommendBolt(eng *core.Engine, k, batch int) *recommendBolt {
	return &recommendBolt{
		ses: core.NewSession(context.Background(), eng, core.WithSessionBatch(batch)),
		k:   k,
	}
}

type result struct {
	item model.Item
	recs []model.Recommendation
	took time.Duration
}

func (b *recommendBolt) Process(t stream.Tuple, emit func(stream.Tuple)) error {
	switch v := t.Value.(type) {
	case model.Item:
		t0 := time.Now()
		if err := b.ses.Ask(v, core.WithK(b.k)); err != nil {
			return err
		}
		// The Ask is the only pending query on this bolt's session (pushes
		// produce no results), so the next ordered result answers it —
		// reflecting every observation pushed before it.
		res, ok := <-b.ses.Results()
		if !ok {
			return b.ses.Err()
		}
		if res.Err != nil {
			return res.Err
		}
		emit(stream.Tuple{Key: v.Category, Value: result{item: v, recs: res.Recommendations, took: time.Since(t0)}})
	case core.Observation:
		if err := b.ses.Push(v); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the session's trailing micro-batch and folds its ingest
// counters into the topology totals.
func (b *recommendBolt) Close() error {
	err := b.ses.Close()
	st := b.ses.Stats()
	ingestTotals.applied.Add(int64(st.Admitted))
	ingestTotals.flushed.Add(int64(st.Flushed))
	ingestTotals.batches.Add(int64(st.Batches))
	return err
}

func main() {
	var (
		scale   = flag.Float64("scale", 0.3, "dataset scale factor")
		k       = flag.Int("k", 5, "recommendations per item")
		nItems  = flag.Int("items", 30, "number of streamed items to print (0 = all)")
		nObs    = flag.Int("obs", 0, "number of streamed interactions to ingest (0 = all)")
		batch   = flag.Int("batch", 64, "observe micro-batch size per bolt (ObserveBatch)")
		seed    = flag.Int64("seed", 42, "random seed")
		verbose = flag.Bool("v", false, "print each recommendation")
	)
	flag.Parse()

	cfg := dataset.YTubeConfig(*scale)
	cfg.Seed = *seed
	ds := dataset.Generate(cfg)
	fmt.Printf("dataset: %s\n", ds.ComputeStats())

	// The test stream: items and interactions first appearing after the
	// training prefix, merged in timestamp order.
	parts := ds.Partition(6)
	trainEnd := parts[1][len(parts[1])-1].Timestamp
	var testItems []model.Item
	for _, v := range ds.Items {
		if v.Timestamp > trainEnd {
			testItems = append(testItems, v)
		}
	}
	if *nItems > 0 && len(testItems) > *nItems {
		testItems = testItems[:*nItems]
	}
	var testObs []core.Observation
	for _, ir := range ds.Interactions {
		if ir.Timestamp <= trainEnd {
			continue
		}
		if v, ok := ds.Item(ir.ItemID); ok {
			testObs = append(testObs, core.Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp})
		}
	}
	if *nObs > 0 && len(testObs) > *nObs {
		testObs = testObs[:*nObs]
	}
	fmt.Printf("streaming %d items + %d interactions across %d category bolts (k=%d, batch=%d)\n\n",
		len(testItems), len(testObs), len(ds.Categories), *k, *batch)

	tuples := make([]stream.Tuple, 0, len(testItems)+len(testObs))
	for _, v := range testItems {
		tuples = append(tuples, stream.Tuple{Key: v.Category, Value: v, Ts: v.Timestamp})
	}
	for _, o := range testObs {
		tuples = append(tuples, stream.Tuple{Key: o.Item.Category, Value: o, Ts: o.Timestamp})
	}
	sort.SliceStable(tuples, func(i, j int) bool { return tuples[i].Ts < tuples[j].Ts })

	tp := stream.NewTopology("ssrec-stream")
	tp.AddSpout("events", &stream.SliceSpout{Tuples: tuples})
	// One bolt instance per category (fields grouping keeps each category
	// on one instance), each with its own trained engine.
	tp.AddBolt("recommend", len(ds.Categories), func(instance int) stream.Bolt {
		eng := core.New(core.Config{Categories: ds.Categories, TrainMaxIter: 6, Restarts: 1, Seed: *seed})
		if err := evalx.Train(eng, ds, evalx.Setup{}); err != nil {
			log.Fatalf("bolt %d train: %v", instance, err)
		}
		return newRecommendBolt(eng, *k, *batch)
	}).FieldsBy("events")
	tp.AddBolt("sink", 1, func(int) stream.Bolt {
		return stream.BoltFunc(func(t stream.Tuple, emit func(stream.Tuple)) error {
			r := t.Value.(result)
			if !*verbose {
				return nil
			}
			fmt.Printf("%-10s %-8s by %-7s -> ", r.item.ID, r.item.Category, r.item.Producer)
			for i, rec := range r.recs {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("%s(%.2f)", rec.UserID, rec.Score)
			}
			fmt.Printf("   [%v]\n", r.took.Round(time.Microsecond))
			return nil
		})
	}).Shuffle("recommend")

	start := time.Now()
	metrics, err := tp.Run(stream.Options{})
	if err != nil {
		log.Fatalf("topology: %v", err)
	}
	wall := time.Since(start)

	fmt.Printf("\ntopology finished in %v\n", wall.Round(time.Millisecond))
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tot := metrics[name].Totals()
		fmt.Printf("  bolt %-10s processed=%-6d emitted=%-6d errors=%d busy=%v\n",
			name, tot.Processed, tot.Emitted, tot.Errors, time.Duration(tot.BusyNanos).Round(time.Microsecond))
	}
	fmt.Printf("  ingest: %d interactions applied in %d micro-batches (%d index user refreshes)\n",
		ingestTotals.applied.Load(), ingestTotals.batches.Load(), ingestTotals.flushed.Load())
	if n := len(testItems) + len(testObs); n > 0 {
		fmt.Printf("  throughput: %.0f tuples/s\n", float64(n)/wall.Seconds())
	}
}
