package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zero: %v", h.Snapshot())
	}
}

func TestSingleSample(t *testing.T) {
	var h Histogram
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 100*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	p := h.Percentile(50)
	if p < 90*time.Microsecond || p > 120*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈100µs", p)
	}
}

func TestPercentilesApproximateExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	var samples []time.Duration
	for i := 0; i < 20000; i++ {
		// Log-uniform between 1µs and 10ms.
		d := time.Duration(float64(time.Microsecond) * rand.ExpFloat64() * 100)
		if d < 1 {
			d = 1
		}
		samples = append(samples, d)
		h.Record(d)
		_ = rng
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 95, 99} {
		exact := samples[int(p/100*float64(len(samples)))-1]
		got := h.Percentile(p)
		ratio := float64(got) / float64(exact)
		if ratio < 0.85 || ratio > 1.20 {
			t.Errorf("p%.0f = %v, exact %v (ratio %.2f)", p, got, exact, ratio)
		}
	}
}

func TestMinMax(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{50, 10, 90, 30} {
		h.Record(d * time.Millisecond)
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 90*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestPercentileClamping(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	if h.Percentile(-5) == 0 || h.Percentile(200) == 0 {
		t.Fatal("clamped percentiles returned 0")
	}
	if h.Percentile(100) > h.Max() {
		t.Fatal("p100 exceeds max")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	b.Record(5 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != 5*time.Millisecond {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	if got, want := a.Mean(), 3*time.Millisecond; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.Snapshot().String()
	if s == "" || len(s) < 10 {
		t.Fatalf("snapshot string %q", s)
	}
}

// Property: percentiles are monotone in p and bounded by [Min, Max].
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Record(time.Duration(v+1) * time.Microsecond)
		}
		prev := time.Duration(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Percentile(100) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZeroDurationSamples(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(0)
	h.Record(0)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("p%.0f of all-zero samples = %v, want 0", p, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Sum() != 0 {
		t.Fatalf("all-zero stats: %v", h.Snapshot())
	}
}

func TestSaturatingBucket(t *testing.T) {
	// Samples beyond the last bucket's range land in the final bucket;
	// percentiles must clamp to the observed max, never overshoot it.
	var h Histogram
	huge := 2 * time.Hour
	h.Record(huge)
	h.Record(huge / 2)
	for _, p := range []float64{50, 99, 100} {
		got := h.Percentile(p)
		if got > huge {
			t.Fatalf("p%.0f = %v exceeds max %v", p, got, huge)
		}
		// Both samples saturate the last bucket, whose upper bound
		// (~17s) is the best the histogram can report.
		if got < 10*time.Second {
			t.Fatalf("p%.0f = %v, want >= last bucket bound", p, got)
		}
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(4 * time.Millisecond)
	b.Record(2 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Min() != 2*time.Millisecond || a.Max() != 4*time.Millisecond {
		t.Fatalf("merge into empty: %v", a.Snapshot())
	}
}

func TestMergeEmptyIn(t *testing.T) {
	var a, b Histogram
	a.Record(7 * time.Millisecond)
	a.Merge(&b)
	// An empty operand must not disturb min/max (b.min is 0 but holds
	// no samples).
	if a.Count() != 1 || a.Min() != 7*time.Millisecond || a.Max() != 7*time.Millisecond {
		t.Fatalf("merge empty in: %v min=%v", a.Snapshot(), a.Min())
	}
}

func TestMergeZeroMin(t *testing.T) {
	var a, b Histogram
	a.Record(5 * time.Millisecond)
	b.Record(0)
	a.Merge(&b)
	if a.Min() != 0 {
		t.Fatalf("min after merging a zero sample = %v, want 0", a.Min())
	}
}

func TestSum(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.Record(2 * time.Millisecond)
	if h.Sum() != 3*time.Millisecond {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000) * time.Microsecond)
	}
}
