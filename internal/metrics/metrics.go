// Package metrics provides a small streaming latency histogram with
// exponential buckets — enough to report p50/p95/p99 per-item
// recommendation latency without keeping every sample (the tail behaviour
// matters for the Fig. 10 efficiency story: an index with good average but
// bad p99 would be useless at stream rates).
package metrics

import (
	"fmt"
	"math"
	"time"
)

// numBuckets covers 1ns .. ~18s with ~7% resolution (ratio 2^(1/10)).
const (
	numBuckets = 340
	growth     = 1.0717734625362931 // 2^(1/10)
)

// Histogram accumulates duration samples into exponential buckets.
// The zero value is ready to use. Not safe for concurrent use —
// concurrent recorders should use telemetry.Histogram, the sharded
// wrapper over this type.
type Histogram struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
	min     time.Duration
}

func bucketFor(d time.Duration) int {
	if d < 1 {
		return 0
	}
	b := int(math.Log(float64(d)) / math.Log(growth))
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if h.count == 1 || d < h.min {
		h.min = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Max and Min return the extreme samples (0 when empty).
func (h *Histogram) Max() time.Duration { return h.max }
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Percentile returns the approximate p-th percentile (p in [0,100]):
// the upper bound of the bucket containing the p-th sample. Empty
// histograms return 0.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for b := 0; b < numBuckets; b++ {
		seen += h.buckets[b]
		if seen >= rank {
			upper := math.Pow(growth, float64(b+1))
			d := time.Duration(upper)
			// Clamp to the observed max unconditionally: a histogram
			// whose every sample is 0 must report 0, not the first
			// bucket's upper bound.
			if d > h.max {
				d = h.max
			}
			return d
		}
	}
	return h.max
}

// Snapshot is a fixed view of the headline statistics.
type Snapshot struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot captures the current statistics.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		Max:   h.max,
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Merge adds other's samples into h (bucket-wise; min/max/sum combined).
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	if other.count > 0 {
		if h.count == 0 || other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.count += other.count
	h.sum += other.sum
}
