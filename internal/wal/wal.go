// Package wal is the durable ingest log: every admitted micro-batch
// (observation batches and item registrations — the atomic replication
// units the routing layer already broadcasts) is appended as one
// checksummed record to a segmented on-disk log before it is applied.
// Recovery is checkpoint + delta tail: boot loads the latest snapshot
// checkpoint, then replays every record past the checkpoint sequence. A
// torn final record (the only corruption a crash can produce, since
// records are written append-only) is detected by its CRC and truncated
// away; it was never acknowledged, so dropping it preserves exactness.
//
// The log knows nothing about the wire protocol: payloads are opaque
// bytes. EncodeObserve/EncodeRegister provide the canonical payload
// codec shared by every layer that logs batches, and Apply replays a
// decoded record into anything with the engine's write surface.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Policy selects when appended records are fsynced to stable storage.
type Policy string

const (
	// PolicyBatch fsyncs after every appended batch: an acknowledged
	// write is durable. The default, and the only policy under which the
	// crash-recovery exactness argument holds unconditionally.
	PolicyBatch Policy = "batch"
	// PolicyInterval fsyncs on a background cadence: a crash can lose
	// the last interval's worth of acknowledged batches.
	PolicyInterval Policy = "interval"
	// PolicyOff never fsyncs: durability is whatever the OS page cache
	// survives. For benchmarking the append overhead in isolation.
	PolicyOff Policy = "off"
)

// ParsePolicy maps a flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyBatch, PolicyInterval, PolicyOff:
		return Policy(s), nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want batch, interval, or off)", s)
}

// Kind tags what a record's payload decodes to.
type Kind uint8

const (
	// KindObserve is an admitted observation micro-batch.
	KindObserve Kind = 1
	// KindRegister is an admitted item-registration batch.
	KindRegister Kind = 2
)

// Record is one logged micro-batch.
type Record struct {
	// Seq is the batch sequence, contiguous from 1 per log.
	Seq uint64
	// Kind tags the payload codec.
	Kind Kind
	// Payload is the encoded batch (see EncodeObserve/EncodeRegister).
	Payload []byte
}

// Sentinel errors. ErrTruncated marks an incomplete record at a segment
// tail (tolerated: the tail is truncated on recovery); ErrCorrupt marks
// a record whose checksum or framing is invalid.
var (
	ErrTruncated = errors.New("wal: truncated record")
	ErrCorrupt   = errors.New("wal: corrupt record")
	ErrClosed    = errors.New("wal: log closed")
)

// Record framing: u32 length of body, u32 CRC-32C of body, then the
// body = u64 sequence, u8 kind, payload. All integers little-endian.
const (
	recordHeader = 8
	bodyHeader   = 9
	// maxBody bounds one record's body so a corrupt length field cannot
	// drive a giant allocation (64 MiB, matching the RPC body cap).
	maxBody = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeRecord frames a record for appending.
func EncodeRecord(seq uint64, kind Kind, payload []byte) []byte {
	body := make([]byte, bodyHeader+len(payload))
	binary.LittleEndian.PutUint64(body, seq)
	body[8] = byte(kind)
	copy(body[bodyHeader:], payload)
	buf := make([]byte, recordHeader+len(body))
	binary.LittleEndian.PutUint32(buf, uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(body, castagnoli))
	copy(buf[recordHeader:], body)
	return buf
}

// DecodeRecord parses one record from the front of b, returning the
// record and the number of bytes consumed. ErrTruncated means b ends
// mid-record (tolerable at a segment tail); ErrCorrupt means the
// framing or checksum is invalid.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recordHeader {
		return Record{}, 0, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(b)
	if n < bodyHeader || n > maxBody {
		return Record{}, 0, fmt.Errorf("%w: body length %d", ErrCorrupt, n)
	}
	if len(b) < recordHeader+int(n) {
		return Record{}, 0, ErrTruncated
	}
	body := b[recordHeader : recordHeader+int(n)]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(b[4:]); got != want {
		return Record{}, 0, fmt.Errorf("%w: checksum %08x != %08x", ErrCorrupt, got, want)
	}
	rec := Record{
		Seq:     binary.LittleEndian.Uint64(body),
		Kind:    Kind(body[8]),
		Payload: append([]byte(nil), body[bodyHeader:]...),
	}
	return rec, recordHeader + int(n), nil
}

// Options configures Open.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// Policy is the fsync policy; empty means PolicyBatch.
	Policy Policy
	// SyncInterval is the PolicyInterval cadence; <= 0 means 100ms.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment past this size; <= 0
	// means 8 MiB.
	SegmentBytes int64
}

// Stats snapshots the log for /v2/stats and per-shard stats.
type Stats struct {
	Dir           string
	Policy        Policy
	Segments      int    // segment files, including the active one
	Bytes         int64  // total segment bytes
	LastSeq       uint64 // last appended (or recovered) sequence, 0 when empty
	CheckpointSeq uint64 // sequence the latest checkpoint covers through
	HasCheckpoint bool
	CheckpointAge time.Duration // age of the latest checkpoint, 0 when none
	Appends       uint64
	Syncs         uint64
	Checkpoints   uint64
}

type segInfo struct {
	path  string
	first uint64 // from the file name: sequence of its first record
	last  uint64 // last valid record's sequence (0 when empty)
	bytes int64
}

// Log is an open write-ahead log. Append/Checkpoint/Stats are safe for
// concurrent use; Replay is for boot, before serving writes.
type Log struct {
	mu  sync.Mutex
	dir string
	opt Options

	seg      *os.File // active segment
	segStart uint64
	segBytes int64
	sealed   []segInfo

	nextSeq  uint64
	ckptSeq  uint64
	ckptPath string
	ckptAt   time.Time
	hasCkpt  bool

	appends, syncs, ckpts uint64
	dirty                 bool
	closed                bool
	stopSync              chan struct{}
	syncDone              chan struct{}
}

// Open opens (or creates) the log in opt.Dir, recovering its state:
// stale temp files are removed, only the newest checkpoint is kept, and
// a torn record at the last segment's tail is truncated away.
func Open(opt Options) (*Log, error) {
	if opt.Dir == "" {
		return nil, errors.New("wal: Options.Dir required")
	}
	if opt.Policy == "" {
		opt.Policy = PolicyBatch
	}
	if _, err := ParsePolicy(string(opt.Policy)); err != nil {
		return nil, err
	}
	if opt.SyncInterval <= 0 {
		opt.SyncInterval = 100 * time.Millisecond
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 8 << 20
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: opt.Dir, opt: opt, nextSeq: 1}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	if opt.Policy == PolicyInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// recover scans the directory: prunes temp files and stale checkpoints,
// validates every segment, and truncates a torn tail. A corrupt record
// anywhere but the final segment's tail is an error — append-only
// crashes cannot produce one, so it signals real damage.
func (l *Log) recover() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var ckpts []segInfo
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(l.dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(path)
		case strings.HasSuffix(name, ".ckpt"):
			seq, perr := parseSeqName(name, ".ckpt")
			if perr != nil {
				continue
			}
			ckpts = append(ckpts, segInfo{path: path, first: seq})
		case strings.HasSuffix(name, ".wal"):
			seq, perr := parseSeqName(name, ".wal")
			if perr != nil {
				continue
			}
			l.sealed = append(l.sealed, segInfo{path: path, first: seq})
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i].first < ckpts[j].first })
	for i, c := range ckpts {
		if i < len(ckpts)-1 {
			os.Remove(c.path)
			continue
		}
		l.ckptSeq, l.ckptPath, l.hasCkpt = c.first, c.path, true
		if fi, serr := os.Stat(c.path); serr == nil {
			l.ckptAt = fi.ModTime()
		}
	}
	sort.Slice(l.sealed, func(i, j int) bool { return l.sealed[i].first < l.sealed[j].first })
	maxSeq := l.ckptSeq
	for i := range l.sealed {
		s := &l.sealed[i]
		last, valid, total, serr := scanSegment(s.path)
		if serr != nil {
			if i < len(l.sealed)-1 {
				return fmt.Errorf("wal: segment %s: %w", filepath.Base(s.path), serr)
			}
			// Torn tail on the final segment: drop the unacknowledged
			// remainder.
			if terr := os.Truncate(s.path, valid); terr != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(s.path), terr)
			}
			total = valid
		}
		s.last, s.bytes = last, total
		if last > maxSeq {
			maxSeq = last
		}
	}
	l.nextSeq = maxSeq + 1
	return nil
}

// openActive reuses the newest segment as the append target, or starts
// a fresh one named after the next sequence.
func (l *Log) openActive() error {
	if n := len(l.sealed); n > 0 && l.sealed[n-1].bytes < l.opt.SegmentBytes {
		s := l.sealed[n-1]
		f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.seg, l.segStart, l.segBytes = f, s.first, s.bytes
		l.sealed = l.sealed[:n-1]
		return nil
	}
	return l.newSegment()
}

// newSegment seals the active segment (if any) and starts the next one.
// Caller holds mu (or is Open, before the log is shared).
func (l *Log) newSegment() error {
	if l.seg != nil {
		if l.opt.Policy != PolicyOff {
			if err := l.seg.Sync(); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.syncs++
		}
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.sealed = append(l.sealed, segInfo{path: l.seg.Name(), first: l.segStart, last: l.nextSeq - 1, bytes: l.segBytes})
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%016x.wal", l.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.seg, l.segStart, l.segBytes = f, l.nextSeq, 0
	l.dirty = true // directory entry needs a sync
	syncDir(l.dir)
	return nil
}

func parseSeqName(name, ext string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSuffix(name, ext), 16, 64)
}

// scanSegment validates a segment file, returning the last record's
// sequence, the byte offset of the end of the last valid record, and
// the file size. A non-nil error means the file has invalid bytes past
// the valid prefix (err wraps ErrTruncated or ErrCorrupt).
func scanSegment(path string) (last uint64, valid int64, total int64, err error) {
	b, rerr := os.ReadFile(path)
	if rerr != nil {
		return 0, 0, 0, rerr
	}
	total = int64(len(b))
	off := 0
	for off < len(b) {
		rec, n, derr := DecodeRecord(b[off:])
		if derr != nil {
			return last, int64(off), total, derr
		}
		last = rec.Seq
		off += n
	}
	return last, int64(off), total, nil
}

// syncDir fsyncs a directory so renames and creates survive a crash.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Append logs one batch, assigning and returning its sequence. Under
// PolicyBatch the record is on stable storage when Append returns.
func (l *Log) Append(kind Kind, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) > maxBody-bodyHeader {
		return 0, fmt.Errorf("wal: payload %d bytes exceeds %d limit", len(payload), maxBody-bodyHeader)
	}
	seq := l.nextSeq
	buf := EncodeRecord(seq, kind, payload)
	if _, err := l.seg.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.nextSeq++
	l.segBytes += int64(len(buf))
	l.appends++
	l.dirty = true
	if l.opt.Policy == PolicyBatch {
		if err := l.seg.Sync(); err != nil {
			return 0, fmt.Errorf("wal: %w", err)
		}
		l.syncs++
		l.dirty = false
	}
	if l.segBytes >= l.opt.SegmentBytes {
		if err := l.newSegment(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || l.seg == nil || !l.dirty {
		return nil
	}
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.syncs++
	l.dirty = false
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			l.syncLocked()
			l.mu.Unlock()
		}
	}
}

// Replay streams every record with sequence >= from, in order, to fn.
// Boot-time only: it holds the log lock for the duration.
func (l *Log) Replay(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs := append(append([]segInfo(nil), l.sealed...),
		segInfo{path: l.seg.Name(), first: l.segStart, last: l.nextSeq - 1, bytes: l.segBytes})
	for _, s := range segs {
		if s.last != 0 && s.last < from {
			continue
		}
		b, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		off := 0
		for off < len(b) {
			rec, n, derr := DecodeRecord(b[off:])
			if derr != nil {
				return fmt.Errorf("wal: segment %s offset %d: %w", filepath.Base(s.path), off, derr)
			}
			off += n
			if rec.Seq < from {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Checkpoint atomically installs a new snapshot covering every sequence
// appended so far (write receives the destination), then compacts: all
// segment records are now redundant, so segment files are deleted and a
// fresh active segment starts. Appends are blocked for the duration —
// callers serialise Checkpoint against their own append+apply sections
// so the snapshot and the sequence watermark agree.
func (l *Log) Checkpoint(write func(io.Writer) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	seq := l.nextSeq - 1
	tmp, err := os.CreateTemp(l.dir, "ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: %w", err)
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%016x.ckpt", seq))
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(l.dir)
	if l.hasCkpt && l.ckptPath != path {
		os.Remove(l.ckptPath)
	}
	l.ckptSeq, l.ckptPath, l.ckptAt, l.hasCkpt = seq, path, time.Now(), true
	l.ckpts++
	// Compact: every logged record is covered by the new checkpoint.
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	os.Remove(l.seg.Name())
	for _, s := range l.sealed {
		os.Remove(s.path)
	}
	l.sealed, l.seg = nil, nil
	if err := l.newSegment(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// LatestCheckpoint opens the newest checkpoint for reading, returning
// the sequence it covers through. ok is false when none exists.
func (l *Log) LatestCheckpoint() (r io.ReadCloser, seq uint64, ok bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.hasCkpt {
		return nil, 0, false, nil
	}
	f, err := os.Open(l.ckptPath)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: %w", err)
	}
	return f, l.ckptSeq, true, nil
}

// Stats snapshots the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Dir:           l.dir,
		Policy:        l.opt.Policy,
		Segments:      len(l.sealed),
		LastSeq:       l.nextSeq - 1,
		CheckpointSeq: l.ckptSeq,
		HasCheckpoint: l.hasCkpt,
		Appends:       l.appends,
		Syncs:         l.syncs,
		Checkpoints:   l.ckpts,
	}
	for _, s := range l.sealed {
		st.Bytes += s.bytes
	}
	if l.seg != nil {
		st.Segments++
		st.Bytes += l.segBytes
	}
	if l.hasCkpt {
		st.CheckpointAge = time.Since(l.ckptAt)
	}
	return st
}

// Close syncs and closes the log. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	if cerr := l.seg.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	l.closed = true
	stop, done := l.stopSync, l.syncDone
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}
