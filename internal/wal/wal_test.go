package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
)

func mustOpen(t *testing.T, opt Options) *Log {
	t.Helper()
	l, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(from, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 10; i++ {
		kind := KindObserve
		if i%2 == 1 {
			kind = KindRegister
		}
		seq, err := l.Append(kind, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("seq = %d, want %d", seq, want)
		}
	}
	recs := collect(t, l, 1)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || string(r.Payload) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if got := collect(t, l, 7); len(got) != 4 || got[0].Seq != 7 {
		t.Fatalf("Replay(7) = %d records, first %+v", len(got), got[0])
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: state recovers, sequences continue.
	l2 := mustOpen(t, Options{Dir: dir})
	if got := collect(t, l2, 1); len(got) != 10 {
		t.Fatalf("after reopen: %d records, want 10", len(got))
	}
	seq, err := l2.Append(KindObserve, []byte("after"))
	if err != nil || seq != 11 {
		t.Fatalf("Append after reopen = %d, %v; want 11", seq, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(KindObserve, bytes.Repeat([]byte("x"), 40)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := l.Stats()
	if st.Segments < 10 {
		t.Fatalf("Segments = %d, want rotation (>= 10)", st.Segments)
	}
	if recs := collect(t, l, 1); len(recs) != 20 {
		t.Fatalf("replayed %d, want 20 across segments", len(recs))
	}
	l.Close()
	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	if recs := collect(t, l2, 1); len(recs) != 20 {
		t.Fatalf("after reopen: %d, want 20", len(recs))
	}
}

// TestTornWriteRecovery: a crash mid-append leaves a torn record at the
// tail. Reopen must truncate it, keep every complete record, and reuse
// the torn record's sequence for the next append (it was never acked).
func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(KindObserve, []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	segPath := l.seg.Name()
	l.Close()

	full := EncodeRecord(6, KindObserve, []byte("torn-away"))
	for name, tear := range map[string][]byte{
		"half-record":   full[:len(full)/2],
		"header-only":   full[:6],
		"flipped-crc":   flipByte(full, 5),
		"flipped-body":  flipByte(full, len(full)-2),
		"insane-length": {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3},
	} {
		t.Run(name, func(t *testing.T) {
			f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tear); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l2 := mustOpen(t, Options{Dir: dir})
			recs := collect(t, l2, 1)
			if len(recs) != 5 {
				t.Fatalf("recovered %d records, want 5 (torn tail dropped)", len(recs))
			}
			seq, err := l2.Append(KindObserve, []byte("resent"))
			if err != nil || seq != 6 {
				t.Fatalf("Append after torn recovery = %d, %v; want 6", seq, err)
			}
			// Remove the appended record so the next subtest starts from
			// the same 5-record base.
			l2.Close()
			b, err := os.ReadFile(segPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(segPath, int64(len(b)-len(EncodeRecord(6, KindObserve, []byte("resent"))))); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A corrupt record anywhere but the final segment's tail is damage a
// crash cannot explain: Open must refuse rather than silently skip.
func TestCorruptMiddleSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(KindObserve, bytes.Repeat([]byte("y"), 50)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("want >= 3 segments, got %d", st.Segments)
	}
	first := l.sealed[0].path
	l.Close()
	b, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentBytes: 64}); err == nil {
		t.Fatal("Open accepted a corrupt middle segment")
	}
}

func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 0; i < 8; i++ {
		if _, err := l.Append(KindRegister, bytes.Repeat([]byte("z"), 50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(func(w io.Writer) error {
		_, err := w.Write([]byte("snapshot-state-at-8"))
		return err
	}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := l.Stats()
	if st.CheckpointSeq != 8 || !st.HasCheckpoint || st.Checkpoints != 1 {
		t.Fatalf("stats after checkpoint = %+v", st)
	}
	if st.Segments != 1 || st.Bytes != 0 {
		t.Fatalf("compaction left %d segments / %d bytes, want 1 empty active", st.Segments, st.Bytes)
	}
	// Delta tail after the checkpoint.
	for i := 0; i < 3; i++ {
		if _, err := l.Append(KindObserve, []byte("tail")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	rc, seq, ok, err := l2.LatestCheckpoint()
	if err != nil || !ok || seq != 8 {
		t.Fatalf("LatestCheckpoint = seq %d, ok %v, err %v; want 8, true, nil", seq, ok, err)
	}
	snap, _ := io.ReadAll(rc)
	rc.Close()
	if string(snap) != "snapshot-state-at-8" {
		t.Fatalf("checkpoint bytes = %q", snap)
	}
	tail := collect(t, l2, seq+1)
	if len(tail) != 3 || tail[0].Seq != 9 || tail[2].Seq != 11 {
		t.Fatalf("delta tail = %+v, want seqs 9..11", tail)
	}
	// A second checkpoint replaces the first on disk.
	if err := l2.Checkpoint(func(w io.Writer) error { _, err := w.Write([]byte("v2")); err2 := err; return err2 }); err != nil {
		t.Fatal(err)
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(ckpts) != 1 || !strings.HasSuffix(ckpts[0], fmt.Sprintf("%016x.ckpt", 11)) {
		t.Fatalf("checkpoints on disk = %v, want one at seq 11", ckpts)
	}
}

func TestCheckpointWriteFailureLeavesLogUsable(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if _, err := l.Append(KindObserve, []byte("a")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := l.Checkpoint(func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Checkpoint error = %v, want wrapped boom", err)
	}
	st := l.Stats()
	if st.HasCheckpoint || st.Checkpoints != 0 {
		t.Fatalf("failed checkpoint recorded: %+v", st)
	}
	if _, err := l.Append(KindObserve, []byte("b")); err != nil {
		t.Fatalf("Append after failed checkpoint: %v", err)
	}
	if recs := collect(t, l, 1); len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []Policy{PolicyBatch, PolicyInterval, PolicyOff} {
		t.Run(string(pol), func(t *testing.T) {
			l := mustOpen(t, Options{Dir: t.TempDir(), Policy: pol, SyncInterval: 5 * time.Millisecond})
			for i := 0; i < 4; i++ {
				if _, err := l.Append(KindObserve, []byte("p")); err != nil {
					t.Fatal(err)
				}
			}
			st := l.Stats()
			switch pol {
			case PolicyBatch:
				if st.Syncs < 4 {
					t.Fatalf("Syncs = %d, want >= 4 under batch policy", st.Syncs)
				}
			case PolicyInterval:
				deadline := time.Now().Add(2 * time.Second)
				for l.Stats().Syncs == 0 && time.Now().Before(deadline) {
					time.Sleep(5 * time.Millisecond)
				}
				if l.Stats().Syncs == 0 {
					t.Fatal("interval policy never synced")
				}
			case PolicyOff:
				if st.Syncs != 0 {
					t.Fatalf("Syncs = %d, want 0 under off policy", st.Syncs)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, err := l.Append(KindObserve, nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("Append after Close = %v, want ErrClosed", err)
			}
		})
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
	if _, err := Open(Options{Dir: t.TempDir(), Policy: "sometimes"}); err == nil {
		t.Fatal("Open accepted a garbage policy")
	}
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open accepted empty Dir")
	}
}

func TestPayloadCodecsAndApply(t *testing.T) {
	items := []model.Item{
		{ID: "i1", Category: "c", Producer: "u9", Entities: []string{"e1", "e2"}, Description: "d", Timestamp: 42},
		{ID: "i2", Category: "c"},
	}
	obs := []core.Observation{
		{UserID: "u1", Item: items[0], Timestamp: 100},
		{UserID: "u2", Item: items[1], Timestamp: 101},
	}
	rp, err := EncodeRegister(items)
	if err != nil {
		t.Fatal(err)
	}
	gotItems, err := DecodeRegister(rp)
	if err != nil || len(gotItems) != 2 || gotItems[0].ID != "i1" || len(gotItems[0].Entities) != 2 {
		t.Fatalf("register round-trip = %+v, %v", gotItems, err)
	}
	op, err := EncodeObserve(obs)
	if err != nil {
		t.Fatal(err)
	}
	gotObs, err := DecodeObserve(op)
	if err != nil || len(gotObs) != 2 || gotObs[0].UserID != "u1" || gotObs[1].Item.ID != "i2" {
		t.Fatalf("observe round-trip = %+v, %v", gotObs, err)
	}

	eng := core.New(core.Config{Categories: []string{"c"}})
	ctx := context.Background()
	if err := Apply(ctx, Record{Seq: 1, Kind: KindRegister, Payload: rp}, eng); err != nil {
		t.Fatalf("Apply register: %v", err)
	}
	if err := Apply(ctx, Record{Seq: 2, Kind: KindObserve, Payload: op}, eng); err != nil {
		t.Fatalf("Apply observe: %v", err)
	}
	if err := Apply(ctx, Record{Seq: 3, Kind: Kind(99)}, eng); err == nil {
		t.Fatal("Apply accepted unknown kind")
	}
	if err := Apply(ctx, Record{Seq: 4, Kind: KindObserve, Payload: []byte("{")}, eng); err == nil {
		t.Fatal("Apply accepted malformed observe payload")
	}
	if err := Apply(ctx, Record{Seq: 5, Kind: KindRegister, Payload: []byte("{")}, eng); err == nil {
		t.Fatal("Apply accepted malformed register payload")
	}
}

func TestAppendPayloadTooLarge(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if _, err := l.Append(KindObserve, make([]byte, maxBody)); err == nil {
		t.Fatal("Append accepted an oversized payload")
	}
}

func TestStatsAndTempCleanup(t *testing.T) {
	dir := t.TempDir()
	// Leftover temp file from a crashed checkpoint must be pruned.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-123.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Unparseable names are ignored.
	if err := os.WriteFile(filepath.Join(dir, "not-a-seq.wal"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := mustOpen(t, Options{Dir: dir})
	if _, err := os.Stat(filepath.Join(dir, "ckpt-123.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp file survived Open")
	}
	st := l.Stats()
	if st.LastSeq != 0 || st.HasCheckpoint || st.Dir != dir || st.Policy != PolicyBatch {
		t.Fatalf("fresh stats = %+v", st)
	}
	if _, seq, ok, err := l.LatestCheckpoint(); ok || seq != 0 || err != nil {
		t.Fatalf("LatestCheckpoint on fresh log = %d, %v, %v", seq, ok, err)
	}
	if _, err := l.Append(KindObserve, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(func(w io.Writer) error { _, err := w.Write([]byte("s")); return err }); err != nil {
		t.Fatal(err)
	}
	st = l.Stats()
	if st.LastSeq != 1 || st.CheckpointSeq != 1 || st.CheckpointAge < 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

// After Close, a second Close is a no-op and Replay/Checkpoint refuse.
func TestClosedOperations(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if err := l.Replay(1, func(Record) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay after Close = %v", err)
	}
	if err := l.Checkpoint(func(io.Writer) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close = %v", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if _, err := l.Append(KindObserve, []byte("x")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("stop")
	if err := l.Replay(1, func(Record) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Replay = %v, want callback error", err)
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}
