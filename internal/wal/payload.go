// payload.go is the canonical batch codec for WAL records. It mirrors
// the shard RPC wire shapes (so a logged batch round-trips exactly what
// the RPC admitted) but is owned here: the RPC layer depends on the WAL,
// not the other way around.
package wal

import (
	"context"
	"encoding/json"
	"fmt"

	"ssrec/internal/core"
	"ssrec/internal/model"
)

func marshalPayload(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wal: encode payload: %w", err)
	}
	return b, nil
}

func unmarshalPayload(b []byte, v any) error {
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("wal: decode payload: %w", err)
	}
	return nil
}

type itemPayload struct {
	ID          string   `json:"id"`
	Category    string   `json:"category,omitempty"`
	Producer    string   `json:"producer,omitempty"`
	Entities    []string `json:"entities,omitempty"`
	Description string   `json:"description,omitempty"`
	Timestamp   int64    `json:"ts,omitempty"`
}

type obsPayload struct {
	User string      `json:"user"`
	Item itemPayload `json:"item"`
	TS   int64       `json:"ts"`
}

type observePayload struct {
	Batch []obsPayload `json:"batch"`
}

type registerPayload struct {
	Items []itemPayload `json:"items"`
}

func toItemPayload(it model.Item) itemPayload {
	return itemPayload{
		ID:          it.ID,
		Category:    it.Category,
		Producer:    it.Producer,
		Entities:    it.Entities,
		Description: it.Description,
		Timestamp:   it.Timestamp,
	}
}

func (p itemPayload) item() model.Item {
	return model.Item{
		ID:          p.ID,
		Category:    p.Category,
		Producer:    p.Producer,
		Entities:    p.Entities,
		Description: p.Description,
		Timestamp:   p.Timestamp,
	}
}

// EncodeObserve encodes an observation micro-batch for a KindObserve
// record.
func EncodeObserve(batch []core.Observation) ([]byte, error) {
	p := observePayload{Batch: make([]obsPayload, len(batch))}
	for i, o := range batch {
		p.Batch[i] = obsPayload{User: o.UserID, Item: toItemPayload(o.Item), TS: o.Timestamp}
	}
	return marshalPayload(p)
}

// DecodeObserve decodes a KindObserve payload.
func DecodeObserve(payload []byte) ([]core.Observation, error) {
	var p observePayload
	if err := unmarshalPayload(payload, &p); err != nil {
		return nil, err
	}
	batch := make([]core.Observation, len(p.Batch))
	for i, o := range p.Batch {
		batch[i] = core.Observation{UserID: o.User, Item: o.Item.item(), Timestamp: o.TS}
	}
	return batch, nil
}

// EncodeRegister encodes an item-registration batch for a KindRegister
// record.
func EncodeRegister(items []model.Item) ([]byte, error) {
	p := registerPayload{Items: make([]itemPayload, len(items))}
	for i, it := range items {
		p.Items[i] = toItemPayload(it)
	}
	return marshalPayload(p)
}

// DecodeRegister decodes a KindRegister payload.
func DecodeRegister(payload []byte) ([]model.Item, error) {
	var p registerPayload
	if err := unmarshalPayload(payload, &p); err != nil {
		return nil, err
	}
	items := make([]model.Item, len(p.Items))
	for i, ip := range p.Items {
		items[i] = ip.item()
	}
	return items, nil
}

// Applier is the write surface recovery replay drives — satisfied by
// *core.Engine.
type Applier interface {
	RegisterItemBatch(items []model.Item) bool
	ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error)
}

var _ Applier = (*core.Engine)(nil)

// Apply decodes one record and replays it into a. Batches re-apply in
// their original admission order, so replaying the tail past a
// checkpoint reproduces the pre-crash state exactly.
func Apply(ctx context.Context, rec Record, a Applier) error {
	switch rec.Kind {
	case KindObserve:
		batch, err := DecodeObserve(rec.Payload)
		if err != nil {
			return fmt.Errorf("wal: record %d: %w", rec.Seq, err)
		}
		if _, err := a.ObserveBatch(ctx, batch); err != nil {
			return fmt.Errorf("wal: record %d: %w", rec.Seq, err)
		}
	case KindRegister:
		items, err := DecodeRegister(rec.Payload)
		if err != nil {
			return fmt.Errorf("wal: record %d: %w", rec.Seq, err)
		}
		a.RegisterItemBatch(items)
	default:
		return fmt.Errorf("wal: record %d: unknown kind %d", rec.Seq, rec.Kind)
	}
	return nil
}
