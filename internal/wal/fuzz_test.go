package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord hammers the log-record decoder with the corruption a
// crashed or bit-rotted segment can contain: truncations at every
// boundary, flipped bits in the header, CRC, and body, and garbage
// framing. Invariants: never panic, never over-consume, and any record
// the decoder accepts must re-encode to exactly the bytes consumed
// (acceptance implies integrity — the CRC covers the whole body).
func FuzzDecodeRecord(f *testing.F) {
	whole := EncodeRecord(7, KindObserve, []byte(`{"batch":[{"user":"u1","item":{"id":"i1"},"ts":9}]}`))
	reg := EncodeRecord(8, KindRegister, []byte(`{"items":[{"id":"i2","category":"c"}]}`))
	f.Add(whole)
	f.Add(reg)
	f.Add(append(append([]byte{}, whole...), reg...))
	f.Add(whole[:len(whole)/2])          // torn mid-body
	f.Add(whole[:6])                     // torn mid-header
	f.Add(flipByte(whole, 5))            // corrupt CRC
	f.Add(flipByte(whole, len(whole)-1)) // corrupt body tail
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(EncodeRecord(0, Kind(0), nil))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error path consumed %d bytes", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if !bytes.Equal(EncodeRecord(rec.Seq, rec.Kind, rec.Payload), data[:n]) {
			t.Fatalf("accepted record does not round-trip: %+v", rec)
		}
	})
}
