// encode.go is the zero-allocation query encoder of the CPPse-index hot
// path: one pooled queryScratch per in-flight Recommend call replaces the
// per-(item,tree) map/sort/slice churn of the naive encoding. See
// DESIGN.md, "Zero-allocation query core".
package cppse

import (
	"slices"
	"sync"

	"ssrec/internal/ranking"
	"ssrec/internal/shx"
	"ssrec/internal/sigtree"
)

// queryScratch carries every reusable buffer of one Recommend call: the
// candidate-tree dedup set, the encoded per-tree queries (value slab),
// an arena for their sparse entity lists, and a stamped dense accumulator
// for entity-weight folding. Instances are pooled; all buffers retain
// capacity across queries.
type queryScratch struct {
	seen    map[*sigtree.Tree]bool
	trees   []*sigtree.Tree
	tqs     []sigtree.TreeQuery
	queries []sigtree.Query       // value slab; tqs point into it
	arena   []sigtree.WeightedIdx // backing for all queries' Ents
	dense   []float64             // entity-weight accumulator, indexed by universe idx
	stamp   []int                 // dense[i] is valid iff stamp[i] == epoch
	touched []int
	epoch   int
}

var scratchPool = sync.Pool{New: func() any {
	return &queryScratch{seen: make(map[*sigtree.Tree]bool)}
}}

// getScratch / putScratch bracket one query's scratch use; putScratch
// centralizes the release-before-Put invariant (defer it at every Get).
func getScratch() *queryScratch { return scratchPool.Get().(*queryScratch) }

func putScratch(sc *queryScratch) {
	sc.release()
	scratchPool.Put(sc)
}

func (sc *queryScratch) reset() {
	clear(sc.seen)
	sc.trees = sc.trees[:0]
	sc.tqs = sc.tqs[:0]
	sc.queries = sc.queries[:0]
	sc.arena = sc.arena[:0]
}

// release drops every index reference (tree pointers in the dedup set,
// candidate slice and encoded queries) before the scratch returns to the
// pool, so idle scratches don't pin replaced index structures after a
// RebuildIndex — the same guarantee Searcher.Run gives for its slab.
func (sc *queryScratch) release() {
	clear(sc.seen)
	sc.trees = sc.trees[:cap(sc.trees)]
	clear(sc.trees)
	sc.trees = sc.trees[:0]
	sc.tqs = sc.tqs[:cap(sc.tqs)]
	clear(sc.tqs)
	sc.tqs = sc.tqs[:0]
	sc.queries = sc.queries[:cap(sc.queries)]
	clear(sc.queries)
	sc.queries = sc.queries[:0]
	sc.arena = sc.arena[:0]
}

// lookupTreesInto locates candidate trees for a query into sc.trees. The
// primary path is the paper's: the chained hash table over the query's
// ⟨category, entity⟩ pairs. It is complemented by producer routing —
// trees of the item's category whose block has browsed the item's
// producer — because the ranking function (Eq. 2) scores producer
// affinity as strongly as entity affinity, and at laptop-scale
// vocabularies the entity hash alone would spuriously skip whole blocks
// that the paper's 54k-entity vocabulary would always match (see
// DESIGN.md, implementation refinements).
func (ix *Index) lookupTreesInto(sc *queryScratch, q ranking.ItemQuery) {
	add := func(tr *sigtree.Tree) {
		if !sc.seen[tr] {
			sc.seen[tr] = true
			sc.trees = append(sc.trees, tr)
		}
	}
	for _, we := range q.Entities {
		for _, ptr := range ix.hash.Lookup(shx.PairKey(q.Category, we.Name)) {
			add(ptr.(*sigtree.Tree))
		}
	}
	for _, tr := range ix.treesByCat[q.Category] {
		if _, ok := tr.Prod.Index(q.Producer); ok {
			add(tr)
		}
	}
}

// encodeAll produces the pseudo-queries of the paper's Example 1 for every
// candidate tree of the item. The user-independent background masses
// (BgProd, BgEnt) do not depend on the tree, so they are computed once per
// item instead of once per (item, tree); the per-tree work is only the
// producer-index lookup and the sparse entity projection, folded through
// the stamped dense accumulator (no maps, no per-tree allocations in
// steady state).
func (ix *Index) encodeAll(sc *queryScratch, q ranking.ItemQuery) []sigtree.TreeQuery {
	sc.reset()
	ix.lookupTreesInto(sc, q)
	if len(sc.trees) == 0 {
		return nil
	}
	bgProd := ix.bg.ProducerProb(q.Producer)
	var bgEnt float64
	for _, we := range q.Entities {
		bgEnt += we.Weight * ix.bg.EntityProb(q.Category, we.Name)
	}
	for _, tr := range sc.trees {
		sq := sigtree.Query{
			ProdIdx: -1,
			BgProd:  bgProd,
			BgEnt:   bgEnt,
			Mu:      ix.cfg.Mu,
			LambdaS: ix.cfg.LambdaS,
		}
		if i, ok := tr.Prod.Index(q.Producer); ok {
			sq.ProdIdx = i
		}
		if n := tr.Ent.Len(); n > len(sc.dense) {
			sc.dense = append(sc.dense, make([]float64, n-len(sc.dense))...)
			sc.stamp = append(sc.stamp, make([]int, n-len(sc.stamp))...)
		}
		sc.epoch++
		sc.touched = sc.touched[:0]
		for _, we := range q.Entities {
			if i, ok := tr.Ent.Index(we.Name); ok {
				if sc.stamp[i] != sc.epoch {
					sc.stamp[i] = sc.epoch
					sc.dense[i] = 0
					sc.touched = append(sc.touched, i)
				}
				sc.dense[i] += we.Weight
			}
		}
		// Deterministic (index-ascending) summation order so repeated
		// encodings of the same item produce bit-identical scores.
		slices.Sort(sc.touched)
		start := len(sc.arena)
		for _, i := range sc.touched {
			sc.arena = append(sc.arena, sigtree.WeightedIdx{Idx: i, W: sc.dense[i]})
		}
		// Full slice expression: later arena growth must copy, not clobber.
		sq.Ents = sc.arena[start:len(sc.arena):len(sc.arena)]
		sc.queries = append(sc.queries, sq)
	}
	for i, tr := range sc.trees {
		sc.tqs = append(sc.tqs, sigtree.TreeQuery{Tree: tr, Query: &sc.queries[i]})
	}
	return sc.tqs
}
