package cppse

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ssrec/internal/model"
	"ssrec/internal/profile"
	"ssrec/internal/ranking"
)

// fixture builds a store with three user cohorts (sports fans, music fans,
// mixed) plus the matching background.
func fixture(t testing.TB, nPerCohort int) (*profile.Store, *profile.Background, []string) {
	t.Helper()
	cats := []string{"sports", "music", "news"}
	store := profile.NewStore(5)
	rng := rand.New(rand.NewSource(42))

	var items []model.Item
	mkEvent := func(cat string, i int) profile.Event {
		up := fmt.Sprintf("%s-up%d", cat, i%3)
		ents := []string{
			fmt.Sprintf("%s-e%d", cat, i%6),
			fmt.Sprintf("%s-e%d", cat, (i+1)%6),
		}
		items = append(items, model.Item{
			ID: fmt.Sprintf("bg-%s-%d", cat, len(items)), Category: cat,
			Producer: up, Entities: ents,
		})
		return profile.Event{Category: cat, Producer: up, Entities: ents}
	}
	for c := 0; c < nPerCohort; c++ {
		sports := store.Get(fmt.Sprintf("sports%03d", c))
		music := store.Get(fmt.Sprintf("music%03d", c))
		mixed := store.Get(fmt.Sprintf("mixed%03d", c))
		for i := 0; i < 20; i++ {
			sports.ObserveLongTerm(mkEvent("sports", i+c))
			music.ObserveLongTerm(mkEvent("music", i+c))
			if i%2 == 0 {
				mixed.ObserveLongTerm(mkEvent("sports", i+c))
			} else {
				mixed.ObserveLongTerm(mkEvent("news", i+c))
			}
		}
		_ = rng
	}
	bg := profile.NewBackground(items, 10)
	return store, bg, cats
}

func buildIndex(t testing.TB, nPerCohort int, cfg Config) (*Index, *profile.Store, *profile.Background) {
	t.Helper()
	store, bg, cats := fixture(t, nPerCohort)
	cfg.Categories = cats
	probs := MLEProbs{Store: store, NCats: len(cats)}
	ix, err := Build(store, bg, probs, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix, store, bg
}

func sportsItem(i int) model.Item {
	return model.Item{
		ID: "q", Category: "sports", Producer: "sports-up0",
		Entities: []string{fmt.Sprintf("sports-e%d", i%6), "sports-e1"},
	}
}

func TestBuildBasic(t *testing.T) {
	ix, store, _ := buildIndex(t, 10, Config{})
	s := ix.Stats()
	if s.Users != store.Len() {
		t.Errorf("indexed %d users, want %d", s.Users, store.Len())
	}
	if s.Blocks == 0 || s.Trees == 0 || s.HashKeys == 0 {
		t.Errorf("degenerate stats: %+v", s)
	}
	// Every user must be assigned to a block.
	for _, id := range store.UserIDs() {
		if _, ok := ix.BlockOf(id); !ok {
			t.Errorf("user %s unassigned", id)
		}
	}
}

func TestBuildRequiresCategories(t *testing.T) {
	store := profile.NewStore(5)
	bg := profile.NewBackground(nil, 10)
	if _, err := Build(store, bg, MLEProbs{Store: store, NCats: 1}, Config{}); err == nil {
		t.Fatal("Build accepted empty categories")
	}
}

func TestBlockingSeparatesCohorts(t *testing.T) {
	ix, _, _ := buildIndex(t, 10, Config{SimThreshold: 0.7})
	// All sports users in one block, all music users in another,
	// and they differ.
	b0, _ := ix.BlockOf("sports000")
	b1, _ := ix.BlockOf("music000")
	if b0 == b1 {
		t.Errorf("sports and music users share block %d", b0)
	}
	for i := 1; i < 10; i++ {
		if b, _ := ix.BlockOf(fmt.Sprintf("sports%03d", i)); b != b0 {
			t.Errorf("sports%03d in block %d, want %d", i, b, b0)
		}
	}
}

func TestRecommendPrefersCohort(t *testing.T) {
	ix, _, _ := buildIndex(t, 10, Config{})
	q := ranking.BuildQuery(sportsItem(0), nil)
	recs, _ := ix.Recommend(q, 10)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	sportsHits := 0
	for _, r := range recs {
		if r.UserID[:5] == "sport" || r.UserID[:5] == "mixed" {
			sportsHits++
		}
	}
	if sportsHits < len(recs)*7/10 {
		t.Errorf("only %d/%d recommendations from sports-interested cohorts: %v",
			sportsHits, len(recs), recs)
	}
}

func TestRecommendMatchesScan(t *testing.T) {
	ix, _, _ := buildIndex(t, 15, Config{Fanout: 4})
	for trial := 0; trial < 10; trial++ {
		q := ranking.BuildQuery(sportsItem(trial), nil)
		for _, k := range []int{1, 5, 20} {
			got, _ := ix.Recommend(q, k)
			want := ix.RecommendScan(q, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d:\n got %v\nwant %v", trial, k, got, want)
			}
		}
	}
}

func TestRecommendUnknownEntities(t *testing.T) {
	ix, _, _ := buildIndex(t, 5, Config{})
	v := model.Item{ID: "q", Category: "sports", Producer: "ghost",
		Entities: []string{"never-seen-entity"}}
	recs, _ := ix.Recommend(ranking.BuildQuery(v, nil), 5)
	// No hash entry matches, so no candidate trees: empty result, no panic.
	if len(recs) != 0 {
		t.Errorf("recommendations for unmatched item: %v", recs)
	}
}

func TestCandidateUsersSubset(t *testing.T) {
	ix, store, _ := buildIndex(t, 10, Config{})
	q := ranking.BuildQuery(sportsItem(1), nil)
	cand := ix.CandidateUsers(q)
	if len(cand) == 0 || len(cand) > store.Len() {
		t.Fatalf("candidates = %d (store %d)", len(cand), store.Len())
	}
	// music-only users must not be candidates for a sports item.
	for _, u := range cand {
		if u[:5] == "music" {
			t.Errorf("music user %s is a sports candidate", u)
		}
	}
}

func TestUpdateExistingUserChangesScores(t *testing.T) {
	ix, store, _ := buildIndex(t, 10, Config{})
	// A music user starts consuming sports heavily.
	p, _ := store.Lookup("music000")
	for i := 0; i < 30; i++ {
		p.ObserveLongTerm(profile.Event{Category: "sports", Producer: "sports-up0",
			Entities: []string{"sports-e1", "sports-e2"}})
	}
	if err := ix.UpdateUser("music000"); err != nil {
		t.Fatalf("UpdateUser: %v", err)
	}
	q := ranking.BuildQuery(sportsItem(1), nil)
	recs, _ := ix.Recommend(q, len(store.UserIDs()))
	found := false
	for _, r := range recs {
		if r.UserID == "music000" {
			found = true
		}
	}
	if !found {
		t.Error("updated user never appears in sports results")
	}
}

func TestUpdateNewUser(t *testing.T) {
	ix, store, _ := buildIndex(t, 5, Config{})
	p := store.Get("newcomer")
	for i := 0; i < 10; i++ {
		p.ObserveLongTerm(profile.Event{Category: "sports", Producer: "sports-up1",
			Entities: []string{"sports-e3"}})
	}
	if err := ix.UpdateUser("newcomer"); err != nil {
		t.Fatalf("UpdateUser: %v", err)
	}
	b, ok := ix.BlockOf("newcomer")
	if !ok {
		t.Fatal("new user unassigned")
	}
	// Must land in the sports cohort's block.
	bSports, _ := ix.BlockOf("sports000")
	if b != bSports {
		t.Errorf("newcomer in block %d, sports cohort in %d", b, bSports)
	}
	if tr := ix.Tree(b, "sports"); tr == nil || !tr.Has("newcomer") {
		t.Error("newcomer missing from sports tree")
	}
}

func TestUpdateUnknownEntityExtendsHash(t *testing.T) {
	ix, store, _ := buildIndex(t, 5, Config{})
	before := ix.Stats().HashKeys
	p, _ := store.Lookup("sports000")
	p.ObserveLongTerm(profile.Event{Category: "sports", Producer: "sports-up0",
		Entities: []string{"brand-new-entity"}})
	if err := ix.UpdateUser("sports000"); err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().HashKeys; got != before+1 {
		t.Errorf("hash keys %d -> %d, want +1", before, got)
	}
	// The new entity must now route queries.
	v := model.Item{ID: "q", Category: "sports", Producer: "sports-up0",
		Entities: []string{"brand-new-entity"}}
	recs, _ := ix.Recommend(ranking.BuildQuery(v, nil), 5)
	if len(recs) == 0 {
		t.Error("no results through newly hashed entity")
	}
}

func TestUpdateUnknownUserErrors(t *testing.T) {
	ix, _, _ := buildIndex(t, 3, Config{})
	if err := ix.UpdateUser("ghost"); err == nil {
		t.Fatal("UpdateUser accepted unknown user")
	}
}

func TestFixedBlocksSweep(t *testing.T) {
	// Table II machinery: forcing more blocks must not increase the
	// maximum per-tree universe sizes.
	var prevEnt int
	for _, k := range []int{1, 3, 6} {
		ix, _, _ := buildIndex(t, 10, Config{FixedBlocks: k})
		s := ix.Stats()
		if s.Blocks > k {
			t.Errorf("FixedBlocks=%d produced %d blocks", k, s.Blocks)
		}
		if k == 1 {
			prevEnt = s.MaxEntityUni
			continue
		}
		if s.MaxEntityUni > prevEnt {
			t.Errorf("k=%d: MaxEntityUni %d grew above single-block %d", k, s.MaxEntityUni, prevEnt)
		}
	}
}

func TestMLEProbs(t *testing.T) {
	store := profile.NewStore(3)
	p := store.Get("u")
	p.ObserveLongTerm(profile.Event{Category: "a", Producer: "x"})
	p.ObserveLongTerm(profile.Event{Category: "a", Producer: "x"})
	p.Observe(profile.Event{Category: "b", Producer: "x"})
	probs := MLEProbs{Store: store, NCats: 2}
	if probs.Long("u", "a") <= probs.Long("u", "b") {
		t.Error("long-term MLE ignores history")
	}
	if probs.Short("u", "b") <= probs.Short("u", "a") {
		t.Error("short-term prob ignores window")
	}
	if probs.Long("ghost", "a") <= 0 || probs.Short("ghost", "a") <= 0 {
		t.Error("unknown user probabilities must be positive")
	}
}

func BenchmarkRecommend(b *testing.B) {
	ix, _, _ := buildIndex(b, 200, Config{})
	q := ranking.BuildQuery(sportsItem(0), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Recommend(q, 30)
	}
}

func BenchmarkUpdateUser(b *testing.B) {
	ix, store, _ := buildIndex(b, 100, Config{})
	p, _ := store.Lookup("sports000")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(profile.Event{Category: "sports", Producer: "sports-up0",
			Entities: []string{fmt.Sprintf("sports-e%d", i%6)}})
		if err := ix.UpdateUser("sports000"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProducerRoutingFindsTrees(t *testing.T) {
	// An item whose entities are all unseen must still reach the trees of
	// blocks that have browsed its producer (the producer routing path).
	ix, _, _ := buildIndex(t, 8, Config{})
	v := model.Item{ID: "q", Category: "sports", Producer: "sports-up0",
		Entities: []string{"entity-nobody-has-seen"}}
	recs, _ := ix.Recommend(ranking.BuildQuery(v, nil), 5)
	if len(recs) == 0 {
		t.Fatal("producer routing found no candidates")
	}
	for _, r := range recs {
		if r.UserID[:5] == "music" {
			t.Errorf("music-only user %s routed for sports item", r.UserID)
		}
	}
}

func TestUnknownProducerAndEntities(t *testing.T) {
	ix, _, _ := buildIndex(t, 5, Config{})
	v := model.Item{ID: "q", Category: "sports", Producer: "ghost-producer",
		Entities: []string{"unseen-entity"}}
	recs, _ := ix.Recommend(ranking.BuildQuery(v, nil), 5)
	if len(recs) != 0 {
		t.Errorf("no routing signal but got %d recommendations", len(recs))
	}
}

func TestRemoveUser(t *testing.T) {
	ix, store, _ := buildIndex(t, 8, Config{})
	if !ix.RemoveUser("sports000") {
		t.Fatal("RemoveUser returned false")
	}
	if _, ok := ix.BlockOf("sports000"); ok {
		t.Fatal("removed user still assigned to a block")
	}
	if ix.RemoveUser("sports000") {
		t.Fatal("double removal returned true")
	}
	if ix.RemoveUser("ghost") {
		t.Fatal("removing unknown user returned true")
	}
	// The removed user never appears in results again.
	q := ranking.BuildQuery(sportsItem(0), nil)
	recs, _ := ix.Recommend(q, store.Len())
	for _, r := range recs {
		if r.UserID == "sports000" {
			t.Fatal("removed user recommended")
		}
	}
	// And can rejoin via Algorithm 2.
	if err := ix.UpdateUser("sports000"); err != nil {
		t.Fatalf("re-adding removed user: %v", err)
	}
	if _, ok := ix.BlockOf("sports000"); !ok {
		t.Fatal("re-added user unassigned")
	}
}
