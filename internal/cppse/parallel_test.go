package cppse

import (
	"fmt"
	"reflect"
	"testing"

	"ssrec/internal/model"
	"ssrec/internal/profile"
	"ssrec/internal/ranking"
)

// TestRecommendParallelEquivalence asserts the index returns bit-identical
// top-k lists (users, scores, tie-break order) at every parallelism level,
// and that both match the no-pruning sequential scan over the same
// candidate trees.
func TestRecommendParallelEquivalence(t *testing.T) {
	seq, _, _ := buildIndex(t, 20, Config{})
	queries := []model.Item{
		sportsItem(0),
		sportsItem(3),
		{ID: "m", Category: "music", Producer: "music-up1",
			Entities: []string{"music-e0", "music-e4"}},
		{ID: "n", Category: "news", Producer: "sports-up2",
			Entities: []string{"news-e2", "sports-e3"}},
	}
	for _, p := range []int{1, 2, 8} {
		par, _, _ := buildIndex(t, 20, Config{Parallelism: p})
		for qi, v := range queries {
			q := ranking.BuildQuery(v, nil)
			for _, k := range []int{1, 5, 30, 500} {
				want, _ := seq.Recommend(q, k)
				scan := seq.RecommendScan(q, k)
				if !reflect.DeepEqual(want, scan) {
					t.Fatalf("query %d k=%d: sequential Recommend != RecommendScan", qi, k)
				}
				got, _ := par.Recommend(q, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d k=%d parallelism=%d:\n got %v\nwant %v", qi, k, p, got, want)
				}
			}
		}
	}
}

// TestRecommendEncoderReuse hammers one index with distinct interleaved
// queries so the pooled scratch encoder is exercised across shapes: every
// repetition of the same query must give bit-identical results.
func TestRecommendEncoderReuse(t *testing.T) {
	ix, _, _ := buildIndex(t, 15, Config{})
	type ref struct {
		q    ranking.ItemQuery
		want []model.Recommendation
	}
	var refs []ref
	for i := 0; i < 6; i++ {
		cat := []string{"sports", "music", "news"}[i%3]
		v := model.Item{ID: fmt.Sprintf("q%d", i), Category: cat,
			Producer: fmt.Sprintf("%s-up%d", cat, i%3),
			Entities: []string{fmt.Sprintf("%s-e%d", cat, i%6), fmt.Sprintf("%s-e%d", cat, (i+2)%6)}}
		q := ranking.BuildQuery(v, nil)
		want, _ := ix.Recommend(q, 10)
		refs = append(refs, ref{q, want})
	}
	for round := 0; round < 20; round++ {
		r := refs[round%len(refs)]
		got, _ := ix.Recommend(r.q, 10)
		if !reflect.DeepEqual(got, r.want) {
			t.Fatalf("round %d: scratch reuse changed results\n got %v\nwant %v", round, got, r.want)
		}
	}
}

// TestRecommendAfterUpdateParallel checks the maintenance path (Algorithm
// 2) composes with the parallel query path: post-update results match the
// sequential scan reference.
func TestRecommendAfterUpdateParallel(t *testing.T) {
	ix, store, _ := buildIndex(t, 10, Config{Parallelism: 4})
	p := store.Get("newbie")
	for i := 0; i < 8; i++ {
		p.Observe(profile.Event{Category: "sports", Producer: fmt.Sprintf("sports-up%d", i%3),
			Entities: []string{fmt.Sprintf("sports-e%d", i%6)}})
	}
	if err := ix.UpdateUser("newbie"); err != nil {
		t.Fatalf("UpdateUser: %v", err)
	}
	q := ranking.BuildQuery(sportsItem(1), nil)
	got, _ := ix.Recommend(q, 10)
	want := ix.RecommendScan(q, 10)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-update parallel mismatch:\n got %v\nwant %v", got, want)
	}
}

// BenchmarkRecommendAllocs pins the allocation profile of the full index
// hot path (lookup + encode + search).
func BenchmarkRecommendAllocs(b *testing.B) {
	ix, _, _ := buildIndex(b, 200, Config{})
	q := ranking.BuildQuery(sportsItem(0), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Recommend(q, 30)
	}
}
