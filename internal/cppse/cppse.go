// Package cppse assembles the CPPse-index of Zhou et al. (ICDE 2019, §V):
// a chained shift-add-xor hash table over category–entity pairs (package
// shx) pointing into extended signature trees (package sigtree), one per
// ⟨user block, category⟩, with user blocks produced by one-pass clustering
// over long-term categorical interests (package cluster).
//
// The index answers top-k user queries for incoming items (Algorithm 1 via
// sigtree.Search) and supports the dynamic maintenance of Algorithm 2:
// profile updates, unseen entities (hash + universe growth) and new users
// (nearest-block assignment).
package cppse

import (
	"context"
	"fmt"
	"sort"

	"ssrec/internal/cluster"
	"ssrec/internal/model"
	"ssrec/internal/profile"
	"ssrec/internal/ranking"
	"ssrec/internal/shx"
	"ssrec/internal/sigtree"
)

// Config parameterises index construction.
type Config struct {
	Categories []string
	// LambdaS balances short- vs long-term relevance (Eq. 3). Default 0.4.
	LambdaS float64
	// Mu is the Dirichlet pseudo-count of the smoothed MLEs. Default 10.
	Mu float64
	// SimThreshold is the one-pass clustering threshold. Default 0.6.
	SimThreshold float64
	// MaxBlocks caps the number of user blocks. Default 20.
	MaxBlocks int
	// FixedBlocks, when > 0, forces (approximately) that many blocks via
	// cluster.RunFixed — used by the Table II experiment sweep.
	FixedBlocks int
	// Fanout of the signature trees. Default sigtree.DefaultFanout.
	Fanout int
	// HashBuckets of the chained table. Default 1 << 12.
	HashBuckets int
	// Parallelism is the worker count of the partitioned parallel query
	// path (sigtree.SearchParallel): candidate trees are spread over that
	// many goroutines which prune against a shared lower bound. 0 or 1
	// keeps the sequential path; results are bit-identical at every
	// level. The index itself must not be mutated during a parallel
	// query — the engine's RWMutex enforces this.
	Parallelism int

	// Owns gates which users this index materialises leaf entries for —
	// the sharding hook of internal/shard. nil owns everyone (the single-
	// engine case). A sharded index still tracks every user's block
	// assignment and keeps the tree/producer/entity universes and the hash
	// table identical to an unsharded index (they are cheap, and candidate
	// routing must agree across shards), but only owned users get the
	// expensive part: the signature leaves and their BiHMM-backed
	// refreshes. See DESIGN.md, "Sharding".
	Owns func(userID string) bool
}

func (c *Config) fill() {
	if c.LambdaS == 0 {
		c.LambdaS = 0.4
	}
	if c.Mu <= 0 {
		c.Mu = 10
	}
	if c.SimThreshold == 0 {
		c.SimThreshold = 0.6
	}
	if c.MaxBlocks <= 0 {
		c.MaxBlocks = 20
	}
	if c.HashBuckets <= 0 {
		c.HashBuckets = 1 << 12
	}
}

// Probs supplies the cached BiHMM category probabilities stored in leaf
// signatures: Long is the long-term p(c|u), Short the short-term ps(c|u)
// over the user's recent window. The ssRec engine implements this with the
// trained BiHMM; MLEProbs is a model-free fallback.
type Probs interface {
	Long(userID, category string) float64
	Short(userID, category string) float64
}

// MLEProbs implements Probs from profile statistics alone: the long-term
// category MLE and the add-one-smoothed window frequency.
type MLEProbs struct {
	Store *profile.Store
	NCats int
}

// Long implements Probs.
func (m MLEProbs) Long(userID, category string) float64 {
	p, ok := m.Store.Lookup(userID)
	if !ok {
		return 1 / float64(m.NCats)
	}
	return p.CategoryMLE(category, m.NCats)
}

// Short implements Probs.
func (m MLEProbs) Short(userID, category string) float64 {
	p, ok := m.Store.Lookup(userID)
	if !ok {
		return 1 / float64(m.NCats)
	}
	n := p.WindowCategoryCount(category)
	return float64(n+1) / float64(p.WindowLen()+m.NCats)
}

type treeKey struct {
	block    int
	category string
}

// Index is the assembled CPPse-index.
type Index struct {
	cfg   Config
	bg    *profile.Background
	probs Probs
	store *profile.Store

	blocks     *cluster.Result
	userBlock  map[string]int
	prodUni    []*sigtree.Universe // per block, shared across its trees
	trees      map[treeKey]*sigtree.Tree
	treesByCat map[string][]*sigtree.Tree
	hash       *shx.Table
}

// Build constructs the index over every profile in store.
//
// Steps: (1) one-pass clustering of users into blocks on their long-term
// category vectors; (2) per block, a shared producer universe; (3) per
// ⟨block, category⟩ with at least one interested member, an extended
// signature tree with one leaf entry per member; (4) a chained hash table
// from every ⟨category, entity⟩ pair in a tree's universe to that tree.
func Build(store *profile.Store, bg *profile.Background, probs Probs, cfg Config) (*Index, error) {
	cfg.fill()
	if len(cfg.Categories) == 0 {
		return nil, fmt.Errorf("cppse: no categories configured")
	}

	// (1) user blocks.
	var points []cluster.Point
	store.Each(func(p *profile.Profile) {
		points = append(points, cluster.Point{ID: p.UserID, Vec: p.CategoryVector(cfg.Categories)})
	})
	// Deterministic clustering input order.
	sortPointsByID(points)
	var (
		res *cluster.Result
		err error
	)
	if cfg.FixedBlocks > 0 {
		res, err = cluster.RunFixed(points, cfg.FixedBlocks)
	} else {
		res, err = cluster.Run(points, cluster.Options{SimThreshold: cfg.SimThreshold, MaxClusters: cfg.MaxBlocks})
	}
	if err != nil {
		return nil, fmt.Errorf("cppse: clustering: %w", err)
	}
	userBlock := make(map[string]int, len(res.Assignment))
	for id, b := range res.Assignment {
		userBlock[id] = b
	}
	return assemble(store, bg, probs, cfg, res, userBlock, nil), nil
}

// State is the path-dependent skeleton of a built index: the one-pass
// block clustering, every user's block assignment (including users
// assigned incrementally by Algorithm 2's nearest-centroid rule after the
// build), and the universes' insertion orders. Leaf signatures, tree
// membership and the hash table are pure functions of the engine's
// profile and model state and are reconstructed deterministically by
// BuildFromState; the clustering is NOT (re-running it over evolved
// profiles yields different blocks), and neither are the universe orders
// (names append in stream-arrival order, and the query encoder folds
// entity weights in universe-index order, so a differently-ordered
// universe shifts scores by an ulp). An engine snapshot must carry the
// State for a reload to be observably indistinguishable from the engine
// that never restarted — the exactness snapshot-seeded reseeds and
// online resharding stand on.
type State struct {
	Blocks    cluster.Snapshot
	UserBlock map[string]int
	// ProdUni is each block's producer-universe insertion order; EntUni
	// each block's per-category entity-universe insertion order. Nil on
	// snapshots from before they were recorded — BuildFromState then
	// falls back to sorted-member derivation.
	ProdUni [][]string
	EntUni  []map[string][]string
}

// State captures the index's path-dependent skeleton for serialisation.
func (ix *Index) State() State {
	st := State{Blocks: ix.blocks.Snapshot(), UserBlock: make(map[string]int, len(ix.userBlock))}
	for id, b := range ix.userBlock {
		st.UserBlock[id] = b
	}
	st.ProdUni = make([][]string, len(ix.prodUni))
	for b, u := range ix.prodUni {
		st.ProdUni[b] = append([]string(nil), u.Names()...)
	}
	st.EntUni = make([]map[string][]string, len(ix.prodUni))
	for key, tr := range ix.trees {
		m := st.EntUni[key.block]
		if m == nil {
			m = make(map[string][]string)
			st.EntUni[key.block] = m
		}
		m[key.category] = append([]string(nil), tr.Ent.Names()...)
	}
	return st
}

// BuildFromState reconstructs an index over store pinned to a previously
// captured State: no re-clustering — blocks, centroids, assignments and
// universe insertion orders are restored verbatim, then trees, leaves
// (for owned users) and the hash table are derived from the current
// profiles exactly as an evolved index maintains them.
func BuildFromState(store *profile.Store, bg *profile.Background, probs Probs, cfg Config, st State) (*Index, error) {
	cfg.fill()
	if len(cfg.Categories) == 0 {
		return nil, fmt.Errorf("cppse: no categories configured")
	}
	res := cluster.FromSnapshot(st.Blocks)
	userBlock := make(map[string]int, len(st.UserBlock))
	for id, b := range st.UserBlock {
		if b < 0 || b >= len(res.Clusters) {
			return nil, fmt.Errorf("cppse: user %q assigned to block %d of %d", id, b, len(res.Clusters))
		}
		userBlock[id] = b
	}
	if st.ProdUni != nil && len(st.ProdUni) != len(res.Clusters) {
		return nil, fmt.Errorf("cppse: %d producer universes for %d blocks", len(st.ProdUni), len(res.Clusters))
	}
	if st.EntUni != nil && len(st.EntUni) != len(res.Clusters) {
		return nil, fmt.Errorf("cppse: %d entity-universe sets for %d blocks", len(st.EntUni), len(res.Clusters))
	}
	return assemble(store, bg, probs, cfg, res, userBlock, &st), nil
}

// assemble derives the full index from a block structure and a user →
// block assignment: per-block producer universes, per-⟨block, category⟩
// signature trees with leaves for owned members, and the chained hash
// table. Membership per block is taken from the assignment (so users
// assigned after the original build are included) in sorted-ID order —
// for a fresh Build this matches the clustering's insertion order, since
// the points are pre-sorted. A non-nil seed replays the captured universe
// insertion orders before member-derived names: index positions — and
// with them the encoder's summation order — survive the rebuild bit-for-
// bit. A tree whose seeded category has live members is built either way;
// seeded orders for categories that lost every member are dropped with
// the tree, exactly as a live index leaves such trees empty.
func assemble(store *profile.Store, bg *profile.Background, probs Probs, cfg Config, res *cluster.Result, userBlock map[string]int, seed *State) *Index {
	ix := &Index{
		cfg:        cfg,
		bg:         bg,
		probs:      probs,
		store:      store,
		blocks:     res,
		userBlock:  userBlock,
		trees:      make(map[treeKey]*sigtree.Tree),
		treesByCat: make(map[string][]*sigtree.Tree),
		hash:       shx.NewTable(cfg.HashBuckets),
	}
	memberIDs := make([][]string, len(res.Clusters))
	for id, b := range userBlock {
		memberIDs[b] = append(memberIDs[b], id)
	}
	for _, ids := range memberIDs {
		sort.Strings(ids)
	}

	// (2) block producer universes.
	ix.prodUni = make([]*sigtree.Universe, len(res.Clusters))
	for _, c := range res.Clusters {
		var u *sigtree.Universe
		if seed != nil && seed.ProdUni != nil {
			u = sigtree.NewUniverse(seed.ProdUni[c.ID])
		} else {
			u = sigtree.NewUniverse(nil)
		}
		for _, uid := range memberIDs[c.ID] {
			p, _ := store.Lookup(uid)
			if p == nil {
				continue
			}
			for _, up := range sortedStrings(p.Producers()) {
				u.Add(up)
			}
		}
		ix.prodUni[c.ID] = u
	}

	// (3)+(4) trees and hash entries.
	for _, c := range res.Clusters {
		for _, cat := range cfg.Categories {
			var members []*profile.Profile
			var ents *sigtree.Universe
			if seed != nil && seed.EntUni != nil && seed.EntUni[c.ID] != nil {
				ents = sigtree.NewUniverse(seed.EntUni[c.ID][cat])
			} else {
				ents = sigtree.NewUniverse(nil)
			}
			for _, uid := range memberIDs[c.ID] {
				p, _ := store.Lookup(uid)
				if p == nil || !ix.userInterested(p, cat) {
					continue
				}
				members = append(members, p)
				for _, e := range sortedStrings(p.EntitiesIn(cat)) {
					ents.Add(e)
				}
			}
			if len(members) == 0 {
				continue
			}
			tr := sigtree.New(c.ID, cat, ix.prodUni[c.ID], ents, cfg.Fanout)
			ix.trees[treeKey{c.ID, cat}] = tr // register before leafSignature reads tr.Ent
			ix.treesByCat[cat] = append(ix.treesByCat[cat], tr)
			for _, p := range members {
				if ix.owns(p.UserID) {
					tr.Insert(p.UserID, ix.leafSignature(p, c.ID, cat))
				}
			}
			for _, e := range ents.Names() {
				ix.hash.Insert(shx.PairKey(cat, e), tr)
			}
		}
	}
	return ix
}

// owns reports whether this index materialises leaves for a user
// (Config.Owns; nil owns everyone).
func (ix *Index) owns(userID string) bool {
	return ix.cfg.Owns == nil || ix.cfg.Owns(userID)
}

// userInterested reports whether a user belongs in the tree of cat: any
// long-term or windowed activity there.
func (ix *Index) userInterested(p *profile.Profile, cat string) bool {
	if p.CategoryCount(cat) > 0 {
		return true
	}
	for _, wc := range p.WindowCategories() {
		if wc == cat {
			return true
		}
	}
	return false
}

// leafSignature encodes a user's statistics for one tree.
func (ix *Index) leafSignature(p *profile.Profile, block int, cat string) sigtree.Signature {
	prodU := ix.prodUni[block]
	sig := sigtree.Signature{
		Pl:         ix.probs.Long(p.UserID, cat),
		Ps:         ix.probs.Short(p.UserID, cat),
		ProdCounts: make([]float64, prodU.Len()),
		ProdTotal:  float64(p.ProducerTotal()),
		EntTotal:   float64(p.EntityTotal(cat)),
	}
	for _, up := range p.Producers() {
		if i, ok := prodU.Index(up); ok {
			sig.ProdCounts[i] = float64(p.ProducerCount(up))
		}
	}
	tr := ix.trees[treeKey{block, cat}]
	var entU *sigtree.Universe
	if tr != nil {
		entU = tr.Ent
	}
	if entU != nil {
		sig.EntCounts = make([]float64, entU.Len())
		for _, e := range p.EntitiesIn(cat) {
			if i, ok := entU.Index(e); ok {
				sig.EntCounts[i] = float64(p.EntityCount(cat, e))
			}
		}
	}
	return sig
}

// Recommend returns the top-k users for the prepared item query, plus the
// pruning statistics of the search. The query should be built with
// ranking.BuildQuery (expansion included when desired). With
// Config.Parallelism > 1 the candidate trees are searched by a worker
// pool (sigtree.SearchParallel); results are bit-identical either way.
func (ix *Index) Recommend(q ranking.ItemQuery, k int) ([]model.Recommendation, sigtree.SearchStats) {
	recs, stats, _ := ix.RecommendCtx(nil, q, k, 0)
	return recs, stats
}

// RecommendCtx is Recommend with cooperative cancellation and a per-call
// parallelism override: the search loop polls ctx (sigtree.RunCtx) and
// returns ctx.Err() when it fires; parallelism > 0 overrides
// Config.Parallelism for this query only, 0 keeps the configured value.
// Results are bit-identical to Recommend when the context never fires.
func (ix *Index) RecommendCtx(ctx context.Context, q ranking.ItemQuery, k, parallelism int) ([]model.Recommendation, sigtree.SearchStats, error) {
	return ix.RecommendBound(ctx, q, k, parallelism, nil)
}

// RecommendBound is RecommendCtx pruning against (and raising) a
// caller-supplied cross-shard bound: the shard-local leg of the router's
// scatter-gather query. The returned list covers only the users this index
// owns; the router merges the per-shard lists with sigtree.MergeTopK. A
// nil bound is the single-process case and behaves exactly like
// RecommendCtx.
func (ix *Index) RecommendBound(ctx context.Context, q ranking.ItemQuery, k, parallelism int, b *sigtree.Bound) ([]model.Recommendation, sigtree.SearchStats, error) {
	if parallelism <= 0 {
		parallelism = ix.cfg.Parallelism
	}
	sc := getScratch()
	defer putScratch(sc)
	tqs := ix.encodeAll(sc, q)
	return sigtree.SearchParallelBoundCtx(ctx, tqs, k, parallelism, b)
}

// SetParallelism adjusts the query worker count (Config.Parallelism) of a
// built index, e.g. to override the value a snapshot was saved with. Not
// safe to call concurrently with Recommend — the engine holds its write
// lock around it.
func (ix *Index) SetParallelism(n int) { ix.cfg.Parallelism = n }

// CandidateUsers returns the users reachable for a query — the candidate
// set a sequential scan over the same trees would consider. Used by
// equivalence tests and the ablation benchmarks.
func (ix *Index) CandidateUsers(q ranking.ItemQuery) []string {
	var out []string
	for _, tr := range ix.lookupTrees(q) {
		out = append(out, tr.Users()...)
	}
	return out
}

// RecommendScan is the no-pruning arm: identical candidate trees and
// scoring, but every leaf entry is scored (AblationPruning).
func (ix *Index) RecommendScan(q ranking.ItemQuery, k int) []model.Recommendation {
	sc := getScratch()
	defer putScratch(sc)
	tqs := ix.encodeAll(sc, q)
	return sigtree.SequentialScan(tqs, k)
}

// lookupTrees returns the candidate trees of a query as a fresh slice —
// the cold-path wrapper around lookupTreesInto for tests and ablations.
func (ix *Index) lookupTrees(q ranking.ItemQuery) []*sigtree.Tree {
	sc := getScratch()
	defer putScratch(sc)
	sc.reset()
	ix.lookupTreesInto(sc, q)
	return append([]*sigtree.Tree(nil), sc.trees...)
}

// UpdateUser refreshes (or creates) the index entries of one user from the
// current state of its profile — the per-user body of Algorithm 2. New
// users are assigned to the nearest block centroid; unseen entities extend
// the tree universe and the hash table.
//
// Sharding split (Config.Owns): block assignment, universe growth and hash
// insertion always run — every shard must route candidates identically —
// but the signature recomputation (the BiHMM forward passes behind
// leafSignature) and the tree write happen only for owned users. That is
// the maintenance cost a sharded deployment divides N ways.
func (ix *Index) UpdateUser(userID string) error {
	return ix.UpdateUserCats(userID, nil, true)
}

// RemoveUser deletes a user's entries from every tree of its block (a user
// leaving the platform). The profile itself is owned by the caller's
// store. Returns false if the user was never indexed.
//
// The block's trees are walked directly rather than Config.Categories:
// UpdateUser creates trees from the PROFILE's categories, so a user
// observed under an unconfigured category (v1 Observe admits them) has a
// leaf the configured set would never find — iterating the configured
// categories leaked that leaf forever. Per-tree deletes are independent,
// so map iteration order does not affect the final state.
func (ix *Index) RemoveUser(userID string) bool {
	block, ok := ix.userBlock[userID]
	if !ok {
		return false
	}
	removed := false
	for key, tr := range ix.trees {
		if key.block == block && tr.Delete(userID) {
			removed = true
		}
	}
	delete(ix.userBlock, userID)
	return removed
}

// nearestBlock assigns a (new) user to the closest block centroid, or
// block 0 when no blocks exist.
func (ix *Index) nearestBlock(p *profile.Profile) int {
	if len(ix.blocks.Clusters) == 0 {
		return 0
	}
	vec := p.CategoryVector(ix.cfg.Categories)
	best, bestSim := 0, -1.0
	for _, c := range ix.blocks.Clusters {
		if sim := cluster.Cosine(vec, c.Centroid); sim > bestSim {
			best, bestSim = c.ID, sim
		}
	}
	return best
}

// IndexStats summarises the built index (Table II inputs and general
// shape).
type IndexStats struct {
	Blocks          int
	Trees           int
	Users           int // users with a block assignment (all users, even sharded)
	OwnedUsers      int // users whose leaves this index materialises (= Users unsharded)
	MaxEntityUni    int // largest per-tree entity universe
	MaxProducerUni  int // largest per-block producer universe
	HashKeys        int
	HashMaxChain    int
	TotalLeafCount  int
	MaxTreeEntries  int
	DeepestTreeSize int
}

// Stats computes the index summary.
func (ix *Index) Stats() IndexStats {
	s := IndexStats{Blocks: len(ix.blocks.Clusters), Trees: len(ix.trees), Users: len(ix.userBlock)}
	if ix.cfg.Owns == nil {
		s.OwnedUsers = s.Users
	} else {
		for id := range ix.userBlock {
			if ix.cfg.Owns(id) {
				s.OwnedUsers++
			}
		}
	}
	for _, u := range ix.prodUni {
		if u.Len() > s.MaxProducerUni {
			s.MaxProducerUni = u.Len()
		}
	}
	for _, tr := range ix.trees {
		if tr.Ent.Len() > s.MaxEntityUni {
			s.MaxEntityUni = tr.Ent.Len()
		}
		s.TotalLeafCount += tr.Len()
		if tr.Len() > s.MaxTreeEntries {
			s.MaxTreeEntries = tr.Len()
		}
		if d := tr.Depth(); d > s.DeepestTreeSize {
			s.DeepestTreeSize = d
		}
	}
	hs := ix.hash.Stats()
	s.HashKeys = hs.Keys
	s.HashMaxChain = hs.MaxChain
	return s
}

// Tree exposes one tree for tests.
func (ix *Index) Tree(block int, category string) *sigtree.Tree {
	return ix.trees[treeKey{block, category}]
}

// BlockOf returns the block a user is assigned to.
func (ix *Index) BlockOf(userID string) (int, bool) {
	b, ok := ix.userBlock[userID]
	return b, ok
}

// ---- helpers ----

func sortPointsByID(points []cluster.Point) {
	sort.Slice(points, func(i, j int) bool { return points[i].ID < points[j].ID })
}

func sortedStrings(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}
