package cppse

import (
	"fmt"
	"reflect"
	"testing"

	"ssrec/internal/model"
	"ssrec/internal/profile"
	"ssrec/internal/ranking"
	"ssrec/internal/sigtree"
)

// mixedEvent cycles a user through all three fixture categories with
// rotating producers/entities — the stream shape that exercises masks.
func mixedEvent(i int) profile.Event {
	cats := []string{"sports", "music", "news"}
	cat := cats[i%3]
	return profile.Event{
		Category: cat,
		Producer: fmt.Sprintf("%s-up%d", cat, i%3),
		Entities: []string{fmt.Sprintf("%s-e%d", cat, i%8)},
	}
}

// sigsEquivalent compares two leaf signatures semantically: Pl/Ps/totals
// bitwise, count vectors bitwise after zero-padding to a common length.
// Length may legitimately differ — a Pl/Ps-only restamp keeps a count
// vector stamped against an older (smaller) universe, and sigtree.Score
// reads absent trailing indexes as zero — so trailing zeros are identity.
func sigsEquivalent(a, b sigtree.Signature) bool {
	if a.Pl != b.Pl || a.Ps != b.Ps || a.ProdTotal != b.ProdTotal || a.EntTotal != b.EntTotal {
		return false
	}
	return vecsEquivalent(a.ProdCounts, b.ProdCounts) && vecsEquivalent(a.EntCounts, b.EntCounts)
}

func vecsEquivalent(a, b []float64) bool {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var va, vb float64
		if i < len(a) {
			va = a[i]
		}
		if i < len(b) {
			vb = b[i]
		}
		if va != vb {
			return false
		}
	}
	return true
}

// compareIndexes asserts that the masked and full indexes hold equivalent
// leaves for every user in store and answer queries bit-identically.
func compareIndexes(t *testing.T, full, masked *Index, store *profile.Store) {
	t.Helper()
	for _, id := range store.UserIDs() {
		p, _ := store.Lookup(id)
		bf, okF := full.BlockOf(id)
		bm, okM := masked.BlockOf(id)
		if okF != okM || bf != bm {
			t.Fatalf("user %s: block (%d,%v) vs (%d,%v)", id, bf, okF, bm, okM)
		}
		if !okF {
			continue
		}
		cats := append(p.Categories(), p.WindowCategories()...)
		for _, cat := range cats {
			trF, trM := full.Tree(bf, cat), masked.Tree(bm, cat)
			if (trF == nil) != (trM == nil) {
				t.Fatalf("user %s cat %s: tree presence differs", id, cat)
			}
			if trF == nil {
				continue
			}
			sf, okF := trF.Get(id)
			sm, okM := trM.Get(id)
			if okF != okM {
				t.Fatalf("user %s cat %s: leaf presence %v vs %v", id, cat, okF, okM)
			}
			if okF && !sigsEquivalent(sf, sm) {
				t.Fatalf("user %s cat %s: leaf diverged\n full: %+v\nmask: %+v", id, cat, sf, sm)
			}
		}
	}
	for trial := 0; trial < 6; trial++ {
		q := ranking.BuildQuery(sportsItem(trial), nil)
		rf, _ := full.Recommend(q, store.Len())
		rm, _ := masked.Recommend(q, store.Len())
		if !reflect.DeepEqual(rf, rm) {
			t.Fatalf("trial %d: results diverged\n full: %v\nmask: %v", trial, rf, rm)
		}
	}
}

// TestUpdateUserCatsMatchesFull pins the tentpole's exactness claim at the
// index level: a masked refresh driven by per-observation dirty categories
// (with the window-roll sentinel) leaves the index equivalent to the
// rebuild-everything path after EVERY step — including window rolls,
// universe growth by other users, and remove-then-reobserve.
func TestUpdateUserCatsMatchesFull(t *testing.T) {
	store, bg, cats := fixture(t, 8)
	probs := MLEProbs{Store: store, NCats: len(cats)}
	cfg := Config{Categories: cats}
	full, err := Build(store, bg, probs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := Build(store, bg, probs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	users := []string{"mixed000", "sports001", "music002"}
	for i := 0; i < 40; i++ {
		id := users[i%len(users)]
		p, _ := store.Lookup(id)
		ev := mixedEvent(i)
		rolled := p.Observe(ev) // window size 5: rolls regularly
		if err := full.UpdateUser(id); err != nil {
			t.Fatal(err)
		}
		if err := masked.UpdateUserCats(id, []string{ev.Category}, rolled); err != nil {
			t.Fatal(err)
		}
		compareIndexes(t, full, masked, store)
	}

	// Removed-then-reobserved: the masked path must re-insert the user into
	// EVERY inhabited tree (leaf absence forces a rebuild regardless of the
	// mask), not just the observed category's.
	full.RemoveUser("mixed000")
	masked.RemoveUser("mixed000")
	p, _ := store.Lookup("mixed000")
	ev := mixedEvent(1)
	rolled := p.Observe(ev)
	if err := full.UpdateUser("mixed000"); err != nil {
		t.Fatal(err)
	}
	if err := masked.UpdateUserCats("mixed000", []string{ev.Category}, rolled); err != nil {
		t.Fatal(err)
	}
	compareIndexes(t, full, masked, store)
}

// TestRemoveUserUnconfiguredCategory is the leak regression: a user
// observed under a category outside Config.Categories gets a tree via
// UpdateUser (profile-driven), and RemoveUser must find and delete that
// leaf even though the configured category list never mentions it.
func TestRemoveUserUnconfiguredCategory(t *testing.T) {
	ix, store, _ := buildIndex(t, 5, Config{})
	p, _ := store.Lookup("sports000")
	p.ObserveLongTerm(profile.Event{Category: "esports", Producer: "twitch-up0",
		Entities: []string{"speedrun"}})
	if err := ix.UpdateUser("sports000"); err != nil {
		t.Fatal(err)
	}
	block, _ := ix.BlockOf("sports000")
	tr := ix.Tree(block, "esports")
	if tr == nil || !tr.Has("sports000") {
		t.Fatal("unconfigured-category tree missing before removal")
	}
	if !ix.RemoveUser("sports000") {
		t.Fatal("RemoveUser returned false")
	}
	if tr.Has("sports000") {
		t.Fatal("leaf leaked in unconfigured-category tree after RemoveUser")
	}
	// The leaked leaf was also reachable by queries before the fix.
	v := model.Item{ID: "q", Category: "esports", Producer: "twitch-up0",
		Entities: []string{"speedrun"}}
	recs, _ := ix.Recommend(ranking.BuildQuery(v, nil), 5)
	for _, r := range recs {
		if r.UserID == "sports000" {
			t.Fatal("removed user still recommended via unconfigured category")
		}
	}
}

// TestRefreshAllocs is the allocation regression guard of the refresh
// loop: a steady-state masked refresh (warm scratch pool, warm tree
// buffers, no universe growth) must run allocation-free, and even the
// rebuild-everything path must stay within a small ceiling (the leaf
// Insert path is excluded — the user already has leaves).
func TestRefreshAllocs(t *testing.T) {
	ix, store, _ := buildIndex(t, 50, Config{})
	p, _ := store.Lookup("sports000")
	i := 0
	// Warm up: grow scratch buffers, tree aggregate buffers and universes.
	for ; i < 12; i++ {
		p.Observe(profile.Event{Category: "sports", Producer: "sports-up0",
			Entities: []string{fmt.Sprintf("sports-e%d", i%6)}})
		if err := ix.UpdateUserCats("sports000", []string{"sports"}, false); err != nil {
			t.Fatal(err)
		}
	}
	// Measure the refresh alone (it is idempotent): event construction and
	// Profile.Observe have their own costs that are not the refresh loop's.
	dirty := []string{"sports"}
	masked := testing.AllocsPerRun(50, func() {
		if err := ix.UpdateUserCats("sports000", dirty, false); err != nil {
			t.Fatal(err)
		}
	})
	if masked > 0 {
		t.Errorf("masked refresh allocates %.1f allocs/op, want 0", masked)
	}
	fullPath := testing.AllocsPerRun(50, func() {
		if err := ix.UpdateUser("sports000"); err != nil {
			t.Fatal(err)
		}
	})
	if fullPath > 0 {
		t.Errorf("full refresh allocates %.1f allocs/op, want 0 (scratch-pooled)", fullPath)
	}
}

// ---- refresh micro-benchmark family ----

// benchProfile adds nCats categories of long-term history to a fresh user
// so the refresh cost scales with the inhabited-category count.
func benchObserveCats(p *profile.Profile, nEvents int) {
	for i := 0; i < nEvents; i++ {
		p.ObserveLongTerm(mixedEvent(i))
	}
}

// BenchmarkRefreshColdUser measures the first refresh of a brand-new user
// (block assignment + tree inserts) — the cost masks cannot avoid.
func BenchmarkRefreshColdUser(b *testing.B) {
	ix, store, _ := buildIndex(b, 100, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("cold%06d", i)
		p := store.Get(id)
		benchObserveCats(p, 6)
		if err := ix.UpdateUserCats(id, nil, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefreshOneDirtyOfN is the heavy-tailed steady state the masks
// target: a user inhabiting all three fixture categories takes one event
// in ONE of them. masked rebuilds one leaf and restamps two; full rebuilds
// all three.
func BenchmarkRefreshOneDirtyOfN(b *testing.B) {
	run := func(b *testing.B, masked bool) {
		ix, store, _ := buildIndex(b, 100, Config{})
		id := "mixed000"
		p, _ := store.Lookup(id)
		benchObserveCats(p, 30) // inhabit all three categories
		if err := ix.UpdateUserCats(id, nil, true); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rolled := p.Observe(profile.Event{Category: "sports", Producer: "sports-up0",
				Entities: []string{fmt.Sprintf("sports-e%d", i%6)}})
			var err error
			if masked {
				err = ix.UpdateUserCats(id, []string{"sports"}, rolled)
			} else {
				err = ix.UpdateUserCats(id, nil, true)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("masked", func(b *testing.B) { run(b, true) })
	b.Run("full", func(b *testing.B) { run(b, false) })
}

// BenchmarkRefreshWindowRoll measures the all-dirty sentinel path: every
// iteration rolls the window (size 5 fixture store), forcing a full
// rebuild even under masks — the upper bound of the masked path.
func BenchmarkRefreshWindowRoll(b *testing.B) {
	ix, store, _ := buildIndex(b, 100, Config{})
	id := "mixed000"
	p, _ := store.Lookup(id)
	benchObserveCats(p, 30)
	if err := ix.UpdateUserCats(id, nil, true); err != nil {
		b.Fatal(err)
	}
	// Fill the window so every subsequent Observe rolls it.
	for i := 0; i < p.WindowSize(); i++ {
		p.Observe(mixedEvent(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < p.WindowSize(); j++ {
			rolled := p.Observe(mixedEvent(i + j))
			if err := ix.UpdateUserCats(id, []string{"sports"}, rolled); err != nil {
				b.Fatal(err)
			}
		}
	}
}
