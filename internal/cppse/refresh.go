// refresh.go is the write-path counterpart of encode.go: the pooled,
// mask-aware per-user index refresh of Algorithm 2. UpdateUserCats is
// UpdateUser restricted by a dirty-category mask (core's per-user masks):
// routing metadata still advances for every category the user inhabits —
// every shard must route candidates identically — but the expensive leaf
// rebuild runs only where the mask says the counts changed. Non-dirty
// leaves are restamped with fresh Pl/Ps, because every observation grows
// the short-term window and therefore shifts the short-term prediction
// for ALL of the user's categories. See DESIGN.md, "Ingest hot path".
package cppse

import (
	"fmt"
	"sort"
	"sync"

	"ssrec/internal/profile"
	"ssrec/internal/shx"
	"ssrec/internal/sigtree"
)

// refreshScratch carries the reusable buffers of one UpdateUserCats call:
// the sorted category/producer/entity name slices and the dense signature
// vectors that UpdateUser used to allocate per (user, category). The
// signature buffers are scratch-backed, so they are written into trees
// only through Tree.UpdateCopy / Signature.Clone — never stored directly.
type refreshScratch struct {
	cats  []string
	prods []string
	ents  []string
	sig   sigtree.Signature
}

var refreshPool = sync.Pool{New: func() any { return new(refreshScratch) }}

func getRefreshScratch() *refreshScratch { return refreshPool.Get().(*refreshScratch) }

func putRefreshScratch(sc *refreshScratch) {
	// Drop string references so idle scratches don't pin profile data.
	clearStrings(&sc.cats)
	clearStrings(&sc.prods)
	clearStrings(&sc.ents)
	refreshPool.Put(sc)
}

func clearStrings(s *[]string) {
	*s = (*s)[:cap(*s)]
	clear(*s)
	*s = (*s)[:0]
}

// growZero resizes dst to n zeroed elements, reusing capacity.
func growZero(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// leafSignatureInto is leafSignature built into pooled scratch buffers:
// identical values, no per-call dense-vector allocations. The returned
// signature aliases sc and is only valid until the next use of sc.
func (ix *Index) leafSignatureInto(sc *refreshScratch, p *profile.Profile, block int, cat string) *sigtree.Signature {
	prodU := ix.prodUni[block]
	sig := &sc.sig
	sig.Pl = ix.probs.Long(p.UserID, cat)
	sig.Ps = ix.probs.Short(p.UserID, cat)
	sig.ProdTotal = float64(p.ProducerTotal())
	sig.EntTotal = float64(p.EntityTotal(cat))
	sig.ProdCounts = growZero(sig.ProdCounts, prodU.Len())
	sc.prods = p.AppendProducers(sc.prods[:0])
	for _, up := range sc.prods {
		if i, ok := prodU.Index(up); ok {
			sig.ProdCounts[i] = float64(p.ProducerCount(up))
		}
	}
	sig.EntCounts = sig.EntCounts[:0]
	tr := ix.trees[treeKey{block, cat}]
	if tr != nil && tr.Ent != nil {
		sig.EntCounts = growZero(sig.EntCounts, tr.Ent.Len())
		sc.ents = p.AppendEntitiesIn(cat, sc.ents[:0])
		for _, e := range sc.ents {
			if i, ok := tr.Ent.Index(e); ok {
				sig.EntCounts[i] = float64(p.EntityCount(cat, e))
			}
		}
	}
	return sig
}

// UpdateUserCats refreshes one user's index entries under a dirty-category
// mask — the per-user body of Algorithm 2, split into its two halves:
//
// Routing metadata (always, for EVERY category the user inhabits): block
// assignment, producer-universe growth, entity-universe growth and hash
// insertion. Shards replicate this on every engine regardless of
// ownership, so it must not depend on the mask — otherwise two shards
// could route the same query to different candidate trees.
//
// Leaf maintenance (owned users only): categories in dirtyCats — plus
// every category when allDirty, e.g. after a window roll moved events
// into long-term state — get a full signature rebuild; categories whose
// counts are provably unchanged get only a Pl/Ps restamp (the short-term
// prediction changes on every observation). A category the user inhabits
// but has no leaf for is treated as dirty regardless of the mask (a
// removed-then-reobserved user must be re-inserted everywhere).
//
// UpdateUserCats(id, nil, true) is exactly UpdateUser.
func (ix *Index) UpdateUserCats(userID string, dirtyCats []string, allDirty bool) error {
	p, ok := ix.store.Lookup(userID)
	if !ok {
		return fmt.Errorf("cppse: unknown user %q", userID)
	}
	block, known := ix.userBlock[userID]
	if !known {
		block = ix.nearestBlock(p)
		ix.userBlock[userID] = block
	}
	sc := getRefreshScratch()
	defer putRefreshScratch(sc)

	prodU := ix.prodUni[block]
	sc.prods = p.AppendProducers(sc.prods[:0])
	sort.Strings(sc.prods)
	for _, up := range sc.prods {
		prodU.Add(up)
	}

	// Inhabited categories: long-term ∪ window, sorted and deduplicated —
	// the same set (and growth order) UpdateUser has always used.
	sc.cats = p.AppendCategories(sc.cats[:0])
	sc.cats = p.AppendWindowCategories(sc.cats)
	sort.Strings(sc.cats)
	w := 0
	for i, c := range sc.cats {
		if i == 0 || c != sc.cats[i-1] {
			sc.cats[w] = c
			w++
		}
	}
	sc.cats = sc.cats[:w]

	owned := ix.owns(userID)
	for _, cat := range sc.cats {
		key := treeKey{block, cat}
		tr := ix.trees[key]
		if tr == nil {
			tr = sigtree.New(block, cat, prodU, sigtree.NewUniverse(nil), ix.cfg.Fanout)
			ix.trees[key] = tr
			ix.treesByCat[cat] = append(ix.treesByCat[cat], tr)
		}
		// Unseen entities: extend universe + hash (Algorithm 2 lines 5-9).
		sc.ents = p.AppendEntitiesIn(cat, sc.ents[:0])
		sort.Strings(sc.ents)
		for _, e := range sc.ents {
			if _, ok := tr.Ent.Index(e); !ok {
				tr.Ent.Add(e)
				ix.hash.Insert(shx.PairKey(cat, e), tr)
			}
		}
		if !owned {
			continue
		}
		if allDirty || containsString(dirtyCats, cat) || !tr.Has(userID) {
			sig := ix.leafSignatureInto(sc, p, block, cat)
			if !tr.UpdateCopy(userID, sig) {
				tr.Insert(userID, sig.Clone())
			}
		} else {
			tr.UpdateProbs(userID, ix.probs.Long(userID, cat), ix.probs.Short(userID, cat))
		}
	}
	return nil
}

// containsString is a linear membership test — dirty masks hold a handful
// of categories, far below the crossover where a set would win.
func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
