// trace.go is the request-tracing half of the telemetry subsystem: a
// trace is a tree of spans following one request through handler →
// router scatter → RPC legs → sigtree search, propagated in-process via
// context.Context and across processes via the X-Ssrec-Trace header (or
// the trace field of the shard RPC stream protocols, which multiplex
// many queries over one connection and cannot use per-request headers).
//
// The disabled path is engineered to be near-zero cost: StartSpan does
// ONE context value lookup and returns a nil *Span when the request is
// not being traced; every Span method is a nil-receiver no-op. No
// allocation, no atomic, no clock read happens on an untraced request.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries "<trace-id>-<parent-span-id>" across HTTP hops.
const TraceHeader = "X-Ssrec-Trace"

// SpanData is the immutable record of one finished span — also the wire
// form shard RPC responses use to return remote spans to the caller.
// Ids are uint64 in memory (cheap to mint, compare and hash on the hot
// path) and render as fixed-width hex strings on the wire, matching the
// X-Ssrec-Trace header form.
type SpanData struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 = root
	Name     string
	StartNs  int64
	DurNs    int64
	Attrs    Attrs
}

// spanWire is the JSON form of SpanData.
type spanWire struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	StartNs  int64  `json:"start_unix_nano"`
	DurNs    int64  `json:"duration_ns"`
	Attrs    Attrs  `json:"attrs,omitempty"`
}

func (d SpanData) MarshalJSON() ([]byte, error) {
	w := spanWire{TraceID: hex16(d.TraceID), SpanID: hex16(d.SpanID),
		Name: d.Name, StartNs: d.StartNs, DurNs: d.DurNs, Attrs: d.Attrs}
	if d.ParentID != 0 {
		w.ParentID = hex16(d.ParentID)
	}
	return json.Marshal(w)
}

func (d *SpanData) UnmarshalJSON(b []byte) error {
	var w spanWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	tid, err := strconv.ParseUint(w.TraceID, 16, 64)
	if err != nil {
		return fmt.Errorf("span trace_id %q: %w", w.TraceID, err)
	}
	sid, err := strconv.ParseUint(w.SpanID, 16, 64)
	if err != nil {
		return fmt.Errorf("span span_id %q: %w", w.SpanID, err)
	}
	var pid uint64
	if w.ParentID != "" {
		if pid, err = strconv.ParseUint(w.ParentID, 16, 64); err != nil {
			return fmt.Errorf("span parent_id %q: %w", w.ParentID, err)
		}
	}
	*d = SpanData{TraceID: tid, SpanID: sid, ParentID: pid,
		Name: w.Name, StartNs: w.StartNs, DurNs: w.DurNs, Attrs: w.Attrs}
	return nil
}

// Attr is one span annotation.
type Attr struct {
	K string
	V string
}

// Attrs is a small ordered annotation list. Spans carry at most a
// handful of attrs, so a slice beats a map on the hot path (one
// allocation, no hashing); on the wire and in trace fetches it still
// marshals as the {"key":"value"} JSON object.
type Attrs []Attr

// Get returns the value of key k, or "".
func (a Attrs) Get(k string) string {
	for _, kv := range a {
		if kv.K == k {
			return kv.V
		}
	}
	return ""
}

// MarshalJSON renders the list as a JSON object (keys sorted by
// encoding/json's map ordering — deterministic).
func (a Attrs) MarshalJSON() ([]byte, error) {
	m := make(map[string]string, len(a))
	for _, kv := range a {
		m[kv.K] = kv.V
	}
	return json.Marshal(m)
}

// UnmarshalJSON accepts the object form, sorted by key.
func (a *Attrs) UnmarshalJSON(b []byte) error {
	var m map[string]string
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	out := make(Attrs, 0, len(m))
	for k, v := range m {
		out = append(out, Attr{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	*a = out
	return nil
}

// Span is one in-flight timed operation. A nil Span is the "not
// tracing" case and every method no-ops on it.
type Span struct {
	tracer    *Tracer
	collector *Collector
	start     time.Time
	child     active // the context value for child spans; inlined to keep StartSpan at one allocation
	pooled    bool   // LeafSpan spans return to leafPool at End
	done      bool   // End already ran (guards double-End on pooled spans)
	mu        sync.Mutex
	data      SpanData
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.data.Attrs {
		if s.data.Attrs[i].K == k {
			s.data.Attrs[i].V = v
			s.mu.Unlock()
			return
		}
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(Attrs, 0, 4)
	}
	s.data.Attrs = append(s.data.Attrs, Attr{k, v})
	s.mu.Unlock()
}

// End finishes the span and records it into the tracer's buffer (and
// the request's collector, when one is attached).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.data.DurNs = time.Since(s.start).Nanoseconds()
	data := s.data
	pooled := s.pooled
	s.mu.Unlock()
	if s.collector != nil {
		s.collector.add(data)
	}
	if s.tracer != nil {
		s.tracer.record(data)
	}
	if pooled {
		s.tracer, s.collector = nil, nil
		s.data = SpanData{} // drop the Attrs reference; the recorded copy keeps it
		s.pooled, s.done = false, false
		leafPool.Put(s)
	}
}

// Collector accumulates the spans one request produced in this process,
// so a shard RPC handler can return exactly its own spans on the
// terminal wire line (the tracer's per-trace buffer may hold spans of
// other asks sharing the trace).
type Collector struct {
	mu    sync.Mutex
	spans []SpanData
}

func (c *Collector) add(d SpanData) {
	c.mu.Lock()
	c.spans = append(c.spans, d)
	c.mu.Unlock()
}

// Take returns the collected spans (nil when none).
func (c *Collector) Take() []SpanData {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.spans
	c.spans = nil
	return out
}

// active is the per-request trace state carried by context.Context.
type active struct {
	tracer    *Tracer
	collector *Collector
	traceID   uint64
	spanID    uint64 // parent of the next child span
}

type ctxKey struct{}

// StartSpan opens a child span under the context's active trace. When
// the request is not traced it returns the context unchanged and a nil
// Span — the single ctx.Value lookup is the entire disabled-path cost.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	a, _ := ctx.Value(ctxKey{}).(*active)
	if a == nil {
		return ctx, nil
	}
	now := time.Now()
	sp := &Span{
		tracer:    a.tracer,
		collector: a.collector,
		start:     now,
		data: SpanData{
			TraceID:  a.traceID,
			SpanID:   nextSpanID(),
			ParentID: a.spanID,
			Name:     name,
			StartNs:  now.UnixNano(),
		},
	}
	sp.child = active{tracer: a.tracer, collector: a.collector, traceID: a.traceID, spanID: sp.data.SpanID}
	return context.WithValue(ctx, ctxKey{}, &sp.child), sp
}

// leafPool recycles LeafSpan spans: unlike StartSpan spans, no context
// ever references them, so once End runs nothing can reach the struct.
var leafPool = sync.Pool{New: func() any { return new(Span) }}

// LeafSpan opens a child span that will never have children of its own:
// it skips the context derivation StartSpan pays and recycles the Span
// struct, so instrumenting a leaf operation (a sigtree search, a WAL
// append) is nearly allocation-free. Returns nil when the request is
// not traced. The span must not be touched after End.
func LeafSpan(ctx context.Context, name string) *Span {
	if ctx == nil {
		return nil
	}
	a, _ := ctx.Value(ctxKey{}).(*active)
	if a == nil {
		return nil
	}
	now := time.Now()
	sp := leafPool.Get().(*Span)
	sp.tracer, sp.collector, sp.start, sp.pooled = a.tracer, a.collector, now, true
	sp.data = SpanData{
		TraceID:  a.traceID,
		SpanID:   nextSpanID(),
		ParentID: a.spanID,
		Name:     name,
		StartNs:  now.UnixNano(),
	}
	return sp
}

// HeaderValue renders the context's active trace as the X-Ssrec-Trace
// header value ("<trace-id>-<span-id>"), or "" when not tracing.
func HeaderValue(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	a, _ := ctx.Value(ctxKey{}).(*active)
	if a == nil {
		return ""
	}
	return hex16(a.traceID) + "-" + hex16(a.spanID)
}

// TraceID returns the context's active trace id, or "".
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	a, _ := ctx.Value(ctxKey{}).(*active)
	if a == nil {
		return ""
	}
	return hex16(a.traceID)
}

// ImportSpans records remotely produced spans (returned on a shard RPC
// terminal line) into the context's tracer, deduplicating by span id so
// retried or duplicated deliveries cannot double-count.
func ImportSpans(ctx context.Context, spans []SpanData) {
	if len(spans) == 0 {
		return
	}
	a, _ := ctx.Value(ctxKey{}).(*active)
	if a == nil || a.tracer == nil {
		return
	}
	for _, sp := range spans {
		a.tracer.insert(sp, true)
	}
}

// Tracer buffers finished spans per trace id, bounded in both
// dimensions: at most MaxTraces traces (FIFO eviction) of at most
// MaxSpans spans each (excess dropped). All methods are safe for
// concurrent use.
type Tracer struct {
	// MaxTraces bounds the number of retained traces (default 256).
	MaxTraces int
	// MaxSpans bounds the spans kept per trace (default 512).
	MaxSpans int
	// SlowThreshold, when > 0, emits the full span tree of any root
	// span at least this slow to SlowWriter.
	SlowThreshold time.Duration
	// SlowWriter receives slow-query reports (required for
	// SlowThreshold to have effect).
	SlowWriter io.Writer

	mu     sync.Mutex
	traces map[uint64]*traceEntry
	order  []uint64 // FIFO eviction order
}

type traceEntry struct {
	spans   []SpanData
	inline  [2]SpanData         // backing for the first spans; most traces are tiny
	seen    map[uint64]struct{} // imported span ids only; nil until the first import
	dropped int
}

// NewTracer returns a tracer with default bounds.
func NewTracer() *Tracer {
	return &Tracer{MaxTraces: 256, MaxSpans: 512, traces: make(map[uint64]*traceEntry)}
}

// StartRequest opens a root span for one request. header is the
// incoming X-Ssrec-Trace value: when set, the trace id and parent span
// id are resumed from it (the request joins a caller's trace); when
// empty a fresh trace id is minted. The returned context carries the
// active trace for StartSpan.
func (t *Tracer) StartRequest(ctx context.Context, name, header string) (context.Context, *Span) {
	traceID, parent := parseHeader(header)
	if traceID == 0 {
		traceID = newTraceID()
	}
	now := time.Now()
	sp := &Span{
		tracer: t,
		start:  now,
		data: SpanData{
			TraceID:  traceID,
			SpanID:   nextSpanID(),
			ParentID: parent,
			Name:     name,
			StartNs:  now.UnixNano(),
		},
	}
	sp.child = active{tracer: t, traceID: traceID, spanID: sp.data.SpanID}
	return context.WithValue(ctx, ctxKey{}, &sp.child), sp
}

// Resume installs a remote caller's trace (from a header or stream
// field) into ctx WITHOUT opening a span, attaching a fresh Collector
// so the handler can return exactly the spans this request produced.
// When header is empty the context is returned unchanged with a nil
// Collector.
func (t *Tracer) Resume(ctx context.Context, header string) (context.Context, *Collector) {
	traceID, parent := parseHeader(header)
	if traceID == 0 {
		return ctx, nil
	}
	r := &struct {
		coll Collector
		act  active
	}{}
	r.act = active{tracer: t, collector: &r.coll, traceID: traceID, spanID: parent}
	return context.WithValue(ctx, ctxKey{}, &r.act), &r.coll
}

// record buffers one locally finished span, evicting the oldest trace
// when the trace bound is exceeded and dropping spans beyond the
// per-trace bound.
func (t *Tracer) record(d SpanData) {
	t.insert(d, false)
}

// insert is the shared buffering path. dedup is set for imported remote
// spans, whose terminal lines may be delivered more than once; locally
// finished spans carry process-unique counter ids and skip the check,
// so the per-trace seen map is only ever allocated on the import path.
func (t *Tracer) insert(d SpanData, dedup bool) {
	maxTraces := t.MaxTraces
	if maxTraces <= 0 {
		maxTraces = 256
	}
	maxSpans := t.MaxSpans
	if maxSpans <= 0 {
		maxSpans = 512
	}
	t.mu.Lock()
	if t.traces == nil {
		t.traces = make(map[uint64]*traceEntry)
	}
	e := t.traces[d.TraceID]
	if e == nil {
		for len(t.order) >= maxTraces {
			oldest := t.order[0]
			t.order = t.order[1:]
			// Recycle the evicted entry: at steady state every new trace
			// evicts one, so the tracer allocates no entries at all.
			e = t.traces[oldest]
			delete(t.traces, oldest)
		}
		if e == nil {
			e = &traceEntry{}
		} else {
			e.seen = nil
			e.dropped = 0
		}
		e.spans = e.inline[:0]
		t.traces[d.TraceID] = e
		t.order = append(t.order, d.TraceID)
	}
	if dedup {
		if _, dup := e.seen[d.SpanID]; dup {
			t.mu.Unlock()
			return
		}
		if e.seen == nil {
			e.seen = make(map[uint64]struct{}, 8)
		}
		e.seen[d.SpanID] = struct{}{}
	}
	if len(e.spans) >= maxSpans {
		e.dropped++
		t.mu.Unlock()
		return
	}
	e.spans = append(e.spans, d)
	// The entry (and its inline backing) can be recycled the moment the
	// lock drops, so the slow-query report must copy while still holding
	// it — a cost only slow traces pay.
	var slowSpans []SpanData
	if d.ParentID == 0 && t.SlowThreshold > 0 && t.SlowWriter != nil &&
		time.Duration(d.DurNs) >= t.SlowThreshold {
		slowSpans = append([]SpanData(nil), e.spans...)
	}
	t.mu.Unlock()

	if slowSpans != nil {
		t.writeSlow(d, slowSpans)
	}
}

// Trace returns the buffered spans of one trace (nil when unknown).
// The id is the hex string form used by headers and the trace API.
func (t *Tracer) Trace(id string) []SpanData {
	n, err := strconv.ParseUint(id, 16, 64)
	if err != nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.traces[n]
	if e == nil {
		return nil
	}
	return append([]SpanData(nil), e.spans...)
}

// writeSlow renders the full span tree of a slow request as an
// indented text block — the slow-query log.
func (t *Tracer) writeSlow(root SpanData, spans []SpanData) {
	fmt.Fprintf(t.SlowWriter, "SLOW trace=%s %s took %v\n%s",
		hex16(root.TraceID), root.Name, time.Duration(root.DurNs), FormatTree(spans))
}

// FormatTree renders a trace's spans as an indented tree rooted at the
// parentless spans, for slow-query logs and debugging.
func FormatTree(spans []SpanData) string {
	var b strings.Builder
	byStart := append([]SpanData(nil), spans...)
	sort.Slice(byStart, func(i, j int) bool { return byStart[i].StartNs < byStart[j].StartNs })
	for _, sp := range byStart {
		if sp.ParentID == 0 || !hasSpan(byStart, sp.ParentID) {
			b.WriteString(formatSpanLine(sp, 0))
			writeTree(&b, byStart, sp.SpanID, 1)
		}
	}
	return b.String()
}

func hasSpan(spans []SpanData, id uint64) bool {
	for _, sp := range spans {
		if sp.SpanID == id {
			return true
		}
	}
	return false
}

func writeTree(b *strings.Builder, spans []SpanData, parent uint64, depth int) {
	for _, sp := range spans {
		if sp.ParentID == parent {
			b.WriteString(formatSpanLine(sp, depth))
			writeTree(b, spans, sp.SpanID, depth+1)
		}
	}
}

func formatSpanLine(sp SpanData, depth int) string {
	var attrs string
	if len(sp.Attrs) > 0 {
		kvs := append(Attrs(nil), sp.Attrs...)
		sort.Slice(kvs, func(i, j int) bool { return kvs[i].K < kvs[j].K })
		parts := make([]string, len(kvs))
		for i, kv := range kvs {
			parts[i] = kv.K + "=" + kv.V
		}
		attrs = " {" + strings.Join(parts, " ") + "}"
	}
	return fmt.Sprintf("%s%s %v%s\n", strings.Repeat("  ", depth), sp.Name, time.Duration(sp.DurNs), attrs)
}

// parseHeader parses "<trace-id>-<span-id>" (fixed-width hex); a bare
// trace id (no dash) is accepted with a zero parent. Malformed headers
// parse as (0, 0) — the request is simply not traced.
func parseHeader(h string) (traceID, spanID uint64) {
	if h == "" {
		return 0, 0
	}
	tp, sp := h, ""
	if i := strings.LastIndexByte(h, '-'); i >= 0 {
		tp, sp = h[:i], h[i+1:]
	}
	traceID, err := strconv.ParseUint(tp, 16, 64)
	if err != nil {
		return 0, 0
	}
	if sp != "" {
		if spanID, err = strconv.ParseUint(sp, 16, 64); err != nil {
			return 0, 0
		}
	}
	return traceID, spanID
}

// Span ids must be unique across every process of the fleet (the caller
// merges remote spans into one tree). Each process draws a random
// 64-bit base at startup and appends an atomic counter — collisions
// between two processes inside one trace are vanishingly unlikely.
var (
	spanBase     = randUint64()
	spanCounter  atomic.Uint64
	traceBase    = randUint64()
	traceCounter atomic.Uint64
)

const hexDigits = "0123456789abcdef"

// hex16 is fmt.Sprintf("%016x", v) without the fmt machinery: one
// string allocation, no reflection — span ids are minted on every
// traced operation.
func hex16(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// nextSpanID mints a nonzero process-unique span id (0 means "root" in
// ParentID fields, so it is never issued).
func nextSpanID() uint64 {
	for {
		if v := spanBase + spanCounter.Add(1); v != 0 {
			return v
		}
	}
}

// newTraceID mints a nonzero process-unique trace id from a random
// startup base and a counter scrambled by an odd multiplier (a
// bijection on uint64), keeping crypto/rand off the per-request path.
func newTraceID() uint64 {
	for {
		if v := traceBase ^ (traceCounter.Add(1) * 0x9e3779b97f4a7c15); v != 0 {
			return v
		}
	}
}

func randUint64() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.BigEndian.Uint64(b[:])
}
