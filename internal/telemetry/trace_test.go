package telemetry

import (
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartSpanWithoutTraceIsNil(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("untraced context produced a span")
	}
	// Every method must no-op on the nil span.
	sp.SetAttr("k", "v")
	sp.End()
	if HeaderValue(ctx) != "" || TraceID(ctx) != "" {
		t.Fatal("untraced context has trace identity")
	}
}

func TestRequestSpanTree(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartRequest(context.Background(), "http.request", "")
	id := TraceID(ctx)
	if id == "" {
		t.Fatal("no trace id")
	}
	ctx2, child := StartSpan(ctx, "router.scatter")
	_, leaf := StartSpan(ctx2, "sigtree.search")
	leaf.SetAttr("shard", "0")
	leaf.End()
	child.End()
	root.End()

	spans := tr.Trace(id)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range spans {
		if hex16(sp.TraceID) != id {
			t.Fatalf("span %q has trace %q, want %q", sp.Name, hex16(sp.TraceID), id)
		}
		byName[sp.Name] = sp
	}
	if byName["http.request"].ParentID != 0 {
		t.Fatal("root has a parent")
	}
	if byName["router.scatter"].ParentID != byName["http.request"].SpanID {
		t.Fatal("scatter not parented under root")
	}
	if byName["sigtree.search"].ParentID != byName["router.scatter"].SpanID {
		t.Fatal("search not parented under scatter")
	}
	if byName["sigtree.search"].Attrs.Get("shard") != "0" {
		t.Fatal("attr lost")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartRequest(context.Background(), "root", "")
	hv := HeaderValue(ctx)
	if hv == "" || !strings.Contains(hv, "-") {
		t.Fatalf("header value %q", hv)
	}

	// The remote side resumes from the header: same trace id, spans
	// parented under the caller's span, collected for the wire.
	remote := NewTracer()
	rctx, coll := remote.Resume(context.Background(), hv)
	if TraceID(rctx) != TraceID(ctx) {
		t.Fatal("trace id not propagated")
	}
	_, rsp := StartSpan(rctx, "shardd.recommend")
	rsp.End()
	root.End()

	got := coll.Take()
	if len(got) != 1 || got[0].Name != "shardd.recommend" {
		t.Fatalf("collector: %+v", got)
	}
	if hex16(got[0].TraceID) != TraceID(ctx) {
		t.Fatal("collected span has wrong trace")
	}
	wantParent := strings.TrimPrefix(hv, TraceID(ctx)+"-")
	if hex16(got[0].ParentID) != wantParent {
		t.Fatalf("parent = %q, want %q", hex16(got[0].ParentID), wantParent)
	}
	// The remote tracer also buffered it locally.
	if len(remote.Trace(TraceID(ctx))) != 1 {
		t.Fatal("remote tracer did not record")
	}
}

func TestImportSpansDedup(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartRequest(context.Background(), "root", "")
	id := TraceID(ctx)
	remote := SpanData{TraceID: mustID(t, id), SpanID: 0xabc, Name: "remote"}
	ImportSpans(ctx, []SpanData{remote})
	ImportSpans(ctx, []SpanData{remote}) // duplicate delivery
	root.End()
	if got := len(tr.Trace(id)); got != 2 {
		t.Fatalf("got %d spans, want 2 (root + one remote)", got)
	}
}

func TestTracerBounds(t *testing.T) {
	tr := &Tracer{MaxTraces: 2, MaxSpans: 3}
	ids := []string{}
	for i := 0; i < 4; i++ {
		ctx, root := tr.StartRequest(context.Background(), "r", "")
		ids = append(ids, TraceID(ctx))
		for j := 0; j < 5; j++ {
			_, sp := StartSpan(ctx, "child")
			sp.End()
		}
		root.End()
	}
	// Only the 2 newest traces survive FIFO eviction.
	if tr.Trace(ids[0]) != nil || tr.Trace(ids[1]) != nil {
		t.Fatal("old traces not evicted")
	}
	for _, id := range ids[2:] {
		spans := tr.Trace(id)
		if spans == nil {
			t.Fatalf("trace %s evicted", id)
		}
		if len(spans) > 3 {
			t.Fatalf("trace %s kept %d spans, cap 3", id, len(spans))
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	tr := NewTracer()
	tr.SlowThreshold = time.Nanosecond
	tr.SlowWriter = w
	ctx, root := tr.StartRequest(context.Background(), "http.request", "")
	_, sp := StartSpan(ctx, "router.scatter")
	sp.End()
	time.Sleep(time.Millisecond)
	root.End()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "SLOW trace=") || !strings.Contains(out, "router.scatter") {
		t.Fatalf("slow log: %q", out)
	}

	// Under threshold: nothing logged.
	tr2 := NewTracer()
	tr2.SlowThreshold = time.Hour
	tr2.SlowWriter = w
	_, r2 := tr2.StartRequest(context.Background(), "fast", "")
	r2.End()
	mu.Lock()
	out2 := buf.String()
	mu.Unlock()
	if strings.Contains(out2, "fast") {
		t.Fatal("fast request hit the slow log")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestFormatTree(t *testing.T) {
	spans := []SpanData{
		{SpanID: 1, Name: "root", StartNs: 1, DurNs: 100},
		{SpanID: 2, ParentID: 1, Name: "child", StartNs: 2, DurNs: 50, Attrs: Attrs{{K: "shard", V: "1"}}},
	}
	out := FormatTree(spans)
	if !strings.Contains(out, "root") || !strings.Contains(out, "  child") || !strings.Contains(out, "{shard=1}") {
		t.Fatalf("tree:\n%s", out)
	}
}

// TestTracerHammer exercises concurrent span production, import and
// fetch under -race.
func TestTracerHammer(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.StartRequest(context.Background(), "r", "")
				_, sp := StartSpan(ctx, "child")
				sp.SetAttr("i", "x")
				sp.End()
				ImportSpans(ctx, []SpanData{{TraceID: mustID(t, TraceID(ctx)), SpanID: nextSpanID(), Name: "remote"}})
				root.End()
				tr.Trace(TraceID(ctx))
			}
		}()
	}
	wg.Wait()
}

// mustID parses the hex trace-id form the public API exposes.
func mustID(t testing.TB, id string) uint64 {
	t.Helper()
	n, err := strconv.ParseUint(id, 16, 64)
	if err != nil {
		t.Fatalf("bad trace id %q: %v", id, err)
	}
	return n
}

func TestParseHeader(t *testing.T) {
	for _, tc := range []struct {
		in         string
		trace, spn uint64
	}{
		{"", 0, 0},
		{"abc-def", 0xabc, 0xdef},
		{"abc", 0xabc, 0},
		{"00000000000000ff-0000000000000001", 0xff, 1},
		{"not-hex", 0, 0}, // malformed → untraced
		{"a-b-c", 0, 0},   // "a-b" is not a hex trace id
		{"zz", 0, 0},      // bare malformed id
	} {
		tr, sp := parseHeader(tc.in)
		if tr != tc.trace || sp != tc.spn {
			t.Fatalf("parseHeader(%q) = %x,%x want %x,%x", tc.in, tr, sp, tc.trace, tc.spn)
		}
	}
}

// TestSpanDataWireRoundTrip pins the JSON wire form: hex-string ids,
// parent omitted on roots, attrs as an object.
func TestSpanDataWireRoundTrip(t *testing.T) {
	in := SpanData{TraceID: 0xff, SpanID: 2, ParentID: 1, Name: "x",
		StartNs: 5, DurNs: 7, Attrs: Attrs{{K: "k", V: "v"}}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"trace_id":"00000000000000ff"`, `"span_id":"0000000000000002"`,
		`"parent_id":"0000000000000001"`, `"attrs":{"k":"v"}`} {
		if !strings.Contains(s, want) {
			t.Errorf("wire %s misses %s", s, want)
		}
	}
	var out SpanData
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != in.TraceID || out.SpanID != in.SpanID || out.ParentID != in.ParentID ||
		out.Attrs.Get("k") != "v" {
		t.Fatalf("round trip: %+v", out)
	}
	// Roots omit parent_id entirely.
	rb, err := json.Marshal(SpanData{TraceID: 1, SpanID: 2, Name: "root"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(rb), "parent_id") {
		t.Errorf("root span encodes parent_id: %s", rb)
	}
}

func BenchmarkStartSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "x")
		sp.End()
	}
}

func BenchmarkStartSpanEnabled(b *testing.B) {
	tr := NewTracer()
	ctx, root := tr.StartRequest(context.Background(), "root", "")
	defer root.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "x")
		sp.End()
	}
}
