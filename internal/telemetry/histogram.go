// histogram.go promotes internal/metrics.Histogram to a concurrent-safe
// type by sharding: writers pick a shard round-robin (one atomic add +
// one uncontended mutex in the common case), readers merge all shards
// under their locks into one histogram before computing quantiles. The
// underlying exponential-bucket histogram stays single-threaded and
// allocation-free.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"ssrec/internal/metrics"
)

// histogramShards bounds writer contention. 8 shards keeps the merge
// cheap (8 × 340 bucket adds per snapshot) while spreading hot routes
// across enough locks that p99 recording never serialises the request
// path.
const histogramShards = 8

type histogramShard struct {
	mu sync.Mutex
	h  metrics.Histogram
	// pad spaces shards a cache line apart so two cores recording into
	// neighbouring shards do not false-share.
	_ [40]byte
}

// Histogram is a concurrency-safe exponential-bucket latency histogram.
// Use NewHistogram (or Registry.Histogram); the zero value also works.
type Histogram struct {
	next   atomic.Uint64
	shards [histogramShards]histogramShard
}

// NewHistogram returns an empty concurrent histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	s := &h.shards[h.next.Add(1)%histogramShards]
	s.mu.Lock()
	s.h.Record(d)
	s.mu.Unlock()
}

// merged collects every shard into one plain histogram. Each shard is
// locked only while it is copied; the merge sees each shard at some
// point during the call (the usual weak consistency of concurrent
// snapshots — counts never go backwards).
func (h *Histogram) merged() metrics.Histogram {
	var m metrics.Histogram
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		m.Merge(&s.h)
		s.mu.Unlock()
	}
	return m
}

// Snapshot returns the merged headline statistics.
func (h *Histogram) Snapshot() metrics.Snapshot {
	m := h.merged()
	return m.Snapshot()
}

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() time.Duration {
	var sum time.Duration
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		sum += s.h.Sum()
		s.mu.Unlock()
	}
	return sum
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		n += s.h.Count()
		s.mu.Unlock()
	}
	return n
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() time.Duration {
	var max time.Duration
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if m := s.h.Max(); m > max {
			max = m
		}
		s.mu.Unlock()
	}
	return max
}
