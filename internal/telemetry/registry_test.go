package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ssrec_requests_total", "Requests served.", "route", "POST /v2/recommend")
	c.Inc()
	c.Add(2)
	g := r.Gauge("ssrec_sessions_open", "Open session streams.")
	g.Set(4)
	g.Add(-1)
	r.GaugeFunc("ssrec_users", "Indexed users.", func() float64 { return 42 })

	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP ssrec_requests_total Requests served.",
		"# TYPE ssrec_requests_total counter",
		`ssrec_requests_total{route="POST /v2/recommend"} 3`,
		"# TYPE ssrec_sessions_open gauge",
		"ssrec_sessions_open 3",
		"ssrec_users 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryIdempotentAndDeterministic(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ssrec_x_total", "", "k", "v")
	b := r.Counter("ssrec_x_total", "", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	r.Counter("ssrec_b_total", "")
	r.Counter("ssrec_a_total", "")
	var s1, s2 strings.Builder
	r.WriteTo(&s1)
	r.WriteTo(&s2)
	if s1.String() != s2.String() {
		t.Fatal("exposition not deterministic")
	}
	if strings.Index(s1.String(), "ssrec_a_total") > strings.Index(s1.String(), "ssrec_b_total") {
		t.Fatal("families not sorted by name")
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ssrec_latency_seconds", "Latency.", "route", "x")
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE ssrec_latency_seconds summary",
		`ssrec_latency_seconds{route="x",quantile="0.5"}`,
		`ssrec_latency_seconds{route="x",quantile="0.99"}`,
		`ssrec_latency_seconds_sum{route="x"} 0.003`,
		`ssrec_latency_seconds_count{route="x"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscapingAndOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("ssrec_esc_total", "", "b", `quo"te`, "a", "back\\slash").Inc()
	var b strings.Builder
	r.WriteTo(&b)
	if !strings.Contains(b.String(), `ssrec_esc_total{a="back\\slash",b="quo\"te"} 1`) {
		t.Fatalf("label escaping/order wrong:\n%s", b.String())
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ssrec_dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict did not panic")
		}
	}()
	r.Gauge("ssrec_dup", "")
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ssrec_h_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ssrec_h_total 1") {
		t.Fatalf("body: %s", rec.Body.String())
	}
}

// TestRegistryHammer drives every metric type from many goroutines
// while scraping concurrently — the -race CI job runs this.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("ssrec_hammer_total", "", "w", string(rune('a'+w%4))).Inc()
				r.Gauge("ssrec_hammer_gauge", "").Add(1)
				r.Histogram("ssrec_hammer_seconds", "").Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WriteTo(&b)
		}
	}()
	wg.Wait()
	var total int64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("ssrec_hammer_total", "", "w", l).Value()
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
	if n := r.Histogram("ssrec_hammer_seconds", "").Count(); n != workers*iters {
		t.Fatalf("histogram count = %d, want %d", n, workers*iters)
	}
}

func TestConcurrentHistogramStats(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if want := 4 * 500500 * time.Microsecond; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	snap := h.Snapshot()
	if snap.P50 == 0 || snap.P99 < snap.P50 {
		t.Fatalf("quantiles: %+v", snap)
	}
}
