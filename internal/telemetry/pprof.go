// pprof.go is the profiling hook: a side-listener mux exposing the
// standard net/http/pprof handlers plus an execution-trace capture
// endpoint, deliberately OFF the serving listener — profiles are
// operator tooling and must never share a port (or an auth story) with
// the API surface. Daemons enable it with -pprof-addr.
package telemetry

import (
	"net/http"
	"net/http/pprof"
	"runtime/trace"
	"strconv"
	"sync/atomic"
	"time"
)

// PprofHandler returns the side-listener mux: the full /debug/pprof/*
// family plus GET /debug/exectrace?sec=N, which streams a runtime
// execution trace of the next N seconds (default 1, max 60). Execution
// traces are whole-process and single-flight: a second capture while
// one runs answers 409.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	var busy atomic.Bool
	mux.HandleFunc("GET /debug/exectrace", func(w http.ResponseWriter, r *http.Request) {
		sec := 1
		if v := r.URL.Query().Get("sec"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 || n > 60 {
				http.Error(w, "sec must be an integer in [1,60]", http.StatusBadRequest)
				return
			}
			sec = n
		}
		if !busy.CompareAndSwap(false, true) {
			http.Error(w, "an execution trace capture is already running", http.StatusConflict)
			return
		}
		defer busy.Store(false)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="exectrace.out"`)
		if err := trace.Start(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		select {
		case <-time.After(time.Duration(sec) * time.Second):
		case <-r.Context().Done():
		}
		trace.Stop()
	})
	return mux
}

// ServePprof starts the profiling side listener on addr and returns the
// server (already serving in a goroutine). Errors after startup are
// reported through errFn (may be nil).
func ServePprof(addr string, errFn func(error)) *http.Server {
	srv := &http.Server{Addr: addr, Handler: PprofHandler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && errFn != nil {
			errFn(err)
		}
	}()
	return srv
}
