// Package telemetry is the fleet's observability substrate: a
// dependency-free concurrent metrics registry with Prometheus
// text-format exposition, lightweight request tracing propagated
// through context.Context and the X-Ssrec-Trace header, and flag-gated
// profiling hooks. It sits below every serving layer (server, shard,
// shardrpc, wal) and above none of them — the package imports only the
// standard library and internal/metrics, so any layer may instrument
// itself without import cycles.
//
// Instrumentation is exactness-neutral by construction: counters and
// spans observe the computation, they never participate in it. The
// sigtree bound exchange, the top-k merge and every wire shape are
// byte-identical whether telemetry is enabled or not.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64. The
// zero value is ready to use; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := floatBits(floatFrom(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFrom(g.bits.Load()) }

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// series is one labeled instance of a metric family. Exactly one of the
// payload fields is set, matching the family's type.
type series struct {
	labels  string // canonical rendered label set, "" for none
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family groups every labeled series of one metric name under a shared
// help string and type.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "summary"

	mu     sync.Mutex
	series map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format 0.0.4. All methods are safe for concurrent use;
// metric constructors are idempotent (same name + labels returns the
// same instance).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the named family, panicking on a
// type conflict — mixing types under one name is a programming error
// that would corrupt the exposition.
func (r *Registry) family(name, help, typ string) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter for name + labels, creating it on first
// use. Labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, "counter")
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls, counter: &Counter{}}
		f.series[ls] = s
	}
	return s.counter
}

// Gauge returns the gauge for name + labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, "gauge")
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls, gauge: &Gauge{}}
		f.series[ls] = s
	}
	return s.gauge
}

// GaugeFunc registers a lazily evaluated gauge: fn is called at scrape
// time. Useful for values another subsystem already tracks (index
// sizes, WAL sequence numbers) — no double bookkeeping. Re-registering
// the same name + labels replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.family(name, help, "gauge")
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[ls] = &series{labels: ls, fn: fn}
}

// Histogram returns the latency histogram for name + labels, creating
// it on first use. It is exposed as a Prometheus summary (quantiles
// 0.5/0.95/0.99 + _sum + _count) — the 340 exponential buckets stay
// internal, where they cost nothing per scrape.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	f := r.family(name, help, "summary")
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls, hist: NewHistogram()}
		f.series[ls] = s
	}
	return s.hist
}

// renderLabels canonicalizes alternating key, value pairs into the
// exposition form `k1="v1",k2="v2"` with keys sorted, so the same label
// set always maps to the same series regardless of argument order.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("telemetry: odd label key/value list")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, kv[i]+`="`+escapeLabel(kv[i+1])+`"`)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// WriteTo renders every family in Prometheus text exposition format
// 0.0.4, deterministically ordered (families by name, series by label
// string) so the output is golden-testable.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, k := range keys {
			s := f.series[k]
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, s.labels), s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.labels), formatFloat(s.gauge.Value()))
			case s.fn != nil:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.labels), formatFloat(s.fn()))
			case s.hist != nil:
				writeSummary(&b, f.name, s.labels, s.hist)
			}
		}
		f.mu.Unlock()
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeSummary renders one histogram series as a Prometheus summary:
// quantile-labeled lines in seconds plus _sum and _count.
func writeSummary(b *strings.Builder, name, labels string, h *Histogram) {
	snap := h.Snapshot()
	sum := h.Sum()
	for _, q := range [...]struct {
		label string
		d     time.Duration
	}{{"0.5", snap.P50}, {"0.95", snap.P95}, {"0.99", snap.P99}} {
		ql := `quantile="` + q.label + `"`
		if labels != "" {
			ql = labels + "," + ql
		}
		fmt.Fprintf(b, "%s{%s} %s\n", name, ql, formatFloat(q.d.Seconds()))
	}
	fmt.Fprintf(b, "%s %s\n", seriesName(name+"_sum", labels), formatFloat(sum.Seconds()))
	fmt.Fprintf(b, "%s %d\n", seriesName(name+"_count", labels), snap.Count)
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at GET /metrics in text exposition
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}
