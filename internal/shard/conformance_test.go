// conformance_test.go is the deterministic stream-replay conformance
// suite: it replays one seeded interaction stream — interleaved with
// recommendation batches — into a single engine and into sharded
// deployments, and asserts the deployments are OBSERVABLY EQUIVALENT:
// identical ranked results (IDs, scores, order), identical per-item
// errors and identical ingest reports, at every cell of the
// shards × parallelism matrix.
//
//	shards      ∈ {1, 2, 8}
//	parallelism ∈ {1, 4}   (intra-shard partitioned search)
//
// Every deployment boots from the SAME trained-engine snapshot, so the
// only variable is the sharding itself. The replayed stream carries at
// least 10k post-training interactions (the acceptance floor).
package shard

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/model"
	"ssrec/internal/sigtree"
)

// deployment is the surface the replay drives — satisfied by both
// *core.Engine (the reference) and *Router (the system under test).
type deployment interface {
	ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error)
	RecommendBatch(ctx context.Context, items []model.Item, opts ...core.Option) ([]core.Result, error)
}

// replayFixture is the shared deterministic workload: one snapshot every
// deployment boots from, the post-training observation stream, and the
// query schedule interleaved between micro-batches.
type replayFixture struct {
	snapshot []byte
	obs      []core.Observation
	queries  []model.Item
}

const (
	replayBatch    = 128 // observations per ObserveBatch micro-batch
	replayQueryLen = 6   // items recommended between micro-batches
	replayK        = 10
)

var fixtureCache *replayFixture

// fixture builds (once) the seeded dataset, trains the reference engine on
// the leading third and snapshots it.
func fixture(t testing.TB) *replayFixture {
	t.Helper()
	if fixtureCache != nil {
		return fixtureCache
	}
	cfg := dataset.YTubeConfig(0.5)
	cfg.Seed = 17
	ds := dataset.Generate(cfg)
	eng := core.New(core.Config{Categories: ds.Categories, TrainMaxIter: 3, Restarts: 1, Seed: 17})
	nTrain := len(ds.Interactions) / 3
	if err := eng.Train(ds.Items, ds.Interactions[:nTrain], ds.Item); err != nil {
		t.Fatalf("train: %v", err)
	}
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	fx := &replayFixture{snapshot: buf.Bytes()}
	lastTS := ds.Interactions[nTrain-1].Timestamp
	for _, ir := range ds.Interactions[nTrain:] {
		if v, ok := ds.Item(ir.ItemID); ok {
			fx.obs = append(fx.obs, core.Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp})
		}
	}
	for _, v := range ds.Items {
		if v.Timestamp > lastTS {
			fx.queries = append(fx.queries, v)
		}
	}
	if len(fx.obs) < 10000 {
		t.Fatalf("replay stream has %d interactions, conformance floor is 10k", len(fx.obs))
	}
	if len(fx.queries) < replayQueryLen {
		t.Fatalf("only %d query items", len(fx.queries))
	}
	fixtureCache = fx
	return fx
}

// transcript is everything a deployment exposes during one replay.
type transcript struct {
	reports []core.BatchReport
	results [][]core.Result
}

// replay drives the deterministic schedule: micro-batches of observations,
// each followed by a rotating recommendation batch over future items.
func (fx *replayFixture) replay(t testing.TB, d deployment, maxBatches int) *transcript {
	t.Helper()
	ctx := context.Background()
	tr := &transcript{}
	batchIdx := 0
	for lo := 0; lo < len(fx.obs); lo += replayBatch {
		hi := min(lo+replayBatch, len(fx.obs))
		rep, err := d.ObserveBatch(ctx, fx.obs[lo:hi])
		if err != nil {
			t.Fatalf("batch %d: ObserveBatch: %v", batchIdx, err)
		}
		rep.Errors = nil // compared separately via Rejected
		tr.reports = append(tr.reports, rep)
		q := queryWindow(fx.queries, batchIdx)
		results, err := d.RecommendBatch(ctx, q, core.WithK(replayK))
		if err != nil {
			t.Fatalf("batch %d: RecommendBatch: %v", batchIdx, err)
		}
		for i := range results {
			// Pruning counters legitimately differ across shardings (each
			// deployment prunes with different bound timing); observable
			// equivalence is about results, not traversal effort.
			results[i].Stats = sigtree.SearchStats{}
		}
		tr.results = append(tr.results, results)
		batchIdx++
		if maxBatches > 0 && batchIdx >= maxBatches {
			break
		}
	}
	return tr
}

// queryWindow rotates deterministically through the future-item list.
func queryWindow(items []model.Item, batchIdx int) []model.Item {
	out := make([]model.Item, 0, replayQueryLen)
	for i := 0; i < replayQueryLen; i++ {
		out = append(out, items[(batchIdx*replayQueryLen+i)%len(items)])
	}
	return out
}

// diffTranscripts asserts two replays are observably identical.
func diffTranscripts(t *testing.T, want, got *transcript, label string) {
	t.Helper()
	if len(want.reports) != len(got.reports) {
		t.Fatalf("%s: %d reports vs %d", label, len(got.reports), len(want.reports))
	}
	for i := range want.reports {
		w, g := want.reports[i], got.reports[i]
		if w.Applied != g.Applied || w.Rejected != g.Rejected || w.Flushed != g.Flushed {
			t.Errorf("%s: batch %d report = %+v, want %+v", label, i, g, w)
		}
	}
	for i := range want.results {
		for j := range want.results[i] {
			w, g := want.results[i][j], got.results[i][j]
			if w.ItemID != g.ItemID {
				t.Fatalf("%s: batch %d item %d: id %q vs %q", label, i, j, g.ItemID, w.ItemID)
			}
			if (w.Err == nil) != (g.Err == nil) {
				t.Fatalf("%s: batch %d item %s: err %v vs %v", label, i, w.ItemID, g.Err, w.Err)
			}
			if !reflect.DeepEqual(w.Recommendations, g.Recommendations) {
				t.Fatalf("%s: batch %d item %s: ranked results diverged\n got %v\nwant %v",
					label, i, w.ItemID, g.Recommendations, w.Recommendations)
			}
		}
	}
}

// TestConformanceStreamReplay is the acceptance gate: every cell of the
// shards × parallelism matrix replays the full seeded stream and must be
// observably equivalent to the single reference engine.
func TestConformanceStreamReplay(t *testing.T) {
	fx := fixture(t)
	maxBatches := 0 // full stream
	shardCounts := []int{1, 2, 8}
	parallelisms := []int{1, 4}
	if testing.Short() {
		maxBatches = 12
		shardCounts = []int{1, 2}
		parallelisms = []int{1}
	}

	reference, err := core.LoadFrom(bytes.NewReader(fx.snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.replay(t, reference, maxBatches)
	t.Logf("reference transcript: %d micro-batches, %d interactions, %d queries",
		len(want.reports), len(fx.obs), len(want.results)*replayQueryLen)

	for _, n := range shardCounts {
		for _, p := range parallelisms {
			t.Run(fmt.Sprintf("shards=%d/parallelism=%d", n, p), func(t *testing.T) {
				r, err := FromSnapshot(fx.snapshot, n)
				if err != nil {
					t.Fatalf("boot: %v", err)
				}
				r.SetParallelism(p)
				got := fx.replay(t, r, maxBatches)
				diffTranscripts(t, want, got, fmt.Sprintf("shards=%d p=%d", n, p))
			})
		}
	}
}

// TestConformanceShardStats sanity-checks the partition itself: every user
// is owned by exactly one shard, leaf counts sum to the single-engine
// figure, and the replicated routing structures agree across shards.
func TestConformanceShardStats(t *testing.T) {
	fx := fixture(t)
	reference, err := core.LoadFrom(bytes.NewReader(fx.snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	refStats, ok := reference.IndexStats()
	if !ok {
		t.Fatal("reference engine reports no index")
	}
	r, err := FromSnapshot(fx.snapshot, 4)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	stats := r.ShardStats()
	owned, leaves := 0, 0
	for i, st := range stats {
		if st.Shard != i {
			t.Errorf("shard %d reports index %d", i, st.Shard)
		}
		if !st.Trained {
			t.Errorf("shard %d untrained", i)
		}
		if st.Users != refStats.Users {
			t.Errorf("shard %d tracks %d users, reference %d (dictionaries must be replicated)", i, st.Users, refStats.Users)
		}
		if st.Blocks != refStats.Blocks || st.Trees != refStats.Trees || st.HashKeys != refStats.HashKeys {
			t.Errorf("shard %d routing structures diverge: %+v vs reference %+v", i, st, refStats)
		}
		owned += st.OwnedUsers
		leaves += st.Leaves
	}
	if owned != refStats.Users {
		t.Errorf("owned users sum to %d, want %d (exact partition)", owned, refStats.Users)
	}
	if leaves != refStats.TotalLeafCount {
		t.Errorf("leaves sum to %d, want single-engine %d", leaves, refStats.TotalLeafCount)
	}
	for _, id := range []string{"uc0001", "uc0042", "anyone"} {
		own := r.Owner(id)
		if own < 0 || own >= r.Shards() {
			t.Errorf("Owner(%q) = %d out of range", id, own)
		}
		if own != model.ShardOf(id, r.Shards()) {
			t.Errorf("router and model disagree on owner of %q", id)
		}
	}
}
