// conformance_test.go is the deterministic stream-replay conformance
// suite: it replays one seeded interaction stream — interleaved with
// recommendation batches — into a single engine and into sharded
// deployments, and asserts the deployments are OBSERVABLY EQUIVALENT:
// identical ranked results (IDs, scores, order), identical per-item
// errors and identical ingest reports, at every cell of the
// shards × parallelism matrix.
//
//	shards      ∈ {1, 2, 8}
//	parallelism ∈ {1, 4}   (intra-shard partitioned search)
//
// Every deployment boots from the SAME trained-engine snapshot, so the
// only variable is the sharding itself. The replayed stream carries at
// least 10k post-training interactions (the acceptance floor). The
// fixture, replay driver and transcript differ live in
// internal/shardtest, shared with the network-transport suite in
// internal/shardrpc (same workload, remote column).
package shard

import (
	"bytes"
	"fmt"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shardtest"
)

// fixture aliases the shared harness for the older helpers in this
// package's tests.
func fixture(tb testing.TB) *shardtest.Fixture { return shardtest.Load(tb) }

// queryWindow keeps the historical local name used by router_test.go.
func queryWindow(items []model.Item, batchIdx int) []model.Item {
	return shardtest.QueryWindow(items, batchIdx)
}

// TestConformanceStreamReplay is the acceptance gate: every cell of the
// shards × parallelism matrix replays the full seeded stream and must be
// observably equivalent to the single reference engine.
func TestConformanceStreamReplay(t *testing.T) {
	fx := fixture(t)
	maxBatches := 0 // full stream
	shardCounts := []int{1, 2, 8}
	parallelisms := []int{1, 4}
	if testing.Short() {
		maxBatches = 12
		shardCounts = []int{1, 2}
		parallelisms = []int{1}
	}

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, maxBatches)
	t.Logf("reference transcript: %d micro-batches, %d interactions, %d queries",
		len(want.Reports), len(fx.Obs), len(want.Results)*shardtest.ReplayQueryLen)

	for _, n := range shardCounts {
		for _, p := range parallelisms {
			t.Run(fmt.Sprintf("shards=%d/parallelism=%d", n, p), func(t *testing.T) {
				r, err := FromSnapshot(fx.Snapshot, n)
				if err != nil {
					t.Fatalf("boot: %v", err)
				}
				r.SetParallelism(p)
				got := fx.Replay(t, r, maxBatches)
				shardtest.Diff(t, want, got, fmt.Sprintf("shards=%d p=%d", n, p))
			})
		}
	}
}

// TestConformanceReplicatedStreamReplay extends the acceptance gate to
// replica sets: a 2-slot deployment at every replication factor R replays
// the full seeded stream and must be observably equivalent to the single
// reference engine — replication must be invisible in results (writes
// broadcast the same micro-batches to every replica; any replica answers
// a read bit-identically).
func TestConformanceReplicatedStreamReplay(t *testing.T) {
	fx := fixture(t)
	maxBatches := 0 // full stream
	replicas := []int{1, 2, 3}
	if testing.Short() {
		maxBatches = 12
		replicas = []int{2}
	}

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, maxBatches)

	for _, rep := range replicas {
		t.Run(fmt.Sprintf("shards=2/replicas=%d", rep), func(t *testing.T) {
			r, err := FromSnapshotReplicated(fx.Snapshot, 2, rep)
			if err != nil {
				t.Fatalf("boot: %v", err)
			}
			got := fx.Replay(t, r, maxBatches)
			shardtest.Diff(t, want, got, fmt.Sprintf("shards=2 replicas=%d", rep))
		})
	}
}

// TestConformanceDirtyMaskStreamReplay is the write-path acceptance gate
// for the dirty-category-mask refresh: at every micro-batch size in
// {1, 64, 256} (batch=1 flushes per observation; larger batches merge
// masks across many observations before one flush), deployments running
// the masked refresh — with and without the incremental BiHMM fold, at
// shards 1 and 2 — must be observably equivalent to a reference engine
// forced onto the rebuild-everything path (SetFullRefresh).
func TestConformanceDirtyMaskStreamReplay(t *testing.T) {
	fx := fixture(t)
	// Query windows fire after every micro-batch, so small batch sizes are
	// query-dominated: cap the batch count to keep the sweep proportionate
	// while still covering hundreds of flushes.
	caps := map[int]int{1: 192, 64: 48, 256: 0} // 0 = full stream
	if testing.Short() {
		caps = map[int]int{1: 32, 64: 12, 256: 12}
	}

	for _, batchSize := range []int{1, 64, 256} {
		maxBatches := caps[batchSize]
		t.Run(fmt.Sprintf("batch=%d", batchSize), func(t *testing.T) {
			reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
			if err != nil {
				t.Fatalf("boot reference: %v", err)
			}
			reference.SetFullRefresh(true)
			want := fx.ReplayBatchSize(t, reference, batchSize, maxBatches)

			arms := []struct {
				name   string
				shards int
				fold   bool
			}{
				{"shards=1/masked", 1, false},
				{"shards=1/masked+fold", 1, true},
				{"shards=2/masked+fold", 2, true},
			}
			for _, arm := range arms {
				t.Run(arm.name, func(t *testing.T) {
					r, err := FromSnapshot(fx.Snapshot, arm.shards)
					if err != nil {
						t.Fatalf("boot: %v", err)
					}
					// Masks are the default path; the fold is opt-in.
					r.SetIncrementalFold(arm.fold)
					got := fx.ReplayBatchSize(t, r, batchSize, maxBatches)
					shardtest.Diff(t, want, got, fmt.Sprintf("batch=%d %s", batchSize, arm.name))
				})
			}
		})
	}
}

// TestConformanceShardStats sanity-checks the partition itself: every user
// is owned by exactly one shard, leaf counts sum to the single-engine
// figure, and the replicated routing structures agree across shards.
func TestConformanceShardStats(t *testing.T) {
	fx := fixture(t)
	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	refStats, ok := reference.IndexStats()
	if !ok {
		t.Fatal("reference engine reports no index")
	}
	r, err := FromSnapshot(fx.Snapshot, 4)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	stats := r.ShardStats()
	owned, leaves := 0, 0
	for i, st := range stats {
		if st.Shard != i {
			t.Errorf("shard %d reports index %d", i, st.Shard)
		}
		if !st.Trained {
			t.Errorf("shard %d untrained", i)
		}
		if st.Users != refStats.Users {
			t.Errorf("shard %d tracks %d users, reference %d (dictionaries must be replicated)", i, st.Users, refStats.Users)
		}
		if st.Blocks != refStats.Blocks || st.Trees != refStats.Trees || st.HashKeys != refStats.HashKeys {
			t.Errorf("shard %d routing structures diverge: %+v vs reference %+v", i, st, refStats)
		}
		owned += st.OwnedUsers
		leaves += st.Leaves
	}
	if owned != refStats.Users {
		t.Errorf("owned users sum to %d, want %d (exact partition)", owned, refStats.Users)
	}
	if leaves != refStats.TotalLeafCount {
		t.Errorf("leaves sum to %d, want single-engine %d", leaves, refStats.TotalLeafCount)
	}
	for _, id := range []string{"uc0001", "uc0042", "anyone"} {
		own := r.Owner(id)
		if own < 0 || own >= r.Shards() {
			t.Errorf("Owner(%q) = %d out of range", id, own)
		}
		if own != model.ShardOf(id, r.Shards()) {
			t.Errorf("router and model disagree on owner of %q", id)
		}
	}
}
