// failover_test.go tests the Router's degraded-mode policy in isolation,
// with stub shards that fail on command — no network involved, so every
// branch (exclusion, partial merge, probe gating, handoff re-inclusion)
// is exercised deterministically. The end-to-end lifecycle over the real
// transport lives in internal/shardrpc/failover_test.go.
package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/sigtree"
)

// stubShard wraps a real Local shard and can be switched into failure
// mode, where every call reports ErrShardUnavailable. It implements
// Pinger and SnapshotReceiver so the probe/handoff paths are testable.
type stubShard struct {
	inner    *Local
	failing  atomic.Bool // transport-style failure: ErrShardUnavailable
	fatal    atomic.Bool // clean refusal: plain error, batch NOT applied
	pingOK   atomic.Bool
	calls    atomic.Int64 // serving calls attempted while failing or not
	handoffs atomic.Int64
	epoch    atomic.Int64 // bumped per accepted handoff (a re-seed)
}

func (s *stubShard) Index() int { return s.inner.Index() }

func (s *stubShard) err(op string) error {
	return errors.New("stub " + op + ": " + ErrShardUnavailable.Error())
}

func (s *stubShard) RegisterItems(ctx context.Context, items []model.Item) (bool, error) {
	s.calls.Add(1)
	if s.failing.Load() {
		return false, errors.Join(ErrShardUnavailable, s.err("register"))
	}
	if s.fatal.Load() {
		return false, errors.New("stub register: refused (fatal)")
	}
	return s.inner.RegisterItems(ctx, items)
}

func (s *stubShard) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	s.calls.Add(1)
	if s.failing.Load() {
		return core.BatchReport{}, errors.Join(ErrShardUnavailable, s.err("observe"))
	}
	if s.fatal.Load() {
		return core.BatchReport{}, errors.New("stub observe: refused (fatal)")
	}
	return s.inner.ObserveBatch(ctx, batch)
}

func (s *stubShard) Recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error) {
	s.calls.Add(1)
	if s.failing.Load() {
		return core.Result{ItemID: v.ID}, errors.Join(ErrShardUnavailable, s.err("recommend"))
	}
	return s.inner.Recommend(ctx, v, o, b)
}

func (s *stubShard) Stats() Stats {
	if s.failing.Load() {
		return Stats{Shard: s.inner.Index()}
	}
	return s.inner.Stats()
}

func (s *stubShard) Ping(ctx context.Context) (string, error) {
	if !s.pingOK.Load() {
		return "", errors.Join(ErrShardUnavailable, errors.New("stub ping refused"))
	}
	return fmt.Sprintf("epoch-%d", s.epoch.Load()), nil
}

func (s *stubShard) Handoff(ctx context.Context, snapshot []byte) error {
	s.handoffs.Add(1)
	if s.failing.Load() && !s.pingOK.Load() {
		return errors.Join(ErrShardUnavailable, errors.New("stub handoff refused"))
	}
	s.epoch.Add(1)
	return nil
}

// stubDeployment builds a 2-shard router where both shards are stubs
// over real engine shards booted from the conformance snapshot.
func stubDeployment(t *testing.T) (*Router, []*stubShard) {
	t.Helper()
	fx := fixture(t)
	stubs := make([]*stubShard, 2)
	shards := make([]Shard, 2)
	for i := range shards {
		e, err := core.LoadShardFrom(bytes.NewReader(fx.Snapshot), i, 2)
		if err != nil {
			t.Fatalf("boot shard %d: %v", i, err)
		}
		stubs[i] = &stubShard{inner: NewLocal(i, e)}
		shards[i] = stubs[i]
	}
	r, err := NewRouter(shards...)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	return r, stubs
}

func TestRouterDegradedRecommend(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()

	healthy, err := r.RecommendCtx(ctx, fx.Queries[0], core.WithK(10))
	if err != nil {
		t.Fatalf("healthy: %v", err)
	}

	stubs[1].failing.Store(true)
	res, err := r.RecommendCtx(ctx, fx.Queries[1], core.WithK(10))
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("degraded err = %v, want ErrShardUnavailable", err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("degraded mode returned no partial results")
	}
	if down := r.Down(); !reflect.DeepEqual(down, []int{1}) {
		t.Fatalf("Down() = %v, want [1]", down)
	}

	// Exclusion: the failed shard receives no further serving calls.
	before := stubs[1].calls.Load()
	if _, err := r.RecommendCtx(ctx, fx.Queries[2], core.WithK(10)); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("excluded recommend: %v", err)
	}
	if after := stubs[1].calls.Load(); after != before {
		t.Fatalf("excluded shard received %d call(s)", after-before)
	}

	// The healthy shard's answers are still exact for its owned users:
	// every returned entry appears in the full deployment's answer.
	full := map[string]float64{}
	for _, rec := range healthy.Recommendations {
		full[rec.UserID] = rec.Score
	}
	partial, _ := r.RecommendCtx(ctx, fx.Queries[0], core.WithK(10))
	for _, rec := range partial.Recommendations {
		if want, ok := full[rec.UserID]; ok && want != rec.Score {
			t.Fatalf("degraded score drifted for %s: %v vs %v", rec.UserID, rec.Score, want)
		}
	}
}

func TestRouterDegradedObserveAndBatch(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()
	stubs[0].failing.Store(true)

	rep, err := r.ObserveBatch(ctx, fx.Obs[:32])
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("observe err = %v", err)
	}
	if rep.Applied != 32 {
		t.Fatalf("healthy shard applied %d, want 32", rep.Applied)
	}
	if down := r.Down(); !reflect.DeepEqual(down, []int{0}) {
		t.Fatalf("Down() = %v, want [0]", down)
	}

	// RecommendBatch: per-item degraded errors, call-level nil, readiness
	// answered by the surviving shard (trained() must skip excluded ones).
	results, err := r.RecommendBatch(ctx, fx.Queries[:3], core.WithK(5))
	if err != nil {
		t.Fatalf("batch err = %v", err)
	}
	for i, res := range results {
		if !errors.Is(res.Err, ErrShardUnavailable) {
			t.Fatalf("item %d err = %v, want degraded", i, res.Err)
		}
		if res.ItemID != fx.Queries[i].ID {
			t.Fatalf("item %d id = %q", i, res.ItemID)
		}
	}

	// v1 accessors survive shard 0 being down (first-healthy fallback:
	// the answer comes from shard 1's stats, not shard 0's zero values).
	if r.Users() == 0 {
		t.Fatal("Users() = 0 with a healthy shard present")
	}
	if got, want := r.Parallelism(), stubs[1].inner.Stats().Parallelism; got != want {
		t.Fatalf("Parallelism() = %d, want healthy shard's %d", got, want)
	}
	if st := r.IndexStats(); st.Trees == 0 {
		t.Fatal("IndexStats() empty with a healthy shard present")
	}
	if recs := r.Recommend(fx.Queries[3], 5); len(recs) == 0 {
		t.Fatal("v1 Recommend dropped degraded partial results")
	}
	r.RegisterItem(fx.Queries[4])
	r.Observe(model.Interaction{UserID: "u", ItemID: fx.Queries[4].ID, Timestamp: 1}, fx.Queries[4])
}

func TestRouterProbeAndRecovery(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()
	stubs[1].failing.Store(true)
	// The failed query's registration landed on shard 0, so shard 1 now
	// carries missed-write debt as well as being down.
	if _, err := r.RecommendCtx(ctx, fx.Queries[0], core.WithK(5)); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("not excluded: %v", err)
	}

	// Ping refused → stays down.
	if up := r.Probe(ctx); len(up) != 0 {
		t.Fatalf("Probe re-included with ping refused: %v", up)
	}

	// Reachable again, but with missed writes and no proof of a re-seed:
	// the probe FAILS CLOSED (recording the observed epoch as baseline).
	stubs[1].failing.Store(false)
	stubs[1].pingOK.Store(true)
	if up := r.Probe(ctx); len(up) != 0 {
		t.Fatalf("Probe re-included a shard with missed writes and no re-seed proof: %v", up)
	}

	// The operator re-seeds the shardd directly (epoch changes): the next
	// probe can now PROVE the re-seed and re-includes it.
	stubs[1].epoch.Add(1)
	if up := r.Probe(ctx); !reflect.DeepEqual(up, []int{1}) {
		t.Fatalf("Probe = %v, want [1] after re-seed", up)
	}
	if down := r.Down(); len(down) != 0 {
		t.Fatalf("Down() = %v after recovery", down)
	}
	if _, err := r.RecommendCtx(ctx, fx.Queries[1], core.WithK(5)); err != nil {
		t.Fatalf("recovered recommend: %v", err)
	}
}

func TestRouterLazyProbeFromQueryPath(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()
	r.SetProbeInterval(time.Nanosecond) // every query may kick a probe
	r.SetProbeInterval(0)               // 0 restores the default...
	r.SetProbeInterval(time.Nanosecond) // ...and back for the test

	// Warm the deployment, then exclude shard 1 under WARM traffic only:
	// the healthy shard proves every registration was a no-op, so the
	// blip leaves no missed-write debt.
	if _, err := r.RecommendCtx(ctx, fx.Queries[1], core.WithK(5)); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	stubs[1].failing.Store(true)
	if _, err := r.RecommendCtx(ctx, fx.Queries[1], core.WithK(5)); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("not excluded: %v", err)
	}
	stubs[1].failing.Store(false)
	stubs[1].pingOK.Store(true)

	// The lazy probe is asynchronous; queries keep reporting degraded
	// until it lands, then the shard rejoins with no operator call (safe:
	// it missed nothing).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := r.RecommendCtx(ctx, fx.Queries[1], core.WithK(5))
		if err == nil {
			break
		}
		if !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("unexpected error while waiting for lazy probe: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("lazy probe never re-included the recovered shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRouterHandoffSnapshotReincludes(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()
	stubs[0].failing.Store(true)
	if _, err := r.ObserveBatch(ctx, fx.Obs[:8]); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("not excluded: %v", err)
	}

	// A refused handoff keeps the shard out and reports the failure.
	if err := r.HandoffSnapshot(ctx, fx.Snapshot); err == nil {
		t.Fatal("refused handoff reported success")
	}

	// An accepted handoff re-includes.
	stubs[0].failing.Store(false)
	if err := r.HandoffSnapshot(ctx, fx.Snapshot); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if down := r.Down(); len(down) != 0 {
		t.Fatalf("Down() = %v after handoff", down)
	}
	if stubs[0].handoffs.Load() < 2 || stubs[1].handoffs.Load() < 1 {
		t.Fatalf("handoff counts = %d/%d", stubs[0].handoffs.Load(), stubs[1].handoffs.Load())
	}
}

func TestRouterAllShardsDown(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()
	stubs[0].failing.Store(true)
	stubs[1].failing.Store(true)

	res, err := r.RecommendCtx(ctx, fx.Queries[0], core.WithK(5))
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Recommendations) != 0 {
		t.Fatalf("results from a fully-down deployment: %v", res.Recommendations)
	}
	if _, err := r.ObserveBatch(ctx, fx.Obs[:8]); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("observe err = %v", err)
	}
	if down := r.Down(); !reflect.DeepEqual(down, []int{0, 1}) {
		t.Fatalf("Down() = %v", down)
	}
}

func TestRouterSingleShardUnavailable(t *testing.T) {
	fx := fixture(t)
	e, err := core.LoadShardFrom(bytes.NewReader(fx.Snapshot), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	stub := &stubShard{inner: NewLocal(0, e)}
	r, err := NewRouter(stub)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.RecommendCtx(ctx, fx.Queries[0], core.WithK(5)); err != nil {
		t.Fatalf("healthy single: %v", err)
	}
	stub.failing.Store(true)
	if _, err := r.RecommendCtx(ctx, fx.Queries[1], core.WithK(5)); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v", err)
	}
	// Now excluded: the single-shard fast path refuses without calling.
	before := stub.calls.Load()
	if _, err := r.RecommendCtx(ctx, fx.Queries[2], core.WithK(5)); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if stub.calls.Load() != before {
		t.Fatal("excluded single shard still receives traffic")
	}
}

// TestRouterProbeRefusesStaleShard is the regression test for the
// stale-re-inclusion hole: a shard that stayed reachable AND trained
// through its exclusion window (a transient network fault — it never
// restarted) but missed replicated writes must NOT be re-included by a
// probe, because its index no longer matches its siblings'. Only a
// snapshot handoff (which changes its boot epoch) readmits it. A window
// with NO writes, by contrast, re-includes directly.
func TestRouterProbeRefusesStaleShard(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()
	stubs[0].pingOK.Store(true)
	stubs[1].pingOK.Store(true)
	// Baseline handoff: boots the fleet and records both boot epochs.
	if err := r.HandoffSnapshot(ctx, fx.Snapshot); err != nil {
		t.Fatal(err)
	}

	// Transient fault: shard 1 errors once but keeps running (same epoch),
	// and a batch lands on the healthy shard while it is out.
	stubs[1].failing.Store(true)
	if _, err := r.ObserveBatch(ctx, fx.Obs[:16]); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("not excluded: %v", err)
	}
	stubs[1].failing.Store(false) // blip over — shard reachable, trained, STALE

	if up := r.Probe(ctx); len(up) != 0 {
		t.Fatalf("Probe re-included a stale shard: %v", up)
	}
	if down := r.Down(); !reflect.DeepEqual(down, []int{1}) {
		t.Fatalf("Down() = %v, want [1]", down)
	}

	// Re-seed via handoff: epoch changes, shard rejoins.
	if err := r.HandoffSnapshot(ctx, fx.Snapshot); err != nil {
		t.Fatal(err)
	}
	if down := r.Down(); len(down) != 0 {
		t.Fatalf("Down() = %v after handoff", down)
	}

	// Conservative corner: a batch that failed on EVERY shard has an
	// unknowable outcome (a failed remote leg may still have applied
	// server-side), so debt is recorded for all of them and the probe
	// refuses until a re-seed — correctness over convenience.
	stubs[0].failing.Store(true)
	stubs[1].failing.Store(true)
	if _, err := r.ObserveBatch(ctx, fx.Obs[16:32]); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("not excluded: %v", err)
	}
	stubs[0].failing.Store(false)
	stubs[1].failing.Store(false)
	if up := r.Probe(ctx); len(up) != 0 {
		t.Fatalf("Probe = %v, want refusal (all-failed batch outcome is unknowable)", up)
	}
	if err := r.HandoffSnapshot(ctx, fx.Snapshot); err != nil {
		t.Fatal(err)
	}
	if down := r.Down(); len(down) != 0 {
		t.Fatalf("Down() = %v after re-seed", down)
	}
}

// TestRouterTrainedSkipsUnreachableShard: readiness must be answered by
// ANY reachable trained shard — an unreachable shard 0 (zero-valued
// stats, not yet excluded) must not make a booted deployment report
// ErrNotTrained and starve the exclusion machinery that only runs on
// the serving path (regression test).
func TestRouterTrainedSkipsUnreachableShard(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()
	stubs[0].failing.Store(true) // unreachable from the start, NOT marked down yet

	results, err := r.RecommendBatch(ctx, fx.Queries[:2], core.WithK(5))
	if errors.Is(err, core.ErrNotTrained) {
		t.Fatal("booted deployment misreported ErrNotTrained because shard 0 is unreachable")
	}
	if err != nil {
		t.Fatalf("call-level err = %v", err)
	}
	for i, res := range results {
		if !errors.Is(res.Err, ErrShardUnavailable) {
			t.Fatalf("item %d err = %v, want degraded partial", i, res.Err)
		}
	}
	if down := r.Down(); !reflect.DeepEqual(down, []int{0}) {
		t.Fatalf("Down() = %v, want [0] (serving path must exclude the unreachable shard)", down)
	}
}

// TestRouterWarmQueriesDoNotBlockRejoin is the regression test for debt
// over-accounting: querying ALREADY-REGISTERED items while a shard is
// excluded is a no-op on the replicated dictionaries (warm registration),
// so it must NOT pile missed-write debt on the excluded shard — a blip
// under ordinary read traffic heals with a probe, no snapshot handoff
// needed. Registering a genuinely NEW item, by contrast, does create
// debt and blocks re-inclusion until a re-seed.
func TestRouterWarmQueriesDoNotBlockRejoin(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()
	stubs[0].pingOK.Store(true)
	stubs[1].pingOK.Store(true)

	// Warm the deployment: register the probe item everywhere.
	if _, err := r.RecommendCtx(ctx, fx.Queries[0], core.WithK(3)); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	// Blip: shard 1 starts failing; WARM queries keep flowing.
	stubs[1].failing.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := r.RecommendCtx(ctx, fx.Queries[0], core.WithK(3)); !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("degraded warm query %d: %v", i, err)
		}
	}

	// Blip over: the shard missed nothing (all registrations were no-ops),
	// so the probe re-includes it with no epoch change and no handoff.
	stubs[1].failing.Store(false)
	if up := r.Probe(ctx); !reflect.DeepEqual(up, []int{1}) {
		t.Fatalf("Probe = %v, want [1] (warm queries must not create debt)", up)
	}
	if _, err := r.RecommendCtx(ctx, fx.Queries[0], core.WithK(3)); err != nil {
		t.Fatalf("recommend after warm-blip recovery: %v", err)
	}

	// Second blip, but this time a NEW item is registered while the shard
	// is out: now there IS debt, and the probe must refuse until a
	// re-seed changes the epoch.
	stubs[1].failing.Store(true)
	if _, err := r.RecommendCtx(ctx, fx.Queries[5], core.WithK(3)); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("degraded new-item query: %v", err)
	}
	stubs[1].failing.Store(false)
	if up := r.Probe(ctx); len(up) != 0 {
		t.Fatalf("Probe = %v, want refusal (new item registered during exclusion)", up)
	}
	stubs[1].epoch.Add(1) // operator re-seeds
	if up := r.Probe(ctx); !reflect.DeepEqual(up, []int{1}) {
		t.Fatalf("Probe = %v, want [1] after re-seed", up)
	}
}

// TestRouterFatalWriteLegRecordsDebt: a clean non-transport failure on a
// replication leg (4xx refusal, version skew) means that shard did NOT
// apply a batch its siblings did — it must be excluded with missed-write
// debt, not left serving silently behind (regression test).
func TestRouterFatalWriteLegRecordsDebt(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()
	stubs[1].pingOK.Store(true)
	stubs[1].fatal.Store(true)

	_, err := r.ObserveBatch(ctx, fx.Obs[:16])
	if err == nil || errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want the fatal leg error", err)
	}
	if down := r.Down(); !reflect.DeepEqual(down, []int{1}) {
		t.Fatalf("Down() = %v, want [1] (fatal leg must exclude)", down)
	}
	// Debt recorded: same-epoch probe refuses; re-seed readmits.
	stubs[1].fatal.Store(false)
	if up := r.Probe(ctx); len(up) != 0 {
		t.Fatalf("Probe = %v, want refusal (shard missed an applied batch)", up)
	}
	stubs[1].epoch.Add(1)
	if up := r.Probe(ctx); !reflect.DeepEqual(up, []int{1}) {
		t.Fatalf("Probe = %v, want [1] after re-seed", up)
	}
}

// TestRouterAllDownRecoversViaReadyProbe: when EVERY shard is excluded
// before the trained flag latches, the batch query path short-circuits in
// the readiness check — which must still kick the lazy probe, or a fully
// blipped fleet could never rejoin without operator action (regression
// test).
func TestRouterAllDownRecoversViaReadyProbe(t *testing.T) {
	fx := fixture(t)
	r, stubs := stubDeployment(t)
	ctx := context.Background()
	r.SetProbeInterval(time.Nanosecond)

	stubs[0].failing.Store(true)
	stubs[1].failing.Store(true)
	// First batch call: readiness pings fail, both shards excluded.
	if _, err := r.RecommendBatch(ctx, fx.Queries[:1], core.WithK(3)); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	if down := r.Down(); len(down) != 2 {
		t.Fatalf("Down() = %v, want both", down)
	}

	// Fleet comes back healthy (no writes landed anywhere → no debt).
	stubs[0].failing.Store(false)
	stubs[1].failing.Store(false)
	stubs[0].pingOK.Store(true)
	stubs[1].pingOK.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		results, err := r.RecommendBatch(ctx, fx.Queries[:1], core.WithK(3))
		if err == nil && results[0].Err == nil {
			break
		}
		if err != nil && !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("unexpected error while waiting for recovery: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("all-down fleet never recovered through the readiness probe")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
