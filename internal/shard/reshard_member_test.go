// reshard_member_test.go exercises the member-seeded half of the online
// split/merge protocol in-process: a real engine-backed member that is
// prepared, handed the watermark snapshot and caught up from the mirror
// ring — the same sequence the remote shardrpc suite drives over HTTP —
// plus the snapshot-export refusal paths that abort a reshard before any
// new fleet exists.
package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shardtest"
	"ssrec/internal/sigtree"
)

// gateShard is a reshard member backed by a real engine whose snapshot
// handoff parks until released: it pins a member-seeded migration in the
// seeding phase so the test can admit live writes that provably land in
// the mirror ring, then lets the migration finish and serves the flipped
// fleet from the seeded engine.
type gateShard struct {
	idx     int
	started chan struct{}
	release chan struct{}
	once    sync.Once

	mu    sync.Mutex
	part  model.Partition
	inner *Local
}

func (g *gateShard) Index() int { return g.idx }

func (g *gateShard) PrepareReshard(ctx context.Context, slot int, p model.Partition) error {
	if slot != g.idx {
		return fmt.Errorf("prepare for slot %d reached member %d", slot, g.idx)
	}
	g.mu.Lock()
	g.part = p
	g.mu.Unlock()
	return nil
}

func (g *gateShard) Handoff(ctx context.Context, snapshot []byte) error {
	g.once.Do(func() { close(g.started) })
	select {
	case <-g.release:
	case <-ctx.Done():
		return ctx.Err()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	e, err := core.LoadPartitionFrom(bytes.NewReader(snapshot), g.idx, g.part)
	if err != nil {
		return err
	}
	g.inner = NewLocal(g.idx, e)
	return nil
}

func (g *gateShard) local() (*Local, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inner == nil {
		return nil, fmt.Errorf("member %d serving before its handoff", g.idx)
	}
	return g.inner, nil
}

func (g *gateShard) RegisterItems(ctx context.Context, items []model.Item) (bool, error) {
	l, err := g.local()
	if err != nil {
		return false, err
	}
	return l.RegisterItems(ctx, items)
}

func (g *gateShard) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	l, err := g.local()
	if err != nil {
		return core.BatchReport{}, err
	}
	return l.ObserveBatch(ctx, batch)
}

func (g *gateShard) Recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error) {
	l, err := g.local()
	if err != nil {
		return core.Result{ItemID: v.ID}, err
	}
	return l.Recommend(ctx, v, o, b)
}

func (g *gateShard) Stats() Stats {
	l, err := g.local()
	if err != nil {
		return Stats{Shard: g.idx}
	}
	return l.Stats()
}

// TestReshardMemberSeedingMirrorsLiveWrites parks a member-seeded 1→2
// split in the seeding phase, admits an observation micro-batch AND a
// query batch carrying a never-seen item (the registration must be
// mirrored, not just the observations), then releases the members and
// requires the flipped fleet to answer bit-identically to a sequential
// reference that saw the same admitted stream.
func TestReshardMemberSeedingMirrorsLiveWrites(t *testing.T) {
	fx := fixture(t)
	r, err := FromSnapshot(fx.Snapshot, 1)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}

	release := make(chan struct{})
	members := []Shard{
		&gateShard{idx: 0, started: make(chan struct{}), release: release},
		&gateShard{idx: 1, started: make(chan struct{}), release: release},
	}
	ctx := context.Background()
	errCh := make(chan error, 1)
	go func() { errCh <- r.Reshard(ctx, 2, members...) }()
	<-members[0].(*gateShard).started

	// Parked mid-seeding: writes keep flowing on the old fleet and every
	// state-advancing batch — observations and the fresh registration —
	// must land in the mirror ring for the fleet being seeded.
	batch := fx.Obs[:shardtest.ReplayBatch]
	if _, err := r.ObserveBatch(ctx, batch); err != nil {
		t.Fatalf("observe during seeding: %v", err)
	}
	fresh := fx.Queries[0]
	fresh.ID = "reshard-fresh-item"
	fresh.Timestamp++
	liveRes, err := r.RecommendBatch(ctx, []model.Item{fresh}, core.WithK(shardtest.ReplayK))
	if err != nil {
		t.Fatalf("query during seeding: %v", err)
	}
	st := r.ReshardStatus()
	if !st.Active || st.Phase != ReshardPhaseSeeding {
		t.Fatalf("mid-seeding status %+v, want active seeding", st)
	}
	if st.RingDepth < 2 || st.MirroredBatches < 2 {
		t.Fatalf("ring depth %d, mirrored %d — want >= 2 each (one observe + one register)",
			st.RingDepth, st.MirroredBatches)
	}

	close(release)
	if err := <-errCh; err != nil {
		t.Fatalf("member-seeded reshard: %v", err)
	}
	if got := r.Shards(); got != 2 {
		t.Fatalf("post-reshard width %d, want 2", got)
	}
	if p := r.Partition(); p.Epoch != 1 || p.Shards != 2 {
		t.Fatalf("post-reshard partition %+v, want epoch 1 at 2 shards", p)
	}
	st = r.ReshardStatus()
	if st.Active || st.Phase != ReshardPhaseDone || st.Seeded != 2 || st.Completed != 1 {
		t.Fatalf("terminal status %+v, want idle done with 2 seeded and 1 completed", st)
	}

	// Exactness: a sequential reference replays the same admitted stream;
	// the query served DURING the migration and the queries served by the
	// flipped-in members must both match it bit-for-bit.
	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	if _, err := reference.ObserveBatch(ctx, batch); err != nil {
		t.Fatalf("reference observe: %v", err)
	}
	wantLive, err := reference.RecommendBatch(ctx, []model.Item{fresh}, core.WithK(shardtest.ReplayK))
	if err != nil {
		t.Fatalf("reference live query: %v", err)
	}
	qs := fx.Queries[:shardtest.ReplayQueryLen]
	want, err := reference.RecommendBatch(ctx, qs, core.WithK(shardtest.ReplayK))
	if err != nil {
		t.Fatalf("reference post-flip queries: %v", err)
	}
	got, err := r.RecommendBatch(ctx, qs, core.WithK(shardtest.ReplayK))
	if err != nil {
		t.Fatalf("post-flip queries: %v", err)
	}
	for i := range want {
		want[i].Stats = sigtree.SearchStats{}
		got[i].Stats = sigtree.SearchStats{}
	}
	for i := range wantLive {
		wantLive[i].Stats = sigtree.SearchStats{}
		liveRes[i].Stats = sigtree.SearchStats{}
	}
	if !reflect.DeepEqual(wantLive, liveRes) {
		t.Fatalf("query during migration diverged from reference:\n got %+v\nwant %+v", liveRes, wantLive)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("flipped fleet diverged from reference:\n got %+v\nwant %+v", got, want)
	}
}

// TestReshardSnapshotExportRefusal covers the abort-before-anything
// paths of the watermark export: a fleet whose only provider fails, a
// fleet with no provider at all, and a fleet whose provider is excluded
// must all refuse the reshard up front, leave the serving fleet
// untouched and record a terminal failed status.
func TestReshardSnapshotExportRefusal(t *testing.T) {
	fx := fixture(t)
	e, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot engine: %v", err)
	}
	ctx := context.Background()

	t.Run("provider error", func(t *testing.T) {
		stub := &stubShard{inner: NewLocal(0, e)}
		stub.failing.Store(true)
		r := newRouter([]Shard{stub, &noHandoffShard{idx: 1}}, nil)
		err := r.Reshard(ctx, 2)
		if err == nil || !strings.Contains(err.Error(), "snapshot export") {
			t.Fatalf("err = %v, want snapshot export failure", err)
		}
		st := r.ReshardStatus()
		if st.Active || st.Phase != ReshardPhaseFailed || st.Error == "" || st.Completed != 0 {
			t.Fatalf("terminal status %+v, want idle failed with error text", st)
		}
		if got := r.Shards(); got != 2 {
			t.Fatalf("refused reshard changed width to %d", got)
		}
	})

	t.Run("no provider", func(t *testing.T) {
		r := newRouter([]Shard{&noHandoffShard{idx: 0}}, nil)
		if err := r.Reshard(ctx, 2); !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("err = %v, want ErrShardUnavailable (no snapshot source)", err)
		}
	})

	t.Run("provider excluded", func(t *testing.T) {
		stub := &stubShard{inner: NewLocal(0, e)}
		r := newRouter([]Shard{stub}, nil)
		r.fl().down[0].Store(true)
		if err := r.Reshard(ctx, 2); !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("err = %v, want ErrShardUnavailable (source excluded)", err)
		}
	})
}
