// supervisor.go is the replica supervisor: a background loop that turns
// the manual OPERATIONS.md re-seed runbook into machinery. Each sweep it
// finds replicas that cannot rejoin on their own — blank (restarted,
// awaiting a snapshot) or stale (excluded with missed-write debt, which
// the fail-closed probe rules refuse to re-include) — and heals them by
// the cheapest safe mode. A stale replica that provably kept its state
// (unchanged boot epoch) and whose countable debt is small is healed by
// DELTA REPLAY: just the missed write batches stream to it from the
// set's in-memory tail ring. Everything else gets a snapshot: the sweep
// exports ONE from any healthy replica of any slot (a shard snapshot
// carries the full replicated state, so every slot boots from the same
// bytes) and hands it to each needy replica under the generation guard —
// and skips the export entirely when delta replay healed every needy
// replica. A final Router.Probe lets recovered slots rejoin the scatter
// set.
package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSupervisorInterval is the default sweep cadence.
const DefaultSupervisorInterval = 5 * time.Second

// supervisorOpTimeout bounds one snapshot export or handoff.
const supervisorOpTimeout = 30 * time.Second

// DefaultDeltaReplayMax is the largest missed-write debt (in batches)
// the supervisor heals by delta replay; beyond it a snapshot handoff is
// assumed cheaper than replaying the tail.
const DefaultDeltaReplayMax = 64

// SupervisorStats snapshots the supervisor's counters for /v2/stats.
type SupervisorStats struct {
	// Running reports whether the sweep loop is active.
	Running bool
	// Interval is the sweep cadence.
	Interval time.Duration
	// Cycles counts completed sweeps.
	Cycles uint64
	// Reseeds counts snapshots successfully handed to a replica.
	Reseeds uint64
	// ReseedFailures counts snapshot exports or handoffs that failed
	// (retried on the next sweep).
	ReseedFailures uint64
	// DeltaReseeds counts replicas healed by replaying just their missed
	// batches over the replay RPC instead of a snapshot handoff.
	DeltaReseeds uint64
	// DeltaReseedFailures counts delta replays that failed (the replica
	// falls back to the snapshot path the same sweep).
	DeltaReseedFailures uint64
	// SnapshotExports counts sweeps that sourced a snapshot — the
	// expensive step delta replay exists to avoid.
	SnapshotExports uint64
	// DeltaReplayMax is the debt threshold for delta reseeds.
	DeltaReplayMax int
	// LastError is the most recent failure, "" when the last sweep was
	// clean.
	LastError string
}

// Supervisor drives the auto-reseed sweeps of one Router.
type Supervisor struct {
	r        *Router
	interval time.Duration

	cycles        atomic.Uint64
	reseeds       atomic.Uint64
	failures      atomic.Uint64
	deltaReseeds  atomic.Uint64
	deltaFailures atomic.Uint64
	exports       atomic.Uint64
	deltaMax      atomic.Int64
	lastErr       atomic.Value // string

	running atomic.Bool
	stop    chan struct{}
	done    chan struct{}
	stopped sync.Once
}

// StartSupervisor attaches a supervisor to the router and starts its
// sweep loop; interval <= 0 uses DefaultSupervisorInterval. Stop the
// returned supervisor on shutdown.
func (r *Router) StartSupervisor(interval time.Duration) *Supervisor {
	s := NewSupervisor(r, interval)
	s.running.Store(true)
	go s.run()
	return s
}

// NewSupervisor builds a supervisor without starting its loop — tests
// drive Sweep directly for determinism.
func NewSupervisor(r *Router, interval time.Duration) *Supervisor {
	if interval <= 0 {
		interval = DefaultSupervisorInterval
	}
	s := &Supervisor{
		r:        r,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.lastErr.Store("")
	s.deltaMax.Store(DefaultDeltaReplayMax)
	r.supervisor.Store(s)
	return s
}

// SetDeltaReplayMax adjusts the largest missed-write debt healed by
// delta replay (n <= 0 disables delta reseeds).
func (s *Supervisor) SetDeltaReplayMax(n int) { s.deltaMax.Store(int64(n)) }

// Stop halts the sweep loop (idempotent; a no-op for a never-started
// supervisor once run exits).
func (s *Supervisor) Stop() {
	s.stopped.Do(func() { close(s.stop) })
	if s.running.Load() {
		<-s.done
		s.running.Store(false)
	}
}

func (s *Supervisor) run() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), supervisorOpTimeout)
			s.Sweep(ctx)
			cancel()
		}
	}
}

// Stats snapshots the supervisor counters.
func (s *Supervisor) Stats() SupervisorStats {
	return SupervisorStats{
		Running:             s.running.Load(),
		Interval:            s.interval,
		Cycles:              s.cycles.Load(),
		Reseeds:             s.reseeds.Load(),
		ReseedFailures:      s.failures.Load(),
		DeltaReseeds:        s.deltaReseeds.Load(),
		DeltaReseedFailures: s.deltaFailures.Load(),
		SnapshotExports:     s.exports.Load(),
		DeltaReplayMax:      int(s.deltaMax.Load()),
		LastError:           s.lastErr.Load().(string),
	}
}

// SupervisorStats exposes the attached supervisor's counters on the
// Router (ok == false when no supervisor was started).
func (r *Router) SupervisorStats() (SupervisorStats, bool) {
	s := r.supervisor.Load()
	if s == nil {
		return SupervisorStats{}, false
	}
	return s.Stats(), true
}

// reseedJob is one replica owed a snapshot, with its debt generations —
// replica-level AND router-level for its slot — captured BEFORE the
// snapshot export: debt recorded after the capture postdates the snapshot
// and must survive the reseed (the replica is retried next sweep with a
// fresher snapshot).
type reseedJob struct {
	rs        *ReplicaSet
	j         int
	sr        SnapshotReceiver
	gen       uint64
	routerGen uint64
}

// Sweep runs one supervision pass: probe excluded replicas back in where
// safe, reseed the ones that need a snapshot, then let recovered slots
// rejoin the Router. Exported so tests (and operators via a signal
// handler, if wired) can force a deterministic pass.
func (s *Supervisor) Sweep(ctx context.Context) {
	defer s.cycles.Add(1)
	// One fleet view per sweep: a reshard that flips mid-sweep retires
	// this fleet, and finishing the pass against the retired (intact)
	// state is harmless — the next sweep loads the new fleet.
	f := s.r.fl()
	var jobs []reseedJob
	for _, sh := range f.shards {
		rs, ok := sh.(*ReplicaSet)
		if !ok {
			continue
		}
		for j := range rs.replicas {
			if !rs.down[j].Load() {
				continue
			}
			sr, canSeed := rs.replicas[j].(SnapshotReceiver)
			if !canSeed {
				continue
			}
			// A plain probe first: a replica that merely reconnected with
			// no debt (or with a provable re-seed) rejoins without a
			// snapshot transfer.
			if ok, _ := rs.probeReplica(ctx, j); ok {
				rs.probes.success(j)
				continue
			}
			// Next cheapest: a stale replica that kept its state catches
			// up by replaying just the batches it missed. Only when that
			// is unsafe or fails does it join the snapshot jobs — so a
			// sweep where every needy replica delta-heals skips the
			// snapshot export entirely.
			if s.tryDeltaReplay(ctx, f, rs, j) {
				continue
			}
			jobs = append(jobs, reseedJob{rs: rs, j: j, sr: sr,
				gen: rs.debtGen[j].Load(), routerGen: f.debtGen[rs.idx].Load()})
		}
	}
	if len(jobs) > 0 {
		snapshot, err := s.sourceSnapshot(ctx, f)
		if err != nil {
			s.failures.Add(uint64(len(jobs)))
			s.lastErr.Store(fmt.Sprintf("snapshot export: %v", err))
			s.probeRouter(ctx, f)
			return
		}
		clean := true
		for _, job := range jobs {
			job.rs.reseeding[job.j].Store(true)
			err := job.sr.Handoff(ctx, snapshot)
			if err != nil {
				job.rs.reseeding[job.j].Store(false)
				job.rs.down[job.j].Store(true)
				s.failures.Add(1)
				s.lastErr.Store(fmt.Sprintf("slot %d replica %d: handoff: %v", job.rs.idx, job.j, err))
				clean = false
				continue
			}
			job.rs.resetApplied(job.j)
			job.rs.clearDebtIfUnchanged(job.j, job.gen)
			job.rs.down[job.j].Store(false)
			if p, ok := job.rs.replicas[job.j].(Pinger); ok {
				if epoch, perr := p.Ping(ctx); perr == nil {
					job.rs.recordEpoch(job.j, epoch)
				}
			}
			// Debt recorded since the capture postdates the snapshot: the
			// replica stays excluded and is reseeded again next sweep.
			if job.rs.missedWrite[job.j].Load() {
				job.rs.down[job.j].Store(true)
			}
			job.rs.reseeding[job.j].Store(false)
			job.rs.seedGen.Add(1)
			// The slot now holds a replica provably reseeded with state at
			// least as fresh as the capture — clear the slot's ROUTER-level
			// debt under the same generation guard, so probeRouter can
			// re-include it. Without this, a slot whose epoch baseline was
			// first observed after this reseed (the router could not ping
			// while every replica was down) could never prove the re-seed.
			f.clearDebtIfUnchanged(job.rs.idx, job.routerGen)
			s.reseeds.Add(1)
		}
		if clean {
			s.lastErr.Store("")
		}
	}
	s.probeRouter(ctx, f)
}

// tryDeltaReplay heals a stale replica by replaying just the write
// batches it missed, when that is provably safe: the replica must
// implement Replayer, answer a Ping with the SAME boot epoch the set
// recorded before excluding it (an unchanged epoch proves the state the
// debt was counted against is still there — a blank or restarted
// replica fails this and needs a snapshot), and its countable debt must
// be within the delta threshold and still covered by the set's tail
// ring. Success clears debt under the usual generation guards and bumps
// the reseed generation, exactly like a snapshot handoff; failure
// records a delta failure and falls back to the snapshot path this same
// sweep.
func (s *Supervisor) tryDeltaReplay(ctx context.Context, f *fleet, rs *ReplicaSet, j int) bool {
	max := s.deltaMax.Load()
	if max <= 0 || !rs.missedWrite[j].Load() {
		return false
	}
	rp, canReplay := rs.replicas[j].(Replayer)
	p, canPing := rs.replicas[j].(Pinger)
	if !canReplay || !canPing {
		return false
	}
	gen := rs.debtGen[j].Load()
	routerGen := f.debtGen[rs.idx].Load()
	epoch, err := p.Ping(ctx)
	if err != nil || epoch == "" {
		return false
	}
	if known := rs.knownEpoch(j); known == "" || epoch != known {
		return false
	}
	ap, cur := rs.applied[j].Load(), rs.wseq.Load()
	if ap == 0 || cur <= ap || cur-ap > uint64(max) {
		return false
	}
	batches, ok := rs.deltaTail(ap, cur)
	if !ok {
		return false
	}
	rs.reseeding[j].Store(true)
	if err := rp.Replay(ctx, batches); err != nil {
		rs.reseeding[j].Store(false)
		rs.down[j].Store(true)
		s.deltaFailures.Add(1)
		s.lastErr.Store(fmt.Sprintf("slot %d replica %d: delta replay: %v", rs.idx, j, err))
		return false
	}
	rs.noteApplied(j, batches[len(batches)-1].Seq)
	rs.clearDebtIfUnchanged(j, gen)
	rs.down[j].Store(false)
	// The replay minted a fresh boot epoch on the replica — record it so
	// the fail-closed probe rules see the proof-of-reseed signal.
	if epoch2, perr := p.Ping(ctx); perr == nil {
		rs.recordEpoch(j, epoch2)
	}
	// Debt recorded since the capture postdates the replayed tail: the
	// replica stays excluded and catches up again next sweep.
	if rs.missedWrite[j].Load() {
		rs.down[j].Store(true)
	}
	rs.reseeding[j].Store(false)
	rs.seedGen.Add(1)
	f.clearDebtIfUnchanged(rs.idx, routerGen)
	s.deltaReseeds.Add(1)
	return true
}

// probeRouter lets slots whose replicas recovered rejoin the scatter set.
func (s *Supervisor) probeRouter(ctx context.Context, f *fleet) {
	for i := range f.down {
		if f.down[i].Load() {
			s.r.Probe(ctx)
			return
		}
	}
}

// sourceSnapshot exports one snapshot from any healthy provider — a
// shard snapshot carries the full replicated state, so one export seeds
// every needy replica of every slot this sweep.
func (s *Supervisor) sourceSnapshot(ctx context.Context, f *fleet) ([]byte, error) {
	var firstErr error
	for i, sh := range f.shards {
		sp, ok := sh.(SnapshotProvider)
		if !ok {
			continue
		}
		if _, isSet := sh.(*ReplicaSet); !isSet {
			// A plain shard must be healthy and debt-free to be a source;
			// a ReplicaSet picks its own healthy replica internally.
			if f.down[i].Load() || f.missedWrite[i].Load() {
				continue
			}
		}
		data, err := sp.Snapshot(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.exports.Add(1)
		return data, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, fmt.Errorf("%w: no healthy snapshot source in deployment", ErrShardUnavailable)
}
