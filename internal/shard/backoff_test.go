// backoff_test.go pins the probe pacing schedule with a fake clock: the
// per-index interval doubles on failure up to ProbeBackoffCap, jitter
// keeps failing indices from herding onto the same instant, success
// rewinds to the base, and claimDue claims each due index exactly once
// per interval.
package shard

import (
	"testing"
	"time"
)

// fakeClock drives a probeSchedule deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func withFakeClock(ps *probeSchedule) *fakeClock { c := newFakeClock(); ps.now = c.now; return c }

func TestBackoffDoublesToCapAndResets(t *testing.T) {
	ps := newProbeSchedule(1, time.Second)
	withFakeClock(ps)

	want := []time.Duration{
		2 * time.Second, 4 * time.Second, 8 * time.Second,
		16 * time.Second, 30 * time.Second, 30 * time.Second, // capped
	}
	for k, w := range want {
		ps.failure(0)
		if got := ps.interval(0); got != w {
			t.Fatalf("after %d failures: interval = %v, want %v", k+1, got, w)
		}
	}

	ps.success(0)
	if got := ps.interval(0); got != time.Second {
		t.Fatalf("after success: interval = %v, want base 1s", got)
	}
	if due := ps.claimDue([]int{0}); len(due) != 1 {
		t.Fatalf("after success the index must be due immediately, claimDue = %v", due)
	}
}

func TestBackoffJitterStaysInWindow(t *testing.T) {
	ps := newProbeSchedule(1, time.Second)
	clk := withFakeClock(ps)

	for k := 0; k < 20; k++ {
		before := clk.t
		ps.failure(0)
		w := ps.interval(0)
		// The next probe must land in [w/2, 3w/2) after the failure.
		lo, hi := before.Add(w/2), before.Add(w+w/2)
		next := ps.next[0]
		if next.Before(lo) || !next.Before(hi) {
			t.Fatalf("failure %d: next probe at +%v, want within [%v, %v)",
				k, next.Sub(before), w/2, w+w/2)
		}
		clk.t = next // jump to the probe instant for the next round
	}
}

func TestBackoffClaimDueClaimsOncePerInterval(t *testing.T) {
	ps := newProbeSchedule(3, time.Second)
	clk := withFakeClock(ps)

	// Everything starts due (zero next).
	if due := ps.claimDue([]int{0, 1, 2}); len(due) != 3 {
		t.Fatalf("initial claimDue = %v, want all three", due)
	}
	// Claimed: a second kick inside the interval gets nothing.
	if due := ps.claimDue([]int{0, 1, 2}); len(due) != 0 {
		t.Fatalf("re-claim inside interval = %v, want none", due)
	}
	clk.advance(time.Second)
	if due := ps.claimDue([]int{0, 1, 2}); len(due) != 3 {
		t.Fatalf("claim after interval = %v, want all three", due)
	}
}

func TestBackoffFailuresDesynchronize(t *testing.T) {
	// Two indices failing in lockstep must not stay scheduled at the same
	// instant — the jitter exists to break up the herd.
	ps := newProbeSchedule(2, time.Second)
	withFakeClock(ps)
	same := 0
	for k := 0; k < 8; k++ {
		ps.failure(0)
		ps.failure(1)
		if ps.next[0].Equal(ps.next[1]) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("8/8 failure rounds scheduled both indices at the same instant; jitter is not applied")
	}
}

func TestBackoffSetBaseRewindsEverything(t *testing.T) {
	ps := newProbeSchedule(2, time.Second)
	withFakeClock(ps)
	ps.failure(0)
	ps.failure(0)
	ps.setBase(50 * time.Millisecond)
	if got := ps.interval(0); got != 50*time.Millisecond {
		t.Fatalf("setBase: interval = %v, want 50ms", got)
	}
	if due := ps.claimDue([]int{0, 1}); len(due) != 2 {
		t.Fatalf("setBase must make every index due, claimDue = %v", due)
	}
}
