// backoff.go paces the re-probe of excluded shards and replicas: one
// exponential-backoff-with-jitter schedule per index, replacing the old
// fixed-interval global throttle. A fleet-wide blip no longer produces a
// thundering herd of synchronized probes every 3 seconds — each failing
// endpoint's probe interval doubles (with jitter, so recovered fleets do
// not re-probe in lockstep) up to ProbeBackoffCap, and the first success
// resets it to the base interval.
package shard

import (
	"math/rand"
	"sync"
	"time"
)

// ProbeBackoffCap bounds the per-shard probe backoff: a shard that has
// been failing for hours is still re-probed at least this often.
const ProbeBackoffCap = 30 * time.Second

// probeSchedule is the per-index probe pacing state. All methods are
// safe for concurrent use; the clock is injectable for deterministic
// schedule tests.
type probeSchedule struct {
	mu   sync.Mutex
	base time.Duration
	cap  time.Duration
	now  func() time.Time
	rng  *rand.Rand
	wait []time.Duration // current backoff interval per index
	next []time.Time     // earliest next probe per index (zero = due now)
}

func newProbeSchedule(n int, base time.Duration) *probeSchedule {
	if base <= 0 {
		base = DefaultProbeInterval
	}
	c := ProbeBackoffCap
	if base > c {
		c = base
	}
	ps := &probeSchedule{
		base: base,
		cap:  c,
		now:  time.Now,
		rng:  rand.New(rand.NewSource(1)), // jitter decorrelates, it need not be unpredictable
		wait: make([]time.Duration, n),
		next: make([]time.Time, n),
	}
	for i := range ps.wait {
		ps.wait[i] = base
	}
	return ps
}

// setBase resets the whole schedule to a new base interval: every index
// becomes due immediately with its backoff rewound — the behavior
// SetProbeInterval always had.
func (ps *probeSchedule) setBase(d time.Duration) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.base = d
	ps.cap = ProbeBackoffCap
	if d > ps.cap {
		ps.cap = d
	}
	for i := range ps.wait {
		ps.wait[i] = d
		ps.next[i] = time.Time{}
	}
}

// claimDue filters idx down to the indices whose probe is due and claims
// them: a claimed index is not due again until its current interval
// elapses (or failure/success reschedules it), so concurrent query-path
// kicks cannot stack probes on the same shard.
func (ps *probeSchedule) claimDue(idx []int) []int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	now := ps.now()
	var due []int
	for _, i := range idx {
		if ps.next[i].After(now) {
			continue
		}
		ps.next[i] = now.Add(ps.wait[i])
		due = append(due, i)
	}
	return due
}

// failure backs off index i: the interval doubles (capped) and the next
// probe lands at a jittered point in [w/2, 3w/2) so recovering shards
// spread their probes instead of herding.
func (ps *probeSchedule) failure(i int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	w := ps.wait[i] * 2
	if w > ps.cap {
		w = ps.cap
	}
	if w < ps.base {
		w = ps.base
	}
	ps.wait[i] = w
	jittered := w/2 + time.Duration(ps.rng.Int63n(int64(w)+1))
	ps.next[i] = ps.now().Add(jittered)
}

// success resets index i to the base interval, due immediately — a shard
// that just answered a probe is re-checked promptly if it fails again.
func (ps *probeSchedule) success(i int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.wait[i] = ps.base
	ps.next[i] = time.Time{}
}

// baseInterval reports the schedule's base probe interval — carried
// over to the replacement fleet's schedule when a reshard flips.
func (ps *probeSchedule) baseInterval() time.Duration {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.base
}

// interval reports index i's current backoff interval (tests, stats).
func (ps *probeSchedule) interval(i int) time.Duration {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.wait[i]
}
