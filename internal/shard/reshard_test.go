// reshard_test.go is the online-resharding acceptance suite — the
// headline gate of the live split/merge machinery. The conformance test
// replays the shared seeded stream while a 2→4 split and a 4→2 merge run
// LIVE at seeded mid-stream batch boundaries, and requires the transcript
// to stay bit-identical to the static single-engine reference: resharding
// must be invisible in results, reports and errors. The hammer test runs
// concurrent writes and reads through both reshards under -race and then
// proves the final state exact against a sequential reference; the cancel
// test aborts a migration mid-seeding and checks the old fleet is
// undisturbed and no goroutines leak.
package shard

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shardtest"
	"ssrec/internal/sigtree"
)

// TestReshardConformanceSplitMerge is the acceptance gate: the full
// seeded stream replays through a deployment that starts 2-way, splits
// to 4 shards at a seeded mid-stream batch boundary and merges back to 2
// at a later one — both migrations overlapping live traffic — and the
// transcript must be bit-identical to the single reference engine. The
// reshard is kicked off by a replay hook and joined a few batches later,
// so observation batches and query windows provably interleave with the
// snapshot/catch-up/flip sequence.
func TestReshardConformanceSplitMerge(t *testing.T) {
	fx := fixture(t)
	maxBatches := 0
	totalBatches := (len(fx.Obs) + shardtest.ReplayBatch - 1) / shardtest.ReplayBatch
	joinAfter := 6
	if testing.Short() {
		maxBatches = 16
		totalBatches = 16
		joinAfter = 3
	}

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, maxBatches)

	r, err := FromSnapshot(fx.Snapshot, 2)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}

	// Seeded, not hand-picked: the boundaries move with the seed but are
	// reproducible run to run.
	rng := rand.New(rand.NewSource(23))
	splitAt := 1 + rng.Intn(totalBatches/3)
	splitJoin := splitAt + joinAfter
	mergeAt := splitJoin + 1 + rng.Intn(totalBatches/3)
	mergeJoin := mergeAt + joinAfter
	if mergeJoin >= totalBatches {
		t.Fatalf("schedule overflow: mergeJoin %d of %d batches", mergeJoin, totalBatches)
	}
	t.Logf("splitting 2→4 before batch %d (join %d), merging 4→2 before batch %d (join %d), of %d batches",
		splitAt, splitJoin, mergeAt, mergeJoin, totalBatches)

	ctx := context.Background()
	var splitErr, mergeErr error
	splitDone := make(chan struct{})
	mergeDone := make(chan struct{})
	hooks := map[int]func(int){
		splitAt: func(int) {
			go func() { defer close(splitDone); splitErr = r.Reshard(ctx, 4) }()
		},
		splitJoin: func(int) {
			<-splitDone
			if splitErr != nil {
				t.Fatalf("split: %v", splitErr)
			}
			if got := r.Shards(); got != 4 {
				t.Fatalf("post-split width %d, want 4", got)
			}
			if p := r.Partition(); p.Epoch != 1 {
				t.Fatalf("post-split partition epoch %d, want 1", p.Epoch)
			}
			st := r.ReshardStatus()
			t.Logf("split complete: %d batches mirrored during migration", st.MirroredBatches)
		},
		mergeAt: func(int) {
			go func() { defer close(mergeDone); mergeErr = r.Reshard(ctx, 2) }()
		},
		mergeJoin: func(int) {
			<-mergeDone
			if mergeErr != nil {
				t.Fatalf("merge: %v", mergeErr)
			}
			if got := r.Shards(); got != 2 {
				t.Fatalf("post-merge width %d, want 2", got)
			}
		},
	}

	got := fx.ReplayWithHooks(t, r, shardtest.ReplayBatch, maxBatches, hooks)
	shardtest.Diff(t, want, got, "live split+merge")

	// Post-reshard invariants: two epochs advanced, the ownership rule
	// agrees exactly with the legacy modular rule at the final width, and
	// the owned-user partition is still exact.
	if p := r.Partition(); p.Epoch != 2 || p.Shards != 2 {
		t.Fatalf("final partition %+v, want epoch 2 at 2 shards", p)
	}
	st := r.ReshardStatus()
	if st.Active || st.Phase != ReshardPhaseDone || st.Completed != 2 {
		t.Fatalf("final reshard status %+v, want idle done with 2 completed", st)
	}
	for _, id := range []string{"uc0001", "uc0042", "anyone"} {
		if r.Owner(id) != model.ShardOf(id, 2) {
			t.Errorf("post-reshard owner of %q diverges from ShardOf", id)
		}
	}
	stats := r.ShardStats()
	owned := 0
	for _, s := range stats {
		owned += s.OwnedUsers
	}
	if refStats, ok := reference.IndexStats(); ok && owned != refStats.Users {
		t.Errorf("post-reshard owned users sum to %d, want %d (exact partition)", owned, refStats.Users)
	}
}

// TestReshardConcurrentHammer drives concurrent ObserveBatch and
// RecommendBatch traffic through a live 2→4 split AND a 4→2 merge (run
// under -race in CI). No call may error, and after the dust settles the
// router's state must be EXACTLY the state of a sequential reference
// engine that applied the same write prefix — two full migrations under
// concurrent load lose nothing and reorder nothing for a sequential
// writer.
func TestReshardConcurrentHammer(t *testing.T) {
	fx := fixture(t)
	capBatches := 30
	if testing.Short() {
		capBatches = 8
	}

	r, err := FromSnapshot(fx.Snapshot, 2)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	ctx := context.Background()

	// Pre-register the reader query set on the router so the readers'
	// registrations are warm no-ops from here on — order-independent, so
	// the final state stays comparable to a sequential reference.
	qs := fx.Queries[:shardtest.ReplayQueryLen]
	if _, err := r.RecommendBatch(ctx, qs, core.WithK(shardtest.ReplayK)); err != nil {
		t.Fatalf("pre-register queries: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	record := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, &err)
		}
	}

	applied := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < capBatches; i++ {
			select {
			case <-stop:
				return
			default:
			}
			lo := i * shardtest.ReplayBatch
			if lo >= len(fx.Obs) {
				return
			}
			hi := min(lo+shardtest.ReplayBatch, len(fx.Obs))
			if _, err := r.ObserveBatch(ctx, fx.Obs[lo:hi]); err != nil {
				record(err)
				return
			}
			applied = i + 1
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.RecommendBatch(ctx, qs, core.WithK(shardtest.ReplayK)); err != nil {
					record(err)
					return
				}
			}
		}()
	}

	if err := r.Reshard(ctx, 4); err != nil {
		t.Errorf("split under load: %v", err)
	}
	if err := r.Reshard(ctx, 2); err != nil {
		t.Errorf("merge under load: %v", err)
	}
	close(stop)
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		t.Fatalf("traffic errored during migration: %v", *ep)
	}
	if got := r.Shards(); got != 2 {
		t.Fatalf("final width %d, want 2", got)
	}

	// Exactness: a sequential reference applying the same prefix must
	// answer the same ranked results as the twice-resharded deployment.
	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	if _, err := reference.RecommendBatch(ctx, qs, core.WithK(shardtest.ReplayK)); err != nil {
		t.Fatalf("pre-register reference queries: %v", err)
	}
	for i := 0; i < applied; i++ {
		lo := i * shardtest.ReplayBatch
		hi := min(lo+shardtest.ReplayBatch, len(fx.Obs))
		if _, err := reference.ObserveBatch(ctx, fx.Obs[lo:hi]); err != nil {
			t.Fatalf("reference batch %d: %v", i, err)
		}
	}
	wantRes, err := reference.RecommendBatch(ctx, qs, core.WithK(shardtest.ReplayK))
	if err != nil {
		t.Fatalf("reference recommend: %v", err)
	}
	gotRes, err := r.RecommendBatch(ctx, qs, core.WithK(shardtest.ReplayK))
	if err != nil {
		t.Fatalf("router recommend: %v", err)
	}
	for i := range wantRes {
		wantRes[i].Stats = sigtree.SearchStats{}
		gotRes[i].Stats = sigtree.SearchStats{}
	}
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Fatalf("post-hammer state diverged from sequential reference (%d batches applied):\n got %+v\nwant %+v",
			applied, gotRes, wantRes)
	}
}

// stallShard is a reshard member whose snapshot handoff blocks until its
// context is cancelled — it parks a migration in the seeding phase so
// tests can observe and abort it deterministically.
type stallShard struct {
	idx       int
	started   chan struct{}
	startOnce sync.Once
}

func (s *stallShard) Index() int { return s.idx }
func (s *stallShard) RegisterItems(ctx context.Context, items []model.Item) (bool, error) {
	return false, nil
}
func (s *stallShard) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	return core.BatchReport{}, nil
}
func (s *stallShard) Recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error) {
	return core.Result{ItemID: v.ID}, nil
}
func (s *stallShard) Stats() Stats { return Stats{Shard: s.idx} }
func (s *stallShard) Handoff(ctx context.Context, snapshot []byte) error {
	s.startOnce.Do(func() { close(s.started) })
	<-ctx.Done()
	return ctx.Err()
}

// noHandoffShard is a Shard WITHOUT the SnapshotReceiver extension — it
// must be rejected as a reshard member up front.
type noHandoffShard struct{ idx int }

func (s *noHandoffShard) Index() int { return s.idx }
func (s *noHandoffShard) RegisterItems(ctx context.Context, items []model.Item) (bool, error) {
	return false, nil
}
func (s *noHandoffShard) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	return core.BatchReport{}, nil
}
func (s *noHandoffShard) Recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error) {
	return core.Result{ItemID: v.ID}, nil
}
func (s *noHandoffShard) Stats() Stats { return Stats{Shard: s.idx} }

// TestReshardCancelNoLeakNoDisruption cancels a migration parked in
// seeding and requires: the old fleet was never disturbed (same width,
// writes that flowed during the doomed migration are in its state), a
// concurrent reshard was refused while the first was active, a follow-up
// reshard succeeds and carries those writes, and the aborted migration
// leaked no goroutines.
func TestReshardCancelNoLeakNoDisruption(t *testing.T) {
	fx := fixture(t)
	r, err := FromSnapshot(fx.Snapshot, 1)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	members := []Shard{
		&stallShard{idx: 0, started: make(chan struct{})},
		&stallShard{idx: 1, started: make(chan struct{})},
	}
	errCh := make(chan error, 1)
	go func() { errCh <- r.Reshard(ctx, 2, members...) }()
	<-members[0].(*stallShard).started

	// The migration is parked mid-seeding: status must say so, a second
	// reshard must be refused, and writes must keep flowing on the old
	// fleet (they land in the mirror ring for the doomed new fleet, which
	// simply gets discarded).
	if st := r.ReshardStatus(); !st.Active || st.Phase != ReshardPhaseSeeding {
		t.Fatalf("mid-seeding status %+v, want active seeding", st)
	}
	if err := r.Reshard(context.Background(), 3); !errors.Is(err, ErrReshardInProgress) {
		t.Fatalf("concurrent reshard: err = %v, want ErrReshardInProgress", err)
	}
	batch := fx.Obs[:shardtest.ReplayBatch]
	if _, err := r.ObserveBatch(context.Background(), batch); err != nil {
		t.Fatalf("write during migration: %v", err)
	}

	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled reshard returned %v, want context.Canceled", err)
	}
	if st := r.ReshardStatus(); st.Active || st.Phase != ReshardPhaseCancelled {
		t.Fatalf("post-cancel status %+v, want idle cancelled", st)
	}
	if got := r.Shards(); got != 1 {
		t.Fatalf("old fleet width %d after cancel, want 1 (undisturbed)", got)
	}

	// Recovery: a fresh in-process reshard must succeed and carry the
	// write admitted during the aborted migration — proven against a
	// sequential reference.
	if err := r.Reshard(context.Background(), 2); err != nil {
		t.Fatalf("reshard after cancel: %v", err)
	}
	if got := r.Shards(); got != 2 {
		t.Fatalf("width %d after recovery reshard, want 2", got)
	}
	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	if _, err := reference.ObserveBatch(context.Background(), batch); err != nil {
		t.Fatalf("reference batch: %v", err)
	}
	qs := fx.Queries[:shardtest.ReplayQueryLen]
	wantRes, err := reference.RecommendBatch(context.Background(), qs, core.WithK(shardtest.ReplayK))
	if err != nil {
		t.Fatalf("reference recommend: %v", err)
	}
	gotRes, err := r.RecommendBatch(context.Background(), qs, core.WithK(shardtest.ReplayK))
	if err != nil {
		t.Fatalf("router recommend: %v", err)
	}
	for i := range wantRes {
		wantRes[i].Stats = sigtree.SearchStats{}
		gotRes[i].Stats = sigtree.SearchStats{}
	}
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Fatalf("state after cancel+recovery diverged from reference:\n got %+v\nwant %+v", gotRes, wantRes)
	}

	// Goroutine hygiene: the aborted migration must wind down completely.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked by cancelled reshard: %d before, %d after", before, n)
	}
}

// TestReshardValidation covers the refuse-up-front paths: a bad width,
// a member-count mismatch, a member in the wrong slot and a member that
// cannot receive a snapshot must all fail before any migration state is
// created.
func TestReshardValidation(t *testing.T) {
	fx := fixture(t)
	r, err := FromSnapshot(fx.Snapshot, 1)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	ctx := context.Background()
	cases := []struct {
		name string
		call func() error
	}{
		{"zero width", func() error { return r.Reshard(ctx, 0) }},
		{"member count mismatch", func() error {
			return r.Reshard(ctx, 2, &stallShard{idx: 0, started: make(chan struct{})})
		}},
		{"member slot mismatch", func() error {
			return r.Reshard(ctx, 2,
				&stallShard{idx: 1, started: make(chan struct{})},
				&stallShard{idx: 0, started: make(chan struct{})})
		}},
		{"member without handoff", func() error {
			return r.Reshard(ctx, 2,
				&stallShard{idx: 0, started: make(chan struct{})},
				&noHandoffShard{idx: 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.call(); err == nil {
				t.Fatal("want error, got nil")
			}
			if st := r.ReshardStatus(); st.Active {
				t.Fatalf("refused reshard left active state: %+v", st)
			}
			if got := r.Shards(); got != 1 {
				t.Fatalf("refused reshard changed width to %d", got)
			}
		})
	}
}
