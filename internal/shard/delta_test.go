// delta_test.go unit-tests the supervisor's delta-replay reseed mode over
// stub replicas: a stale replica with small countable debt and an
// unchanged boot epoch is healed by replaying just its missed batches
// (no snapshot export at all), debt above the threshold or a failed
// replay falls back to the snapshot path, and the counters /v2/stats
// surfaces move accordingly.
package shard

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssrec/internal/core"
)

// replayStub is a stubShard that also implements Replayer, recording the
// sequences it was asked to catch up on. A successful replay bumps the
// stub epoch — the proof-of-reseed signal the RPC handler mints.
type replayStub struct {
	*stubShard
	failReplay atomic.Bool
	replays    atomic.Int64

	mu           sync.Mutex
	replayedSeqs []uint64
}

func (s *replayStub) Replay(ctx context.Context, batches []ReplayBatch) error {
	if s.failReplay.Load() || s.failing.Load() {
		return errors.Join(ErrShardUnavailable, errors.New("stub replay refused"))
	}
	for _, b := range batches {
		if len(b.Items) > 0 {
			if _, err := s.inner.RegisterItems(ctx, b.Items); err != nil {
				return err
			}
		}
		if len(b.Obs) > 0 {
			if _, err := s.inner.ObserveBatch(ctx, b.Obs); err != nil {
				return err
			}
		}
		s.mu.Lock()
		s.replayedSeqs = append(s.replayedSeqs, b.Seq)
		s.mu.Unlock()
	}
	s.replays.Add(1)
	s.epoch.Add(1)
	return nil
}

func (s *replayStub) seqs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.replayedSeqs...)
}

// replayDeployment mirrors replicaDeployment with replay-capable stubs.
func replayDeployment(t *testing.T) (*Router, [][]*replayStub) {
	t.Helper()
	fx := fixture(t)
	const slots, reps = 2, 2
	stubs := make([][]*replayStub, slots)
	shards := make([]Shard, slots)
	for i := 0; i < slots; i++ {
		stubs[i] = make([]*replayStub, reps)
		members := make([]Shard, reps)
		for j := 0; j < reps; j++ {
			e, err := core.LoadShardFrom(bytes.NewReader(fx.Snapshot), i, slots)
			if err != nil {
				t.Fatalf("boot slot %d replica %d: %v", i, j, err)
			}
			stubs[i][j] = &replayStub{stubShard: &stubShard{inner: NewLocal(i, e)}}
			stubs[i][j].pingOK.Store(true)
			members[j] = stubs[i][j]
		}
		rs, err := NewReplicaSet(i, members...)
		if err != nil {
			t.Fatalf("replica set %d: %v", i, err)
		}
		shards[i] = rs
	}
	r, err := NewRouter(shards...)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	return r, stubs
}

// wedgeDebt makes replica [0][1] miss nBatches write batches (its state
// and epoch intact) and returns after restoring it to reachable-but-stale.
func wedgeDebt(t *testing.T, r *Router, stubs [][]*replayStub, nBatches int) {
	t.Helper()
	fx := fixture(t)
	ctx := context.Background()
	// One healthy write first, so the set has an applied baseline for the
	// stale replica (delta replay refuses an unknown baseline).
	if _, err := r.ObserveBatch(ctx, fx.Obs[:64]); err != nil {
		t.Fatalf("baseline write: %v", err)
	}
	stubs[0][1].failing.Store(true)
	for i := 0; i < nBatches; i++ {
		lo := 64 * (i + 1)
		if _, err := r.ObserveBatch(ctx, fx.Obs[lo:lo+64]); err != nil {
			t.Fatalf("missed write %d: %v", i, err)
		}
	}
	stubs[0][1].failing.Store(false)
}

// TestSupervisorDeltaReplayHealsSmallDebt: small countable debt with the
// boot epoch unchanged is healed by streaming exactly the missed batch
// sequences — no snapshot export, no snapshot handoff.
func TestSupervisorDeltaReplayHealsSmallDebt(t *testing.T) {
	ctx := context.Background()
	r, stubs := replayDeployment(t)
	rs := slotSet(t, r, 0)
	wedgeDebt(t, r, stubs, 2)

	sup := NewSupervisor(r, time.Hour)
	sup.Sweep(ctx)

	if rs.down[1].Load() || rs.missedWrite[1].Load() {
		t.Fatalf("stale replica not healed: down=%v debt=%v", rs.down[1].Load(), rs.missedWrite[1].Load())
	}
	st := sup.Stats()
	if st.DeltaReseeds != 1 || st.DeltaReseedFailures != 0 {
		t.Fatalf("stats = %+v, want exactly one clean delta reseed", st)
	}
	if st.Reseeds != 0 || st.SnapshotExports != 0 {
		t.Fatalf("stats = %+v, want zero snapshot reseeds/exports when delta replay heals everything", st)
	}
	if got := stubs[0][1].replays.Load(); got != 1 {
		t.Fatalf("replica saw %d replay calls, want 1", got)
	}
	if got := stubs[0][1].seqs(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("replayed sequences = %v, want [2 3] (exactly the missed batches)", got)
	}
	if got := stubs[0][1].handoffs.Load(); got != 0 {
		t.Fatalf("delta-healed replica received %d snapshot handoffs, want 0", got)
	}
	if ap, cur := rs.applied[1].Load(), rs.wseq.Load(); ap != cur {
		t.Fatalf("applied watermark %d after replay, want %d", ap, cur)
	}
}

// TestSupervisorDeltaReplayRespectsThreshold: debt above DeltaReplayMax
// is not delta-healed — the sweep falls back to a snapshot handoff and
// the applied watermark resets to unknown (snapshot coverage is
// unknowable).
func TestSupervisorDeltaReplayRespectsThreshold(t *testing.T) {
	ctx := context.Background()
	r, stubs := replayDeployment(t)
	rs := slotSet(t, r, 0)
	wedgeDebt(t, r, stubs, 2)

	sup := NewSupervisor(r, time.Hour)
	sup.SetDeltaReplayMax(1) // debt is 2
	sup.Sweep(ctx)

	if rs.down[1].Load() || rs.missedWrite[1].Load() {
		t.Fatalf("stale replica not healed: down=%v debt=%v", rs.down[1].Load(), rs.missedWrite[1].Load())
	}
	st := sup.Stats()
	if st.DeltaReseeds != 0 {
		t.Fatalf("stats = %+v, want zero delta reseeds above the threshold", st)
	}
	if st.Reseeds != 1 || st.SnapshotExports != 1 {
		t.Fatalf("stats = %+v, want one snapshot reseed from one export", st)
	}
	if got := stubs[0][1].replays.Load(); got != 0 {
		t.Fatalf("replica saw %d replay calls, want 0", got)
	}
	if got := stubs[0][1].handoffs.Load(); got == 0 {
		t.Fatal("replica above the delta threshold never received a snapshot")
	}
	if ap := rs.applied[1].Load(); ap != 0 {
		t.Fatalf("applied watermark %d after snapshot reseed, want 0 (unknown)", ap)
	}
}

// TestSupervisorDeltaReplayFailureFallsBack: a failed replay is counted
// and the replica is snapshot-reseeded in the SAME sweep.
func TestSupervisorDeltaReplayFailureFallsBack(t *testing.T) {
	ctx := context.Background()
	r, stubs := replayDeployment(t)
	rs := slotSet(t, r, 0)
	wedgeDebt(t, r, stubs, 2)
	stubs[0][1].failReplay.Store(true)

	sup := NewSupervisor(r, time.Hour)
	sup.Sweep(ctx)

	if rs.down[1].Load() || rs.missedWrite[1].Load() {
		t.Fatalf("stale replica not healed: down=%v debt=%v", rs.down[1].Load(), rs.missedWrite[1].Load())
	}
	st := sup.Stats()
	if st.DeltaReseedFailures != 1 || st.DeltaReseeds != 0 {
		t.Fatalf("stats = %+v, want one delta failure and no delta reseed", st)
	}
	if st.Reseeds != 1 || st.SnapshotExports != 1 {
		t.Fatalf("stats = %+v, want the snapshot path to heal the replica the same sweep", st)
	}
	if got := stubs[0][1].handoffs.Load(); got == 0 {
		t.Fatal("replica never received the fallback snapshot")
	}
}
