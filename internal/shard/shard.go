// Package shard scales the ssRec engine horizontally: user blocks are
// partitioned across N core.Engine shards behind a scatter-gather Router
// that is observably equivalent to one big engine — same IDs, same scores,
// same order, proven by the stream-replay conformance suite in this
// package.
//
// # What is sharded, what is replicated
//
// Exact equivalence pins down the split. Candidate routing (the block
// clustering, the per-tree entity/producer universes and the chained hash
// table) and the per-user prediction state (profiles, BiHMM models) must
// agree on every shard, or shards would route and score candidates
// differently than a single engine; they are cheap — O(1) map/window work
// per event — and are maintained identically everywhere by broadcasting
// the observation stream. The expensive state is divided: each shard
// materialises signature-tree leaves only for its owned users, so both the
// branch-and-bound search work (the paper's Fig 10 axis) and the dominant
// maintenance cost (the BiHMM forward passes behind every leaf refresh —
// the ROADMAP's "batched ingestion tail") split N ways.
//
// # The cross-shard protocol
//
// A query fans out to every shard with ONE shared sigtree.Bound: as soon
// as any shard's local top-k fills, its k-th exact score raises the bound
// and prunes every other shard's traversal. The per-shard top-k heaps are
// folded with sigtree.MergeTopK. Correctness is the SearchParallel
// argument lifted over the shard boundary: each shard's k-th best exact
// score lower-bounds the global k-th best, pruning is strict, ties are
// expanded — so results stay bit-identical at every shard count.
//
// # The RPC seam
//
// Shard is a narrow interface (RegisterItems / ObserveBatch / Recommend /
// Stats) with wire-encodable argument types; Local adapts an in-process
// engine, and a network-backed implementation can slot in without touching
// the Router. The Bound protocol tolerates delayed, duplicated or
// reordered Raise deliveries (it is a monotone max), so an RPC shard can
// stream bound updates asynchronously and lose only pruning, never
// correctness.
package shard

import (
	"bytes"
	"context"
	"errors"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/sigtree"
	"ssrec/internal/wal"
)

// ErrShardUnavailable marks a shard the deployment could not reach: a
// network-backed shard whose transport failed, or one the Router has
// excluded after such a failure. In degraded mode the Router keeps
// serving — queries return the merged results of the remaining shards —
// and wraps this sentinel so callers know the answer may be missing the
// excluded shards' owned users. Match with errors.Is.
var ErrShardUnavailable = errors.New("shard: shard unavailable")

// Stats snapshots one shard for /v2/stats and operational monitoring.
type Stats struct {
	// Shard is the shard's position in the deployment.
	Shard int
	// Trained reports whether the shard's engine has been bootstrapped.
	Trained bool
	// Users counts profiles tracked (the replicated dictionaries cover
	// every user, so this matches the single-engine figure).
	Users int
	// OwnedUsers counts users whose index leaves this shard materialises.
	OwnedUsers int
	// Leaves counts signature-tree leaf entries held by this shard.
	Leaves int
	// Blocks / Trees / HashKeys describe the (replicated) routing
	// structures.
	Blocks   int
	Trees    int
	HashKeys int
	// Parallelism is the shard's intra-query worker count.
	Parallelism int
	// RefreshErrors counts failed index refreshes on this shard's engine
	// (core.Engine.RefreshErrors) — non-zero means some owned user's
	// leaves may lag their profile.
	RefreshErrors int64
	// WAL describes the shard's durable ingest log; nil when the shard
	// runs without one.
	WAL *wal.Stats
}

// Shard is one engine shard as the Router sees it. Local is the in-process
// implementation; the method set is deliberately small and wire-encodable
// (core.QueryOptions, not functional options) so an RPC-backed shard can
// implement it later without changing the Router.
type Shard interface {
	// Index reports the shard's position in the deployment (0-based).
	Index() int

	// RegisterItems registers a batch of items in batch order under one
	// lock — the deterministic prologue the Router broadcasts before a
	// query batch so every shard's producer layer advances identically.
	// changed reports whether any previously-unseen item was registered
	// (the replicated dictionaries advanced); a warm batch reports false,
	// which lets the Router tell a real missed write from a no-op when a
	// shard skips the broadcast.
	RegisterItems(ctx context.Context, items []model.Item) (changed bool, err error)

	// ObserveBatch ingests one micro-batch of the interaction stream. The
	// Router broadcasts the SAME batch to every shard: each maintains the
	// replicated dictionaries for all users and refreshes index leaves
	// only for the users it owns.
	ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error)

	// Recommend answers one item from this shard's owned users, pruning
	// against — and raising — the deployment-wide bound shared by all
	// shards answering the same item.
	Recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error)

	// Stats snapshots the shard.
	Stats() Stats
}

// Pinger is the optional health-probe extension of a Shard. A
// network-backed shard implements it so the Router can verify liveness
// before re-including an excluded shard; in-process shards do not (they
// cannot fail independently of the process).
type Pinger interface {
	// Ping reports nil when the shard is reachable AND trained (ready to
	// serve); any error keeps the shard excluded. The returned bootEpoch
	// is an opaque token that changes whenever the shard (re)boots from a
	// snapshot — the Router compares it across probes to tell a re-seeded
	// shard from one still serving the state it had before it was
	// excluded (and therefore missing every batch replicated since).
	// Implementations without epoch tracking return "".
	Ping(ctx context.Context) (bootEpoch string, err error)
}

// SnapshotReceiver is the optional snapshot-handoff extension of a Shard:
// the receiving end of the boot/recovery protocol. Handoff ships a full
// trained-engine snapshot (core.SaveTo bytes); the shard reboots from it
// via core.LoadShardFrom, materialising only its owned leaf partition.
// Remote shards implement it; in-process shards boot directly.
type SnapshotReceiver interface {
	Handoff(ctx context.Context, snapshot []byte) error
}

// ReshardPreparer is the optional resharding extension of a Shard: the
// control half of the online split/merge protocol (Router.Reshard). A
// new-fleet member implementing it is told, before the snapshot handoff,
// that its next boot is slot `slot` of the deployment partitioned by the
// versioned block table p — a remote shard stages p so the handoff boots
// via core.LoadPartitionFrom instead of the legacy modular rule. Members
// without it (e.g. in-process shards built by the Router itself) are
// assumed pre-configured for their slot.
type ReshardPreparer interface {
	PrepareReshard(ctx context.Context, slot int, p model.Partition) error
}

// SnapshotProvider is the optional snapshot-export extension of a Shard:
// the SOURCE end of the recovery protocol. Snapshot returns the shard's
// full engine state as core.SaveTo bytes. Because a shard snapshot
// carries the complete replicated state (the index partition is rebuilt
// on load, never serialised), ANY healthy shard's snapshot can re-seed
// ANY replica of ANY slot — the supervisor exploits this to reseed a
// blank replica from whichever healthy sibling answers first.
type SnapshotProvider interface {
	Snapshot(ctx context.Context) ([]byte, error)
}

// ReplayBatch is one replicated write a stale replica missed: either an
// item-registration batch (Items set) or an observation micro-batch (Obs
// set), tagged with the replica set's write sequence. Batches replay in
// sequence order, reproducing exactly the broadcast the replica skipped.
type ReplayBatch struct {
	Seq   uint64
	Items []model.Item
	Obs   []core.Observation
}

// Replayer is the optional delta catch-up extension of a Shard: the
// cheap alternative to a full snapshot Handoff when a stale replica's
// missed-write debt is small. Replay applies the missed batches in
// order; implementations that track a boot epoch mint a fresh one on
// success, so the fail-closed probe rules see the same proof-of-reseed
// signal a snapshot handoff produces.
type Replayer interface {
	Replay(ctx context.Context, batches []ReplayBatch) error
}

// Local is the in-process Shard: a thin adapter over one core.Engine whose
// Config carries the matching ShardIndex/ShardCount.
type Local struct {
	idx int
	eng *core.Engine
}

// NewLocal wraps an engine as shard idx of its deployment.
func NewLocal(idx int, eng *core.Engine) *Local {
	return &Local{idx: idx, eng: eng}
}

// Engine exposes the wrapped engine (tests, local administration).
func (l *Local) Engine() *core.Engine { return l.eng }

// Index implements Shard.
func (l *Local) Index() int { return l.idx }

// RegisterItems implements Shard.
func (l *Local) RegisterItems(ctx context.Context, items []model.Item) (bool, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return false, err
		}
	}
	return l.eng.RegisterItemBatch(items), nil
}

// ObserveBatch implements Shard.
func (l *Local) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	return l.eng.ObserveBatch(ctx, batch)
}

// Recommend implements Shard.
func (l *Local) Recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error) {
	return l.eng.RecommendBound(ctx, v, o, b)
}

// Replay implements Replayer: missed batches apply directly to the
// wrapped engine in sequence order.
func (l *Local) Replay(ctx context.Context, batches []ReplayBatch) error {
	for _, b := range batches {
		if len(b.Items) > 0 {
			if _, err := l.RegisterItems(ctx, b.Items); err != nil {
				return err
			}
		}
		if len(b.Obs) > 0 {
			if _, err := l.eng.ObserveBatch(ctx, b.Obs); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot implements SnapshotProvider: the wrapped engine's full state as
// core.SaveTo bytes.
func (l *Local) Snapshot(ctx context.Context) ([]byte, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	if err := l.eng.SaveTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Stats implements Shard.
func (l *Local) Stats() Stats {
	s := Stats{
		Shard:       l.idx,
		Trained:     l.eng.Trained(),
		Users:       l.eng.Users(),
		Parallelism: l.eng.Parallelism(),
	}
	s.RefreshErrors = l.eng.RefreshErrors()
	if ist, ok := l.eng.IndexStats(); ok {
		s.OwnedUsers = ist.OwnedUsers
		s.Leaves = ist.TotalLeafCount
		s.Blocks = ist.Blocks
		s.Trees = ist.Trees
		s.HashKeys = ist.HashKeys
	}
	return s
}
