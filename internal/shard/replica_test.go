// replica_test.go unit-tests the ReplicaSet slot machinery and the
// reseed supervisor over stub replicas: read failover stays invisible to
// the Router (zero degraded results while any sibling survives), write
// debt excludes a replica until a snapshot re-seed proves recovery, reads
// load-balance by latency EWMA, and the supervisor's sweep turns the
// manual re-seed runbook into counters the stats surface reports.
package shard

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"ssrec/internal/core"
)

// Snapshot gives stubShard the SnapshotProvider surface the supervisor
// sources re-seeds from (stubs double as replicas in these tests).
func (s *stubShard) Snapshot(ctx context.Context) ([]byte, error) {
	if s.failing.Load() {
		return nil, errors.Join(ErrShardUnavailable, s.err("snapshot"))
	}
	return s.inner.Snapshot(ctx)
}

// replicaDeployment builds a 2-slot × 2-replica router where every
// replica is a stub over a real engine shard booted from the conformance
// snapshot. Stubs start reachable (pingOK) so probes behave like a
// healthy fleet.
func replicaDeployment(t *testing.T) (*Router, [][]*stubShard) {
	t.Helper()
	fx := fixture(t)
	const slots, reps = 2, 2
	stubs := make([][]*stubShard, slots)
	shards := make([]Shard, slots)
	for i := 0; i < slots; i++ {
		stubs[i] = make([]*stubShard, reps)
		members := make([]Shard, reps)
		for j := 0; j < reps; j++ {
			e, err := core.LoadShardFrom(bytes.NewReader(fx.Snapshot), i, slots)
			if err != nil {
				t.Fatalf("boot slot %d replica %d: %v", i, j, err)
			}
			stubs[i][j] = &stubShard{inner: NewLocal(i, e)}
			stubs[i][j].pingOK.Store(true)
			members[j] = stubs[i][j]
		}
		rs, err := NewReplicaSet(i, members...)
		if err != nil {
			t.Fatalf("replica set %d: %v", i, err)
		}
		shards[i] = rs
	}
	r, err := NewRouter(shards...)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	return r, stubs
}

func slotSet(t *testing.T, r *Router, i int) *ReplicaSet {
	t.Helper()
	rs, ok := r.fl().shards[i].(*ReplicaSet)
	if !ok {
		t.Fatalf("slot %d is %T, want *ReplicaSet", i, r.fl().shards[i])
	}
	return rs
}

// TestReplicaSetReadFailover: killing one replica of a slot is invisible
// at the Router — queries fail over to the sibling with NO degraded
// error and bit-identical results.
func TestReplicaSetReadFailover(t *testing.T) {
	fx := fixture(t)
	ctx := context.Background()
	healthy, _ := replicaDeployment(t)
	wounded, stubs := replicaDeployment(t)
	stubs[0][0].failing.Store(true)

	for i := 0; i < 4; i++ {
		want, err := healthy.RecommendCtx(ctx, fx.Queries[i], core.WithK(10))
		if err != nil {
			t.Fatalf("healthy query %d: %v", i, err)
		}
		got, err := wounded.RecommendCtx(ctx, fx.Queries[i], core.WithK(10))
		if err != nil {
			t.Fatalf("query %d with one replica down must not degrade, got %v", i, err)
		}
		if len(got.Recommendations) != len(want.Recommendations) {
			t.Fatalf("query %d: %d recs, want %d", i, len(got.Recommendations), len(want.Recommendations))
		}
		for k := range want.Recommendations {
			if got.Recommendations[k] != want.Recommendations[k] {
				t.Fatalf("query %d rec %d: %+v, want %+v (replica failover must be exact)",
					i, k, got.Recommendations[k], want.Recommendations[k])
			}
		}
	}
	rs := slotSet(t, wounded, 0)
	if !rs.down[0].Load() {
		t.Fatal("failed replica not excluded")
	}
	states := rs.health()
	if states[0].State != "excluded" || states[1].State != "healthy" {
		t.Fatalf("health = %+v, want replica 0 excluded / replica 1 healthy", states)
	}
}

// TestReplicaSetReadFailoverCounter drives the set's Recommend directly
// (before any registration broadcast can pre-exclude the failing
// replica): the first failed attempt falls over to the sibling and the
// failover counter moves.
func TestReplicaSetReadFailoverCounter(t *testing.T) {
	fx := fixture(t)
	r, stubs := replicaDeployment(t)
	rs := slotSet(t, r, 0)
	stubs[0][0].failing.Store(true)

	o := core.ResolveOptions(core.WithK(10))
	res, err := rs.Recommend(context.Background(), fx.Queries[0], o, nil)
	if err != nil {
		t.Fatalf("failover read: %v", err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("failover read returned nothing")
	}
	if rs.failovers.Load() == 0 {
		t.Fatal("failover counter never moved")
	}
	if !rs.down[0].Load() {
		t.Fatal("failed replica not excluded by the read path")
	}
}

// TestReplicaSetWriteDebtAndHandoffRejoin: a replica that misses a
// state-advancing batch records missed-write debt, a plain reconnect
// cannot re-include it (fail closed), and a snapshot handoff both clears
// the debt and bumps the slot's reseed generation (the Router's re-seed
// proof).
func TestReplicaSetWriteDebtAndHandoffRejoin(t *testing.T) {
	fx := fixture(t)
	ctx := context.Background()
	r, stubs := replicaDeployment(t)
	rs := slotSet(t, r, 0)

	stubs[0][1].failing.Store(true)
	if _, err := r.ObserveBatch(ctx, fx.Obs[:64]); err != nil {
		t.Fatalf("write with a surviving sibling must not degrade: %v", err)
	}
	if !rs.missedWrite[1].Load() || !rs.down[1].Load() {
		t.Fatal("failed replica owes no missed-write debt")
	}
	if rs.health()[1].MissedWrite != true {
		t.Fatal("health does not surface the debt")
	}

	// Reconnect WITHOUT a re-seed: the probe must refuse (the first probe
	// records the epoch baseline, the second sees it unchanged).
	stubs[0][1].failing.Store(false)
	for i := 0; i < 2; i++ {
		if ok, _ := rs.probeReplica(ctx, 1); ok {
			t.Fatalf("probe %d re-included a debtor without epoch proof", i)
		}
	}
	if !rs.down[1].Load() {
		t.Fatal("debtor rejoined without re-seed")
	}

	// Snapshot handoff: the stub bumps its epoch (a re-seed) — debt clears,
	// the replica rejoins, and the slot's reseed generation advances.
	genBefore := rs.seedGen.Load()
	if err := rs.Handoff(ctx, fx.Snapshot); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if rs.missedWrite[1].Load() || rs.down[1].Load() {
		t.Fatal("handoff did not re-include the debtor")
	}
	if rs.seedGen.Load() != genBefore+1 {
		t.Fatalf("seedGen = %d, want %d (slot epoch must change on re-seed)", rs.seedGen.Load(), genBefore+1)
	}

	// The rejoined replica serves writes again.
	before := stubs[0][1].calls.Load()
	if _, err := r.ObserveBatch(ctx, fx.Obs[64:128]); err != nil {
		t.Fatalf("post-rejoin write: %v", err)
	}
	if stubs[0][1].calls.Load() == before {
		t.Fatal("rejoined replica received no traffic")
	}
}

// TestReplicaSetEWMAOrdering: reads prefer the fastest replica by EWMA,
// unsampled replicas are measured first, and the periodic exploration
// rotation keeps the runner-up's EWMA live.
func TestReplicaSetEWMAOrdering(t *testing.T) {
	r, _ := replicaDeployment(t)
	rs := slotSet(t, r, 0)

	// Unsampled first: replica 1 has no sample yet, so it leads.
	rs.observeLatency(0, 5*time.Millisecond)
	if order := rs.readOrder(); order[0] != 1 {
		t.Fatalf("readOrder = %v, want unsampled replica 1 first", order)
	}

	// Both sampled: the faster EWMA leads.
	rs.observeLatency(1, 20*time.Millisecond)
	if order := rs.readOrder(); order[0] != 0 {
		t.Fatalf("readOrder = %v, want faster replica 0 first", order)
	}

	// Exploration: across explorePeriod calls at least one rotates the
	// winner to the back.
	rotated := false
	for i := 0; i < explorePeriod+1; i++ {
		if rs.readOrder()[0] != 0 {
			rotated = true
		}
	}
	if !rotated {
		t.Fatalf("no exploration rotation in %d reads", explorePeriod+1)
	}

	// A new sample folds in as an EWMA, not a replacement.
	rs.observeLatency(0, 105*time.Millisecond)
	got := rs.health()[0].LatencyEWMAMs
	want := 5.0*(1-ewmaAlpha) + 105.0*ewmaAlpha
	if got < want-1 || got > want+1 {
		t.Fatalf("EWMA after 5ms,105ms = %.2fms, want ≈%.2fms", got, want)
	}
}

// TestReplicaSetAllReplicasDown: with every replica of a slot gone the
// Router serves a typed degraded partial (no hang), and the slot rejoins
// as soon as ANY replica returns.
func TestReplicaSetAllReplicasDown(t *testing.T) {
	fx := fixture(t)
	ctx := context.Background()
	r, stubs := replicaDeployment(t)
	stubs[1][0].failing.Store(true)
	stubs[1][0].pingOK.Store(false)
	stubs[1][1].failing.Store(true)
	stubs[1][1].pingOK.Store(false)

	res, err := r.RecommendCtx(ctx, fx.Queries[0], core.WithK(10))
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("all-replicas-down err = %v, want ErrShardUnavailable", err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("no partial results from the surviving slot")
	}
	if down := r.Down(); len(down) != 1 || down[0] != 1 {
		t.Fatalf("Down() = %v, want [1]", down)
	}

	// One replica returns. The query's registration prologue was itself a
	// replicated write the whole slot missed, so a bare probe must REFUSE
	// re-inclusion (fail closed — the returned replica is stale)...
	stubs[1][1].failing.Store(false)
	stubs[1][1].pingOK.Store(true)
	r.Probe(ctx) // records the slot's epoch baseline, must not re-include
	if up := r.Probe(ctx); len(up) != 0 {
		t.Fatalf("probe re-included stale slot %v without a re-seed", up)
	}

	// ...and the supervisor's sweep re-seeds it from the healthy slot,
	// after which the slot rejoins and queries stop degrading.
	sup := NewSupervisor(r, time.Hour)
	for i := 0; i < 4 && len(r.Down()) > 0; i++ {
		sup.Sweep(ctx)
	}
	if down := r.Down(); len(down) != 0 {
		t.Fatalf("slot never rejoined after supervisor sweeps, Down() = %v", down)
	}
	if sup.Stats().Reseeds == 0 {
		t.Fatal("recovery happened without a recorded reseed")
	}
	if _, err := r.RecommendCtx(ctx, fx.Queries[1], core.WithK(10)); err != nil {
		t.Fatalf("post-recovery query still degraded: %v", err)
	}
}

// TestSupervisorSweepReseedsStaleReplica: a reachable-but-stale replica
// (missed-write debt, unchanged epoch) cannot rejoin on probes alone; one
// supervisor sweep re-seeds it from the healthy sibling and it rejoins.
func TestSupervisorSweepReseedsStaleReplica(t *testing.T) {
	fx := fixture(t)
	ctx := context.Background()
	r, stubs := replicaDeployment(t)
	rs := slotSet(t, r, 0)

	stubs[0][1].failing.Store(true)
	if _, err := r.ObserveBatch(ctx, fx.Obs[:64]); err != nil {
		t.Fatalf("write: %v", err)
	}
	stubs[0][1].failing.Store(false) // reachable again, but stale

	sup := NewSupervisor(r, time.Hour) // loop never started; sweeps are driven here
	if _, ok := r.SupervisorStats(); !ok {
		t.Fatal("supervisor not attached to router stats")
	}
	// Sweep 1 records the epoch baseline (fail closed) and re-seeds.
	sup.Sweep(ctx)
	if rs.down[1].Load() || rs.missedWrite[1].Load() {
		// The first probe inside the sweep may only establish the baseline;
		// one more sweep must finish the re-seed.
		sup.Sweep(ctx)
	}
	if rs.down[1].Load() || rs.missedWrite[1].Load() {
		t.Fatal("supervisor did not re-seed the stale replica")
	}
	st := sup.Stats()
	if st.Reseeds == 0 {
		t.Fatalf("stats = %+v, want Reseeds > 0", st)
	}
	if st.ReseedFailures != 0 || st.LastError != "" {
		t.Fatalf("clean reseed reported failures: %+v", st)
	}
	if stubs[0][1].handoffs.Load() == 0 {
		t.Fatal("stale replica never received a snapshot")
	}
}

// TestSupervisorSweepCountsFailures: while the needy replica is
// unreachable the sweep's handoff fails and is counted; once it returns
// the next sweep succeeds and clears the error.
func TestSupervisorSweepCountsFailures(t *testing.T) {
	fx := fixture(t)
	ctx := context.Background()
	r, stubs := replicaDeployment(t)
	rs := slotSet(t, r, 0)

	stubs[0][1].failing.Store(true)
	stubs[0][1].pingOK.Store(false)
	if _, err := r.ObserveBatch(ctx, fx.Obs[:64]); err != nil {
		t.Fatalf("write: %v", err)
	}

	sup := NewSupervisor(r, time.Hour)
	sup.Sweep(ctx)
	st := sup.Stats()
	if st.ReseedFailures == 0 || st.LastError == "" {
		t.Fatalf("unreachable replica produced no failure: %+v", st)
	}
	if !rs.down[1].Load() {
		t.Fatal("failed handoff re-included the replica")
	}

	stubs[0][1].failing.Store(false)
	stubs[0][1].pingOK.Store(true)
	sup.Sweep(ctx)
	if rs.down[1].Load() || rs.missedWrite[1].Load() {
		sup.Sweep(ctx) // baseline-then-prove may need one more pass
	}
	if rs.down[1].Load() || rs.missedWrite[1].Load() {
		t.Fatal("recovered replica never re-seeded")
	}
	st = sup.Stats()
	if st.Reseeds == 0 {
		t.Fatalf("stats = %+v, want a successful reseed", st)
	}
	if st.LastError != "" {
		t.Fatalf("clean sweep left LastError = %q", st.LastError)
	}
}

// TestSupervisorStartStop: the background loop runs sweeps on its own and
// Stop is idempotent.
func TestSupervisorStartStop(t *testing.T) {
	r, _ := replicaDeployment(t)
	sup := r.StartSupervisor(5 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for sup.Stats().Cycles == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no sweep cycles after 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sup.Stop()
	sup.Stop() // idempotent
	if st := sup.Stats(); st.Running {
		t.Fatalf("stopped supervisor still reports running: %+v", st)
	}
}
