// replicaset.go replicates one shard slot R ways behind the Shard seam.
// A ReplicaSet is itself a Shard (plus Pinger / SnapshotReceiver /
// SnapshotProvider), so the Router's scatter-gather, failover and debt
// accounting compose over it unchanged: the Router sees one logical slot,
// and the set multiplexes it over R identically-partitioned replicas.
//
// # Exactness
//
// The micro-batch is the deployment's atomic replication unit (the Router
// already broadcasts every write batch under a detached context), so the
// set replays the SAME batches to every replica: each replica of slot i
// holds bit-identical state — the replicated dictionaries plus slot i's
// leaf partition — and any replica answers any slot-i query with exactly
// the ranking a single engine would produce. Writes therefore broadcast
// to all replicas (keeping them converged), while each read is served by
// ONE replica — load-balanced toward the fastest via a latency EWMA — so
// adding replicas multiplies read throughput without perturbing results.
//
// # Failure accounting
//
// The set mirrors the Router's per-shard machinery one level down: a
// replica that fails with ErrShardUnavailable is excluded from the set,
// write batches it missed record missed-write debt (generation-guarded),
// and re-inclusion of a debtor requires a boot-epoch change proving a
// re-seed. The set's own Ping reports slot health to the Router: the slot
// epoch is derived from the set's reseed generation, so Router-level debt
// (a batch the WHOLE slot missed) is cleared only after some replica
// accepted a fresh snapshot — the same fail-closed rule the Router
// applies to plain shards.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/sigtree"
	"ssrec/internal/telemetry"
)

const (
	// ewmaAlpha weights the newest latency sample in a replica's EWMA.
	ewmaAlpha = 0.2
	// explorePeriod: every Nth read tries the non-preferred replica first,
	// keeping its EWMA fresh so a recovered replica can win back traffic.
	explorePeriod = 16
	// deltaTailCap bounds the in-memory ring of recent replicated write
	// batches a stale replica can catch up from without a snapshot.
	deltaTailCap = 256
)

// ReplicaState describes one replica (or one plain unreplicated shard)
// for /v2/stats and monitoring.
type ReplicaState struct {
	Slot    int
	Replica int
	// State is "healthy", "excluded" (unreachable or in missed-write
	// debt) or "reseeding" (a snapshot handoff is in flight).
	State string
	// MissedWrite reports outstanding missed-write debt: the replica must
	// prove a re-seed (boot-epoch change) before it serves again.
	MissedWrite bool
	// LatencyEWMAMs is the replica's read-latency EWMA in milliseconds
	// (0 until the first sample).
	LatencyEWMAMs float64
}

// ReplicaSet multiplexes one shard slot over R replicas.
type ReplicaSet struct {
	idx      int
	replicas []Shard

	down        []atomic.Bool
	missedWrite []atomic.Bool
	debtGen     []atomic.Uint64
	reseeding   []atomic.Bool

	epochMu   sync.Mutex
	lastEpoch []string

	// ewma[j] holds math.Float64bits of replica j's read-latency EWMA in
	// milliseconds; 0 means no sample yet. Updates are load-compute-store
	// (a lost race drops one sample, which the EWMA tolerates).
	ewma []atomic.Uint64
	rr   atomic.Uint64 // read counter driving periodic exploration

	// seedGen counts accepted snapshot handoffs; the slot's boot epoch is
	// derived from it, so the Router's fail-closed re-inclusion rule sees
	// an epoch change exactly when some replica was re-seeded.
	seedGen atomic.Uint64

	// Delta catch-up bookkeeping: every non-empty write batch gets the
	// next slot write sequence and is retained in a bounded ring;
	// applied[j] is the highest sequence replica j has applied (0 =
	// unknown, reset after a snapshot reseed whose exact coverage the set
	// cannot know). A stale replica's countable debt is wseq - applied[j],
	// and when the ring still holds that whole tail the supervisor can
	// replay just the missed batches instead of shipping a snapshot.
	wseq    atomic.Uint64
	applied []atomic.Uint64
	tailMu  sync.Mutex
	tail    []ReplayBatch

	probes *probeSchedule

	failovers atomic.Uint64 // reads retried on a sibling after a failure
}

// NewReplicaSet groups replicas (each already partitioned as slot idx of
// its deployment) into one logical slot.
func NewReplicaSet(idx int, replicas ...Shard) (*ReplicaSet, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("shard: replica set needs at least one replica")
	}
	for j, s := range replicas {
		if s.Index() != idx {
			return nil, fmt.Errorf("shard: slot %d replica %d reports shard index %d", idx, j, s.Index())
		}
	}
	return &ReplicaSet{
		idx:         idx,
		replicas:    replicas,
		down:        make([]atomic.Bool, len(replicas)),
		missedWrite: make([]atomic.Bool, len(replicas)),
		debtGen:     make([]atomic.Uint64, len(replicas)),
		reseeding:   make([]atomic.Bool, len(replicas)),
		applied:     make([]atomic.Uint64, len(replicas)),
		lastEpoch:   make([]string, len(replicas)),
		ewma:        make([]atomic.Uint64, len(replicas)),
		probes:      newProbeSchedule(len(replicas), DefaultProbeInterval),
	}, nil
}

// Index implements Shard.
func (rs *ReplicaSet) Index() int { return rs.idx }

// Replicas reports the set's width.
func (rs *ReplicaSet) Replicas() int { return len(rs.replicas) }

// setReplica swaps replica j — the in-process Train bootstrap path, which
// runs before the deployment serves; it is not safe under traffic.
func (rs *ReplicaSet) setReplica(j int, s Shard) { rs.replicas[j] = s }

// SetProbeInterval adjusts the set's internal re-probe base interval.
func (rs *ReplicaSet) SetProbeInterval(d time.Duration) {
	if d <= 0 {
		d = DefaultProbeInterval
	}
	rs.probes.setBase(d)
}

func (rs *ReplicaSet) recordDebt(j int) {
	rs.missedWrite[j].Store(true)
	rs.debtGen[j].Add(1)
	rs.down[j].Store(true)
}

func (rs *ReplicaSet) clearDebtIfUnchanged(j int, gen uint64) {
	if rs.debtGen[j].Load() == gen {
		rs.missedWrite[j].Store(false)
	}
}

// logWrite assigns the next slot write sequence to a batch and retains
// it in the delta ring. Sequencing assumes the slot's write stream is
// ordered — the same assumption the replication exactness argument
// already rests on.
func (rs *ReplicaSet) logWrite(items []model.Item, obs []core.Observation) uint64 {
	rs.tailMu.Lock()
	defer rs.tailMu.Unlock()
	seq := rs.wseq.Add(1)
	rs.tail = append(rs.tail, ReplayBatch{Seq: seq, Items: items, Obs: obs})
	if len(rs.tail) > deltaTailCap {
		rs.tail = rs.tail[len(rs.tail)-deltaTailCap:]
	}
	return seq
}

// noteApplied records that replica j applied sequence seq (monotone).
func (rs *ReplicaSet) noteApplied(j int, seq uint64) {
	for {
		cur := rs.applied[j].Load()
		if cur >= seq || rs.applied[j].CompareAndSwap(cur, seq) {
			return
		}
	}
}

// resetApplied marks replica j's applied sequence unknown — after a
// snapshot reseed the set cannot know exactly which broadcasts the
// snapshot covered, and a delta replay from a wrong baseline would
// double- or under-apply batches. Tracking restarts at the replica's
// next applied broadcast.
func (rs *ReplicaSet) resetApplied(j int) { rs.applied[j].Store(0) }

// deltaTail returns the ring entries covering (after, through], or
// ok=false when the ring no longer holds that tail contiguously.
func (rs *ReplicaSet) deltaTail(after, through uint64) ([]ReplayBatch, bool) {
	rs.tailMu.Lock()
	defer rs.tailMu.Unlock()
	var out []ReplayBatch
	for _, b := range rs.tail {
		if b.Seq > after && b.Seq <= through {
			out = append(out, b)
		}
	}
	if uint64(len(out)) != through-after || len(out) == 0 || out[0].Seq != after+1 {
		return nil, false
	}
	return out, true
}

func (rs *ReplicaSet) recordEpoch(j int, epoch string) {
	if epoch == "" {
		return
	}
	rs.epochMu.Lock()
	rs.lastEpoch[j] = epoch
	rs.epochMu.Unlock()
}

func (rs *ReplicaSet) knownEpoch(j int) string {
	rs.epochMu.Lock()
	defer rs.epochMu.Unlock()
	return rs.lastEpoch[j]
}

func (rs *ReplicaSet) unavailErr() error {
	return fmt.Errorf("%w: slot %d: no healthy replica", ErrShardUnavailable, rs.idx)
}

// health snapshots the per-replica states for monitoring.
func (rs *ReplicaSet) health() []ReplicaState {
	out := make([]ReplicaState, len(rs.replicas))
	for j := range rs.replicas {
		st := ReplicaState{
			Slot:        rs.idx,
			Replica:     j,
			State:       "healthy",
			MissedWrite: rs.missedWrite[j].Load(),
		}
		if bits := rs.ewma[j].Load(); bits != 0 {
			st.LatencyEWMAMs = math.Float64frombits(bits)
		}
		switch {
		case rs.reseeding[j].Load():
			st.State = "reseeding"
		case rs.down[j].Load() || st.MissedWrite:
			st.State = "excluded"
		}
		out[j] = st
	}
	return out
}

// observeLatency folds one read-latency sample into replica j's EWMA.
func (rs *ReplicaSet) observeLatency(j int, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	old := rs.ewma[j].Load()
	next := ms
	if old != 0 {
		next = math.Float64frombits(old)*(1-ewmaAlpha) + ms*ewmaAlpha
	}
	if next <= 0 {
		next = math.SmallestNonzeroFloat64 // keep 0 meaning "no sample"
	}
	rs.ewma[j].Store(math.Float64bits(next))
}

// readOrder lists the healthy replicas fastest-EWMA-first (unsampled
// replicas sort first so they get measured); every explorePeriod-th call
// rotates the winner to the back so the runner-up's EWMA stays live.
func (rs *ReplicaSet) readOrder() []int {
	order := make([]int, 0, len(rs.replicas))
	for j := range rs.replicas {
		if !rs.down[j].Load() {
			order = append(order, j)
		}
	}
	if len(order) < 2 {
		return order
	}
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := rs.ewma[order[a]].Load(), rs.ewma[order[b]].Load()
		if ea == 0 || eb == 0 {
			return eb != 0 // unsampled first
		}
		return math.Float64frombits(ea) < math.Float64frombits(eb)
	})
	if rs.rr.Add(1)%explorePeriod == 0 {
		order = append(order[1:], order[0])
	}
	return order
}

// maybeProbe kicks an asynchronous re-probe of the excluded replicas
// whose backoff is due — the set-internal mirror of Router.maybeProbe.
func (rs *ReplicaSet) maybeProbe() {
	var down []int
	for j := range rs.replicas {
		if rs.down[j].Load() {
			down = append(down, j)
		}
	}
	if len(down) == 0 {
		return
	}
	due := rs.probes.claimDue(down)
	if len(due) == 0 {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
		defer cancel()
		for _, j := range due {
			if !rs.down[j].Load() {
				continue
			}
			if ok, _ := rs.probeReplica(ctx, j); ok {
				rs.probes.success(j)
			} else {
				rs.probes.failure(j)
			}
		}
	}()
}

// probeReplica re-checks replica j and re-includes it when safe, under
// the same fail-closed rules Router.probeOne applies to shards: a debtor
// rejoins only on a changed boot epoch (proof of re-seed). untrained
// reports a replica that is reachable but awaiting training — the signal
// Ping uses to distinguish ErrNotTrained from unavailability.
func (rs *ReplicaSet) probeReplica(ctx context.Context, j int) (ok, untrained bool) {
	gen := rs.debtGen[j].Load()
	if p, isP := rs.replicas[j].(Pinger); isP {
		epoch, err := p.Ping(ctx)
		if err != nil {
			rs.down[j].Store(true)
			return false, false
		}
		if rs.missedWrite[j].Load() {
			known := rs.knownEpoch(j)
			if epoch == "" || known == "" || epoch == known {
				rs.recordEpoch(j, epoch)
				return false, false
			}
			rs.clearDebtIfUnchanged(j, gen)
		}
		rs.recordEpoch(j, epoch)
	} else {
		if !rs.replicas[j].Stats().Trained {
			return false, true
		}
		rs.clearDebtIfUnchanged(j, gen)
	}
	rs.down[j].Store(false)
	if rs.missedWrite[j].Load() {
		rs.down[j].Store(true)
		return false, false
	}
	return true, false
}

// Ping implements Pinger at SLOT level: the slot is serveable while any
// replica is healthy and debt-free. Down replicas are re-probed inline
// (this is the Router's explicit recovery path). The returned epoch is
// derived from the reseed generation, so the Router's fail-closed
// re-inclusion of a debtor slot requires a replica re-seed — not merely a
// replica reconnecting with whatever stale state it kept.
func (rs *ReplicaSet) Ping(ctx context.Context) (string, error) {
	healthy := 0
	anyUntrained := false
	for j := range rs.replicas {
		ok, untrained := rs.probeReplica(ctx, j)
		if ok {
			healthy++
		} else if untrained {
			anyUntrained = true
		}
	}
	if healthy == 0 {
		if anyUntrained {
			return "", core.ErrNotTrained
		}
		return "", rs.unavailErr()
	}
	return fmt.Sprintf("rs-%d", rs.seedGen.Load()), nil
}

// Stats implements Shard: the replicas are bit-identical, so the first
// healthy one speaks for the slot.
func (rs *ReplicaSet) Stats() Stats {
	for j := range rs.replicas {
		if !rs.down[j].Load() {
			s := rs.replicas[j].Stats()
			s.Shard = rs.idx
			return s
		}
	}
	return Stats{Shard: rs.idx}
}

// RegisterItems implements Shard: the deterministic registration prologue
// broadcasts to every healthy replica (the producer layers must advance
// identically everywhere). The slot succeeds while ANY replica applied
// the batch; replicas that skipped or failed a state-advancing batch
// record missed-write debt under the Router's proof rules — a successful
// changed=false leg proves a no-op everywhere and accrues none.
func (rs *ReplicaSet) RegisterItems(ctx context.Context, items []model.Item) (bool, error) {
	bctx := detach(ctx)
	var seq uint64
	if len(items) > 0 {
		seq = rs.logWrite(items, nil)
	}
	n := len(rs.replicas)
	errs := make([]error, n)
	changed := make([]bool, n)
	ran := make([]bool, n)
	var wg sync.WaitGroup
	for j := range rs.replicas {
		if rs.down[j].Load() {
			continue
		}
		ran[j] = true
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			changed[j], errs[j] = rs.replicas[j].RegisterItems(bctx, items)
		}(j)
	}
	wg.Wait()
	anySuccess, advanced, anyUnavail := false, false, false
	var fatal error
	for j := range rs.replicas {
		if !ran[j] {
			continue
		}
		switch {
		case errs[j] == nil:
			anySuccess = true
			advanced = advanced || changed[j]
			if seq != 0 {
				rs.noteApplied(j, seq)
			}
		case errors.Is(errs[j], ErrShardUnavailable):
			anyUnavail = true
			rs.down[j].Store(true)
		default:
			// A clean refusal while a sibling may have applied the batch:
			// this replica provably diverged — exclude it with debt below.
			if fatal == nil {
				fatal = fmt.Errorf("slot %d replica %d: %w", rs.idx, j, errs[j])
			}
		}
	}
	ranAny := anySuccess || anyUnavail || fatal != nil
	// Debt mirrors Router.registerBroadcast: proven advance, or unknowable
	// outcome (only unavailable legs ran, or no replica ran at all — the
	// batch may still land on sibling slots), debts every replica that did
	// not succeed.
	mutated := (anySuccess && advanced) || (!anySuccess && anyUnavail) || !ranAny
	if len(items) > 0 && mutated {
		for j := range rs.replicas {
			if !ran[j] || errs[j] != nil {
				rs.recordDebt(j)
			}
		}
	}
	if anySuccess {
		return advanced, nil
	}
	if fatal != nil {
		return false, fatal
	}
	return false, rs.unavailErr()
}

// ObserveBatch implements Shard: one micro-batch broadcast to every
// healthy replica. The replicas are bit-identical, so the first healthy
// report IS the slot's report (summing Flushed across replicas would
// double-count the slot's owned refreshes). The slot stays available
// while any replica applied the batch; the others record debt under the
// mutated-proof rules.
func (rs *ReplicaSet) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	if len(batch) == 0 {
		return core.BatchReport{}, nil
	}
	rs.maybeProbe()
	bctx := detach(ctx)
	seq := rs.logWrite(nil, batch)
	n := len(rs.replicas)
	reps := make([]core.BatchReport, n)
	errs := make([]error, n)
	ran := make([]bool, n)
	var wg sync.WaitGroup
	for j := range rs.replicas {
		if rs.down[j].Load() {
			continue
		}
		ran[j] = true
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			reps[j], errs[j] = rs.replicas[j].ObserveBatch(bctx, batch)
		}(j)
	}
	wg.Wait()
	var rep core.BatchReport
	base := false
	anyUnavail := false
	var fatal error
	for j := range rs.replicas {
		if !ran[j] {
			continue
		}
		switch {
		case errs[j] == nil:
			rs.noteApplied(j, seq)
			if !base {
				rep = reps[j]
				base = true
			}
		case errors.Is(errs[j], ErrShardUnavailable):
			anyUnavail = true
			rs.down[j].Store(true)
		default:
			if fatal == nil {
				fatal = fmt.Errorf("slot %d replica %d: %w", rs.idx, j, errs[j])
			}
		}
	}
	ranAny := base || anyUnavail || fatal != nil
	mutated := (base && rep.Applied > 0) || (!base && anyUnavail) || !ranAny
	if mutated {
		for j := range rs.replicas {
			if !ran[j] || errs[j] != nil {
				rs.recordDebt(j)
			}
		}
	}
	if base {
		return rep, nil
	}
	if fatal != nil {
		return rep, fatal
	}
	return rep, rs.unavailErr()
}

// Recommend implements Shard: ONE healthy replica answers the query —
// fastest-EWMA first, failing over to siblings on unavailability — so R
// replicas serve R× the read traffic. Any replica's answer is exact (see
// the package comment's exactness argument), and a failed attempt can
// only have RAISED the shared bound with exact scores, so failover never
// perturbs results. Reads do not mutate, so a failed replica is excluded
// without debt and rejoins on a plain successful probe.
func (rs *ReplicaSet) Recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error) {
	rs.maybeProbe()
	order := rs.readOrder()
	tried := false
	for _, j := range order {
		start := time.Now()
		sctx, span := telemetry.StartSpan(ctx, "replica.read")
		span.SetAttr("slot", strconv.Itoa(rs.idx))
		span.SetAttr("replica", strconv.Itoa(j))
		res, err := rs.replicas[j].Recommend(sctx, v, o, b)
		if err != nil && errors.Is(err, ErrShardUnavailable) {
			span.SetAttr("failover", "true")
			span.End()
			rs.down[j].Store(true)
			tried = true
			continue
		}
		span.End()
		if tried {
			rs.failovers.Add(1)
		}
		rs.observeLatency(j, time.Since(start))
		return res, err
	}
	return core.Result{ItemID: v.ID}, rs.unavailErr()
}

// Handoff implements SnapshotReceiver: the snapshot is pushed to every
// replica that can receive one. The slot handoff succeeds when ANY
// replica accepted it (the slot is then serveable and consistent); a
// replica whose push failed stays excluded and is retried by the
// supervisor. An accepted handoff bumps the reseed generation, changing
// the slot epoch the Router uses as its re-seed proof. A set with no
// receiving replicas (in-process) reports success without bumping — it
// boots out-of-band, mirroring the Router's skip of non-receiver shards.
func (rs *ReplicaSet) Handoff(ctx context.Context, snapshot []byte) error {
	receivers, accepted := 0, 0
	var firstErr error
	for j := range rs.replicas {
		sr, ok := rs.replicas[j].(SnapshotReceiver)
		if !ok {
			continue
		}
		receivers++
		if err := rs.reseedReplica(ctx, j, sr, snapshot); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %d: %w", j, err)
			}
			continue
		}
		accepted++
	}
	if receivers == 0 {
		return nil
	}
	if accepted == 0 {
		return firstErr
	}
	rs.seedGen.Add(1)
	return nil
}

// reseedReplica pushes one snapshot to replica j under the generation
// guard: debt recorded while the snapshot was in flight survives the
// clear, keeping the replica excluded rather than one batch behind.
func (rs *ReplicaSet) reseedReplica(ctx context.Context, j int, sr SnapshotReceiver, snapshot []byte) error {
	gen := rs.debtGen[j].Load()
	rs.reseeding[j].Store(true)
	defer rs.reseeding[j].Store(false)
	if err := sr.Handoff(ctx, snapshot); err != nil {
		rs.down[j].Store(true)
		return err
	}
	rs.resetApplied(j)
	rs.clearDebtIfUnchanged(j, gen)
	rs.down[j].Store(false)
	if p, ok := rs.replicas[j].(Pinger); ok {
		pctx, cancel := context.WithTimeout(detach(ctx), readyProbeTimeout)
		if epoch, err := p.Ping(pctx); err == nil {
			rs.recordEpoch(j, epoch)
		}
		cancel()
	}
	// Debt that postdates the snapshot keeps the replica excluded; the
	// snapshot itself was applied, so the handoff still counts.
	if rs.missedWrite[j].Load() {
		rs.down[j].Store(true)
	}
	return nil
}

// Snapshot implements SnapshotProvider: exported from the first healthy,
// debt-free replica that can provide one — the supervisor's reseed
// source.
func (rs *ReplicaSet) Snapshot(ctx context.Context) ([]byte, error) {
	var firstErr error
	for j := range rs.replicas {
		if rs.down[j].Load() || rs.missedWrite[j].Load() {
			continue
		}
		sp, ok := rs.replicas[j].(SnapshotProvider)
		if !ok {
			continue
		}
		data, err := sp.Snapshot(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return data, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, fmt.Errorf("%w: slot %d: no healthy snapshot source", ErrShardUnavailable, rs.idx)
}

// ReplicaHealth reports the per-replica states of every slot — one entry
// per replica for ReplicaSet slots, one pseudo-replica for plain shards —
// in slot-major order, for /v2/stats.
func (r *Router) ReplicaHealth() []ReplicaState {
	f := r.fl()
	var out []ReplicaState
	for i, s := range f.shards {
		if rs, ok := s.(*ReplicaSet); ok {
			out = append(out, rs.health()...)
			continue
		}
		st := ReplicaState{Slot: i, State: "healthy", MissedWrite: f.missedWrite[i].Load()}
		if f.down[i].Load() || st.MissedWrite {
			st.State = "excluded"
		}
		out = append(out, st)
	}
	return out
}

var (
	_ Shard            = (*ReplicaSet)(nil)
	_ Pinger           = (*ReplicaSet)(nil)
	_ SnapshotReceiver = (*ReplicaSet)(nil)
	_ SnapshotProvider = (*ReplicaSet)(nil)
	_ SnapshotProvider = (*Local)(nil)
)
