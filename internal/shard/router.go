// router.go is the scatter-gather front of a sharded deployment: it owns
// the user→shard hash, broadcasts the write path (observations, item
// registration) so the replicated dictionaries never drift, scatters each
// query to every shard under one shared score bound, and gathers the
// per-shard top-k heaps into the final ranking. Its surface mirrors
// core.Engine / core.SafeEngine so the HTTP server and the bench harness
// can serve either interchangeably.
package shard

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/sigtree"
)

// Router fans the engine API out over the shards of one deployment.
type Router struct {
	shards []Shard
	// locals holds the wrapped engines when the deployment is in-process
	// (New / FromSnapshot) — Train and SetParallelism need them; a mixed
	// or RPC deployment leaves the slice nil and bootstraps out-of-band.
	locals []*core.Engine
	// isTrained latches once the deployment reports trained, so the
	// per-request readiness check stops paying a full Stats snapshot
	// (training is one-way: engines never untrain).
	isTrained atomic.Bool
}

// trained reports deployment readiness, caching the first positive answer.
func (r *Router) trained() bool {
	if r.isTrained.Load() {
		return true
	}
	if r.shards[0].Stats().Trained {
		r.isTrained.Store(true)
		return true
	}
	return false
}

// NewRouter assembles a router over pre-built shards (the RPC-deployment
// entry point). Shards must be passed in index order.
func NewRouter(shards ...Shard) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard")
	}
	for i, s := range shards {
		if s.Index() != i {
			return nil, fmt.Errorf("shard: shard at position %d reports index %d", i, s.Index())
		}
	}
	return &Router{shards: shards}, nil
}

// New builds an n-shard in-process deployment from one engine Config. The
// config's ShardIndex/ShardCount are overridden per shard; n <= 1 degrades
// to a single-engine deployment behind the same Router surface.
func New(cfg core.Config, n int) *Router {
	if n < 1 {
		n = 1
	}
	r := &Router{shards: make([]Shard, n), locals: make([]*core.Engine, n)}
	for i := 0; i < n; i++ {
		c := cfg
		c.ShardIndex, c.ShardCount = i, n
		r.locals[i] = core.New(c)
		r.shards[i] = NewLocal(i, r.locals[i])
	}
	return r
}

// FromSnapshot boots an n-shard in-process deployment from ONE trained
// engine snapshot (core.SaveTo bytes): every shard restores the same
// replicated state and rebuilds only its own leaf partition. This is the
// cheap way to stand up a deployment — one training or one -save run, N
// boots — and the model ssrec-server -model -shards uses.
func FromSnapshot(data []byte, n int) (*Router, error) {
	if n < 1 {
		n = 1
	}
	r := &Router{shards: make([]Shard, n), locals: make([]*core.Engine, n)}
	for i := 0; i < n; i++ {
		e, err := core.LoadShardFrom(bytes.NewReader(data), i, n)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.locals[i] = e
		r.shards[i] = NewLocal(i, e)
	}
	return r, nil
}

// Shards reports the deployment width.
func (r *Router) Shards() int { return len(r.shards) }

// ShardStats snapshots every shard, in index order.
func (r *Router) ShardStats() []Stats {
	out := make([]Stats, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.Stats()
	}
	return out
}

// Owner returns the shard index that materialises a user's leaves.
func (r *Router) Owner(userID string) int {
	return model.ShardOf(userID, len(r.shards))
}

// Train bootstraps an in-process deployment: shard 0 trains once on the
// full stream, then every other shard boots from its snapshot
// (LoadShardFrom) — identical replicated state, own leaf partition — so
// an n-shard deployment costs ONE training, not n.
func (r *Router) Train(items []model.Item, interactions []model.Interaction, resolve func(string) (model.Item, bool)) error {
	if r.locals == nil {
		return fmt.Errorf("shard: Train requires an in-process deployment (New or FromSnapshot)")
	}
	if err := r.locals[0].Train(items, interactions, resolve); err != nil {
		return err
	}
	if len(r.locals) == 1 {
		return nil
	}
	var buf bytes.Buffer
	if err := r.locals[0].SaveTo(&buf); err != nil {
		return fmt.Errorf("shard: snapshot shard 0: %w", err)
	}
	data := buf.Bytes()
	for i := 1; i < len(r.locals); i++ {
		e, err := core.LoadShardFrom(bytes.NewReader(data), i, len(r.locals))
		if err != nil {
			return fmt.Errorf("shard %d: boot from snapshot: %w", i, err)
		}
		r.locals[i] = e
		r.shards[i] = NewLocal(i, e)
	}
	return nil
}

// SetParallelism adjusts the intra-query worker count of every in-process
// shard (no-op entries for non-local shards).
func (r *Router) SetParallelism(n int) {
	for _, e := range r.locals {
		if e != nil {
			e.SetParallelism(n)
		}
	}
}

// detach strips cancellation for the broadcast legs: a micro-batch (or a
// registration batch) is the atomic replication unit — if half the shards
// applied it and half refused on a cancelled context, the replicated
// dictionaries would drift apart permanently. Cancellation therefore
// applies BETWEEN batches (checked at entry), never inside one.
func detach(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return context.WithoutCancel(ctx)
}

// ObserveBatch ingests one micro-batch of the interaction stream: the SAME
// batch is broadcast to every shard in parallel (each maintains the
// replicated dictionaries for all users and refreshes leaves only for the
// ones it owns). The merged report matches the single-engine call:
// Applied/Rejected/Errors are identical on every shard (validation is
// deterministic), and Flushed sums the per-shard owned refreshes —
// exactly the users a single engine would have refreshed, divided N ways.
func (r *Router) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return core.BatchReport{}, err
		}
	}
	if len(batch) == 0 {
		return core.BatchReport{}, nil
	}
	bctx := detach(ctx)
	reps := make([]core.BatchReport, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			reps[i], errs[i] = s.ObserveBatch(bctx, batch)
		}(i, s)
	}
	wg.Wait()
	rep := reps[0]
	rep.Flushed = 0
	for i := range reps {
		rep.Flushed += reps[i].Flushed
		if errs[i] != nil {
			return rep, fmt.Errorf("shard %d: %w", i, errs[i])
		}
	}
	return rep, nil
}

// registerBroadcast runs the deterministic batch prologue on every shard
// in parallel. Uncancellable for the same drift reason as ObserveBatch.
func (r *Router) registerBroadcast(ctx context.Context, items []model.Item) error {
	bctx := detach(ctx)
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			errs[i] = s.RegisterItems(bctx, items)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// recommendOne scatters one item to every shard under one shared bound and
// gathers the per-shard heaps into the global top-k. Stats are summed;
// Partitions accumulates the workers used across shards.
func (r *Router) recommendOne(ctx context.Context, v model.Item, o core.QueryOptions) (core.Result, error) {
	if len(r.shards) == 1 {
		return r.shards[0].Recommend(ctx, v, o, nil)
	}
	b := sigtree.NewBound()
	parts := make([]core.Result, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			parts[i], errs[i] = s.Recommend(ctx, v, o, b)
		}(i, s)
	}
	wg.Wait()
	res := core.Result{ItemID: v.ID}
	lists := make([][]model.Recommendation, len(parts))
	var firstErr error
	for i := range parts {
		lists[i] = parts[i].Recommendations
		res.Stats.Add(parts[i].Stats)
		res.Stats.Partitions += parts[i].Stats.Partitions
		if firstErr == nil && errs[i] != nil {
			firstErr = errs[i]
		}
	}
	res.Recommendations = sigtree.MergeTopK(o.K, lists...)
	return res, firstErr
}

// RecommendCtx mirrors Engine.RecommendCtx over the deployment: register
// the item everywhere (deterministically), then scatter-gather the query.
func (r *Router) RecommendCtx(ctx context.Context, v model.Item, opts ...core.Option) (core.Result, error) {
	o := core.ResolveOptions(opts...)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return core.Result{ItemID: v.ID}, err
		}
	}
	if err := r.registerBroadcast(ctx, []model.Item{v}); err != nil {
		return core.Result{ItemID: v.ID}, err
	}
	return r.recommendOne(ctx, v, o)
}

// RecommendBatch mirrors Engine.RecommendBatch over the deployment:
// results[i] answers items[i]; item-scoped failures land in
// results[i].Err while the call-scoped error reports cancellation or an
// untrained deployment. The registration prologue is broadcast ONCE in
// batch order — per-item registration under the worker pool would advance
// the shards' producer layers in nondeterministic order.
func (r *Router) RecommendBatch(ctx context.Context, items []model.Item, opts ...core.Option) ([]core.Result, error) {
	o := core.ResolveOptions(opts...)
	results := make([]core.Result, len(items))
	if len(items) == 0 {
		return results, nil
	}
	if !r.trained() {
		for i := range results {
			results[i] = core.Result{ItemID: items[i].ID, Err: core.ErrNotTrained}
		}
		return results, core.ErrNotTrained
	}
	// Registration runs BEFORE the cancellation check, mirroring
	// Engine.RecommendBatch exactly: a cancelled batch still registers its
	// items there, so the sharded deployment must too or the producer
	// layers would drift apart from the single engine's.
	if err := r.registerBroadcast(ctx, items); err != nil {
		return results, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			for i := range results {
				results[i] = core.Result{ItemID: items[i].ID, Err: err}
			}
			return results, err
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				res, err := r.recommendOne(ctx, items[i], o)
				if err != nil {
					res.Err = err
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return results, err
		}
	}
	return results, nil
}

// ---- v1-parity surface (server Backend, bench harness) ----

// Recommend is the v1 query over the deployment. Unlike the single
// engine's v1 path it reports nothing on failure (nil); the v2 calls carry
// the errors.
func (r *Router) Recommend(v model.Item, k int) []model.Recommendation {
	res, err := r.RecommendCtx(context.Background(), v, core.WithK(k))
	if err != nil {
		return nil
	}
	return res.Recommendations
}

// Observe is the v1 single-interaction ingest: a one-entry broadcast.
func (r *Router) Observe(ir model.Interaction, v model.Item) {
	_, _ = r.ObserveBatch(context.Background(), []core.Observation{
		{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp},
	})
}

// RegisterItem broadcasts one item registration.
func (r *Router) RegisterItem(v model.Item) {
	_ = r.registerBroadcast(context.Background(), []model.Item{v})
}

// Users counts tracked profiles (replicated — shard 0's figure is the
// deployment's).
func (r *Router) Users() int { return r.shards[0].Stats().Users }

// Parallelism reports the intra-query worker count of shard 0.
func (r *Router) Parallelism() int { return r.shards[0].Stats().Parallelism }

// IndexStats reports the deployment-level index view: the routing
// structures are replicated, so shard 0's block/tree/hash figures are the
// deployment's, and Users covers every assigned user.
func (r *Router) IndexStats() core.IndexStatsView {
	st := r.shards[0].Stats()
	return core.IndexStatsView{
		Blocks:   st.Blocks,
		Trees:    st.Trees,
		Users:    st.Users,
		HashKeys: st.HashKeys,
	}
}
