// router.go is the scatter-gather front of a sharded deployment: it owns
// the user→shard hash, broadcasts the write path (observations, item
// registration) so the replicated dictionaries never drift, scatters each
// query to every shard under one shared score bound, and gathers the
// per-shard top-k heaps into the final ranking. Its surface mirrors
// core.Engine / core.SafeEngine so the HTTP server and the bench harness
// can serve either interchangeably.
//
// # Failover
//
// A shard whose call fails with ErrShardUnavailable (the transport-level
// sentinel every RPC shard wraps) is EXCLUDED: the Router stops routing to
// it and serves degraded — queries merge the remaining shards' exact
// top-k lists and wrap ErrShardUnavailable so callers know the answer may
// be missing the excluded shards' owned users, and write batches keep
// replicating to the healthy shards (the excluded shard must re-boot from
// a snapshot handoff before re-inclusion, because it has missed batches).
// Excluded shards that implement Pinger are re-probed — lazily on the
// query path (at most once per probe interval) or explicitly via Probe —
// and re-included once they report healthy AND trained.
//
// # The fleet
//
// All per-shard routing state — the shard handles, exclusion flags,
// missed-write debt, probe schedule and the versioned ownership table —
// lives in ONE immutable fleet value behind an atomic pointer. Every
// operation loads the pointer once at entry and works against that
// consistent view; an online reshard (resharder.go) builds a complete
// replacement fleet off to the side and retires the old one with a single
// pointer swap, so readers never observe a half-resized deployment.
package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/sigtree"
	"ssrec/internal/telemetry"
)

// DefaultProbeInterval is the BASE interval of the query path's lazy
// re-probe of excluded shards; each consecutive failure doubles a shard's
// own interval (with jitter) up to ProbeBackoffCap — see backoff.go.
const DefaultProbeInterval = 3 * time.Second

// probeTimeout bounds one background health probe sweep.
const probeTimeout = 2 * time.Second

// fleet is one epoch's complete per-shard routing state. A fleet is
// immutable in SHAPE once serving (the slices never grow or shrink; the
// atomic flags inside them are the mutable health state), which is what
// makes the resharding pointer swap safe: a goroutine still holding the
// old fleet keeps operating on retired-but-intact state.
type fleet struct {
	shards []Shard
	// locals holds the wrapped engines when the deployment is in-process
	// (New / FromSnapshot) — Train and SetParallelism need them; a mixed
	// or RPC deployment leaves the slice nil and bootstraps out-of-band.
	locals []*core.Engine
	// replLocals holds the engine grid of a replicated in-process
	// deployment (NewReplicated / FromSnapshotReplicated): replLocals[i][j]
	// is replica j of slot i. Remote replicated deployments leave it nil.
	replLocals [][]*core.Engine
	// partition is this fleet's versioned ownership table; epoch 0 agrees
	// exactly with the legacy model.ShardOf rule, each reshard installs
	// the successor epoch with the replacement fleet.
	partition model.Partition

	// down[i] marks shard i excluded after an ErrShardUnavailable failure;
	// probes paces the lazy re-probe per shard (exponential backoff with
	// jitter — see backoff.go).
	down   []atomic.Bool
	probes *probeSchedule
	// missedWrite[i] records that a replicated write landed on the
	// deployment while shard i was excluded: its state has diverged, and
	// a probe must NOT re-include it unless its boot epoch proves it was
	// re-seeded since (see Probe). debtGen[i] counts recordings — a
	// clearer (Probe, HandoffSnapshot) captures the generation before its
	// decision and only wipes debt that decision actually covers, so a
	// batch landing concurrently keeps the shard excluded.
	missedWrite []atomic.Bool
	debtGen     []atomic.Uint64
	// epochMu guards lastEpoch, the most recent boot-epoch token observed
	// per shard (from probes and post-handoff pings).
	epochMu   sync.Mutex
	lastEpoch []string
}

func newFleet(shards []Shard, locals []*core.Engine, p model.Partition) *fleet {
	return &fleet{
		shards:      shards,
		locals:      locals,
		partition:   p,
		down:        make([]atomic.Bool, len(shards)),
		probes:      newProbeSchedule(len(shards), DefaultProbeInterval),
		missedWrite: make([]atomic.Bool, len(shards)),
		debtGen:     make([]atomic.Uint64, len(shards)),
		lastEpoch:   make([]string, len(shards)),
	}
}

// Router fans the engine API out over the shards of one deployment.
type Router struct {
	fleet atomic.Pointer[fleet]
	// isTrained latches once the deployment reports trained, so the
	// per-request readiness check stops paying a full Stats snapshot
	// (training is one-way: engines never untrain).
	isTrained atomic.Bool

	// supervisor is the replica supervisor attached via StartSupervisor
	// (nil until then); stats surfaces read it.
	supervisor atomic.Pointer[Supervisor]

	// reshardMu is the write gate of an online reshard: every write path
	// (ObserveBatch, registerBroadcast) holds the read side for its whole
	// broadcast+mirror critical section, and the resharder holds the
	// write side only for the two instants that must be atomic against
	// writers — installing the mirror at the snapshot watermark and
	// flipping the fleet pointer. Pure reads never touch it.
	reshardMu sync.RWMutex
	// rsd is the active reshard's mirror state (nil when idle): writers
	// that observe it append their batch to its ring after the old-fleet
	// broadcast, so the replacement fleet can catch up.
	rsd atomic.Pointer[reshardState]
	// lastReshard retains the most recent reshard's status for stats;
	// reshardsDone counts completed flips over the router's lifetime.
	lastReshard  atomic.Pointer[ReshardStatus]
	reshardsDone atomic.Uint64
}

func newRouter(shards []Shard, locals []*core.Engine) *Router {
	r := &Router{}
	r.fleet.Store(newFleet(shards, locals, model.LegacyPartition(len(shards))))
	return r
}

// fl returns the current fleet (never nil after construction).
func (r *Router) fl() *fleet { return r.fleet.Load() }

// recordDebt marks shard i as having missed a replicated write: it must
// re-seed from a snapshot before rejoining. Down is (re-)asserted with
// the debt so a concurrent Probe decision cannot leave the shard
// serving one batch behind.
func (f *fleet) recordDebt(i int) {
	f.missedWrite[i].Store(true)
	f.debtGen[i].Add(1)
	f.down[i].Store(true)
}

// clearDebtIfUnchanged wipes shard i's missed-write debt only when no
// new debt was recorded since the caller captured gen: debt from a batch
// that landed DURING a handoff push or probe decision postdates the
// snapshot that decision was based on and must survive it.
func (f *fleet) clearDebtIfUnchanged(i int, gen uint64) {
	if f.debtGen[i].Load() == gen {
		f.missedWrite[i].Store(false)
	}
}

// recordEpoch stores the latest observed boot epoch for a shard.
func (f *fleet) recordEpoch(i int, epoch string) {
	if epoch == "" {
		return
	}
	f.epochMu.Lock()
	f.lastEpoch[i] = epoch
	f.epochMu.Unlock()
}

func (f *fleet) knownEpoch(i int) string {
	f.epochMu.Lock()
	defer f.epochMu.Unlock()
	return f.lastEpoch[i]
}

// markDown excludes a shard after an unavailable failure.
func (f *fleet) markDown(i int) { f.down[i].Store(true) }

// readyProbeTimeout bounds the readiness classification pings.
const readyProbeTimeout = 2 * time.Second

// ready reports deployment readiness for the batch query path, caching
// the first positive answer. ANY non-excluded shard reporting trained
// answers for the deployment (the trained flag is part of the replicated
// state); the checks fan out in parallel so an unreachable remote shard
// costs at most one timeout, not one per shard. When NO shard reports
// trained the error distinguishes a genuinely untrained deployment
// (ErrNotTrained — locals awaiting Train) from an unreachable or
// blank-awaiting-handoff one (wrapped ErrShardUnavailable): probeable
// shards that fail their ping are excluded on the spot, engaging the
// lazy re-probe machinery even before the first successful query.
func (r *Router) ready(ctx context.Context) error {
	if r.isTrained.Load() {
		return nil
	}
	f := r.fl()
	// Kick the lazy probe here too: with every shard excluded this
	// function short-circuits the serving path (where recommendOne would
	// probe), and without a probe an all-down fleet could never rejoin.
	r.maybeProbe(f)
	type status struct{ trained, unavailable bool }
	sts := make([]status, len(f.shards))
	checked := 0
	var wg sync.WaitGroup
	for i := range f.shards {
		if f.down[i].Load() {
			continue
		}
		checked++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sts[i].trained = f.shards[i].Stats().Trained
			if sts[i].trained {
				return
			}
			if p, ok := f.shards[i].(Pinger); ok {
				pctx, cancel := context.WithTimeout(detach(ctx), readyProbeTimeout)
				defer cancel()
				// A ReplicaSet distinguishes reachable-but-untrained
				// (ErrNotTrained — awaiting Train, not a transport fault)
				// from unreachable; only the latter excludes the slot.
				if _, err := p.Ping(pctx); err != nil && !errors.Is(err, core.ErrNotTrained) {
					sts[i].unavailable = true
				}
			}
		}(i)
	}
	wg.Wait()
	anyUnavailable := checked == 0 // everything already excluded
	for i := range sts {
		if sts[i].trained {
			r.isTrained.Store(true)
			return nil
		}
		if sts[i].unavailable {
			f.markDown(i)
			anyUnavailable = true
		}
	}
	if anyUnavailable {
		return fmt.Errorf("%w: no reachable trained shard", ErrShardUnavailable)
	}
	return core.ErrNotTrained
}

// NewRouter assembles a router over pre-built shards — the entry point for
// RPC and mixed local/remote deployments. Shards must be passed in index
// order.
func NewRouter(shards ...Shard) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard")
	}
	for i, s := range shards {
		if s.Index() != i {
			return nil, fmt.Errorf("shard: shard at position %d reports index %d", i, s.Index())
		}
	}
	return newRouter(shards, nil), nil
}

// New builds an n-shard in-process deployment from one engine Config. The
// config's ShardIndex/ShardCount are overridden per shard; n <= 1 degrades
// to a single-engine deployment behind the same Router surface.
func New(cfg core.Config, n int) *Router {
	if n < 1 {
		n = 1
	}
	shards := make([]Shard, n)
	locals := make([]*core.Engine, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.ShardIndex, c.ShardCount = i, n
		locals[i] = core.New(c)
		shards[i] = NewLocal(i, locals[i])
	}
	return newRouter(shards, locals)
}

// FromSnapshot boots an n-shard in-process deployment from ONE trained
// engine snapshot (core.SaveTo bytes): every shard restores the same
// replicated state and rebuilds only its own leaf partition. This is the
// cheap way to stand up a deployment — one training or one -save run, N
// boots — and the model ssrec-server -model -shards uses.
func FromSnapshot(data []byte, n int) (*Router, error) {
	if n < 1 {
		n = 1
	}
	shards := make([]Shard, n)
	locals := make([]*core.Engine, n)
	for i := 0; i < n; i++ {
		e, err := core.LoadShardFrom(bytes.NewReader(data), i, n)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		locals[i] = e
		shards[i] = NewLocal(i, e)
	}
	return newRouter(shards, locals), nil
}

// NewReplicated builds an in-process deployment of n slots × rep replicas:
// every slot is a ReplicaSet of rep identically-partitioned engines behind
// the same Router surface. rep <= 1 still wraps each slot in a one-replica
// set, so the replica code path is exercised uniformly.
func NewReplicated(cfg core.Config, n, rep int) (*Router, error) {
	if n < 1 {
		n = 1
	}
	if rep < 1 {
		rep = 1
	}
	shards := make([]Shard, n)
	grid := make([][]*core.Engine, n)
	for i := 0; i < n; i++ {
		grid[i] = make([]*core.Engine, rep)
		members := make([]Shard, rep)
		for j := 0; j < rep; j++ {
			c := cfg
			c.ShardIndex, c.ShardCount = i, n
			grid[i][j] = core.New(c)
			members[j] = NewLocal(i, grid[i][j])
		}
		rs, err := NewReplicaSet(i, members...)
		if err != nil {
			return nil, err
		}
		shards[i] = rs
	}
	r := newRouter(shards, nil)
	r.fl().replLocals = grid
	return r, nil
}

// FromSnapshotReplicated boots an n-slot × rep-replica in-process
// deployment from ONE trained-engine snapshot: every replica of slot i
// restores the same replicated state and rebuilds slot i's leaf partition,
// so any replica answers a slot query bit-identically.
func FromSnapshotReplicated(data []byte, n, rep int) (*Router, error) {
	if n < 1 {
		n = 1
	}
	if rep < 1 {
		rep = 1
	}
	shards := make([]Shard, n)
	grid := make([][]*core.Engine, n)
	for i := 0; i < n; i++ {
		grid[i] = make([]*core.Engine, rep)
		members := make([]Shard, rep)
		for j := 0; j < rep; j++ {
			e, err := core.LoadShardFrom(bytes.NewReader(data), i, n)
			if err != nil {
				return nil, fmt.Errorf("slot %d replica %d: %w", i, j, err)
			}
			grid[i][j] = e
			members[j] = NewLocal(i, e)
		}
		rs, err := NewReplicaSet(i, members...)
		if err != nil {
			return nil, err
		}
		shards[i] = rs
	}
	r := newRouter(shards, nil)
	r.fl().replLocals = grid
	return r, nil
}

// Shards reports the deployment width.
func (r *Router) Shards() int { return len(r.fl().shards) }

// Partition reports the current fleet's versioned ownership table.
func (r *Router) Partition() model.Partition { return r.fl().partition }

// Replicas reports the replication factor of the widest slot (1 for a
// plain unreplicated deployment).
func (r *Router) Replicas() int {
	rep := 1
	for _, s := range r.fl().shards {
		if rs, ok := s.(*ReplicaSet); ok && rs.Replicas() > rep {
			rep = rs.Replicas()
		}
	}
	return rep
}

// ShardStats snapshots every shard, in index order. The snapshots fan
// out in parallel, and excluded shards report zero-valued stats without
// a round trip — a monitoring poll must not pay a network timeout per
// dead shard.
func (r *Router) ShardStats() []Stats {
	f := r.fl()
	out := make([]Stats, len(f.shards))
	var wg sync.WaitGroup
	for i, s := range f.shards {
		if f.down[i].Load() {
			out[i] = Stats{Shard: s.Index()}
			continue
		}
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			out[i] = s.Stats()
		}(i, s)
	}
	wg.Wait()
	return out
}

// Owner returns the shard index that materialises a user's leaves under
// the current partition epoch.
func (r *Router) Owner(userID string) int {
	return r.fl().partition.Owner(userID)
}

// Down lists the currently excluded shard indices, ascending.
func (r *Router) Down() []int {
	f := r.fl()
	var out []int
	for i := range f.down {
		if f.down[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// SetProbeInterval adjusts the BASE interval of the lazy re-probe (each
// shard backs off exponentially from this base while it keeps failing,
// capped at ProbeBackoffCap, and resets to it on the first success);
// d <= 0 restores the default. Setting the base rewinds every shard's
// backoff and makes it due immediately.
func (r *Router) SetProbeInterval(d time.Duration) {
	if d <= 0 {
		d = DefaultProbeInterval
	}
	r.fl().probes.setBase(d)
}

// Probe synchronously re-checks every excluded shard and re-includes the
// ones that pass. A shard implementing Pinger must report healthy,
// identity-correct and trained — and, when replicated writes landed
// while it was out (missedWrite), its boot epoch must have CHANGED since
// last observed, proving it was re-seeded from a snapshot rather than
// left running pre-exclusion state; a merely-reachable stale shard would
// silently serve rankings missing every batch it skipped. Shards without
// a probe surface (in-process) are re-included optimistically. Probe
// returns the re-included indices.
func (r *Router) Probe(ctx context.Context) []int {
	f := r.fl()
	var up []int
	for i := range f.shards {
		if !f.down[i].Load() {
			continue
		}
		if f.probeOne(ctx, i) {
			f.probes.success(i)
			up = append(up, i)
		} else {
			f.probes.failure(i)
		}
	}
	return up
}

// probeOne re-checks one excluded shard and re-includes it when it passes;
// reports whether the shard rejoined. Extracted from Probe so the lazy
// query-path probe can sweep just the shards whose backoff is due.
func (f *fleet) probeOne(ctx context.Context, i int) bool {
	gen := f.debtGen[i].Load()
	if p, ok := f.shards[i].(Pinger); ok {
		epoch, err := p.Ping(ctx)
		if err != nil {
			return false
		}
		if f.missedWrite[i].Load() {
			// The shard missed replicated writes: re-inclusion is safe
			// ONLY on proof of a re-seed, i.e. a boot epoch that changed
			// from a recorded baseline. No epoch support, no baseline,
			// or an unchanged epoch all FAIL CLOSED — recording the
			// observed epoch as the baseline, so that a direct operator
			// handoff to the shardd becomes provable on the next probe.
			known := f.knownEpoch(i)
			if epoch == "" || known == "" || epoch == known {
				f.recordEpoch(i, epoch)
				return false
			}
			f.clearDebtIfUnchanged(i, gen)
		}
		f.recordEpoch(i, epoch)
	} else {
		// No probe surface (in-process): re-include optimistically.
		f.clearDebtIfUnchanged(i, gen)
	}
	f.down[i].Store(false)
	// Close the probe/broadcast race: debt recorded while we were
	// deciding survived the generation-guarded clear above — stay
	// excluded rather than serving one batch behind.
	if f.missedWrite[i].Load() {
		f.down[i].Store(true)
		return false
	}
	return true
}

// maybeProbe kicks an asynchronous probe of the excluded shards whose
// backoff interval has elapsed, so a recovered shard rejoins without an
// operator call but a dead one costs no per-query latency — and, unlike a
// fixed-interval sweep, a shard that stays dead is probed less and less
// often (ProbeBackoffCap-bounded) instead of every interval forever.
func (r *Router) maybeProbe(f *fleet) {
	var down []int
	for i := range f.down {
		if f.down[i].Load() {
			down = append(down, i)
		}
	}
	if len(down) == 0 {
		return
	}
	due := f.probes.claimDue(down)
	if len(due) == 0 {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
		defer cancel()
		for _, i := range due {
			if !f.down[i].Load() {
				continue
			}
			if f.probeOne(ctx, i) {
				f.probes.success(i)
			} else {
				f.probes.failure(i)
			}
		}
	}()
}

// HandoffSnapshot ships a trained-engine snapshot (core.SaveTo bytes) to
// every shard that implements SnapshotReceiver and re-includes it — the
// boot path of a remote deployment and the recovery path of an excluded
// shard (which has missed replicated batches and MUST reboot from a fresh
// snapshot before rejoining). In-process shards are skipped; they boot
// through New/FromSnapshot/Train.
func (r *Router) HandoffSnapshot(ctx context.Context, snapshot []byte) error {
	f := r.fl()
	for i, s := range f.shards {
		sr, ok := s.(SnapshotReceiver)
		if !ok {
			continue
		}
		// Capture the debt generation BEFORE the push: a broadcast that
		// lands while the snapshot is in flight records debt the snapshot
		// cannot contain, and the generation-guarded clear below leaves
		// that debt (and the exclusion) in place.
		gen := f.debtGen[i].Load()
		if err := sr.Handoff(ctx, snapshot); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		// The handoff re-seeded the shard: clear the debt it covers and
		// record the fresh boot epoch so later probes have a baseline.
		f.clearDebtIfUnchanged(i, gen)
		f.down[i].Store(false)
		if p, ok := s.(Pinger); ok {
			if epoch, err := p.Ping(ctx); err == nil {
				f.recordEpoch(i, epoch)
			}
		}
		// Debt that survived the guarded clear keeps the shard excluded —
		// it rejoins on the next handoff (or probe after a re-seed).
		if f.missedWrite[i].Load() {
			f.down[i].Store(true)
		}
	}
	return nil
}

// Train bootstraps an in-process deployment: shard 0 trains once on the
// full stream, then every other shard boots from its snapshot
// (LoadShardFrom) — identical replicated state, own leaf partition — so
// an n-shard deployment costs ONE training, not n.
func (r *Router) Train(items []model.Item, interactions []model.Interaction, resolve func(string) (model.Item, bool)) error {
	f := r.fl()
	if f.replLocals != nil {
		return r.trainReplicated(f, items, interactions, resolve)
	}
	if f.locals == nil {
		return fmt.Errorf("shard: Train requires an in-process deployment (New or FromSnapshot); remote deployments train out-of-band and boot via HandoffSnapshot")
	}
	if err := f.locals[0].Train(items, interactions, resolve); err != nil {
		return err
	}
	if len(f.locals) == 1 {
		return nil
	}
	var buf bytes.Buffer
	if err := f.locals[0].SaveTo(&buf); err != nil {
		return fmt.Errorf("shard: snapshot shard 0: %w", err)
	}
	data := buf.Bytes()
	for i := 1; i < len(f.locals); i++ {
		e, err := core.LoadShardFrom(bytes.NewReader(data), i, len(f.locals))
		if err != nil {
			return fmt.Errorf("shard %d: boot from snapshot: %w", i, err)
		}
		f.locals[i] = e
		f.shards[i] = NewLocal(i, e)
	}
	return nil
}

// trainReplicated bootstraps a replicated in-process deployment: replica 0
// of slot 0 trains once on the full stream, then every other replica of
// every slot boots from its snapshot (LoadShardFrom) — identical
// replicated state, its slot's leaf partition — so an n×rep deployment
// still costs ONE training.
func (r *Router) trainReplicated(f *fleet, items []model.Item, interactions []model.Interaction, resolve func(string) (model.Item, bool)) error {
	if err := f.replLocals[0][0].Train(items, interactions, resolve); err != nil {
		return err
	}
	n := len(f.replLocals)
	if n == 1 && len(f.replLocals[0]) == 1 {
		return nil
	}
	var buf bytes.Buffer
	if err := f.replLocals[0][0].SaveTo(&buf); err != nil {
		return fmt.Errorf("shard: snapshot slot 0: %w", err)
	}
	data := buf.Bytes()
	for i := range f.replLocals {
		for j := range f.replLocals[i] {
			if i == 0 && j == 0 {
				continue
			}
			e, err := core.LoadShardFrom(bytes.NewReader(data), i, n)
			if err != nil {
				return fmt.Errorf("slot %d replica %d: boot from snapshot: %w", i, j, err)
			}
			f.replLocals[i][j] = e
			f.shards[i].(*ReplicaSet).setReplica(j, NewLocal(i, e))
		}
	}
	return nil
}

// SetParallelism adjusts the intra-query worker count of every in-process
// shard (no-op entries for non-local shards; remote shards take the
// per-call core.WithParallelism option or their shardd -partitions flag).
func (r *Router) SetParallelism(n int) {
	f := r.fl()
	for _, e := range f.locals {
		if e != nil {
			e.SetParallelism(n)
		}
	}
	for _, row := range f.replLocals {
		for _, e := range row {
			if e != nil {
				e.SetParallelism(n)
			}
		}
	}
}

// SetFullRefresh toggles the dirty-category-mask refresh optimisation on
// every in-process shard (core.Engine.SetFullRefresh; true restores the
// rebuild-everything reference path). Refresh policy is shard-local
// maintenance — it never changes what a shard serves, only how it gets
// there — so remote shards keep their own configuration.
func (r *Router) SetFullRefresh(on bool) {
	f := r.fl()
	for _, e := range f.locals {
		if e != nil {
			e.SetFullRefresh(on)
		}
	}
	for _, row := range f.replLocals {
		for _, e := range row {
			if e != nil {
				e.SetFullRefresh(on)
			}
		}
	}
}

// SetIncrementalFold toggles the incremental BiHMM fold-in
// (core.Engine.SetIncrementalFold) on every in-process shard; like
// SetFullRefresh this is shard-local maintenance policy.
func (r *Router) SetIncrementalFold(on bool) {
	f := r.fl()
	for _, e := range f.locals {
		if e != nil {
			e.SetIncrementalFold(on)
		}
	}
	for _, row := range f.replLocals {
		for _, e := range row {
			if e != nil {
				e.SetIncrementalFold(on)
			}
		}
	}
}

// detach strips cancellation for the broadcast legs: a micro-batch (or a
// registration batch) is the atomic replication unit — if half the shards
// applied it and half refused on a cancelled context, the replicated
// dictionaries would drift apart permanently. Cancellation therefore
// applies BETWEEN batches (checked at entry), never inside one.
func detach(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return context.WithoutCancel(ctx)
}

// degradedErr wraps ErrShardUnavailable naming the excluded shards.
func degradedErr(excluded []int) error {
	sort.Ints(excluded)
	return fmt.Errorf("%w: shard(s) %v excluded", ErrShardUnavailable, excluded)
}

// ObserveBatch ingests one micro-batch of the interaction stream: the SAME
// batch is broadcast to every shard in parallel (each maintains the
// replicated dictionaries for all users and refreshes leaves only for the
// ones it owns). The merged report matches the single-engine call:
// Applied/Rejected/Errors are identical on every shard (validation is
// deterministic), and Flushed sums the per-shard owned refreshes —
// exactly the users a single engine would have refreshed, divided N ways.
//
// Degraded mode: excluded shards are skipped and a shard that fails with
// ErrShardUnavailable mid-broadcast is excluded; the call then returns the
// healthy shards' merged report together with a wrapped
// ErrShardUnavailable, because the batch was NOT replicated everywhere —
// the excluded shards must reboot from a snapshot handoff to rejoin.
func (r *Router) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return core.BatchReport{}, err
		}
	}
	if len(batch) == 0 {
		return core.BatchReport{}, nil
	}
	// The whole broadcast+mirror is one reshard critical section: the
	// resharder's snapshot watermark and fleet flip both wait for
	// in-flight writes, so every batch lands exactly once on the
	// replacement fleet — in the snapshot, in the mirror ring, or after
	// the flip.
	r.reshardMu.RLock()
	defer r.reshardMu.RUnlock()
	f := r.fl()
	r.maybeProbe(f) // write-only workloads must also drive shard recovery
	bctx := detach(ctx)
	bctx, obsSpan := telemetry.StartSpan(bctx, "router.observe")
	obsSpan.SetAttr("batch", strconv.Itoa(len(batch)))
	defer obsSpan.End()
	reps := make([]core.BatchReport, len(f.shards))
	errs := make([]error, len(f.shards))
	ran := make([]bool, len(f.shards))
	var excluded []int
	var wg sync.WaitGroup
	for i, s := range f.shards {
		if f.down[i].Load() {
			excluded = append(excluded, i)
			continue
		}
		ran[i] = true
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			reps[i], errs[i] = s.ObserveBatch(bctx, batch)
		}(i, s)
	}
	wg.Wait()
	var rep core.BatchReport
	var fatal error
	base := false
	anyUnavail := false
	var behind []int // shards that did not (or may not have) applied the batch
	for i := range f.shards {
		if !ran[i] {
			continue
		}
		if errs[i] != nil {
			if errors.Is(errs[i], ErrShardUnavailable) {
				f.markDown(i)
				anyUnavail = true
				excluded = append(excluded, i)
				continue
			}
			behind = append(behind, i)
			// A clean non-transport error (4xx, decode failure) proves the
			// shardd REFUSED the batch — it did not apply it, while its
			// siblings may have. The call fails loudly with this error, and
			// the debt below keeps the shard from silently serving behind.
			if fatal == nil {
				fatal = fmt.Errorf("shard %d: %w", i, errs[i])
			}
			continue
		}
		if !base {
			// Applied/Rejected/Errors are deterministic and identical on
			// every shard; take them from the first healthy report.
			rep = reps[i]
			rep.Flushed = 0
			base = true
		}
		rep.Flushed += reps[i].Flushed
	}
	// Missed-write accounting, BEFORE any error return so no path skips
	// it. Every shard that skipped (pre-excluded) or failed the batch owes
	// a re-seed IF the batch may have mutated its siblings: a healthy
	// report proves exactly what landed (Applied > 0 — validation is
	// deterministic, so Applied == 0 proves a no-op everywhere), and an
	// unavailable leg proves nothing — the shardd applies fully-received
	// bodies under a detached context, so it MAY have applied — which
	// records debt conservatively. recordDebt re-asserts down, closing
	// the race with a concurrent Probe that cleared the flag before this
	// batch's debt landed.
	mutated := (base && rep.Applied > 0) || (!base && anyUnavail)
	if mutated {
		for _, i := range excluded {
			f.recordDebt(i)
		}
		for _, i := range behind {
			f.recordDebt(i)
		}
	}
	// Mirror the batch to an in-flight reshard AFTER the old fleet
	// applied it: the replacement fleet replays the ring in arrival
	// order, so a sequential writer's stream lands on it in exactly the
	// order the old fleet saw.
	if rsd := r.rsd.Load(); rsd != nil {
		rsd.mirrorObserve(batch)
	}
	if fatal != nil {
		return rep, fatal
	}
	if len(excluded) > 0 {
		return rep, degradedErr(excluded)
	}
	return rep, nil
}

// registerBroadcast runs the deterministic batch prologue on every shard
// in parallel. Uncancellable for the same drift reason as ObserveBatch.
// Unavailable shards are excluded rather than failing the query — the
// degraded-mode error surfaces on the query leg that follows.
func (r *Router) registerBroadcast(ctx context.Context, items []model.Item) error {
	r.reshardMu.RLock()
	defer r.reshardMu.RUnlock()
	f := r.fl()
	bctx := detach(ctx)
	bctx, regSpan := telemetry.StartSpan(bctx, "router.register")
	defer regSpan.End()
	errs := make([]error, len(f.shards))
	changed := make([]bool, len(f.shards))
	ran := make([]bool, len(f.shards))
	var wg sync.WaitGroup
	for i, s := range f.shards {
		if f.down[i].Load() {
			continue
		}
		ran[i] = true
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			changed[i], errs[i] = s.RegisterItems(bctx, items)
		}(i, s)
	}
	wg.Wait()
	// The dictionaries are replicated, so every healthy shard agrees on
	// whether the batch contained anything new: a successful leg with
	// changed == false PROVES the broadcast was a no-op everywhere (warm
	// re-registration, the overwhelmingly common query path) and no debt
	// accrues — otherwise lazy re-inclusion would be unreachable under
	// ordinary read traffic. A batch that DID advance the state — or
	// whose outcome is unknowable because no leg succeeded (a failed
	// remote leg may still have applied server-side) — leaves every
	// skipped or failed shard owing a re-seed.
	anySuccess, advanced, anyUnavail := false, false, false
	var fatal error
	for i := range f.shards {
		if !ran[i] {
			continue
		}
		if errs[i] == nil {
			anySuccess = true
			advanced = advanced || changed[i]
			continue
		}
		if !errors.Is(errs[i], ErrShardUnavailable) {
			// A clean refusal: this shard provably did not register the
			// batch; debt below if its siblings may have.
			if fatal == nil {
				fatal = fmt.Errorf("shard %d: %w", i, errs[i])
			}
			continue
		}
		anyUnavail = true
		f.markDown(i)
	}
	// Debt accrues for every shard that skipped or failed the broadcast
	// when it may have advanced the replicated state elsewhere: proven by
	// a successful changed=true leg, or unknowable because only
	// unavailable legs ran (they may have applied server-side). A
	// successful changed=false leg proves a no-op everywhere, so warm
	// re-registrations — the common query path — accrue no debt and lazy
	// re-inclusion stays reachable under ordinary read traffic.
	mutated := (anySuccess && advanced) || (!anySuccess && anyUnavail)
	if len(items) > 0 && mutated {
		for i := range f.shards {
			if !ran[i] || errs[i] != nil {
				f.recordDebt(i)
			}
		}
	}
	// Mirror registrations that (may have) advanced the replicated
	// dictionaries; a proven no-op is a no-op on the replacement fleet
	// too (it boots from a snapshot that already contains those items).
	if len(items) > 0 && mutated {
		if rsd := r.rsd.Load(); rsd != nil {
			rsd.mirrorRegister(items)
		}
	}
	return fatal
}

// recommendOne scatters one item to every healthy shard under one shared
// bound and gathers the per-shard heaps into the global top-k. Stats are
// summed; Partitions accumulates the workers used across shards. With
// shards excluded the merged result is partial (their owned users are
// missing) and the call wraps ErrShardUnavailable alongside it.
func (r *Router) recommendOne(ctx context.Context, v model.Item, o core.QueryOptions) (core.Result, error) {
	f := r.fl()
	r.maybeProbe(f)
	if len(f.shards) == 1 {
		if f.down[0].Load() {
			return core.Result{ItemID: v.ID}, degradedErr([]int{0})
		}
		res, err := f.shards[0].Recommend(ctx, v, o, nil)
		if err != nil && errors.Is(err, ErrShardUnavailable) {
			f.markDown(0)
		}
		return res, err
	}
	ctx, scatterSpan := telemetry.StartSpan(ctx, "router.scatter")
	scatterSpan.SetAttr("shards", strconv.Itoa(len(f.shards)))
	b := sigtree.NewBound()
	parts := make([]core.Result, len(f.shards))
	errs := make([]error, len(f.shards))
	ran := make([]bool, len(f.shards))
	var excluded []int
	var wg sync.WaitGroup
	for i, s := range f.shards {
		if f.down[i].Load() {
			excluded = append(excluded, i)
			continue
		}
		ran[i] = true
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			lctx, leg := telemetry.StartSpan(ctx, "router.shard")
			leg.SetAttr("shard", strconv.Itoa(i))
			parts[i], errs[i] = s.Recommend(lctx, v, o, b)
			leg.End()
		}(i, s)
	}
	wg.Wait()
	scatterSpan.End()
	res := core.Result{ItemID: v.ID}
	lists := make([][]model.Recommendation, 0, len(parts))
	var firstErr error
	for i := range parts {
		if !ran[i] {
			continue
		}
		if errs[i] != nil && errors.Is(errs[i], ErrShardUnavailable) {
			f.markDown(i)
			excluded = append(excluded, i)
			continue
		}
		lists = append(lists, parts[i].Recommendations)
		res.Stats.Add(parts[i].Stats)
		res.Stats.Partitions += parts[i].Stats.Partitions
		if firstErr == nil && errs[i] != nil {
			firstErr = errs[i]
		}
	}
	res.Recommendations = sigtree.MergeTopK(o.K, lists...)
	if firstErr == nil && len(excluded) > 0 {
		firstErr = degradedErr(excluded)
	}
	return res, firstErr
}

// RecommendCtx mirrors Engine.RecommendCtx over the deployment: register
// the item everywhere (deterministically), then scatter-gather the query.
// In degraded mode it returns the partial result AND a wrapped
// ErrShardUnavailable.
func (r *Router) RecommendCtx(ctx context.Context, v model.Item, opts ...core.Option) (core.Result, error) {
	o := core.ResolveOptions(opts...)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return core.Result{ItemID: v.ID}, err
		}
	}
	if err := r.registerBroadcast(ctx, []model.Item{v}); err != nil {
		return core.Result{ItemID: v.ID}, err
	}
	return r.recommendOne(ctx, v, o)
}

// RecommendBatch mirrors Engine.RecommendBatch over the deployment:
// results[i] answers items[i]; item-scoped failures (including degraded
// partial results) land in results[i].Err while the call-scoped error
// reports cancellation or an untrained deployment. The registration
// prologue is broadcast ONCE in batch order — per-item registration under
// the worker pool would advance the shards' producer layers in
// nondeterministic order.
func (r *Router) RecommendBatch(ctx context.Context, items []model.Item, opts ...core.Option) ([]core.Result, error) {
	o := core.ResolveOptions(opts...)
	results := make([]core.Result, len(items))
	if len(items) == 0 {
		return results, nil
	}
	if err := r.ready(ctx); err != nil {
		for i := range results {
			results[i] = core.Result{ItemID: items[i].ID, Err: err}
		}
		return results, err
	}
	// Registration runs BEFORE the cancellation check, mirroring
	// Engine.RecommendBatch exactly: a cancelled batch still registers its
	// items there, so the sharded deployment must too or the producer
	// layers would drift apart from the single engine's.
	if err := r.registerBroadcast(ctx, items); err != nil {
		return results, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			for i := range results {
				results[i] = core.Result{ItemID: items[i].ID, Err: err}
			}
			return results, err
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				res, err := r.recommendOne(ctx, items[i], o)
				if err != nil {
					res.Err = err
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return results, err
		}
	}
	return results, nil
}

// ---- v1-parity surface (server Backend, bench harness) ----

// Recommend is the v1 query over the deployment. Unlike the single
// engine's v1 path it reports nothing on failure (nil); the v2 calls carry
// the errors. Degraded-mode partial results ARE returned (v1 has no error
// channel to qualify them).
func (r *Router) Recommend(v model.Item, k int) []model.Recommendation {
	res, err := r.RecommendCtx(context.Background(), v, core.WithK(k))
	if err != nil && !errors.Is(err, ErrShardUnavailable) {
		return nil
	}
	return res.Recommendations
}

// Observe is the v1 single-interaction ingest: a one-entry broadcast.
func (r *Router) Observe(ir model.Interaction, v model.Item) {
	_, _ = r.ObserveBatch(context.Background(), []core.Observation{
		{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp},
	})
}

// RegisterItem broadcasts one item registration.
func (r *Router) RegisterItem(v model.Item) {
	_ = r.registerBroadcast(context.Background(), []model.Item{v})
}

// Users counts tracked profiles (replicated — the first healthy shard's
// figure is the deployment's).
func (r *Router) Users() int { return r.fl().firstUpStats().Users }

// Parallelism reports the intra-query worker count of the first healthy
// shard.
func (r *Router) Parallelism() int { return r.fl().firstUpStats().Parallelism }

// firstUpStats snapshots the first non-excluded shard. With every shard
// excluded it reports zero values WITHOUT a round trip — a monitoring
// poll against a fully partitioned fleet must not hang on a dead
// shard's timeout.
func (f *fleet) firstUpStats() Stats {
	for i := range f.shards {
		if !f.down[i].Load() {
			return f.shards[i].Stats()
		}
	}
	return Stats{}
}

// IndexStats reports the deployment-level index view: the routing
// structures are replicated, so any healthy shard's block/tree/hash
// figures are the deployment's, and Users covers every assigned user.
func (r *Router) IndexStats() core.IndexStatsView {
	st := r.fl().firstUpStats()
	return core.IndexStatsView{
		Blocks:   st.Blocks,
		Trees:    st.Trees,
		Users:    st.Users,
		HashKeys: st.HashKeys,
	}
}
