package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
)

func bootRouter(t testing.TB, n int) *Router {
	t.Helper()
	fx := fixture(t)
	r, err := FromSnapshot(fx.Snapshot, n)
	if err != nil {
		t.Fatalf("boot %d-shard router: %v", n, err)
	}
	return r
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(); err == nil {
		t.Error("empty router accepted")
	}
	eng := core.New(core.Config{Categories: []string{"c"}})
	if _, err := NewRouter(NewLocal(1, eng)); err == nil {
		t.Error("out-of-order shard index accepted")
	}
	if r, err := NewRouter(NewLocal(0, eng)); err != nil || r.Shards() != 1 {
		t.Errorf("single-shard router: %v, %v", r, err)
	}
}

func TestRouterUntrained(t *testing.T) {
	r := New(core.Config{Categories: []string{"cat"}}, 3)
	results, err := r.RecommendBatch(context.Background(), []model.Item{{ID: "x", Category: "cat"}})
	if !errors.Is(err, core.ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	if len(results) != 1 || !errors.Is(results[0].Err, core.ErrNotTrained) {
		t.Fatalf("results = %+v", results)
	}
}

func TestRouterUnknownCategory(t *testing.T) {
	r := bootRouter(t, 2)
	res, err := r.RecommendCtx(context.Background(), model.Item{ID: "alien", Category: "no-such"})
	if !errors.Is(err, core.ErrUnknownCategory) {
		t.Fatalf("err = %v, want ErrUnknownCategory", err)
	}
	if len(res.Recommendations) != 0 {
		t.Fatalf("unexpected recommendations: %v", res.Recommendations)
	}
}

// TestRouterV1Parity: the v1-shaped surface (Recommend / Observe /
// RegisterItem / Users / IndexStats) behaves like the single engine's.
func TestRouterV1Parity(t *testing.T) {
	fx := fixture(t)
	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatal(err)
	}
	r := bootRouter(t, 3)
	if r.Users() != reference.Users() {
		t.Errorf("Users: router %d, engine %d", r.Users(), reference.Users())
	}
	refStats, _ := reference.IndexStats()
	if got := r.IndexStats(); got.Trees != refStats.Trees || got.Blocks != refStats.Blocks {
		t.Errorf("IndexStats: router %+v, engine %+v", got, refStats)
	}
	for i := 0; i < 5; i++ {
		v := fx.Queries[i]
		want := reference.Recommend(v, 7)
		got := r.Recommend(v, 7)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("item %s: v1 Recommend diverged\n got %v\nwant %v", v.ID, got, want)
		}
		o := fx.Obs[i]
		reference.Observe(model.Interaction{UserID: o.UserID, ItemID: o.Item.ID, Timestamp: o.Timestamp}, o.Item)
		r.Observe(model.Interaction{UserID: o.UserID, ItemID: o.Item.ID, Timestamp: o.Timestamp}, o.Item)
	}
}

// TestRouterConcurrentObserveRecommend is the -race hammer through the
// scatter-gather path: concurrent ObserveBatch writers and RecommendBatch
// readers drive a 3-shard deployment; results must stay well-formed
// (sorted, bounded) under the race detector. The single-engine counterpart
// lives in internal/core/concurrent_test.go.
func TestRouterConcurrentObserveRecommend(t *testing.T) {
	fx := fixture(t)
	r := bootRouter(t, 3)
	const (
		readers  = 4
		writers  = 2
		nObs     = 1024
		nQueries = 60
	)
	obs := fx.Obs[:nObs]
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for lo := w * (nObs / writers); lo < (w+1)*(nObs/writers); lo += 64 {
				hi := min(lo+64, (w+1)*(nObs/writers))
				if _, err := r.ObserveBatch(context.Background(), obs[lo:hi]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < nQueries; i += readers {
				q := queryWindow(fx.Queries, i)
				results, err := r.RecommendBatch(context.Background(), q, core.WithK(10))
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				for _, res := range results {
					if res.Err != nil {
						t.Errorf("reader %d item %s: %v", g, res.ItemID, res.Err)
						return
					}
					if len(res.Recommendations) > 10 {
						t.Errorf("reader %d: %d recs", g, len(res.Recommendations))
						return
					}
					for j := 1; j < len(res.Recommendations); j++ {
						if model.ByScoreDesc(res.Recommendations[j], res.Recommendations[j-1]) {
							t.Errorf("reader %d: unsorted result under concurrency", g)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// settleGoroutines waits for the goroutine count to return to (near) the
// recorded baseline — the leak guard of the cancellation tests. The small
// tolerance absorbs runtime/testing helpers.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked after cancellation: %d > baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterCancellation drives cancellation through the router
// scatter-gather at several deadlines: every run must either complete
// cleanly or report the context error on the call AND on every
// undelivered item, and the scatter goroutines must always be joined
// (leak-checked against a goroutine-count baseline).
func TestRouterCancellation(t *testing.T) {
	r := bootRouter(t, 4)
	fx := fixture(t)
	items := make([]model.Item, 0, 64)
	for i := 0; i < 64; i++ {
		items = append(items, fx.Queries[i%len(fx.Queries)])
	}
	// Warm the deployment so registration is not part of the timing.
	if _, err := r.RecommendBatch(context.Background(), items, core.WithK(10)); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	base := runtime.NumGoroutine()
	sawCancel := false
	for _, timeout := range []time.Duration{time.Nanosecond, 50 * time.Microsecond, 500 * time.Microsecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		results, err := r.RecommendBatch(ctx, items, core.WithK(10))
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("timeout %v: err = %v, want DeadlineExceeded", timeout, err)
			}
			sawCancel = true
			nErr := 0
			for _, res := range results {
				if res.Err != nil {
					if !errors.Is(res.Err, context.DeadlineExceeded) {
						t.Fatalf("timeout %v: item err = %v", timeout, res.Err)
					}
					nErr++
				}
			}
			if nErr == 0 && len(results) > 0 {
				t.Errorf("timeout %v: call cancelled but no item reported it", timeout)
			}
		}
		settleGoroutines(t, base)
	}
	if !sawCancel {
		t.Fatal("no deadline fired — timeouts too generous for this machine")
	}
	// An already-cancelled context must short-circuit before any scatter.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RecommendCtx(ctx, items[0], core.WithK(5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RecommendCtx: %v", err)
	}
	if _, err := r.ObserveBatch(ctx, fx.Obs[:8]); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ObserveBatch: %v", err)
	}
	settleGoroutines(t, base)
}

// TestRouterCancelledBatchStillRegisters: Engine.RecommendBatch registers
// its items BEFORE honouring cancellation, so the router must too — a
// cancelled batch that skipped registration on the shards would drift
// their producer layers away from the single engine's for every later
// query (regression test for exactly that bug).
func TestRouterCancelledBatchStillRegisters(t *testing.T) {
	fx := fixture(t)
	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatal(err)
	}
	r := bootRouter(t, 2)
	fresh := fx.Queries[len(fx.Queries)-1]
	fresh.ID = "cancel-reg-probe"
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := reference.RecommendBatch(ctx, []model.Item{fresh}, core.WithK(5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("engine err = %v", err)
	}
	if _, err := r.RecommendBatch(ctx, []model.Item{fresh}, core.WithK(5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("router err = %v", err)
	}
	// Both deployments registered the item during the cancelled call; the
	// follow-up live queries must therefore stay identical.
	for _, v := range []model.Item{fresh, fx.Queries[0]} {
		want, werr := reference.RecommendCtx(context.Background(), v, core.WithK(10))
		got, gerr := r.RecommendCtx(context.Background(), v, core.WithK(10))
		if werr != nil || gerr != nil {
			t.Fatalf("follow-up errs: %v / %v", werr, gerr)
		}
		if !reflect.DeepEqual(got.Recommendations, want.Recommendations) {
			t.Fatalf("post-cancellation drift on %s:\n got %v\nwant %v", v.ID, got.Recommendations, want.Recommendations)
		}
	}
}

// TestRouterObserveBatchAtomicity: cancellation mid-stream must not let
// replicas drift — a batch either lands on every shard or on none, so the
// deployment stays conformant afterwards.
func TestRouterObserveBatchAtomicity(t *testing.T) {
	fx := fixture(t)
	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatal(err)
	}
	r := bootRouter(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	// Batches 0,1 land; then a cancelled context rejects batch 2 entirely.
	for i := 0; i < 2; i++ {
		chunk := fx.Obs[i*64 : (i+1)*64]
		if _, err := r.ObserveBatch(ctx, chunk); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if _, err := reference.ObserveBatch(context.Background(), chunk); err != nil {
			t.Fatalf("reference batch %d: %v", i, err)
		}
	}
	cancel()
	if _, err := r.ObserveBatch(ctx, fx.Obs[128:192]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: err = %v", err)
	}
	// The rejected batch touched nothing: the deployment still matches the
	// reference engine exactly.
	for i := 0; i < 4; i++ {
		v := fx.Queries[i]
		want, werr := reference.RecommendCtx(context.Background(), v, core.WithK(10))
		got, gerr := r.RecommendCtx(context.Background(), v, core.WithK(10))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("item %s: errs %v vs %v", v.ID, gerr, werr)
		}
		if !reflect.DeepEqual(got.Recommendations, want.Recommendations) {
			t.Fatalf("item %s: post-cancellation divergence\n got %v\nwant %v", v.ID, got.Recommendations, want.Recommendations)
		}
	}
}

func TestFromSnapshotGarbage(t *testing.T) {
	if _, err := FromSnapshot([]byte("not a snapshot"), 2); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestRouterTrain(t *testing.T) {
	fx := fixture(t)
	_ = fx
	cfg := dsConfig(t)
	r := New(cfg.engineCfg, 2)
	if err := r.Train(cfg.items, cfg.irs, cfg.resolve); err != nil {
		t.Fatalf("Train: %v", err)
	}
	st := r.ShardStats()
	if !st[0].Trained || !st[1].Trained {
		t.Fatalf("shards untrained after Train: %+v", st)
	}
	if st[0].OwnedUsers+st[1].OwnedUsers != st[0].Users {
		t.Fatalf("ownership not a partition: %+v", st)
	}
	res, err := r.RecommendCtx(context.Background(), cfg.query, core.WithK(5))
	if err != nil {
		t.Fatalf("RecommendCtx: %v", err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("no recommendations from trained deployment")
	}
}

// dsConfig builds a tiny training corpus for Train-path tests.
type trainFixture struct {
	engineCfg core.Config
	items     []model.Item
	irs       []model.Interaction
	resolve   func(string) (model.Item, bool)
	query     model.Item
}

func dsConfig(t testing.TB) trainFixture {
	t.Helper()
	const cat = "music"
	byID := map[string]model.Item{}
	var items []model.Item
	var irs []model.Interaction
	ts := int64(0)
	for i := 0; i < 40; i++ {
		ts++
		v := model.Item{
			ID: fmt.Sprintf("it%02d", i), Category: cat, Producer: fmt.Sprintf("up%d", i%3),
			Entities: []string{fmt.Sprintf("e%d", i%7), "shared"}, Timestamp: ts,
		}
		items = append(items, v)
		byID[v.ID] = v
		for u := 0; u < 6; u++ {
			if (i+u)%2 == 0 {
				irs = append(irs, model.Interaction{
					UserID: fmt.Sprintf("user%d", u), ItemID: v.ID, Timestamp: ts + 1,
				})
			}
		}
	}
	return trainFixture{
		engineCfg: core.Config{Categories: []string{cat}, TrainMaxIter: 2, Restarts: 1, Seed: 5},
		items:     items,
		irs:       irs,
		resolve:   func(id string) (model.Item, bool) { v, ok := byID[id]; return v, ok },
		query: model.Item{ID: "fresh", Category: cat, Producer: "up0",
			Entities: []string{"shared", "e1"}, Timestamp: ts + 100},
	}
}
