// session_conformance_test.go: the Session ordering guarantee over
// in-process deployments. The seeded 11.5k-interaction stream is replayed
// as interleaved session traffic (Push per observation, Ask per query)
// into a single engine and into sharded routers, and every transcript
// must be bit-identical to the batch API driven at the same boundaries
// (the ReplaySeq reference). The remote-shard column lives in
// internal/shardrpc, the wire (/v2/session) column in internal/server.
package shard

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/shardtest"
)

func TestSessionConformanceStreamReplay(t *testing.T) {
	fx := fixture(t)
	maxBatches := 0 // full stream
	shardCounts := []int{2, 8}
	if testing.Short() {
		maxBatches = 12
		shardCounts = []int{2}
	}

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.ReplaySeq(t, reference, maxBatches)

	// Sessions flush exactly at the schedule's boundaries: micro-batch =
	// ReplayBatch, no linger timer.
	sessionOpts := []core.SessionOption{core.WithSessionBatch(shardtest.ReplayBatch)}

	t.Run("single", func(t *testing.T) {
		eng, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		ses := core.NewSession(context.Background(), eng, sessionOpts...)
		got := fx.ReplaySession(t, ses, maxBatches)
		shardtest.DiffResults(t, want, got, "session/single")
		assertSessionTotals(t, ses, maxBatches, fx)
	})

	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			r, err := FromSnapshot(fx.Snapshot, n)
			if err != nil {
				t.Fatalf("boot: %v", err)
			}
			ses := core.NewSession(context.Background(), r, sessionOpts...)
			got := fx.ReplaySession(t, ses, maxBatches)
			shardtest.DiffResults(t, want, got, fmt.Sprintf("session/shards=%d", n))
			assertSessionTotals(t, ses, maxBatches, fx)
		})
	}
}

// assertSessionTotals cross-checks the session's ingest summary against
// the schedule: every pushed observation must be admitted (the fixture
// stream is fully valid) across the expected number of flushes.
func assertSessionTotals(t *testing.T, ses *core.Session, maxBatches int, fx *shardtest.Fixture) {
	t.Helper()
	obs := len(fx.Obs)
	batches := (obs + shardtest.ReplayBatch - 1) / shardtest.ReplayBatch
	if maxBatches > 0 && batches > maxBatches {
		batches = maxBatches
		obs = maxBatches * shardtest.ReplayBatch
	}
	st := ses.Stats()
	if st.Pushed != uint64(obs) || st.Admitted != uint64(obs) || st.Rejected != 0 {
		t.Errorf("session ingest totals %+v, want %d pushed+admitted", st, obs)
	}
	if st.Batches != uint64(batches) {
		t.Errorf("session flushed %d batches, want %d (flush points must match the schedule)", st.Batches, batches)
	}
}
