// surface_test.go pins the administrative surface of the deployment
// types: the Local accessors and delta-replay driver, the replicated
// in-process bootstrap (one training fanned out to every replica), the
// maintenance toggles that must reach replicated engine grids, and the
// snapshot-source selection rules shared by the supervisor and the
// replica sets.
package shard

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
)

// TestLocalAccessorsAndReplay covers the Local administrative surface:
// the wrapped-engine accessor and the delta catch-up driver applying
// registration and observation batches in sequence order, refusing work
// under a cancelled context.
func TestLocalAccessorsAndReplay(t *testing.T) {
	fx := fixture(t)
	e, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	l := NewLocal(0, e)
	if l.Engine() != e {
		t.Fatal("Engine() did not return the wrapped engine")
	}

	fresh := fx.Queries[0]
	fresh.ID = "replay-fresh-item"
	fresh.Timestamp++
	batches := []ReplayBatch{
		{Seq: 1, Items: []model.Item{fresh}},
		{Seq: 2, Obs: fx.Obs[:8]},
	}
	if err := l.Replay(context.Background(), batches); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	res, err := e.RecommendBatch(context.Background(), []model.Item{fresh}, core.WithK(3))
	if err != nil || len(res) != 1 {
		t.Fatalf("query after replay: %v (%d results)", err, len(res))
	}

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Replay(cctx, []ReplayBatch{{Seq: 3, Items: []model.Item{fresh}}}); err == nil {
		t.Fatal("Replay under a cancelled context succeeded")
	}
}

// TestReplicatedTrainAndMaintenanceFanout boots an n-slot × rep-replica
// in-process deployment, trains it ONCE (slot 0 replica 0 trains, every
// other replica boots from its snapshot) and checks the replicated
// surface: replication factor, slot-major health, and the maintenance
// toggles reaching every engine in the grid.
func TestReplicatedTrainAndMaintenanceFanout(t *testing.T) {
	tf := dsConfig(t)
	r, err := NewReplicated(tf.engineCfg, 2, 2)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	if err := r.Train(tf.items, tf.irs, tf.resolve); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if got := r.Replicas(); got != 2 {
		t.Fatalf("Replicas() = %d, want 2", got)
	}
	hs := r.ReplicaHealth()
	if len(hs) != 4 {
		t.Fatalf("ReplicaHealth() returned %d entries, want 4", len(hs))
	}
	for _, h := range hs {
		if h.State != "healthy" {
			t.Fatalf("replica %d/%d state %q after training, want healthy", h.Slot, h.Replica, h.State)
		}
	}

	// Maintenance toggles must reach the whole replica grid (and stay
	// no-ops semantically: the deployment still answers).
	r.SetParallelism(2)
	r.SetFullRefresh(true)
	r.SetFullRefresh(false)
	r.SetIncrementalFold(true)
	res, err := r.RecommendCtx(context.Background(), tf.query, core.WithK(5))
	if err != nil {
		t.Fatalf("RecommendCtx: %v", err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("no recommendations from the replicated deployment")
	}

	// Degenerate widths clamp to 1×1 and skip the snapshot fan-out.
	r1, err := NewReplicated(tf.engineCfg, 0, 0)
	if err != nil {
		t.Fatalf("NewReplicated(0,0): %v", err)
	}
	if err := r1.Train(tf.items, tf.irs, tf.resolve); err != nil {
		t.Fatalf("1x1 Train: %v", err)
	}
	if got := r1.Replicas(); got != 1 {
		t.Fatalf("1x1 Replicas() = %d, want 1", got)
	}
}

// TestReplicaHealthPlainShards checks the pseudo-replica rows reported
// for an unreplicated deployment, including the excluded state of a
// down slot.
func TestReplicaHealthPlainShards(t *testing.T) {
	fx := fixture(t)
	r, err := FromSnapshot(fx.Snapshot, 2)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	hs := r.ReplicaHealth()
	if len(hs) != 2 || hs[0].State != "healthy" || hs[1].State != "healthy" {
		t.Fatalf("fresh deployment health %+v, want 2 healthy pseudo-replicas", hs)
	}
	r.fl().down[0].Store(true)
	hs = r.ReplicaHealth()
	if hs[0].State != "excluded" || hs[1].State != "healthy" {
		t.Fatalf("health with slot 0 down %+v, want [excluded healthy]", hs)
	}
}

// TestReplicaSetConstructionAndSources covers the replica-set refusal
// and source-selection branches: empty sets and slot mismatches are
// rejected, a receiver-less set reports handoff success without a seed
// generation bump, and Snapshot skips excluded replicas / surfaces the
// first provider error.
func TestReplicaSetConstructionAndSources(t *testing.T) {
	fx := fixture(t)
	e, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	ctx := context.Background()

	if _, err := NewReplicaSet(0); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if _, err := NewReplicaSet(0, NewLocal(1, e)); err == nil {
		t.Fatal("slot-mismatched replica accepted")
	}

	rs, err := NewReplicaSet(0, NewLocal(0, e))
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if got := rs.Replicas(); got != 1 {
		t.Fatalf("Replicas() = %d, want 1", got)
	}
	rs.SetProbeInterval(0) // clamps to the default
	rs.SetProbeInterval(time.Second)
	// An in-process replica cannot receive a pushed snapshot: the slot
	// handoff is a success without bumping the seed generation.
	gen := rs.seedGen.Load()
	if err := rs.Handoff(ctx, fx.Snapshot); err != nil {
		t.Fatalf("receiver-less Handoff: %v", err)
	}
	if got := rs.seedGen.Load(); got != gen {
		t.Fatalf("receiver-less handoff bumped seed generation %d -> %d", gen, got)
	}

	stub := &stubShard{inner: NewLocal(0, e)}
	stub.failing.Store(true)
	rs2, err := NewReplicaSet(0, stub)
	if err != nil {
		t.Fatalf("NewReplicaSet(stub): %v", err)
	}
	if _, err := rs2.Snapshot(ctx); err == nil {
		t.Fatal("Snapshot from a failing provider succeeded")
	}
	if err := rs2.Handoff(ctx, fx.Snapshot); err == nil {
		t.Fatal("Handoff with zero accepting replicas succeeded")
	}
	rs2.down[0].Store(true)
	if _, err := rs2.Snapshot(ctx); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("Snapshot with every replica excluded: err = %v, want ErrShardUnavailable", err)
	}
}

// TestSupervisorSourceSnapshotSelection checks the supervisor's re-seed
// source rules on plain shards: a healthy provider exports (and counts),
// a failing provider surfaces its error, and an excluded provider is
// skipped until no source remains.
func TestSupervisorSourceSnapshotSelection(t *testing.T) {
	fx := fixture(t)
	e, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	ctx := context.Background()
	stub := &stubShard{inner: NewLocal(0, e)}
	r := newRouter([]Shard{stub, &noHandoffShard{idx: 1}}, nil)
	s := NewSupervisor(r, 0)
	f := r.fl()

	data, err := s.sourceSnapshot(ctx, f)
	if err != nil || len(data) == 0 {
		t.Fatalf("healthy source: %v (%d bytes)", err, len(data))
	}
	if got := s.exports.Load(); got != 1 {
		t.Fatalf("exports counter %d after one export, want 1", got)
	}

	stub.failing.Store(true)
	if _, err := s.sourceSnapshot(ctx, f); err == nil {
		t.Fatal("failing source succeeded")
	}
	stub.failing.Store(false)
	f.down[0].Store(true)
	if _, err := s.sourceSnapshot(ctx, f); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("excluded source: err = %v, want ErrShardUnavailable", err)
	}
}
