// resharder.go is the online resharding engine: Router.Reshard
// re-partitions the user-block hash space mid-stream (N→M shards, split
// or merge) with no downtime and provably exact results.
//
// # Mechanics
//
// A reshard never mutates the serving fleet. It builds a complete
// REPLACEMENT fleet for the successor partition epoch off to the side
// and retires the old fleet with one atomic pointer swap:
//
//  1. Watermark (reshardMu held exclusively, writers paused for one
//     snapshot export): the successor table p' = partition.Next(m) is
//     derived, ONE snapshot is exported from a healthy shard — it
//     carries the complete replicated state, so it can seed every new
//     slot — and the mirror ring is installed. Every write admitted
//     after the watermark is appended to the ring by the write paths
//     (router.go) AFTER the old fleet applied it.
//  2. Seeding: each new member boots from the snapshot with the new
//     epoch's table (core.LoadPartitionFrom in-process; PrepareReshard +
//     snapshot handoff for remote members), rebuilding only the leaves
//     p' assigns it. The old fleet keeps serving reads AND writes.
//  3. Catch-up: the ring is drained in arrival order, each mirrored
//     micro-batch broadcast to every new member (the micro-batch stays
//     the atomic replication unit). Reports from the new fleet are
//     DISCARDED — the old fleet's reports are the client-visible
//     transcript until the flip, which is what makes the transcript
//     independent of flip timing.
//  4. Flip: reshardMu is taken exclusively again, the ring's final tail
//     (bounded — writers are paused) is applied, and the fleet pointer
//     swaps. At that instant old and new fleets hold bit-identical
//     state, so a query served a nanosecond before the flip by the old
//     fleet and a nanosecond after by the new one return the same
//     ranking. The old fleet is retired; in-flight operations still
//     holding it finish against intact state.
//
// # Exactness
//
// Every admitted write lands on the new fleet exactly once: writes
// before the watermark are in the snapshot (exported under the
// exclusive gate, so no write straddles it), writes after it are in the
// ring (appended inside the same read-locked critical section that
// broadcast them), and the flip drains the ring to empty while writers
// are paused. Sequential streams therefore replay onto the new fleet in
// the exact order the old fleet applied them, and the post-flip fleet's
// ownership table agrees exactly with model.ShardOf(·, m) — the
// conformance gate (reshard_test.go) replays the 11.5k-interaction
// fixture through a mid-stream 2→4 split and 4→2 merge and asserts
// bit-identical transcripts against the static single-engine reference.
package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ssrec/internal/core"
	"ssrec/internal/model"
)

// ErrReshardInProgress rejects a Reshard while another one is active —
// epochs are strictly sequential.
var ErrReshardInProgress = errors.New("shard: reshard already in progress")

// Reshard phases, in order; a terminal phase is done, failed or
// cancelled.
const (
	ReshardPhaseSeeding   = "seeding"
	ReshardPhaseCatchUp   = "catchup"
	ReshardPhaseFlipping  = "flipping"
	ReshardPhaseDone      = "done"
	ReshardPhaseFailed    = "failed"
	ReshardPhaseCancelled = "cancelled"
)

// ReshardStatus snapshots a reshard for /v2/stats and operators.
type ReshardStatus struct {
	// Active reports a reshard in flight; the remaining fields then
	// describe it. When idle they describe the LAST reshard (zero value
	// if none ever ran).
	Active bool
	// Phase is the current (or final) phase.
	Phase string
	// FromShards/ToShards are the old and new deployment widths.
	FromShards int
	ToShards   int
	// FromEpoch/ToEpoch are the partition-table versions being retired
	// and installed.
	FromEpoch uint64
	ToEpoch   uint64
	// MigratingBlocks counts the hash blocks whose owner changes — the
	// leaf partitions that actually move.
	MigratingBlocks int
	// Members and Seeded track the new fleet's boot progress.
	Members int
	Seeded  int
	// RingDepth is the current mirror-ring backlog; MirroredBatches the
	// total batches mirrored so far.
	RingDepth       int
	MirroredBatches uint64
	// Error is the failure reason of a failed/cancelled reshard.
	Error string
	// Completed counts reshards that flipped over the router's lifetime.
	Completed uint64
}

// mirrorEntry is one write batch captured by the mirror ring: exactly
// one of items (a registration) or obs (an observation micro-batch) is
// set. Entries reference the caller's slices without copying, the same
// contract as ReplicaSet.logWrite.
type mirrorEntry struct {
	items []model.Item
	obs   []core.Observation
}

// reshardState is the live state of one reshard: the mirror ring the
// write paths append to, and the descriptive fields the status surface
// reads.
type reshardState struct {
	fromShards, toShards int
	fromEpoch, toEpoch   uint64
	migrating            int
	members              int

	phase    atomic.Value // string
	seeded   atomic.Int64
	mirrored atomic.Uint64

	mu   sync.Mutex
	ring []mirrorEntry
}

func newReshardState(old, next model.Partition, members int) *reshardState {
	rsd := &reshardState{
		fromShards: old.Shards,
		toShards:   next.Shards,
		fromEpoch:  old.Epoch,
		toEpoch:    next.Epoch,
		migrating:  len(old.MigratingBlocks(next)),
		members:    members,
	}
	rsd.phase.Store(ReshardPhaseSeeding)
	return rsd
}

func (rsd *reshardState) setPhase(p string) { rsd.phase.Store(p) }

// mirrorObserve appends one observation micro-batch to the ring.
func (rsd *reshardState) mirrorObserve(batch []core.Observation) {
	rsd.mu.Lock()
	rsd.ring = append(rsd.ring, mirrorEntry{obs: batch})
	rsd.mu.Unlock()
	rsd.mirrored.Add(1)
}

// mirrorRegister appends one registration batch to the ring.
func (rsd *reshardState) mirrorRegister(items []model.Item) {
	rsd.mu.Lock()
	rsd.ring = append(rsd.ring, mirrorEntry{items: items})
	rsd.mu.Unlock()
	rsd.mirrored.Add(1)
}

// take drains the ring, returning the entries in arrival order.
func (rsd *reshardState) take() []mirrorEntry {
	rsd.mu.Lock()
	defer rsd.mu.Unlock()
	out := rsd.ring
	rsd.ring = nil
	return out
}

func (rsd *reshardState) depth() int {
	rsd.mu.Lock()
	defer rsd.mu.Unlock()
	return len(rsd.ring)
}

func (rsd *reshardState) snapshot(active bool, errText string, completed uint64) ReshardStatus {
	return ReshardStatus{
		Active:          active,
		Phase:           rsd.phase.Load().(string),
		FromShards:      rsd.fromShards,
		ToShards:        rsd.toShards,
		FromEpoch:       rsd.fromEpoch,
		ToEpoch:         rsd.toEpoch,
		MigratingBlocks: rsd.migrating,
		Members:         rsd.members,
		Seeded:          int(rsd.seeded.Load()),
		RingDepth:       rsd.depth(),
		MirroredBatches: rsd.mirrored.Load(),
		Error:           errText,
		Completed:       completed,
	}
}

// ReshardStatus reports the in-flight reshard, or the last finished one
// when idle.
func (r *Router) ReshardStatus() ReshardStatus {
	if rsd := r.rsd.Load(); rsd != nil {
		return rsd.snapshot(true, "", r.reshardsDone.Load())
	}
	if last := r.lastReshard.Load(); last != nil {
		st := *last
		st.Completed = r.reshardsDone.Load()
		return st
	}
	return ReshardStatus{Completed: r.reshardsDone.Load()}
}

// Reshard re-partitions the deployment to m shards online — the
// split/merge entry point. It blocks until the new fleet serves (the
// atomic flip happened), the context is cancelled, or the migration
// fails; in the two failure cases the old fleet was never disturbed —
// rollback is implicit, the replacement fleet is simply discarded.
//
// With no members, Reshard builds an in-process fleet of m engine
// shards, each booted from the migration snapshot (the elastic-scale
// path of an in-process deployment). With members — len(members) == m,
// members[i].Index() == i — the caller supplies the new fleet, e.g.
// shardrpc clients for freshly started shardd processes: members
// implementing ReshardPreparer are told their slot's new partition
// table first, then every member must accept the snapshot handoff
// (SnapshotReceiver) and the mirrored catch-up batches.
//
// Only one reshard runs at a time (ErrReshardInProgress). Writes keep
// flowing throughout — they pause only while the watermark snapshot is
// exported and during the final ring drain of the flip; reads never
// pause at all.
func (r *Router) Reshard(ctx context.Context, m int, members ...Shard) error {
	if m < 1 {
		return fmt.Errorf("shard: reshard to %d shards", m)
	}
	if len(members) != 0 {
		if len(members) != m {
			return fmt.Errorf("shard: reshard to %d shards got %d members", m, len(members))
		}
		for i, mb := range members {
			if mb.Index() != i {
				return fmt.Errorf("shard: member at position %d reports index %d", i, mb.Index())
			}
			if _, ok := mb.(SnapshotReceiver); !ok {
				return fmt.Errorf("shard: member %d (%T) cannot receive a snapshot handoff", i, mb)
			}
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Watermark: pause writers for one snapshot export and install the
	// mirror atomically with it, so every write is either in the
	// snapshot or in the ring — never both, never neither.
	r.reshardMu.Lock()
	if r.rsd.Load() != nil {
		r.reshardMu.Unlock()
		return ErrReshardInProgress
	}
	old := r.fl()
	next := old.partition.Next(m)
	rsd := newReshardState(old.partition, next, m)
	snapshot, err := exportFleetSnapshot(ctx, old)
	if err != nil {
		r.reshardMu.Unlock()
		return r.finishReshard(rsd, ReshardPhaseFailed, fmt.Errorf("shard: reshard snapshot export: %w", err))
	}
	r.rsd.Store(rsd)
	r.reshardMu.Unlock()

	// Seeding: boot every new member from the watermark snapshot with
	// the successor table. The old fleet serves throughout; admitted
	// writes pile into the ring.
	newShards := make([]Shard, m)
	var newLocals []*core.Engine
	if len(members) == 0 {
		newLocals = make([]*core.Engine, m)
		for i := 0; i < m; i++ {
			if err := ctx.Err(); err != nil {
				return r.finishReshard(rsd, ReshardPhaseCancelled, err)
			}
			e, err := core.LoadPartitionFrom(bytes.NewReader(snapshot), i, next)
			if err != nil {
				if ctx.Err() != nil {
					return r.finishReshard(rsd, ReshardPhaseCancelled, ctx.Err())
				}
				return r.finishReshard(rsd, ReshardPhaseFailed, fmt.Errorf("shard: seed slot %d: %w", i, err))
			}
			newLocals[i] = e
			newShards[i] = NewLocal(i, e)
			rsd.seeded.Add(1)
		}
	} else {
		for i, mb := range members {
			if err := ctx.Err(); err != nil {
				return r.finishReshard(rsd, ReshardPhaseCancelled, err)
			}
			if prep, ok := mb.(ReshardPreparer); ok {
				if err := prep.PrepareReshard(ctx, i, next); err != nil {
					if ctx.Err() != nil {
						return r.finishReshard(rsd, ReshardPhaseCancelled, ctx.Err())
					}
					return r.finishReshard(rsd, ReshardPhaseFailed, fmt.Errorf("shard: prepare slot %d: %w", i, err))
				}
			}
			if err := mb.(SnapshotReceiver).Handoff(ctx, snapshot); err != nil {
				if ctx.Err() != nil {
					return r.finishReshard(rsd, ReshardPhaseCancelled, ctx.Err())
				}
				return r.finishReshard(rsd, ReshardPhaseFailed, fmt.Errorf("shard: seed slot %d: %w", i, err))
			}
			newShards[i] = mb
			rsd.seeded.Add(1)
		}
	}

	// Catch-up: drain the ring in arrival order without blocking
	// writers. Mirrored reports are discarded — the old fleet's reports
	// are the client-visible transcript until the flip.
	rsd.setPhase(ReshardPhaseCatchUp)
	for {
		entries := rsd.take()
		if len(entries) == 0 {
			break
		}
		if err := applyMirror(ctx, newShards, entries); err != nil {
			if ctx.Err() != nil {
				return r.finishReshard(rsd, ReshardPhaseCancelled, ctx.Err())
			}
			return r.finishReshard(rsd, ReshardPhaseFailed, err)
		}
	}

	// Flip: pause writers once more, apply the final (bounded) tail and
	// swap the fleet pointer. Writers cannot append while the exclusive
	// gate is held, so one drain round provably empties the ring.
	rsd.setPhase(ReshardPhaseFlipping)
	r.reshardMu.Lock()
	for {
		entries := rsd.take()
		if len(entries) == 0 {
			break
		}
		if err := applyMirror(ctx, newShards, entries); err != nil {
			r.reshardMu.Unlock()
			if ctx.Err() != nil {
				return r.finishReshard(rsd, ReshardPhaseCancelled, ctx.Err())
			}
			return r.finishReshard(rsd, ReshardPhaseFailed, err)
		}
	}
	nf := newFleet(newShards, newLocals, next)
	nf.probes.setBase(old.probes.baseInterval())
	r.fleet.Store(nf)
	r.rsd.Store(nil)
	r.reshardMu.Unlock()
	r.reshardsDone.Add(1)
	return r.finishReshard(rsd, ReshardPhaseDone, nil)
}

// finishReshard retires the reshard state, records the terminal status
// and passes the error through.
func (r *Router) finishReshard(rsd *reshardState, phase string, err error) error {
	r.rsd.CompareAndSwap(rsd, nil)
	rsd.setPhase(phase)
	errText := ""
	if err != nil {
		errText = err.Error()
	}
	st := rsd.snapshot(false, errText, r.reshardsDone.Load())
	r.lastReshard.Store(&st)
	return err
}

// exportFleetSnapshot exports one snapshot from the first healthy,
// debt-free provider of the fleet — called under the exclusive reshard
// gate, so the bytes are an exact watermark of the admitted stream.
func exportFleetSnapshot(ctx context.Context, f *fleet) ([]byte, error) {
	var firstErr error
	for i, sh := range f.shards {
		sp, ok := sh.(SnapshotProvider)
		if !ok {
			continue
		}
		if _, isSet := sh.(*ReplicaSet); !isSet {
			if f.down[i].Load() || f.missedWrite[i].Load() {
				continue
			}
		}
		data, err := sp.Snapshot(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return data, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, fmt.Errorf("%w: no healthy snapshot source in deployment", ErrShardUnavailable)
}

// applyMirror replays mirrored batches onto every new member, in
// arrival order — each batch broadcast in parallel (the micro-batch is
// the atomic unit), joined before the next, exactly the ordering
// discipline of the live write path. Any member failure aborts the
// reshard: a new fleet missing one batch on one member must never
// flip in.
func applyMirror(ctx context.Context, members []Shard, entries []mirrorEntry) error {
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return err
		}
		errs := make([]error, len(members))
		var wg sync.WaitGroup
		for i, mb := range members {
			wg.Add(1)
			go func(i int, mb Shard) {
				defer wg.Done()
				if e.items != nil {
					_, errs[i] = mb.RegisterItems(ctx, e.items)
				} else {
					_, errs[i] = mb.ObserveBatch(ctx, e.obs)
				}
			}(i, mb)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("shard: catch-up on new slot %d: %w", i, err)
			}
		}
	}
	return nil
}
