package baseline

import (
	"fmt"
	"testing"

	"ssrec/internal/model"
)

func item(id, cat, up string, ents ...string) model.Item {
	return model.Item{ID: id, Category: cat, Producer: up, Entities: ents}
}

func feed(r Recommender, user string, v model.Item, ts int64) {
	r.Observe(model.Interaction{UserID: user, ItemID: v.ID, Timestamp: ts}, v)
}

func trainCohorts(r Recommender) {
	// 10 sports fans, 10 music fans.
	for i := 0; i < 10; i++ {
		su := fmt.Sprintf("sports%02d", i)
		mu := fmt.Sprintf("music%02d", i)
		for j := 0; j < 20; j++ {
			ts := int64(1000 + j)
			feed(r, su, item(fmt.Sprintf("sv%d-%d", i, j), "sports", "espn", "Messi", "worldcup"), ts)
			feed(r, mu, item(fmt.Sprintf("mv%d-%d", i, j), "music", "mtv", "Adele", "concert"), ts)
		}
	}
}

func TestCTTPrefersMatchingCohort(t *testing.T) {
	c := NewCTT(CTTConfig{})
	trainCohorts(c)
	recs := c.Recommend(item("q", "sports", "espn", "Messi"), 10)
	if len(recs) != 10 {
		t.Fatalf("got %d recs", len(recs))
	}
	for _, r := range recs {
		if r.UserID[:5] != "sport" {
			t.Errorf("music user %s recommended for sports item", r.UserID)
		}
	}
}

func TestCTTTemporalFactor(t *testing.T) {
	c := NewCTT(CTTConfig{AlphaCF: 0, BetaType: 0, GammaTemporal: 1, HalfLifeSecs: 100})
	v := item("a", "sports", "espn", "Messi")
	feed(c, "old", v, 0)
	feed(c, "fresh", v, 0)
	// fresh interacts again much later; clock advances.
	feed(c, "fresh", item("b", "sports", "espn", "Messi"), 1000)
	recs := c.Recommend(item("q", "sports", "espn", "Messi"), 2)
	if recs[0].UserID != "fresh" {
		t.Errorf("temporal factor ignored: %v", recs)
	}
	if recs[0].Score <= recs[1].Score {
		t.Errorf("no decay separation: %v", recs)
	}
}

func TestCTTTypeFactor(t *testing.T) {
	c := NewCTT(CTTConfig{AlphaCF: 0, BetaType: 1, GammaTemporal: 0})
	for j := 0; j < 9; j++ {
		feed(c, "fan", item(fmt.Sprintf("s%d", j), "sports", "espn"), int64(j))
	}
	feed(c, "fan", item("m0", "music", "mtv"), 10)
	feed(c, "casual", item("s9", "sports", "espn"), 10)
	feed(c, "casual", item("m1", "music", "mtv"), 11)
	recs := c.Recommend(item("q", "sports", "espn"), 2)
	if recs[0].UserID != "fan" {
		t.Errorf("type factor ignored: %v", recs)
	}
}

func TestCTTEmptyPopulation(t *testing.T) {
	c := NewCTT(CTTConfig{})
	if got := c.Recommend(item("q", "sports", "espn"), 5); len(got) != 0 {
		t.Errorf("recommendations from empty population: %v", got)
	}
	if c.UserCount() != 0 {
		t.Errorf("UserCount = %d", c.UserCount())
	}
}

func TestCTTRecentWindowBounded(t *testing.T) {
	c := NewCTT(CTTConfig{RecentItems: 5})
	for j := 0; j < 50; j++ {
		feed(c, "u", item(fmt.Sprintf("v%d", j), "sports", "espn", "Messi"), int64(j))
	}
	if got := len(c.users["u"].recent); got != 5 {
		t.Errorf("recent window = %d, want 5", got)
	}
}

func TestItemSim(t *testing.T) {
	a := item("a", "sports", "x", "Messi", "worldcup")
	b := item("b", "sports", "y", "Messi", "FIFA")
	c := item("c", "music", "z", "Adele")
	if itemSim(a, b) <= itemSim(a, c) {
		t.Errorf("similarity ordering wrong: %v vs %v", itemSim(a, b), itemSim(a, c))
	}
	if itemSim(a, a) <= itemSim(a, b) {
		t.Errorf("self-similarity not maximal")
	}
	// Entity-free items fall back to category match.
	d := item("d", "sports", "x")
	e := item("e", "sports", "y")
	if itemSim(d, e) <= 0 {
		t.Errorf("same-category entity-free items should have positive sim")
	}
}

func TestUCDPrefersMatchingCohort(t *testing.T) {
	u := NewUCD(UCDConfig{}, []string{"sports", "music"})
	trainCohorts(u)
	u.RefreshNeighbours()
	recs := u.Recommend(item("q", "sports", "espn", "Messi"), 10)
	if len(recs) != 10 {
		t.Fatalf("got %d recs", len(recs))
	}
	for _, r := range recs {
		if r.UserID[:5] != "sport" {
			t.Errorf("music user %s recommended for sports item", r.UserID)
		}
	}
}

func TestUCDNeighbourExpansion(t *testing.T) {
	u := NewUCD(UCDConfig{Neighbours: 2, NeighbourW: 1}, []string{"sports", "music"})
	trainCohorts(u)
	u.RefreshNeighbours()
	// Every sports user's neighbours must be sports users.
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("sports%02d", i)
		for _, nb := range u.users[id].neighbours {
			if nb[:5] != "sport" {
				t.Errorf("%s has cross-cohort neighbour %s", id, nb)
			}
		}
	}
}

func TestUCDDiversityPenalisesRepeats(t *testing.T) {
	u := NewUCD(UCDConfig{DiversityW: 0.9}, []string{"sports", "music"})
	for j := 0; j < 20; j++ {
		feed(u, "fan", item(fmt.Sprintf("s%d", j), "sports", "espn", "Messi"), int64(j))
	}
	u.RefreshNeighbours()
	same := item("rep", "sports", "espn", "Messi")
	first := u.Recommend(same, 1)
	// Recommending the identical item again must score lower (diversity
	// memory now contains it).
	second := u.Recommend(same, 1)
	if len(first) != 1 || len(second) != 1 {
		t.Fatal("missing recommendations")
	}
	if second[0].Score >= first[0].Score {
		t.Errorf("no diversity penalty: %v then %v", first[0].Score, second[0].Score)
	}
}

func TestUCDRecentRecsBounded(t *testing.T) {
	u := NewUCD(UCDConfig{RecentRecs: 3}, []string{"sports"})
	feed(u, "fan", item("s0", "sports", "espn", "Messi"), 0)
	for j := 0; j < 10; j++ {
		u.Recommend(item(fmt.Sprintf("q%d", j), "sports", "espn", "Messi"), 1)
	}
	if got := len(u.users["fan"].recentRecs); got != 3 {
		t.Errorf("recentRecs = %d, want 3", got)
	}
}

func TestUCDAutoRefresh(t *testing.T) {
	u := NewUCD(UCDConfig{RefreshEvery: 10, Neighbours: 1}, []string{"sports", "music"})
	for j := 0; j < 25; j++ {
		feed(u, fmt.Sprintf("u%d", j%4), item(fmt.Sprintf("s%d", j), "sports", "espn"), int64(j))
	}
	// After 25 observations with RefreshEvery=10, neighbours exist.
	if len(u.users["u0"].neighbours) == 0 {
		t.Error("auto-refresh never ran")
	}
}

func TestRecommenderInterfaceCompliance(t *testing.T) {
	var _ Recommender = NewCTT(CTTConfig{})
	var _ Recommender = NewUCD(UCDConfig{}, nil)
	if NewCTT(CTTConfig{}).Name() != "CTT" || NewUCD(UCDConfig{}, nil).Name() != "UCD" {
		t.Error("names wrong")
	}
}

func BenchmarkCTTRecommend(b *testing.B) {
	c := NewCTT(CTTConfig{})
	for i := 0; i < 2000; i++ {
		feed(c, fmt.Sprintf("u%d", i), item(fmt.Sprintf("v%d", i), "sports", "espn", "Messi"), int64(i))
	}
	q := item("q", "sports", "espn", "Messi")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Recommend(q, 30)
	}
}

func BenchmarkUCDRecommend(b *testing.B) {
	u := NewUCD(UCDConfig{}, []string{"sports", "music"})
	for i := 0; i < 2000; i++ {
		feed(u, fmt.Sprintf("u%d", i), item(fmt.Sprintf("v%d", i), "sports", "espn", "Messi"), int64(i))
	}
	u.RefreshNeighbours()
	q := item("q", "sports", "espn", "Messi")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Recommend(q, 30)
	}
}
