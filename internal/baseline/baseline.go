// Package baseline implements the two comparison systems of the paper's
// evaluation (Zhou et al., ICDE 2019, §VI-B) plus the shared recommender
// interface:
//
//   - CTT (Huang et al., SIGMOD 2016): a streaming recommender fusing
//     item-based collaborative filtering, the type (category) factor and a
//     temporal decay factor. It scans all users sequentially per item.
//   - UCD (Zanitti et al., WWW 2018 Companion): a user-centric
//     diversity-by-design recommender where each user profile is expanded
//     with its nearest neighbours and candidates are re-weighted by
//     diversity against recently recommended items. Sequential scan too.
//
// Both are reproduced from their papers' descriptions at the level of
// detail the comparison requires: neither uses the producer-consumer
// dependency nor short-term/long-term interest separation, which is what
// Fig. 8 attributes ssRec's effectiveness advantage to; both scan users
// linearly, which is what Fig. 10 attributes ssRec's efficiency advantage
// to.
package baseline

import (
	"math"
	"sort"

	"ssrec/internal/model"
	"ssrec/internal/ranking"
)

// Recommender is the interface shared by ssRec and the baselines; the
// evaluation harness drives everything through it.
type Recommender interface {
	// Name identifies the system in reports.
	Name() string
	// Observe feeds one user-item interaction (with the resolved item).
	Observe(ir model.Interaction, v model.Item)
	// Recommend returns the top-k users for an incoming item.
	Recommend(v model.Item, k int) []model.Recommendation
}

// ---- CTT ----

// CTTConfig weights the three fused factors.
type CTTConfig struct {
	AlphaCF       float64 // collaborative-filtering factor weight
	BetaType      float64 // category (type) factor weight
	GammaTemporal float64 // temporal factor weight
	HalfLifeSecs  float64 // temporal decay half-life
	RecentItems   int     // per-user CF window (most recent items)
}

func (c *CTTConfig) fill() {
	if c.AlphaCF == 0 && c.BetaType == 0 && c.GammaTemporal == 0 {
		c.AlphaCF, c.BetaType, c.GammaTemporal = 0.5, 0.3, 0.2
	}
	if c.HalfLifeSecs <= 0 {
		c.HalfLifeSecs = 7 * 24 * 3600
	}
	if c.RecentItems <= 0 {
		c.RecentItems = 50
	}
}

type cttUser struct {
	catCount   map[string]int
	total      int
	entCount   map[string]int
	entTotal   int
	recent     []model.Item // bounded by RecentItems
	lastSeen   int64
	lastSeenBy map[string]int64 // category -> last interaction ts
}

// CTT is the collaborative/type/temporal fusion baseline.
type CTT struct {
	cfg   CTTConfig
	users map[string]*cttUser
	clock int64 // latest timestamp seen
}

// NewCTT creates the baseline.
func NewCTT(cfg CTTConfig) *CTT {
	cfg.fill()
	return &CTT{cfg: cfg, users: make(map[string]*cttUser)}
}

// Name implements Recommender.
func (c *CTT) Name() string { return "CTT" }

// Observe implements Recommender.
func (c *CTT) Observe(ir model.Interaction, v model.Item) {
	u := c.users[ir.UserID]
	if u == nil {
		u = &cttUser{
			catCount:   make(map[string]int),
			entCount:   make(map[string]int),
			lastSeenBy: make(map[string]int64),
		}
		c.users[ir.UserID] = u
	}
	u.catCount[v.Category]++
	u.total++
	for _, e := range v.Entities {
		u.entCount[e]++
		u.entTotal++
	}
	u.recent = append(u.recent, v)
	if len(u.recent) > c.cfg.RecentItems {
		u.recent = u.recent[len(u.recent)-c.cfg.RecentItems:]
	}
	u.lastSeen = ir.Timestamp
	u.lastSeenBy[v.Category] = ir.Timestamp
	if ir.Timestamp > c.clock {
		c.clock = ir.Timestamp
	}
}

// itemSim is the item-item similarity of the CF factor: entity overlap
// (Jaccard over entity sets) with a same-category boost — the content
// variant of item-based CF that streaming systems use when co-rating
// matrices are too sparse.
func itemSim(a, b model.Item) float64 {
	if len(a.Entities) == 0 || len(b.Entities) == 0 {
		if a.Category == b.Category {
			return 0.3
		}
		return 0
	}
	setA := make(map[string]bool, len(a.Entities))
	for _, e := range a.Entities {
		setA[e] = true
	}
	inter, union := 0, len(setA)
	seenB := map[string]bool{}
	for _, e := range b.Entities {
		if seenB[e] {
			continue
		}
		seenB[e] = true
		if setA[e] {
			inter++
		} else {
			union++
		}
	}
	sim := float64(inter) / float64(union)
	if a.Category == b.Category {
		sim += 0.3
	}
	return sim
}

// score computes the fused CTT relevance of item v to user u.
func (c *CTT) score(u *cttUser, v model.Item) float64 {
	// CF: average similarity of v to the user's recent items.
	var cf float64
	if len(u.recent) > 0 {
		for _, r := range u.recent {
			cf += itemSim(v, r)
		}
		cf /= float64(len(u.recent))
	}
	// Type: category preference MLE.
	var typ float64
	if u.total > 0 {
		typ = float64(u.catCount[v.Category]) / float64(u.total)
	}
	// Temporal: exponential decay since the user's last interaction in
	// this category.
	var temp float64
	if last, ok := u.lastSeenBy[v.Category]; ok {
		age := float64(c.clock - last)
		temp = math.Exp(-math.Ln2 * age / c.cfg.HalfLifeSecs)
	}
	return c.cfg.AlphaCF*cf + c.cfg.BetaType*typ + c.cfg.GammaTemporal*temp
}

// Recommend implements Recommender via a full sequential scan.
func (c *CTT) Recommend(v model.Item, k int) []model.Recommendation {
	tk := ranking.NewTopK(k)
	for id, u := range c.users {
		tk.Offer(id, c.score(u, v))
	}
	return tk.Sorted()
}

// UserCount reports the scanned population size.
func (c *CTT) UserCount() int { return len(c.users) }

// ---- UCD ----

// UCDConfig parameterises the diversity baseline.
type UCDConfig struct {
	Neighbours    int     // profile expansion width
	NeighbourW    float64 // weight of neighbour contributions
	DiversityW    float64 // trade-off between match and diversity (0..1)
	RecentRecs    int     // per-user memory of recent recommendations
	RefreshEvery  int     // recompute neighbour lists every N observations
	catUniverseSz int
}

func (c *UCDConfig) fill() {
	if c.Neighbours <= 0 {
		c.Neighbours = 5
	}
	if c.NeighbourW == 0 {
		c.NeighbourW = 0.3
	}
	if c.DiversityW == 0 {
		c.DiversityW = 0.3
	}
	if c.RecentRecs <= 0 {
		c.RecentRecs = 10
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 2000
	}
}

type ucdUser struct {
	catCount   map[string]int
	total      int
	entCount   map[string]int
	neighbours []string
	recentRecs []model.Item
}

// UCD is the user-centric diversity baseline.
type UCD struct {
	cfg        UCDConfig
	users      map[string]*ucdUser
	categories []string
	sinceRef   int
}

// NewUCD creates the baseline over a fixed category universe (for the
// user-user cosine).
func NewUCD(cfg UCDConfig, categories []string) *UCD {
	cfg.fill()
	return &UCD{cfg: cfg, users: make(map[string]*ucdUser), categories: categories}
}

// Name implements Recommender.
func (u *UCD) Name() string { return "UCD" }

// Observe implements Recommender.
func (u *UCD) Observe(ir model.Interaction, v model.Item) {
	usr := u.users[ir.UserID]
	if usr == nil {
		usr = &ucdUser{catCount: make(map[string]int), entCount: make(map[string]int)}
		u.users[ir.UserID] = usr
	}
	usr.catCount[v.Category]++
	usr.total++
	for _, e := range v.Entities {
		usr.entCount[e]++
	}
	u.sinceRef++
	if u.sinceRef >= u.cfg.RefreshEvery {
		u.RefreshNeighbours()
	}
}

func (u *UCD) catVec(usr *ucdUser) []float64 {
	vec := make([]float64, len(u.categories))
	if usr.total == 0 {
		return vec
	}
	for i, c := range u.categories {
		vec[i] = float64(usr.catCount[c]) / float64(usr.total)
	}
	return vec
}

// RefreshNeighbours recomputes every user's top-N neighbour list by cosine
// over category vectors. O(n²) — the baseline's documented cost.
func (u *UCD) RefreshNeighbours() {
	u.sinceRef = 0
	ids := make([]string, 0, len(u.users))
	for id := range u.users {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	vecs := make([][]float64, len(ids))
	for i, id := range ids {
		vecs[i] = u.catVec(u.users[id])
	}
	for i, id := range ids {
		type cand struct {
			id  string
			sim float64
		}
		cands := make([]cand, 0, len(ids)-1)
		for j, jd := range ids {
			if i == j {
				continue
			}
			cands = append(cands, cand{jd, cosine(vecs[i], vecs[j])})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].sim != cands[b].sim {
				return cands[a].sim > cands[b].sim
			}
			return cands[a].id < cands[b].id
		})
		n := u.cfg.Neighbours
		if n > len(cands) {
			n = len(cands)
		}
		nbs := make([]string, n)
		for k := 0; k < n; k++ {
			nbs[k] = cands[k].id
		}
		u.users[id].neighbours = nbs
	}
}

// score is match × diversity: the match term uses the neighbour-expanded
// profile, the diversity term penalises similarity to recently
// recommended items.
func (u *UCD) score(usr *ucdUser, v model.Item) float64 {
	match := u.matchTerm(usr, v)
	for _, nb := range usr.neighbours {
		if nusr := u.users[nb]; nusr != nil {
			match += u.cfg.NeighbourW * u.matchTerm(nusr, v)
		}
	}
	// Diversity: 1 - max similarity to the user's recent recommendations.
	div := 1.0
	for _, r := range usr.recentRecs {
		if s := itemSim(v, r); 1-s < div {
			div = 1 - s
		}
	}
	w := u.cfg.DiversityW
	return (1-w)*match + w*match*div
}

func (u *UCD) matchTerm(usr *ucdUser, v model.Item) float64 {
	var m float64
	if usr.total > 0 {
		m = float64(usr.catCount[v.Category]) / float64(usr.total)
	}
	var ent float64
	for _, e := range v.Entities {
		ent += float64(usr.entCount[e])
	}
	if usr.total > 0 && len(v.Entities) > 0 {
		m += ent / float64(usr.total*len(v.Entities))
	}
	return m
}

// Recommend implements Recommender via a full sequential scan, then
// records the item into the winners' recent-recommendation memory.
func (u *UCD) Recommend(v model.Item, k int) []model.Recommendation {
	tk := ranking.NewTopK(k)
	for id, usr := range u.users {
		tk.Offer(id, u.score(usr, v))
	}
	recs := tk.Sorted()
	for _, r := range recs {
		usr := u.users[r.UserID]
		usr.recentRecs = append(usr.recentRecs, v)
		if len(usr.recentRecs) > u.cfg.RecentRecs {
			usr.recentRecs = usr.recentRecs[len(usr.recentRecs)-u.cfg.RecentRecs:]
		}
	}
	return recs
}

// UserCount reports the scanned population size.
func (u *UCD) UserCount() int { return len(u.users) }

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
