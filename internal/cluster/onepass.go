// Package cluster implements the one-pass clustering used by the
// CPPse-index to group users into blocks by their long-term categorical
// interests (Zhou et al., ICDE 2019, §V-A).
//
// One-pass clustering (Schweikardt 2009) reads each point exactly once:
// a point joins the nearest existing cluster if the cosine similarity to
// that cluster's centroid is at least a threshold, otherwise it seeds a new
// cluster. The CPPse-index uses the resulting blocks to keep per-tree
// signature universes small (paper Table II).
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Point is one item to cluster: an identifier plus a sparse non-negative
// feature vector (for CPPse: normalised long-term category counts).
type Point struct {
	ID  string
	Vec []float64
}

// Options controls the clustering.
type Options struct {
	// SimThreshold is the minimum cosine similarity to join an existing
	// cluster. Lower values produce fewer, larger blocks. Default 0.6.
	SimThreshold float64
	// MaxClusters caps the number of clusters; once reached, every point
	// joins its nearest cluster regardless of the threshold. 0 = no cap.
	MaxClusters int
}

func (o *Options) fill() {
	if o.SimThreshold == 0 {
		o.SimThreshold = 0.6
	}
}

// Cluster is one output block.
type Cluster struct {
	ID       int
	Members  []string  // point IDs in insertion order
	Centroid []float64 // running mean of member vectors
	count    int
}

// Result of a clustering run.
type Result struct {
	Clusters   []*Cluster
	Assignment map[string]int // point ID -> cluster ID
	Dim        int
}

// Run performs one-pass clustering over points in order. All vectors must
// share the same dimensionality.
func Run(points []Point, opts Options) (*Result, error) {
	opts.fill()
	res := &Result{Assignment: make(map[string]int, len(points))}
	if len(points) == 0 {
		return res, nil
	}
	res.Dim = len(points[0].Vec)
	for _, p := range points {
		if len(p.Vec) != res.Dim {
			return nil, fmt.Errorf("cluster: point %q has dim %d, want %d", p.ID, len(p.Vec), res.Dim)
		}
		best, bestSim := -1, -1.0
		for _, c := range res.Clusters {
			sim := Cosine(p.Vec, c.Centroid)
			if sim > bestSim {
				best, bestSim = c.ID, sim
			}
		}
		capped := opts.MaxClusters > 0 && len(res.Clusters) >= opts.MaxClusters
		if best >= 0 && (bestSim >= opts.SimThreshold || capped) {
			res.Clusters[best].add(p)
			res.Assignment[p.ID] = best
			continue
		}
		c := &Cluster{ID: len(res.Clusters), Centroid: append([]float64(nil), p.Vec...), count: 1}
		c.Members = append(c.Members, p.ID)
		res.Clusters = append(res.Clusters, c)
		res.Assignment[p.ID] = c.ID
	}
	return res, nil
}

// RunFixed forces (approximately) exactly k blocks by disabling the
// similarity threshold once k clusters exist and seeding new clusters until
// k is reached regardless of similarity. Used by the Table II experiment,
// which sweeps the block count directly. If there are fewer points than k,
// each point gets its own cluster.
func RunFixed(points []Point, k int) (*Result, error) {
	if k < 1 {
		k = 1
	}
	res := &Result{Assignment: make(map[string]int, len(points))}
	if len(points) == 0 {
		return res, nil
	}
	res.Dim = len(points[0].Vec)
	for _, p := range points {
		if len(p.Vec) != res.Dim {
			return nil, fmt.Errorf("cluster: point %q has dim %d, want %d", p.ID, len(p.Vec), res.Dim)
		}
		if len(res.Clusters) < k {
			// Seed new clusters with the first k maximally spread points:
			// seed when no existing centroid is very close.
			best, bestSim := -1, -1.0
			for _, c := range res.Clusters {
				if sim := Cosine(p.Vec, c.Centroid); sim > bestSim {
					best, bestSim = c.ID, sim
				}
			}
			if best < 0 || bestSim < 0.999 {
				c := &Cluster{ID: len(res.Clusters), Centroid: append([]float64(nil), p.Vec...), count: 1}
				c.Members = append(c.Members, p.ID)
				res.Clusters = append(res.Clusters, c)
				res.Assignment[p.ID] = c.ID
				continue
			}
			res.Clusters[best].add(p)
			res.Assignment[p.ID] = best
			continue
		}
		best, bestSim := 0, -1.0
		for _, c := range res.Clusters {
			if sim := Cosine(p.Vec, c.Centroid); sim > bestSim {
				best, bestSim = c.ID, sim
			}
		}
		res.Clusters[best].add(p)
		res.Assignment[p.ID] = best
	}
	return res, nil
}

func (c *Cluster) add(p Point) {
	c.Members = append(c.Members, p.ID)
	c.count++
	inv := 1 / float64(c.count)
	for i := range c.Centroid {
		c.Centroid[i] += (p.Vec[i] - c.Centroid[i]) * inv
	}
}

// Size returns the number of members.
func (c *Cluster) Size() int { return len(c.Members) }

// Cosine returns the cosine similarity of a and b (0 if either is zero).
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// ClusterSnapshot is the serialisable form of one Cluster.
type ClusterSnapshot struct {
	ID       int
	Members  []string
	Centroid []float64
	Count    int
}

// Snapshot is the serialisable form of a Result — the path-dependent
// block structure a rebuilt CPPse-index must pin to reproduce an evolved
// index exactly (one-pass clustering depends on the profiles at build
// time; a re-run over later profiles yields different blocks).
type Snapshot struct {
	Clusters   []ClusterSnapshot
	Assignment map[string]int
	Dim        int
}

// Snapshot captures the result for serialisation.
func (r *Result) Snapshot() Snapshot {
	s := Snapshot{Assignment: make(map[string]int, len(r.Assignment)), Dim: r.Dim}
	for id, b := range r.Assignment {
		s.Assignment[id] = b
	}
	for _, c := range r.Clusters {
		s.Clusters = append(s.Clusters, ClusterSnapshot{
			ID:       c.ID,
			Members:  append([]string(nil), c.Members...),
			Centroid: append([]float64(nil), c.Centroid...),
			Count:    c.count,
		})
	}
	return s
}

// FromSnapshot restores a Result previously captured with Snapshot.
func FromSnapshot(s Snapshot) *Result {
	r := &Result{Assignment: make(map[string]int, len(s.Assignment)), Dim: s.Dim}
	for id, b := range s.Assignment {
		r.Assignment[id] = b
	}
	for _, cs := range s.Clusters {
		r.Clusters = append(r.Clusters, &Cluster{
			ID:       cs.ID,
			Members:  append([]string(nil), cs.Members...),
			Centroid: append([]float64(nil), cs.Centroid...),
			count:    cs.Count,
		})
	}
	return r
}

// SizesDescending returns the cluster sizes sorted largest first — a quick
// shape summary used in logs and tests.
func (r *Result) SizesDescending() []int {
	sizes := make([]int, len(r.Clusters))
	for i, c := range r.Clusters {
		sizes[i] = c.Size()
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
