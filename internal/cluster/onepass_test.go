package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func axisPoint(id string, dim, axis int, noise float64, rng *rand.Rand) Point {
	v := make([]float64, dim)
	for i := range v {
		v[i] = noise * rng.Float64()
	}
	v[axis] = 1
	return Point{ID: id, Vec: v}
}

func TestCosine(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{1, 1}, []float64{1, 1}, 1},
		{[]float64{0, 0}, []float64{1, 1}, 0},
		{[]float64{2, 0}, []float64{7, 0}, 1},
	}
	for _, c := range cases {
		if got := Cosine(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Cosine(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCosineMismatchedLengths(t *testing.T) {
	// Shorter vector is treated as zero-padded.
	got := Cosine([]float64{1, 0, 0}, []float64{1})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine with short b = %v", got)
	}
}

func TestRunSeparatesAxisClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []Point
	for i := 0; i < 30; i++ {
		pts = append(pts, axisPoint(fmt.Sprintf("a%d", i), 5, 0, 0.05, rng))
		pts = append(pts, axisPoint(fmt.Sprintf("b%d", i), 5, 2, 0.05, rng))
		pts = append(pts, axisPoint(fmt.Sprintf("c%d", i), 5, 4, 0.05, rng))
	}
	res, err := Run(pts, Options{SimThreshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("got %d clusters, want 3 (sizes %v)", len(res.Clusters), res.SizesDescending())
	}
	// Members of the same letter must share a cluster.
	for _, prefix := range []string{"a", "b", "c"} {
		first := res.Assignment[prefix+"0"]
		for i := 1; i < 30; i++ {
			if res.Assignment[fmt.Sprintf("%s%d", prefix, i)] != first {
				t.Errorf("%s%d not in cluster %d", prefix, i, first)
			}
		}
	}
}

func TestRunEveryPointAssignedExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var pts []Point
	for i := 0; i < 100; i++ {
		pts = append(pts, axisPoint(fmt.Sprintf("p%d", i), 8, rng.Intn(8), 0.2, rng))
	}
	res, err := Run(pts, Options{SimThreshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != len(pts) {
		t.Fatalf("%d assignments for %d points", len(res.Assignment), len(pts))
	}
	total := 0
	for _, c := range res.Clusters {
		total += c.Size()
		for _, id := range c.Members {
			if res.Assignment[id] != c.ID {
				t.Errorf("member %s of cluster %d assigned to %d", id, c.ID, res.Assignment[id])
			}
		}
	}
	if total != len(pts) {
		t.Fatalf("cluster sizes sum to %d, want %d", total, len(pts))
	}
}

func TestRunMaxClustersCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pts []Point
	for i := 0; i < 200; i++ {
		pts = append(pts, axisPoint(fmt.Sprintf("p%d", i), 20, i%20, 0.0, rng))
	}
	res, err := Run(pts, Options{SimThreshold: 0.99, MaxClusters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) > 5 {
		t.Fatalf("cap violated: %d clusters", len(res.Clusters))
	}
}

func TestRunEmptyInput(t *testing.T) {
	res, err := Run(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 || len(res.Assignment) != 0 {
		t.Fatal("non-empty result for empty input")
	}
}

func TestRunDimensionMismatch(t *testing.T) {
	pts := []Point{{ID: "a", Vec: []float64{1, 0}}, {ID: "b", Vec: []float64{1}}}
	if _, err := Run(pts, Options{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestRunFixedReachesK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pts []Point
	for i := 0; i < 300; i++ {
		pts = append(pts, axisPoint(fmt.Sprintf("p%d", i), 10, i%10, 0.3, rng))
	}
	for _, k := range []int{1, 3, 10, 25} {
		res, err := RunFixed(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Clusters) > k && k <= len(pts) {
			t.Errorf("k=%d: got %d clusters", k, len(res.Clusters))
		}
		if len(res.Assignment) != len(pts) {
			t.Errorf("k=%d: %d assignments", k, len(res.Assignment))
		}
	}
}

func TestRunFixedOneBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts []Point
	for i := 0; i < 50; i++ {
		pts = append(pts, axisPoint(fmt.Sprintf("p%d", i), 4, i%4, 0.1, rng))
	}
	res, err := RunFixed(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || res.Clusters[0].Size() != 50 {
		t.Fatalf("want single cluster of 50, got sizes %v", res.SizesDescending())
	}
}

func TestCentroidIsRunningMean(t *testing.T) {
	pts := []Point{
		{ID: "a", Vec: []float64{1, 0}},
		{ID: "b", Vec: []float64{0.8, 0.2}},
		{ID: "c", Vec: []float64{0.6, 0.1}},
	}
	res, err := Run(pts, Options{SimThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("expected one cluster, got %d", len(res.Clusters))
	}
	want := []float64{(1 + 0.8 + 0.6) / 3, (0 + 0.2 + 0.1) / 3}
	got := res.Clusters[0].Centroid
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("centroid[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: each point appears in exactly one cluster, and cluster count
// never exceeds the cap.
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		maxC := int(capRaw%10) + 1
		var pts []Point
		n := 40
		for i := 0; i < n; i++ {
			pts = append(pts, axisPoint(fmt.Sprintf("p%d", i), 6, rng.Intn(6), rng.Float64()*0.5, rng))
		}
		res, err := Run(pts, Options{SimThreshold: 0.3 + rng.Float64()*0.6, MaxClusters: maxC})
		if err != nil {
			return false
		}
		if len(res.Clusters) > maxC {
			return false
		}
		seen := map[string]int{}
		for _, c := range res.Clusters {
			for _, id := range c.Members {
				seen[id]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, k := range seen {
			if k != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var pts []Point
	for i := 0; i < 2000; i++ {
		pts = append(pts, axisPoint(fmt.Sprintf("p%d", i), 19, i%19, 0.2, rng))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(pts, Options{SimThreshold: 0.6, MaxClusters: 50}); err != nil {
			b.Fatal(err)
		}
	}
}
