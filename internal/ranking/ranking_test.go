package ranking

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ssrec/internal/entity"
	"ssrec/internal/model"
	"ssrec/internal/profile"
)

func fixtureBackground() *profile.Background {
	items := []model.Item{
		{ID: "v1", Category: "sports", Producer: "bbc", Entities: []string{"Messi", "worldcup"}},
		{ID: "v2", Category: "sports", Producer: "espn", Entities: []string{"Nadal", "Federer"}},
		{ID: "v3", Category: "music", Producer: "mtv", Entities: []string{"Adele"}},
	}
	return profile.NewBackground(items, 10)
}

func fanProfile() *profile.Profile {
	p := profile.New("fan", 5)
	for i := 0; i < 30; i++ {
		p.ObserveLongTerm(profile.Event{Category: "sports", Producer: "bbc", Entities: []string{"Messi", "worldcup"}})
	}
	return p
}

func neutralProfile() *profile.Profile {
	p := profile.New("neutral", 5)
	for i := 0; i < 30; i++ {
		p.ObserveLongTerm(profile.Event{Category: "music", Producer: "mtv", Entities: []string{"Adele"}})
	}
	return p
}

func TestBuildQueryNoExpansion(t *testing.T) {
	v := model.Item{ID: "x", Category: "sports", Producer: "bbc", Entities: []string{"Messi", "Messi"}}
	q := BuildQuery(v, nil)
	if q.Category != "sports" || q.Producer != "bbc" || len(q.Entities) != 2 {
		t.Fatalf("query = %+v", q)
	}
	for _, e := range q.Entities {
		if e.Weight != 1 {
			t.Errorf("original entity weight %v, want 1", e.Weight)
		}
	}
}

func TestBuildQueryWithExpansion(t *testing.T) {
	x := entity.NewExpander(5, 3)
	for i := 0; i < 5; i++ {
		x.Observe("sports", []string{"Messi", "worldcup"})
	}
	v := model.Item{ID: "x", Category: "sports", Producer: "bbc", Entities: []string{"Messi"}}
	q := BuildQuery(v, x)
	if len(q.Entities) != 2 {
		t.Fatalf("expected expansion, got %+v", q.Entities)
	}
	if q.Entities[1].Name != "worldcup" || q.Entities[1].Weight <= 0 || q.Entities[1].Weight > 1 {
		t.Errorf("expanded entity = %+v", q.Entities[1])
	}
}

func TestLongTermPrefersMatchingUser(t *testing.T) {
	bg := fixtureBackground()
	s := NewScorer(0.4, bg)
	v := model.Item{ID: "x", Category: "sports", Producer: "bbc", Entities: []string{"Messi"}}
	q := BuildQuery(v, nil)
	fan, neutral := fanProfile(), neutralProfile()
	// Same category probability for both isolates producer/entity terms.
	if s.LongTerm(q, fan, 0.5) <= s.LongTerm(q, neutral, 0.5) {
		t.Errorf("fan not preferred: %v vs %v", s.LongTerm(q, fan, 0.5), s.LongTerm(q, neutral, 0.5))
	}
}

func TestLongTermMonotoneInCategoryProb(t *testing.T) {
	bg := fixtureBackground()
	s := NewScorer(0.4, bg)
	q := BuildQuery(model.Item{Category: "sports", Producer: "bbc", Entities: []string{"Messi"}}, nil)
	fan := fanProfile()
	if s.LongTerm(q, fan, 0.9) <= s.LongTerm(q, fan, 0.1) {
		t.Errorf("score not monotone in p(c|u)")
	}
}

func TestScoreCombinesPerLambda(t *testing.T) {
	bg := fixtureBackground()
	q := BuildQuery(model.Item{Category: "sports", Producer: "bbc", Entities: []string{"Messi"}}, nil)
	fan := fanProfile()
	for _, lam := range []float64{0, 0.3, 0.7, 1} {
		s := NewScorer(lam, bg)
		got := s.Score(q, fan, 0.5, 0.25)
		want := (1-lam)*s.LongTerm(q, fan, 0.5) + lam*s.ShortTerm(0.25)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("λ=%v: Score=%v want %v", lam, got, want)
		}
	}
}

func TestLambdaExtremes(t *testing.T) {
	bg := fixtureBackground()
	q := BuildQuery(model.Item{Category: "sports", Producer: "bbc", Entities: []string{"Messi"}}, nil)
	fan := fanProfile()
	s0 := NewScorer(0, bg) // pure long-term: short prob must not matter
	if s0.Score(q, fan, 0.5, 0.1) != s0.Score(q, fan, 0.5, 0.9) {
		t.Error("λ=0 but short-term prob changes score")
	}
	s1 := NewScorer(1, bg) // pure short-term: long side must not matter
	if s1.Score(q, fan, 0.1, 0.5) != s1.Score(q, fan, 0.9, 0.5) {
		t.Error("λ=1 but long-term prob changes score")
	}
}

func TestScoreNeverInf(t *testing.T) {
	bg := fixtureBackground()
	s := NewScorer(0.4, bg)
	// Item whose producer and entities the user has never seen.
	q := BuildQuery(model.Item{Category: "never", Producer: "ghost", Entities: []string{"unknown"}}, nil)
	p := profile.New("empty", 5)
	got := s.Score(q, p, 0, 0)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("score = %v", got)
	}
}

func TestExpansionLiftsRelatedItemScore(t *testing.T) {
	// A user who watched Nadal items should score a Federer item higher
	// when expansion links the two entities — the diversity mechanism.
	bg := fixtureBackground()
	x := entity.NewExpander(5, 3)
	for i := 0; i < 10; i++ {
		x.Observe("sports", []string{"Nadal", "Federer"})
	}
	p := profile.New("tennisfan", 5)
	for i := 0; i < 20; i++ {
		p.ObserveLongTerm(profile.Event{Category: "sports", Producer: "espn", Entities: []string{"Nadal"}})
	}
	v := model.Item{ID: "fedclip", Category: "sports", Producer: "espn", Entities: []string{"Federer"}}
	s := NewScorer(0.0, bg)
	with := s.LongTerm(BuildQuery(v, x), p, 0.5)
	without := s.LongTerm(BuildQuery(v, nil), p, 0.5)
	if with <= without {
		t.Errorf("expansion did not lift score: with=%v without=%v", with, without)
	}
}

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(3)
	scores := map[string]float64{"a": 1, "b": 5, "c": 3, "d": 4, "e": 2}
	for u, s := range scores {
		tk.Offer(u, s)
	}
	got := tk.Sorted()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	wantOrder := []string{"b", "d", "c"}
	for i, w := range wantOrder {
		if got[i].UserID != w {
			t.Errorf("rank %d = %s, want %s", i, got[i].UserID, w)
		}
	}
	if tk.WorstScore() != 3 {
		t.Errorf("WorstScore = %v", tk.WorstScore())
	}
}

func TestTopKNotFullWorstIsMinusInf(t *testing.T) {
	tk := NewTopK(5)
	tk.Offer("a", 10)
	if !math.IsInf(tk.WorstScore(), -1) {
		t.Errorf("WorstScore = %v, want -Inf", tk.WorstScore())
	}
}

func TestTopKTieBreakByUserID(t *testing.T) {
	tk := NewTopK(2)
	tk.Offer("zed", 1)
	tk.Offer("amy", 1)
	tk.Offer("bob", 1)
	got := tk.Sorted()
	if got[0].UserID != "amy" || got[1].UserID != "bob" {
		t.Errorf("tie order = %v", got)
	}
}

func TestTopKMinK(t *testing.T) {
	tk := NewTopK(0)
	tk.Offer("a", 1)
	tk.Offer("b", 2)
	got := tk.Sorted()
	if len(got) != 1 || got[0].UserID != "b" {
		t.Errorf("k=0 coerced: %v", got)
	}
}

// Property: TopK returns exactly the k best of any offered population, in
// the same order a full sort would produce.
func TestTopKMatchesFullSortProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		n := 50
		all := make([]model.Recommendation, n)
		tk := NewTopK(k)
		for i := 0; i < n; i++ {
			u := fmt.Sprintf("u%02d", i)
			s := math.Floor(rng.Float64()*10) / 2 // force score ties
			all[i] = model.Recommendation{UserID: u, Score: s}
			tk.Offer(u, s)
		}
		sort.Slice(all, func(i, j int) bool { return model.ByScoreDesc(all[i], all[j]) })
		want := all[:k]
		got := tk.Sorted()
		if len(got) != k {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScore(b *testing.B) {
	bg := fixtureBackground()
	s := NewScorer(0.4, bg)
	q := BuildQuery(model.Item{Category: "sports", Producer: "bbc",
		Entities: []string{"Messi", "worldcup", "Nadal"}}, nil)
	fan := fanProfile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(q, fan, 0.5, 0.3)
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 10000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := NewTopK(30)
		for j, s := range scores {
			tk.Offer(fmt.Sprintf("u%d", j), s)
		}
	}
}
