//go:build !race

package ranking

const raceEnabled = false
