// Package ranking implements the entity-based item–user relevance function
// of Zhou et al. (ICDE 2019, §IV-C), equations (1)–(4):
//
//	Rℓ(v,u) = log p(c|u) + log p̂(up|u) + log Σ_{e ∈ E∪E'} w_e·p̂(e|u)   (2)
//	Rs(v,u) = log ps(c|u)                                              (4)
//	R(v,u)  = (1−λs)·Rℓ(v,u) + λs·Rs(v,u)                              (3)
//
// p(c|u) and ps(c|u) are the BiHMM long-term and short-term next-category
// probabilities (computed by the caller); p̂(up|u) and p̂(e|u) are
// Dirichlet-smoothed MLEs from the user profile; w_e is 1 for original
// entities and the proximity expansion weight for expanded ones.
package ranking

import (
	"math"

	"ssrec/internal/entity"
	"ssrec/internal/model"
	"ssrec/internal/profile"
)

// WeightedEntity is one entity of the query with its weight w_e.
type WeightedEntity struct {
	Name   string
	Weight float64
}

// ItemQuery is an incoming item prepared for scoring: its category and
// producer plus the combined entity list E ∪ E' with weights.
type ItemQuery struct {
	ItemID   string
	Category string
	Producer string
	Entities []WeightedEntity
}

// BuildQuery converts an item into a query. If expander is non-nil the
// item's entity set is expanded (diversity, §IV-C); original entities get
// weight 1, expanded ones their proximity weight.
func BuildQuery(v model.Item, expander *entity.Expander) ItemQuery {
	q := ItemQuery{ItemID: v.ID, Category: v.Category, Producer: v.Producer}
	q.Entities = make([]WeightedEntity, 0, len(v.Entities))
	for _, e := range v.Entities {
		q.Entities = append(q.Entities, WeightedEntity{Name: e, Weight: 1})
	}
	if expander != nil {
		for _, x := range expander.Expand(v.Category, v.Entities) {
			q.Entities = append(q.Entities, WeightedEntity{Name: x.Entity, Weight: x.Weight})
		}
	}
	return q
}

// Scorer evaluates the relevance function against user profiles.
type Scorer struct {
	// LambdaS balances short- vs long-term interest (Eq. 3); the paper's
	// tuned optima are 0.4 (YTube) and 0.3 (MLens).
	LambdaS float64
	// Background supplies the Dirichlet smoothing reference.
	Background *profile.Background
}

// NewScorer returns a scorer with the given balance parameter.
func NewScorer(lambdaS float64, bg *profile.Background) *Scorer {
	return &Scorer{LambdaS: lambdaS, Background: bg}
}

// logFloor avoids -Inf when a probability underflows to zero.
const logFloor = 1e-12

func safeLog(v float64) float64 {
	if v < logFloor {
		v = logFloor
	}
	return math.Log(v)
}

// LongTerm computes Rℓ(v,u) per Eq. (2). pCat is the BiHMM long-term
// probability p(c|u) of the item's category.
func (s *Scorer) LongTerm(q ItemQuery, p *profile.Profile, pCat float64) float64 {
	score := safeLog(pCat)
	score += safeLog(p.ProducerMLE(q.Producer, s.Background))
	var entSum float64
	for _, we := range q.Entities {
		entSum += we.Weight * p.EntityMLE(q.Category, we.Name, s.Background)
	}
	score += safeLog(entSum)
	return score
}

// ShortTerm computes Rs(v,u) per Eq. (4): only the BiHMM prediction over
// the short-term window contributes (MLE over a handful of window items
// would be too noisy — paper §IV-C).
func (s *Scorer) ShortTerm(pCatShort float64) float64 {
	return safeLog(pCatShort)
}

// Score computes the final R(v,u) per Eq. (3).
func (s *Scorer) Score(q ItemQuery, p *profile.Profile, pCatLong, pCatShort float64) float64 {
	return (1-s.LambdaS)*s.LongTerm(q, p, pCatLong) + s.LambdaS*s.ShortTerm(pCatShort)
}

// Recommendation re-exports the shared result type for convenience.
type Recommendation = model.Recommendation

// TopK maintains the k best user scores with deterministic tie-breaking
// (min-heap semantics via simple insertion; k is small in practice).
type TopK struct {
	K     int
	items []Recommendation
}

// NewTopK returns an accumulator for the best k recommendations.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{K: k}
}

// Offer inserts a candidate, evicting the current worst if full.
func (t *TopK) Offer(userID string, score float64) {
	r := Recommendation{UserID: userID, Score: score}
	if len(t.items) < t.K {
		t.items = append(t.items, r)
		t.bubbleUp()
		return
	}
	if !model.ByScoreDesc(r, t.items[0]) {
		return // not better than current worst
	}
	t.items[0] = r
	t.sink()
}

// WorstScore returns the score of the k-th best entry, or -Inf while the
// accumulator is not yet full. This is the LB of Algorithm 1.
func (t *TopK) WorstScore() float64 {
	if len(t.items) < t.K {
		return math.Inf(-1)
	}
	return t.items[0].Score
}

// Len returns the current number of entries.
func (t *TopK) Len() int { return len(t.items) }

// Sorted returns the accumulated recommendations best-first.
func (t *TopK) Sorted() []Recommendation {
	out := append([]Recommendation(nil), t.items...)
	// Simple insertion sort — k ≤ 30 in all experiments.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && model.ByScoreDesc(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// min-heap on "worst first": items[0] is the entry that would lose to any
// other (lowest score, ties to later user IDs).
func worseThan(a, b Recommendation) bool { return model.ByScoreDesc(b, a) }

func (t *TopK) bubbleUp() {
	i := len(t.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !worseThan(t.items[i], t.items[parent]) {
			break
		}
		t.items[i], t.items[parent] = t.items[parent], t.items[i]
		i = parent
	}
}

func (t *TopK) sink() {
	i := 0
	n := len(t.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && worseThan(t.items[l], t.items[smallest]) {
			smallest = l
		}
		if r < n && worseThan(t.items[r], t.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.items[i], t.items[smallest] = t.items[smallest], t.items[i]
		i = smallest
	}
}
