//go:build race

package ranking

// raceEnabled reports that the race detector is active; allocation-count
// tests are skipped because instrumentation allocates.
const raceEnabled = true
