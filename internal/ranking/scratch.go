// scratch.go pools the entity slices of ItemQuery the way
// cppse.queryScratch pools query encodings: one QueryScratch per
// in-flight recommend call owns the WeightedEntity backing array and the
// expansion buffer, so steady-state query building performs zero
// allocations (the ROADMAP's "allocation-free BuildQuery" item).
package ranking

import (
	"sync"

	"ssrec/internal/entity"
	"ssrec/internal/model"
)

// QueryScratch carries the reusable buffers of one query build: the
// combined E ∪ E' entity list an ItemQuery points into and the expansion
// staging buffer. A zero QueryScratch is ready to use; GetQueryScratch /
// PutQueryScratch bracket pooled use.
//
// The ItemQuery returned by BuildQuery aliases the scratch's backing
// array: it is valid only until the scratch is released or reused, so
// callers must finish scoring (or copy the query) before PutQueryScratch.
type QueryScratch struct {
	ents []WeightedEntity
	exp  []entity.Expansion
}

var queryScratchPool = sync.Pool{New: func() any { return new(QueryScratch) }}

// GetQueryScratch draws a scratch from the pool.
func GetQueryScratch() *QueryScratch { return queryScratchPool.Get().(*QueryScratch) }

// PutQueryScratch returns a scratch to the pool. The buffers keep their
// capacity but drop their string references — query entities can come
// from request-decoded items, and an idle pooled scratch must not pin
// the last caller's data.
func PutQueryScratch(s *QueryScratch) {
	s.ents = s.ents[:cap(s.ents)]
	clear(s.ents)
	s.ents = s.ents[:0]
	s.exp = s.exp[:cap(s.exp)]
	clear(s.exp)
	s.exp = s.exp[:0]
	queryScratchPool.Put(s)
}

// BuildQuery is the pooled equivalent of the package-level BuildQuery:
// identical content and entity order, but the query's Entities slice is
// carved from the scratch's recycled backing array instead of freshly
// allocated.
func (s *QueryScratch) BuildQuery(v model.Item, expander *entity.Expander) ItemQuery {
	s.ents = s.ents[:0]
	for _, e := range v.Entities {
		s.ents = append(s.ents, WeightedEntity{Name: e, Weight: 1})
	}
	if expander != nil {
		s.exp = expander.ExpandAppend(s.exp[:0], v.Category, v.Entities)
		for _, x := range s.exp {
			s.ents = append(s.ents, WeightedEntity{Name: x.Entity, Weight: x.Weight})
		}
	}
	return ItemQuery{ItemID: v.ID, Category: v.Category, Producer: v.Producer, Entities: s.ents}
}
