package ranking

import (
	"fmt"
	"testing"

	"ssrec/internal/entity"
	"ssrec/internal/model"
)

// richExpander builds an expander with enough co-occurrence structure that
// expansion actually fires for the bench item.
func richExpander() *entity.Expander {
	x := entity.NewExpander(5, 3)
	for i := 0; i < 20; i++ {
		x.Observe("sports", []string{"Messi", "worldcup", "Ronaldo", "qatar"})
		x.Observe("sports", []string{"Messi", "psg", "Mbappe"})
		x.Observe("sports", []string{"Nadal", "Federer", "wimbledon"})
	}
	return x
}

func TestQueryScratchEquivalence(t *testing.T) {
	x := richExpander()
	items := []model.Item{
		{ID: "a", Category: "sports", Producer: "bbc", Entities: []string{"Messi", "worldcup"}},
		{ID: "b", Category: "sports", Producer: "espn", Entities: []string{"Nadal"}},
		{ID: "c", Category: "music", Producer: "mtv", Entities: []string{"Adele"}},
		{ID: "d", Category: "sports", Producer: "bbc", Entities: nil},
	}
	sc := GetQueryScratch()
	defer PutQueryScratch(sc)
	for _, v := range items {
		for _, exp := range []*entity.Expander{nil, x} {
			want := BuildQuery(v, exp)
			got := sc.BuildQuery(v, exp)
			if got.ItemID != want.ItemID || got.Category != want.Category || got.Producer != want.Producer {
				t.Fatalf("item %s: header mismatch: got %+v want %+v", v.ID, got, want)
			}
			if len(got.Entities) != len(want.Entities) {
				t.Fatalf("item %s: %d entities, want %d", v.ID, len(got.Entities), len(want.Entities))
			}
			for i := range want.Entities {
				if got.Entities[i] != want.Entities[i] {
					t.Fatalf("item %s entity %d: got %+v want %+v", v.ID, i, got.Entities[i], want.Entities[i])
				}
			}
		}
	}
}

// TestQueryScratchAllocFree pins the ROADMAP regression target: building a
// query through pooled scratch must not allocate in steady state (the seed
// path allocated ~28 objects per item with expansion).
func TestQueryScratchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the allocation contract")
	}
	x := richExpander()
	v := model.Item{ID: "a", Category: "sports", Producer: "bbc", Entities: []string{"Messi", "worldcup", "Nadal"}}
	sc := GetQueryScratch()
	defer PutQueryScratch(sc)
	sc.BuildQuery(v, x) // warm the buffers
	allocs := testing.AllocsPerRun(200, func() {
		q := sc.BuildQuery(v, x)
		if len(q.Entities) == 0 {
			t.Fatal("no entities")
		}
	})
	if allocs > 0.5 {
		t.Errorf("scratch BuildQuery allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkBuildQueryAllocs is the allocs/op regression benchmark of the
// satellite task: -benchmem shows the naive path's per-item allocations vs
// the pooled scratch's zero.
func BenchmarkBuildQueryAllocs(b *testing.B) {
	x := richExpander()
	v := model.Item{ID: "a", Category: "sports", Producer: "bbc", Entities: []string{"Messi", "worldcup", "Nadal"}}
	for _, mode := range []string{"naive", "scratch"} {
		b.Run(fmt.Sprintf("mode=%s", mode), func(b *testing.B) {
			b.ReportAllocs()
			if mode == "naive" {
				for i := 0; i < b.N; i++ {
					BuildQuery(v, x)
				}
				return
			}
			sc := GetQueryScratch()
			defer PutQueryScratch(sc)
			for i := 0; i < b.N; i++ {
				sc.BuildQuery(v, x)
			}
		})
	}
}
