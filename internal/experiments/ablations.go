package experiments

import (
	"fmt"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/evalx"
	"ssrec/internal/shx"
)

// Ablations beyond the paper's figures: each isolates one design choice
// DESIGN.md calls out. All run on the YTube-shaped dataset.

// PruningRow compares Algorithm 1 against a full scan of the same
// candidate trees.
type PruningRow struct {
	Items          int
	IndexPerItem   time.Duration // branch-and-bound
	ScanPerItem    time.Duration // same trees, every leaf scored
	EntriesScored  int           // total across items (index arm)
	EntriesTotal   int           // total candidate entries
	ResultsMatched bool          // exactness check
}

// AblationPruning measures the benefit of the upper-bound candidate
// pruning (Lemmas 1–2) with identical results guaranteed.
func AblationPruning(o Options) PruningRow {
	o.fill()
	ds := Datasets(o)["YTube"]
	eng := core.New(engineConfig(ds, o))
	if err := evalx.Train(eng, ds, evalx.Setup{}); err != nil {
		return PruningRow{}
	}
	nItems := 200
	if o.Quick {
		nItems = 50
	}
	if nItems > len(ds.Items) {
		nItems = len(ds.Items)
	}
	// k = 10: pruning headroom requires k well below the candidate
	// population, which tiny Quick datasets do not give k = 30.
	const k = 10
	row := PruningRow{Items: nItems, ResultsMatched: true}
	var idxTotal, scanTotal time.Duration
	for i := 0; i < nItems; i++ {
		v := ds.Items[len(ds.Items)-1-i] // late items: richest profiles
		t0 := time.Now()
		got, stats := eng.RecommendStats(v, k)
		idxTotal += time.Since(t0)
		row.EntriesScored += stats.EntriesScored
		row.EntriesTotal += stats.EntriesScored + stats.EntriesSkipped

		t1 := time.Now()
		want := eng.RecommendScan(v, k)
		scanTotal += time.Since(t1)
		if len(got) != len(want) {
			row.ResultsMatched = false
		} else {
			for j := range got {
				if got[j] != want[j] {
					row.ResultsMatched = false
					break
				}
			}
		}
	}
	row.IndexPerItem = idxTotal / time.Duration(nItems)
	row.ScanPerItem = scanTotal / time.Duration(nItems)
	return row
}

// BlocksRow compares the index built with one block against tuned blocks
// (the Table II memory argument turned into latency and width numbers).
type BlocksRow struct {
	Blocks       int
	MaxEntityUni int
	PerItem      time.Duration
}

// AblationBlocks sweeps the forced block count and reports query latency
// and tree width.
func AblationBlocks(o Options) []BlocksRow {
	o.fill()
	ds := Datasets(o)["YTube"]
	counts := []int{1, 5, 20}
	if o.Quick {
		counts = []int{1, 10}
	}
	nItems := 150
	if o.Quick {
		nItems = 40
	}
	if nItems > len(ds.Items) {
		nItems = len(ds.Items)
	}
	var rows []BlocksRow
	for _, k := range counts {
		cfg := engineConfig(ds, o)
		cfg.FixedBlocks = k
		eng := core.New(cfg)
		if err := evalx.Train(eng, ds, evalx.Setup{}); err != nil {
			continue
		}
		t0 := time.Now()
		for i := 0; i < nItems; i++ {
			eng.Recommend(ds.Items[len(ds.Items)-1-i], 30)
		}
		rows = append(rows, BlocksRow{
			Blocks:       eng.Index().Stats().Blocks,
			MaxEntityUni: eng.Index().Stats().MaxEntityUni,
			PerItem:      time.Since(t0) / time.Duration(nItems),
		})
	}
	return rows
}

// HashRow compares the paper's chained shift-add-xor table against Go's
// built-in map on the same key population.
type HashRow struct {
	Keys      int
	ShxPerOp  time.Duration
	MapPerOp  time.Duration
	ShxChains shx.ChainStats
}

// AblationHash measures point lookups over the category–entity key space.
func AblationHash(o Options) HashRow {
	o.fill()
	ds := Datasets(o)["YTube"]
	keys := make([]string, 0, 4096)
	for _, v := range ds.Items {
		for _, e := range v.Entities {
			keys = append(keys, shx.PairKey(v.Category, e))
		}
	}
	tab := shx.NewTable(1 << 12)
	m := make(map[string]int, len(keys))
	for i, k := range keys {
		tab.Insert(k, i)
		m[k] = i
	}
	iters := 200_000
	if o.Quick {
		iters = 50_000
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		tab.Lookup(keys[i%len(keys)])
	}
	shxD := time.Since(t0)
	t1 := time.Now()
	var sink int
	for i := 0; i < iters; i++ {
		sink += m[keys[i%len(keys)]]
	}
	mapD := time.Since(t1)
	_ = sink
	return HashRow{
		Keys:      tab.Len(),
		ShxPerOp:  shxD / time.Duration(iters),
		MapPerOp:  mapD / time.Duration(iters),
		ShxChains: tab.Stats(),
	}
}

// ExpansionRow reports the cost and coverage impact of entity expansion.
type ExpansionRow struct {
	System        string
	PAt10         float64
	PerItem       time.Duration
	AvgQueryEnts  float64 // average entity count after (or without) expansion
	ItemsEvaluted int
}

// AblationExpansion compares ssRec with and without entity expansion on
// effectiveness and per-item cost.
func AblationExpansion(o Options) []ExpansionRow {
	o.fill()
	ds := Datasets(o)["YTube"]
	var rows []ExpansionRow
	for _, disable := range []bool{true, false} {
		cfg := engineConfig(ds, o)
		cfg.DisableExpansion = disable
		eng := core.New(cfg)
		res, err := evalx.Run(eng, ds, setupFor(o), []int{10})
		if err != nil {
			continue
		}
		var ents int
		n := 100
		if n > len(ds.Items) {
			n = len(ds.Items)
		}
		for i := 0; i < n; i++ {
			ents += len(eng.BuildQuery(ds.Items[i]).Entities)
		}
		rows = append(rows, ExpansionRow{
			System:        eng.Name(),
			PAt10:         res.PAtK[10],
			PerItem:       res.RecommendLatency,
			AvgQueryEnts:  float64(ents) / float64(n),
			ItemsEvaluted: res.ItemsTested,
		})
	}
	return rows
}

// String implementations keep cmd/ssrec-bench output compact.

func (r PruningRow) String() string {
	frac := 0.0
	if r.EntriesTotal > 0 {
		frac = float64(r.EntriesScored) / float64(r.EntriesTotal)
	}
	return fmt.Sprintf("items=%d index=%v scan=%v scored=%.0f%% match=%v",
		r.Items, r.IndexPerItem, r.ScanPerItem, frac*100, r.ResultsMatched)
}

func (r BlocksRow) String() string {
	return fmt.Sprintf("blocks=%-3d maxEntUni=%-5d perItem=%v", r.Blocks, r.MaxEntityUni, r.PerItem)
}

func (r HashRow) String() string {
	return fmt.Sprintf("keys=%d shx=%v map=%v chains{%v}", r.Keys, r.ShxPerOp, r.MapPerOp, r.ShxChains)
}

func (r ExpansionRow) String() string {
	return fmt.Sprintf("%-9s P@10=%.3f perItem=%v avgQueryEnts=%.1f", r.System, r.PAt10, r.PerItem, r.AvgQueryEnts)
}
