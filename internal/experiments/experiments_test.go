package experiments

import (
	"testing"
)

// quickOpts keeps experiment tests fast; the full protocol runs in the
// benchmarks and cmd/ssrec-bench.
func quickOpts() Options {
	return Options{Scale: 0.15, Seed: 7, Quick: true, Ks: []int{5, 10}}
}

func TestDatasetsBuildsAllFour(t *testing.T) {
	dss := Datasets(quickOpts())
	for _, name := range DatasetNames {
		ds := dss[name]
		if ds == nil {
			t.Fatalf("missing dataset %s", name)
		}
		if len(ds.Items) == 0 || len(ds.Interactions) == 0 {
			t.Errorf("%s degenerate: %v", name, ds.ComputeStats())
		}
	}
	// Cache must return identical pointers.
	again := Datasets(quickOpts())
	if again["YTube"] != dss["YTube"] {
		t.Error("dataset cache miss on identical options")
	}
}

func TestTable2BlocksShrinkUniverses(t *testing.T) {
	rows := Table2(quickOpts())
	if len(rows) < 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Blocks != 1 {
		t.Fatalf("first row blocks = %d", rows[0].Blocks)
	}
	last := rows[len(rows)-1]
	if last.MaxEntity > rows[0].MaxEntity {
		t.Errorf("blocking grew entity universe: %d -> %d", rows[0].MaxEntity, last.MaxEntity)
	}
	if last.MaxProducer > rows[0].MaxProducer {
		t.Errorf("blocking grew producer universe: %d -> %d", rows[0].MaxProducer, last.MaxProducer)
	}
}

func TestTable3Shapes(t *testing.T) {
	rows := Table3(quickOpts())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "YTube" || rows[1].Name != "SynYTube" {
		t.Errorf("order wrong: %v %v", rows[0].Name, rows[1].Name)
	}
	// Synthetic sets match their source shape.
	if rows[1].Items != rows[0].Items || rows[1].Categories != rows[0].Categories {
		t.Errorf("SynYTube diverges from YTube: %v vs %v", rows[1], rows[0])
	}
}

func TestFig5BiHMMAdvantage(t *testing.T) {
	rows := Fig5(quickOpts())
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	var hmmSum, biSum float64
	var n int
	for _, r := range rows {
		if r.Users <= 0 || r.HMM < 0 || r.HMM > 1 || r.BiHMM < 0 || r.BiHMM > 1 {
			t.Errorf("bad row %+v", r)
		}
		hmmSum += r.HMM * float64(r.Users)
		biSum += r.BiHMM * float64(r.Users)
		n += r.Users
	}
	// The paper's Fig. 5 claim: BiHMM ≥ HMM on average.
	if biSum/float64(n) < hmmSum/float64(n)-0.02 {
		t.Errorf("BiHMM (%.3f) below HMM (%.3f) on average", biSum/float64(n), hmmSum/float64(n))
	}
}

func TestFig6WindowSweep(t *testing.T) {
	rows := Fig6(quickOpts(), "YTube")
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for k, p := range r.PAtK {
			if p < 0 || p > 1 {
				t.Errorf("W=%v P@%d=%v out of range", r.X, k, p)
			}
		}
	}
}

func TestFig7LambdaSweep(t *testing.T) {
	rows := Fig7(quickOpts(), "YTube")
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.X < 0 || r.X > 1 {
			t.Errorf("lambda %v out of range", r.X)
		}
	}
}

func TestFig8SystemsComplete(t *testing.T) {
	o := quickOpts()
	rows := Fig8(o)
	// 4 systems × 4 datasets.
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	perDS := map[string]map[string]map[int]float64{}
	for _, r := range rows {
		if perDS[r.Dataset] == nil {
			perDS[r.Dataset] = map[string]map[int]float64{}
		}
		perDS[r.Dataset][r.System] = r.PAtK
	}
	for _, name := range DatasetNames {
		sys := perDS[name]
		for _, want := range []string{"CTT", "UCD", "ssRec-ne", "ssRec"} {
			if sys[want] == nil {
				t.Errorf("%s missing system %s", name, want)
			}
		}
	}
}

func TestFig9UpdatesHelp(t *testing.T) {
	rows := Fig9(quickOpts())
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// On average across datasets, ssRec with updates should beat ssRec-nu.
	var nu, full float64
	for _, r := range rows {
		switch r.System {
		case "ssRec-nu":
			nu += r.PAtK[10]
		case "ssRec":
			full += r.PAtK[10]
		}
	}
	if full < nu {
		t.Errorf("updates hurt on average: ssRec=%.4f ssRec-nu=%.4f", full/4, nu/4)
	}
}

func TestFig10LatencyRows(t *testing.T) {
	rows := Fig10(quickOpts())
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	systems := map[string]bool{}
	for _, r := range rows {
		systems[r.System] = true
		if r.Partitions < 1 || r.Partitions > 4 {
			t.Errorf("bad partition %d", r.Partitions)
		}
		if r.PerItem < 0 {
			t.Errorf("negative latency")
		}
	}
	for _, want := range []string{"CTT", "UCD", "CPPse-index"} {
		if !systems[want] {
			t.Errorf("missing system %s", want)
		}
	}
}

func TestFig11UpdateCostsGrow(t *testing.T) {
	rows := Fig11(quickOpts())
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	byDS := map[string][]UpdateRow{}
	for _, r := range rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	for name, rs := range byDS {
		for i := 1; i < len(rs); i++ {
			if rs[i].Total < rs[i-1].Total {
				t.Errorf("%s: cumulative update cost decreased at partition %d", name, i+1)
			}
		}
	}
}

func TestAblationPruningExactAndCheaper(t *testing.T) {
	row := AblationPruning(quickOpts())
	if !row.ResultsMatched {
		t.Fatal("pruned search returned different results from scan")
	}
	if row.Items == 0 {
		t.Fatal("nothing measured")
	}
	if row.EntriesTotal > 0 && row.EntriesScored >= row.EntriesTotal {
		t.Errorf("no candidates pruned: %d of %d scored", row.EntriesScored, row.EntriesTotal)
	}
}

func TestAblationBlocks(t *testing.T) {
	rows := AblationBlocks(quickOpts())
	if len(rows) < 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[len(rows)-1].MaxEntityUni > rows[0].MaxEntityUni {
		t.Errorf("more blocks widened trees: %v", rows)
	}
}

func TestAblationHash(t *testing.T) {
	row := AblationHash(quickOpts())
	if row.Keys == 0 || row.ShxPerOp <= 0 || row.MapPerOp <= 0 {
		t.Fatalf("degenerate row: %+v", row)
	}
}

func TestAblationExpansion(t *testing.T) {
	rows := AblationExpansion(quickOpts())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].System != "ssRec-ne" || rows[1].System != "ssRec" {
		t.Errorf("system order: %v %v", rows[0].System, rows[1].System)
	}
	if rows[1].AvgQueryEnts <= rows[0].AvgQueryEnts {
		t.Errorf("expansion did not widen queries: %v vs %v", rows[1].AvgQueryEnts, rows[0].AvgQueryEnts)
	}
}
