// Package experiments reproduces every table and figure of the evaluation
// section of Zhou et al. (ICDE 2019, §VI). Each experiment is a function
// returning typed rows; cmd/ssrec-bench prints them and bench_test.go wraps
// each in a testing.B benchmark. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ssrec/internal/baseline"
	"ssrec/internal/bihmm"
	"ssrec/internal/core"
	"ssrec/internal/cppse"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/hmm"
	"ssrec/internal/profile"
)

// DatasetNames lists the four collections of Table III in report order.
var DatasetNames = []string{"YTube", "SynYTube", "MLens", "SynMLens"}

// Options tunes experiment cost. The zero value reproduces the full
// laptop-scale protocol; Quick shrinks grids and caps item counts for the
// benchmark suite.
type Options struct {
	Scale float64 // dataset scale factor (default 0.25)
	Seed  int64   // base seed (default 42)
	Quick bool    // coarser grids, fewer users/items
	Ks    []int   // precision cutoffs (default 5,10,20,30)
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Ks) == 0 {
		o.Ks = []int{5, 10, 20, 30}
	}
}

// ---- dataset cache ----

var (
	dsMu    sync.Mutex
	dsCache = map[string]*dataset.Dataset{}
)

// Datasets builds (and caches) the four collections at the requested scale.
func Datasets(o Options) map[string]*dataset.Dataset {
	o.fill()
	dsMu.Lock()
	defer dsMu.Unlock()
	key := fmt.Sprintf("%.4f-%d", o.Scale, o.Seed)
	out := map[string]*dataset.Dataset{}
	get := func(name string, build func() *dataset.Dataset) *dataset.Dataset {
		ck := key + "-" + name
		if d := dsCache[ck]; d != nil {
			return d
		}
		d := build()
		dsCache[ck] = d
		return d
	}
	yt := get("YTube", func() *dataset.Dataset {
		cfg := dataset.YTubeConfig(o.Scale)
		cfg.Seed = o.Seed
		return dataset.Generate(cfg)
	})
	ml := get("MLens", func() *dataset.Dataset {
		cfg := dataset.MLensConfig(o.Scale)
		cfg.Seed = o.Seed + 1
		return dataset.Generate(cfg)
	})
	out["YTube"] = yt
	out["MLens"] = ml
	out["SynYTube"] = get("SynYTube", func() *dataset.Dataset {
		return dataset.Replicate(yt, "SynYTube", o.Seed+2)
	})
	out["SynMLens"] = get("SynMLens", func() *dataset.Dataset {
		return dataset.Replicate(ml, "SynMLens", o.Seed+3)
	})
	return out
}

// tunedLambda holds the λs optima found by the Fig. 7 protocol on our
// generated collections (the paper's §VI-C4 uses the same "optimal
// settings from previous experiments" rule; its own optima were 0.4 for
// YTube and 0.3 for MLens — our MLens-shaped workload is more
// recency-driven, so its optimum sits higher; see EXPERIMENTS.md).
var tunedLambda = map[string]float64{
	"YTube":    0.4,
	"SynYTube": 0.4,
	"MLens":    0.8,
	"SynMLens": 0.8,
}

// engineConfig returns the shared engine configuration for a dataset,
// with the λs optimum tuned per collection.
func engineConfig(ds *dataset.Dataset, o Options) core.Config {
	cfg := core.Config{
		Categories:   ds.Categories,
		TrainMaxIter: 6,
		Restarts:     1,
		Seed:         o.Seed,
	}
	if lam, ok := tunedLambda[ds.Name]; ok {
		cfg.LambdaS = lam
	}
	return cfg
}

func setupFor(o Options) evalx.Setup {
	s := evalx.Setup{}
	if o.Quick {
		s.MaxItemsPerPartition = 40
	}
	return s
}

// ---- Table II: signature size vs user block count ----

// Table2Row is one row of Table II: forcing more user blocks shrinks the
// per-tree universes.
type Table2Row struct {
	Blocks      int
	MaxEntity   int // largest per-tree entity universe
	MaxProducer int // largest per-block producer universe
}

// Table2 reproduces Table II. It uses a YTube-shaped dataset with a
// paper-scale entity vocabulary (the paper has ≈2,900 entities per
// category): the blocking effect on per-tree universes only shows when the
// vocabulary is large relative to what any one user block touches.
func Table2(o Options) []Table2Row {
	o.fill()
	cfg := dataset.YTubeConfig(o.Scale)
	cfg.Seed = o.Seed
	cfg.EntitiesPerCategory = 600
	cfg.TopicsPerCategory = 30
	// A paper-like producer-to-consumer ratio (3,146 producers for 8.4M
	// consumers still means hundreds of producers per block-relevant
	// category slice); with the generator default every block would touch
	// every producer and the producer column of Table II would be flat.
	cfg.NumProducers = cfg.NumProducers * 4
	cfg.CreateProb = 0.08
	ds := dataset.Generate(cfg)
	store, bg := profilesFromDataset(ds)
	probs := cppse.MLEProbs{Store: store, NCats: len(ds.Categories)}
	blockCounts := []int{1, 10, 20, 30, 40, 50}
	if o.Quick {
		blockCounts = []int{1, 10, 30}
	}
	var rows []Table2Row
	for _, k := range blockCounts {
		ix, err := cppse.Build(store, bg, probs, cppse.Config{
			Categories:  ds.Categories,
			FixedBlocks: k,
		})
		if err != nil {
			continue
		}
		s := ix.Stats()
		rows = append(rows, Table2Row{Blocks: k, MaxEntity: s.MaxEntityUni, MaxProducer: s.MaxProducerUni})
	}
	return rows
}

// profilesFromDataset materialises long-term profiles (and background) from
// a full dataset — the index-construction input.
func profilesFromDataset(ds *dataset.Dataset) (*profile.Store, *profile.Background) {
	store := profile.NewStore(5)
	for _, ir := range ds.Interactions {
		if v, ok := ds.Item(ir.ItemID); ok {
			store.Get(ir.UserID).ObserveLongTerm(profile.EventFromItem(v, ir.Timestamp))
		}
	}
	return store, profile.NewBackground(ds.Items, 10)
}

// ---- Table III: dataset overview ----

// Table3 reproduces Table III: the statistics of the four collections.
func Table3(o Options) []dataset.Stats {
	o.fill()
	dss := Datasets(o)
	var rows []dataset.Stats
	for _, name := range DatasetNames {
		rows = append(rows, dss[name].ComputeStats())
	}
	return rows
}

// ---- Fig. 5: BiHMM vs HMM accuracy ----

// Fig5Row is one bar pair of Fig. 5: users grouped by their optimal hidden
// state count, with the mean next-category accuracy of HMM and BiHMM.
type Fig5Row struct {
	Dataset string
	States  int
	Users   int
	HMM     float64
	BiHMM   float64
}

// Fig5 reproduces the BiHMM-vs-HMM comparison: per consumer, the optimal
// HMM state count is tuned on the first 80% of its history (peak accuracy
// on the last 20%); a BiHMM with the same state count is trained on the
// producer-state-annotated history; users are grouped by optimal state
// count and mean accuracies reported.
func Fig5(o Options) []Fig5Row {
	o.fill()
	dss := Datasets(o)
	maxStates := 8
	maxUsers := 30
	minHistory := 25
	trainOpts := hmm.TrainOptions{MaxIter: 12, Restarts: 2}
	biOpts := bihmm.TrainOptions{MaxIter: 12, Restarts: 3}
	if o.Quick {
		maxStates = 4
		maxUsers = 10
		trainOpts = hmm.TrainOptions{MaxIter: 8, Restarts: 1}
		biOpts = bihmm.TrainOptions{MaxIter: 8, Restarts: 2}
	}

	var rows []Fig5Row
	for _, name := range DatasetNames {
		ds := dss[name]
		obsByUser, nCats := consumerObservations(ds, o)
		type acc struct {
			users int
			hmm   float64
			bihmm float64
		}
		groups := map[int]*acc{}
		users := sortedUserIDs(obsByUser)
		done := 0
		for _, uid := range users {
			obs := obsByUser[uid]
			if len(obs) < minHistory {
				continue
			}
			if done >= maxUsers {
				break
			}
			done++
			catSeq := make([]int, len(obs))
			for i, ob := range obs {
				catSeq[i] = ob.Cat
			}
			nOpt, _, hmmAcc := hmm.SelectStates(catSeq, maxStates, nCats, o.Seed+int64(done), trainOpts)
			split := len(obs) * 8 / 10
			// nz = nCats: the aligned producer-state alphabet.
			bi, _, err := bihmm.Fit(nOpt, nCats, nCats, [][]bihmm.Obs{obs[:split]}, o.Seed+int64(done), biOpts)
			if err != nil {
				continue
			}
			biAcc := bihmm.EvaluateNextPrediction(bi, obs, split)
			g := groups[nOpt]
			if g == nil {
				g = &acc{}
				groups[nOpt] = g
			}
			g.users++
			g.hmm += hmmAcc
			g.bihmm += biAcc
		}
		var states []int
		for s := range groups {
			states = append(states, s)
		}
		sort.Ints(states)
		for _, s := range states {
			g := groups[s]
			rows = append(rows, Fig5Row{
				Dataset: name, States: s, Users: g.users,
				HMM:   g.hmm / float64(g.users),
				BiHMM: g.bihmm / float64(g.users),
			})
		}
	}
	return rows
}

// consumerObservations derives per-consumer (category, producer-state)
// sequences: the producer layer is trained on per-producer item streams
// and every item gets a decoded Z.
func consumerObservations(ds *dataset.Dataset, o Options) (map[string][]bihmm.Obs, int) {
	catIdx := map[string]int{}
	for i, c := range ds.Categories {
		catIdx[c] = i
	}
	prodHist := map[string][]int{}
	prodItems := map[string][]string{}
	for _, v := range ds.Items {
		ci, ok := catIdx[v.Category]
		if !ok {
			continue
		}
		prodHist[v.Producer] = append(prodHist[v.Producer], ci)
		prodItems[v.Producer] = append(prodItems[v.Producer], v.ID)
	}
	pl := bihmm.FitProducerLayer(prodHist, len(ds.Categories), bihmm.ProducerLayerOptions{
		NZ: 3, MinHistory: 5, Seed: o.Seed,
		Train: hmm.TrainOptions{MaxIter: 8, Restarts: 1},
	})
	itemZ := map[string]int{}
	for up, ids := range prodItems {
		for pos, id := range ids {
			itemZ[id] = pl.AlignedStateAt(up, pos)
		}
	}
	obsByUser := map[string][]bihmm.Obs{}
	for _, ir := range ds.Interactions {
		v, ok := ds.Item(ir.ItemID)
		if !ok {
			continue
		}
		ci, ok := catIdx[v.Category]
		if !ok {
			continue
		}
		z, ok := itemZ[v.ID]
		if !ok {
			z = bihmm.ZUnknown
		}
		obsByUser[ir.UserID] = append(obsByUser[ir.UserID], bihmm.Obs{Cat: ci, Z: z})
	}
	return obsByUser, len(ds.Categories)
}

func sortedUserIDs(m map[string][]bihmm.Obs) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- Fig. 6 / Fig. 7: parameter sensitivity ----

// SweepRow is one x-axis point of a parameter sweep with P@k values.
type SweepRow struct {
	X    float64
	PAtK map[int]float64
}

// Fig6 reproduces the short-term window size sweep on one dataset: for
// each |W| ∈ 1..10 the precision at the best λs over the grid is reported
// (the paper's protocol).
func Fig6(o Options, dsName string) []SweepRow {
	o.fill()
	ds := Datasets(o)[dsName]
	windows := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	lambdas := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if o.Quick {
		windows = []int{1, 3, 5, 8, 10}
		lambdas = []float64{0.2, 0.4, 0.7}
	}
	var rows []SweepRow
	for _, w := range windows {
		best := map[int]float64{}
		for _, lam := range lambdas {
			cfg := engineConfig(ds, o)
			cfg.WindowSize = w
			cfg.LambdaS = lam
			res, err := evalx.Run(core.New(cfg), ds, setupFor(o), o.Ks)
			if err != nil {
				continue
			}
			for _, k := range o.Ks {
				if res.PAtK[k] > best[k] {
					best[k] = res.PAtK[k]
				}
			}
		}
		rows = append(rows, SweepRow{X: float64(w), PAtK: best})
	}
	return rows
}

// Fig7 reproduces the λs sweep with |W| fixed to 5.
func Fig7(o Options, dsName string) []SweepRow {
	o.fill()
	ds := Datasets(o)[dsName]
	lambdas := []float64{0.001, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.999}
	if o.Quick {
		lambdas = []float64{0.001, 0.2, 0.4, 0.6, 0.8, 0.999}
	}
	var rows []SweepRow
	for _, lam := range lambdas {
		cfg := engineConfig(ds, o)
		cfg.WindowSize = 5
		cfg.LambdaS = lam
		res, err := evalx.Run(core.New(cfg), ds, setupFor(o), o.Ks)
		if err != nil {
			continue
		}
		rows = append(rows, SweepRow{X: lam, PAtK: res.PAtK})
	}
	return rows
}

// ---- Fig. 8 / Fig. 9: effectiveness comparisons ----

// SystemRow is one system's P@k results on one dataset.
type SystemRow struct {
	Dataset string
	System  string
	PAtK    map[int]float64
}

// systems builds the comparison set for Fig. 8.
func fig8Systems(ds *dataset.Dataset, o Options) []baseline.Recommender {
	ne := engineConfig(ds, o)
	ne.DisableExpansion = true
	full := engineConfig(ds, o)
	return []baseline.Recommender{
		baseline.NewCTT(baseline.CTTConfig{}),
		baseline.NewUCD(baseline.UCDConfig{}, ds.Categories),
		core.New(ne),
		core.New(full),
	}
}

// Fig8 reproduces the effectiveness comparison: CTT, UCD, ssRec-ne and
// ssRec on all four datasets.
func Fig8(o Options) []SystemRow {
	o.fill()
	dss := Datasets(o)
	var rows []SystemRow
	for _, name := range DatasetNames {
		ds := dss[name]
		for _, rec := range fig8Systems(ds, o) {
			res, err := evalx.Run(rec, ds, setupFor(o), o.Ks)
			if err != nil {
				continue
			}
			rows = append(rows, SystemRow{Dataset: name, System: res.System, PAtK: res.PAtK})
		}
	}
	return rows
}

// Fig9 reproduces the profile-update ablation: ssRec-nu (updates ignored)
// vs ssRec. Both arms run at the paper's base λs = 0.4 so the comparison
// isolates the update effect: at the MLens-tuned λs = 0.8 the frozen arm's
// stale short-term windows dominate the score and confound the ablation.
func Fig9(o Options) []SystemRow {
	o.fill()
	dss := Datasets(o)
	var rows []SystemRow
	for _, name := range DatasetNames {
		ds := dss[name]
		nu := engineConfig(ds, o)
		nu.LambdaS = 0.4
		nu.DisableUpdates = true
		full := engineConfig(ds, o)
		full.LambdaS = 0.4
		for _, rec := range []baseline.Recommender{core.New(nu), core.New(full)} {
			res, err := evalx.Run(rec, ds, setupFor(o), o.Ks)
			if err != nil {
				continue
			}
			rows = append(rows, SystemRow{Dataset: name, System: res.System, PAtK: res.PAtK})
		}
	}
	return rows
}

// ---- Fig. 10: recommendation efficiency ----

// LatencyRow is one (system, #partitions) point: the cumulative average
// per-item recommendation time after that many test partitions.
type LatencyRow struct {
	Dataset    string
	System     string
	Partitions int
	PerItem    time.Duration
}

// Fig10 reproduces the response-time comparison of CTT, UCD and the
// CPPse-index (ssRec) as the replayed stream grows, k = 30.
func Fig10(o Options) []LatencyRow {
	o.fill()
	dss := Datasets(o)
	names := DatasetNames
	if o.Quick {
		names = []string{"YTube", "MLens"}
	}
	var rows []LatencyRow
	for _, name := range names {
		ds := dss[name]
		systems := []baseline.Recommender{
			baseline.NewCTT(baseline.CTTConfig{}),
			baseline.NewUCD(baseline.UCDConfig{}, ds.Categories),
			core.New(engineConfig(ds, o)),
		}
		for _, rec := range systems {
			res, err := evalx.Run(rec, ds, setupFor(o), []int{30})
			if err != nil {
				continue
			}
			sys := res.System
			if sys == "ssRec" {
				sys = "CPPse-index"
			}
			for _, pm := range res.PerPartition {
				rows = append(rows, LatencyRow{
					Dataset: name, System: sys,
					Partitions: pm.Partition, PerItem: pm.RecommendLatency,
				})
			}
		}
	}
	return rows
}

// ---- Fig. 11: update efficiency ----

// UpdateRow is one (dataset, #partitions) point: the cumulative index
// maintenance time after replaying that many partitions of updates.
type UpdateRow struct {
	Dataset    string
	Partitions int
	Total      time.Duration
}

// Fig11 reproduces the social-update cost curve of the CPPse-index.
func Fig11(o Options) []UpdateRow {
	o.fill()
	dss := Datasets(o)
	var rows []UpdateRow
	for _, name := range DatasetNames {
		ds := dss[name]
		res, err := evalx.Run(core.New(engineConfig(ds, o)), ds, setupFor(o), []int{30})
		if err != nil {
			continue
		}
		for _, pm := range res.PerPartition {
			rows = append(rows, UpdateRow{Dataset: name, Partitions: pm.Partition, Total: pm.UpdateTotal})
		}
	}
	return rows
}

// ---- shared pretty-printing ----

// FormatPAtK renders a P@k map in cutoff order.
func FormatPAtK(p map[int]float64, ks []int) string {
	s := ""
	for i, k := range ks {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("P@%d=%.3f", k, p[k])
	}
	return s
}
