package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func tuples(n int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{Key: fmt.Sprintf("k%d", i%7), Value: i, Ts: int64(i)}
	}
	return out
}

// collector is a terminal bolt recording everything it sees.
type collector struct {
	mu   sync.Mutex
	seen []Tuple
}

func (c *collector) Process(t Tuple, emit func(Tuple)) error {
	c.mu.Lock()
	c.seen = append(c.seen, t)
	c.mu.Unlock()
	return nil
}

func TestShuffleDeliversEachTupleOnce(t *testing.T) {
	in := tuples(1000)
	col := &collector{}
	tp := NewTopology("t")
	tp.AddSpout("src", &SliceSpout{Tuples: in})
	tp.AddBolt("work", 4, func(int) Bolt {
		return BoltFunc(func(tu Tuple, emit func(Tuple)) error { emit(tu); return nil })
	}).Shuffle("src")
	tp.AddBolt("sink", 1, func(int) Bolt { return col }).Shuffle("work")

	m, err := tp.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.seen) != len(in) {
		t.Fatalf("sink saw %d tuples, want %d", len(col.seen), len(in))
	}
	counts := map[int]int{}
	for _, tu := range col.seen {
		counts[tu.Value.(int)]++
	}
	for i := range in {
		if counts[i] != 1 {
			t.Fatalf("tuple %d delivered %d times", i, counts[i])
		}
	}
	if got := m["work"].Totals().Processed; got != 1000 {
		t.Errorf("work processed %d", got)
	}
}

func TestFieldsGroupingKeyAffinity(t *testing.T) {
	in := tuples(500)
	var mu sync.Mutex
	keyToInstance := map[string]map[int]bool{}
	tp := NewTopology("t")
	tp.AddSpout("src", &SliceSpout{Tuples: in})
	tp.AddBolt("work", 5, func(inst int) Bolt {
		return BoltFunc(func(tu Tuple, emit func(Tuple)) error {
			mu.Lock()
			m := keyToInstance[tu.Key]
			if m == nil {
				m = map[int]bool{}
				keyToInstance[tu.Key] = m
			}
			m[inst] = true
			mu.Unlock()
			return nil
		})
	}).FieldsBy("src")
	if _, err := tp.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	for k, insts := range keyToInstance {
		if len(insts) != 1 {
			t.Errorf("key %q processed by %d instances", k, len(insts))
		}
	}
	if len(keyToInstance) != 7 {
		t.Errorf("saw %d distinct keys, want 7", len(keyToInstance))
	}
}

func TestBroadcastDeliversToAllInstances(t *testing.T) {
	in := tuples(100)
	var processed [3]uint64
	tp := NewTopology("t")
	tp.AddSpout("src", &SliceSpout{Tuples: in})
	tp.AddBolt("work", 3, func(inst int) Bolt {
		return BoltFunc(func(tu Tuple, emit func(Tuple)) error {
			atomic.AddUint64(&processed[inst], 1)
			return nil
		})
	}).BroadcastFrom("src")
	if _, err := tp.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	for i, p := range processed {
		if p != 100 {
			t.Errorf("instance %d processed %d, want 100", i, p)
		}
	}
}

func TestGlobalGroupingOnlyInstanceZero(t *testing.T) {
	in := tuples(50)
	var processed [4]uint64
	tp := NewTopology("t")
	tp.AddSpout("src", &SliceSpout{Tuples: in})
	tp.AddBolt("work", 4, func(inst int) Bolt {
		return BoltFunc(func(tu Tuple, emit func(Tuple)) error {
			atomic.AddUint64(&processed[inst], 1)
			return nil
		})
	}).GlobalFrom("src")
	if _, err := tp.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if processed[0] != 50 {
		t.Errorf("instance 0 processed %d", processed[0])
	}
	for i := 1; i < 4; i++ {
		if processed[i] != 0 {
			t.Errorf("instance %d processed %d, want 0", i, processed[i])
		}
	}
}

func TestMultiStageTopology(t *testing.T) {
	// src -> double -> sink; double emits each tuple twice.
	in := tuples(200)
	col := &collector{}
	tp := NewTopology("t")
	tp.AddSpout("src", &SliceSpout{Tuples: in})
	tp.AddBolt("double", 3, func(int) Bolt {
		return BoltFunc(func(tu Tuple, emit func(Tuple)) error {
			emit(tu)
			emit(tu)
			return nil
		})
	}).Shuffle("src")
	tp.AddBolt("sink", 2, func(int) Bolt { return col }).Shuffle("double")
	m, err := tp.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.seen) != 400 {
		t.Fatalf("sink saw %d, want 400", len(col.seen))
	}
	if got := m["double"].Totals().Emitted; got != 400 {
		t.Errorf("double emitted %d", got)
	}
}

func TestMultipleSpouts(t *testing.T) {
	col := &collector{}
	tp := NewTopology("t")
	tp.AddSpout("a", &SliceSpout{Tuples: tuples(30)})
	tp.AddSpout("b", &SliceSpout{Tuples: tuples(20)})
	bb := tp.AddBolt("sink", 2, func(int) Bolt { return col })
	bb.Shuffle("a")
	bb.Shuffle("b")
	if _, err := tp.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if len(col.seen) != 50 {
		t.Fatalf("sink saw %d, want 50", len(col.seen))
	}
}

func TestFailureInjectionRetrySucceeds(t *testing.T) {
	// Bolt fails on first attempt for every tuple, succeeds on retry.
	in := tuples(40)
	attempts := map[int]int{}
	var mu sync.Mutex
	tp := NewTopology("t")
	tp.AddSpout("src", &SliceSpout{Tuples: in})
	tp.AddBolt("flaky", 1, func(int) Bolt {
		return BoltFunc(func(tu Tuple, emit func(Tuple)) error {
			mu.Lock()
			defer mu.Unlock()
			attempts[tu.Value.(int)]++
			if attempts[tu.Value.(int)] == 1 {
				return errors.New("transient")
			}
			return nil
		})
	}).Shuffle("src")
	m, err := tp.Run(Options{MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	tot := m["flaky"].Totals()
	if tot.Processed != 40 {
		t.Errorf("processed %d, want 40", tot.Processed)
	}
	if tot.Dropped != 0 {
		t.Errorf("dropped %d, want 0", tot.Dropped)
	}
	if tot.Errors != 40 {
		t.Errorf("errors %d, want 40 (one transient per tuple)", tot.Errors)
	}
}

func TestFailureInjectionPermanentDrops(t *testing.T) {
	in := tuples(10)
	tp := NewTopology("t")
	tp.AddSpout("src", &SliceSpout{Tuples: in})
	tp.AddBolt("dead", 1, func(int) Bolt {
		return BoltFunc(func(Tuple, func(Tuple)) error { return errors.New("permanent") })
	}).Shuffle("src")
	m, err := tp.Run(Options{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	tot := m["dead"].Totals()
	if tot.Dropped != 10 {
		t.Errorf("dropped %d, want 10", tot.Dropped)
	}
	if tot.Processed != 0 {
		t.Errorf("processed %d, want 0", tot.Processed)
	}
}

type closingBolt struct {
	closed *atomic.Bool
}

func (c closingBolt) Process(Tuple, func(Tuple)) error { return nil }
func (c closingBolt) Close() error                     { c.closed.Store(true); return nil }

func TestBoltCloseCalled(t *testing.T) {
	var closed atomic.Bool
	tp := NewTopology("t")
	tp.AddSpout("src", &SliceSpout{Tuples: tuples(5)})
	tp.AddBolt("c", 1, func(int) Bolt { return closingBolt{closed: &closed} }).Shuffle("src")
	if _, err := tp.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if !closed.Load() {
		t.Error("Close was not called")
	}
}

func TestRunErrors(t *testing.T) {
	tp := NewTopology("t")
	if _, err := tp.Run(Options{}); err == nil {
		t.Error("no-spout topology accepted")
	}
	tp2 := NewTopology("t2")
	tp2.AddSpout("src", &SliceSpout{})
	tp2.AddBolt("b", 1, func(int) Bolt { return &collector{} }).Shuffle("ghost")
	if _, err := tp2.Run(Options{}); err == nil {
		t.Error("unknown subscription accepted")
	}
}

func TestDuplicateComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := NewTopology("t")
	tp.AddSpout("x", &SliceSpout{})
	tp.AddSpout("x", &SliceSpout{})
}

func TestSpoutFunc(t *testing.T) {
	n := 0
	s := SpoutFunc(func() (Tuple, bool) {
		if n >= 3 {
			return Tuple{}, false
		}
		n++
		return Tuple{Value: n}, true
	})
	col := &collector{}
	tp := NewTopology("t")
	tp.AddSpout("src", s)
	tp.AddBolt("sink", 1, func(int) Bolt { return col }).Shuffle("src")
	if _, err := tp.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if len(col.seen) != 3 {
		t.Fatalf("saw %d, want 3", len(col.seen))
	}
}

func TestBackpressureSmallBuffers(t *testing.T) {
	// Tiny buffers with a slow sink must still deliver everything.
	in := tuples(500)
	col := &collector{}
	tp := NewTopology("t")
	tp.AddSpout("src", &SliceSpout{Tuples: in})
	tp.AddBolt("sink", 1, func(int) Bolt { return col }).Shuffle("src")
	if _, err := tp.Run(Options{BufferSize: 1}); err != nil {
		t.Fatal(err)
	}
	if len(col.seen) != 500 {
		t.Fatalf("saw %d, want 500", len(col.seen))
	}
}

func TestGroupingString(t *testing.T) {
	for g, want := range map[Grouping]string{
		Shuffle: "shuffle", Fields: "fields", Broadcast: "broadcast", Global: "global",
	} {
		if g.String() != want {
			t.Errorf("String(%d) = %q", g, g.String())
		}
	}
	if Grouping(99).String() == "" {
		t.Error("unknown grouping has empty String")
	}
}

func TestMetricsBusyNanos(t *testing.T) {
	tp := NewTopology("t")
	tp.AddSpout("src", &SliceSpout{Tuples: tuples(100)})
	tp.AddBolt("work", 2, func(int) Bolt {
		return BoltFunc(func(tu Tuple, emit func(Tuple)) error {
			// trivial work
			s := 0
			for i := 0; i < 100; i++ {
				s += i
			}
			_ = s
			return nil
		})
	}).Shuffle("src")
	m, err := tp.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m["work"].Totals().BusyNanos <= 0 {
		t.Error("BusyNanos not recorded")
	}
}

func BenchmarkTopologyThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := NewTopology("bench")
		tp.AddSpout("src", &SliceSpout{Tuples: tuples(10000)})
		tp.AddBolt("work", 4, func(int) Bolt {
			return BoltFunc(func(tu Tuple, emit func(Tuple)) error { emit(tu); return nil })
		}).FieldsBy("src")
		tp.AddBolt("sink", 1, func(int) Bolt {
			return BoltFunc(func(Tuple, func(Tuple)) error { return nil })
		}).Shuffle("work")
		if _, err := tp.Run(Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
