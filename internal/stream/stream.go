// Package stream is a small Storm-like stream processing engine: spouts
// emit tuples, bolts consume and may emit further tuples, and a topology
// wires them with shuffle / fields / broadcast / global groupings over
// goroutines and channels.
//
// The paper (Zhou et al., ICDE 2019, §VI-D) runs the ssRec recommendation
// over Apache Storm with one bolt per item category; this package is the
// self-contained substitute (see DESIGN.md). It supports per-instance
// metrics, bounded retry on bolt errors and failure injection for tests.
package stream

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Tuple is one unit of data flowing through a topology. Key is used by
// fields grouping; Value carries the payload.
type Tuple struct {
	Key   string
	Value any
	Ts    int64
}

// Spout produces tuples. Next returns the next tuple and true, or a zero
// tuple and false when exhausted. Spouts are pulled from a single goroutine
// per spout instance, so implementations need no internal locking.
type Spout interface {
	Next() (Tuple, bool)
}

// SpoutFunc adapts a function to a Spout.
type SpoutFunc func() (Tuple, bool)

// Next implements Spout.
func (f SpoutFunc) Next() (Tuple, bool) { return f() }

// SliceSpout emits a fixed slice of tuples.
type SliceSpout struct {
	Tuples []Tuple
	pos    int
}

// Next implements Spout.
func (s *SliceSpout) Next() (Tuple, bool) {
	if s.pos >= len(s.Tuples) {
		return Tuple{}, false
	}
	t := s.Tuples[s.pos]
	s.pos++
	return t, true
}

// Bolt processes tuples. Process may call emit any number of times to send
// tuples downstream. Returning an error triggers the topology's retry
// policy. A bolt instance is driven by exactly one goroutine.
type Bolt interface {
	Process(t Tuple, emit func(Tuple)) error
}

// BoltFunc adapts a function to a Bolt.
type BoltFunc func(t Tuple, emit func(Tuple)) error

// Process implements Bolt.
func (f BoltFunc) Process(t Tuple, emit func(Tuple)) error { return f(t, emit) }

// Closer is optionally implemented by bolts that need teardown after their
// input is exhausted.
type Closer interface {
	Close() error
}

// Grouping selects how tuples are distributed over a bolt's instances.
type Grouping int

const (
	// Shuffle distributes round-robin.
	Shuffle Grouping = iota
	// Fields routes by hash of Tuple.Key: equal keys always reach the
	// same instance.
	Fields
	// Broadcast delivers every tuple to every instance.
	Broadcast
	// Global delivers every tuple to instance 0.
	Global
)

func (g Grouping) String() string {
	switch g {
	case Shuffle:
		return "shuffle"
	case Fields:
		return "fields"
	case Broadcast:
		return "broadcast"
	case Global:
		return "global"
	}
	return fmt.Sprintf("grouping(%d)", int(g))
}

// InstanceMetrics are the per-bolt-instance counters.
type InstanceMetrics struct {
	Processed uint64
	Emitted   uint64
	Errors    uint64 // Process invocations that returned an error
	Dropped   uint64 // tuples abandoned after exhausting retries
	BusyNanos int64  // cumulative time spent inside Process
}

// Metrics aggregates a component's instances.
type Metrics struct {
	Component string
	Instances []InstanceMetrics
}

// Totals sums the instance counters.
func (m Metrics) Totals() InstanceMetrics {
	var t InstanceMetrics
	for _, im := range m.Instances {
		t.Processed += im.Processed
		t.Emitted += im.Emitted
		t.Errors += im.Errors
		t.Dropped += im.Dropped
		t.BusyNanos += im.BusyNanos
	}
	return t
}

// Options tunes topology execution.
type Options struct {
	// BufferSize is the channel capacity per bolt instance. Default 256.
	BufferSize int
	// MaxRetries is how many times a failing Process call is retried
	// before the tuple is dropped. Default 0 (drop immediately after the
	// first failure is recorded).
	MaxRetries int
}

func (o *Options) fill() {
	if o.BufferSize <= 0 {
		o.BufferSize = 256
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
}

type edge struct {
	from     string
	grouping Grouping
}

type boltDecl struct {
	name        string
	parallelism int
	factory     func(instance int) Bolt
	inputs      []edge
}

type spoutDecl struct {
	name  string
	spout Spout
}

// Topology is a DAG of spouts and bolts. Build it with AddSpout/AddBolt,
// then call Run, which blocks until every spout is exhausted and every
// in-flight tuple has been fully processed.
type Topology struct {
	name   string
	spouts []spoutDecl
	bolts  []boltDecl
	byName map[string]bool
}

// NewTopology creates an empty topology.
func NewTopology(name string) *Topology {
	return &Topology{name: name, byName: make(map[string]bool)}
}

// AddSpout registers a tuple source under the given component name.
func (tp *Topology) AddSpout(name string, s Spout) *Topology {
	tp.mustFresh(name)
	tp.spouts = append(tp.spouts, spoutDecl{name: name, spout: s})
	return tp
}

// BoltBuilder configures a bolt's subscriptions.
type BoltBuilder struct {
	tp   *Topology
	decl *boltDecl
}

// AddBolt registers a bolt component with the given parallelism. factory is
// invoked once per instance so instances never share state accidentally.
func (tp *Topology) AddBolt(name string, parallelism int, factory func(instance int) Bolt) *BoltBuilder {
	tp.mustFresh(name)
	if parallelism < 1 {
		parallelism = 1
	}
	tp.bolts = append(tp.bolts, boltDecl{name: name, parallelism: parallelism, factory: factory})
	return &BoltBuilder{tp: tp, decl: &tp.bolts[len(tp.bolts)-1]}
}

// Grouping subscribes the bolt to a component's output with the given
// grouping.
func (b *BoltBuilder) Grouping(from string, g Grouping) *BoltBuilder {
	b.decl.inputs = append(b.decl.inputs, edge{from: from, grouping: g})
	return b
}

// Shuffle, FieldsBy, BroadcastFrom and GlobalFrom are grouping shorthands.
func (b *BoltBuilder) Shuffle(from string) *BoltBuilder       { return b.Grouping(from, Shuffle) }
func (b *BoltBuilder) FieldsBy(from string) *BoltBuilder      { return b.Grouping(from, Fields) }
func (b *BoltBuilder) BroadcastFrom(from string) *BoltBuilder { return b.Grouping(from, Broadcast) }
func (b *BoltBuilder) GlobalFrom(from string) *BoltBuilder    { return b.Grouping(from, Global) }

func (tp *Topology) mustFresh(name string) {
	if tp.byName[name] {
		panic(fmt.Sprintf("stream: duplicate component %q", name))
	}
	tp.byName[name] = true
}

// runtime wiring -------------------------------------------------------

type boltInstance struct {
	in      chan Tuple
	metrics InstanceMetrics
}

type runtimeBolt struct {
	decl      boltDecl
	instances []*boltInstance
	rr        uint64 // round-robin counter for shuffle
	pending   int32  // upstream writers still open
}

// dispatch routes one tuple to the component under grouping g.
func (rb *runtimeBolt) dispatch(t Tuple, g Grouping) {
	n := len(rb.instances)
	switch g {
	case Shuffle:
		i := atomic.AddUint64(&rb.rr, 1)
		rb.instances[int(i)%n].in <- t
	case Fields:
		h := fnv.New32a()
		h.Write([]byte(t.Key))
		rb.instances[int(h.Sum32())%n].in <- t
	case Broadcast:
		for _, inst := range rb.instances {
			inst.in <- t
		}
	case Global:
		rb.instances[0].in <- t
	}
}

// Run executes the topology to completion and returns the collected
// metrics keyed by component name. It is an error to run a topology with a
// subscription to an unknown component, or with no spouts.
func (tp *Topology) Run(opts Options) (map[string]Metrics, error) {
	opts.fill()
	if len(tp.spouts) == 0 {
		return nil, errors.New("stream: topology has no spouts")
	}
	producers := map[string]bool{}
	for _, s := range tp.spouts {
		producers[s.name] = true
	}
	for _, b := range tp.bolts {
		producers[b.name] = true
	}
	for _, b := range tp.bolts {
		for _, e := range b.inputs {
			if !producers[e.from] {
				return nil, fmt.Errorf("stream: bolt %q subscribes to unknown component %q", b.name, e.from)
			}
		}
	}

	// Materialise bolt instances.
	rbolts := make(map[string]*runtimeBolt, len(tp.bolts))
	for _, decl := range tp.bolts {
		rb := &runtimeBolt{decl: decl}
		for i := 0; i < decl.parallelism; i++ {
			rb.instances = append(rb.instances, &boltInstance{in: make(chan Tuple, opts.BufferSize)})
		}
		rbolts[decl.name] = rb
	}

	// subscribers[component] = list of (bolt, grouping) fed by it.
	type sub struct {
		rb *runtimeBolt
		g  Grouping
	}
	subscribers := map[string][]sub{}
	for _, decl := range tp.bolts {
		for _, e := range decl.inputs {
			subscribers[e.from] = append(subscribers[e.from], sub{rb: rbolts[decl.name], g: e.grouping})
		}
	}

	// Writer accounting: a bolt's inputs close when all upstream writer
	// goroutines (spout instances and upstream bolt instances) are done.
	for _, decl := range tp.bolts {
		rb := rbolts[decl.name]
		for _, e := range decl.inputs {
			if up, ok := rbolts[e.from]; ok {
				rb.pending += int32(len(up.instances))
			} else {
				rb.pending++ // spout: one writer goroutine
			}
		}
	}
	writerDone := func(downstreamOf string) {
		for _, s := range subscribers[downstreamOf] {
			if atomic.AddInt32(&s.rb.pending, -1) == 0 {
				for _, inst := range s.rb.instances {
					close(inst.in)
				}
			}
		}
	}

	var wg sync.WaitGroup
	// Spout goroutines.
	for _, sd := range tp.spouts {
		wg.Add(1)
		go func(sd spoutDecl) {
			defer wg.Done()
			for {
				t, ok := sd.spout.Next()
				if !ok {
					break
				}
				for _, s := range subscribers[sd.name] {
					s.rb.dispatch(t, s.g)
				}
			}
			writerDone(sd.name)
		}(sd)
	}

	// Bolt goroutines.
	for _, decl := range tp.bolts {
		rb := rbolts[decl.name]
		for i, inst := range rb.instances {
			wg.Add(1)
			go func(decl boltDecl, i int, inst *boltInstance) {
				defer wg.Done()
				bolt := decl.factory(i)
				emit := func(t Tuple) {
					inst.metrics.Emitted++
					for _, s := range subscribers[decl.name] {
						s.rb.dispatch(t, s.g)
					}
				}
				for t := range inst.in {
					start := time.Now()
					err := bolt.Process(t, emit)
					for retry := 0; err != nil && retry < opts.MaxRetries; retry++ {
						inst.metrics.Errors++
						err = bolt.Process(t, emit)
					}
					inst.metrics.BusyNanos += time.Since(start).Nanoseconds()
					if err != nil {
						inst.metrics.Errors++
						inst.metrics.Dropped++
					} else {
						inst.metrics.Processed++
					}
				}
				if c, ok := bolt.(Closer); ok {
					c.Close() //nolint:errcheck // teardown best-effort
				}
				writerDone(decl.name)
			}(decl, i, inst)
		}
	}

	wg.Wait()

	out := make(map[string]Metrics, len(tp.bolts))
	for name, rb := range rbolts {
		m := Metrics{Component: name}
		for _, inst := range rb.instances {
			m.Instances = append(m.Instances, inst.metrics)
		}
		out[name] = m
	}
	return out, nil
}
