// Package model defines the shared data types of the ssRec reproduction:
// social items v = ⟨c, up, E⟩ and user–item interactions, matching the
// notation table (Table I) of Zhou et al., ICDE 2019.
package model

import "fmt"

// Item is a social item v = ⟨c, up, E⟩: a category, the producer that
// created it and the set of entities extracted from its description.
type Item struct {
	ID          string
	Category    string
	Producer    string   // up: the user that created the item
	Entities    []string // E: extracted entities (repeats allowed)
	Description string   // raw description the entities came from
	Timestamp   int64    // creation time (unix seconds in generated data)
}

func (v Item) String() string {
	return fmt.Sprintf("item(%s c=%s up=%s |E|=%d)", v.ID, v.Category, v.Producer, len(v.Entities))
}

// Interaction is one user–item interaction event on the interaction stream:
// consumer UserID browsed ItemID at Timestamp.
type Interaction struct {
	UserID    string
	ItemID    string
	Timestamp int64
}

// Recommendation is one entry of a top-k user list for an item.
type Recommendation struct {
	UserID string
	Score  float64
}

// ByScoreDesc orders recommendations best-first with a deterministic
// user-ID tie-break.
func ByScoreDesc(a, b Recommendation) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.UserID < b.UserID
}

// ShardOf assigns a user to one of n shards by FNV-1a hash of the user ID.
// It is THE ownership rule of a sharded deployment: the router, every
// engine shard and any future RPC shard must agree on it, so it lives in
// the leaf package everyone already imports. n <= 1 always maps to 0.
func ShardOf(userID string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnv64(userID) % uint64(n))
}

// fnv64 is the FNV-1a hash behind both ShardOf and Partition.BlockOf —
// ONE hash function, so every epoch's block table cuts the same space.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
