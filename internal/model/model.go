// Package model defines the shared data types of the ssRec reproduction:
// social items v = ⟨c, up, E⟩ and user–item interactions, matching the
// notation table (Table I) of Zhou et al., ICDE 2019.
package model

import "fmt"

// Item is a social item v = ⟨c, up, E⟩: a category, the producer that
// created it and the set of entities extracted from its description.
type Item struct {
	ID          string
	Category    string
	Producer    string   // up: the user that created the item
	Entities    []string // E: extracted entities (repeats allowed)
	Description string   // raw description the entities came from
	Timestamp   int64    // creation time (unix seconds in generated data)
}

func (v Item) String() string {
	return fmt.Sprintf("item(%s c=%s up=%s |E|=%d)", v.ID, v.Category, v.Producer, len(v.Entities))
}

// Interaction is one user–item interaction event on the interaction stream:
// consumer UserID browsed ItemID at Timestamp.
type Interaction struct {
	UserID    string
	ItemID    string
	Timestamp int64
}

// Recommendation is one entry of a top-k user list for an item.
type Recommendation struct {
	UserID string
	Score  float64
}

// ByScoreDesc orders recommendations best-first with a deterministic
// user-ID tie-break.
func ByScoreDesc(a, b Recommendation) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.UserID < b.UserID
}
