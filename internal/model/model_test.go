package model

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestItemString(t *testing.T) {
	v := Item{ID: "v1", Category: "sports", Producer: "bbc", Entities: []string{"a", "b"}}
	s := v.String()
	for _, want := range []string{"v1", "sports", "bbc", "2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestByScoreDescOrdering(t *testing.T) {
	recs := []Recommendation{
		{UserID: "c", Score: 1},
		{UserID: "a", Score: 2},
		{UserID: "b", Score: 1},
	}
	sort.Slice(recs, func(i, j int) bool { return ByScoreDesc(recs[i], recs[j]) })
	want := []string{"a", "b", "c"} // highest score first, ties by user ID
	for i, w := range want {
		if recs[i].UserID != w {
			t.Errorf("rank %d = %s, want %s", i, recs[i].UserID, w)
		}
	}
}

// Property: ByScoreDesc is a strict weak ordering — irreflexive and
// asymmetric — which sort.Slice requires.
func TestByScoreDescStrictWeakOrdering(t *testing.T) {
	f := func(aScore, bScore float64, aID, bID string) bool {
		a := Recommendation{UserID: aID, Score: aScore}
		b := Recommendation{UserID: bID, Score: bScore}
		if ByScoreDesc(a, a) || ByScoreDesc(b, b) {
			return false // irreflexive
		}
		if ByScoreDesc(a, b) && ByScoreDesc(b, a) {
			return false // asymmetric
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
