package model

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestPartitionProperties is the randomized invariant suite of the
// versioned partition map: for random reshard chains and user IDs,
// every epoch assigns exactly one owner per user, consecutive epochs
// disagree only on migrating blocks, and epoch 0 agrees with the legacy
// ShardOf rule.
func TestPartitionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	users := make([]string, 500)
	for i := range users {
		users[i] = fmt.Sprintf("u%04x-%d", rng.Uint32(), i)
	}

	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		p := LegacyPartition(n)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: legacy(%d): %v", trial, n, err)
		}
		// Epoch 0 agrees with the legacy hash rule.
		for _, u := range users {
			if got, want := p.Owner(u), ShardOf(u, n); got != want {
				t.Fatalf("trial %d: epoch 0 owner(%q) = %d, ShardOf = %d", trial, u, got, want)
			}
		}

		// Chain a few random reshards and check each transition.
		for step := 0; step < 4; step++ {
			m := 1 + rng.Intn(8)
			next := p.Next(m)
			if err := next.Validate(); err != nil {
				t.Fatalf("trial %d step %d: next(%d): %v", trial, step, m, err)
			}
			if next.Epoch != p.Epoch+1 {
				t.Fatalf("trial %d step %d: epoch %d after %d", trial, step, next.Epoch, p.Epoch)
			}
			if next.Blocks%p.Blocks != 0 || next.Blocks%m != 0 {
				t.Fatalf("trial %d step %d: %d blocks not a multiple of old %d and new width %d",
					trial, step, next.Blocks, p.Blocks, m)
			}
			// Post-reshard ownership converges onto the canonical hash rule:
			// any split/merge chain ends exactly where a static m-shard
			// deployment would be.
			for _, u := range users {
				own := next.Owner(u)
				if own < 0 || own >= next.Shards {
					t.Fatalf("trial %d step %d: owner(%q) = %d out of range", trial, step, u, own)
				}
				if want := ShardOf(u, m); own != want {
					t.Fatalf("trial %d step %d: owner(%q) = %d, ShardOf(·,%d) = %d", trial, step, u, own, m, want)
				}
			}
			// Old and new tables differ exactly on the migrating blocks: a
			// user's owner changes iff their block is in MigratingBlocks.
			migrating := map[int]bool{}
			for _, b := range p.MigratingBlocks(next) {
				migrating[b] = true
			}
			for _, u := range users {
				moved := p.Owner(u) != next.Owner(u)
				if moved != migrating[next.BlockOf(u)] {
					t.Fatalf("trial %d step %d: user %q moved=%v but block %d migrating=%v",
						trial, step, u, moved, next.BlockOf(u), migrating[next.BlockOf(u)])
				}
			}
			p = next
		}
	}
}

// TestPartitionValidate pins the rejection table of malformed partitions —
// the same shapes the wire decoder fuzz target seeds from.
func TestPartitionValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Partition
		ok   bool
	}{
		{"legacy-1", LegacyPartition(1), true},
		{"legacy-4", LegacyPartition(4), true},
		{"split-2-4", LegacyPartition(2).Next(4), true},
		{"merge-4-2", LegacyPartition(4).Next(2), true},
		{"zero-shards", Partition{Shards: 0, Blocks: 1, Owners: []int{0}}, false},
		{"no-owners", Partition{Shards: 2, Blocks: 2, Owners: nil}, false},
		{"owner-count-mismatch", Partition{Shards: 2, Blocks: 3, Owners: []int{0, 1}}, false},
		{"owner-out-of-range", Partition{Shards: 2, Blocks: 2, Owners: []int{0, 2}}, false},
		{"negative-owner", Partition{Shards: 2, Blocks: 2, Owners: []int{0, -1}}, false},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestLegacyPartitionMergeToOne checks the degenerate merges: any width
// down to a single shard owns everything at shard 0.
func TestLegacyPartitionMergeToOne(t *testing.T) {
	p := LegacyPartition(8).Next(1)
	for _, u := range []string{"", "a", "uc0042", "anyone"} {
		if p.Owner(u) != 0 {
			t.Errorf("owner(%q) = %d, want 0", u, p.Owner(u))
		}
	}
}
