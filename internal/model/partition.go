package model

import "fmt"

// Partition is the versioned user→shard ownership table of a deployment.
// The user-ID hash space is cut into Blocks equal hash blocks and each
// block is assigned to one of Shards owners; Epoch versions the table so
// an online reshard (N→M shards, split or merge) is one atomic swap of
// the whole table, never an in-place mutation.
//
// Epoch 0 — LegacyPartition — has one block per shard and agrees exactly
// with the legacy ShardOf rule, so every pre-resharding deployment is a
// Partition deployment that never noticed. Next derives the successor
// table at a block granularity (lcm of the old granularity and the new
// shard count) chosen so that post-reshard ownership equals
// ShardOf(userID, M) EXACTLY — resharding always converges back onto the
// canonical hash rule, no matter how many splits and merges chained to
// get there.
type Partition struct {
	// Epoch versions the table: 0 is the boot-time legacy table, each
	// reshard increments it by one.
	Epoch uint64
	// Shards is the owner count (deployment width) of this epoch.
	Shards int
	// Blocks is the hash-space granularity: user u falls into block
	// fnv64(u) % Blocks.
	Blocks int
	// Owners maps each block to its owning shard index; len(Owners) ==
	// Blocks and every entry is in [0, Shards).
	Owners []int
}

// LegacyPartition is the epoch-0 table of an n-shard deployment: n blocks
// owned identically — Owner(u) == ShardOf(u, n) for every user.
func LegacyPartition(n int) Partition {
	if n < 1 {
		n = 1
	}
	owners := make([]int, n)
	for i := range owners {
		owners[i] = i
	}
	return Partition{Epoch: 0, Shards: n, Blocks: n, Owners: owners}
}

// Next derives the successor table for a reshard to m shards. The new
// granularity is lcm(p.Blocks, m), so every old block maps onto a whole
// number of new blocks (old ownership stays expressible) and block b is
// owned by b % m — which makes the new table agree exactly with
// ShardOf(userID, m): (h % lcm) % m == h % m because m divides the lcm.
func (p Partition) Next(m int) Partition {
	if m < 1 {
		m = 1
	}
	blocks := lcm(max(p.Blocks, 1), m)
	owners := make([]int, blocks)
	for b := range owners {
		owners[b] = b % m
	}
	return Partition{Epoch: p.Epoch + 1, Shards: m, Blocks: blocks, Owners: owners}
}

// BlockOf returns the hash block a user falls into.
func (p Partition) BlockOf(userID string) int {
	if p.Blocks <= 1 {
		return 0
	}
	return int(fnv64(userID) % uint64(p.Blocks))
}

// Owner returns the shard that owns a user under this table.
func (p Partition) Owner(userID string) int {
	if len(p.Owners) == 0 {
		return 0
	}
	return p.Owners[p.BlockOf(userID)]
}

// MigratingBlocks lists the blocks — at next's granularity — whose owner
// changes between p and next. These are exactly the leaf partitions an
// online reshard has to move; every other block's data never migrates.
// next.Blocks must be a multiple of p.Blocks (the Next invariant).
func (p Partition) MigratingBlocks(next Partition) []int {
	var out []int
	for b := 0; b < next.Blocks; b++ {
		old := 0
		if p.Blocks > 0 {
			old = p.Owners[b%p.Blocks]
		}
		if next.Owners[b] != old {
			out = append(out, b)
		}
	}
	return out
}

// Validate checks the table's structural invariants.
func (p Partition) Validate() error {
	if p.Shards < 1 {
		return fmt.Errorf("model: partition epoch %d: %d shards", p.Epoch, p.Shards)
	}
	if p.Blocks < 1 || p.Blocks != len(p.Owners) {
		return fmt.Errorf("model: partition epoch %d: %d blocks with %d owners", p.Epoch, p.Blocks, len(p.Owners))
	}
	for b, o := range p.Owners {
		if o < 0 || o >= p.Shards {
			return fmt.Errorf("model: partition epoch %d: block %d owned by %d, want [0,%d)", p.Epoch, b, o, p.Shards)
		}
	}
	return nil
}

func lcm(a, b int) int {
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
