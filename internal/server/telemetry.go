// telemetry.go is the server's observability surface beyond /v2/stats:
// GET /metrics (Prometheus text exposition of the registry every
// handler records into), GET /v2/trace/{id} (the span buffer fetch),
// the serving gauges, and the per-principal request quota middleware.
package server

import (
	"net"
	"net/http"
	"strings"
	"time"

	"ssrec/internal/telemetry"
)

// registerGauges wires the serving state the handlers already track
// into the registry as lazily-read gauges — /metrics reports them
// without double bookkeeping.
func (s *Server) registerGauges() {
	reg := s.telemetry
	reg.GaugeFunc("ssrec_index_users",
		"Users indexed by the backend.",
		func() float64 { return float64(s.eng.Users()) })
	reg.GaugeFunc("ssrec_sessions_open",
		"Open /v2/session streams.",
		func() float64 { return float64(s.sessions.open.Load()) })
	reg.GaugeFunc("ssrec_sessions_total",
		"Total /v2/session streams accepted.",
		func() float64 { return float64(s.sessions.total.Load()) })
	reg.GaugeFunc("ssrec_session_lines_total",
		"Command lines received across all sessions.",
		func() float64 { return float64(s.sessions.lines.Load()) })
	reg.GaugeFunc("ssrec_observe_inflight",
		"Running /v2/observe bulk streams.",
		func() float64 { return float64(s.inflightObserve.Load()) })
	reg.GaugeFunc("ssrec_wal_appends_total",
		"WAL appends of the single-engine durable log (0 without a WAL).",
		func() float64 {
			if s.WAL == nil {
				return 0
			}
			return float64(s.WAL.Stats().Appends)
		})
}

// traceV2Response is the body of GET /v2/trace/{id}.
type traceV2Response struct {
	TraceID string               `json:"trace_id"`
	Spans   []telemetry.SpanData `json:"spans"`
}

// handleTraceV2 fetches one buffered trace's spans — the tree a traced
// request left behind (root the http.request span; remote shard spans
// imported from the RPC terminal lines appear under their RPC legs).
func (s *Server) handleTraceV2(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := s.tracer.Trace(id)
	if spans == nil {
		httpError(w, http.StatusNotFound, "unknown trace id (evicted or never recorded)")
		return
	}
	writeJSON(w, http.StatusOK, traceV2Response{TraceID: id, Spans: spans})
}

// principalBucket is one principal's token bucket. Unlike the session
// pacer (which blocks mid-stream), quota rejection is non-blocking: a
// request either holds a token or answers 429 immediately.
type principalBucket struct {
	tokens float64
	last   time.Time
}

// principal keys the quota: the bearer token when the request carries
// one (regardless of whether auth is enforced), else the remote host —
// so one noisy client cannot starve the rest even on a token-less
// deployment.
func principal(r *http.Request) string {
	if tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer "); ok && tok != "" {
		return "token:" + tok
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "host:" + host
}

// takePrincipal refills and draws one token from key's bucket,
// reporting whether the request is admitted.
func (s *Server) takePrincipal(key string, now time.Time) bool {
	burst := float64(s.PrincipalBurst)
	if burst < 1 {
		burst = max(1, s.PrincipalRate)
	}
	s.principalMu.Lock()
	defer s.principalMu.Unlock()
	b := s.principals[key]
	if b == nil {
		b = &principalBucket{tokens: burst, last: now}
		s.principals[key] = b
	}
	b.tokens += s.PrincipalRate * now.Sub(b.last).Seconds()
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// principalQuota enforces PrincipalRate on the API surface (/v1/* and
// /v2/*; /healthz and /metrics stay unmetered). It sits INSIDE
// requireAuth so an invalid token is 401 before it is 429.
func (s *Server) principalQuota(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.PrincipalRate > 0 && (strings.HasPrefix(r.URL.Path, "/v2/") || strings.HasPrefix(r.URL.Path, "/v1/")) {
			if !s.takePrincipal(principal(r), time.Now()) {
				s.rejectStatus(w, http.StatusTooManyRequests, "principal request quota exceeded")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}
