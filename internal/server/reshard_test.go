// reshard_test.go covers the HTTP face of online resharding: the
// flag-gated POST /v2/reshard admin trigger (403 when disabled, 501 for
// single-engine backends, 400 on bad input, 409 mid-migration, 202 and an
// asynchronous split on success) and the /v2/stats resharding block in
// both its idle and mid-migration states, golden-pinned against drift.
package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/sigtree"
)

// reshardingStats is the test-side decode of the /v2/stats resharding
// block plus the shard arity around it.
type reshardingStats struct {
	ShardCount int `json:"shard_count"`
	Resharding *struct {
		Active          bool   `json:"active"`
		Phase           string `json:"phase"`
		FromShards      int    `json:"from_shards"`
		ToShards        int    `json:"to_shards"`
		Seeded          int    `json:"seeded"`
		MirroredBatches uint64 `json:"mirrored_batches"`
		Error           string `json:"error"`
		Completed       uint64 `json:"completed"`
	} `json:"resharding"`
}

func reshardStats(t *testing.T, h http.Handler) reshardingStats {
	t.Helper()
	rr := get(t, h, "/v2/stats")
	if rr.Code != http.StatusOK {
		t.Fatalf("stats status %d: %s", rr.Code, rr.Body.String())
	}
	var st reshardingStats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	return st
}

// TestAdminReshardV2Gate: the trigger is refused without the flag, on
// single-engine backends, and on malformed or out-of-range bodies —
// and none of those refusals disturb the deployment.
func TestAdminReshardV2Gate(t *testing.T) {
	single, ds := testServer(t)
	single.AdminReshard = true
	if rr := post(t, single.Handler(), "/v2/reshard", map[string]any{"shards": 2}); rr.Code != http.StatusNotImplemented {
		t.Fatalf("single-engine reshard status %d, want 501", rr.Code)
	}

	s, _ := testShardedServer(t, 2)
	h := s.Handler()
	if rr := post(t, h, "/v2/reshard", map[string]any{"shards": 3}); rr.Code != http.StatusForbidden {
		t.Fatalf("disabled reshard status %d, want 403", rr.Code)
	}
	s.AdminReshard = true
	if rr := postRaw(t, h, "/v2/reshard", "application/json", []byte(`{"shards":`)); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d, want 400", rr.Code)
	}
	if rr := post(t, h, "/v2/reshard", map[string]any{"shards": 0}); rr.Code != http.StatusBadRequest {
		t.Fatalf("shards=0 status %d, want 400", rr.Code)
	}
	if st := reshardStats(t, h); st.ShardCount != 2 || st.Resharding == nil || st.Resharding.Completed != 0 {
		t.Fatalf("deployment disturbed by refused triggers: %+v", st)
	}
	// The single-engine refusal left its stats without a resharding block.
	post(t, single.Handler(), "/v2/recommend", map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}, "k": 1})
	if st := reshardStats(t, single.Handler()); st.Resharding != nil {
		t.Fatalf("single-engine stats grew a resharding block: %+v", st.Resharding)
	}
}

// TestAdminReshardV2Split: an accepted trigger answers 202 immediately
// and the deployment splits 2→3 asynchronously; /v2/stats converges to
// the new width with a done, error-free migration record, and the
// resharded deployment still answers queries.
func TestAdminReshardV2Split(t *testing.T) {
	s, ds := testShardedServer(t, 2)
	s.AdminReshard = true
	h := s.Handler()

	rr := post(t, h, "/v2/reshard", map[string]any{"shards": 3})
	if rr.Code != http.StatusAccepted {
		t.Fatalf("reshard status %d: %s", rr.Code, rr.Body.String())
	}
	var ack struct {
		Accepted bool `json:"accepted"`
		Shards   int  `json:"shards"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &ack); err != nil || !ack.Accepted || ack.Shards != 3 {
		t.Fatalf("ack %s (err %v), want accepted shards=3", rr.Body.String(), err)
	}

	deadline := time.Now().Add(30 * time.Second)
	var st reshardingStats
	for {
		st = reshardStats(t, h)
		if st.Resharding != nil && st.Resharding.Completed == 1 && !st.Resharding.Active {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("split never completed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.ShardCount != 3 || st.Resharding.Phase != shard.ReshardPhaseDone ||
		st.Resharding.Error != "" || st.Resharding.FromShards != 2 || st.Resharding.ToShards != 3 {
		t.Fatalf("post-split stats %+v, want 3 shards after a clean 2→3 done migration", st)
	}
	qr := post(t, h, "/v2/recommend", map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}, "k": 3})
	if qr.Code != http.StatusOK {
		t.Fatalf("post-split recommend status %d: %s", qr.Code, qr.Body.String())
	}
}

// stallMember is a reshard member whose snapshot handoff blocks until
// its context is cancelled — it parks a migration in the seeding phase
// so the mid-migration surfaces can be observed deterministically.
type stallMember struct {
	idx       int
	started   chan struct{}
	startOnce sync.Once
}

func (m *stallMember) Index() int { return m.idx }
func (m *stallMember) RegisterItems(ctx context.Context, items []model.Item) (bool, error) {
	return false, nil
}
func (m *stallMember) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	return core.BatchReport{}, nil
}
func (m *stallMember) Recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error) {
	return core.Result{ItemID: v.ID}, nil
}
func (m *stallMember) Stats() shard.Stats { return shard.Stats{Shard: m.idx} }
func (m *stallMember) Handoff(ctx context.Context, snapshot []byte) error {
	m.startOnce.Do(func() { close(m.started) })
	<-ctx.Done()
	return ctx.Err()
}

// TestGoldenStatsV2ReshardingMidMigration parks a 2→3 migration in
// seeding and pins the /v2/stats shape mid-migration — the same keys as
// the idle block (only values differ), so dashboards never see the
// schema shift as a migration starts. It also proves the trigger answers
// 409 while one is in flight, then cancels and requires a clean abort.
func TestGoldenStatsV2ReshardingMidMigration(t *testing.T) {
	s, ds := testShardedServer(t, 2)
	s.AdminReshard = true
	r := s.eng.(*shard.Router)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	members := []shard.Shard{
		&stallMember{idx: 0, started: make(chan struct{})},
		&stallMember{idx: 1, started: make(chan struct{})},
		&stallMember{idx: 2, started: make(chan struct{})},
	}
	errCh := make(chan error, 1)
	go func() { errCh <- r.Reshard(ctx, 3, members...) }()
	<-members[0].(*stallMember).started

	h := s.Handler()
	st := reshardStats(t, h)
	if st.Resharding == nil || !st.Resharding.Active || st.Resharding.Phase != shard.ReshardPhaseSeeding {
		t.Fatalf("mid-migration stats %+v, want active seeding", st)
	}
	checkGolden(t, "v2_stats_resharding_mid_migration.golden", statsShape(t, s, itemBody(ds.Items[0])))

	if rr := post(t, h, "/v2/reshard", map[string]any{"shards": 4}); rr.Code != http.StatusConflict {
		t.Fatalf("concurrent trigger status %d, want 409", rr.Code)
	}

	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled migration returned nil error")
	}
	after := reshardStats(t, h)
	if after.Resharding.Active || after.ShardCount != 2 || after.Resharding.Completed != 0 {
		t.Fatalf("post-cancel stats %+v, want untouched 2-shard fleet", after)
	}
}
