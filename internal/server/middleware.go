// middleware.go instruments every request of the v1/v2 API: a request ID
// (accepted from X-Request-ID or generated) is echoed on the response, the
// per-route latency/error counters behind /v2/stats are recorded, and v1
// routes are stamped with deprecation headers pointing at their v2
// successors.
package server

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// requestIDHeader carries the caller-supplied or generated request ID.
const requestIDHeader = "X-Request-ID"

var (
	reqCounter atomic.Int64
	procEpoch  = time.Now().UnixNano()
)

// nextRequestID generates a process-unique request ID.
func nextRequestID() string {
	return fmt.Sprintf("req-%x-%x", procEpoch, reqCounter.Add(1))
}

// v1Successor maps each deprecated v1 route to its v2 replacement.
var v1Successor = map[string]string{
	"/v1/recommend": "/v2/recommend",
	"/v1/observe":   "/v2/observe",
	"/v1/items":     "/v2/observe",
	"/v1/stats":     "/v2/stats",
}

// statusRecorder captures the response status for the latency counters
// while passing Flush through (the NDJSON observe stream needs it).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach Flush/deadline support on the
// underlying writer.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps the mux with request-ID, deprecation and latency
// middleware.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = nextRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		if succ, ok := v1Successor[r.URL.Path]; ok {
			// RFC 8594-style deprecation signalling; the v1 wire protocol
			// stays available but new integrations should target v2.
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", succ))
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		route := r.Pattern // set by the mux match; empty on 404s
		if route == "" {
			route = "unmatched"
		}
		s.metrics.record(route, rec.status, time.Since(start))
	})
}

// requireAuth gates the whole API surface behind a shared bearer token
// when Server.AuthToken is set: every /v2/* route (including the
// /v2/session stream) AND every deprecated /v1/* route answers 401
// without "Authorization: Bearer <token>" — a token-protected deployment
// must not leave its legacy write paths open. Only /healthz stays
// unauthenticated; liveness probes must not need credentials. Comparison
// is constant-time.
func (s *Server) requireAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.AuthToken != "" && (strings.HasPrefix(r.URL.Path, "/v2/") || strings.HasPrefix(r.URL.Path, "/v1/")) {
			tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(tok), []byte(s.AuthToken)) != 1 {
				w.Header().Set("WWW-Authenticate", `Bearer realm="ssrec"`)
				httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// routeMetrics are the lock-free per-route counters.
type routeMetrics struct {
	count   atomic.Int64
	errors  atomic.Int64 // responses with status >= 400
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

// apiMetrics aggregates routeMetrics by route pattern.
type apiMetrics struct {
	mu     sync.Mutex
	routes map[string]*routeMetrics
}

func newAPIMetrics() *apiMetrics {
	return &apiMetrics{routes: make(map[string]*routeMetrics)}
}

func (m *apiMetrics) route(pattern string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := m.routes[pattern]
	if rm == nil {
		rm = &routeMetrics{}
		m.routes[pattern] = rm
	}
	return rm
}

func (m *apiMetrics) record(pattern string, status int, d time.Duration) {
	rm := m.route(pattern)
	rm.count.Add(1)
	if status >= 400 {
		rm.errors.Add(1)
	}
	ns := d.Nanoseconds()
	rm.totalNs.Add(ns)
	for {
		old := rm.maxNs.Load()
		if ns <= old || rm.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
}

// RouteStats is the wire form of one route's counters.
type RouteStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanUs float64 `json:"mean_us"`
	MaxUs  float64 `json:"max_us"`
}

func (m *apiMetrics) snapshot() map[string]RouteStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]RouteStats, len(m.routes))
	for pattern, rm := range m.routes {
		n := rm.count.Load()
		st := RouteStats{
			Count:  n,
			Errors: rm.errors.Load(),
			MaxUs:  float64(rm.maxNs.Load()) / 1e3,
		}
		if n > 0 {
			st.MeanUs = float64(rm.totalNs.Load()) / float64(n) / 1e3
		}
		out[strings.TrimSpace(pattern)] = st
	}
	return out
}
