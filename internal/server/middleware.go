// middleware.go instruments every request of the v1/v2 API: a request ID
// (accepted from X-Request-ID or generated) is echoed on the response, the
// per-route latency/error counters behind /v2/stats are recorded (into the
// telemetry registry, which /metrics and /v2/stats both read), a root
// trace span is opened when the request is traced, and v1 routes are
// stamped with deprecation headers pointing at their v2 successors.
package server

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssrec/internal/telemetry"
)

// requestIDHeader carries the caller-supplied or generated request ID.
const requestIDHeader = "X-Request-ID"

var (
	reqCounter atomic.Int64
	procEpoch  = time.Now().UnixNano()
)

// nextRequestID generates a process-unique request ID.
func nextRequestID() string {
	return fmt.Sprintf("req-%x-%x", procEpoch, reqCounter.Add(1))
}

// statusString renders the common response codes without the strconv
// allocation the traced hot path would otherwise pay per request.
func statusString(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusNoContent:
		return "204"
	case http.StatusBadRequest:
		return "400"
	case http.StatusUnauthorized:
		return "401"
	case http.StatusNotFound:
		return "404"
	case http.StatusTooManyRequests:
		return "429"
	case http.StatusInternalServerError:
		return "500"
	}
	return strconv.Itoa(code)
}

// v1Successor maps each deprecated v1 route to its v2 replacement.
var v1Successor = map[string]string{
	"/v1/recommend": "/v2/recommend",
	"/v1/observe":   "/v2/observe",
	"/v1/items":     "/v2/observe",
	"/v1/stats":     "/v2/stats",
}

// statusRecorder captures the response status for the latency counters
// while passing Flush through (the NDJSON observe stream needs it).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach Flush/deadline support on the
// underlying writer.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps the mux with request-ID, deprecation, latency and
// tracing middleware. A request is traced when TraceAll is set OR the
// caller sent an X-Ssrec-Trace header (per-request opt-in); untraced
// requests pay one header lookup and nothing else.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = nextRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		if succ, ok := v1Successor[r.URL.Path]; ok {
			// RFC 8594-style deprecation signalling; the v1 wire protocol
			// stays available but new integrations should target v2.
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", succ))
		}
		var span *telemetry.Span
		// Presence of the header opts in, even with an empty value — a
		// client asking for a trace should not have to mint an id.
		if _, traced := r.Header[telemetry.TraceHeader]; s.TraceAll || traced {
			var ctx = r.Context()
			ctx, span = s.tracer.StartRequest(ctx, "http.request", r.Header.Get(telemetry.TraceHeader))
			// Echo the trace id so the caller can fetch /v2/trace/{id}.
			w.Header().Set(telemetry.TraceHeader, telemetry.TraceID(ctx))
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		route := r.Pattern // set by the mux match; empty when rejected before it
		if route == "" {
			switch rec.status {
			case http.StatusUnauthorized: // requireAuth reject
				route = "unauthorized"
			case http.StatusTooManyRequests: // principalQuota reject
				route = "quota_rejected"
			default: // 404
				route = "unmatched"
			}
		}
		span.SetAttr("route", route)
		span.SetAttr("status", statusString(rec.status))
		span.End()
		s.metrics.record(route, rec.status, time.Since(start))
	})
}

// requireAuth gates the whole API surface behind a shared bearer token
// when Server.AuthToken is set: every /v2/* route (including the
// /v2/session stream) AND every deprecated /v1/* route answers 401
// without "Authorization: Bearer <token>" — a token-protected deployment
// must not leave its legacy write paths open. Only /healthz and /metrics
// stay unauthenticated; probes and scrapers must not need credentials.
// Comparison is constant-time.
func (s *Server) requireAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.AuthToken != "" && (strings.HasPrefix(r.URL.Path, "/v2/") || strings.HasPrefix(r.URL.Path, "/v1/")) {
			tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(tok), []byte(s.AuthToken)) != 1 {
				w.Header().Set("WWW-Authenticate", `Bearer realm="ssrec"`)
				httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// routeMetrics are one route's registry-backed counters: the same
// series /metrics exposes, re-derived into the /v2/stats requests block
// by snapshot().
type routeMetrics struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
}

// apiMetrics aggregates routeMetrics by route pattern.
type apiMetrics struct {
	reg    *telemetry.Registry
	mu     sync.Mutex
	routes map[string]*routeMetrics
}

func newAPIMetrics(reg *telemetry.Registry) *apiMetrics {
	return &apiMetrics{reg: reg, routes: make(map[string]*routeMetrics)}
}

func (m *apiMetrics) route(pattern string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := m.routes[pattern]
	if rm == nil {
		label := strings.TrimSpace(pattern)
		rm = &routeMetrics{
			requests: m.reg.Counter("ssrec_http_requests_total",
				"HTTP requests served, by route pattern.", "route", label),
			errors: m.reg.Counter("ssrec_http_errors_total",
				"HTTP responses with status >= 400, by route pattern.", "route", label),
			latency: m.reg.Histogram("ssrec_http_request_seconds",
				"HTTP request latency, by route pattern.", "route", label),
		}
		m.routes[pattern] = rm
	}
	return rm
}

func (m *apiMetrics) record(pattern string, status int, d time.Duration) {
	rm := m.route(pattern)
	rm.requests.Inc()
	if status >= 400 {
		rm.errors.Inc()
	}
	rm.latency.Observe(d)
}

// RouteStats is the wire form of one route's counters.
type RouteStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanUs float64 `json:"mean_us"`
	MaxUs  float64 `json:"max_us"`
}

// snapshot derives the /v2/stats requests block from the registry
// series — /v2/stats is a view over the registry, not a second set of
// counters.
func (m *apiMetrics) snapshot() map[string]RouteStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]RouteStats, len(m.routes))
	for pattern, rm := range m.routes {
		n := rm.latency.Count()
		st := RouteStats{
			Count:  int64(n),
			Errors: rm.errors.Value(),
			MaxUs:  float64(rm.latency.Max().Nanoseconds()) / 1e3,
		}
		if n > 0 {
			st.MeanUs = float64(rm.latency.Sum().Nanoseconds()) / float64(n) / 1e3
		}
		out[strings.TrimSpace(pattern)] = st
	}
	return out
}
