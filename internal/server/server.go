// Package server exposes a trained ssRec engine over a JSON HTTP API — the
// adoption path for systems that want stream recommendation as a sidecar
// service rather than an embedded library.
//
// The batch-first v2 protocol (see v2.go) is the primary request/response
// surface, and /v2/session (see session.go) is the streaming profile —
// one full-duplex NDJSON stream of interleaved observations, queries and
// pushed answers with credit-based flow control:
//
//	POST /v2/session     NDJSON duplex (obs/ask/flush ⇄ credit/result/done)
//	POST /v2/recommend   {"items":[{...}...], "k":10}  → per-item results
//	POST /v2/observe     NDJSON bulk ingest            → streamed statuses
//	GET  /v2/stats                                     → index + serving + session stats
//
// The one-item-per-request v1 protocol remains served for existing
// clients, with Deprecation/Link successor headers:
//
//	POST /v1/recommend   {"item": {...}, "k": 10}      → ranked user list
//	POST /v1/observe     {"user_id": "...", "item": {...}, "timestamp": ...}
//	POST /v1/items       {"item": {...}}               → register a new item
//	GET  /v1/stats                                      → index statistics
//	GET  /healthz                                       → liveness
//
// Every response carries an X-Request-ID (caller-supplied or generated)
// and feeds the per-route latency counters reported by /v2/stats.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/telemetry"
	"ssrec/internal/wal"
)

// Backend is the engine surface the server serves. Two implementations
// ship: *core.SafeEngine (one in-process engine) and *shard.Router (an
// N-shard scatter-gather deployment) — the wire protocol is identical
// either way, which the conformance suite in internal/shard guarantees.
// A backend that additionally implements ShardStats() []shard.Stats gets
// per-shard entries in /v2/stats.
type Backend interface {
	Recommend(v model.Item, k int) []model.Recommendation
	Observe(ir model.Interaction, v model.Item)
	RegisterItem(v model.Item)
	RecommendBatch(ctx context.Context, items []model.Item, opts ...core.Option) ([]core.Result, error)
	ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error)
	Users() int
	Parallelism() int
	IndexStats() core.IndexStatsView
}

// shardStatser is the optional Backend extension behind the per-shard
// /v2/stats entries.
type shardStatser interface {
	ShardStats() []shard.Stats
}

// replicaStatser is the optional Backend extension behind the per-slot
// replica health block and the supervisor counters in /v2/stats.
type replicaStatser interface {
	ReplicaHealth() []shard.ReplicaState
	SupervisorStats() (shard.SupervisorStats, bool)
}

// reshardStatser is the optional Backend extension behind the /v2/stats
// resharding block: the in-flight (or last finished) online split/merge.
type reshardStatser interface {
	ReshardStatus() shard.ReshardStatus
}

// resharder is the optional Backend extension behind the flag-gated
// POST /v2/reshard admin trigger — an in-process online split/merge.
type resharder interface {
	Reshard(ctx context.Context, m int, members ...shard.Shard) error
}

// Compile-time checks: both shipped backends satisfy the interface.
var (
	_ Backend        = (*core.SafeEngine)(nil)
	_ Backend        = (*shard.Router)(nil)
	_ shardStatser   = (*shard.Router)(nil)
	_ replicaStatser = (*shard.Router)(nil)
	_ reshardStatser = (*shard.Router)(nil)
	_ resharder      = (*shard.Router)(nil)
)

// Server wraps a Backend with an http.Handler.
type Server struct {
	eng       Backend
	mux       *http.ServeMux
	metrics   *apiMetrics
	telemetry *telemetry.Registry
	tracer    *telemetry.Tracer

	// MaxK caps the per-request k to bound response sizes. Default 100.
	MaxK int
	// MaxBatch caps the items of one /v2/recommend call. Default 256.
	MaxBatch int
	// BatchSize is the observe micro-batch: how many NDJSON lines
	// /v2/observe groups into one Engine.ObserveBatch call (one write
	// lock + one index flush per group). Default 64.
	BatchSize int
	// MaxBodyBytes bounds request bodies. Default 1<<20 for v1 JSON
	// bodies; /v2/observe streams and uses 64 MiB more.
	MaxBodyBytes int64
	// MaxInflightObserve caps concurrent /v2/observe streams. Excess
	// requests are REJECTED up front with 503 + Retry-After instead of
	// queueing on the engine's write lock — a saturated micro-batch queue
	// must push back, not stall every connected client. Default 16;
	// <= 0 disables the cap.
	MaxInflightObserve int
	// RetryAfter is the hint sent with 503 rejections. Default 1s.
	RetryAfter time.Duration

	// MaxSessions caps concurrent /v2/session streams; excess requests
	// are rejected with the same 503 + Retry-After admission path as
	// /v2/observe. Default 64; <= 0 disables the cap.
	MaxSessions int
	// SessionCredit is the per-session flow-control window: how many
	// command lines may be in flight (sent, effect not yet durable)
	// before a client must wait for credit. Bounds per-session server
	// memory. Default DefaultSessionCredit.
	SessionCredit int
	// SessionRate paces each session to this many command lines per
	// second (token bucket; SessionBurst is the bucket size). <= 0 (the
	// default) leaves sessions unpaced.
	SessionRate float64
	// SessionBurst is the token-bucket burst of SessionRate. Default
	// max(1, SessionRate).
	SessionBurst int
	// SessionLinger flushes a session's pending observations at most this
	// long after the first one arrived, so trickle streams are ingested
	// promptly without waiting for a full micro-batch. NewBackend sets
	// 200ms; <= 0 disables the timer (flush points then depend only on
	// the command sequence, which the conformance suite relies on).
	SessionLinger time.Duration

	// AuthToken, when non-empty, requires "Authorization: Bearer <token>"
	// on every /v2/* route (including /v2/session) AND every deprecated
	// /v1/* route; mismatches answer 401. Only /healthz stays open. Set
	// before serving; not synchronised.
	AuthToken string

	// TraceAll, when true, opens a root trace span for EVERY request
	// (the -trace flag). When false, only requests carrying an
	// X-Ssrec-Trace header are traced — a caller opts one request in.
	// Set before serving; not synchronised.
	TraceAll bool

	// PrincipalRate, when > 0, paces each principal (bearer token, or
	// remote host when the request carries none) to this many /v1+/v2
	// requests per second (token bucket; PrincipalBurst is the bucket
	// size, default max(1, PrincipalRate)). Excess requests answer 429 +
	// Retry-After. Set before serving; not synchronised.
	PrincipalRate float64
	// PrincipalBurst is the token-bucket burst of PrincipalRate.
	PrincipalBurst int

	// AdminReshard gates the POST /v2/reshard admin trigger (the
	// -admin-reshard flag): an online in-process split/merge of a sharded
	// backend. Off by default — resharding is an operator action, not a
	// client one, and the endpoint is refused with 403 until enabled. Set
	// before serving; not synchronised.
	AdminReshard bool

	// WAL, when non-nil, is the durable ingest log whose state /v2/stats
	// reports (the single-engine deployment's log installed via WrapWAL;
	// sharded deployments report per-shard logs from shard stats instead).
	WAL *wal.Log

	// inflightObserve counts running /v2/observe streams;
	// inflightSessions counts open /v2/session streams.
	inflightObserve  atomic.Int64
	inflightSessions atomic.Int64
	// sessions aggregates the /v2/session counters for /v2/stats.
	sessions sessionCounters

	// principals holds the per-principal quota buckets of PrincipalRate.
	principalMu sync.Mutex
	principals  map[string]*principalBucket
}

// New builds a server around a (trained) single engine.
func New(eng *core.SafeEngine) *Server { return NewBackend(eng) }

// NewBackend builds a server around any Backend — the entry point for a
// sharded deployment (*shard.Router).
func NewBackend(b Backend) *Server {
	reg := telemetry.NewRegistry()
	s := &Server{
		eng:                b,
		mux:                http.NewServeMux(),
		metrics:            newAPIMetrics(reg),
		telemetry:          reg,
		tracer:             telemetry.NewTracer(),
		principals:         make(map[string]*principalBucket),
		MaxK:               100,
		MaxBatch:           256,
		BatchSize:          64,
		MaxBodyBytes:       64 << 20,
		MaxInflightObserve: 16,
		RetryAfter:         time.Second,
		MaxSessions:        64,
		SessionCredit:      DefaultSessionCredit,
		SessionLinger:      200 * time.Millisecond,
	}
	s.mux.HandleFunc("POST /v1/recommend", s.handleRecommend)
	s.mux.HandleFunc("POST /v1/observe", s.handleObserve)
	s.mux.HandleFunc("POST /v1/items", s.handleItem)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v2/recommend", s.handleRecommendV2)
	s.mux.HandleFunc("POST /v2/observe", s.handleObserveV2)
	s.mux.HandleFunc("POST /v2/session", s.handleSessionV2)
	s.mux.HandleFunc("GET /v2/stats", s.handleStatsV2)
	s.mux.HandleFunc("POST /v2/reshard", s.handleReshardV2)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.Handle("GET /metrics", reg.Handler())
	s.mux.HandleFunc("GET /v2/trace/{id}", s.handleTraceV2)
	s.registerGauges()
	return s
}

// Handler returns the instrumented HTTP handler (request IDs, deprecation
// headers, latency counters, tracing, bearer auth and per-principal
// quotas on /v1+/v2 when configured).
func (s *Server) Handler() http.Handler {
	return s.instrument(s.requireAuth(s.principalQuota(s.mux)))
}

// Metrics exposes the server's telemetry registry, so a daemon can
// register process-level gauges beside the serving metrics.
func (s *Server) Metrics() *telemetry.Registry { return s.telemetry }

// Tracer exposes the span buffer behind /v2/trace/{id}; daemons
// configure the slow-query log on it before serving.
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// itemJSON is the wire form of a social item.
type itemJSON struct {
	ID          string   `json:"id"`
	Category    string   `json:"category"`
	Producer    string   `json:"producer"`
	Entities    []string `json:"entities"`
	Description string   `json:"description,omitempty"`
	Timestamp   int64    `json:"timestamp"`
}

func (it itemJSON) model() model.Item {
	return model.Item{
		ID: it.ID, Category: it.Category, Producer: it.Producer,
		Entities: it.Entities, Description: it.Description, Timestamp: it.Timestamp,
	}
}

func (it itemJSON) validate() error {
	if it.ID == "" {
		return fmt.Errorf("item.id is required")
	}
	if it.Category == "" {
		return fmt.Errorf("item.category is required")
	}
	return nil
}

type recommendRequest struct {
	Item itemJSON `json:"item"`
	K    int      `json:"k"`
}

type recommendationJSON struct {
	UserID string  `json:"user_id"`
	Score  float64 `json:"score"`
}

type recommendResponse struct {
	ItemID          string               `json:"item_id"`
	Recommendations []recommendationJSON `json:"recommendations"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	if !decode(w, r, &req) {
		return
	}
	if err := req.Item.validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > s.MaxK {
		req.K = s.MaxK
	}
	recs := s.eng.Recommend(req.Item.model(), req.K)
	resp := recommendResponse{ItemID: req.Item.ID, Recommendations: make([]recommendationJSON, 0, len(recs))}
	for _, rec := range recs {
		resp.Recommendations = append(resp.Recommendations, recommendationJSON{UserID: rec.UserID, Score: rec.Score})
	}
	writeJSON(w, http.StatusOK, resp)
}

type observeRequest struct {
	UserID    string   `json:"user_id"`
	Item      itemJSON `json:"item"`
	Timestamp int64    `json:"timestamp"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req observeRequest
	if !decode(w, r, &req) {
		return
	}
	if req.UserID == "" {
		httpError(w, http.StatusBadRequest, "user_id is required")
		return
	}
	if err := req.Item.validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ir := model.Interaction{UserID: req.UserID, ItemID: req.Item.ID, Timestamp: req.Timestamp}
	s.eng.Observe(ir, req.Item.model())
	w.WriteHeader(http.StatusNoContent)
}

type itemRequest struct {
	Item itemJSON `json:"item"`
}

func (s *Server) handleItem(w http.ResponseWriter, r *http.Request) {
	var req itemRequest
	if !decode(w, r, &req) {
		return
	}
	if err := req.Item.validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.eng.RegisterItem(req.Item.model())
	w.WriteHeader(http.StatusNoContent)
}

type statsResponse struct {
	Users    int `json:"users"`
	Blocks   int `json:"blocks"`
	Trees    int `json:"trees"`
	HashKeys int `json:"hash_keys"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.IndexStats()
	writeJSON(w, http.StatusOK, statsResponse{
		Users: st.Users, Blocks: st.Blocks, Trees: st.Trees, HashKeys: st.HashKeys,
	})
}

// ---- plumbing ----

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	return decodeLimit(w, r, dst, 1<<20)
}

func decodeLimit(w http.ResponseWriter, r *http.Request, dst any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response already committed
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// rejectStatus is the ONE push-back path of the v2 surface: the 503
// admission rejections (/v2/observe, /v2/session) and the 429 quota
// rejections all format their body and Retry-After header here, so the
// two cannot drift apart. The header carries whole seconds, rounded up,
// per RFC 9110.
func (s *Server) rejectStatus(w http.ResponseWriter, status int, msg string) {
	retry := s.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
	httpError(w, status, fmt.Sprintf("%s; retry after %v", msg, retry))
}

// rejectOverloaded is the 503 admission-rejection of /v2/observe
// (MaxInflightObserve) and /v2/session (MaxSessions).
func (s *Server) rejectOverloaded(w http.ResponseWriter, msg string) {
	s.rejectStatus(w, http.StatusServiceUnavailable, msg)
}
