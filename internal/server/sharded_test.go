// sharded_test.go proves the HTTP layer is deployment-agnostic: a server
// over a shard.Router speaks byte-identical v2 protocol to a server over
// the single engine it was sharded from, and /v2/stats grows the per-shard
// section.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/shard"
)

// testShardedServer trains the same corpus as testServer, then boots an
// n-shard deployment from the trained engine's snapshot.
func testShardedServer(t *testing.T, n int) (*Server, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.YTubeConfig(0.2)
	cfg.Seed = 31
	ds := dataset.Generate(cfg)
	eng := core.New(core.Config{Categories: ds.Categories, TrainMaxIter: 5, Restarts: 1})
	if err := evalx.Train(eng, ds, evalx.Setup{}); err != nil {
		t.Fatalf("train: %v", err)
	}
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	r, err := shard.FromSnapshot(buf.Bytes(), n)
	if err != nil {
		t.Fatalf("boot router: %v", err)
	}
	return NewBackend(r), ds
}

// testReplicatedServer boots the same corpus as an n-slot deployment with
// rep replicas per slot and a running reseed supervisor — the replica
// topology the /v2/stats replica_sets and supervisor blocks describe.
func testReplicatedServer(t *testing.T, n, rep int) (*Server, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.YTubeConfig(0.2)
	cfg.Seed = 31
	ds := dataset.Generate(cfg)
	eng := core.New(core.Config{Categories: ds.Categories, TrainMaxIter: 5, Restarts: 1})
	if err := evalx.Train(eng, ds, evalx.Setup{}); err != nil {
		t.Fatalf("train: %v", err)
	}
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	r, err := shard.FromSnapshotReplicated(buf.Bytes(), n, rep)
	if err != nil {
		t.Fatalf("boot replicated router: %v", err)
	}
	sup := r.StartSupervisor(time.Hour) // present in stats; sweeps never fire mid-test
	t.Cleanup(sup.Stop)
	return NewBackend(r), ds
}

// TestStatsV2ReplicaHealth: a replicated deployment surfaces per-slot
// replica states and the supervisor counters in /v2/stats.
func TestStatsV2ReplicaHealth(t *testing.T) {
	s, _ := testReplicatedServer(t, 2, 2)
	rr := get(t, s.Handler(), "/v2/stats")
	if rr.Code != http.StatusOK {
		t.Fatalf("stats status %d", rr.Code)
	}
	var resp struct {
		ReplicaSets []struct {
			Slot     int `json:"slot"`
			Replicas []struct {
				Replica     int    `json:"replica"`
				State       string `json:"state"`
				MissedWrite bool   `json:"missed_write"`
			} `json:"replicas"`
		} `json:"replica_sets"`
		Supervisor *struct {
			Running    bool    `json:"running"`
			IntervalMs float64 `json:"interval_ms"`
		} `json:"supervisor"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if len(resp.ReplicaSets) != 2 {
		t.Fatalf("replica_sets slots = %d, want 2", len(resp.ReplicaSets))
	}
	for _, slot := range resp.ReplicaSets {
		if len(slot.Replicas) != 2 {
			t.Fatalf("slot %d replicas = %d, want 2", slot.Slot, len(slot.Replicas))
		}
		for _, rep := range slot.Replicas {
			if rep.State != "healthy" || rep.MissedWrite {
				t.Errorf("slot %d replica %d: state=%q missed_write=%v, want healthy/false",
					slot.Slot, rep.Replica, rep.State, rep.MissedWrite)
			}
		}
	}
	if resp.Supervisor == nil || !resp.Supervisor.Running {
		t.Fatalf("supervisor block missing or not running: %+v", resp.Supervisor)
	}
}

// TestShardedServerWireEquivalence: the same /v2/recommend request returns
// byte-identical bodies from the single-engine server and the sharded one.
func TestShardedServerWireEquivalence(t *testing.T) {
	single, ds := testServer(t)
	sharded, _ := testShardedServer(t, 3)
	for i := 0; i < 4; i++ {
		body := map[string]any{
			"items": []map[string]any{
				itemBody(ds.Items[i]),
				{"id": "alien", "category": "no-such-category", "producer": "p"},
			},
			"k": 6,
		}
		a := post(t, single.Handler(), "/v2/recommend", body)
		b := post(t, sharded.Handler(), "/v2/recommend", body)
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("status %d / %d", a.Code, b.Code)
		}
		if a.Body.String() != b.Body.String() {
			t.Fatalf("wire divergence on item %d:\nsingle  %s\nsharded %s", i, a.Body.String(), b.Body.String())
		}
	}
}

// TestShardedServerObserveIngest: NDJSON bulk ingest lands on every shard
// (replicated profiles) and reports single-engine-equivalent counters.
func TestShardedServerObserveIngest(t *testing.T) {
	sharded, ds := testShardedServer(t, 3)
	before := sharded.eng.Users()
	var lines []string
	for i := 0; i < 6; i++ {
		lines = append(lines, observeLine(fmt.Sprintf("sharded-user-%d", i), ds.Items[i], int64(i)))
	}
	rr := postRaw(t, sharded.Handler(), "/v2/observe", "application/x-ndjson",
		[]byte(strings.Join(lines, "\n")))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	out := ndjsonLines(t, rr.Body.String())
	sum := out[len(out)-1]
	if sum["status"] != "done" || int(sum["applied"].(float64)) != 6 {
		t.Fatalf("summary = %v", sum)
	}
	if after := sharded.eng.Users(); after != before+6 {
		t.Fatalf("users %d -> %d, want +6", before, after)
	}
}

// TestShardedStatsV2 exercises the per-shard stats section.
func TestShardedStatsV2(t *testing.T) {
	sharded, _ := testShardedServer(t, 3)
	rr := get(t, sharded.Handler(), "/v2/stats")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var resp statsV2Response
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ShardCount != 3 || len(resp.Shards) != 3 {
		t.Fatalf("shard section missing: %+v", resp)
	}
	owned := 0
	for i, sh := range resp.Shards {
		if sh.Shard != i || !sh.Trained {
			t.Errorf("shard %d malformed: %+v", i, sh)
		}
		if sh.Users != resp.Users {
			t.Errorf("shard %d users %d != deployment %d", i, sh.Users, resp.Users)
		}
		owned += sh.OwnedUsers
	}
	if owned != resp.Users {
		t.Errorf("owned sums to %d, want %d", owned, resp.Users)
	}
	// Single-engine stats must NOT carry the shard section.
	single, _ := testServer(t)
	rr2 := get(t, single.Handler(), "/v2/stats")
	var raw map[string]any
	if err := json.Unmarshal(rr2.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["shards"]; ok {
		t.Error("single-engine /v2/stats leaked a shards section")
	}
}
