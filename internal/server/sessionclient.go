// sessionclient.go is the Go client of the /v2/session protocol: a
// ClientSession mirrors core.Session's surface (Push / Ask / Results /
// Close) over one full-duplex NDJSON exchange, honoring the server's
// credit grants so a well-behaved client can never overrun the server's
// flow-control window. It dials with unencrypted-HTTP/2 prior knowledge —
// the same stdlib h2c machinery as internal/shardrpc — because the
// protocol streams both directions of one request concurrently.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
)

// SessionDialOption configures DialSession.
type SessionDialOption func(*sessionDialConfig)

type sessionDialConfig struct {
	authToken string
	autoK     int
	hc        *http.Client
}

// WithDialAuth sends "Authorization: Bearer <token>" — required against a
// server started with -auth-token.
func WithDialAuth(token string) SessionDialOption {
	return func(c *sessionDialConfig) { c.authToken = token }
}

// WithDialAutoRecommend asks the server to auto-answer every first-seen
// pushed item with top-k queries (the ?auto_k parameter).
func WithDialAutoRecommend(k int) SessionDialOption {
	return func(c *sessionDialConfig) { c.autoK = k }
}

// WithDialHTTPClient overrides the HTTP client (tests, custom transports).
func WithDialHTTPClient(hc *http.Client) SessionDialOption {
	return func(c *sessionDialConfig) { c.hc = hc }
}

// defaultH2CClient is the shared transport of token-less DialSession
// calls: HTTP/2 multiplexes every session over per-host connections, so
// session churn must not mint one Transport (with its connection pool
// and ping goroutines) per dial.
var (
	defaultH2COnce   sync.Once
	defaultH2CClient *http.Client
)

func sharedH2CClient() *http.Client {
	defaultH2COnce.Do(func() { defaultH2CClient = NewH2CClient() })
	return defaultH2CClient
}

// NewH2CClient builds an http.Client speaking unencrypted HTTP/2 with
// prior knowledge — what /v2/session needs against an h2c-enabled
// ssrec-server. DialSession shares one such client across calls by
// default; use this (with WithDialHTTPClient) when a caller needs its
// own isolated connection pool.
func NewH2CClient() *http.Client {
	p := new(http.Protocols)
	p.SetHTTP2(true)
	p.SetUnencryptedHTTP2(true)
	dialer := &net.Dialer{Timeout: 10 * time.Second, KeepAlive: 15 * time.Second}
	return &http.Client{Transport: &http.Transport{
		Protocols:           p,
		DialContext:         dialer.DialContext,
		MaxIdleConnsPerHost: 4,
		IdleConnTimeout:     90 * time.Second,
		HTTP2: &http.HTTP2Config{
			SendPingTimeout:  15 * time.Second,
			PingTimeout:      10 * time.Second,
			WriteByteTimeout: 30 * time.Second,
		},
	}}
}

// ClientSession is one open /v2/session stream. Its surface mirrors
// core.Session so callers (and the conformance suite) can drive an
// embedded session and a wire session interchangeably.
type ClientSession struct {
	pw  *io.PipeWriter
	enc *json.Encoder
	wmu sync.Mutex // serialises command lines

	ctx     context.Context
	results chan core.SessionResult
	done    chan struct{} // reader exited

	mu      sync.Mutex
	avail   int // credit on hand
	closed  bool
	err     error // terminal failure
	stats   core.SessionStats
	haveSt  bool
	creditC chan struct{} // signalled (capacity 1) when credit arrives
}

// DialSession opens a session stream against base (a host:port or
// http:// URL of an h2c-enabled ssrec-server). The context bounds the
// whole session. The returned session is ready once the server's initial
// credit grant arrives (awaited here, so a Dial error reports auth and
// admission failures synchronously).
func DialSession(ctx context.Context, base string, opts ...SessionDialOption) (*ClientSession, error) {
	var cfg sessionDialConfig
	for _, o := range opts {
		o(&cfg)
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	hc := cfg.hc
	if hc == nil {
		hc = sharedH2CClient()
	}
	url := strings.TrimRight(base, "/") + "/v2/session"
	if cfg.autoK > 0 {
		url += "?auto_k=" + strconv.Itoa(cfg.autoK)
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, pr)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if cfg.authToken != "" {
		req.Header.Set("Authorization", "Bearer "+cfg.authToken)
	}
	resp, err := hc.Do(req)
	if err != nil {
		pw.Close()
		return nil, fmt.Errorf("session: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorResponse
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		resp.Body.Close()
		pw.Close()
		msg := eb.Error
		if msg == "" {
			msg = resp.Status
		}
		return nil, fmt.Errorf("session: status %d: %s", resp.StatusCode, msg)
	}
	s := &ClientSession{
		pw:      pw,
		enc:     json.NewEncoder(pw),
		ctx:     ctx,
		results: make(chan core.SessionResult, 64),
		done:    make(chan struct{}),
		creditC: make(chan struct{}, 1),
	}
	go s.read(resp.Body)
	// Await the initial grant so a dialed session is immediately usable.
	if err := s.waitCredit(ctx); err != nil {
		s.fail(err)
		return nil, fmt.Errorf("session: no initial credit: %w", err)
	}
	s.refund() // waitCredit consumed one; give it back
	return s, nil
}

// Results delivers answers in command order; the channel closes when the
// session ends (check Err afterwards).
func (s *ClientSession) Results() <-chan core.SessionResult { return s.results }

// Err reports the terminal error (nil after a clean Close).
func (s *ClientSession) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns the server's session summary; valid after Close (the
// summary travels on the terminal done line).
func (s *ClientSession) Stats() (core.SessionStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats, s.haveSt
}

// Push sends one observation, honoring the credit window.
func (s *ClientSession) Push(o core.Observation) error {
	line := sessionLineIn{Obs: &observeLineJSON{
		UserID: o.UserID,
		Item: itemJSON{ID: o.Item.ID, Category: o.Item.Category, Producer: o.Item.Producer,
			Entities: o.Item.Entities, Description: o.Item.Description, Timestamp: o.Item.Timestamp},
		Timestamp: o.Timestamp,
	}}
	return s.send(line)
}

// Ask sends one query, honoring the credit window; the answer arrives on
// Results in command order.
func (s *ClientSession) Ask(v model.Item, opts ...core.Option) error {
	o := core.ResolveOptions(opts...)
	ask := &sessionAskJSON{
		Item: itemJSON{ID: v.ID, Category: v.Category, Producer: v.Producer,
			Entities: v.Entities, Description: v.Description, Timestamp: v.Timestamp},
		K:           o.K,
		Parallelism: o.Parallelism,
	}
	if o.NoExpansion {
		f := false
		ask.Expansion = &f
	}
	return s.send(sessionLineIn{Ask: ask})
}

// Flush sends the explicit barrier: the server admits its pending
// micro-batch now. Asynchronous — ordering, not acknowledgement.
func (s *ClientSession) Flush() error {
	return s.send(sessionLineIn{Flush: true})
}

// Close half-closes the command stream, waits for the server's terminal
// summary and closes Results. It returns the session's terminal error.
func (s *ClientSession) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return s.Err()
	}
	s.closed = true
	s.mu.Unlock()
	s.pw.Close() // half-close: the server flushes, answers, summarises
	select {
	case <-s.done:
	case <-s.ctx.Done():
		s.fail(s.ctx.Err())
	}
	return s.Err()
}

// send serialises one command line after acquiring a credit.
func (s *ClientSession) send(line sessionLineIn) error {
	if err := s.waitCredit(s.ctx); err != nil {
		return err
	}
	s.wmu.Lock()
	err := s.enc.Encode(line)
	s.wmu.Unlock()
	if err != nil {
		s.refund()
		if terr := s.Err(); terr != nil {
			return terr
		}
		return core.ErrSessionClosed
	}
	return nil
}

// waitCredit blocks until a credit is available — the client half of the
// flow-control protocol. A compliant client therefore cannot overrun the
// server's window: when the server stops retiring (slow consumer), the
// grants stop and sends block here.
func (s *ClientSession) waitCredit(ctx context.Context) error {
	for {
		s.mu.Lock()
		if s.closed && s.err != nil {
			err := s.err
			s.mu.Unlock()
			return err
		}
		if s.closed {
			s.mu.Unlock()
			return core.ErrSessionClosed
		}
		if s.avail > 0 {
			s.avail--
			left := s.avail
			s.mu.Unlock()
			if left > 0 {
				// Grants arrive in batches but creditC carries one token:
				// pass the wakeup along so every blocked sender sharing
				// this session drains the batch, not just the first.
				s.signalCredit()
			}
			return nil
		}
		s.mu.Unlock()
		select {
		case <-s.creditC:
		case <-s.done:
			if err := s.Err(); err != nil {
				return err
			}
			return core.ErrSessionClosed
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (s *ClientSession) refund() {
	s.mu.Lock()
	s.avail++
	s.mu.Unlock()
	s.signalCredit()
}

func (s *ClientSession) signalCredit() {
	select {
	case s.creditC <- struct{}{}:
	default:
	}
}

// fail records a terminal error and marks the session closed.
func (s *ClientSession) fail(err error) {
	s.mu.Lock()
	if s.err == nil && err != nil {
		s.err = err
	}
	s.closed = true
	s.mu.Unlock()
	s.pw.CloseWithError(err)
	s.signalCredit()
}

// decodeSessionErr restores a wire error's sentinel identity.
func decodeSessionErr(e *errorJSON) error {
	if e == nil {
		return nil
	}
	var base error
	switch e.Code {
	case "not_trained":
		base = core.ErrNotTrained
	case "unknown_category":
		base = core.ErrUnknownCategory
	case "invalid_observation":
		base = core.ErrInvalidObservation
	case "shard_unavailable":
		base = shard.ErrShardUnavailable
	case "cancelled":
		base = context.Canceled
	default:
		return errors.New(e.Message)
	}
	if e.Message == base.Error() {
		return base
	}
	return fmt.Errorf("%w: %s", base, e.Message)
}

// read dispatches server lines: credit grants unblock senders, results
// flow to the Results channel, error/done lines terminate the session.
func (s *ClientSession) read(body io.ReadCloser) {
	defer close(s.done)
	defer close(s.results)
	defer body.Close()
	dec := json.NewDecoder(body)
	for {
		var line sessionLineOut
		if err := dec.Decode(&line); err != nil {
			s.mu.Lock()
			clean := s.closed && s.err == nil && s.haveSt
			s.mu.Unlock()
			if !clean && !errors.Is(err, io.EOF) {
				s.fail(fmt.Errorf("session: stream broken: %w", err))
			} else if !clean {
				s.fail(fmt.Errorf("session: stream ended without summary"))
			}
			return
		}
		switch {
		case line.Credit > 0:
			s.mu.Lock()
			s.avail += line.Credit
			s.mu.Unlock()
			s.signalCredit()
		case line.Result != nil:
			res := core.SessionResult{
				Seq:  line.Result.Seq,
				Auto: line.Result.Auto,
				Result: core.Result{
					ItemID: line.Result.ItemID,
					Err:    decodeSessionErr(line.Result.Error),
				},
			}
			for _, rec := range line.Result.Recommendations {
				res.Recommendations = append(res.Recommendations,
					model.Recommendation{UserID: rec.UserID, Score: rec.Score})
			}
			select {
			case s.results <- res:
			case <-s.ctx.Done():
				s.fail(s.ctx.Err())
				return
			}
		case line.Done != nil:
			s.mu.Lock()
			s.stats = core.SessionStats{
				Pushed: line.Done.Pushed, Admitted: line.Done.Applied,
				Rejected: line.Done.Rejected, Flushed: line.Done.Flushed,
				Batches: line.Done.Batches, Asked: line.Done.Asked,
				Answered: line.Done.Answered,
			}
			s.haveSt = true
			s.closed = true
			if line.Done.Error != nil && s.err == nil {
				s.err = decodeSessionErr(line.Done.Error)
			}
			s.mu.Unlock()
			return
		case line.Error != nil:
			s.fail(fmt.Errorf("session: %s: %s", line.Error.Code, line.Error.Message))
			return
		}
	}
}
