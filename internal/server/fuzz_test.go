// fuzz_test.go fuzzes the two wire-decoding surfaces of the v2 protocol:
// the /v2/observe NDJSON line parser and the /v2/recommend request
// decoder. The harness drives the real handlers over an UNTRAINED engine —
// construction is cheap enough for the fuzz loop and every decode path,
// validation branch and error mapping still executes (valid recommends
// surface as not_trained). The invariants: no panic, and the response is
// always well-formed protocol output (parseable NDJSON statuses with a
// trailing summary; a JSON object on every /v2/recommend status).
//
// Seed corpus: the malformed-input cases of v2_test.go plus boundary
// shapes (empty line, huge line, nested junk). Run the mutation loop with
//
//	go test ./internal/server -fuzz FuzzObserveV2Line -fuzztime 10s
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ssrec/internal/core"
)

// fuzzHandler builds one untrained server shared by all fuzz iterations
// (handlers are concurrency-safe; the engine just reports not_trained on
// queries and absorbs observations into profiles).
var fuzzHandler = sync.OnceValue(func() http.Handler {
	s := New(core.NewSafe(core.Config{Categories: []string{"cat00", "cat01"}}))
	s.BatchSize = 3 // force micro-batch boundaries inside small inputs
	return s.Handler()
})

func FuzzObserveV2Line(f *testing.F) {
	// Seeds: the v2_test malformed-line cases and protocol boundaries.
	f.Add(`{"user_id":"u1","item":{"id":"x","category":"cat00"},"timestamp":1}`)
	f.Add(`{not json`)
	f.Add(`{"user_id":"","item":{"id":"x","category":"cat00"},"timestamp":2}`)
	f.Add(`{"user_id":"u2","item":{"id":"","category":""},"timestamp":3}`)
	f.Add(``)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"user_id":"u3","item":{"id":"y","category":"cat01","entities":["a","b"]},"timestamp":-9}`)
	f.Add(`{"user_id":"` + strings.Repeat("x", 4096) + `","item":{"id":"big","category":"cat00"}}`)
	f.Add("{\"user_id\":\"u\\u0000\",\"item\":{\"id\":\"z\",\"category\":\"cat00\"}}")

	f.Fuzz(func(t *testing.T, line string) {
		// One fuzzed line sandwiched between two known-good lines so batch
		// assembly and flush boundaries around the hostile input execute.
		body := strings.Join([]string{
			`{"user_id":"pre","item":{"id":"pre","category":"cat00"},"timestamp":1}`,
			line,
			`{"user_id":"post","item":{"id":"post","category":"cat01"},"timestamp":2}`,
		}, "\n")
		req := httptest.NewRequest(http.MethodPost, "/v2/observe", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/x-ndjson")
		rr := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			t.Fatalf("status %d", rr.Code)
		}
		// Every response line must be valid JSON with a status field, and
		// the stream must end with the "done" summary.
		sc := bufio.NewScanner(strings.NewReader(rr.Body.String()))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<21)
		var last map[string]any
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			var m map[string]any
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				t.Fatalf("unparseable response line %q: %v", sc.Text(), err)
			}
			st, _ := m["status"].(string)
			if st != "ok" && st != "error" && st != "done" {
				t.Fatalf("unknown status in %v", m)
			}
			last = m
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("response scan: %v", err)
		}
		if last == nil || last["status"] != "done" {
			t.Fatalf("stream did not end with a summary: %v\n%s", last, rr.Body.String())
		}
	})
}

func FuzzRecommendV2Decode(f *testing.F) {
	// Seeds: the v2_test request shapes, valid and malformed.
	f.Add(`{"items":[{"id":"x","category":"cat00","producer":"p","entities":["e"]}],"k":5}`)
	f.Add(`{nope`)
	f.Add(`{"items":[]}`)
	f.Add(`{"items":[{"id":"","category":"x"}]}`)
	f.Add(`{"items":[{"id":"alien","category":"no-such-category","producer":"p"}],"k":5}`)
	f.Add(`{"item": {"id":"v1-shaped","category":"cat00"}}`)
	f.Add(`{"items":[{"id":"x","category":"cat00"}],"k":-3,"parallelism":99,"expansion":false}`)
	f.Add(`{"items":` + strings.Repeat(`[`, 64) + strings.Repeat(`]`, 64) + `}`)
	f.Add(`{"items":[{"id":"dup","category":"cat00"},{"id":"dup","category":"cat00"}],"k":1000000}`)

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v2/recommend", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rr := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusServiceUnavailable:
		default:
			t.Fatalf("unexpected status %d for %q", rr.Code, body)
		}
		var any map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &any); err != nil {
			t.Fatalf("non-JSON response (%d): %q", rr.Code, rr.Body.String())
		}
		if rr.Code == http.StatusOK {
			var resp recommendV2Response
			if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 response not a recommendV2Response: %v", err)
			}
			if len(resp.Results) == 0 {
				t.Fatalf("200 with no results: %q", rr.Body.String())
			}
		}
	})
}
