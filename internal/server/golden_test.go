// golden_test.go pins the wire format against drift: the /v2/stats
// response shape (single-engine and sharded) and the v1 deprecation
// headers are compared against golden files in testdata/. A renamed JSON
// field, a dropped header or an accidentally-added key fails CI.
//
// Regenerate after an INTENTIONAL wire change with
//
//	go test ./internal/server -run Golden -update
package server

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// canonicalize replaces every scalar with a type placeholder so the golden
// captures the SHAPE of the payload (keys, nesting, arity) rather than
// run-dependent values.
func canonicalize(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, val := range x {
			out[k] = canonicalize(val)
		}
		return out
	case []any:
		out := make([]any, len(x))
		for i := range x {
			out[i] = canonicalize(x[i])
		}
		return out
	case float64:
		return "<number>"
	case string:
		return "<string>"
	case bool:
		return "<bool>"
	case nil:
		return "<null>"
	default:
		return fmt.Sprintf("<%T>", v)
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if string(want) != string(got) {
		t.Errorf("wire format drifted from %s.\n--- got ---\n%s\n--- want ---\n%s\nIf intentional, regenerate with: go test ./internal/server -run Golden -update",
			path, got, want)
	}
}

// statsShape fetches /v2/stats after one deterministic recommend call and
// canonicalizes the response shape.
func statsShape(t *testing.T, s *Server, item map[string]any) []byte {
	t.Helper()
	h := s.Handler()
	post(t, h, "/v2/recommend", map[string]any{"items": []map[string]any{item}, "k": 3})
	rr := get(t, h, "/v2/stats")
	if rr.Code != http.StatusOK {
		t.Fatalf("stats status %d", rr.Code)
	}
	var payload any
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	out, err := json.MarshalIndent(canonicalize(payload), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func TestGoldenStatsV2Shape(t *testing.T) {
	s, ds := testServer(t)
	checkGolden(t, "v2_stats_shape.golden", statsShape(t, s, itemBody(ds.Items[0])))
}

func TestGoldenStatsV2ShardedShape(t *testing.T) {
	s, ds := testShardedServer(t, 2)
	checkGolden(t, "v2_stats_sharded_shape.golden", statsShape(t, s, itemBody(ds.Items[0])))
}

func TestGoldenStatsV2ReplicatedShape(t *testing.T) {
	s, ds := testReplicatedServer(t, 2, 2)
	checkGolden(t, "v2_stats_replicated_shape.golden", statsShape(t, s, itemBody(ds.Items[0])))
}

// TestGoldenV1DeprecationHeaders pins the RFC 8594-style sunset signalling
// of every v1 route (and its absence on v2/health routes).
func TestGoldenV1DeprecationHeaders(t *testing.T) {
	s, ds := testServer(t)
	h := s.Handler()
	probes := []struct {
		method, path string
		body         map[string]any
	}{
		{http.MethodPost, "/v1/recommend", map[string]any{"item": itemBody(ds.Items[0]), "k": 1}},
		{http.MethodPost, "/v1/observe", map[string]any{"user_id": "gold", "item": itemBody(ds.Items[0]), "timestamp": 1}},
		{http.MethodPost, "/v1/items", map[string]any{"item": itemBody(ds.Items[0])}},
		{http.MethodGet, "/v1/stats", nil},
		{http.MethodPost, "/v2/recommend", map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}}},
		{http.MethodGet, "/v2/stats", nil},
		{http.MethodGet, "/healthz", nil},
	}
	var b strings.Builder
	for _, p := range probes {
		var rr interface {
			Header() http.Header
		}
		if p.method == http.MethodGet {
			rr = get(t, h, p.path)
		} else {
			rr = post(t, h, p.path, p.body)
		}
		keys := []string{"Deprecation", "Link"}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%s %s\n", p.method, p.path)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s: %s\n", k, rr.Header().Get(k))
		}
	}
	checkGolden(t, "v1_deprecation_headers.golden", []byte(b.String()))
}
