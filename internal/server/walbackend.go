// walbackend.go makes the single-engine deployment durable: WrapWAL
// interposes a write-ahead log between the HTTP handlers and the engine,
// appending every admitted write — v2 observe micro-batches, v1 single
// observations and item registrations — BEFORE applying it, under one
// mutex so a checkpoint's snapshot and its sequence watermark always
// agree (the same ordering internal/shardrpc applies per shard). A write
// that cannot be made durable is not applied: /v2/observe reports the
// failure on its summary line; the void v1 paths drop the write and
// count it (AppendFailures), preferring a visible gap in the counters to
// an ack the log cannot replay.
package server

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/telemetry"
	"ssrec/internal/wal"
)

// WALBackend is a Backend that logs every write durably before applying
// it to the wrapped engine.
type WALBackend struct {
	*core.SafeEngine
	eng *core.Engine
	log *wal.Log

	mu             sync.Mutex // serialises append+apply against Checkpoint
	appendFailures atomic.Uint64
}

// WrapWAL wraps an engine (and its SafeEngine serving view) with the
// durable ingest log. The caller recovers the log into the engine BEFORE
// wrapping (see cmd/ssrec-server): WrapWAL only covers writes from here
// on.
func WrapWAL(e *core.Engine, l *wal.Log) *WALBackend {
	return &WALBackend{SafeEngine: core.WrapSafe(e), eng: e, log: l}
}

// Log exposes the underlying WAL (for stats and shutdown checkpoints).
func (b *WALBackend) Log() *wal.Log { return b.log }

// AppendFailures counts v1 void-path writes dropped because the log
// refused the append.
func (b *WALBackend) AppendFailures() uint64 { return b.appendFailures.Load() }

// Checkpoint writes an engine snapshot into the log and compacts the
// segments it covers. Taken under the same mutex as every append+apply,
// so the snapshot and the checkpoint's sequence watermark agree.
func (b *WALBackend) Checkpoint() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.log.Checkpoint(func(w io.Writer) error { return b.eng.SaveTo(w) })
}

// RecommendBatch implements Backend. Queries mutate too: the batch
// prologue registers every unseen item, advancing the replicated
// dictionaries, so a batch that would register anything logs the
// registration BEFORE it applies — otherwise a crash would forget
// registrations the live engine answered with, and recovery would
// replay later writes against a differently-ordered dictionary. A warm
// batch (the steady state) costs no log record; the engine's own
// prologue then finds nothing to do.
func (b *WALBackend) RecommendBatch(ctx context.Context, items []model.Item, opts ...core.Option) ([]core.Result, error) {
	if len(items) > 0 && b.eng.Trained() {
		b.mu.Lock()
		if b.eng.NeedsRegistration(items) {
			payload, err := wal.EncodeRegister(items)
			if err != nil {
				b.mu.Unlock()
				return nil, fmt.Errorf("wal encode: %w", err)
			}
			sp := telemetry.LeafSpan(ctx, "wal.append")
			sp.SetAttr("kind", "register")
			_, err = b.log.Append(wal.KindRegister, payload)
			sp.End()
			if err != nil {
				b.mu.Unlock()
				return nil, fmt.Errorf("wal append: %w", err)
			}
			b.eng.RegisterItemBatch(items)
		}
		b.mu.Unlock()
	}
	return b.SafeEngine.RecommendBatch(ctx, items, opts...)
}

// Recommend implements Backend for the deprecated v1 single-item query
// under the same rule as RecommendBatch. The v1 surface cannot report
// an append failure, so a cold item whose registration cannot be logged
// is answered empty (and counted) rather than letting the engine
// register state the log cannot replay.
func (b *WALBackend) Recommend(v model.Item, k int) []model.Recommendation {
	if b.eng.Trained() {
		one := []model.Item{v}
		b.mu.Lock()
		if b.eng.NeedsRegistration(one) {
			payload, err := wal.EncodeRegister(one)
			if err == nil {
				_, err = b.log.Append(wal.KindRegister, payload)
			}
			if err != nil {
				b.appendFailures.Add(1)
				b.mu.Unlock()
				return nil
			}
			b.eng.RegisterItemBatch(one)
		}
		b.mu.Unlock()
	}
	return b.SafeEngine.Recommend(v, k)
}

// ObserveBatch implements Backend: durable first, then apply. An append
// failure refuses the batch — the ack must mean "recoverable".
func (b *WALBackend) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	if len(batch) == 0 {
		return b.SafeEngine.ObserveBatch(ctx, batch)
	}
	payload, err := wal.EncodeObserve(batch)
	if err != nil {
		return core.BatchReport{}, fmt.Errorf("wal encode: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	sp := telemetry.LeafSpan(ctx, "wal.append")
	sp.SetAttr("kind", "observe")
	_, err = b.log.Append(wal.KindObserve, payload)
	sp.End()
	if err != nil {
		return core.BatchReport{}, fmt.Errorf("wal append: %w", err)
	}
	return b.SafeEngine.ObserveBatch(ctx, batch)
}

// Observe implements Backend for the deprecated v1 single-observation
// path, logged as a one-element observe batch (recovery replays it
// through ObserveBatch, which applies the same observation). The v1
// surface cannot report an append failure, so the write is dropped and
// counted instead of applied non-durably.
func (b *WALBackend) Observe(ir model.Interaction, v model.Item) {
	obs := []core.Observation{{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp}}
	payload, err := wal.EncodeObserve(obs)
	if err != nil {
		b.appendFailures.Add(1)
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.log.Append(wal.KindObserve, payload); err != nil {
		b.appendFailures.Add(1)
		return
	}
	b.SafeEngine.Observe(ir, v)
}

// RegisterItem implements Backend for the deprecated v1 registration
// path, logged as a one-element register batch under the same
// drop-and-count rule as Observe.
func (b *WALBackend) RegisterItem(v model.Item) {
	payload, err := wal.EncodeRegister([]model.Item{v})
	if err != nil {
		b.appendFailures.Add(1)
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.log.Append(wal.KindRegister, payload); err != nil {
		b.appendFailures.Add(1)
		return
	}
	b.SafeEngine.RegisterItem(v)
}

var _ Backend = (*WALBackend)(nil)
