// session_test.go: the /v2/session protocol — ordered full-duplex
// serving over h2c, credit-based flow control (a compliant client blocks,
// a violating client is cut off, server-side buffering stays bounded),
// admission 503s, per-session rate pacing, auto-recommend and bearer auth.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/model"
)

// startH2C serves a Server's handler on a loopback listener with
// unencrypted HTTP/2 enabled — what /v2/session needs end to end.
func startH2C(t testing.TB, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	p := new(http.Protocols)
	p.SetHTTP1(true)
	p.SetUnencryptedHTTP2(true)
	hs := &http.Server{Handler: s.Handler(), Protocols: p}
	go hs.Serve(ln) //nolint:errcheck // closed by Cleanup
	t.Cleanup(func() { hs.Close() })
	return ln.Addr().String()
}

// sessionTestServer builds a trained server plus its dataset once per
// test.
func sessionTestServer(t *testing.T) (*Server, *dataset.Dataset, string) {
	t.Helper()
	s, ds := testServer(t)
	return s, ds, startH2C(t, s)
}

// TestSessionStreamBasics: push observations, interleave asks, receive
// ordered answers and a truthful terminal summary.
func TestSessionStreamBasics(t *testing.T) {
	s, ds, addr := sessionTestServer(t)
	ses, err := DialSession(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	// Collect results concurrently (the protocol is full-duplex).
	var got []core.SessionResult
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for r := range ses.Results() {
			got = append(got, r)
		}
	}()

	parts := ds.Partition(6)
	trainEnd := parts[1][len(parts[1])-1].Timestamp
	pushed, asked := 0, 0
	for _, ir := range ds.Interactions {
		if ir.Timestamp <= trainEnd || pushed >= 40 {
			continue
		}
		v, ok := ds.Item(ir.ItemID)
		if !ok {
			continue
		}
		if err := ses.Push(core.Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp}); err != nil {
			t.Fatalf("push: %v", err)
		}
		pushed++
		if pushed%10 == 0 {
			if err := ses.Ask(ds.Items[pushed%len(ds.Items)], core.WithK(5)); err != nil {
				t.Fatalf("ask: %v", err)
			}
			asked++
		}
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	<-collected

	if len(got) != asked {
		t.Fatalf("%d results, want %d", len(got), asked)
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if len(r.Recommendations) == 0 || len(r.Recommendations) > 5 {
			t.Fatalf("result %d: %d recs", i, len(r.Recommendations))
		}
		if i > 0 && got[i].Seq <= got[i-1].Seq {
			t.Fatalf("results out of order: seq %d after %d", got[i].Seq, got[i-1].Seq)
		}
	}
	st, ok := ses.Stats()
	if !ok {
		t.Fatal("no terminal summary")
	}
	if st.Pushed != uint64(pushed) || st.Admitted != uint64(pushed) || st.Asked != uint64(asked) {
		t.Fatalf("summary %+v, want %d pushed, %d asked", st, pushed, asked)
	}
	// The serving counters feed /v2/stats.
	if s.sessions.total.Load() != 1 || s.sessions.lines.Load() != int64(pushed+asked) {
		t.Fatalf("server counters: total=%d lines=%d", s.sessions.total.Load(), s.sessions.lines.Load())
	}
}

// TestSessionCreditBlocksCompliantClient: with the engine's write path
// parked (micro-batch admission blocked), credit never retires — a
// compliant client must stop at exactly the window, and server-side
// buffering must not grow past it. Releasing the engine lets the whole
// stream complete.
func TestSessionCreditBlocksCompliantClient(t *testing.T) {
	bb := &blockingBackend{entered: make(chan struct{}, 64), release: make(chan struct{})}
	s := NewBackend(bb)
	const window = 8
	s.SessionCredit = window
	s.BatchSize = 2 // flushes early — and parks on the blocked backend
	s.SessionLinger = -1
	addr := startH2C(t, s)

	ses, err := DialSession(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	const total = 3 * window
	var sent atomic.Int64
	pushErr := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			v := model.Item{ID: fmt.Sprintf("blk%d", i), Category: "c"}
			if err := ses.Push(core.Observation{UserID: "slow", Item: v, Timestamp: int64(i)}); err != nil {
				pushErr <- err
				return
			}
			sent.Add(1)
		}
		pushErr <- nil
	}()
	// The first micro-batch reaches the engine and parks.
	select {
	case <-bb.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first micro-batch never reached the engine")
	}
	time.Sleep(500 * time.Millisecond)
	if n := sent.Load(); n != window {
		t.Fatalf("client sent %d lines with a %d window and retirement stalled", n, window)
	}
	if n := s.sessions.lines.Load(); n > window {
		t.Fatalf("server admitted %d lines past the %d credit window", n, window)
	}
	// Unpark the engine: retirement resumes, grants flow, the stream
	// completes and closes cleanly.
	close(bb.release)
	if err := <-pushErr; err != nil {
		t.Fatalf("push after release: %v", err)
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st, ok := ses.Stats()
	if !ok || st.Pushed != total || st.Admitted != total {
		t.Fatalf("summary %+v, want %d pushed+admitted", st, total)
	}
}

// TestSessionBatchClampPreventsStarvation: a micro-batch larger than the
// credit window can never fill (with linger off) — the handler must clamp
// it to the window or a compliant client starves of credit forever
// (regression: -batch-size 512 -session-credit 256 -session-linger -1
// deadlocked every session).
func TestSessionBatchClampPreventsStarvation(t *testing.T) {
	s, ds, addr := sessionTestServer(t)
	const window = 8
	s.SessionCredit = window
	s.BatchSize = 1024 // without the clamp this can never flush
	s.SessionLinger = -1

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ses, err := DialSession(ctx, addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	const total = 3 * window
	for i := 0; i < total; i++ {
		v := ds.Items[i%len(ds.Items)]
		if err := ses.Push(core.Observation{UserID: "clamp", Item: v, Timestamp: int64(i)}); err != nil {
			t.Fatalf("push %d: %v (credit starved?)", i, err)
		}
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st, ok := ses.Stats()
	if !ok || st.Admitted != total {
		t.Fatalf("summary %+v, want %d admitted", st, total)
	}
	if st.Batches != total/window {
		t.Fatalf("summary %+v: want %d flushes of the clamped %d-batch", st, total/window, window)
	}
}

// TestSessionFlowControlViolation: a client that ignores credit is cut
// off with a flow_control error instead of growing server-side buffers.
func TestSessionFlowControlViolation(t *testing.T) {
	s, ds, addr := sessionTestServer(t)
	const window = 8
	s.SessionCredit = window
	s.BatchSize = 1024
	s.SessionLinger = -1

	// Hand-rolled non-compliant client: floods 4× the window without
	// reading a single credit line.
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, "http://"+addr+"/v2/session", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := NewH2CClient().Do(req)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer resp.Body.Close()
	go func() {
		enc := json.NewEncoder(pw)
		for i := 0; i < 4*window; i++ {
			v := ds.Items[i%len(ds.Items)]
			line := sessionLineIn{Obs: &observeLineJSON{UserID: "flood",
				Item: itemJSON{ID: v.ID, Category: v.Category}, Timestamp: int64(i)}}
			if enc.Encode(line) != nil {
				return
			}
		}
	}()

	sawViolation := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line sessionLineOut
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad server line %q: %v", sc.Text(), err)
		}
		if line.Error != nil {
			if line.Error.Code != "flow_control" {
				t.Fatalf("error code %q, want flow_control", line.Error.Code)
			}
			sawViolation = true
			break
		}
	}
	if !sawViolation {
		t.Fatal("server never cut off the flooding client")
	}
	if got := s.sessions.violations.Load(); got != 1 {
		t.Fatalf("violations counter = %d, want 1", got)
	}
	if n := s.sessions.lines.Load(); n > window {
		t.Fatalf("server admitted %d lines past the window before the kill", n)
	}
	pw.Close()
}

// TestSessionAdmission503 shares the overload path with /v2/observe: the
// Retry-After formatting must be byte-identical (regression-guards the
// shared rejectOverloaded helper).
func TestSessionAdmission503(t *testing.T) {
	s, _, addr := sessionTestServer(t)
	s.MaxSessions = 1
	s.RetryAfter = 3 * time.Second

	first, err := DialSession(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer first.Close()

	resp, err := NewH2CClient().Post("http://"+addr+"/v2/session", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatalf("second dial: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second session status %d, want 503", resp.StatusCode)
	}
	sessionRA := resp.Header.Get("Retry-After")
	if sessionRA != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", sessionRA)
	}
	if s.sessions.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d", s.sessions.rejected.Load())
	}

	// The observe path must produce the identical header through the same
	// helper.
	obsResp := httpGetRetryAfter(t, s)
	if obsResp != sessionRA {
		t.Fatalf("observe Retry-After %q != session Retry-After %q (rejectOverloaded drifted)", obsResp, sessionRA)
	}
}

// httpGetRetryAfter saturates /v2/observe and returns the rejection's
// Retry-After header.
func httpGetRetryAfter(t *testing.T, s *Server) string {
	t.Helper()
	old := s.MaxInflightObserve
	s.MaxInflightObserve = 1
	s.inflightObserve.Add(1) // simulate one stream in flight
	defer func() { s.inflightObserve.Add(-1); s.MaxInflightObserve = old }()
	rr := postRaw(t, s.Handler(), "/v2/observe", "application/x-ndjson",
		[]byte(`{"user_id":"u","item":{"id":"i","category":"c"}}`+"\n"))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("observe status %d, want 503", rr.Code)
	}
	return rr.Header().Get("Retry-After")
}

// TestSessionAutoRecommend: ?auto_k answers every first-seen pushed item
// without an ask.
func TestSessionAutoRecommend(t *testing.T) {
	_, ds, addr := sessionTestServer(t)
	ses, err := DialSession(context.Background(), addr, WithDialAutoRecommend(3))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var auto []core.SessionResult
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for r := range ses.Results() {
			auto = append(auto, r)
		}
	}()
	seen := map[string]bool{}
	parts := ds.Partition(6)
	trainEnd := parts[1][len(parts[1])-1].Timestamp
	n := 0
	for _, ir := range ds.Interactions {
		if ir.Timestamp <= trainEnd || n >= 24 {
			continue
		}
		v, ok := ds.Item(ir.ItemID)
		if !ok {
			continue
		}
		seen[v.ID] = true
		if err := ses.Push(core.Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp}); err != nil {
			t.Fatalf("push: %v", err)
		}
		n++
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	<-collected
	if len(auto) != len(seen) {
		t.Fatalf("%d auto answers, want %d distinct items", len(auto), len(seen))
	}
	for _, r := range auto {
		if !r.Auto {
			t.Fatalf("non-auto result %+v on an ask-free session", r)
		}
		if r.Err != nil || len(r.Recommendations) == 0 || len(r.Recommendations) > 3 {
			t.Fatalf("auto result %s: err=%v recs=%d", r.ItemID, r.Err, len(r.Recommendations))
		}
	}
}

// TestSessionAutoRecommendCreditAccounting: an auto answer has no command
// line of its own, so it must NOT retire credit — total re-grants can
// never exceed the command lines actually sent (regression: retiring per
// result drifted the window open under ?auto_k and disarmed the
// flow-control check).
func TestSessionAutoRecommendCreditAccounting(t *testing.T) {
	s, ds, addr := sessionTestServer(t)
	s.SessionCredit = 4
	s.BatchSize = 2 // frequent flushes → frequent retirement → frequent grants

	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost,
		"http://"+addr+"/v2/session?auto_k=2", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := NewH2CClient().Do(req)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer resp.Body.Close()

	// Raw compliant-ish client: sends lines as credit allows, reading
	// everything and summing the grants.
	const lines = 16
	parts := ds.Partition(6)
	trainEnd := parts[1][len(parts[1])-1].Timestamp
	var distinct []itemJSON
	for _, v := range ds.Items {
		if v.Timestamp > trainEnd && len(distinct) < lines {
			distinct = append(distinct, itemJSON{ID: v.ID, Category: v.Category, Producer: v.Producer,
				Entities: v.Entities, Timestamp: v.Timestamp})
		}
	}
	if len(distinct) < lines {
		t.Skip("fixture too small")
	}
	granted, initial := 0, -1
	sent := 0
	enc := json.NewEncoder(pw)
	sc := bufio.NewScanner(resp.Body)
	send := func(n int) {
		for ; sent < n && sent < lines; sent++ {
			line := sessionLineIn{Obs: &observeLineJSON{UserID: fmt.Sprintf("acct%d", sent),
				Item: distinct[sent], Timestamp: int64(sent)}}
			if err := enc.Encode(line); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
	}
	for sc.Scan() {
		var line sessionLineOut
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Credit > 0:
			if initial < 0 {
				initial = line.Credit
			} else {
				granted += line.Credit
			}
			send(sent + line.Credit)
		case line.Error != nil:
			t.Fatalf("session error: %+v", line.Error)
		case line.Done != nil:
			if granted > lines {
				t.Fatalf("server re-granted %d credits for %d command lines (auto answers must not retire credit)", granted, lines)
			}
			if line.Done.Answered == 0 {
				t.Fatal("auto_k session answered nothing")
			}
			return
		}
		if sent == lines {
			pw.Close() // half-close once everything is on the wire
		}
	}
	t.Fatal("stream ended without a done line")
}

// TestSessionRateLimit: the token bucket paces the command stream and the
// throttled time surfaces in the counters.
func TestSessionRateLimit(t *testing.T) {
	s, ds, addr := sessionTestServer(t)
	s.SessionRate = 50 // 50 lines/sec
	s.SessionBurst = 1

	ses, err := DialSession(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	go func() {
		for range ses.Results() {
		}
	}()
	start := time.Now()
	const lines = 12
	for i := 0; i < lines; i++ {
		v := ds.Items[i%len(ds.Items)]
		if err := ses.Push(core.Observation{UserID: "paced", Item: v, Timestamp: int64(i)}); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	elapsed := time.Since(start)
	// 12 lines at 50/s with burst 1 needs >= 11/50 s of pacing; allow
	// generous slack for h2 batching ahead of the limiter.
	if elapsed < 100*time.Millisecond {
		t.Fatalf("12 paced lines finished in %v — limiter inactive", elapsed)
	}
	if s.sessions.throttleNs.Load() == 0 {
		t.Fatal("throttle counter never advanced")
	}
}

// TestV2Auth: with -auth-token set, every /v2 route (session included)
// AND every deprecated /v1 route requires the bearer token; only
// /healthz stays open.
func TestV2Auth(t *testing.T) {
	s, ds, addr := sessionTestServer(t)
	const token = "hunter2-but-longer"
	s.AuthToken = token
	h := s.Handler()

	// Tokenless v2 and v1 → 401 with a challenge.
	for _, path := range []string{"/v2/stats", "/v1/stats"} {
		rr := get(t, h, path)
		if rr.Code != http.StatusUnauthorized {
			t.Fatalf("GET %s without token = %d, want 401", path, rr.Code)
		}
		if rr.Header().Get("WWW-Authenticate") == "" {
			t.Fatalf("GET %s: missing WWW-Authenticate challenge", path)
		}
	}
	rr := post(t, h, "/v2/recommend", map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}})
	if rr.Code != http.StatusUnauthorized {
		t.Fatalf("POST /v2/recommend without token = %d, want 401", rr.Code)
	}
	if _, err := DialSession(context.Background(), addr); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("tokenless session dial = %v, want 401", err)
	}

	// Wrong token → 401.
	req, _ := http.NewRequest(http.MethodGet, "/v2/stats", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	rw := newRecorder(t, h, req)
	if rw.Code != http.StatusUnauthorized {
		t.Fatalf("wrong token = %d, want 401", rw.Code)
	}

	// Right token → served, including a full session round trip.
	req, _ = http.NewRequest(http.MethodGet, "/v2/stats", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	rw = newRecorder(t, h, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("authed /v2/stats = %d, want 200", rw.Code)
	}
	ses, err := DialSession(context.Background(), addr, WithDialAuth(token))
	if err != nil {
		t.Fatalf("authed session dial: %v", err)
	}
	go func() {
		for range ses.Results() {
		}
	}()
	if err := ses.Ask(ds.Items[0], core.WithK(3)); err != nil {
		t.Fatalf("authed ask: %v", err)
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("authed close: %v", err)
	}

	// The deprecated v1 surface is guarded too: a token-protected
	// deployment must not leave its legacy write paths open.
	if rr := get(t, h, "/v1/stats"); rr.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless /v1/stats = %d, want 401", rr.Code)
	}
	rr = post(t, h, "/v1/items", map[string]any{"item": itemBody(ds.Items[0])})
	if rr.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless POST /v1/items = %d, want 401", rr.Code)
	}
	req, _ = http.NewRequest(http.MethodGet, "/v1/stats", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	if rw = newRecorder(t, h, req); rw.Code != http.StatusOK {
		t.Fatalf("authed /v1/stats = %d, want 200", rw.Code)
	}

	// Only the liveness probe stays open.
	if rr := get(t, h, "/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("tokenless /healthz = %d, want 200", rr.Code)
	}
}

func newRecorder(t *testing.T, h http.Handler, req *http.Request) *recorderResult {
	t.Helper()
	rr := &recorderResult{header: make(http.Header)}
	h.ServeHTTP(rr, req)
	return rr
}

// recorderResult is a minimal ResponseWriter for header/status checks.
type recorderResult struct {
	header http.Header
	Code   int
	body   []byte
}

func (r *recorderResult) Header() http.Header { return r.header }
func (r *recorderResult) WriteHeader(c int)   { r.Code = c }
func (r *recorderResult) Write(b []byte) (int, error) {
	if r.Code == 0 {
		r.Code = http.StatusOK
	}
	r.body = append(r.body, b...)
	return len(b), nil
}

// TestSessionQueueBoundWithoutConsumer pins the server-side memory bound
// of the session machinery itself: with the Results channel never drained,
// the pump stalls and command admission stops at queue+buffer capacity —
// no unbounded growth, and draining recovers everything.
func TestSessionQueueBoundWithoutConsumer(t *testing.T) {
	eng := core.NewSafe(core.Config{Categories: []string{"c"}, TrainMaxIter: 2, Restarts: 1, Seed: 3})
	corpus, irs := tinyTrainCorpus()
	byID := map[string]model.Item{}
	for _, v := range corpus {
		byID[v.ID] = v
	}
	if err := eng.Train(corpus, irs, func(id string) (model.Item, bool) {
		v, ok := byID[id]
		return v, ok
	}); err != nil {
		t.Fatalf("train: %v", err)
	}

	const queue, results = 4, 1
	ses := core.NewSession(context.Background(), eng,
		core.WithSessionQueue(queue), core.WithSessionResults(results), core.WithSessionBatch(1))
	var accepted atomic.Int64
	go func() {
		for i := 0; ; i++ {
			if err := ses.Ask(corpus[i%len(corpus)], core.WithK(2)); err != nil {
				return
			}
			accepted.Add(1)
		}
	}()
	time.Sleep(400 * time.Millisecond)
	// Bound: results buffer + one in deliver + queue + one in enqueue.
	if n := accepted.Load(); n > int64(queue+results+3) {
		t.Fatalf("%d asks accepted with no consumer (queue=%d results=%d) — buffering unbounded", n, queue, results)
	}
	// Draining recovers the session; Close completes cleanly.
	drained := make(chan int)
	go func() {
		n := 0
		for range ses.Results() {
			n++
		}
		drained <- n
	}()
	time.Sleep(100 * time.Millisecond)
	if err := ses.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	n := <-drained
	if uint64(n) != ses.Stats().Answered || n == 0 {
		t.Fatalf("drained %d results, stats say %d answered", n, ses.Stats().Answered)
	}
}

// tinyTrainCorpus builds a minimal deterministic corpus for the queue-
// bound test.
func tinyTrainCorpus() ([]model.Item, []model.Interaction) {
	var items []model.Item
	var irs []model.Interaction
	for i := 0; i < 30; i++ {
		v := model.Item{ID: fmt.Sprintf("q%02d", i), Category: "c",
			Producer: fmt.Sprintf("p%d", i%2), Entities: []string{"e", fmt.Sprintf("e%d", i%3)}, Timestamp: int64(i + 1)}
		items = append(items, v)
		for u := 0; u < 6; u++ {
			if (i+u)%2 == 0 {
				irs = append(irs, model.Interaction{UserID: fmt.Sprintf("u%d", u), ItemID: v.ID, Timestamp: int64(i + 2)})
			}
		}
	}
	return items, irs
}
