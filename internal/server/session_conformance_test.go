// session_conformance_test.go: the WIRE column of the session conformance
// matrix. The seeded stream is replayed as /v2/session traffic — NDJSON
// commands over real loopback HTTP/2, credit flow control and all —
// through the ClientSession, and the answers must be bit-identical to the
// batch API driven at the same boundaries on an identical engine. This is
// the full-stack proof: shardtest fixture → wire client → h2c server →
// core.Session → engine.
package server

import (
	"bytes"
	"context"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/shardtest"
)

func TestSessionConformanceWire(t *testing.T) {
	fx := shardtest.Load(t)
	maxBatches := 0 // full stream
	if testing.Short() {
		maxBatches = 10
	}

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.ReplaySeq(t, reference, maxBatches)

	serving, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot serving engine: %v", err)
	}
	s := New(core.WrapSafe(serving))
	// Align the wire session's flush points with the reference schedule:
	// micro-batch = ReplayBatch, no linger timer, and a window generous
	// enough that flow control never changes the command order (it cannot
	// — credit only delays, but keeping the replay un-stalled is faster).
	s.BatchSize = shardtest.ReplayBatch
	s.SessionLinger = -1
	s.SessionCredit = 4 * shardtest.ReplayBatch
	addr := startH2C(t, s)

	ses, err := DialSession(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	got := fx.ReplaySession(t, ses, maxBatches)
	shardtest.DiffResults(t, want, got, "session/wire")

	// The terminal summary must account for the whole schedule.
	st, ok := ses.Stats()
	if !ok {
		t.Fatal("no terminal summary")
	}
	obs := len(fx.Obs)
	batches := (obs + shardtest.ReplayBatch - 1) / shardtest.ReplayBatch
	if maxBatches > 0 {
		batches = maxBatches
		obs = maxBatches * shardtest.ReplayBatch
	}
	if st.Pushed != uint64(obs) || st.Admitted != uint64(obs) || st.Rejected != 0 {
		t.Errorf("wire summary %+v, want %d pushed+admitted", st, obs)
	}
	if st.Asked != uint64(batches*shardtest.ReplayQueryLen) || st.Answered != st.Asked {
		t.Errorf("wire summary %+v, want %d asked+answered", st, batches*shardtest.ReplayQueryLen)
	}
}
