package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/model"
)

func testServer(t testing.TB) (*Server, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.YTubeConfig(0.2)
	cfg.Seed = 31
	ds := dataset.Generate(cfg)
	safe := core.NewSafe(core.Config{Categories: ds.Categories, TrainMaxIter: 5, Restarts: 1})
	// Train via the harness (batch path) on the leading third.
	if err := evalx.Train(asTrainer{safe}, ds, evalx.Setup{}); err != nil {
		t.Fatalf("train: %v", err)
	}
	return New(safe), ds
}

// asTrainer adapts SafeEngine to the harness interfaces.
type asTrainer struct{ *core.SafeEngine }

func (a asTrainer) Name() string                               { return a.SafeEngine.Name() }
func (a asTrainer) Observe(ir model.Interaction, v model.Item) { a.SafeEngine.Observe(ir, v) }
func (a asTrainer) Recommend(v model.Item, k int) []model.Recommendation {
	return a.SafeEngine.Recommend(v, k)
}
func (a asTrainer) Train(items []model.Item, irs []model.Interaction, resolve func(string) (model.Item, bool)) error {
	return a.SafeEngine.Train(items, irs, resolve)
}

func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	return rr
}

func itemBody(v model.Item) map[string]any {
	return map[string]any{
		"id": v.ID, "category": v.Category, "producer": v.Producer,
		"entities": v.Entities, "timestamp": v.Timestamp,
	}
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	rr := get(t, s.Handler(), "/healthz")
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rr.Code)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	s, ds := testServer(t)
	v := ds.Items[len(ds.Items)-1]
	rr := post(t, s.Handler(), "/v1/recommend", map[string]any{"item": itemBody(v), "k": 5})
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	var resp struct {
		ItemID          string `json:"item_id"`
		Recommendations []struct {
			UserID string  `json:"user_id"`
			Score  float64 `json:"score"`
		} `json:"recommendations"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.ItemID != v.ID {
		t.Errorf("item_id = %s", resp.ItemID)
	}
	if len(resp.Recommendations) == 0 || len(resp.Recommendations) > 5 {
		t.Errorf("got %d recommendations", len(resp.Recommendations))
	}
	for i := 1; i < len(resp.Recommendations); i++ {
		if resp.Recommendations[i].Score > resp.Recommendations[i-1].Score {
			t.Error("unsorted recommendations")
		}
	}
}

func TestRecommendDefaultsAndCaps(t *testing.T) {
	s, ds := testServer(t)
	s.MaxK = 3
	v := ds.Items[len(ds.Items)-1]
	rr := post(t, s.Handler(), "/v1/recommend", map[string]any{"item": itemBody(v), "k": 50})
	var resp struct {
		Recommendations []json.RawMessage `json:"recommendations"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Recommendations) > 3 {
		t.Errorf("MaxK not enforced: %d", len(resp.Recommendations))
	}
}

func TestRecommendValidation(t *testing.T) {
	s, _ := testServer(t)
	cases := []map[string]any{
		{"item": map[string]any{"category": "x"}},       // missing id
		{"item": map[string]any{"id": "a"}},             // missing category
		{"item": map[string]any{}, "unknown_field": 12}, // unknown field
	}
	for i, body := range cases {
		rr := post(t, s.Handler(), "/v1/recommend", body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("case %d: status %d", i, rr.Code)
		}
	}
}

func TestObserveEndpoint(t *testing.T) {
	s, ds := testServer(t)
	before := s.eng.Users()
	v := ds.Items[0]
	rr := post(t, s.Handler(), "/v1/observe", map[string]any{
		"user_id": "http-user", "item": itemBody(v), "timestamp": v.Timestamp + 9,
	})
	if rr.Code != http.StatusNoContent {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	if s.eng.Users() != before+1 {
		t.Errorf("user count %d, want %d", s.eng.Users(), before+1)
	}
}

func TestObserveValidation(t *testing.T) {
	s, ds := testServer(t)
	v := ds.Items[0]
	rr := post(t, s.Handler(), "/v1/observe", map[string]any{"item": itemBody(v)})
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("missing user_id accepted: %d", rr.Code)
	}
}

func TestItemEndpoint(t *testing.T) {
	s, ds := testServer(t)
	v := model.Item{ID: "fresh-http-item", Category: ds.Categories[0], Producer: "up0000",
		Entities: []string{"x"}, Timestamp: 99}
	rr := post(t, s.Handler(), "/v1/items", map[string]any{"item": itemBody(v)})
	if rr.Code != http.StatusNoContent {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rr := get(t, s.Handler(), "/v1/stats")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var resp struct {
		Users  int `json:"users"`
		Blocks int `json:"blocks"`
		Trees  int `json:"trees"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Users == 0 || resp.Trees == 0 {
		t.Errorf("degenerate stats: %+v", resp)
	}
}

func TestMethodRouting(t *testing.T) {
	s, _ := testServer(t)
	rr := get(t, s.Handler(), "/v1/recommend")
	if rr.Code != http.StatusMethodNotAllowed && rr.Code != http.StatusNotFound {
		t.Errorf("GET /v1/recommend = %d", rr.Code)
	}
}

func TestInvalidJSON(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/recommend", bytes.NewReader([]byte("{nope")))
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rr.Code)
	}
}

func TestConcurrentRequests(t *testing.T) {
	s, ds := testServer(t)
	done := make(chan bool)
	for g := 0; g < 6; g++ {
		go func(g int) {
			defer func() { done <- true }()
			for i := 0; i < 25; i++ {
				v := ds.Items[(g*25+i)%len(ds.Items)]
				if g%2 == 0 {
					post(t, s.Handler(), "/v1/recommend", map[string]any{"item": itemBody(v), "k": 5})
				} else {
					post(t, s.Handler(), "/v1/observe", map[string]any{
						"user_id": fmt.Sprintf("load-user-%d", g), "item": itemBody(v),
						"timestamp": v.Timestamp + int64(i),
					})
				}
			}
		}(g)
	}
	for g := 0; g < 6; g++ {
		<-done
	}
}
