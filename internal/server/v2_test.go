package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ssrec/internal/model"
)

func postRaw(t *testing.T, h http.Handler, path, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func decodeV2(t *testing.T, rr *httptest.ResponseRecorder) recommendV2Response {
	t.Helper()
	var resp recommendV2Response
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response: %v\n%s", err, rr.Body.String())
	}
	return resp
}

func TestRecommendV2Batch(t *testing.T) {
	s, ds := testServer(t)
	items := []map[string]any{itemBody(ds.Items[0]), itemBody(ds.Items[1]), itemBody(ds.Items[2])}
	rr := post(t, s.Handler(), "/v2/recommend", map[string]any{"items": items, "k": 5})
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeV2(t, rr)
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	for i, res := range resp.Results {
		if res.Error != nil {
			t.Fatalf("result %d errored: %+v", i, res.Error)
		}
		if res.ItemID != ds.Items[i].ID {
			t.Fatalf("result %d item %q, want %q", i, res.ItemID, ds.Items[i].ID)
		}
		if len(res.Recommendations) > 5 {
			t.Fatalf("result %d has %d recs, want <= 5", i, len(res.Recommendations))
		}
	}
	if rr.Header().Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID header")
	}
}

// TestRecommendV2MatchesV1: the batch protocol returns exactly what the
// per-item v1 endpoint returns.
func TestRecommendV2MatchesV1(t *testing.T) {
	s, ds := testServer(t)
	h := s.Handler()
	for _, v := range ds.Items[:5] {
		v1 := post(t, h, "/v1/recommend", map[string]any{"item": itemBody(v), "k": 7})
		var v1resp recommendResponse
		if err := json.Unmarshal(v1.Body.Bytes(), &v1resp); err != nil {
			t.Fatal(err)
		}
		v2 := post(t, h, "/v2/recommend", map[string]any{"items": []map[string]any{itemBody(v)}, "k": 7})
		v2resp := decodeV2(t, v2)
		if len(v2resp.Results) != 1 {
			t.Fatalf("%d v2 results", len(v2resp.Results))
		}
		got := v2resp.Results[0].Recommendations
		want := v1resp.Recommendations
		if len(got) != len(want) {
			t.Fatalf("item %s: v2 %d recs, v1 %d", v.ID, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("item %s rec %d: v2 %+v, v1 %+v", v.ID, i, got[i], want[i])
			}
		}
	}
}

func TestRecommendV2PerItemErrors(t *testing.T) {
	s, ds := testServer(t)
	items := []map[string]any{
		itemBody(ds.Items[0]),
		{"id": "alien", "category": "no-such-category", "producer": "p"},
		{"id": "", "category": "x"}, // invalid: missing id
	}
	rr := post(t, s.Handler(), "/v2/recommend", map[string]any{"items": items, "k": 5})
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeV2(t, rr)
	if resp.Results[0].Error != nil {
		t.Fatalf("valid item errored: %+v", resp.Results[0].Error)
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != "unknown_category" {
		t.Fatalf("results[1].Error = %+v, want unknown_category", resp.Results[1].Error)
	}
	if resp.Results[2].Error == nil || resp.Results[2].Error.Code != "invalid_item" {
		t.Fatalf("results[2].Error = %+v, want invalid_item", resp.Results[2].Error)
	}
}

func TestRecommendV2OversizedBatch(t *testing.T) {
	s, ds := testServer(t)
	s.MaxBatch = 2
	items := []map[string]any{itemBody(ds.Items[0]), itemBody(ds.Items[1]), itemBody(ds.Items[2])}
	rr := post(t, s.Handler(), "/v2/recommend", map[string]any{"items": items})
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rr.Code, rr.Body.String())
	}
}

func TestRecommendV2EmptyItems(t *testing.T) {
	s, _ := testServer(t)
	rr := post(t, s.Handler(), "/v2/recommend", map[string]any{"items": []any{}})
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rr.Code)
	}
}

// TestRecommendV2CancelledContext: a request whose context is already
// cancelled reports per-item cancellation instead of fabricated results.
func TestRecommendV2CancelledContext(t *testing.T) {
	s, ds := testServer(t)
	body, _ := json.Marshal(map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v2/recommend", bytes.NewReader(body)).WithContext(ctx)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	resp := decodeV2(t, rr)
	if len(resp.Results) != 1 || resp.Results[0].Error == nil || resp.Results[0].Error.Code != "cancelled" {
		t.Fatalf("results = %+v, want cancelled error", resp.Results)
	}
}

// ndjsonLines splits an NDJSON response body.
func ndjsonLines(t *testing.T, body string) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func observeLine(userID string, v model.Item, ts int64) string {
	b, _ := json.Marshal(map[string]any{"user_id": userID, "item": itemBody2(v), "timestamp": ts})
	return string(b)
}

func itemBody2(v model.Item) map[string]any {
	return map[string]any{
		"id": v.ID, "category": v.Category, "producer": v.Producer,
		"entities": v.Entities, "timestamp": v.Timestamp,
	}
}

func TestObserveV2BulkIngest(t *testing.T) {
	s, ds := testServer(t)
	s.BatchSize = 4 // force several micro-batches
	var lines []string
	n := 10
	for i := 0; i < n; i++ {
		v := ds.Items[i%len(ds.Items)]
		lines = append(lines, observeLine(fmt.Sprintf("user%02d", i), v, int64(1000+i)))
	}
	rr := postRaw(t, s.Handler(), "/v2/observe", "application/x-ndjson", []byte(strings.Join(lines, "\n")+"\n"))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	out := ndjsonLines(t, rr.Body.String())
	if len(out) != n+1 {
		t.Fatalf("%d response lines, want %d statuses + summary", len(out), n+1)
	}
	for i := 0; i < n; i++ {
		if out[i]["status"] != "ok" {
			t.Fatalf("line %d status = %v", i+1, out[i])
		}
		if int(out[i]["line"].(float64)) != i+1 {
			t.Fatalf("line numbering off: %v", out[i])
		}
	}
	sum := out[n]
	if sum["status"] != "done" || int(sum["applied"].(float64)) != n {
		t.Fatalf("summary = %v", sum)
	}
	if batches := int(sum["batches"].(float64)); batches != 3 {
		t.Fatalf("batches = %d, want 3 (10 lines / batch size 4)", batches)
	}
}

func TestObserveV2MalformedLines(t *testing.T) {
	s, ds := testServer(t)
	body := strings.Join([]string{
		observeLine("u1", ds.Items[0], 1),
		"{not json",
		observeLine("", ds.Items[0], 2), // invalid: empty user
		observeLine("u2", ds.Items[1], 3),
	}, "\n")
	rr := postRaw(t, s.Handler(), "/v2/observe", "application/x-ndjson", []byte(body))
	out := ndjsonLines(t, rr.Body.String())
	if len(out) != 5 {
		t.Fatalf("%d lines, want 4 statuses + summary:\n%s", len(out), rr.Body.String())
	}
	// Statuses stream in processing order (decode failures report
	// immediately, batched entries at flush); the line field keys them
	// back to input order.
	byLine := map[int]map[string]any{}
	for _, m := range out[:4] {
		byLine[int(m["line"].(float64))] = m
	}
	if byLine[1]["status"] != "ok" || byLine[4]["status"] != "ok" {
		t.Fatalf("valid lines not ok: %v / %v", byLine[1], byLine[4])
	}
	if byLine[2]["status"] != "error" {
		t.Fatalf("malformed line accepted: %v", byLine[2])
	}
	errObj := byLine[2]["error"].(map[string]any)
	if errObj["code"] != "bad_json" {
		t.Fatalf("malformed line code = %v", errObj["code"])
	}
	if byLine[3]["status"] != "error" {
		t.Fatalf("invalid observation accepted: %v", byLine[3])
	}
	if code := byLine[3]["error"].(map[string]any)["code"]; code != "invalid_observation" {
		t.Fatalf("invalid observation code = %v", code)
	}
	sum := out[4]
	if int(sum["applied"].(float64)) != 2 || int(sum["invalid"].(float64)) != 2 {
		t.Fatalf("summary = %v", sum)
	}
}

func TestObserveV2ChangesEngineState(t *testing.T) {
	s, ds := testServer(t)
	before := s.eng.Users()
	var lines []string
	for i := 0; i < 6; i++ {
		lines = append(lines, observeLine(fmt.Sprintf("brand-new-user-%d", i), ds.Items[i], int64(i)))
	}
	rr := postRaw(t, s.Handler(), "/v2/observe", "application/x-ndjson", []byte(strings.Join(lines, "\n")))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if after := s.eng.Users(); after != before+6 {
		t.Fatalf("users %d -> %d, want +6", before, after)
	}
}

func TestStatsV2(t *testing.T) {
	s, ds := testServer(t)
	h := s.Handler()
	// Generate some traffic so the latency counters are non-empty.
	post(t, h, "/v2/recommend", map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}})
	rr := get(t, h, "/v2/stats")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var resp statsV2Response
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Users == 0 || resp.Trees == 0 {
		t.Fatalf("index stats empty: %+v", resp)
	}
	if resp.BatchSize != s.BatchSize || resp.MaxK != s.MaxK || resp.MaxBatch != s.MaxBatch {
		t.Fatalf("serving config mismatch: %+v", resp)
	}
	rs, ok := resp.Requests["POST /v2/recommend"]
	if !ok || rs.Count < 1 {
		t.Fatalf("missing recommend route counters: %+v", resp.Requests)
	}
}

func TestV1DeprecationHeaders(t *testing.T) {
	s, ds := testServer(t)
	rr := post(t, s.Handler(), "/v1/recommend", map[string]any{"item": itemBody(ds.Items[0]), "k": 3})
	if rr.Header().Get("Deprecation") != "true" {
		t.Error("v1 response missing Deprecation header")
	}
	if link := rr.Header().Get("Link"); !strings.Contains(link, "/v2/recommend") {
		t.Errorf("Link = %q, want successor-version pointer", link)
	}
	rr2 := get(t, s.Handler(), "/v2/stats")
	if rr2.Header().Get("Deprecation") != "" {
		t.Error("v2 response carries Deprecation header")
	}
}

func TestRequestIDPassthrough(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-ID", "my-trace-42")
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if got := rr.Header().Get("X-Request-ID"); got != "my-trace-42" {
		t.Fatalf("X-Request-ID = %q, want passthrough", got)
	}
}
