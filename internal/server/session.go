// session.go implements POST /v2/session — the full-duplex continuous-
// recommendation protocol over the core.Session substrate:
//
//	POST /v2/session[?auto_k=N]   (NDJSON in both directions, best served
//	                               over unencrypted HTTP/2 — h2c)
//
// Client → server, one tagged command per line, in stream order:
//
//	{"obs":{"user_id":"u1","item":{...},"timestamp":3}}    observation
//	{"ask":{"item":{...},"k":10,"parallelism":0,
//	        "expansion":true}}                             query
//	{"flush":true}                                         barrier
//
// Server → client:
//
//	{"credit":n}        flow control: the client may send n MORE command
//	                    lines (grants are cumulative; the first grant is
//	                    the full window)
//	{"result":{"seq":s,"item_id":...,"recommendations":[...],
//	           "auto":true,"error":{...}}}                 one answer, in
//	                    command order (auto answers come from ?auto_k)
//	{"error":{...}}     session-fatal protocol failure; the stream ends
//	{"done":{...}}      terminal summary after a clean client half-close
//
// Ordering guarantee: commands are admitted in line order into ONE
// core.Session, so every result reflects exactly the observations that
// preceded its ask on the stream — the same guarantee, and bit-identical
// results, as calling ObserveBatch/RecommendBatch directly at the same
// boundaries (enforced by the session conformance suite).
//
// Flow control: every command line consumes one credit; the server
// retires credit when the command's effect is durable (observations when
// their micro-batch is admitted, asks when their result line is written)
// and grants retired credit back in batches. Server-side buffering is
// therefore bounded by the credit window — a slow result consumer stalls
// retirement, the client runs out of credit and blocks. A client that
// keeps sending past the window is cut off with a flow_control error.
// Admission (MaxSessions) and per-session rate limits (SessionRate /
// SessionBurst token bucket) guard the engine's write path the same way
// /v2/observe's 503 admission does.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ssrec/internal/core"
)

// DefaultSessionCredit is the default per-session flow-control window.
const DefaultSessionCredit = 256

// ---- wire shapes ----

// sessionAskJSON is one query command.
type sessionAskJSON struct {
	Item itemJSON `json:"item"`
	// K is the result size (default DefaultK, capped at MaxK).
	K int `json:"k"`
	// Parallelism overrides the partitioned-search worker count when > 0.
	Parallelism int `json:"parallelism"`
	// Expansion disables entity expansion when explicitly false.
	Expansion *bool `json:"expansion"`
}

// sessionLineIn is one client command line; exactly one field is set.
type sessionLineIn struct {
	Obs   *observeLineJSON `json:"obs,omitempty"`
	Ask   *sessionAskJSON  `json:"ask,omitempty"`
	Flush bool             `json:"flush,omitempty"`
}

// sessionResultJSON is one answer, in command order.
type sessionResultJSON struct {
	Seq             uint64               `json:"seq"`
	Auto            bool                 `json:"auto,omitempty"`
	ItemID          string               `json:"item_id"`
	Recommendations []recommendationJSON `json:"recommendations,omitempty"`
	Error           *errorJSON           `json:"error,omitempty"`
}

// sessionDoneJSON is the terminal summary of a cleanly-closed session.
type sessionDoneJSON struct {
	Pushed   uint64     `json:"pushed"`
	Applied  uint64     `json:"applied"`
	Rejected uint64     `json:"rejected"`
	Flushed  uint64     `json:"flushed"`
	Batches  uint64     `json:"batches"`
	Asked    uint64     `json:"asked"`
	Answered uint64     `json:"answered"`
	Error    *errorJSON `json:"error,omitempty"`
}

// sessionLineOut is one server line; exactly one field is set.
type sessionLineOut struct {
	Credit int                `json:"credit,omitempty"`
	Result *sessionResultJSON `json:"result,omitempty"`
	Done   *sessionDoneJSON   `json:"done,omitempty"`
	Error  *errorJSON         `json:"error,omitempty"`
}

// ---- serving-side counters (reported by /v2/stats) ----

type sessionCounters struct {
	open       atomic.Int64
	total      atomic.Int64
	lines      atomic.Int64 // command lines admitted
	results    atomic.Int64 // result lines written
	rejected   atomic.Int64 // 503 admission rejections
	violations atomic.Int64 // flow-control kills
	throttleNs atomic.Int64 // time spent pacing rate-limited sessions
}

// ---- token bucket (per-session rate limit) ----

// tokenBucket paces a session's command stream to rate lines/sec with a
// burst allowance. Pacing sleeps the reader (HTTP/2 flow control then
// pushes back on the client) rather than rejecting — a stream has no
// per-line retry semantics.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take consumes one token, sleeping until it is available. Returns the
// time spent waiting; a cancelled ctx cuts the wait short.
func (tb *tokenBucket) take(ctx context.Context) time.Duration {
	if tb == nil {
		return 0
	}
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.tokens--
	if tb.tokens >= 0 {
		return 0
	}
	wait := time.Duration(-tb.tokens / tb.rate * float64(time.Second))
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	return time.Since(now)
}

// ---- credit window ----

// creditWindow tracks one session's flow-control state. consume/retire
// run on different goroutines (reader vs session pump vs result writer);
// grants are emitted in batches of at least window/4 to keep the credit
// chatter off the hot path.
type creditWindow struct {
	mu      sync.Mutex
	window  int
	out     int // consumed, not yet retired
	pending int // retired, not yet granted back
	grant   func(n int)
}

// consume admits one line; false means the client overran the window.
func (c *creditWindow) consume() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out++
	return c.out <= c.window
}

// retire returns n lines' credit to the pool, granting in batches.
func (c *creditWindow) retire(n int) {
	c.mu.Lock()
	c.out -= n
	c.pending += n
	g := 0
	if c.pending >= max(1, c.window/4) {
		g, c.pending = c.pending, 0
	}
	c.mu.Unlock()
	if g > 0 {
		c.grant(g)
	}
}

// ---- the handler ----

func (s *Server) handleSessionV2(w http.ResponseWriter, r *http.Request) {
	// Admission control shares the /v2/observe 503 helper: a saturated
	// recommender must push back before committing to a stream.
	if s.MaxSessions > 0 {
		if n := s.inflightSessions.Add(1); int(n) > s.MaxSessions {
			s.inflightSessions.Add(-1)
			s.sessions.rejected.Add(1)
			s.rejectOverloaded(w, fmt.Sprintf("session limit reached (%d open)", s.MaxSessions))
			return
		}
		defer s.inflightSessions.Add(-1)
	}
	s.sessions.open.Add(1)
	s.sessions.total.Add(1)
	defer s.sessions.open.Add(-1)

	autoK := 0
	if v := r.URL.Query().Get("auto_k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "auto_k must be a non-negative integer")
			return
		}
		autoK = min(n, s.MaxK)
	}

	// Sessions are long-lived: clear the server's per-connection deadlines
	// (ssrec-server's -read-timeout/-write-timeout are sized for
	// request/response calls) and commit the response so the client's
	// dial returns.
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Time{})  //nolint:errcheck // best-effort
	rc.SetWriteDeadline(time.Time{}) //nolint:errcheck
	rc.EnableFullDuplex()            //nolint:errcheck // no-op on HTTP/2
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc.Flush() //nolint:errcheck

	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	writeLine := func(line sessionLineOut) {
		wmu.Lock()
		enc.Encode(line) //nolint:errcheck // stream best-effort; client sees loss as EOF
		rc.Flush()       //nolint:errcheck
		wmu.Unlock()
	}

	window := s.SessionCredit
	if window <= 0 {
		window = DefaultSessionCredit
	}
	credit := &creditWindow{window: window, grant: func(n int) { writeLine(sessionLineOut{Credit: n}) }}
	credit.grant(window) // the initial window

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	// The micro-batch must fit inside the credit window: obs credit only
	// retires at flush, so a batch the window can never fill (with the
	// linger timer off) would starve a compliant client of credit forever
	// before the flush that re-grants it.
	batch := min(s.BatchSize, window)
	ses := core.NewSession(ctx, s.eng,
		core.WithSessionBatch(batch),
		core.WithSessionQueue(window),
		core.WithSessionResults(min(window, core.DefaultSessionResults)),
		core.WithSessionLinger(s.SessionLinger),
		core.WithAutoRecommend(autoK),
		core.WithSessionFlushHook(func(batch int, _ core.BatchReport, _ error) { credit.retire(batch) }),
	)

	// Result writer: answers stream back in command order; writing the
	// line is what retires an ask's credit, so a slow consumer stalls
	// retirement (the h2 send window fills, writeLine blocks) and the
	// compliant client runs out of credit — server buffering never grows
	// past the window.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for res := range ses.Results() {
			out := &sessionResultJSON{Seq: res.Seq, Auto: res.Auto, ItemID: res.ItemID}
			if res.Err != nil {
				out.Error = toErrorJSON(res.Err)
			}
			if res.Err == nil || servesPartial(res.Err) {
				out.Recommendations = make([]recommendationJSON, 0, len(res.Recommendations))
				for _, rec := range res.Recommendations {
					out.Recommendations = append(out.Recommendations, recommendationJSON{UserID: rec.UserID, Score: rec.Score})
				}
			}
			s.sessions.results.Add(1)
			writeLine(sessionLineOut{Result: out})
			// Only an explicit ask's result retires credit: an auto answer
			// (?auto_k) has no command line of its own — its observation's
			// credit was already retired by the flush hook, and retiring
			// again would drift the window open and disarm the
			// flow-control violation check.
			if !res.Auto {
				credit.retire(1)
			}
		}
	}()

	limiter := newTokenBucket(s.SessionRate, s.SessionBurst)
	var fatal *errorJSON
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxNDJSONLine)
read:
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if d := limiter.take(ctx); d > 0 {
			s.sessions.throttleNs.Add(int64(d))
		}
		if ctx.Err() != nil {
			break
		}
		var line sessionLineIn
		if err := json.Unmarshal(raw, &line); err != nil {
			fatal = &errorJSON{Code: "bad_line", Message: err.Error()}
			break
		}
		if !credit.consume() {
			s.sessions.violations.Add(1)
			fatal = &errorJSON{Code: "flow_control",
				Message: fmt.Sprintf("credit window (%d) exceeded; honor credit lines", window)}
			break
		}
		s.sessions.lines.Add(1)
		var err error
		switch {
		case line.Obs != nil:
			err = ses.Push(core.Observation{
				UserID:    line.Obs.UserID,
				Item:      line.Obs.Item.model(),
				Timestamp: line.Obs.Timestamp,
			})
		case line.Ask != nil:
			k := line.Ask.K
			if k <= 0 {
				k = core.DefaultK
			}
			k = min(k, s.MaxK)
			opts := []core.Option{core.WithK(k), core.WithParallelism(line.Ask.Parallelism)}
			if line.Ask.Expansion != nil && !*line.Ask.Expansion {
				opts = append(opts, core.WithoutExpansion())
			}
			err = ses.Ask(line.Ask.Item.model(), opts...)
		case line.Flush:
			err = ses.Flush()
			credit.retire(1)
		default:
			fatal = &errorJSON{Code: "bad_line", Message: "line must carry obs, ask or flush"}
			break read
		}
		if err != nil {
			break // session terminated underneath (ctx cancelled)
		}
	}
	if fatal == nil && sc.Err() != nil && ctx.Err() == nil {
		fatal = &errorJSON{Code: "bad_stream", Message: sc.Err().Error()}
	}

	if fatal != nil {
		// Protocol failure: tear the session down without flushing the
		// tail — the stream's state is no longer trustworthy.
		cancel()
		<-writerDone
		if fatal.Code == "flow_control" || fatal.Code == "bad_line" || fatal.Code == "bad_stream" {
			writeLine(sessionLineOut{Error: fatal})
		}
		return
	}
	// Clean half-close: flush the pending micro-batch, drain the answers,
	// summarise.
	closeErr := ses.Close()
	<-writerDone
	st := ses.Stats()
	done := &sessionDoneJSON{
		Pushed: st.Pushed, Applied: st.Admitted, Rejected: st.Rejected,
		Flushed: st.Flushed, Batches: st.Batches, Asked: st.Asked, Answered: st.Answered,
	}
	if closeErr == nil {
		closeErr = ses.Err()
	}
	if closeErr != nil && ctx.Err() == nil {
		done.Error = toErrorJSON(closeErr)
	}
	writeLine(sessionLineOut{Done: done})
}
