// degraded_test.go pins the degraded-mode wire contract of a sharded
// deployment: /v2/recommend serves the partial ranking BESIDE the typed
// shard_unavailable error (the list is exact for the reachable shards'
// users), and the /v2/observe summary carries the replication failure.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
)

// degradedBackend mimics a Router with an excluded shard.
type degradedBackend struct{}

func (degradedBackend) degraded() error {
	return fmt.Errorf("%w: shard(s) [1] excluded", shard.ErrShardUnavailable)
}

func (d degradedBackend) RecommendBatch(ctx context.Context, items []model.Item, opts ...core.Option) ([]core.Result, error) {
	results := make([]core.Result, len(items))
	for i, v := range items {
		results[i] = core.Result{
			ItemID:          v.ID,
			Recommendations: []model.Recommendation{{UserID: "survivor", Score: -1.5}},
			Err:             d.degraded(),
		}
	}
	return results, nil
}

func (d degradedBackend) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	return core.BatchReport{Applied: len(batch), Flushed: len(batch)}, d.degraded()
}

func (degradedBackend) Recommend(v model.Item, k int) []model.Recommendation { return nil }
func (degradedBackend) Observe(ir model.Interaction, v model.Item)           {}
func (degradedBackend) RegisterItem(v model.Item)                            {}
func (degradedBackend) Users() int                                           { return 1 }
func (degradedBackend) Parallelism() int                                     { return 1 }
func (degradedBackend) IndexStats() core.IndexStatsView                      { return core.IndexStatsView{} }

func TestRecommendV2DegradedPartialResults(t *testing.T) {
	s := NewBackend(degradedBackend{})
	rr := post(t, s.Handler(), "/v2/recommend", map[string]any{
		"items": []map[string]any{{"id": "x", "category": "c"}}, "k": 3,
	})
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeV2(t, rr)
	if len(resp.Results) != 1 {
		t.Fatalf("results = %+v", resp.Results)
	}
	res := resp.Results[0]
	if res.Error == nil || res.Error.Code != "shard_unavailable" {
		t.Fatalf("error = %+v, want shard_unavailable", res.Error)
	}
	if len(res.Recommendations) != 1 || res.Recommendations[0].UserID != "survivor" {
		t.Fatalf("partial results dropped from the wire: %+v", res.Recommendations)
	}
}

func TestObserveV2DegradedSummary(t *testing.T) {
	s := NewBackend(degradedBackend{})
	s.BatchSize = 2
	line := `{"user_id":"u1","item":{"id":"i1","category":"c"},"timestamp":1}` + "\n"
	rr := postRaw(t, s.Handler(), "/v2/observe", "application/x-ndjson", []byte(strings.Repeat(line, 3)))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var summary observeSummaryJSON
	sc := bufio.NewScanner(rr.Body)
	for sc.Scan() {
		var probe map[string]any
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if probe["status"] == "done" {
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
		}
	}
	if summary.Status != "done" {
		t.Fatal("no summary line")
	}
	// The first micro-batch (2 lines) applied on the reachable shards but
	// failed replication: the stream stops, and the summary names why.
	if summary.Applied != 2 {
		t.Fatalf("applied = %d, want 2", summary.Applied)
	}
	if summary.Error == nil || summary.Error.Code != "shard_unavailable" {
		t.Fatalf("summary.Error = %+v, want shard_unavailable", summary.Error)
	}
}
