// backpressure_test.go: /v2/observe must push back with 503 + Retry-After
// when the micro-batch queue is saturated, instead of stalling the client
// behind the write lock (regression test for the ROADMAP v2-hardening
// item).
package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
)

// blockingBackend parks every ObserveBatch call until released — a stand-in
// for an engine whose write lock is saturated.
type blockingBackend struct {
	entered chan struct{} // one tick per ObserveBatch entry
	release chan struct{} // closed to unblock them all
}

func (b *blockingBackend) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	b.entered <- struct{}{}
	<-b.release
	return core.BatchReport{Applied: len(batch), Flushed: len(batch)}, nil
}

func (b *blockingBackend) Recommend(v model.Item, k int) []model.Recommendation { return nil }
func (b *blockingBackend) Observe(ir model.Interaction, v model.Item)           {}
func (b *blockingBackend) RegisterItem(v model.Item)                            {}
func (b *blockingBackend) RecommendBatch(ctx context.Context, items []model.Item, opts ...core.Option) ([]core.Result, error) {
	return make([]core.Result, len(items)), nil
}
func (b *blockingBackend) Users() int                      { return 0 }
func (b *blockingBackend) Parallelism() int                { return 1 }
func (b *blockingBackend) IndexStats() core.IndexStatsView { return core.IndexStatsView{} }

func TestObserveV2SaturationReturns503(t *testing.T) {
	bb := &blockingBackend{entered: make(chan struct{}, 8), release: make(chan struct{})}
	s := NewBackend(bb)
	s.MaxInflightObserve = 1
	s.RetryAfter = 2 * time.Second
	s.BatchSize = 1 // flush per line so the first request blocks immediately
	h := s.Handler()

	line := `{"user_id":"u1","item":{"id":"i1","category":"c"},"timestamp":1}` + "\n"

	// First stream: occupies the only slot, parked inside ObserveBatch.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postRaw(t, h, "/v2/observe", "application/x-ndjson", []byte(line))
	}()
	select {
	case <-bb.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first observe stream never reached the engine")
	}

	// Second stream: must be rejected up front — 503, Retry-After, JSON
	// error body — not queued behind the saturated write path.
	rr := postRaw(t, h, "/v2/observe", "application/x-ndjson", []byte(line))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", rr.Code, rr.Body.String())
	}
	if ra := rr.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if !strings.Contains(rr.Body.String(), "saturated") {
		t.Fatalf("body = %s", rr.Body.String())
	}

	// Release the first stream: the slot frees and the next request is
	// admitted again (the counter is balanced).
	close(bb.release)
	wg.Wait()
	rr = postRaw(t, h, "/v2/observe", "application/x-ndjson", []byte(line))
	if rr.Code != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", rr.Code)
	}
}

// TestObserveV2RejectionIsNotStreamed: the 503 must be a plain JSON error
// response (so clients and load balancers can react to the status code),
// not a committed NDJSON stream.
func TestObserveV2RejectionIsNotStreamed(t *testing.T) {
	bb := &blockingBackend{entered: make(chan struct{}, 8), release: make(chan struct{})}
	s := NewBackend(bb)
	s.MaxInflightObserve = 1
	s.BatchSize = 1
	h := s.Handler()
	line := `{"user_id":"u1","item":{"id":"i1","category":"c"},"timestamp":1}` + "\n"

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postRaw(t, h, "/v2/observe", "application/x-ndjson", []byte(line))
	}()
	<-bb.entered
	defer func() { close(bb.release); wg.Wait() }()

	req := httptest.NewRequest(http.MethodPost, "/v2/observe", strings.NewReader(line))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("rejection Content-Type = %q, want application/json", ct)
	}
}
