// v2.go implements the batch-first wire protocol over the engine's v2 API:
//
//	POST /v2/recommend  {"items":[{...}...], "k":10, "parallelism":0,
//	                     "expansion":true}
//	                    → {"results":[{item_id, recommendations} |
//	                                  {item_id, error:{code,message}}]}
//	POST /v2/observe    NDJSON bulk ingest: one observation per line
//	                    {"user_id":..., "item":{...}, "timestamp":...};
//	                    lines are micro-batched into Engine.ObserveBatch
//	                    (BatchSize per write-lock acquisition) and the
//	                    response streams one NDJSON status line per input
//	                    line plus a trailing summary. Statuses arrive in
//	                    processing order (decode failures immediately,
//	                    batched entries at their flush); the "line" field
//	                    keys them back to input order.
//	GET  /v2/stats      index statistics + serving configuration +
//	                    per-route latency counters.
//
// Per-item failures never fail the request: they surface as error objects
// in item order so clients can retry selectively. v1 remains served; see
// DESIGN.md for the migration table and deprecation path.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/wal"
)

// errorJSON is the structured per-item / per-line error object.
type errorJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errCode maps engine sentinel errors to stable wire codes.
func errCode(err error) string {
	switch {
	case errors.Is(err, core.ErrNotTrained):
		return "not_trained"
	case errors.Is(err, core.ErrUnknownCategory):
		return "unknown_category"
	case errors.Is(err, core.ErrInvalidObservation):
		return "invalid_observation"
	case errors.Is(err, shard.ErrShardUnavailable):
		// Degraded sharded deployment: the result is partial (results are
		// still attached beside the error) or the ingest was not fully
		// replicated. Clients may retry once the deployment recovers.
		return "shard_unavailable"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	}
	return "internal"
}

func toErrorJSON(err error) *errorJSON {
	return &errorJSON{Code: errCode(err), Message: err.Error()}
}

// servesPartial reports whether a per-item error still carries exact
// partial results worth serving (a degraded sharded deployment: rankings
// are exact for the reachable shards' owned users). Other errors
// (cancellation) return no list — a truncated search's partial answer is
// not exact for anyone. Shared by /v2/recommend and /v2/session.
func servesPartial(err error) bool {
	return errors.Is(err, shard.ErrShardUnavailable)
}

// ---- POST /v2/recommend ----

type recommendV2Request struct {
	Items []itemJSON `json:"items"`
	// K is the per-item result size (default 10, capped at MaxK).
	K int `json:"k"`
	// Parallelism overrides the engine's partitioned-search worker count
	// for this request when > 0.
	Parallelism int `json:"parallelism"`
	// Expansion disables entity expansion when explicitly false.
	Expansion *bool `json:"expansion"`
}

type resultV2JSON struct {
	ItemID          string               `json:"item_id"`
	Recommendations []recommendationJSON `json:"recommendations,omitempty"`
	Error           *errorJSON           `json:"error,omitempty"`
}

type recommendV2Response struct {
	Results []resultV2JSON `json:"results"`
}

func (s *Server) handleRecommendV2(w http.ResponseWriter, r *http.Request) {
	var req recommendV2Request
	if !decodeLimit(w, r, &req, s.MaxBodyBytes) {
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, "items is required")
		return
	}
	if len(req.Items) > s.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds the %d-item limit", len(req.Items), s.MaxBatch))
		return
	}
	// Validation-failed items never reach the engine (registering them
	// would pollute the producer layer and the expander with bogus
	// observations, as v1 also guards against); valid items are compacted
	// into the engine batch and results merged back by position.
	items := make([]model.Item, len(req.Items))
	precheck := make([]*errorJSON, len(req.Items))
	valid := make([]model.Item, 0, len(req.Items))
	validIdx := make([]int, 0, len(req.Items))
	for i, it := range req.Items {
		items[i] = it.model()
		if err := it.validate(); err != nil {
			precheck[i] = &errorJSON{Code: "invalid_item", Message: err.Error()}
			continue
		}
		valid = append(valid, items[i])
		validIdx = append(validIdx, i)
	}
	if req.K <= 0 {
		req.K = core.DefaultK
	}
	if req.K > s.MaxK {
		req.K = s.MaxK
	}
	opts := []core.Option{core.WithK(req.K), core.WithParallelism(req.Parallelism)}
	if req.Expansion != nil && !*req.Expansion {
		opts = append(opts, core.WithoutExpansion())
	}
	results, err := s.eng.RecommendBatch(r.Context(), valid, opts...)
	if err != nil && errors.Is(err, core.ErrNotTrained) {
		httpError(w, http.StatusServiceUnavailable, "engine not trained")
		return
	}
	// Request-scoped cancellation: the client is gone, so the status code
	// is best-effort; per-item errors below still describe the partial
	// batch truthfully.
	resp := recommendV2Response{Results: make([]resultV2JSON, len(items))}
	for i := range items {
		resp.Results[i] = resultV2JSON{ItemID: items[i].ID, Error: precheck[i]}
	}
	for j, res := range results {
		out := &resp.Results[validIdx[j]]
		if res.Err != nil {
			out.Error = toErrorJSON(res.Err)
			// Degraded-mode partial results ARE served beside the error
			// (see servesPartial).
			if !servesPartial(res.Err) {
				continue
			}
		}
		out.Recommendations = make([]recommendationJSON, 0, len(res.Recommendations))
		for _, rec := range res.Recommendations {
			out.Recommendations = append(out.Recommendations, recommendationJSON{UserID: rec.UserID, Score: rec.Score})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- POST /v2/observe (NDJSON bulk ingest) ----

// observeLineJSON is one NDJSON input line.
type observeLineJSON struct {
	UserID    string   `json:"user_id"`
	Item      itemJSON `json:"item"`
	Timestamp int64    `json:"timestamp"`
}

// observeStatusJSON is one NDJSON response line: per-line status in input
// order.
type observeStatusJSON struct {
	Line   int        `json:"line,omitempty"`
	Status string     `json:"status"`
	Error  *errorJSON `json:"error,omitempty"`
}

// observeSummaryJSON is the trailing NDJSON summary line (status "done").
// Error is set when the stream terminated on a call-scoped failure — for
// a degraded sharded deployment (code "shard_unavailable") the applied
// counts are real on the reachable shards, but the batches were NOT
// replicated everywhere and the writer should back off until recovery.
type observeSummaryJSON struct {
	Status  string     `json:"status"`
	Applied int        `json:"applied"`
	Invalid int        `json:"invalid"`
	Flushed int        `json:"flushed"`
	Batches int        `json:"batches"`
	Error   *errorJSON `json:"error,omitempty"`
}

// maxNDJSONLine bounds one observation line (1 MiB, matching the v1 body
// cap).
const maxNDJSONLine = 1 << 20

func (s *Server) handleObserveV2(w http.ResponseWriter, r *http.Request) {
	// Admission control: when the micro-batch queue is saturated (too many
	// bulk streams already contending for the write lock), push back with
	// 503 + Retry-After BEFORE committing to a streamed response — a
	// rejected client can retry against another replica or back off,
	// where a silently stalled one just holds its connection open.
	if s.MaxInflightObserve > 0 {
		if n := s.inflightObserve.Add(1); int(n) > s.MaxInflightObserve {
			s.inflightObserve.Add(-1)
			s.rejectOverloaded(w, fmt.Sprintf("observe queue saturated (%d streams in flight)", s.MaxInflightObserve))
			return
		}
		defer s.inflightObserve.Add(-1)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	emit := func(st observeStatusJSON) {
		enc.Encode(st) //nolint:errcheck // response already streaming
	}

	var (
		batch    []core.Observation
		lines    []int // input line number of each batch entry
		applied  int
		invalid  int
		flushed  int
		batches  int
		lineNo   int
		overload bool
		flushErr error // last call-scoped ObserveBatch failure, echoed on the summary
	)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		rep, err := s.eng.ObserveBatch(r.Context(), batch)
		flushErr = err
		applied += rep.Applied
		invalid += rep.Rejected
		flushed += rep.Flushed
		batches++
		// Per-entry outcomes, in input order: rejected entries carry their
		// validation error, the rest of the applied prefix is ok, entries
		// after a cancellation point are reported as cancelled.
		rejected := make(map[int]error, len(rep.Errors))
		for _, oe := range rep.Errors {
			rejected[oe.Index] = oe.Err
		}
		seen := rep.Applied + rep.Rejected
		for i, ln := range lines {
			switch {
			case rejected[i] != nil:
				emit(observeStatusJSON{Line: ln, Status: "error", Error: toErrorJSON(rejected[i])})
			case i < seen || err == nil:
				emit(observeStatusJSON{Line: ln, Status: "ok"})
			default:
				emit(observeStatusJSON{Line: ln, Status: "error", Error: toErrorJSON(err)})
			}
		}
		batch, lines = batch[:0], lines[:0]
		rc.Flush() //nolint:errcheck // best-effort streaming
		return err == nil
	}

	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	sc.Buffer(make([]byte, 0, 64*1024), maxNDJSONLine)
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line observeLineJSON
		if err := json.Unmarshal(raw, &line); err != nil {
			invalid++
			emit(observeStatusJSON{Line: lineNo, Status: "error",
				Error: &errorJSON{Code: "bad_json", Message: err.Error()}})
			continue
		}
		batch = append(batch, core.Observation{
			UserID:    line.UserID,
			Item:      line.Item.model(),
			Timestamp: line.Timestamp,
		})
		lines = append(lines, lineNo)
		if len(batch) >= s.BatchSize {
			if !flush() {
				overload = true
				break
			}
		}
	}
	if !overload {
		if err := sc.Err(); err != nil {
			invalid++
			emit(observeStatusJSON{Line: lineNo + 1, Status: "error",
				Error: &errorJSON{Code: "bad_stream", Message: err.Error()}})
		}
		flush()
	}
	summary := observeSummaryJSON{Status: "done",
		Applied: applied, Invalid: invalid, Flushed: flushed, Batches: batches}
	if flushErr != nil {
		summary.Error = toErrorJSON(flushErr)
	}
	enc.Encode(summary) //nolint:errcheck // response already streaming
}

// ---- GET /v2/stats ----

type statsV2Response struct {
	Users    int `json:"users"`
	Blocks   int `json:"blocks"`
	Trees    int `json:"trees"`
	HashKeys int `json:"hash_keys"`
	// RefreshErrors counts failed index refreshes (summed across shards
	// in a sharded deployment): non-zero means some user's index entries
	// may lag their profile.
	RefreshErrors int64 `json:"refresh_errors"`

	Parallelism int `json:"parallelism"`
	BatchSize   int `json:"batch_size"`
	MaxBatch    int `json:"max_batch"`
	MaxK        int `json:"max_k"`

	// ShardCount/Shards describe a sharded deployment (absent for a
	// single engine). ReplicaSets and Supervisor additionally describe its
	// replica topology: per-slot replica health plus the auto-reseed
	// supervisor's counters (Supervisor is absent until StartSupervisor).
	ShardCount  int                   `json:"shard_count,omitempty"`
	Shards      []shardStatsJSON      `json:"shards,omitempty"`
	ReplicaSets []slotReplicasJSON    `json:"replica_sets,omitempty"`
	Supervisor  *supervisorJSON       `json:"supervisor,omitempty"`
	Resharding  *reshardingJSON       `json:"resharding,omitempty"`
	Sessions    sessionStatsJSON      `json:"sessions"`
	Requests    map[string]RouteStats `json:"requests"`

	// WAL reports the durable ingest log of a single-engine deployment
	// (Server.WAL); sharded deployments carry per-shard logs inside Shards
	// instead.
	WAL *walJSON `json:"wal,omitempty"`
}

// sessionStatsJSON reports the /v2/session serving counters and limits.
type sessionStatsJSON struct {
	Open           int64   `json:"open"`
	Total          int64   `json:"total"`
	Lines          int64   `json:"lines"`
	Results        int64   `json:"results"`
	Rejected       int64   `json:"rejected"`
	FlowViolations int64   `json:"flow_violations"`
	ThrottledMs    float64 `json:"throttled_ms"`
	CreditWindow   int     `json:"credit_window"`
	MaxSessions    int     `json:"max_sessions"`
	RatePerSec     float64 `json:"rate_per_sec"`
}

// slotReplicasJSON is the wire form of one shard slot's replica health.
type slotReplicasJSON struct {
	Slot     int           `json:"slot"`
	Replicas []replicaJSON `json:"replicas"`
}

// replicaJSON is one replica of a slot: its health state (healthy,
// excluded, reseeding), outstanding missed-write debt and read-latency
// EWMA.
type replicaJSON struct {
	Replica       int     `json:"replica"`
	State         string  `json:"state"`
	MissedWrite   bool    `json:"missed_write"`
	LatencyEWMAMs float64 `json:"latency_ewma_ms"`
}

// supervisorJSON reports the auto-reseed supervisor's counters.
type supervisorJSON struct {
	Running             bool    `json:"running"`
	IntervalMs          float64 `json:"interval_ms"`
	Cycles              uint64  `json:"cycles"`
	Reseeds             uint64  `json:"reseeds"`
	ReseedFailures      uint64  `json:"reseed_failures"`
	DeltaReseeds        uint64  `json:"delta_reseeds"`
	DeltaReseedFailures uint64  `json:"delta_reseed_failures"`
	SnapshotExports     uint64  `json:"snapshot_exports"`
	DeltaReplayMax      int     `json:"delta_replay_max"`
	LastError           string  `json:"last_error,omitempty"`
}

// reshardingJSON reports the online split/merge machinery: the in-flight
// migration when one is active, otherwise the last finished one (zero
// value if none ever ran). Present only for sharded backends.
type reshardingJSON struct {
	Active          bool   `json:"active"`
	Phase           string `json:"phase"`
	FromShards      int    `json:"from_shards"`
	ToShards        int    `json:"to_shards"`
	FromEpoch       uint64 `json:"from_epoch"`
	ToEpoch         uint64 `json:"to_epoch"`
	MigratingBlocks int    `json:"migrating_blocks"`
	Members         int    `json:"members"`
	Seeded          int    `json:"seeded"`
	RingDepth       int    `json:"ring_depth"`
	MirroredBatches uint64 `json:"mirrored_batches"`
	Error           string `json:"error,omitempty"`
	Completed       uint64 `json:"completed"`
}

func toReshardingJSON(st shard.ReshardStatus) *reshardingJSON {
	return &reshardingJSON{
		Active:          st.Active,
		Phase:           st.Phase,
		FromShards:      st.FromShards,
		ToShards:        st.ToShards,
		FromEpoch:       st.FromEpoch,
		ToEpoch:         st.ToEpoch,
		MigratingBlocks: st.MigratingBlocks,
		Members:         st.Members,
		Seeded:          st.Seeded,
		RingDepth:       st.RingDepth,
		MirroredBatches: st.MirroredBatches,
		Error:           st.Error,
		Completed:       st.Completed,
	}
}

// walJSON is the wire form of a durable ingest log's state.
type walJSON struct {
	Dir             string  `json:"dir"`
	Policy          string  `json:"fsync_policy"`
	Segments        int     `json:"segments"`
	Bytes           int64   `json:"bytes"`
	LastSeq         uint64  `json:"last_seq"`
	CheckpointSeq   uint64  `json:"checkpoint_seq"`
	HasCheckpoint   bool    `json:"has_checkpoint"`
	CheckpointAgeMs float64 `json:"checkpoint_age_ms"`
	Appends         uint64  `json:"appends"`
	Syncs           uint64  `json:"syncs"`
	Checkpoints     uint64  `json:"checkpoints"`
}

func toWALJSON(st *wal.Stats) *walJSON {
	if st == nil {
		return nil
	}
	return &walJSON{
		Dir:             st.Dir,
		Policy:          string(st.Policy),
		Segments:        st.Segments,
		Bytes:           st.Bytes,
		LastSeq:         st.LastSeq,
		CheckpointSeq:   st.CheckpointSeq,
		HasCheckpoint:   st.HasCheckpoint,
		CheckpointAgeMs: float64(st.CheckpointAge) / float64(time.Millisecond),
		Appends:         st.Appends,
		Syncs:           st.Syncs,
		Checkpoints:     st.Checkpoints,
	}
}

// shardStatsJSON is the wire form of one shard's statistics.
type shardStatsJSON struct {
	Shard         int      `json:"shard"`
	Trained       bool     `json:"trained"`
	Users         int      `json:"users"`
	OwnedUsers    int      `json:"owned_users"`
	Leaves        int      `json:"leaves"`
	Blocks        int      `json:"blocks"`
	Trees         int      `json:"trees"`
	HashKeys      int      `json:"hash_keys"`
	RefreshErrors int64    `json:"refresh_errors"`
	WAL           *walJSON `json:"wal,omitempty"`
}

func (s *Server) handleStatsV2(w http.ResponseWriter, r *http.Request) {
	window := s.SessionCredit
	if window <= 0 {
		window = DefaultSessionCredit
	}
	resp := statsV2Response{
		BatchSize: s.BatchSize,
		MaxBatch:  s.MaxBatch,
		MaxK:      s.MaxK,
		Sessions: sessionStatsJSON{
			Open:           s.sessions.open.Load(),
			Total:          s.sessions.total.Load(),
			Lines:          s.sessions.lines.Load(),
			Results:        s.sessions.results.Load(),
			Rejected:       s.sessions.rejected.Load(),
			FlowViolations: s.sessions.violations.Load(),
			ThrottledMs:    float64(s.sessions.throttleNs.Load()) / 1e6,
			CreditWindow:   window,
			MaxSessions:    s.MaxSessions,
			RatePerSec:     s.SessionRate,
		},
		Requests: s.metrics.snapshot(),
	}
	if ss, ok := s.eng.(shardStatser); ok {
		// Sharded backend: ONE fan-out snapshot feeds both the per-shard
		// entries and the deployment-level figures (the routing structures
		// are replicated, so the first trained shard's numbers are the
		// deployment's) — no extra per-field round trips to remote shards,
		// and no hanging on a fully excluded fleet.
		shardStats := ss.ShardStats()
		for _, sh := range shardStats {
			resp.Shards = append(resp.Shards, shardStatsJSON{
				Shard:         sh.Shard,
				Trained:       sh.Trained,
				Users:         sh.Users,
				OwnedUsers:    sh.OwnedUsers,
				Leaves:        sh.Leaves,
				Blocks:        sh.Blocks,
				Trees:         sh.Trees,
				HashKeys:      sh.HashKeys,
				RefreshErrors: sh.RefreshErrors,
				WAL:           toWALJSON(sh.WAL),
			})
			resp.RefreshErrors += sh.RefreshErrors
		}
		resp.ShardCount = len(resp.Shards)
		for _, sh := range shardStats {
			if sh.Trained {
				resp.Users, resp.Blocks, resp.Trees, resp.HashKeys = sh.Users, sh.Blocks, sh.Trees, sh.HashKeys
				resp.Parallelism = sh.Parallelism
				break
			}
		}
		if rst, ok := s.eng.(reshardStatser); ok {
			resp.Resharding = toReshardingJSON(rst.ReshardStatus())
		}
		if rs, ok := s.eng.(replicaStatser); ok {
			// Replica topology: group the flat health list by slot (the
			// list arrives slot-ordered) and attach the supervisor's
			// counters when a supervisor has been started.
			for _, st := range rs.ReplicaHealth() {
				if n := len(resp.ReplicaSets); n == 0 || resp.ReplicaSets[n-1].Slot != st.Slot {
					resp.ReplicaSets = append(resp.ReplicaSets, slotReplicasJSON{Slot: st.Slot})
				}
				last := &resp.ReplicaSets[len(resp.ReplicaSets)-1]
				last.Replicas = append(last.Replicas, replicaJSON{
					Replica:       st.Replica,
					State:         st.State,
					MissedWrite:   st.MissedWrite,
					LatencyEWMAMs: st.LatencyEWMAMs,
				})
			}
			if sup, ok := rs.SupervisorStats(); ok {
				resp.Supervisor = &supervisorJSON{
					Running:             sup.Running,
					IntervalMs:          float64(sup.Interval) / 1e6,
					Cycles:              sup.Cycles,
					Reseeds:             sup.Reseeds,
					ReseedFailures:      sup.ReseedFailures,
					DeltaReseeds:        sup.DeltaReseeds,
					DeltaReseedFailures: sup.DeltaReseedFailures,
					SnapshotExports:     sup.SnapshotExports,
					DeltaReplayMax:      sup.DeltaReplayMax,
					LastError:           sup.LastError,
				}
			}
		}
	} else {
		st := s.eng.IndexStats()
		resp.Users, resp.Blocks, resp.Trees, resp.HashKeys = st.Users, st.Blocks, st.Trees, st.HashKeys
		resp.RefreshErrors = st.RefreshErrors
		resp.Parallelism = s.eng.Parallelism()
	}
	if s.WAL != nil {
		st := s.WAL.Stats()
		resp.WAL = toWALJSON(&st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- POST /v2/reshard (admin, flag-gated) ----

// reshardV2Request asks for an online in-process reshard to Shards
// engine shards.
type reshardV2Request struct {
	Shards int `json:"shards"`
}

// reshardV2Response acknowledges the accepted migration; progress is
// polled from the /v2/stats resharding block.
type reshardV2Response struct {
	Accepted bool `json:"accepted"`
	Shards   int  `json:"shards"`
}

// handleReshardV2 is the operator trigger of the online split/merge:
// enabled by -admin-reshard, sharded backends only. The migration runs
// asynchronously — the response acknowledges acceptance, and /v2/stats
// reports seeding/catch-up/flip progress and the terminal phase.
func (s *Server) handleReshardV2(w http.ResponseWriter, r *http.Request) {
	if !s.AdminReshard {
		httpError(w, http.StatusForbidden, "resharding is not enabled (start the server with -admin-reshard)")
		return
	}
	rs, ok := s.eng.(resharder)
	if !ok {
		httpError(w, http.StatusNotImplemented, "backend is a single engine; resharding needs a sharded deployment")
		return
	}
	var req reshardV2Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.Shards < 1 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("shards must be >= 1, got %d", req.Shards))
		return
	}
	if st, ok := s.eng.(reshardStatser); ok && st.ReshardStatus().Active {
		httpError(w, http.StatusConflict, "a reshard is already in flight")
		return
	}
	// Asynchronous and detached: the migration outlives this request by
	// design, and the fleet must never flip half-seeded because an admin
	// client disconnected.
	go rs.Reshard(context.WithoutCancel(r.Context()), req.Shards) //nolint:errcheck // terminal state lands in the /v2/stats resharding block
	writeJSON(w, http.StatusAccepted, reshardV2Response{Accepted: true, Shards: req.Shards})
}
