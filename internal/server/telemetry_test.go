// telemetry_test.go: the HTTP server's telemetry surface — the GET
// /metrics exposition shape (golden-pinned per topology), the GET
// /v2/trace/{id} span fetch, the per-principal request quota, and the
// disabled-vs-enabled tracing overhead benchmarks the CI gate runs.
package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ssrec/internal/telemetry"
)

// metricsShape scrapes /metrics after one deterministic recommend call
// and replaces every sample value with a placeholder: the golden pins
// the family set, help/type lines, label sets and series ordering.
func metricsShape(t *testing.T, s *Server, item map[string]any) []byte {
	t.Helper()
	h := s.Handler()
	post(t, h, "/v2/recommend", map[string]any{"items": []map[string]any{item}, "k": 3})
	rr := get(t, h, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(rr.Body.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			b.WriteString(line)
			b.WriteByte('\n')
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		b.WriteString(line[:i])
		b.WriteString(" <v>\n")
	}
	return []byte(b.String())
}

func TestGoldenMetricsExposition(t *testing.T) {
	s, ds := testServer(t)
	checkGolden(t, "metrics_exposition.golden", metricsShape(t, s, itemBody(ds.Items[0])))
}

func TestGoldenMetricsShardedExposition(t *testing.T) {
	s, ds := testShardedServer(t, 2)
	checkGolden(t, "metrics_sharded.golden", metricsShape(t, s, itemBody(ds.Items[0])))
}

func TestGoldenMetricsReplicatedExposition(t *testing.T) {
	s, ds := testReplicatedServer(t, 2, 2)
	checkGolden(t, "metrics_replicated.golden", metricsShape(t, s, itemBody(ds.Items[0])))
}

// TestTraceFetch drives one traced recommend and fetches its span tree
// back via GET /v2/trace/{id}.
func TestTraceFetch(t *testing.T) {
	s, ds := testServer(t)
	s.TraceAll = true
	h := s.Handler()

	rr := post(t, h, "/v2/recommend", map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}, "k": 3})
	if rr.Code != http.StatusOK {
		t.Fatalf("recommend status %d: %s", rr.Code, rr.Body.String())
	}
	id := rr.Header().Get(telemetry.TraceHeader)
	if id == "" {
		t.Fatalf("traced response carries no %s header", telemetry.TraceHeader)
	}

	tr := get(t, h, "/v2/trace/"+id)
	if tr.Code != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", tr.Code, tr.Body.String())
	}
	var resp struct {
		TraceID string               `json:"trace_id"`
		Spans   []telemetry.SpanData `json:"spans"`
	}
	if err := json.Unmarshal(tr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	names := map[string]bool{}
	for _, sp := range resp.Spans {
		names[sp.Name] = true
	}
	if !names["http.request"] || !names["sigtree.search"] {
		t.Errorf("span tree misses expected spans: %v", names)
	}

	if rr := get(t, h, "/v2/trace/no-such-id"); rr.Code != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", rr.Code)
	}
}

// TestUntracedRequestHasNoHeader pins the sampling rule: without
// TraceAll and without an incoming trace header, nothing is traced and
// no trace header is echoed.
func TestUntracedRequestHasNoHeader(t *testing.T) {
	s, ds := testServer(t)
	h := s.Handler()
	rr := post(t, h, "/v2/recommend", map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}, "k": 3})
	if rr.Code != http.StatusOK {
		t.Fatalf("recommend status %d", rr.Code)
	}
	if hv := rr.Header().Get(telemetry.TraceHeader); hv != "" {
		t.Errorf("untraced response carries %s: %q", telemetry.TraceHeader, hv)
	}
}

// TestEmptyTraceHeaderOptsIn pins the opt-in contract: sending the
// trace header at all requests a trace — an empty value must work, the
// client never has to mint an id.
func TestEmptyTraceHeaderOptsIn(t *testing.T) {
	s, ds := testServer(t)
	h := s.Handler()
	body, err := json.Marshal(map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}, "k": 3})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v2/recommend", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader, "")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("recommend status %d: %s", rr.Code, rr.Body.String())
	}
	id := rr.Header().Get(telemetry.TraceHeader)
	if id == "" {
		t.Fatal("empty opt-in header produced no trace id")
	}
	if len(s.Tracer().Trace(id)) == 0 {
		t.Fatalf("no spans retained for trace %s", id)
	}
}

// TestPrincipalQuota pins the per-principal token bucket: a principal
// that exhausts its burst gets 429 + Retry-After while other principals
// stay admitted, and non-API routes are never quota'd.
func TestPrincipalQuota(t *testing.T) {
	s, ds := testServer(t)
	s.PrincipalRate = 0.001 // no meaningful refill within the test
	s.PrincipalBurst = 2
	h := s.Handler()

	body, err := json.Marshal(map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}, "k": 3})
	if err != nil {
		t.Fatal(err)
	}
	ask := func(token string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v2/recommend", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Authorization", "Bearer "+token)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	for i := 0; i < 2; i++ {
		if rr := ask("alice"); rr.Code != http.StatusOK {
			t.Fatalf("alice request %d: status %d, want 200", i+1, rr.Code)
		}
	}
	rr := ask("alice")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("alice over burst: status %d, want 429: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Errorf("429 carries no Retry-After header")
	}
	if !strings.Contains(rr.Body.String(), "quota") {
		t.Errorf("429 body does not name the quota: %s", rr.Body.String())
	}

	// A different principal has its own bucket.
	if rr := ask("bob"); rr.Code != http.StatusOK {
		t.Errorf("bob (fresh principal): status %d, want 200", rr.Code)
	}

	// Health and metrics are never quota'd — monitoring must not be
	// starved by a throttled API principal.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("Authorization", "Bearer alice")
	hr := httptest.NewRecorder()
	h.ServeHTTP(hr, req)
	if hr.Code != http.StatusOK {
		t.Errorf("healthz under exhausted quota: status %d, want 200", hr.Code)
	}
}

// benchmarkRecommend drives POST /v2/recommend through the full
// middleware chain; the CI overhead gate compares the traced and
// untraced variants (enabled must stay within 5% of disabled).
func benchmarkRecommend(b *testing.B, traced bool) {
	s, ds := testServer(b)
	s.TraceAll = traced
	h := s.Handler()
	// k=30 is the paper's serving operating point (and the ssrec-bench
	// default) — the gate measures tracing overhead on a realistic query.
	body, err := json.Marshal(map[string]any{"items": []map[string]any{itemBody(ds.Items[0])}, "k": 30})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v2/recommend", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.Code, rr.Body.String())
		}
	}
}

func BenchmarkRecommendTracingDisabled(b *testing.B) { benchmarkRecommend(b, false) }
func BenchmarkRecommendTracingEnabled(b *testing.B)  { benchmarkRecommend(b, true) }
