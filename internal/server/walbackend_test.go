package server

import (
	"context"
	"reflect"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/model"
	"ssrec/internal/wal"
)

// walEngine trains a raw engine deterministically (same construction as
// testServer, but exposing the *core.Engine WrapWAL needs). Calling it
// twice yields twins: identical training, identical state.
func walEngine(t *testing.T) (*core.Engine, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.YTubeConfig(0.2)
	cfg.Seed = 31
	ds := dataset.Generate(cfg)
	eng := core.New(core.Config{Categories: ds.Categories, TrainMaxIter: 5, Restarts: 1})
	if err := evalx.Train(asTrainer{core.WrapSafe(eng)}, ds, evalx.Setup{}); err != nil {
		t.Fatalf("train: %v", err)
	}
	return eng, ds
}

// TestWALBackendQueryRegistrationDurable pins the query-side durability
// rule: a cold query registers items (the engine prologue mutates the
// replicated dictionaries), so the backend must log that registration
// BEFORE it applies — replaying the log into a twin engine reproduces
// the served state exactly. Warm queries must cost no log record.
func TestWALBackendQueryRegistrationDurable(t *testing.T) {
	live, _ := walEngine(t)
	twin, _ := walEngine(t)

	log, err := wal.Open(wal.Options{Dir: t.TempDir(), Policy: wal.PolicyBatch})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	defer log.Close()
	wb := WrapWAL(live, log)

	cold := []model.Item{
		{ID: "wal-cold-0", Category: "cat02", Producer: "up0003", Entities: []string{"c02e001"}},
		{ID: "wal-cold-1", Category: "cat05", Producer: "up0001", Entities: []string{"c05e002"}},
	}
	if _, err := wb.RecommendBatch(context.Background(), cold, core.WithK(5)); err != nil {
		t.Fatalf("cold RecommendBatch: %v", err)
	}
	if got := log.Stats().Appends; got != 1 {
		t.Fatalf("cold batch: appends = %d, want 1 (registration logged)", got)
	}

	// Warm repeat: nothing new to register, nothing to log.
	if _, err := wb.RecommendBatch(context.Background(), cold, core.WithK(5)); err != nil {
		t.Fatalf("warm RecommendBatch: %v", err)
	}
	if got := log.Stats().Appends; got != 1 {
		t.Fatalf("warm batch: appends = %d, want 1 (warm queries are free)", got)
	}

	// v1 single-item query path, same rule.
	v1 := model.Item{ID: "wal-cold-v1", Category: "cat03", Producer: "up0002", Entities: []string{"c03e001"}}
	if recs := wb.Recommend(v1, 5); recs == nil {
		t.Fatalf("v1 cold Recommend returned nil")
	}
	if got := log.Stats().Appends; got != 2 {
		t.Fatalf("v1 cold query: appends = %d, want 2", got)
	}
	if recs := wb.Recommend(v1, 5); recs == nil {
		t.Fatalf("v1 warm Recommend returned nil")
	}
	if got := log.Stats().Appends; got != 2 {
		t.Fatalf("v1 warm query: appends = %d, want 2", got)
	}

	// An observe after the registrations, so replay ordering matters.
	obs := []core.Observation{{UserID: "uc00001", Item: cold[0], Timestamp: 1700000000}}
	if _, err := wb.ObserveBatch(context.Background(), obs); err != nil {
		t.Fatalf("ObserveBatch: %v", err)
	}

	// Recovery: replay the log into the twin and compare answers.
	if err := log.Replay(0, func(rec wal.Record) error {
		return wal.Apply(context.Background(), rec, twin)
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	probes := append(append([]model.Item{}, cold...), v1)
	for _, p := range probes {
		want := live.Recommend(p, 10)
		got := twin.Recommend(p, 10)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("recovered engine diverges on %s:\n live %v\n twin %v", p.ID, want, got)
		}
	}
	if wb.AppendFailures() != 0 {
		t.Fatalf("append failures = %d, want 0", wb.AppendFailures())
	}
}
