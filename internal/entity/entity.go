// Package entity provides entity extraction from social item descriptions
// and proximity-based entity expansion (Zhou et al., ICDE 2019, §IV-B/C).
//
// The paper uses the TagMe web annotator for extraction; TagMe is an
// external service, so this package substitutes a deterministic
// dictionary-based longest-match extractor over a known entity vocabulary
// (see DESIGN.md, substitutions). The downstream experiments only require a
// deterministic description→entity mapping.
//
// Expansion follows the paper's proximity heuristic (Tao & Zhai, SIGIR
// 2007): two entities that frequently co-occur close to each other within
// item descriptions of the same category are strongly related; the
// expansion weight of a related entity is its accumulated, normalised
// proximity score.
package entity

import (
	"slices"
	"sort"
	"strings"
	"sync"
)

// Extractor maps free-text descriptions to entity sets by greedy
// longest-match against a dictionary of known surface forms. Matching is
// case-insensitive; entities may span multiple tokens ("Australian Open").
type Extractor struct {
	// byFirst maps the lowercase first token of each dictionary entity to
	// the candidate token-length-sorted surface forms starting with it.
	byFirst map[string][]dictEntry
	size    int
}

type dictEntry struct {
	tokens []string // lowercase tokens
	name   string   // canonical entity name
}

// NewExtractor builds an extractor from the canonical entity names.
func NewExtractor(vocabulary []string) *Extractor {
	ex := &Extractor{byFirst: make(map[string][]dictEntry)}
	for _, name := range vocabulary {
		toks := Tokenize(name)
		if len(toks) == 0 {
			continue
		}
		ex.byFirst[toks[0]] = append(ex.byFirst[toks[0]], dictEntry{tokens: toks, name: name})
		ex.size++
	}
	// Longest candidates first so greedy matching prefers the most
	// specific entity ("australian open" over "australian").
	for k := range ex.byFirst {
		es := ex.byFirst[k]
		sort.SliceStable(es, func(i, j int) bool { return len(es[i].tokens) > len(es[j].tokens) })
	}
	return ex
}

// Size returns the number of dictionary entries.
func (ex *Extractor) Size() int { return ex.size }

// Extract returns the entities found in text, in order of first occurrence,
// with repeats preserved (the matching scheme counts entity frequencies).
func (ex *Extractor) Extract(text string) []string {
	toks := Tokenize(text)
	var out []string
	for i := 0; i < len(toks); {
		matched := false
		for _, cand := range ex.byFirst[toks[i]] {
			if i+len(cand.tokens) > len(toks) {
				continue
			}
			ok := true
			for j := 1; j < len(cand.tokens); j++ {
				if toks[i+j] != cand.tokens[j] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, cand.name)
				i += len(cand.tokens)
				matched = true
				break
			}
		}
		if !matched {
			i++
		}
	}
	return out
}

// Tokenize lower-cases and splits text into alphanumeric tokens.
func Tokenize(text string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return toks
}

// Expansion is one expanded entity with its weight w_e ∈ (0, 1].
type Expansion struct {
	Entity string
	Weight float64
}

// Expander accumulates proximity co-occurrence statistics per category and
// answers expansion queries. Build it once over the training corpus, then
// call Expand per incoming item.
type Expander struct {
	// prox[category][a][b] = accumulated proximity mass between entities
	// a and b observed in category's item descriptions.
	prox map[string]map[string]map[string]float64
	// maxProx[category] tracks the largest pairwise mass for normalisation.
	maxProx map[string]float64
	// Window is the token distance beyond which co-occurrence contributes
	// nothing. Proximity contribution is 1/d for entity mentions d ≥ 1
	// positions apart within the same description.
	Window int
	// TopK limits how many expansions a single entity may contribute.
	TopK int
}

// NewExpander returns an empty expander with the given proximity window
// (entity-position distance) and per-entity expansion cap.
func NewExpander(window, topK int) *Expander {
	if window < 1 {
		window = 5
	}
	if topK < 1 {
		topK = 3
	}
	return &Expander{
		prox:    make(map[string]map[string]map[string]float64),
		maxProx: make(map[string]float64),
		Window:  window,
		TopK:    topK,
	}
}

// Observe records the entity mention sequence of one item description in
// the given category. Entities closer together contribute more proximity
// mass (1/distance), per the proximity heuristic.
func (x *Expander) Observe(category string, entities []string) {
	if len(entities) < 2 {
		return
	}
	cat := x.prox[category]
	if cat == nil {
		cat = make(map[string]map[string]float64)
		x.prox[category] = cat
	}
	for i := 0; i < len(entities); i++ {
		for j := i + 1; j < len(entities) && j-i <= x.Window; j++ {
			a, b := entities[i], entities[j]
			if a == b {
				continue
			}
			w := 1 / float64(j-i)
			x.bump(cat, category, a, b, w)
			x.bump(cat, category, b, a, w)
		}
	}
}

func (x *Expander) bump(cat map[string]map[string]float64, category, a, b string, w float64) {
	m := cat[a]
	if m == nil {
		m = make(map[string]float64)
		cat[a] = m
	}
	m[b] += w
	if m[b] > x.maxProx[category] {
		x.maxProx[category] = m[b]
	}
}

// Expand returns the expansion set E' for the item's entity list in the
// given category: for each source entity, up to TopK related entities with
// normalised weights, excluding entities already present in the item.
// Results are sorted by weight descending, then name, for determinism.
func (x *Expander) Expand(category string, entities []string) []Expansion {
	return x.ExpandAppend(nil, category, entities)
}

// expandScratch holds the reusable buffers of one ExpandAppend call: the
// present-entity and best-weight sets plus the per-source candidate list.
// Instances are pooled so steady-state expansion allocates nothing.
type expandScratch struct {
	present map[string]bool
	best    map[string]float64
	cands   []Expansion
}

var expandPool = sync.Pool{New: func() any {
	return &expandScratch{present: make(map[string]bool), best: make(map[string]float64)}
}}

// ExpandAppend is Expand with caller-owned result storage: the expansion
// set is appended to dst (which may be nil or a recycled buffer) and the
// grown slice returned. Content and order are identical to Expand; the
// internal maps and candidate slices come from a pool, so a caller that
// recycles dst performs zero steady-state allocations per item.
func (x *Expander) ExpandAppend(dst []Expansion, category string, entities []string) []Expansion {
	cat := x.prox[category]
	if cat == nil || x.maxProx[category] == 0 {
		return dst
	}
	sc := expandPool.Get().(*expandScratch)
	for _, e := range entities {
		sc.present[e] = true
	}
	norm := x.maxProx[category]
	for _, e := range entities {
		related := cat[e]
		if len(related) == 0 {
			continue
		}
		sc.cands = sc.cands[:0]
		for name, mass := range related {
			if sc.present[name] {
				continue
			}
			sc.cands = append(sc.cands, Expansion{Entity: name, Weight: mass / norm})
		}
		slices.SortFunc(sc.cands, compareExpansion)
		cands := sc.cands
		if len(cands) > x.TopK {
			cands = cands[:x.TopK]
		}
		for _, c := range cands {
			if c.Weight > sc.best[c.Entity] {
				sc.best[c.Entity] = c.Weight
			}
		}
	}
	start := len(dst)
	for name, w := range sc.best {
		dst = append(dst, Expansion{Entity: name, Weight: w})
	}
	slices.SortFunc(dst[start:], compareExpansion)
	clear(sc.present)
	clear(sc.best)
	sc.cands = sc.cands[:0]
	expandPool.Put(sc)
	return dst
}

// compareExpansion orders by weight descending, then entity name — the
// deterministic order both Expand and ExpandAppend guarantee.
func compareExpansion(a, b Expansion) int {
	if a.Weight != b.Weight {
		if a.Weight > b.Weight {
			return -1
		}
		return 1
	}
	return strings.Compare(a.Entity, b.Entity)
}

// Weight returns the normalised proximity weight between two entities in a
// category (0 if unrelated or unknown).
func (x *Expander) Weight(category, a, b string) float64 {
	cat := x.prox[category]
	if cat == nil || x.maxProx[category] == 0 {
		return 0
	}
	return cat[a][b] / x.maxProx[category]
}

// Categories returns the number of categories with recorded statistics.
func (x *Expander) Categories() int { return len(x.prox) }

// ExpanderSnapshot is the exported wire form of an Expander.
type ExpanderSnapshot struct {
	Prox    map[string]map[string]map[string]float64
	MaxProx map[string]float64
	Window  int
	TopK    int
}

// Snapshot exports the accumulated proximity statistics.
func (x *Expander) Snapshot() ExpanderSnapshot {
	s := ExpanderSnapshot{
		Prox:    make(map[string]map[string]map[string]float64, len(x.prox)),
		MaxProx: make(map[string]float64, len(x.maxProx)),
		Window:  x.Window,
		TopK:    x.TopK,
	}
	for cat, m := range x.prox {
		cm := make(map[string]map[string]float64, len(m))
		for a, rel := range m {
			rm := make(map[string]float64, len(rel))
			for b, w := range rel {
				rm[b] = w
			}
			cm[a] = rm
		}
		s.Prox[cat] = cm
	}
	for cat, v := range x.maxProx {
		s.MaxProx[cat] = v
	}
	return s
}

// ExpanderFromSnapshot rebuilds an Expander.
func ExpanderFromSnapshot(s ExpanderSnapshot) *Expander {
	x := NewExpander(s.Window, s.TopK)
	for cat, m := range s.Prox {
		cm := make(map[string]map[string]float64, len(m))
		for a, rel := range m {
			rm := make(map[string]float64, len(rel))
			for b, w := range rel {
				rm[b] = w
			}
			cm[a] = rm
		}
		x.prox[cat] = cm
	}
	for cat, v := range s.MaxProx {
		x.maxProx[cat] = v
	}
	return x
}
