package entity

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Australian Open 2017 Men's Final", []string{"australian", "open", "2017", "men", "s", "final"}},
		{"", nil},
		{"   ", nil},
		{"Roger-Federer vs. Rafael_Nadal!", []string{"roger", "federer", "vs", "rafael", "nadal"}},
		{"ABC123", []string{"abc123"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func testVocab() []string {
	return []string{
		"Australian Open", "Roger Federer", "Rafael Nadal", "Match",
		"Beckham", "worldcup", "FIFA", "Messi", "football", "Brazil",
	}
}

func TestExtractPaperExample(t *testing.T) {
	// The running example from §IV-B of the paper.
	ex := NewExtractor(testVocab())
	got := ex.Extract("Australian Open 2017 Men's Final Roger Federer vs Rafael Nadal Full Match.")
	want := []string{"Australian Open", "Roger Federer", "Rafael Nadal", "Match"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Extract = %v, want %v", got, want)
	}
}

func TestExtractLongestMatchWins(t *testing.T) {
	ex := NewExtractor([]string{"Open", "Australian Open"})
	got := ex.Extract("the australian open final")
	want := []string{"Australian Open"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Extract = %v, want %v", got, want)
	}
}

func TestExtractRepeatsPreserved(t *testing.T) {
	ex := NewExtractor(testVocab())
	got := ex.Extract("worldcup highlights worldcup goals")
	want := []string{"worldcup", "worldcup"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Extract = %v, want %v", got, want)
	}
}

func TestExtractCaseInsensitive(t *testing.T) {
	ex := NewExtractor(testVocab())
	got := ex.Extract("MESSI and beckham")
	want := []string{"Messi", "Beckham"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Extract = %v, want %v", got, want)
	}
}

func TestExtractNoMatches(t *testing.T) {
	ex := NewExtractor(testVocab())
	if got := ex.Extract("completely unrelated text"); got != nil {
		t.Errorf("Extract = %v, want nil", got)
	}
	if got := ex.Extract(""); got != nil {
		t.Errorf("Extract(\"\") = %v, want nil", got)
	}
}

func TestExtractorSize(t *testing.T) {
	ex := NewExtractor([]string{"a", "b", "", "c d"})
	if ex.Size() != 3 {
		t.Errorf("Size = %d, want 3", ex.Size())
	}
}

func TestExpanderRelatesCooccurring(t *testing.T) {
	x := NewExpander(5, 3)
	// Beckham and football co-occur adjacently many times in sports.
	for i := 0; i < 10; i++ {
		x.Observe("sports", []string{"Beckham", "football"})
	}
	x.Observe("sports", []string{"Beckham", "FIFA"})

	exp := x.Expand("sports", []string{"Beckham"})
	if len(exp) < 2 {
		t.Fatalf("expansions = %v", exp)
	}
	if exp[0].Entity != "football" {
		t.Errorf("top expansion = %v, want football", exp[0])
	}
	if exp[0].Weight <= exp[1].Weight {
		t.Errorf("weights not ordered: %v", exp)
	}
	if exp[0].Weight > 1 || exp[0].Weight <= 0 {
		t.Errorf("weight out of (0,1]: %v", exp[0].Weight)
	}
}

func TestExpandExcludesPresentEntities(t *testing.T) {
	x := NewExpander(5, 3)
	x.Observe("sports", []string{"Messi", "worldcup", "FIFA"})
	exp := x.Expand("sports", []string{"Messi", "worldcup"})
	for _, e := range exp {
		if e.Entity == "Messi" || e.Entity == "worldcup" {
			t.Errorf("expansion contains present entity %v", e)
		}
	}
}

func TestExpandCategoryIsolation(t *testing.T) {
	x := NewExpander(5, 3)
	x.Observe("sports", []string{"Messi", "worldcup"})
	if exp := x.Expand("music", []string{"Messi"}); exp != nil {
		t.Errorf("cross-category expansion: %v", exp)
	}
}

func TestExpandTopKCap(t *testing.T) {
	x := NewExpander(10, 2)
	x.Observe("c", []string{"a", "b1", "b2", "b3", "b4", "b5"})
	exp := x.Expand("c", []string{"a"})
	if len(exp) > 2 {
		t.Errorf("TopK=2 but got %d expansions: %v", len(exp), exp)
	}
}

func TestProximityDecaysWithDistance(t *testing.T) {
	x := NewExpander(10, 5)
	x.Observe("c", []string{"a", "near", "x", "x2", "x3", "far"})
	if x.Weight("c", "a", "near") <= x.Weight("c", "a", "far") {
		t.Errorf("near=%v far=%v; proximity should decay",
			x.Weight("c", "a", "near"), x.Weight("c", "a", "far"))
	}
}

func TestObserveWindowLimit(t *testing.T) {
	x := NewExpander(2, 5)
	x.Observe("c", []string{"a", "x1", "x2", "beyond"})
	if w := x.Weight("c", "a", "beyond"); w != 0 {
		t.Errorf("beyond-window pair has weight %v", w)
	}
	if w := x.Weight("c", "a", "x2"); w == 0 {
		t.Errorf("within-window pair has zero weight")
	}
}

func TestObserveSelfPairsIgnored(t *testing.T) {
	x := NewExpander(5, 5)
	x.Observe("c", []string{"a", "a", "a"})
	if w := x.Weight("c", "a", "a"); w != 0 {
		t.Errorf("self-proximity recorded: %v", w)
	}
}

func TestExpandDeterministicOrder(t *testing.T) {
	x := NewExpander(5, 5)
	// Two expansions with identical weights must sort by name.
	x.Observe("c", []string{"a", "zeta"})
	x.Observe("c", []string{"a", "alpha"})
	exp := x.Expand("c", []string{"a"})
	if len(exp) != 2 || exp[0].Entity != "alpha" || exp[1].Entity != "zeta" {
		t.Errorf("tie-break order wrong: %v", exp)
	}
}

func TestWeightSymmetric(t *testing.T) {
	x := NewExpander(5, 5)
	x.Observe("c", []string{"p", "q", "r"})
	if x.Weight("c", "p", "q") != x.Weight("c", "q", "p") {
		t.Errorf("proximity not symmetric")
	}
}

// Property: every expansion weight lies in (0, 1], and no expansion repeats
// or echoes an input entity.
func TestExpandWeightProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		names := []string{"e0", "e1", "e2", "e3", "e4", "e5"}
		x := NewExpander(4, 3)
		var seq []string
		for _, b := range raw {
			seq = append(seq, names[int(b)%len(names)])
		}
		x.Observe("cat", seq)
		exp := x.Expand("cat", []string{"e0"})
		seen := map[string]bool{"e0": true}
		for _, e := range exp {
			if e.Weight <= 0 || e.Weight > 1 {
				return false
			}
			if seen[e.Entity] {
				return false
			}
			seen[e.Entity] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkExtract(b *testing.B) {
	ex := NewExtractor(testVocab())
	text := "Australian Open 2017 Men's Final Roger Federer vs Rafael Nadal Full Match with Messi Beckham worldcup FIFA football Brazil highlights"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex.Extract(text)
	}
}

func BenchmarkExpand(b *testing.B) {
	x := NewExpander(5, 3)
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < 200; i++ {
		x.Observe("c", []string{names[i%8], names[(i+1)%8], names[(i+3)%8]})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Expand("c", []string{"a", "c"})
	}
}
