// session.go is the engine's continuous-recommendation surface: a Session
// turns the request/response v2 API into the standing stream loop the
// paper describes — one ordered command stream carrying interleaved
// observations (Push) and queries (Ask), answered in admission order on
// one Results channel.
//
// A Session owns a micro-batcher: pushed observations accumulate into a
// pending batch that is admitted through ONE ObserveBatch call when it
// reaches the batch size (or an optional linger deadline), and every Ask
// is a barrier — the pending batch is admitted BEFORE the query runs, so
// each answer reflects exactly the events admitted ahead of it. All
// commands funnel through a single pump goroutine, which makes the
// engine-call sequence a pure function of the caller's command order:
// replaying the same Push/Ask interleaving through a Session is
// bit-identical to issuing the same ObserveBatch/RecommendBatch calls by
// hand (the session conformance suite in internal/shardtest enforces this
// across local, sharded and remote-shard backends).
//
// Session is deployment-agnostic: SessionBackend is satisfied by
// *core.Engine, *shard.Router and the public ssrec.Recommender alike.
package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"ssrec/internal/model"
)

// ErrSessionClosed is returned by Push/Ask/Flush after Close (or after the
// session's context was cancelled). Match with errors.Is.
var ErrSessionClosed = errors.New("ssrec: session closed")

// SessionBackend is the deployment surface a Session drives — the two
// batch-first v2 calls. *Engine, *shard.Router and ssrec.Recommender all
// satisfy it.
type SessionBackend interface {
	ObserveBatch(ctx context.Context, batch []Observation) (BatchReport, error)
	RecommendBatch(ctx context.Context, items []model.Item, opts ...Option) ([]Result, error)
}

// DefaultSessionBatch is the observation micro-batch size of a session
// (how many pushed observations are admitted per ObserveBatch call).
const DefaultSessionBatch = 64

// DefaultSessionQueue is the command-queue capacity: how many admitted-
// but-unprocessed commands a session buffers before Push/Ask block. This
// bounds session memory — a stalled Results consumer backs the queue up
// and pushes the block onto the producer.
const DefaultSessionQueue = 256

// DefaultSessionResults is the Results channel capacity.
const DefaultSessionResults = 64

// SessionOption configures OpenSession/NewSession.
type SessionOption func(*sessionConfig)

type sessionConfig struct {
	batch   int
	queue   int
	results int
	linger  time.Duration
	autoK   int
	askOpts []Option
	onFlush func(batch int, rep BatchReport, err error)
}

func (c *sessionConfig) fill() {
	if c.batch <= 0 {
		c.batch = DefaultSessionBatch
	}
	if c.queue <= 0 {
		c.queue = DefaultSessionQueue
	}
	if c.results <= 0 {
		c.results = DefaultSessionResults
	}
}

// WithSessionBatch sets the observation micro-batch size: pending pushes
// are admitted through one ObserveBatch call when they reach n (asks,
// Flush and Close admit earlier). Default DefaultSessionBatch.
func WithSessionBatch(n int) SessionOption {
	return func(c *sessionConfig) { c.batch = n }
}

// WithSessionQueue sets the command-queue capacity (the session's
// server-side buffering bound). Default DefaultSessionQueue.
func WithSessionQueue(n int) SessionOption {
	return func(c *sessionConfig) { c.queue = n }
}

// WithSessionResults sets the Results channel capacity. Default
// DefaultSessionResults.
func WithSessionResults(n int) SessionOption {
	return func(c *sessionConfig) { c.results = n }
}

// WithSessionLinger flushes a non-empty pending batch at most d after its
// oldest observation was pushed, so a trickling stream is not held hostage
// to the batch size. 0 (the default) disables the timer — flush points
// are then a pure function of the command sequence, which the conformance
// suite relies on.
func WithSessionLinger(d time.Duration) SessionOption {
	return func(c *sessionConfig) { c.linger = d }
}

// WithAutoRecommend answers every pushed item without a separate Ask:
// after each micro-batch is admitted, the items appearing in it for the
// FIRST time in this session are answered with top-k queries (in first-
// appearance order) and delivered on Results with Auto set — the paper's
// standing "which k users should receive this new item?" loop driven
// directly by the event stream. k <= 0 disables (the default).
func WithAutoRecommend(k int) SessionOption {
	return func(c *sessionConfig) { c.autoK = k }
}

// WithSessionAskOptions sets default query options applied to every Ask
// (and every auto-recommend query) before the per-call options.
func WithSessionAskOptions(opts ...Option) SessionOption {
	return func(c *sessionConfig) { c.askOpts = opts }
}

// WithSessionFlushHook registers a callback invoked by the session pump
// after every micro-batch admission with the batch length and the
// backend's report. The wire layer uses it to retire flow-control credit;
// tests use it to observe flush boundaries. The hook runs on the pump
// goroutine — keep it fast.
func WithSessionFlushHook(fn func(batch int, rep BatchReport, err error)) SessionOption {
	return func(c *sessionConfig) { c.onFlush = fn }
}

// SessionResult is one answer delivered on Session.Results, in command
// order. Seq is the session-wide command sequence number of the Ask that
// produced it (for Auto results, of the Push that first carried the item).
type SessionResult struct {
	Seq  uint64
	Auto bool
	Result
}

// SessionStats snapshots a session's counters.
type SessionStats struct {
	// Pushed counts observations accepted by Push; Admitted/Rejected
	// split them by the backend's validation verdict once flushed.
	Pushed   uint64
	Admitted uint64
	Rejected uint64
	// Flushed sums per-batch index refreshes; Batches counts ObserveBatch
	// calls.
	Flushed uint64
	Batches uint64
	// Asked counts explicit Ask commands; Answered counts results
	// delivered (asked + auto).
	Asked    uint64
	Answered uint64
}

type cmdKind int

const (
	cmdObs cmdKind = iota
	cmdAsk
	cmdFlush
	cmdClose
)

type sessionCmd struct {
	kind  cmdKind
	seq   uint64
	obs   Observation
	item  model.Item
	opts  []Option
	reply chan error
}

// Session is one ordered full-duplex recommendation stream over a
// deployment. Open one with ssrec's OpenSession or NewSession; drive it
// with Push/Ask from any number of goroutines (commands serialize in call
// order through one queue) and consume Results until it closes.
type Session struct {
	backend SessionBackend
	ctx     context.Context
	cfg     sessionConfig

	// sendMu serializes sequence assignment + queue admission (it is held
	// across the blocking send so admission order equals sequence order);
	// mu guards only the closed/term flags, so the pump can terminate the
	// session while a producer is blocked mid-send without deadlocking.
	sendMu sync.Mutex
	seq    uint64 // under sendMu

	mu     sync.Mutex
	closed bool
	term   error // terminal failure (nil on clean close)

	cmds    chan sessionCmd
	results chan SessionResult
	done    chan struct{}

	stats struct {
		sync.Mutex
		SessionStats
	}
}

// NewSession opens a session over a backend. The context bounds the whole
// session: cancelling it terminates the pump (Err reports the cause) and
// closes Results. Callers that are done should Close to flush the pending
// micro-batch and drain cleanly.
func NewSession(ctx context.Context, b SessionBackend, opts ...SessionOption) *Session {
	var cfg sessionConfig
	for _, o := range opts {
		o(&cfg)
	}
	cfg.fill()
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Session{
		backend: b,
		ctx:     ctx,
		cfg:     cfg,
		cmds:    make(chan sessionCmd, cfg.queue),
		results: make(chan SessionResult, cfg.results),
		done:    make(chan struct{}),
	}
	go s.pump()
	return s
}

// Results delivers answers in admission order. The channel closes when
// the session ends (Close, context cancellation, or terminal failure);
// check Err afterwards.
func (s *Session) Results() <-chan SessionResult { return s.results }

// Err reports the session's terminal error: nil while running or after a
// clean Close, the causal error after a context cancellation or backend
// failure.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.term
}

// Stats snapshots the session counters.
func (s *Session) Stats() SessionStats {
	s.stats.Lock()
	defer s.stats.Unlock()
	return s.stats.SessionStats
}

// Push admits one observation into the session's pending micro-batch. It
// blocks while the command queue is full (backpressure) and fails with
// ErrSessionClosed after Close or session termination.
func (s *Session) Push(o Observation) error {
	return s.enqueue(sessionCmd{kind: cmdObs, obs: o})
}

// Ask enqueues a query for v: the pending micro-batch is admitted first,
// then the query runs and its answer is delivered on Results — so the
// answer reflects exactly the observations pushed before the Ask. The
// per-call options are applied after the session's default ask options.
func (s *Session) Ask(v model.Item, opts ...Option) error {
	return s.enqueue(sessionCmd{kind: cmdAsk, item: v, opts: opts})
}

// Flush admits the pending micro-batch now and waits for it — the
// explicit barrier (Ask and Close flush implicitly). It returns the
// admission error, if any.
func (s *Session) Flush() error {
	reply := make(chan error, 1)
	if err := s.enqueue(sessionCmd{kind: cmdFlush, reply: reply}); err != nil {
		return err
	}
	select {
	case err := <-reply:
		return err
	case <-s.done:
		return s.closedErr()
	}
}

// Close flushes the pending micro-batch, waits for every queued command
// to be answered, closes Results and releases the pump. Push/Ask/Flush
// after Close return ErrSessionClosed. Close blocks until the queue
// drains — a consumer must keep reading Results (or have buffer room)
// for it to finish.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return s.Err()
	}
	s.closed = true
	s.mu.Unlock()
	// Take sendMu so the close command is ordered after any enqueue that
	// was already in flight when the closed flag flipped.
	s.sendMu.Lock()
	reply := make(chan error, 1)
	cmd := sessionCmd{kind: cmdClose, reply: reply}
	select {
	case s.cmds <- cmd:
		s.sendMu.Unlock()
	case <-s.done:
		s.sendMu.Unlock()
		return s.Err()
	}
	select {
	case err := <-reply:
		return err
	case <-s.done:
		return s.Err()
	}
}

func (s *Session) closedErr() error {
	if err := s.Err(); err != nil {
		return err
	}
	return ErrSessionClosed
}

// enqueue assigns the command its session-wide sequence number and admits
// it to the queue in call order. The sequence assignment and the channel
// send happen under one mutex so concurrent producers serialize exactly
// once; the blocking send is the session's backpressure point.
func (s *Session) enqueue(cmd sessionCmd) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return s.closedErr()
	}
	s.seq++
	cmd.seq = s.seq
	select {
	case s.cmds <- cmd:
		return nil
	case <-s.done:
		return s.closedErr()
	}
}

// terminate records the terminal error and marks the session closed so
// producers stop admitting.
func (s *Session) terminate(err error) {
	s.mu.Lock()
	s.closed = true
	if s.term == nil {
		s.term = err
	}
	s.mu.Unlock()
}

// pump is the session's single serialization point: it drains the command
// queue in order, admits observation micro-batches, answers queries and
// delivers results. It exits on cmdClose, context cancellation or a
// terminal backend error.
func (s *Session) pump() {
	defer func() {
		close(s.results)
		close(s.done)
	}()
	var (
		pending []Observation
		pendSeq []uint64
		seen    map[string]uint64 // item id → first-carrying push seq (auto mode)
		lingerC <-chan time.Time
		linger  *time.Timer
	)
	if s.cfg.autoK > 0 {
		seen = make(map[string]uint64)
	}
	stopLinger := func() {
		if linger != nil {
			if !linger.Stop() {
				// Already fired: drain any pending tick so a later Reset
				// cannot deliver it as a premature flush. A no-op under
				// the go1.23+ timer semantics this module builds with
				// (Stop/Reset discard pending sends), load-bearing if the
				// go directive is ever lowered.
				select {
				case <-linger.C:
				default:
				}
			}
			lingerC = nil
		}
	}
	flush := func() error {
		stopLinger()
		if len(pending) == 0 {
			return nil
		}
		rep, err := s.backend.ObserveBatch(s.ctx, pending)
		s.stats.Lock()
		s.stats.Admitted += uint64(rep.Applied)
		s.stats.Rejected += uint64(rep.Rejected)
		s.stats.Flushed += uint64(rep.Flushed)
		s.stats.Batches++
		s.stats.Unlock()
		if s.cfg.onFlush != nil {
			s.cfg.onFlush(len(pending), rep, err)
		}
		if err != nil {
			if s.ctx.Err() != nil {
				return err
			}
			// Non-terminal (e.g. a degraded sharded deployment): the batch
			// landed on the healthy shards; the session keeps serving.
			err = nil
		}
		var autoItems []model.Item
		var autoSeqs []uint64
		if s.cfg.autoK > 0 {
			for i, o := range pending {
				if o.Item.ID == "" {
					continue
				}
				if _, ok := seen[o.Item.ID]; ok {
					continue
				}
				seen[o.Item.ID] = pendSeq[i]
				autoItems = append(autoItems, o.Item)
				autoSeqs = append(autoSeqs, pendSeq[i])
			}
		}
		pending, pendSeq = pending[:0], pendSeq[:0]
		for i, v := range autoItems {
			res := s.askOne(v, []Option{WithK(s.cfg.autoK)})
			if !s.deliver(SessionResult{Seq: autoSeqs[i], Auto: true, Result: res}) {
				return s.ctx.Err()
			}
		}
		return nil
	}
	for {
		var cmd sessionCmd
		select {
		case cmd = <-s.cmds:
		case <-lingerC:
			if err := flush(); err != nil {
				s.terminate(err)
				return
			}
			continue
		case <-s.ctx.Done():
			s.terminate(s.ctx.Err())
			return
		}
		switch cmd.kind {
		case cmdObs:
			pending = append(pending, cmd.obs)
			pendSeq = append(pendSeq, cmd.seq)
			s.stats.Lock()
			s.stats.Pushed++
			s.stats.Unlock()
			if len(pending) >= s.cfg.batch {
				if err := flush(); err != nil {
					s.terminate(err)
					return
				}
			} else if s.cfg.linger > 0 && lingerC == nil {
				if linger == nil {
					linger = time.NewTimer(s.cfg.linger)
				} else {
					linger.Reset(s.cfg.linger)
				}
				lingerC = linger.C
			}
		case cmdAsk:
			if err := flush(); err != nil {
				s.terminate(err)
				return
			}
			s.stats.Lock()
			s.stats.Asked++
			s.stats.Unlock()
			if seen != nil {
				seen[cmd.item.ID] = cmd.seq // an asked item needs no auto answer
			}
			res := s.askOne(cmd.item, cmd.opts)
			if !s.deliver(SessionResult{Seq: cmd.seq, Result: res}) {
				s.terminate(s.ctx.Err())
				return
			}
		case cmdFlush:
			err := flush()
			cmd.reply <- err
			if err != nil {
				s.terminate(err)
				return
			}
		case cmdClose:
			err := flush()
			s.terminate(err) // records nil on a clean close; marks closed
			cmd.reply <- err
			return
		}
	}
}

// singleRecommender is the optional backend fast path for one-item asks:
// *Engine, *shard.Router and ssrec.Recommender all expose RecommendCtx,
// which answers a single item inline — identical results to
// RecommendBatch of one (both run the register-then-query prologue), but
// without the batch call's worker-pool goroutine hop, which costs real
// scheduling latency on a saturated box.
type singleRecommender interface {
	RecommendCtx(ctx context.Context, v model.Item, opts ...Option) (Result, error)
}

// askOne answers one item through the backend, folding a call-scoped
// failure into the per-item result (the session stays up — only context
// cancellation is terminal, handled by the caller's deliver).
func (s *Session) askOne(v model.Item, opts []Option) Result {
	all := opts
	if len(s.cfg.askOpts) > 0 {
		all = make([]Option, 0, len(s.cfg.askOpts)+len(opts))
		all = append(all, s.cfg.askOpts...)
		all = append(all, opts...)
	}
	if sr, ok := s.backend.(singleRecommender); ok {
		res, err := sr.RecommendCtx(s.ctx, v, all...)
		if res.ItemID == "" {
			res.ItemID = v.ID
		}
		if res.Err == nil && err != nil {
			res.Err = err
		}
		return res
	}
	results, err := s.backend.RecommendBatch(s.ctx, []model.Item{v}, all...)
	var res Result
	if len(results) == 1 {
		res = results[0]
	} else {
		res = Result{ItemID: v.ID}
	}
	if res.Err == nil && err != nil {
		res.Err = err
	}
	return res
}

// deliver sends one result, yielding to session termination when the
// consumer is gone. Returns false when the session context ended first.
func (s *Session) deliver(r SessionResult) bool {
	s.stats.Lock()
	s.stats.Answered++
	s.stats.Unlock()
	select {
	case s.results <- r:
		return true
	case <-s.ctx.Done():
		return false
	}
}
