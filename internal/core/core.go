// Package core implements the ssRec engine of Zhou et al. (ICDE 2019): the
// full pipeline wiring the BiHMM interest model (§IV-A), the CPPse user
// profiles and entity-based matching (§IV-B/C) and the CPPse-index (§V)
// behind one Engine type that satisfies the shared Recommender interface.
//
// Lifecycle:
//
//	eng := core.New(cfg)
//	eng.Train(items, interactions)        // batch bootstrap
//	recs := eng.Recommend(item, k)        // per incoming stream item
//	eng.Observe(interaction, item)        // per user-item interaction
//
// Observe maintains the short-term windows, the producer layer and the
// index entries (Algorithm 2) unless updates are disabled
// (Config.DisableUpdates — the ssRec-nu arm of Fig. 9).
package core

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"ssrec/internal/bihmm"
	"ssrec/internal/cppse"
	"ssrec/internal/entity"
	"ssrec/internal/hmm"
	"ssrec/internal/model"
	"ssrec/internal/profile"
	"ssrec/internal/ranking"
	"ssrec/internal/sigtree"
)

// Config parameterises the engine. Zero values take the paper's defaults.
type Config struct {
	Categories []string

	// WindowSize is |W|, the short-term interest window (paper optimum 5).
	WindowSize int
	// LambdaS balances short/long-term relevance (paper optima 0.4/0.3).
	LambdaS float64
	// Mu is the Dirichlet smoothing pseudo-count. Default 10.
	Mu float64

	// ConsumerStates / ProducerStates are the BiHMM hidden-state counts.
	ConsumerStates int
	ProducerStates int
	// AutoSelectStates tunes the consumer hidden-state count per user by
	// held-out next-category accuracy (the paper's §VI-C1 protocol),
	// trying 1..ConsumerStates. Costs ~ConsumerStates× the training time;
	// off by default.
	AutoSelectStates bool
	// MinProducerHistory gates per-producer a-HMM training.
	MinProducerHistory int
	// MinConsumerHistory gates per-consumer b-HMM training; smaller users
	// share the population model.
	MinConsumerHistory int
	// MaxPopulationSeqs caps the corpus of the shared population model.
	MaxPopulationSeqs int
	// TrainMaxIter / Restarts forward to Baum-Welch.
	TrainMaxIter int
	Restarts     int

	// DisableExpansion turns entity expansion off (ssRec-ne, Fig. 8).
	DisableExpansion bool
	// ExpansionWindow / ExpansionTopK tune the proximity expander.
	ExpansionWindow int
	ExpansionTopK   int

	// DisableUpdates freezes profiles and index after Train (ssRec-nu,
	// Fig. 9).
	DisableUpdates bool
	// FullRefresh disables the dirty-category-mask optimisation of index
	// maintenance: every flush rebuilds ALL of a dirty user's leaves, as
	// the engine did before masks existed. The masked path is provably
	// bit-identical (the conformance suite replays both), so this is an
	// escape hatch and the reference arm of that proof, not a tuning knob.
	FullRefresh bool
	// IncrementalFold makes the BiHMM-backed prediction refresh fold only
	// NEW observations into a cached forward state instead of replaying
	// the user's whole history per refresh (bihmm.ForwardState). Bitwise
	// identical to the full pass — the fold replays the exact forward
	// recurrence — with automatic fallback to a full replay whenever the
	// cached state is not a prefix of the needed history (model swap,
	// window-start move). Off by default.
	IncrementalFold bool
	// UpdateBatch batches index maintenance: profile changes are applied
	// immediately, but the per-user index entries (Algorithm 2) refresh
	// only every UpdateBatch observations — the paper's "periodic"
	// maintenance mode. Pending users are always flushed before a query
	// so results never serve stale entries. 0 or 1 = immediate.
	UpdateBatch int

	// Index knobs (see cppse.Config).
	SimThreshold float64
	MaxBlocks    int
	FixedBlocks  int
	Fanout       int
	HashBuckets  int

	// Parallelism is the worker count of the partitioned parallel top-k
	// search (sigtree.SearchParallel): candidate trees fan out to that
	// many goroutines per query, pruning against a shared lower bound.
	// 0 or 1 keeps the sequential path; results are bit-identical.
	Parallelism int

	// ShardIndex / ShardCount make this engine one shard of an N-way
	// deployment (internal/shard): the engine materialises index leaves —
	// and pays the BiHMM signature-refresh cost — only for users that
	// model.ShardOf assigns to ShardIndex, while every dictionary the
	// shards must agree on (profiles, block assignment, universes, the
	// hash table, the trained models) is maintained identically everywhere.
	// ShardCount <= 1 is the ordinary unsharded engine. Plain ints rather
	// than a predicate so the setting survives SaveTo/LoadFrom snapshots.
	ShardIndex int
	ShardCount int

	// Partition, when non-zero (Blocks > 0), replaces the legacy
	// ShardOf(·, ShardCount) ownership rule with a versioned block table
	// (model.Partition) — the online-resharding ownership form. Epoch-0
	// tables agree exactly with the legacy rule, so the two forms never
	// disagree on a deployment that has not resharded. Carried in the
	// Config so it survives SaveTo/LoadFrom snapshots like the shard
	// identity does.
	Partition model.Partition

	Seed int64
}

// ownsUser is the deployment-wide ownership rule: which shard materialises
// a user's index leaves. Unsharded engines own everyone.
func (c *Config) ownsUser(userID string) bool {
	if c.Partition.Blocks > 0 {
		return c.Partition.Owner(userID) == c.ShardIndex
	}
	return c.ShardCount <= 1 || model.ShardOf(userID, c.ShardCount) == c.ShardIndex
}

// sharded reports whether ownership is actually partitioned — i.e. the
// index must carry an owns predicate instead of materialising every leaf.
func (c *Config) sharded() bool {
	if c.Partition.Blocks > 0 {
		return c.Partition.Shards > 1
	}
	return c.ShardCount > 1
}

func (c *Config) fill() {
	if c.WindowSize <= 0 {
		c.WindowSize = 5
	}
	if c.LambdaS == 0 {
		c.LambdaS = 0.4
	}
	if c.Mu <= 0 {
		c.Mu = 10
	}
	if c.ConsumerStates <= 0 {
		c.ConsumerStates = 3
	}
	if c.ProducerStates <= 0 {
		c.ProducerStates = 3
	}
	if c.MinProducerHistory <= 0 {
		c.MinProducerHistory = 5
	}
	if c.MinConsumerHistory <= 0 {
		c.MinConsumerHistory = 12
	}
	if c.MaxPopulationSeqs <= 0 {
		c.MaxPopulationSeqs = 150
	}
	if c.TrainMaxIter <= 0 {
		c.TrainMaxIter = 15
	}
	if c.Restarts <= 0 {
		c.Restarts = 2
	}
	if c.ExpansionWindow <= 0 {
		c.ExpansionWindow = 5
	}
	if c.ExpansionTopK <= 0 {
		c.ExpansionTopK = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Engine is the assembled ssRec recommender.
//
// # Locking contract
//
// Engine is safe for concurrent use across its streaming surface: the
// recommend path (Recommend, RecommendStats, RecommendScan, BuildQuery)
// runs under a read lock so overlapping queries execute in parallel,
// while the mutating path (Train, Observe, RegisterItem, FlushUpdates,
// RebuildIndex, SaveTo) takes the write lock. A query that must first
// register an unseen item or flush batched maintenance briefly upgrades
// to the write lock before re-acquiring the read side. The direct
// component accessors (Store, Index, Expander, ProducerLayer) return
// interior state and are for single-threaded callers (experiments,
// tests) only. See DESIGN.md, "Concurrency".
type Engine struct {
	mu     sync.RWMutex
	cfg    Config
	catIdx map[string]int

	store    *profile.Store
	bg       *profile.Background
	expander *entity.Expander

	producers *bihmm.ProducerLayer
	// consumer observation sequences: category index + producer state of
	// every browsed item, in temporal order. The last WindowLen entries
	// correspond to the profile's short-term window.
	consumerObs map[string][]bihmm.Obs
	consumers   map[string]*bihmm.BHMM // per-consumer models
	population  *bihmm.BHMM            // fallback for thin consumers

	// itemZ caches the decoded producer state of every known item.
	itemZ     map[string]int
	prodPos   map[string]int // items created per producer so far
	index     *cppse.Index
	predCache map[string]*predEntry
	fwdCache  map[string]*fwdEntry // incremental forward states (IncrementalFold)

	// dirty users await batched index maintenance (Config.UpdateBatch),
	// each carrying the mask of categories their pending observations
	// touched (plus the window-roll sentinel).
	dirty      map[string]*dirtyMask
	maskFree   []*dirtyMask // recycled masks, so steady-state marking is allocation-free
	flushIDs   []string     // reusable scratch for flushUpdatesLocked
	sinceFlush int
	trained    bool

	// refreshErrs counts index-refresh failures during flushes (surfaced
	// as the refresh_errors stat; first occurrence is logged).
	refreshErrs int64
}

// dirtyMask records which categories a user's pending observations
// touched. all=true is the window-roll sentinel: a roll moves window
// events into long-term state, changing counts for categories far beyond
// this batch's, so the whole signature set must rebuild.
type dirtyMask struct {
	all  bool
	cats []string
}

// predEntry caches one consumer's long/short category predictions keyed by
// the observation length they were computed at.
type predEntry struct {
	obsLen int
	long   []float64
	short  []float64
}

// New creates an engine; Train must run before Recommend.
func New(cfg Config) *Engine {
	cfg.fill()
	e := &Engine{
		cfg:         cfg,
		catIdx:      make(map[string]int, len(cfg.Categories)),
		store:       profile.NewStore(cfg.WindowSize),
		consumerObs: make(map[string][]bihmm.Obs),
		consumers:   make(map[string]*bihmm.BHMM),
		itemZ:       make(map[string]int),
		prodPos:     make(map[string]int),
		predCache:   make(map[string]*predEntry),
		fwdCache:    make(map[string]*fwdEntry),
		dirty:       make(map[string]*dirtyMask),
	}
	for i, c := range cfg.Categories {
		e.catIdx[c] = i
	}
	e.expander = entity.NewExpander(cfg.ExpansionWindow, cfg.ExpansionTopK)
	return e
}

// Name implements the Recommender interface.
func (e *Engine) Name() string {
	switch {
	case e.cfg.DisableExpansion:
		return "ssRec-ne"
	case e.cfg.DisableUpdates:
		return "ssRec-nu"
	}
	return "ssRec"
}

// Train bootstraps the engine: background distributions and the expander
// from the training items, the producer layer from per-producer item
// streams, per-consumer BiHMMs from the training interactions, and finally
// the CPPse-index.
//
// items must contain every item referenced by interactions (and may
// contain more — only items up to the last training timestamp contribute
// to the background).
func (e *Engine) Train(items []model.Item, interactions []model.Interaction, resolve func(string) (model.Item, bool)) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.cfg.Categories) == 0 {
		return fmt.Errorf("core: no categories configured")
	}
	var lastTS int64
	for _, ir := range interactions {
		if ir.Timestamp > lastTS {
			lastTS = ir.Timestamp
		}
	}
	// Background + expander + producer histories from training-era items.
	var bgItems []model.Item
	prodHist := map[string][]int{}
	prodItems := map[string][]string{}
	for _, v := range items {
		if lastTS > 0 && v.Timestamp > lastTS {
			continue
		}
		bgItems = append(bgItems, v)
		e.expander.Observe(v.Category, v.Entities)
		ci, ok := e.catIdx[v.Category]
		if !ok {
			continue
		}
		prodHist[v.Producer] = append(prodHist[v.Producer], ci)
		prodItems[v.Producer] = append(prodItems[v.Producer], v.ID)
	}
	e.bg = profile.NewBackground(bgItems, e.cfg.Mu)

	e.producers = bihmm.FitProducerLayer(prodHist, len(e.cfg.Categories), bihmm.ProducerLayerOptions{
		NZ:         e.cfg.ProducerStates,
		MinHistory: e.cfg.MinProducerHistory,
		Seed:       e.cfg.Seed,
		Train:      hmm.TrainOptions{MaxIter: e.cfg.TrainMaxIter, Restarts: e.cfg.Restarts},
	})
	for up, ids := range prodItems {
		for pos, id := range ids {
			e.itemZ[id] = e.producers.AlignedStateAt(up, pos)
		}
		e.prodPos[up] = len(ids)
	}

	// Replay training interactions into profiles and observation streams.
	for _, ir := range interactions {
		v, ok := resolve(ir.ItemID)
		if !ok {
			continue
		}
		p := e.store.Get(ir.UserID)
		p.ObserveLongTerm(profile.EventFromItem(v, ir.Timestamp))
		e.consumerObs[ir.UserID] = append(e.consumerObs[ir.UserID], e.obsFor(v))
	}

	// Per-consumer BiHMMs plus the shared population fallback.
	ids := make([]string, 0, len(e.consumerObs))
	for id := range e.consumerObs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	opts := bihmm.TrainOptions{MaxIter: e.cfg.TrainMaxIter, Restarts: e.cfg.Restarts}
	// The conditioning alphabet is the aligned producer state: one symbol
	// per category (see bihmm.ProducerLayer.AlignedStateAt).
	nz := len(e.cfg.Categories)
	var popCorpus [][]bihmm.Obs
	for k, id := range ids {
		obs := e.consumerObs[id]
		if len(popCorpus) < e.cfg.MaxPopulationSeqs {
			popCorpus = append(popCorpus, obs)
		}
		if len(obs) < e.cfg.MinConsumerHistory {
			continue
		}
		if e.cfg.AutoSelectStates {
			_, m, _ := bihmm.SelectConsumerStates(obs, e.cfg.ConsumerStates, nz,
				len(e.cfg.Categories), e.cfg.Seed+int64(k)*31, opts)
			if m != nil {
				e.consumers[id] = m
			}
			continue
		}
		m, _, err := bihmm.Fit(e.cfg.ConsumerStates, nz, len(e.cfg.Categories),
			[][]bihmm.Obs{obs}, e.cfg.Seed+int64(k)*31, opts)
		if err == nil {
			e.consumers[id] = m
		}
	}
	if len(popCorpus) > 0 {
		if m, _, err := bihmm.Fit(e.cfg.ConsumerStates, nz, len(e.cfg.Categories),
			popCorpus, e.cfg.Seed+7, opts); err == nil {
			e.population = m
		}
	}

	// Build the index with BiHMM-backed probabilities.
	ix, err := buildIndex(e)
	if err != nil {
		return err
	}
	e.index = ix
	e.trained = true
	return nil
}

// buildIndex constructs the CPPse-index from the engine's current state.
func buildIndex(e *Engine) (*cppse.Index, error) {
	ix, err := cppse.Build(e.store, e.bg, e.probs(), e.indexConfig())
	if err != nil {
		return nil, fmt.Errorf("core: index build: %w", err)
	}
	return ix, nil
}

// buildIndexFromState reconstructs the CPPse-index pinned to a captured
// block clustering instead of re-clustering — the load path that makes a
// snapshot-seeded engine observably identical to one that never
// restarted.
func buildIndexFromState(e *Engine, st cppse.State) (*cppse.Index, error) {
	ix, err := cppse.BuildFromState(e.store, e.bg, e.probs(), e.indexConfig(), st)
	if err != nil {
		return nil, fmt.Errorf("core: index rebuild from state: %w", err)
	}
	return ix, nil
}

func (e *Engine) indexConfig() cppse.Config {
	var owns func(string) bool
	if e.cfg.sharded() {
		owns = e.cfg.ownsUser
	}
	return cppse.Config{
		Categories:   e.cfg.Categories,
		LambdaS:      e.cfg.LambdaS,
		Mu:           e.cfg.Mu,
		SimThreshold: e.cfg.SimThreshold,
		MaxBlocks:    e.cfg.MaxBlocks,
		FixedBlocks:  e.cfg.FixedBlocks,
		Fanout:       e.cfg.Fanout,
		HashBuckets:  e.cfg.HashBuckets,
		Parallelism:  e.cfg.Parallelism,
		Owns:         owns,
	}
}

// obsFor converts an item into the consumer observation (category index,
// producer state of the item).
func (e *Engine) obsFor(v model.Item) bihmm.Obs {
	ci, ok := e.catIdx[v.Category]
	if !ok {
		ci = 0
	}
	z, ok := e.itemZ[v.ID]
	if !ok {
		z = bihmm.ZUnknown
	}
	return bihmm.Obs{Cat: ci, Z: z}
}

// RegisterItem tells the engine about a newly arrived item: its producer's
// layer advances (assigning the item a decoded state) and, unless updates
// are disabled, the expander absorbs its entity co-occurrences. Recommend
// calls this implicitly for unseen items.
func (e *Engine) RegisterItem(v model.Item) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.registerItemLocked(v)
}

func (e *Engine) registerItemLocked(v model.Item) {
	if _, known := e.itemZ[v.ID]; known {
		return
	}
	ci, ok := e.catIdx[v.Category]
	if !ok {
		e.itemZ[v.ID] = bihmm.ZUnknown
		return
	}
	if e.producers != nil {
		e.producers.ObserveItem(v.Producer, ci)
		e.itemZ[v.ID] = e.producers.AlignedStateAt(v.Producer, e.prodPos[v.Producer])
	} else {
		e.itemZ[v.ID] = bihmm.ZUnknown
	}
	e.prodPos[v.Producer]++
	if !e.cfg.DisableUpdates {
		e.expander.Observe(v.Category, v.Entities)
	}
}

// Observe implements the Recommender interface: one user-item interaction
// from the stream. It maintains the profile (window → long-term flush),
// the observation sequence and — unless disabled — the user's index
// entries per Algorithm 2.
func (e *Engine) Observe(ir model.Interaction, v model.Item) {
	if e.cfg.DisableUpdates {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observeLocked(ir, v)
	if e.index == nil {
		return
	}
	if e.cfg.UpdateBatch <= 1 || e.sinceFlush >= e.cfg.UpdateBatch {
		e.flushUpdatesLocked()
	}
}

// observeLocked applies one interaction to the profile, observation and
// prediction state and marks the user for index maintenance. The caller
// decides when the dirty set is flushed: per interaction (Observe with
// UpdateBatch <= 1), per UpdateBatch interactions, or once per micro-batch
// (ObserveBatch) — flushing is idempotent on the final profile state, so
// every policy converges to the same index.
func (e *Engine) observeLocked(ir model.Interaction, v model.Item) {
	e.registerItemLocked(v)
	p := e.store.Get(ir.UserID)
	rolled := p.Observe(profile.EventFromItem(v, ir.Timestamp))
	e.consumerObs[ir.UserID] = append(e.consumerObs[ir.UserID], e.obsFor(v))
	delete(e.predCache, ir.UserID)
	if e.index == nil {
		return
	}
	e.markDirtyLocked(ir.UserID, v.Category, rolled)
	e.sinceFlush++
}

// markDirtyLocked records that a user's pending observations touched cat;
// rolled raises the all-categories sentinel (window events moved into
// long-term state, invalidating every leaf's counts).
func (e *Engine) markDirtyLocked(userID, cat string, rolled bool) {
	d := e.dirty[userID]
	if d == nil {
		if n := len(e.maskFree); n > 0 {
			d, e.maskFree = e.maskFree[n-1], e.maskFree[:n-1]
		} else {
			d = &dirtyMask{}
		}
		e.dirty[userID] = d
	}
	if rolled {
		d.all = true
	}
	if d.all {
		return
	}
	for _, c := range d.cats {
		if c == cat {
			return
		}
	}
	d.cats = append(d.cats, cat)
}

// FlushUpdates applies all pending batched index maintenance (Algorithm 2)
// and returns how many users were refreshed.
func (e *Engine) FlushUpdates() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushUpdatesLocked()
}

func (e *Engine) flushUpdatesLocked() int {
	if e.index == nil || len(e.dirty) == 0 {
		e.sinceFlush = 0
		return 0
	}
	ids := e.flushIDs[:0]
	for id := range e.dirty {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Every dirty user runs a refresh — the routing metadata (block
	// assignment, universes, hash) must advance on every shard — but only
	// owned users count as refreshed: they are the ones whose signatures
	// were recomputed, and summing the count across shards must equal the
	// single-engine figure. The dirty-category mask narrows the expensive
	// leaf rebuilds to the categories this flush actually touched;
	// Config.FullRefresh restores the rebuild-everything reference path.
	n := 0
	for _, id := range ids {
		d := e.dirty[id]
		var err error
		if e.cfg.FullRefresh {
			err = e.index.UpdateUser(id)
		} else {
			err = e.index.UpdateUserCats(id, d.cats, d.all)
		}
		if err != nil {
			e.refreshErrs++
			if e.refreshErrs == 1 {
				log.Printf("core: index refresh failed for user %q: %v (further failures counted in refresh_errors)", id, err)
			}
		} else if e.cfg.ownsUser(id) {
			n++
		}
		d.all, d.cats = false, d.cats[:0]
		e.maskFree = append(e.maskFree, d)
	}
	clear(e.dirty)
	clear(ids)
	e.flushIDs = ids[:0]
	e.sinceFlush = 0
	return n
}

// RefreshErrors reports how many index refreshes have failed during
// flushes since the engine was created (concurrency-safe). A non-zero
// value means some user's index entries may lag their profile — surfaced
// as refresh_errors in /v2/stats.
func (e *Engine) RefreshErrors() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.refreshErrs
}

// Recommend implements the Recommender interface: top-k users for an
// incoming item via the CPPse-index (Algorithm 1).
func (e *Engine) Recommend(v model.Item, k int) []model.Recommendation {
	recs, _ := e.RecommendStats(v, k)
	return recs
}

// RecommendStats additionally reports the index search statistics.
//
// Overlapping calls run concurrently under the read lock; the call
// briefly upgrades to the write lock when the item is unseen (it must be
// registered) or batched maintenance is pending (stale entries must not
// be served).
func (e *Engine) RecommendStats(v model.Item, k int) ([]model.Recommendation, sigtree.SearchStats) {
	if !e.queryPrologue(v) {
		return nil, sigtree.SearchStats{}
	}
	defer e.mu.RUnlock()
	sc := ranking.GetQueryScratch()
	defer ranking.PutQueryScratch(sc)
	q := e.buildQueryScratch(sc, v, false)
	return e.index.Recommend(q, k)
}

// RecommendScan is the pruning-free arm (AblationPruning): identical
// candidates and scores, every leaf scored.
func (e *Engine) RecommendScan(v model.Item, k int) []model.Recommendation {
	if !e.queryPrologue(v) {
		return nil
	}
	defer e.mu.RUnlock()
	sc := ranking.GetQueryScratch()
	defer ranking.PutQueryScratch(sc)
	return e.index.RecommendScan(e.buildQueryScratch(sc, v, false), k)
}

// queryPrologue prepares a query: it leaves the engine read-locked and
// ready to serve (returning true), or unlocked (returning false) when the
// engine is untrained. Unseen items and pending batched maintenance are
// handled under a transient write lock before the read lock is
// re-acquired.
func (e *Engine) queryPrologue(v model.Item) bool {
	e.mu.RLock()
	for {
		if !e.trained {
			e.mu.RUnlock()
			return false
		}
		_, known := e.itemZ[v.ID]
		if known && len(e.dirty) == 0 {
			return true
		}
		// Upgrade. A writer may slip in between Unlock and RLock and
		// re-dirty the index, so loop until the read-locked check holds —
		// stale entries must never be served.
		e.mu.RUnlock()
		e.mu.Lock()
		e.flushUpdatesLocked()
		e.registerItemLocked(v)
		e.mu.Unlock()
		e.mu.RLock()
	}
}

// BuildQuery prepares the weighted entity query for an item, applying
// expansion unless disabled.
func (e *Engine) BuildQuery(v model.Item) ranking.ItemQuery {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.buildQueryLocked(v)
}

func (e *Engine) buildQueryLocked(v model.Item) ranking.ItemQuery {
	x := e.expander
	if e.cfg.DisableExpansion {
		x = nil
	}
	return ranking.BuildQuery(v, x)
}

// buildQueryScratch builds the query into pooled scratch storage (the
// allocation-free hot path). The returned query aliases sc and must be
// consumed before the scratch is released.
func (e *Engine) buildQueryScratch(sc *ranking.QueryScratch, v model.Item, noExpansion bool) ranking.ItemQuery {
	x := e.expander
	if e.cfg.DisableExpansion || noExpansion {
		x = nil
	}
	return sc.BuildQuery(v, x)
}

// probs returns the cppse.Probs implementation backed by the BiHMM layers.
func (e *Engine) probs() cppse.Probs { return engineProbs{e} }

type engineProbs struct{ e *Engine }

// Long returns the cached long-term BiHMM probability p(c|u).
func (p engineProbs) Long(userID, category string) float64 {
	return p.e.categoryProb(userID, category, false)
}

// Short returns the cached short-term probability ps(c|u) over the window.
func (p engineProbs) Short(userID, category string) float64 {
	return p.e.categoryProb(userID, category, true)
}

// categoryProb computes (with caching) the predictive category
// distribution of a user from its BiHMM: the long-term side conditions on
// the full history minus the window; the short-term side on the window
// alone.
func (e *Engine) categoryProb(userID, category string, short bool) float64 {
	ci, ok := e.catIdx[category]
	if !ok {
		return 1e-9
	}
	obs := e.consumerObs[userID]
	ce := e.predCache[userID]
	if ce == nil || ce.obsLen != len(obs) {
		ce = e.refreshPrediction(userID, obs)
	}
	if short {
		return ce.short[ci]
	}
	return ce.long[ci]
}

func (e *Engine) refreshPrediction(userID string, obs []bihmm.Obs) *predEntry {
	m := e.consumers[userID]
	if m == nil {
		m = e.population
	}
	nCats := len(e.cfg.Categories)
	ce := &predEntry{obsLen: len(obs)}
	if m == nil {
		uniform := make([]float64, nCats)
		for i := range uniform {
			uniform[i] = 1 / float64(nCats)
		}
		ce.long, ce.short = uniform, uniform
		e.predCache[userID] = ce
		return ce
	}
	winLen := 0
	if p, ok := e.store.Lookup(userID); ok {
		winLen = p.WindowLen()
	}
	if winLen > len(obs) {
		winLen = len(obs)
	}
	longObs := obs[:len(obs)-winLen]
	shortObs := obs[len(obs)-winLen:]
	if e.cfg.IncrementalFold {
		ce.long, ce.short = e.incrementalPredict(userID, m, longObs, shortObs)
	} else {
		ce.long = m.PredictNextMarginal(longObs, nil)
		ce.short = m.PredictNextMarginal(shortObs, nil)
	}
	e.predCache[userID] = ce
	return ce
}

// fwdEntry caches one consumer's incremental forward states: the long side
// tracks the prefix obs[:len-winLen], the short side the window suffix
// starting at shortStart.
type fwdEntry struct {
	model      *bihmm.BHMM
	long       bihmm.ForwardState
	short      bihmm.ForwardState
	shortStart int
}

// incrementalPredict is refreshPrediction's Config.IncrementalFold path:
// fold only NEW observations into cached forward states and predict from
// them. The observation stream is append-only, so the cached long state is
// a valid prefix whenever its length fits — even across a window roll,
// which only moves the long/short boundary forward. The state falls back
// to a full replay (Reset + Extend over everything) when it cannot prove
// prefix-ness: the consumer's model changed (a different *BHMM — per-user
// model vs population), the cached prefix is longer than the needed one,
// or the window start moved (short side after a roll; the replay is at
// most WindowSize observations there). Either way the produced rows — and
// therefore Pl/Ps and every downstream score — are bitwise identical to
// the full forward pass.
func (e *Engine) incrementalPredict(userID string, m *bihmm.BHMM, longObs, shortObs []bihmm.Obs) (long, short []float64) {
	fe := e.fwdCache[userID]
	if fe == nil {
		fe = &fwdEntry{}
		e.fwdCache[userID] = fe
	}
	if fe.model != m || fe.long.Len() > len(longObs) {
		fe.long.Reset(m)
	}
	m.Extend(&fe.long, longObs[fe.long.Len():])
	shortStart := len(longObs)
	if fe.model != m || fe.shortStart != shortStart || fe.short.Len() > len(shortObs) {
		fe.short.Reset(m)
		fe.shortStart = shortStart
	}
	m.Extend(&fe.short, shortObs[fe.short.Len():])
	fe.model = m
	return m.PredictNextMarginalState(&fe.long, nil), m.PredictNextMarginalState(&fe.short, nil)
}

// SetParallelism changes the parallel-search worker count at runtime —
// e.g. to override the value restored from a snapshot by LoadFrom.
func (e *Engine) SetParallelism(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.Parallelism = n
	if e.index != nil {
		e.index.SetParallelism(n)
	}
}

// SetFullRefresh toggles the dirty-category-mask optimisation at runtime
// (Config.FullRefresh; true = rebuild every leaf per flush). Used by the
// conformance suite to boot the reference arm from a shared snapshot.
func (e *Engine) SetFullRefresh(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.FullRefresh = on
}

// SetIncrementalFold toggles the incremental BiHMM fold-in
// (Config.IncrementalFold) at runtime. Turning it off drops the cached
// forward states; turning it on rebuilds them lazily on the next refresh.
func (e *Engine) SetIncrementalFold(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.IncrementalFold = on
	if !on {
		clear(e.fwdCache)
	}
}

// Parallelism reports the configured parallel-search worker count
// (concurrency-safe).
func (e *Engine) Parallelism() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cfg.Parallelism
}

// Trained reports whether Train has completed (concurrency-safe).
func (e *Engine) Trained() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.trained
}

// SetShard re-scopes a trained engine as shard idx of an n-way deployment
// and rebuilds the index so leaves cover only the owned user block — how a
// shard boots from a shared snapshot (shard.FromSnapshot, ssrec-server
// -model -shards). n <= 1 restores the unsharded engine.
func (e *Engine) SetShard(idx, n int) error {
	if n > 1 && (idx < 0 || idx >= n) {
		return fmt.Errorf("core: shard index %d out of range [0,%d)", idx, n)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.ShardIndex, e.cfg.ShardCount = idx, n
	// Re-scoping onto the legacy rule retires any versioned table — the
	// caller is restating ownership from scratch.
	e.cfg.Partition = model.Partition{}
	if !e.trained {
		return nil
	}
	e.flushUpdatesLocked()
	return e.rebuildIndex()
}

// Shard reports the engine's position in its deployment (idx of n;
// 0 of 1 when unsharded). Concurrency-safe.
func (e *Engine) Shard() (idx, n int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.cfg.ShardCount <= 1 {
		return 0, 1
	}
	return e.cfg.ShardIndex, e.cfg.ShardCount
}

// Users returns the number of known profiles (concurrency-safe).
func (e *Engine) Users() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.Len()
}

// IndexStats snapshots the CPPse-index statistics (concurrency-safe).
// ok is false before Train.
func (e *Engine) IndexStats() (stats cppse.IndexStats, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.index == nil {
		return stats, false
	}
	return e.index.Stats(), true
}

// Store exposes the profile store (read-mostly; used by experiments).
func (e *Engine) Store() *profile.Store { return e.store }

// Index exposes the CPPse-index (used by experiments and stats reporting).
func (e *Engine) Index() *cppse.Index { return e.index }

// Expander exposes the entity expander.
func (e *Engine) Expander() *entity.Expander { return e.expander }

// ProducerLayer exposes the a-HMM layer.
func (e *Engine) ProducerLayer() *bihmm.ProducerLayer { return e.producers }

// ConsumerModelCount reports how many consumers got their own b-HMM.
func (e *Engine) ConsumerModelCount() int { return len(e.consumers) }
