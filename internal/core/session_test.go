package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"ssrec/internal/dataset"
	"ssrec/internal/model"
)

// sessionFixture is built once per process: a trained-engine snapshot
// plus the post-training observation stream and future items, so every
// session test boots an identical engine cheaply via reloadEngine.
var sessionFixture struct {
	once  sync.Once
	snap  []byte
	obs   []Observation
	items []model.Item
	err   error
}

func buildSessionFixture() {
	cfg := dataset.YTubeConfig(0.25)
	cfg.Seed = 5
	ds := dataset.Generate(cfg)
	eng := New(Config{Categories: ds.Categories, TrainMaxIter: 3, Restarts: 1, Seed: 5})
	nTrain := len(ds.Interactions) / 3
	if err := eng.Train(ds.Items, ds.Interactions[:nTrain], ds.Item); err != nil {
		sessionFixture.err = err
		return
	}
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		sessionFixture.err = err
		return
	}
	sessionFixture.snap = buf.Bytes()
	lastTS := ds.Interactions[nTrain-1].Timestamp
	for _, ir := range ds.Interactions[nTrain:] {
		if v, ok := ds.Item(ir.ItemID); ok {
			sessionFixture.obs = append(sessionFixture.obs, Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp})
		}
	}
	for _, v := range ds.Items {
		if v.Timestamp > lastTS {
			sessionFixture.items = append(sessionFixture.items, v)
		}
	}
}

// sessionTestEngine boots a fresh engine from the shared fixture snapshot
// plus its post-training stream.
func sessionTestEngine(t testing.TB) (*Engine, []Observation, []model.Item) {
	t.Helper()
	sessionFixture.once.Do(buildSessionFixture)
	if sessionFixture.err != nil {
		t.Fatalf("fixture: %v", sessionFixture.err)
	}
	if len(sessionFixture.obs) < 64 || len(sessionFixture.items) < 8 {
		t.Fatalf("fixture too small: %d obs, %d items", len(sessionFixture.obs), len(sessionFixture.items))
	}
	return reloadEngine(t, nil), sessionFixture.obs, sessionFixture.items
}

// reloadEngine boots another engine from the same snapshot, so two
// deployments start bit-identical.
func reloadEngine(t testing.TB, _ *Engine) *Engine {
	t.Helper()
	eng, err := LoadFrom(bytes.NewReader(sessionFixture.snap))
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	return eng
}

// TestSessionMatchesBatchAPI proves the tentpole ordering guarantee on a
// small scale: a Push/Ask interleaving through a Session is bit-identical
// to hand-issued ObserveBatch/RecommendBatch calls at the same boundaries.
func TestSessionMatchesBatchAPI(t *testing.T) {
	engA, obs, items := sessionTestEngine(t)
	engB := reloadEngine(t, engA)

	const batch = 16
	const nBatches = 4
	ctx := context.Background()

	// Reference: the raw batch API.
	var want []Result
	for bi := 0; bi < nBatches; bi++ {
		lo, hi := bi*batch, (bi+1)*batch
		if _, err := engA.ObserveBatch(ctx, obs[lo:hi]); err != nil {
			t.Fatalf("reference ObserveBatch: %v", err)
		}
		for q := 0; q < 2; q++ {
			v := items[(bi*2+q)%len(items)]
			res, err := engA.RecommendBatch(ctx, []model.Item{v}, WithK(5))
			if err != nil {
				t.Fatalf("reference RecommendBatch: %v", err)
			}
			want = append(want, res[0])
		}
	}

	// Same schedule through a session.
	ses := NewSession(ctx, engB, WithSessionBatch(batch))
	var got []Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := range ses.Results() {
			got = append(got, r.Result)
		}
	}()
	for bi := 0; bi < nBatches; bi++ {
		lo, hi := bi*batch, (bi+1)*batch
		for _, o := range obs[lo:hi] {
			if err := ses.Push(o); err != nil {
				t.Fatalf("Push: %v", err)
			}
		}
		for q := 0; q < 2; q++ {
			if err := ses.Ask(items[(bi*2+q)%len(items)], WithK(5)); err != nil {
				t.Fatalf("Ask: %v", err)
			}
		}
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if err := ses.Err(); err != nil {
		t.Fatalf("session terminal error: %v", err)
	}

	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		assertSameResult(t, i, got[i], want[i])
	}
	st := ses.Stats()
	if st.Pushed != uint64(nBatches*batch) || st.Admitted != st.Pushed {
		t.Fatalf("stats = %+v, want %d pushed+admitted", st, nBatches*batch)
	}
	if st.Asked != uint64(nBatches*2) || st.Answered != st.Asked {
		t.Fatalf("stats = %+v, want %d asked+answered", st, nBatches*2)
	}
	if st.Batches != uint64(nBatches) {
		t.Fatalf("stats.Batches = %d, want %d (asks flush at exact batch boundaries)", st.Batches, nBatches)
	}
}

func assertSameResult(t *testing.T, i int, got, want Result) {
	t.Helper()
	if got.ItemID != want.ItemID {
		t.Fatalf("result %d: item %q, want %q", i, got.ItemID, want.ItemID)
	}
	if (got.Err == nil) != (want.Err == nil) {
		t.Fatalf("result %d: err %v, want %v", i, got.Err, want.Err)
	}
	if len(got.Recommendations) != len(want.Recommendations) {
		t.Fatalf("result %d: %d recs, want %d", i, len(got.Recommendations), len(want.Recommendations))
	}
	for j := range want.Recommendations {
		if got.Recommendations[j] != want.Recommendations[j] {
			t.Fatalf("result %d rec %d: %+v, want %+v", i, j, got.Recommendations[j], want.Recommendations[j])
		}
	}
}

// TestSessionAutoRecommend: every item first seen in a pushed observation
// is answered automatically, exactly once, after its batch is admitted.
func TestSessionAutoRecommend(t *testing.T) {
	eng, obs, _ := sessionTestEngine(t)
	if len(obs) < 8 {
		t.Skip("fixture too small")
	}
	obs = obs[:8]
	// Repeat an item so dedup is observable.
	obs[7] = obs[0]

	distinct := map[string]bool{}
	for _, o := range obs {
		distinct[o.Item.ID] = true
	}

	ses := NewSession(context.Background(), eng, WithSessionBatch(4), WithAutoRecommend(3))
	var auto []SessionResult
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range ses.Results() {
			if !r.Auto {
				t.Errorf("unexpected non-auto result %+v", r)
			}
			auto = append(auto, r)
		}
	}()
	for _, o := range obs {
		if err := ses.Push(o); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-done
	if len(auto) != len(distinct) {
		t.Fatalf("%d auto answers, want %d (one per first-seen item)", len(auto), len(distinct))
	}
	for _, r := range auto {
		if r.Err != nil {
			t.Fatalf("auto answer for %s failed: %v", r.ItemID, r.Err)
		}
		if len(r.Recommendations) == 0 || len(r.Recommendations) > 3 {
			t.Fatalf("auto answer for %s has %d recs, want 1..3", r.ItemID, len(r.Recommendations))
		}
		if r.Seq == 0 {
			t.Fatalf("auto answer missing seq")
		}
	}
}

// TestSessionCloseSemantics: commands after Close fail, Close is
// idempotent, and a pending partial batch is flushed on Close.
func TestSessionCloseSemantics(t *testing.T) {
	eng, obs, items := sessionTestEngine(t)
	ses := NewSession(context.Background(), eng, WithSessionBatch(1024))
	go func() {
		for range ses.Results() {
		}
	}()
	for _, o := range obs[:5] {
		if err := ses.Push(o); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := ses.Stats(); st.Admitted != 5 || st.Batches != 1 {
		t.Fatalf("stats after close = %+v, want the partial batch flushed", st)
	}
	if err := ses.Push(obs[0]); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Push after close = %v, want ErrSessionClosed", err)
	}
	if err := ses.Ask(items[0]); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Ask after close = %v, want ErrSessionClosed", err)
	}
	if err := ses.Flush(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Flush after close = %v, want ErrSessionClosed", err)
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if err := ses.Err(); err != nil {
		t.Fatalf("Err after clean close = %v, want nil", err)
	}
}

// TestSessionContextCancel: cancelling the session context terminates the
// pump, closes Results and surfaces the cause through Err.
func TestSessionContextCancel(t *testing.T) {
	eng, obs, _ := sessionTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	ses := NewSession(ctx, eng, WithSessionBatch(1024))
	if err := ses.Push(obs[0]); err != nil {
		t.Fatalf("Push: %v", err)
	}
	cancel()
	for range ses.Results() {
	}
	if err := ses.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	if err := ses.Push(obs[0]); !errors.Is(err, context.Canceled) && !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Push after cancel = %v", err)
	}
}

// TestSessionFlushBarrier: Flush admits the pending batch synchronously.
func TestSessionFlushBarrier(t *testing.T) {
	eng, obs, _ := sessionTestEngine(t)
	ses := NewSession(context.Background(), eng, WithSessionBatch(1024))
	defer ses.Close()
	go func() {
		for range ses.Results() {
		}
	}()
	for _, o := range obs[:7] {
		if err := ses.Push(o); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	if err := ses.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if st := ses.Stats(); st.Admitted != 7 || st.Batches != 1 {
		t.Fatalf("stats after flush = %+v, want 7 admitted in 1 batch", st)
	}
}

// TestSessionSharedHammer drives ONE session from concurrent pushers and
// askers under -race: commands must serialize without loss, every ask must
// be answered, and the counters must add up.
func TestSessionSharedHammer(t *testing.T) {
	eng, obs, items := sessionTestEngine(t)
	ses := NewSession(context.Background(), eng, WithSessionBatch(32))

	const pushers, askers, perWorker = 4, 3, 40
	var answered int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range ses.Results() {
			answered++
			if r.Err != nil {
				t.Errorf("ask %s failed: %v", r.ItemID, r.Err)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < pushers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := ses.Push(obs[(w*perWorker+i)%len(obs)]); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < askers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := ses.Ask(items[(w+i)%len(items)], WithK(3)); err != nil {
					t.Errorf("Ask: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ses.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-done
	if want := askers * perWorker; answered != want {
		t.Fatalf("answered %d asks, want %d", answered, want)
	}
	st := ses.Stats()
	if st.Pushed != pushers*perWorker || st.Admitted+st.Rejected != st.Pushed {
		t.Fatalf("stats = %+v, want %d pushed and admitted+rejected to match", st, pushers*perWorker)
	}
}
