package core

import (
	"bytes"
	"reflect"
	"testing"
)

// cloneTrained trains one engine and clones it n times through the
// snapshot round-trip, so every arm starts from bit-identical state (the
// same trick the shard conformance suite uses).
func cloneTrained(t *testing.T, n int) (*Engine, []*Engine) {
	t.Helper()
	ds := testDataset(t)
	src := trainedEngine(t, ds, nil)
	var buf bytes.Buffer
	if err := src.SaveTo(&buf); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	arms := make([]*Engine, n)
	for i := range arms {
		e, err := LoadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("LoadFrom: %v", err)
		}
		arms[i] = e
	}
	return src, arms
}

// TestMaskedRefreshMatchesFullEngine is the engine-level exactness pin:
// three arms boot from one snapshot — reference (FullRefresh), masked
// (default), masked+incremental-fold — replay the same interaction stream
// observation by observation (UpdateBatch default: flush per observe), and
// must answer every query bit-identically throughout.
func TestMaskedRefreshMatchesFullEngine(t *testing.T) {
	ds := testDataset(t)
	_, arms := cloneTrained(t, 3)
	ref, masked, folded := arms[0], arms[1], arms[2]
	ref.SetFullRefresh(true)
	folded.SetIncrementalFold(true)

	parts := ds.Partition(6)
	stream := parts[2][:min(300, len(parts[2]))]
	queries := parts[3][:min(40, len(parts[3]))]

	check := func(step int) {
		for _, ir := range queries {
			v, ok := ds.Item(ir.ItemID)
			if !ok {
				continue
			}
			want := ref.Recommend(v, 10)
			if got := masked.Recommend(v, 10); !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d item %s: masked diverged\n got %v\nwant %v", step, v.ID, got, want)
			}
			if got := folded.Recommend(v, 10); !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d item %s: incremental fold diverged\n got %v\nwant %v", step, v.ID, got, want)
			}
		}
	}
	for i, ir := range stream {
		v, ok := ds.Item(ir.ItemID)
		if !ok {
			continue
		}
		ref.Observe(ir, v)
		masked.Observe(ir, v)
		folded.Observe(ir, v)
		if i%75 == 0 {
			check(i)
		}
	}
	check(len(stream))

	// Turning the fold off must clear the cached forward states and fall
	// back to full replays — still bit-identical.
	folded.SetIncrementalFold(false)
	for _, ir := range parts[4][:min(50, len(parts[4]))] {
		if v, ok := ds.Item(ir.ItemID); ok {
			ref.Observe(ir, v)
			masked.Observe(ir, v)
			folded.Observe(ir, v)
		}
	}
	check(-1)
	if n := ref.RefreshErrors() + masked.RefreshErrors() + folded.RefreshErrors(); n != 0 {
		t.Fatalf("refresh errors during clean replay: %d", n)
	}
}

// TestRefreshErrorsSurfaced forces the previously-swallowed error path:
// a user is marked dirty, then vanishes from the store before the batched
// flush runs. The flush must count the failure in RefreshErrors, exclude
// the user from the applied count, and keep serving.
func TestRefreshErrorsSurfaced(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, func(c *Config) { c.UpdateBatch = 10_000 })
	parts := ds.Partition(6)
	ir := parts[2][0]
	v, ok := ds.Item(ir.ItemID)
	if !ok {
		t.Fatal("query item missing")
	}
	eng.Observe(ir, v) // marks ir.UserID dirty; UpdateBatch keeps it pending
	eng.Store().Remove(ir.UserID)
	if n := eng.FlushUpdates(); n != 0 {
		t.Errorf("flush applied %d users, want 0 (the only dirty user errored)", n)
	}
	if got := eng.RefreshErrors(); got != 1 {
		t.Fatalf("RefreshErrors = %d, want 1", got)
	}
	// Surfaced through the stats view (and hence /v2/stats).
	if got := WrapSafe(eng).IndexStats().RefreshErrors; got != 1 {
		t.Fatalf("IndexStats().RefreshErrors = %d, want 1", got)
	}
	// The engine keeps serving.
	if recs := eng.Recommend(v, 5); recs == nil {
		t.Error("engine stopped serving after refresh error")
	}
	// A healthy dirty user still counts toward the applied figure.
	ir2 := parts[2][1]
	if ir2.UserID == ir.UserID {
		ir2 = parts[2][2]
	}
	if v2, ok := ds.Item(ir2.ItemID); ok {
		eng.Observe(ir2, v2)
		if n := eng.FlushUpdates(); n != 1 {
			t.Errorf("flush applied %d users, want 1", n)
		}
	}
	if got := eng.RefreshErrors(); got != 1 {
		t.Errorf("RefreshErrors = %d after healthy flush, want still 1", got)
	}
}

// TestFullRefreshSetter covers the escape hatch: flipping FullRefresh at
// runtime routes flushes through the rebuild-everything path and back.
func TestFullRefreshSetter(t *testing.T) {
	ds := testDataset(t)
	_, arms := cloneTrained(t, 2)
	ref, eng := arms[0], arms[1]
	ref.SetFullRefresh(true)
	parts := ds.Partition(6)

	toggle := true
	for _, ir := range parts[2][:min(120, len(parts[2]))] {
		v, ok := ds.Item(ir.ItemID)
		if !ok {
			continue
		}
		ref.Observe(ir, v)
		eng.SetFullRefresh(toggle)
		toggle = !toggle
		eng.Observe(ir, v)
	}
	for _, ir := range parts[3][:min(30, len(parts[3]))] {
		v, ok := ds.Item(ir.ItemID)
		if !ok {
			continue
		}
		want := ref.Recommend(v, 10)
		if got := eng.Recommend(v, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("item %s: toggled engine diverged\n got %v\nwant %v", v.ID, got, want)
		}
	}
}
