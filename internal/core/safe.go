package core

import (
	"sync"

	"ssrec/internal/model"
	"ssrec/internal/sigtree"
)

// SafeEngine is a mutex-guarded wrapper around Engine for concurrent
// callers (e.g. the HTTP server or a multi-goroutine topology). Engine
// itself is deliberately single-threaded — queries mutate shared state
// (item registration, batched maintenance, prediction caches), so a single
// exclusive lock is the honest concurrency contract.
type SafeEngine struct {
	mu  sync.Mutex
	eng *Engine
}

// NewSafe wraps a fresh Engine built from cfg.
func NewSafe(cfg Config) *SafeEngine {
	return &SafeEngine{eng: New(cfg)}
}

// WrapSafe wraps an existing Engine. The caller must stop using the inner
// engine directly afterwards.
func WrapSafe(e *Engine) *SafeEngine { return &SafeEngine{eng: e} }

// Name implements the Recommender interface.
func (s *SafeEngine) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Name()
}

// Train bootstraps the inner engine.
func (s *SafeEngine) Train(items []model.Item, interactions []model.Interaction, resolve func(string) (model.Item, bool)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Train(items, interactions, resolve)
}

// Observe implements the Recommender interface.
func (s *SafeEngine) Observe(ir model.Interaction, v model.Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng.Observe(ir, v)
}

// Recommend implements the Recommender interface.
func (s *SafeEngine) Recommend(v model.Item, k int) []model.Recommendation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Recommend(v, k)
}

// RecommendStats mirrors Engine.RecommendStats.
func (s *SafeEngine) RecommendStats(v model.Item, k int) ([]model.Recommendation, sigtree.SearchStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.RecommendStats(v, k)
}

// RegisterItem mirrors Engine.RegisterItem.
func (s *SafeEngine) RegisterItem(v model.Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng.RegisterItem(v)
}

// FlushUpdates mirrors Engine.FlushUpdates.
func (s *SafeEngine) FlushUpdates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.FlushUpdates()
}

// Users returns the number of known profiles.
func (s *SafeEngine) Users() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Store().Len()
}

// IndexStats snapshots the index statistics (zero value before Train).
func (s *SafeEngine) IndexStats() (stats IndexStatsView) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix := s.eng.Index()
	if ix == nil {
		return stats
	}
	st := ix.Stats()
	return IndexStatsView{
		Blocks:   st.Blocks,
		Trees:    st.Trees,
		Users:    st.Users,
		HashKeys: st.HashKeys,
	}
}

// IndexStatsView is the concurrency-safe subset of cppse.IndexStats.
type IndexStatsView struct {
	Blocks   int
	Trees    int
	Users    int
	HashKeys int
}
