package core

import (
	"context"

	"ssrec/internal/model"
	"ssrec/internal/sigtree"
)

// SafeEngine is a compatibility wrapper from when Engine was
// single-threaded. Engine now carries its own RWMutex — overlapping
// Recommend calls run concurrently under the read lock while
// Observe/FlushUpdates/Train serialize on the write lock (see the Engine
// locking contract) — so SafeEngine is a thin delegate kept for callers
// like the HTTP server that were built against it.
type SafeEngine struct {
	eng *Engine
}

// NewSafe wraps a fresh Engine built from cfg.
func NewSafe(cfg Config) *SafeEngine {
	return &SafeEngine{eng: New(cfg)}
}

// WrapSafe wraps an existing Engine. Unlike before, the caller may keep
// using the inner engine's synchronized surface (Train, Observe,
// Recommend, ...) directly — both views share the same lock. The raw
// component accessors (Store, Index, Expander, ProducerLayer) remain
// unsynchronized and must not race with serving; see the Engine locking
// contract.
func WrapSafe(e *Engine) *SafeEngine { return &SafeEngine{eng: e} }

// Name implements the Recommender interface.
func (s *SafeEngine) Name() string { return s.eng.Name() }

// Train bootstraps the inner engine.
func (s *SafeEngine) Train(items []model.Item, interactions []model.Interaction, resolve func(string) (model.Item, bool)) error {
	return s.eng.Train(items, interactions, resolve)
}

// Observe implements the Recommender interface.
func (s *SafeEngine) Observe(ir model.Interaction, v model.Item) {
	s.eng.Observe(ir, v)
}

// Recommend implements the Recommender interface.
func (s *SafeEngine) Recommend(v model.Item, k int) []model.Recommendation {
	return s.eng.Recommend(v, k)
}

// RecommendStats mirrors Engine.RecommendStats.
func (s *SafeEngine) RecommendStats(v model.Item, k int) ([]model.Recommendation, sigtree.SearchStats) {
	return s.eng.RecommendStats(v, k)
}

// RecommendCtx mirrors Engine.RecommendCtx (v2 single-item query).
func (s *SafeEngine) RecommendCtx(ctx context.Context, v model.Item, opts ...Option) (Result, error) {
	return s.eng.RecommendCtx(ctx, v, opts...)
}

// RecommendBatch mirrors Engine.RecommendBatch (v2 multi-item query).
func (s *SafeEngine) RecommendBatch(ctx context.Context, items []model.Item, opts ...Option) ([]Result, error) {
	return s.eng.RecommendBatch(ctx, items, opts...)
}

// ObserveBatch mirrors Engine.ObserveBatch (v2 micro-batched ingestion).
func (s *SafeEngine) ObserveBatch(ctx context.Context, batch []Observation) (BatchReport, error) {
	return s.eng.ObserveBatch(ctx, batch)
}

// Parallelism mirrors Engine.Parallelism.
func (s *SafeEngine) Parallelism() int { return s.eng.Parallelism() }

// RegisterItem mirrors Engine.RegisterItem.
func (s *SafeEngine) RegisterItem(v model.Item) {
	s.eng.RegisterItem(v)
}

// FlushUpdates mirrors Engine.FlushUpdates.
func (s *SafeEngine) FlushUpdates() int {
	return s.eng.FlushUpdates()
}

// Users returns the number of known profiles.
func (s *SafeEngine) Users() int { return s.eng.Users() }

// IndexStats snapshots the index statistics (zero value before Train;
// RefreshErrors is engine-level and reported regardless).
func (s *SafeEngine) IndexStats() (stats IndexStatsView) {
	stats.RefreshErrors = s.eng.RefreshErrors()
	st, ok := s.eng.IndexStats()
	if !ok {
		return stats
	}
	stats.Blocks = st.Blocks
	stats.Trees = st.Trees
	stats.Users = st.Users
	stats.HashKeys = st.HashKeys
	return stats
}

// IndexStatsView is the concurrency-safe subset of cppse.IndexStats, plus
// the engine-level refresh-error counter.
type IndexStatsView struct {
	Blocks   int
	Trees    int
	Users    int
	HashKeys int
	// RefreshErrors counts failed index refreshes (Engine.RefreshErrors).
	RefreshErrors int64
}
