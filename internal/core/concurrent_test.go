package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"ssrec/internal/dataset"
	"ssrec/internal/model"
)

// streamEngine bootstraps a small engine on a generated stream and
// returns it together with the held-out items/interactions for replay.
func streamEngine(t testing.TB, cfg Config) (*Engine, []model.Item, []model.Interaction) {
	t.Helper()
	ds := dataset.Generate(dataset.YTubeConfig(0.1))
	cfg.Categories = ds.Categories
	if cfg.TrainMaxIter == 0 {
		cfg.TrainMaxIter = 3
	}
	if cfg.Restarts == 0 {
		cfg.Restarts = 1
	}
	e := New(cfg)
	n := len(ds.Interactions) / 3
	if err := e.Train(ds.Items, ds.Interactions[:n], ds.Item); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return e, ds.Items, ds.Interactions[n:]
}

// TestConcurrentRecommendObserve hammers overlapping Recommend calls
// against a concurrent Observe/FlushUpdates writer — the contract the
// RWMutex serves. Run with -race.
func TestConcurrentRecommendObserve(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", parallelism), func(t *testing.T) {
			e, items, irs := streamEngine(t, Config{UpdateBatch: 4, Parallelism: parallelism})
			byID := make(map[string]model.Item, len(items))
			for _, v := range items {
				byID[v.ID] = v
			}
			const readers = 6
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := r; i < len(items); i += readers {
						recs := e.Recommend(items[i], 10)
						for j := 1; j < len(recs); j++ {
							if model.ByScoreDesc(recs[j], recs[j-1]) {
								t.Errorf("unsorted result under concurrency: %v", recs)
								return
							}
						}
					}
				}(r)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, ir := range irs {
					if v, ok := byID[ir.ItemID]; ok {
						e.Observe(ir, v)
					}
					if i%50 == 0 {
						e.FlushUpdates()
						e.Users()
						e.IndexStats()
					}
				}
			}()
			wg.Wait()
		})
	}
}

// TestParallelismConfigEquivalence runs the identical stream through a
// sequential and a parallel engine: every recommendation list must be
// bit-identical (the engine-level statement of the SearchParallel
// determinism contract).
func TestParallelismConfigEquivalence(t *testing.T) {
	seqEng, items, irs := streamEngine(t, Config{})
	parEng, _, _ := streamEngine(t, Config{Parallelism: 4})
	byID := make(map[string]model.Item, len(items))
	for _, v := range items {
		byID[v.ID] = v
	}
	checked := 0
	for i, ir := range irs {
		v, ok := byID[ir.ItemID]
		if !ok {
			continue
		}
		if i%7 == 0 {
			seq := seqEng.Recommend(v, 10)
			par := parEng.Recommend(v, 10)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("item %s: sequential and parallel engines diverged\n seq %v\n par %v", v.ID, seq, par)
			}
			checked++
		}
		seqEng.Observe(ir, v)
		parEng.Observe(ir, v)
	}
	if checked == 0 {
		t.Fatal("no items checked")
	}
}
