package core

import (
	"testing"

	"ssrec/internal/baseline"
	"ssrec/internal/dataset"
	"ssrec/internal/model"
)

func testDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	cfg := dataset.YTubeConfig(0.25)
	cfg.Seed = 5
	return dataset.Generate(cfg)
}

func trainedEngine(t testing.TB, ds *dataset.Dataset, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := Config{
		Categories:   ds.Categories,
		TrainMaxIter: 6,
		Restarts:     1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng := New(cfg)
	parts := ds.Partition(6)
	var train []model.Interaction
	train = append(train, parts[0]...)
	train = append(train, parts[1]...)
	if err := eng.Train(ds.Items, train, ds.Item); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return eng
}

func TestTrainBuildsEverything(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)
	if eng.Index() == nil {
		t.Fatal("no index")
	}
	if eng.ProducerLayer() == nil || eng.ProducerLayer().TrainedProducers() == 0 {
		t.Fatal("producer layer not trained")
	}
	if eng.Store().Len() == 0 {
		t.Fatal("no profiles")
	}
	if eng.Expander().Categories() == 0 {
		t.Fatal("expander saw nothing")
	}
	s := eng.Index().Stats()
	if s.Users != eng.Store().Len() {
		t.Errorf("index has %d users, store %d", s.Users, eng.Store().Len())
	}
}

func TestTrainRequiresCategories(t *testing.T) {
	eng := New(Config{})
	if err := eng.Train(nil, nil, func(string) (model.Item, bool) { return model.Item{}, false }); err == nil {
		t.Fatal("Train accepted empty categories")
	}
}

func TestRecommendReturnsRankedUsers(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)
	parts := ds.Partition(6)
	tested, nonEmpty := 0, 0
	for _, ir := range parts[2][:min(200, len(parts[2]))] {
		v, ok := ds.Item(ir.ItemID)
		if !ok {
			continue
		}
		recs := eng.Recommend(v, 10)
		tested++
		if len(recs) > 0 {
			nonEmpty++
			for i := 1; i < len(recs); i++ {
				if recs[i].Score > recs[i-1].Score {
					t.Fatalf("results not sorted: %v", recs)
				}
			}
			if len(recs) > 10 {
				t.Fatalf("more than k results: %d", len(recs))
			}
		}
	}
	if tested == 0 || nonEmpty*2 < tested {
		t.Errorf("only %d/%d items produced recommendations", nonEmpty, tested)
	}
}

func TestRecommendUntrained(t *testing.T) {
	eng := New(Config{Categories: []string{"a"}})
	if got := eng.Recommend(model.Item{ID: "x", Category: "a"}, 5); got != nil {
		t.Fatalf("recommendations before Train: %v", got)
	}
}

func TestRecommendMatchesScan(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)
	parts := ds.Partition(6)
	checked := 0
	for _, ir := range parts[2][:min(60, len(parts[2]))] {
		v, ok := ds.Item(ir.ItemID)
		if !ok {
			continue
		}
		got, _ := eng.RecommendStats(v, 10)
		want := eng.RecommendScan(v, 10)
		if len(got) != len(want) {
			t.Fatalf("item %s: %d vs %d results", v.ID, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("item %s rank %d: %v vs %v", v.ID, i, got[i], want[i])
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestObserveUpdatesState(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)
	parts := ds.Partition(6)
	u := parts[2][0].UserID
	p, ok := eng.Store().Lookup(u)
	if !ok {
		t.Fatalf("user %s missing", u)
	}
	before := p.TotalLen()
	for _, ir := range parts[2][:min(100, len(parts[2]))] {
		if v, ok := ds.Item(ir.ItemID); ok {
			eng.Observe(ir, v)
		}
	}
	if p.TotalLen() <= before {
		t.Errorf("profile did not grow: %d -> %d", before, p.TotalLen())
	}
}

func TestDisableUpdatesFreezesProfiles(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, func(c *Config) { c.DisableUpdates = true })
	if eng.Name() != "ssRec-nu" {
		t.Fatalf("Name = %s", eng.Name())
	}
	parts := ds.Partition(6)
	u := parts[2][0].UserID
	p, _ := eng.Store().Lookup(u)
	before := p.TotalLen()
	for _, ir := range parts[2][:min(100, len(parts[2]))] {
		if v, ok := ds.Item(ir.ItemID); ok {
			eng.Observe(ir, v)
		}
	}
	if p.TotalLen() != before {
		t.Errorf("frozen profile grew: %d -> %d", before, p.TotalLen())
	}
}

func TestDisableExpansionName(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, func(c *Config) { c.DisableExpansion = true })
	if eng.Name() != "ssRec-ne" {
		t.Fatalf("Name = %s", eng.Name())
	}
	// Query must carry only the item's own entities at weight 1.
	v := ds.Items[0]
	q := eng.BuildQuery(v)
	if len(q.Entities) != len(v.Entities) {
		t.Errorf("expansion leaked: %d entities for item with %d", len(q.Entities), len(v.Entities))
	}
}

func TestExpansionEnlargesQuery(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)
	grew := false
	for _, v := range ds.Items[:50] {
		if len(eng.BuildQuery(v).Entities) > len(v.Entities) {
			grew = true
			break
		}
	}
	if !grew {
		t.Error("expansion never added entities over 50 items")
	}
}

func TestRegisterItemAssignsZ(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)
	// A fresh item from an existing (trained) producer gets a real state.
	var up string
	for _, v := range ds.Items {
		if eng.ProducerLayer().Model(v.Producer) != nil {
			up = v.Producer
			break
		}
	}
	if up == "" {
		t.Skip("no trained producer in tiny dataset")
	}
	v := model.Item{ID: "fresh-item", Category: ds.Categories[0], Producer: up,
		Entities: []string{"whatever"}}
	eng.RegisterItem(v)
	obs := eng.obsFor(v)
	if obs.Z < 0 {
		t.Errorf("fresh item from trained producer got Z=%d", obs.Z)
	}
	// Idempotent.
	eng.RegisterItem(v)
}

func TestObserveNewUserJoinsIndex(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)
	v := ds.Items[0]
	ir := model.Interaction{UserID: "brand-new-user", ItemID: v.ID, Timestamp: v.Timestamp + 10}
	eng.Observe(ir, v)
	if _, ok := eng.Index().BlockOf("brand-new-user"); !ok {
		t.Fatal("new user not assigned to a block")
	}
}

func TestEngineImplementsRecommender(t *testing.T) {
	var _ baseline.Recommender = (*Engine)(nil)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkEngineRecommend(b *testing.B) {
	ds := testDataset(b)
	eng := trainedEngine(b, ds, nil)
	items := ds.Items
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Recommend(items[i%len(items)], 30)
	}
}

func BenchmarkEngineObserve(b *testing.B) {
	ds := testDataset(b)
	eng := trainedEngine(b, ds, nil)
	irs := ds.Interactions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir := irs[i%len(irs)]
		if v, ok := ds.Item(ir.ItemID); ok {
			eng.Observe(ir, v)
		}
	}
}

func TestAutoSelectStates(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, func(c *Config) {
		c.AutoSelectStates = true
		c.ConsumerStates = 3
		c.MinConsumerHistory = 8
	})
	if eng.ConsumerModelCount() == 0 {
		t.Fatal("auto selection trained no consumer models")
	}
	// The engine must still answer queries normally.
	recs := eng.Recommend(ds.Items[len(ds.Items)-1], 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations with auto-selected models")
	}
}
