package core

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ssrec/internal/bihmm"
	"ssrec/internal/cppse"
	"ssrec/internal/entity"
	"ssrec/internal/model"
	"ssrec/internal/profile"
)

// engineSnapshot is the on-disk form of a trained Engine: every learned
// component plus the raw profile state. The bulk of the CPPse-index is
// NOT serialised — universes, trees, leaves and the hash table are pure
// functions of the profile/model state and are rebuilt on load, which
// keeps the wire format small and forward-compatible with index-layout
// changes. The one exception is Index: the block clustering and user →
// block assignments are path-dependent (one-pass clustering over the
// profiles as they were at build time, plus incremental nearest-centroid
// assignments since), so they ride along and pin the rebuild. A nil
// Index (snapshots written before the field existed) falls back to
// re-clustering from the restored profiles.
type engineSnapshot struct {
	Config      Config
	Profiles    []profile.Snapshot
	Background  profile.BackgroundSnapshot
	Expander    entity.ExpanderSnapshot
	Producers   bihmm.LayerSnapshot
	ConsumerObs map[string][]bihmm.Obs
	Consumers   map[string]*bihmm.BHMM
	Population  *bihmm.BHMM
	ItemZ       map[string]int
	ProdPos     map[string]int
	Index       *cppse.State
}

// SaveTo serialises the trained engine as gzip-compressed gob. It returns
// an error if the engine has not been trained.
func (e *Engine) SaveTo(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.trained {
		return fmt.Errorf("core: cannot save an untrained engine")
	}
	e.flushUpdatesLocked()
	snap := engineSnapshot{
		Config:      e.cfg,
		Background:  e.bg.Snapshot(),
		Expander:    e.expander.Snapshot(),
		Producers:   e.producers.Snapshot(),
		ConsumerObs: e.consumerObs,
		Consumers:   e.consumers,
		Population:  e.population,
		ItemZ:       e.itemZ,
		ProdPos:     e.prodPos,
	}
	if e.index != nil {
		st := e.index.State()
		snap.Index = &st
	}
	e.store.Each(func(p *profile.Profile) {
		snap.Profiles = append(snap.Profiles, p.Snapshot())
	})
	gz := gzip.NewWriter(w)
	if err := gob.NewEncoder(gz).Encode(snap); err != nil {
		return fmt.Errorf("core: encode engine: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("core: gzip close: %w", err)
	}
	return nil
}

// LoadFrom deserialises an engine previously written by SaveTo and rebuilds
// the CPPse-index, returning a ready-to-serve engine.
func LoadFrom(r io.Reader) (*Engine, error) {
	return loadFrom(r, func(*Config) {})
}

// LoadShardFrom deserialises a snapshot as shard idx of an n-way
// deployment: identical restored state, but the rebuilt index materialises
// leaves only for the owned user block. This is how every shard of a local
// or remote deployment boots from ONE shared snapshot (shard.FromSnapshot)
// without paying the index build twice.
func LoadShardFrom(r io.Reader, idx, n int) (*Engine, error) {
	if n > 1 && (idx < 0 || idx >= n) {
		return nil, fmt.Errorf("core: shard index %d out of range [0,%d)", idx, n)
	}
	return loadFrom(r, func(c *Config) {
		c.ShardIndex, c.ShardCount = idx, n
		c.Partition = model.Partition{}
	})
}

// LoadPartitionFrom deserialises a snapshot as shard idx of a deployment
// partitioned by the versioned block table p — the boot path of an online
// reshard: any healthy shard's snapshot (it carries the complete
// replicated state) seeds any slot of the NEW epoch, rebuilding only the
// leaves p assigns to idx. The snapshot's own shard identity is
// overridden entirely.
func LoadPartitionFrom(r io.Reader, idx int, p model.Partition) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= p.Shards {
		return nil, fmt.Errorf("core: shard index %d out of range [0,%d)", idx, p.Shards)
	}
	return loadFrom(r, func(c *Config) {
		c.ShardIndex, c.ShardCount = idx, p.Shards
		c.Partition = p
	})
}

func loadFrom(r io.Reader, reconfig func(*Config)) (*Engine, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: gzip open: %w", err)
	}
	defer gz.Close()
	var snap engineSnapshot
	if err := gob.NewDecoder(gz).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode engine: %w", err)
	}
	reconfig(&snap.Config)

	e := New(snap.Config)
	e.bg = profile.BackgroundFromSnapshot(snap.Background)
	e.expander = entity.ExpanderFromSnapshot(snap.Expander)
	e.producers = bihmm.LayerFromSnapshot(snap.Producers)
	e.consumerObs = snap.ConsumerObs
	if e.consumerObs == nil {
		e.consumerObs = make(map[string][]bihmm.Obs)
	}
	e.consumers = snap.Consumers
	if e.consumers == nil {
		e.consumers = make(map[string]*bihmm.BHMM)
	}
	e.population = snap.Population
	e.itemZ = snap.ItemZ
	if e.itemZ == nil {
		e.itemZ = make(map[string]int)
	}
	e.prodPos = snap.ProdPos
	if e.prodPos == nil {
		e.prodPos = make(map[string]int)
	}
	for _, ps := range snap.Profiles {
		restored := profile.FromSnapshot(ps)
		*e.store.Get(ps.UserID) = *restored
	}
	if snap.Index != nil {
		ix, err := buildIndexFromState(e, *snap.Index)
		if err != nil {
			return nil, err
		}
		e.index = ix
		e.predCache = make(map[string]*predEntry)
		e.fwdCache = make(map[string]*fwdEntry)
	} else if err := e.rebuildIndex(); err != nil {
		return nil, err
	}
	e.trained = true
	return e, nil
}

// rebuildIndex reconstructs the CPPse-index from the current profile and
// model state (used after LoadFrom, and available for periodic
// re-clustering).
func (e *Engine) rebuildIndex() error {
	ix, err := buildIndex(e)
	if err != nil {
		return err
	}
	e.index = ix
	e.predCache = make(map[string]*predEntry)
	e.fwdCache = make(map[string]*fwdEntry)
	return nil
}

// RebuildIndex re-clusters users and rebuilds the index from scratch —
// periodic maintenance for when incremental block assignment has drifted
// far from the one-pass clustering optimum.
func (e *Engine) RebuildIndex() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.trained {
		return fmt.Errorf("core: engine not trained")
	}
	e.flushUpdatesLocked()
	return e.rebuildIndex()
}

// SaveFile / LoadFile are path-based conveniences.
func (e *Engine) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: create %s: %w", path, err)
	}
	bw := bufio.NewWriter(f)
	if err := e.SaveTo(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("core: flush %s: %w", path, err)
	}
	return f.Close()
}

// LoadFile reads an engine from path.
func LoadFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", path, err)
	}
	defer f.Close()
	return LoadFrom(bufio.NewReader(f))
}
