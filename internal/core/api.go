// api.go is the engine's v2 service contract: context-aware, batch-first
// calls with structured errors and functional options.
//
//   - RecommendCtx / RecommendBatch serve top-k queries with per-call
//     options (WithK, WithParallelism, WithoutExpansion), sentinel errors
//     (ErrNotTrained, ErrUnknownCategory) and ctx cancellation propagated
//     into the sigtree search loop.
//   - ObserveBatch ingests a micro-batch of interactions under ONE write
//     lock acquisition and ONE index flush, amortising the per-interaction
//     locking of Observe so writers don't starve the read path under heavy
//     streams (the ROADMAP's batched-ingestion item).
//
// The v1 methods (Recommend, Observe, ...) remain as thin equivalents —
// same results, no error reporting — for existing callers.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"ssrec/internal/model"
	"ssrec/internal/ranking"
	"ssrec/internal/sigtree"
	"ssrec/internal/telemetry"
)

// Sentinel errors of the v2 API. Wrap-aware callers match with errors.Is.
var (
	// ErrNotTrained is returned when a query arrives before Train.
	ErrNotTrained = errors.New("ssrec: engine not trained")
	// ErrUnknownCategory marks an item whose category is outside the
	// engine's configured universe: no tree can ever match it.
	ErrUnknownCategory = errors.New("ssrec: unknown category")
	// ErrInvalidObservation marks a batch entry that failed validation
	// (missing user or item ID) and was skipped.
	ErrInvalidObservation = errors.New("ssrec: invalid observation")
)

// QueryOptions collects the per-call knobs of RecommendCtx/RecommendBatch.
// Construct it through Option values; the zero value means "engine
// defaults" (k=10, configured parallelism, configured expansion).
type QueryOptions struct {
	// K is the result size. <= 0 takes DefaultK.
	K int
	// Parallelism overrides Config.Parallelism for this call when > 0.
	Parallelism int
	// NoExpansion disables entity expansion for this call only (the
	// per-query form of Config.DisableExpansion).
	NoExpansion bool
}

// DefaultK is the result size when no WithK option is given.
const DefaultK = 10

// Option mutates QueryOptions — the functional-options pattern of the v2
// query surface.
type Option func(*QueryOptions)

// WithK sets the number of users to return.
func WithK(k int) Option { return func(o *QueryOptions) { o.K = k } }

// WithParallelism overrides the partitioned-search worker count for this
// call only; n <= 0 keeps the engine's configured value.
func WithParallelism(n int) Option { return func(o *QueryOptions) { o.Parallelism = n } }

// WithoutExpansion disables proximity entity expansion for this call.
func WithoutExpansion() Option { return func(o *QueryOptions) { o.NoExpansion = true } }

func applyOptions(opts []Option) QueryOptions {
	var o QueryOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.K <= 0 {
		o.K = DefaultK
	}
	return o
}

// ResolveOptions folds Option values into the concrete QueryOptions an
// engine call would use (defaults applied). The shard router resolves
// options once and forwards the plain struct to every shard — QueryOptions
// is wire-encodable, a []Option is not.
func ResolveOptions(opts ...Option) QueryOptions { return applyOptions(opts) }

// Result is one item's answer from the v2 query surface.
type Result struct {
	ItemID          string
	Recommendations []model.Recommendation
	Stats           sigtree.SearchStats
	// Err is the per-item error inside a batch (nil on success). Batch
	// calls report item-scoped failures here and reserve their error
	// return for call-scoped failures (cancellation, untrained engine).
	Err error
}

// RecommendCtx is the v2 single-item query: top-k users for an incoming
// item with per-call options, structured errors and cooperative
// cancellation (ctx is polled inside the branch-and-bound search loop).
// Results are identical to Recommend(v, k) for a trained engine, a known
// category and a never-cancelled context.
func (e *Engine) RecommendCtx(ctx context.Context, v model.Item, opts ...Option) (Result, error) {
	o := applyOptions(opts)
	return e.recommendOne(ctx, v, o, nil)
}

// RecommendBound is the shard-local leg of a scatter-gather query: the
// same search as RecommendCtx, but pruning against — and raising — the
// deployment-wide bound shared by every shard answering this item. The
// returned list covers only the users this engine's index owns; the
// router merges the per-shard lists (sigtree.MergeTopK). K must already
// be resolved in o (use ResolveOptions).
func (e *Engine) RecommendBound(ctx context.Context, v model.Item, o QueryOptions, b *sigtree.Bound) (Result, error) {
	if o.K <= 0 {
		o.K = DefaultK
	}
	return e.recommendOne(ctx, v, o, b)
}

func (e *Engine) recommendOne(ctx context.Context, v model.Item, o QueryOptions, b *sigtree.Bound) (Result, error) {
	res := Result{ItemID: v.ID}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return res, err
		}
	}
	if !e.queryPrologue(v) {
		return res, ErrNotTrained
	}
	defer e.mu.RUnlock()
	if _, ok := e.catIdx[v.Category]; !ok {
		return res, fmt.Errorf("%w: %q", ErrUnknownCategory, v.Category)
	}
	sc := ranking.GetQueryScratch()
	defer ranking.PutQueryScratch(sc)
	q := e.buildQueryScratch(sc, v, o.NoExpansion)
	span := telemetry.LeafSpan(ctx, "sigtree.search")
	recs, stats, err := e.index.RecommendBound(ctx, q, o.K, o.Parallelism, b)
	span.SetAttr("item", v.ID)
	span.SetAttr("nodes", strconv.Itoa(stats.NodesVisited))
	span.SetAttr("scored", strconv.Itoa(stats.EntriesScored))
	span.End()
	res.Recommendations, res.Stats = recs, stats
	return res, err
}

// RecommendBatch answers many items in one call: unseen items are
// registered and pending maintenance flushed under a single write-lock
// upgrade, then the queries fan out across GOMAXPROCS workers on the read
// lock. results[i] corresponds to items[i]; item-scoped failures (unknown
// category) land in results[i].Err while the call-scoped error reports
// cancellation (ctx.Err()) or ErrNotTrained. On cancellation every
// undispatched item is marked with ctx.Err() and partial results are
// returned.
func (e *Engine) RecommendBatch(ctx context.Context, items []model.Item, opts ...Option) ([]Result, error) {
	o := applyOptions(opts)
	results := make([]Result, len(items))
	if len(items) == 0 {
		return results, nil
	}
	if !e.Trained() {
		for i := range results {
			results[i] = Result{ItemID: items[i].ID, Err: ErrNotTrained}
		}
		return results, ErrNotTrained
	}
	// Amortised prologue: ONE write-lock upgrade registers every unseen
	// item (in batch order) and flushes pending maintenance, so the
	// per-item queryPrologue stays on its read-locked fast path. The shard
	// router broadcasts this same prologue; both paths share
	// RegisterItemBatch so their semantics cannot drift.
	e.RegisterItemBatch(items)

	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				res, err := e.recommendOne(ctx, items[i], o, nil)
				if err != nil {
					res.Err = err
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return results, err
		}
	}
	return results, nil
}

// RegisterItemBatch registers many items under ONE write lock, in batch
// order, then flushes pending index maintenance — the deterministic batch
// prologue of RecommendBatch, exposed so the shard router can broadcast it
// to every shard before scattering a query batch (concurrent per-item
// registration would advance the producer layer in nondeterministic order
// and the shards would drift apart). A fully warmed batch takes only the
// read lock.
//
// The return reports whether any PREVIOUSLY-UNSEEN item was registered —
// i.e. whether the call advanced the replicated dictionaries. A warm
// batch (and a dirty-flush-only call, which is shard-local maintenance)
// reports false; the shard router uses this to decide whether an
// excluded shard that skipped the broadcast actually fell behind.
func (e *Engine) RegisterItemBatch(items []model.Item) bool {
	e.mu.RLock()
	needs := len(e.dirty) > 0
	if !needs {
		for _, v := range items {
			if _, known := e.itemZ[v.ID]; !known {
				needs = true
				break
			}
		}
	}
	e.mu.RUnlock()
	if !needs {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	changed := false
	for _, v := range items {
		if _, known := e.itemZ[v.ID]; !known {
			changed = true
		}
		e.registerItemLocked(v)
	}
	e.flushUpdatesLocked()
	return changed
}

// NeedsRegistration reports whether RegisterItemBatch(items) would
// advance the replicated dictionaries — i.e. whether any item is
// previously unseen. Read-locked and mutation-free: the durable-ingest
// backend uses it to decide whether a query batch's registration
// prologue must be logged before it is applied, so a warm batch costs
// no log record.
func (e *Engine) NeedsRegistration(items []model.Item) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, v := range items {
		if _, known := e.itemZ[v.ID]; !known {
			return true
		}
	}
	return false
}

// Observation is one user-item interaction prepared for batched ingestion.
type Observation struct {
	UserID    string
	Item      model.Item
	Timestamp int64
}

func (o Observation) interaction() model.Interaction {
	return model.Interaction{UserID: o.UserID, ItemID: o.Item.ID, Timestamp: o.Timestamp}
}

func (o Observation) validate() error {
	if o.UserID == "" {
		return fmt.Errorf("%w: empty user id", ErrInvalidObservation)
	}
	if o.Item.ID == "" {
		return fmt.Errorf("%w: empty item id", ErrInvalidObservation)
	}
	return nil
}

// ObservationError records one rejected entry of an ObserveBatch call.
type ObservationError struct {
	Index int // position in the submitted batch
	Err   error
}

// BatchReport summarises one ObserveBatch call.
type BatchReport struct {
	// Applied counts observations folded into profiles.
	Applied int
	// Rejected counts observations skipped by validation.
	Rejected int
	// Flushed counts users whose index entries were refreshed by the
	// batch's single maintenance flush.
	Flushed int
	// Errors details each rejected observation.
	Errors []ObservationError
}

// obsCtxCheckEvery is how many batch entries pass between context polls
// while the write lock is held.
const obsCtxCheckEvery = 64

// ObserveBatch ingests a micro-batch of interactions under ONE write-lock
// acquisition and ONE index maintenance flush — the amortised counterpart
// of per-interaction Observe. The final engine state is identical to
// calling Observe per entry (index maintenance is idempotent on the final
// profile state); only the locking and flush cadence differ.
//
// Invalid entries are skipped and reported in the BatchReport. When ctx
// is cancelled mid-batch the already-applied prefix is flushed (so the
// index never serves stale entries), the report covers what was applied,
// and ctx.Err() is returned. With Config.DisableUpdates the call is a
// no-op, mirroring Observe.
func (e *Engine) ObserveBatch(ctx context.Context, batch []Observation) (BatchReport, error) {
	var rep BatchReport
	if len(batch) == 0 || e.cfg.DisableUpdates {
		return rep, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, o := range batch {
		if ctx != nil && i%obsCtxCheckEvery == 0 && i > 0 {
			if err := ctx.Err(); err != nil {
				rep.Flushed = e.flushUpdatesLocked()
				return rep, err
			}
		}
		if err := o.validate(); err != nil {
			rep.Rejected++
			rep.Errors = append(rep.Errors, ObservationError{Index: i, Err: err})
			continue
		}
		e.observeLocked(o.interaction(), o.Item)
		rep.Applied++
	}
	rep.Flushed = e.flushUpdatesLocked()
	return rep, nil
}
