package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"ssrec/internal/model"
)

// TestRecommendCtxEquivalence: the v2 single-item query returns exactly
// what the v1 Recommend returns, at every option combination that keeps
// semantics unchanged.
func TestRecommendCtxEquivalence(t *testing.T) {
	e, items, _ := streamEngine(t, Config{})
	ctx := context.Background()
	tested := 0
	for _, v := range items {
		if tested >= 50 {
			break
		}
		tested++
		want := e.Recommend(v, 10)
		for _, opts := range [][]Option{
			{WithK(10)},
			{WithK(10), WithParallelism(4)},
		} {
			res, err := e.RecommendCtx(ctx, v, opts...)
			if err != nil {
				t.Fatalf("RecommendCtx(%s): %v", v.ID, err)
			}
			if res.ItemID != v.ID {
				t.Fatalf("ItemID = %q, want %q", res.ItemID, v.ID)
			}
			if !reflect.DeepEqual(res.Recommendations, want) {
				t.Fatalf("RecommendCtx(%s, %d opts) diverged from Recommend", v.ID, len(opts))
			}
		}
	}
	if tested == 0 {
		t.Fatal("no items tested")
	}
}

// TestRecommendCtxWithoutExpansion: the per-call option matches the
// engine-level DisableExpansion config.
func TestRecommendCtxWithoutExpansion(t *testing.T) {
	e, items, _ := streamEngine(t, Config{})
	ne, _, _ := streamEngine(t, Config{DisableExpansion: true})
	ctx := context.Background()
	for _, v := range items[:30] {
		res, err := e.RecommendCtx(ctx, v, WithK(10), WithoutExpansion())
		if err != nil {
			t.Fatalf("RecommendCtx: %v", err)
		}
		want := ne.Recommend(v, 10)
		if !reflect.DeepEqual(res.Recommendations, want) {
			t.Fatalf("WithoutExpansion diverged from DisableExpansion engine on %s", v.ID)
		}
	}
}

func TestRecommendCtxErrors(t *testing.T) {
	ctx := context.Background()
	untrained := New(Config{Categories: []string{"a"}})
	if _, err := untrained.RecommendCtx(ctx, model.Item{ID: "x", Category: "a"}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("untrained error = %v, want ErrNotTrained", err)
	}

	e, _, _ := streamEngine(t, Config{})
	_, err := e.RecommendCtx(ctx, model.Item{ID: "alien", Category: "no-such-category"})
	if !errors.Is(err, ErrUnknownCategory) {
		t.Fatalf("unknown category error = %v, want ErrUnknownCategory", err)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.RecommendCtx(cancelled, model.Item{ID: "x", Category: "cat01"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled error = %v, want context.Canceled", err)
	}
}

// TestObserveBatchEquivalence: ingesting a stream through ObserveBatch
// micro-batches leaves the engine in exactly the state per-item Observe
// produces — same profiles, same index answers.
func TestObserveBatchEquivalence(t *testing.T) {
	a, items, irs := streamEngine(t, Config{})
	b, _, _ := streamEngine(t, Config{})
	byID := make(map[string]model.Item, len(items))
	for _, v := range items {
		byID[v.ID] = v
	}
	if len(irs) > 400 {
		irs = irs[:400]
	}
	var batch []Observation
	for _, ir := range irs {
		v, ok := byID[ir.ItemID]
		if !ok {
			continue
		}
		a.Observe(ir, v)
		batch = append(batch, Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp})
	}
	ctx := context.Background()
	// Uneven chunk size exercises partial trailing batches.
	for len(batch) > 0 {
		n := min(37, len(batch))
		rep, err := b.ObserveBatch(ctx, batch[:n])
		if err != nil {
			t.Fatalf("ObserveBatch: %v", err)
		}
		if rep.Applied != n || rep.Rejected != 0 {
			t.Fatalf("report = %+v, want %d applied", rep, n)
		}
		batch = batch[n:]
	}
	if a.Users() != b.Users() {
		t.Fatalf("user counts diverged: %d vs %d", a.Users(), b.Users())
	}
	for _, v := range items[:80] {
		ra := a.Recommend(v, 10)
		rb := b.Recommend(v, 10)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("Observe and ObserveBatch engines diverged on %s:\n  %v\n  %v", v.ID, ra, rb)
		}
	}
}

func TestObserveBatchValidation(t *testing.T) {
	e, items, _ := streamEngine(t, Config{})
	ctx := context.Background()
	good := Observation{UserID: "u-test", Item: items[0], Timestamp: 99}
	rep, err := e.ObserveBatch(ctx, []Observation{
		good,
		{UserID: "", Item: items[0], Timestamp: 100},         // missing user
		{UserID: "u-test", Item: model.Item{}, Timestamp: 1}, // missing item ID
	})
	if err != nil {
		t.Fatalf("ObserveBatch: %v", err)
	}
	if rep.Applied != 1 || rep.Rejected != 2 || len(rep.Errors) != 2 {
		t.Fatalf("report = %+v, want 1 applied / 2 rejected", rep)
	}
	if rep.Errors[0].Index != 1 || rep.Errors[1].Index != 2 {
		t.Fatalf("error indices = %+v", rep.Errors)
	}
	for _, oe := range rep.Errors {
		if !errors.Is(oe.Err, ErrInvalidObservation) {
			t.Fatalf("error = %v, want ErrInvalidObservation", oe.Err)
		}
	}
}

func TestObserveBatchCancelled(t *testing.T) {
	e, items, _ := streamEngine(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := e.ObserveBatch(ctx, []Observation{{UserID: "u", Item: items[0], Timestamp: 1}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Applied != 0 {
		t.Fatalf("applied %d observations under a cancelled context", rep.Applied)
	}
}

// TestRecommendBatchPerItemErrors: item-scoped failures land in
// results[i].Err without failing the call.
func TestRecommendBatchPerItemErrors(t *testing.T) {
	e, items, _ := streamEngine(t, Config{})
	ctx := context.Background()
	batch := []model.Item{
		items[0],
		{ID: "alien", Category: "no-such-category"},
		items[1],
	}
	results, err := e.RecommendBatch(ctx, batch, WithK(5))
	if err != nil {
		t.Fatalf("RecommendBatch: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("valid items errored: %v / %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, ErrUnknownCategory) {
		t.Fatalf("results[1].Err = %v, want ErrUnknownCategory", results[1].Err)
	}
	for i := 0; i < 3; i += 2 {
		want := e.Recommend(batch[i], 5)
		if !reflect.DeepEqual(results[i].Recommendations, want) {
			t.Fatalf("results[%d] diverged from Recommend", i)
		}
	}
}

func TestRecommendBatchUntrained(t *testing.T) {
	e := New(Config{Categories: []string{"a"}})
	results, err := e.RecommendBatch(context.Background(), []model.Item{{ID: "x", Category: "a"}})
	if !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	if len(results) != 1 || !errors.Is(results[0].Err, ErrNotTrained) {
		t.Fatalf("results = %+v", results)
	}
}

// TestRecommendBatchCancelledMidway: cancelling the context mid-batch
// returns ctx.Err() and marks undispatched items.
func TestRecommendBatchCancelledMidway(t *testing.T) {
	e, items, _ := streamEngine(t, Config{})
	if len(items) > 64 {
		items = items[:64]
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch: every item must carry the error
	results, err := e.RecommendBatch(ctx, items, WithK(5))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("results[%d].Err = %v, want context.Canceled", i, res.Err)
		}
	}
}

// TestBatchAPIConcurrencyHammer drives RecommendBatch readers against an
// ObserveBatch writer — the v2 acceptance hammer; run with -race.
func TestBatchAPIConcurrencyHammer(t *testing.T) {
	e, items, irs := streamEngine(t, Config{UpdateBatch: 4, Parallelism: 2})
	byID := make(map[string]model.Item, len(items))
	for _, v := range items {
		byID[v.ID] = v
	}
	var obs []Observation
	for _, ir := range irs {
		if v, ok := byID[ir.ItemID]; ok {
			obs = append(obs, Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp})
		}
	}
	if len(obs) > 600 {
		obs = obs[:600]
	}
	queries := items
	if len(queries) > 60 {
		queries = queries[:60]
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				results, err := e.RecommendBatch(ctx, queries, WithK(10))
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for i, res := range results {
					if res.Err != nil {
						t.Errorf("reader %d item %s: %v", r, queries[i].ID, res.Err)
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		chunk := obs
		for len(chunk) > 0 {
			n := min(64, len(chunk))
			if _, err := e.ObserveBatch(ctx, chunk[:n]); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			chunk = chunk[n:]
		}
	}()
	wg.Wait()
}

// TestObserveBatchAmortisesFlushes: one ObserveBatch call performs exactly
// one index maintenance flush regardless of batch length.
func TestObserveBatchAmortisesFlushes(t *testing.T) {
	e, items, irs := streamEngine(t, Config{})
	byID := make(map[string]model.Item, len(items))
	for _, v := range items {
		byID[v.ID] = v
	}
	var batch []Observation
	for _, ir := range irs {
		if v, ok := byID[ir.ItemID]; ok {
			batch = append(batch, Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp})
		}
		if len(batch) == 128 {
			break
		}
	}
	rep, err := e.ObserveBatch(context.Background(), batch)
	if err != nil {
		t.Fatalf("ObserveBatch: %v", err)
	}
	uniq := map[string]bool{}
	for _, o := range batch {
		uniq[o.UserID] = true
	}
	if rep.Flushed != len(uniq) {
		t.Errorf("flushed %d users, want the %d unique users of the batch", rep.Flushed, len(uniq))
	}
	// After the batch flush nothing may be pending: a follow-up flush is
	// a no-op.
	if n := e.FlushUpdates(); n != 0 {
		t.Errorf("FlushUpdates after ObserveBatch refreshed %d users, want 0", n)
	}
}
