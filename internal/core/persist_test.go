package core

import (
	"bytes"
	"reflect"
	"testing"

	"ssrec/internal/model"
)

func TestSaveLoadRoundTripRecommendations(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)

	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	loaded, err := LoadFrom(&buf)
	if err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}

	// The restored engine must produce identical recommendations.
	for i := 0; i < 30 && i < len(ds.Items); i++ {
		v := ds.Items[len(ds.Items)-1-i]
		want := eng.Recommend(v, 10)
		got := loaded.Recommend(v, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("item %s:\n got %v\nwant %v", v.ID, got, want)
		}
	}
}

func TestSaveUntrainedFails(t *testing.T) {
	eng := New(Config{Categories: []string{"a"}})
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err == nil {
		t.Fatal("saved an untrained engine")
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := LoadFrom(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("loaded garbage")
	}
}

func TestLoadedEngineKeepsLearning(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Stream new interactions into the restored engine.
	parts := ds.Partition(6)
	for _, ir := range parts[3][:min(50, len(parts[3]))] {
		if v, ok := ds.Item(ir.ItemID); ok {
			loaded.Observe(ir, v)
		}
	}
	u := parts[3][0].UserID
	p, ok := loaded.Store().Lookup(u)
	if !ok || p.TotalLen() == 0 {
		t.Fatalf("restored engine did not keep profiles for %s", u)
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)
	path := t.TempDir() + "/engine.bin"
	if err := eng.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Store().Len() != eng.Store().Len() {
		t.Fatalf("profiles %d != %d", loaded.Store().Len(), eng.Store().Len())
	}
}

func TestRebuildIndexPreservesResults(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, nil)
	v := ds.Items[len(ds.Items)-1]
	before := eng.Recommend(v, 10)
	if err := eng.RebuildIndex(); err != nil {
		t.Fatalf("RebuildIndex: %v", err)
	}
	after := eng.Recommend(v, 10)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("rebuild changed results:\n%v\n%v", before, after)
	}
}

func TestRebuildIndexUntrained(t *testing.T) {
	eng := New(Config{Categories: []string{"a"}})
	if err := eng.RebuildIndex(); err == nil {
		t.Fatal("rebuilt an untrained engine")
	}
}

func TestBatchedUpdatesMatchImmediate(t *testing.T) {
	ds := testDataset(t)
	immediate := trainedEngine(t, ds, nil)
	batched := trainedEngine(t, ds, func(c *Config) { c.UpdateBatch = 25 })

	parts := ds.Partition(6)
	feed := parts[2][:min(120, len(parts[2]))]
	for _, ir := range feed {
		if v, ok := ds.Item(ir.ItemID); ok {
			immediate.Observe(ir, v)
			batched.Observe(ir, v)
		}
	}
	// Queries flush pending maintenance, so results must agree exactly.
	for i := 0; i < 20 && i < len(ds.Items); i++ {
		v := ds.Items[len(ds.Items)-1-i]
		want := immediate.Recommend(v, 10)
		got := batched.Recommend(v, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("item %s: batched != immediate\n got %v\nwant %v", v.ID, got, want)
		}
	}
}

func TestFlushUpdatesCount(t *testing.T) {
	ds := testDataset(t)
	eng := trainedEngine(t, ds, func(c *Config) { c.UpdateBatch = 1000 })
	parts := ds.Partition(6)
	users := map[string]bool{}
	for _, ir := range parts[2][:min(40, len(parts[2]))] {
		if v, ok := ds.Item(ir.ItemID); ok {
			eng.Observe(ir, v)
			users[ir.UserID] = true
		}
	}
	if n := eng.FlushUpdates(); n != len(users) {
		t.Fatalf("flushed %d users, want %d", n, len(users))
	}
	if n := eng.FlushUpdates(); n != 0 {
		t.Fatalf("second flush refreshed %d users, want 0", n)
	}
}

func TestSafeEngineConcurrentUse(t *testing.T) {
	ds := testDataset(t)
	safe := NewSafe(Config{Categories: ds.Categories, TrainMaxIter: 5, Restarts: 1})
	parts := ds.Partition(6)
	var train []model.Interaction
	train = append(train, parts[0]...)
	train = append(train, parts[1]...)
	if err := safe.Train(ds.Items, train, ds.Item); err != nil {
		t.Fatalf("Train: %v", err)
	}
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- true }()
			for i := 0; i < 50; i++ {
				v := ds.Items[(g*50+i)%len(ds.Items)]
				safe.Recommend(v, 5)
				ir := model.Interaction{UserID: "concurrent-user", ItemID: v.ID, Timestamp: v.Timestamp + 1}
				safe.Observe(ir, v)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if safe.Users() == 0 {
		t.Fatal("no users after concurrent feed")
	}
	if s := safe.IndexStats(); s.Trees == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if safe.Name() != "ssRec" {
		t.Fatalf("Name = %s", safe.Name())
	}
}
