package dataset

import (
	"bytes"
	"testing"
)

func tinyYTube(t testing.TB) *Dataset {
	t.Helper()
	cfg := YTubeConfig(0.3)
	cfg.Seed = 7
	return Generate(cfg)
}

func TestGenerateBasicShape(t *testing.T) {
	d := tinyYTube(t)
	if len(d.Items) == 0 {
		t.Fatal("no items generated")
	}
	if len(d.Interactions) == 0 {
		t.Fatal("no interactions generated")
	}
	s := d.ComputeStats()
	if s.Categories != 19 {
		t.Errorf("categories = %d, want 19", s.Categories)
	}
	if s.Producers == 0 || s.Consumers == 0 || s.Entities == 0 {
		t.Errorf("degenerate stats: %+v", s)
	}
	// YTube shape: more interactions than items.
	if s.Interactions < s.Items {
		t.Errorf("interactions (%d) < items (%d): wrong shape", s.Interactions, s.Items)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := YTubeConfig(0.2)
	cfg.Seed = 99
	a := Generate(cfg)
	b := Generate(cfg)
	sa, sb := a.ComputeStats(), b.ComputeStats()
	if sa != sb {
		t.Fatalf("same config, different stats: %v vs %v", sa, sb)
	}
	for i := range a.Items {
		if a.Items[i].ID != b.Items[i].ID || a.Items[i].Category != b.Items[i].Category {
			t.Fatalf("item %d differs", i)
		}
	}
}

func TestGenerateItemsWellFormed(t *testing.T) {
	d := tinyYTube(t)
	catSet := map[string]bool{}
	for _, c := range d.Categories {
		catSet[c] = true
	}
	seen := map[string]bool{}
	for _, v := range d.Items {
		if seen[v.ID] {
			t.Fatalf("duplicate item ID %s", v.ID)
		}
		seen[v.ID] = true
		if !catSet[v.Category] {
			t.Errorf("item %s has unknown category %q", v.ID, v.Category)
		}
		if v.Producer == "" {
			t.Errorf("item %s has empty producer", v.ID)
		}
		if len(v.Entities) == 0 {
			t.Errorf("item %s has no entities", v.ID)
		}
		if v.Description == "" {
			t.Errorf("item %s has no description", v.ID)
		}
	}
}

func TestGenerateInteractionsReferenceItems(t *testing.T) {
	d := tinyYTube(t)
	for _, ir := range d.Interactions {
		v, ok := d.Item(ir.ItemID)
		if !ok {
			t.Fatalf("interaction references unknown item %s", ir.ItemID)
		}
		if ir.Timestamp < v.Timestamp {
			t.Fatalf("user %s browsed %s before creation (%d < %d)",
				ir.UserID, ir.ItemID, ir.Timestamp, v.Timestamp)
		}
	}
}

func TestGenerateTimeOrdered(t *testing.T) {
	d := tinyYTube(t)
	for i := 1; i < len(d.Items); i++ {
		if d.Items[i].Timestamp < d.Items[i-1].Timestamp {
			t.Fatal("items not time-ordered")
		}
	}
	for i := 1; i < len(d.Interactions); i++ {
		if d.Interactions[i].Timestamp < d.Interactions[i-1].Timestamp {
			t.Fatal("interactions not time-ordered")
		}
	}
}

func TestProducersAreConsistentPerItem(t *testing.T) {
	// A producer's items should be concentrated on few categories
	// (CategoriesPerUp palette).
	d := tinyYTube(t)
	byProd := map[string]map[string]bool{}
	for _, v := range d.Items {
		m := byProd[v.Producer]
		if m == nil {
			m = map[string]bool{}
			byProd[v.Producer] = m
		}
		m[v.Category] = true
	}
	for up, cats := range byProd {
		if len(cats) > 5 {
			t.Errorf("producer %s spans %d categories, want ≤5", up, len(cats))
		}
	}
}

func TestMLensShape(t *testing.T) {
	cfg := MLensConfig(0.3)
	cfg.Seed = 11
	d := Generate(cfg)
	s := d.ComputeStats()
	if s.Categories != 15 {
		t.Errorf("categories = %d, want 15", s.Categories)
	}
	// MLens shape: interactions per item much denser than YTube.
	y := tinyYTube(t).ComputeStats()
	mlDensity := float64(s.Interactions) / float64(s.Items)
	ytDensity := float64(y.Interactions) / float64(y.Items)
	if mlDensity <= ytDensity {
		t.Errorf("MLens density %.1f not greater than YTube %.1f", mlDensity, ytDensity)
	}
}

func TestPartition(t *testing.T) {
	d := tinyYTube(t)
	parts := d.Partition(6)
	if len(parts) != 6 {
		t.Fatalf("got %d partitions", len(parts))
	}
	var total int
	var lastTS int64 = -1 << 62
	for _, p := range parts {
		total += len(p)
		for _, ir := range p {
			if ir.Timestamp < lastTS {
				t.Fatal("partition boundary breaks time order")
			}
			lastTS = ir.Timestamp
		}
	}
	if total != len(d.Interactions) {
		t.Fatalf("partitions cover %d of %d interactions", total, len(d.Interactions))
	}
	// Near-equal sizes.
	for i, p := range parts {
		if len(p) < len(d.Interactions)/6-1 || len(p) > len(d.Interactions)/6+1 {
			t.Errorf("partition %d has %d of %d", i, len(p), len(d.Interactions))
		}
	}
}

func TestPartitionDegenerate(t *testing.T) {
	d := New("x", []string{"a"})
	parts := d.Partition(0)
	if len(parts) != 1 {
		t.Fatalf("Partition(0) -> %d parts", len(parts))
	}
}

func TestEntityVocabularyAndAccessors(t *testing.T) {
	d := tinyYTube(t)
	vocab := d.EntityVocabulary()
	if len(vocab) == 0 {
		t.Fatal("empty vocabulary")
	}
	for i := 1; i < len(vocab); i++ {
		if vocab[i-1] >= vocab[i] {
			t.Fatal("vocabulary not sorted/unique")
		}
	}
	if len(d.Producers()) == 0 || len(d.Consumers()) == 0 {
		t.Fatal("empty producer/consumer lists")
	}
	byUser := d.InteractionsByUser()
	var n int
	for _, irs := range byUser {
		n += len(irs)
		for i := 1; i < len(irs); i++ {
			if irs[i].Timestamp < irs[i-1].Timestamp {
				t.Fatal("per-user interactions out of order")
			}
		}
	}
	if n != len(d.Interactions) {
		t.Fatalf("per-user grouping lost interactions: %d of %d", n, len(d.Interactions))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := tinyYTube(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != d.Name || len(got.Items) != len(d.Items) || len(got.Interactions) != len(d.Interactions) {
		t.Fatalf("round-trip mismatch: %v vs %v", got.ComputeStats(), d.ComputeStats())
	}
	// Item lookup must work after load.
	if _, ok := got.Item(d.Items[0].ID); !ok {
		t.Fatal("item index broken after load")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := tinyYTube(t)
	path := t.TempDir() + "/ds.gob.gz"
	if err := d.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.ComputeStats() != d.ComputeStats() {
		t.Fatal("file round-trip changed stats")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestInfluenceCreatesProducerDependency(t *testing.T) {
	// With influence enabled, consumers browse items from followed
	// producers right after creation; verify that a nontrivial share of
	// interactions land on items created within the recency window.
	cfg := YTubeConfig(0.3)
	cfg.Seed = 21
	d := Generate(cfg)
	stepSecs := cfg.StepSecs
	fresh := 0
	for _, ir := range d.Interactions {
		v, _ := d.Item(ir.ItemID)
		if ir.Timestamp-v.Timestamp <= 3*stepSecs {
			fresh++
		}
	}
	ratio := float64(fresh) / float64(len(d.Interactions))
	if ratio < 0.2 {
		t.Errorf("fresh-interaction ratio %.2f too low: influence machinery inert", ratio)
	}
}

func BenchmarkGenerateYTube(b *testing.B) {
	cfg := YTubeConfig(0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		Generate(cfg)
	}
}
