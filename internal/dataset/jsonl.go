package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ssrec/internal/model"
)

// JSONL interop: newline-delimited JSON import/export so real item and
// interaction logs can be loaded without the binary gob format. One JSON
// object per line.
//
// Item lines:        {"id":"v1","category":"sports","producer":"bbc",
//                     "entities":["Messi"],"description":"...","timestamp":123}
// Interaction lines: {"user_id":"u1","item_id":"v1","timestamp":124}

type itemJSON struct {
	ID          string   `json:"id"`
	Category    string   `json:"category"`
	Producer    string   `json:"producer"`
	Entities    []string `json:"entities,omitempty"`
	Description string   `json:"description,omitempty"`
	Timestamp   int64    `json:"timestamp"`
}

type interactionJSON struct {
	UserID    string `json:"user_id"`
	ItemID    string `json:"item_id"`
	Timestamp int64  `json:"timestamp"`
}

// ReadItemsJSONL parses items from newline-delimited JSON. Blank lines are
// skipped; any malformed line aborts with a line-numbered error.
func ReadItemsJSONL(r io.Reader) ([]model.Item, error) {
	var items []model.Item
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var it itemJSON
		if err := json.Unmarshal(raw, &it); err != nil {
			return nil, fmt.Errorf("dataset: items line %d: %w", line, err)
		}
		if it.ID == "" || it.Category == "" {
			return nil, fmt.Errorf("dataset: items line %d: id and category are required", line)
		}
		items = append(items, model.Item{
			ID: it.ID, Category: it.Category, Producer: it.Producer,
			Entities: it.Entities, Description: it.Description, Timestamp: it.Timestamp,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: items scan: %w", err)
	}
	return items, nil
}

// ReadInteractionsJSONL parses interactions from newline-delimited JSON.
func ReadInteractionsJSONL(r io.Reader) ([]model.Interaction, error) {
	var irs []model.Interaction
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ir interactionJSON
		if err := json.Unmarshal(raw, &ir); err != nil {
			return nil, fmt.Errorf("dataset: interactions line %d: %w", line, err)
		}
		if ir.UserID == "" || ir.ItemID == "" {
			return nil, fmt.Errorf("dataset: interactions line %d: user_id and item_id are required", line)
		}
		irs = append(irs, model.Interaction{UserID: ir.UserID, ItemID: ir.ItemID, Timestamp: ir.Timestamp})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: interactions scan: %w", err)
	}
	return irs, nil
}

// WriteItemsJSONL writes items as newline-delimited JSON.
func WriteItemsJSONL(w io.Writer, items []model.Item) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range items {
		v := &items[i]
		if err := enc.Encode(itemJSON{
			ID: v.ID, Category: v.Category, Producer: v.Producer,
			Entities: v.Entities, Description: v.Description, Timestamp: v.Timestamp,
		}); err != nil {
			return fmt.Errorf("dataset: write item %s: %w", v.ID, err)
		}
	}
	return bw.Flush()
}

// WriteInteractionsJSONL writes interactions as newline-delimited JSON.
func WriteInteractionsJSONL(w io.Writer, irs []model.Interaction) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ir := range irs {
		if err := enc.Encode(interactionJSON{UserID: ir.UserID, ItemID: ir.ItemID, Timestamp: ir.Timestamp}); err != nil {
			return fmt.Errorf("dataset: write interaction: %w", err)
		}
	}
	return bw.Flush()
}

// FromRecords assembles a Dataset from parsed items and interactions,
// deriving the category universe and sorting by time.
func FromRecords(name string, items []model.Item, irs []model.Interaction) (*Dataset, error) {
	catSet := map[string]bool{}
	var cats []string
	for _, v := range items {
		if !catSet[v.Category] {
			catSet[v.Category] = true
			cats = append(cats, v.Category)
		}
	}
	d := New(name, cats)
	for _, v := range items {
		if _, dup := d.Item(v.ID); dup {
			return nil, fmt.Errorf("dataset: duplicate item id %q", v.ID)
		}
		d.AddItem(v)
	}
	for _, ir := range irs {
		if _, ok := d.Item(ir.ItemID); !ok {
			return nil, fmt.Errorf("dataset: interaction references unknown item %q", ir.ItemID)
		}
		d.AddInteraction(ir)
	}
	d.SortByTime()
	return d, nil
}
