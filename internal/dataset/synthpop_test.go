package dataset

import (
	"math"
	"testing"
)

func TestReplicatePreservesShape(t *testing.T) {
	src := tinyYTube(t)
	syn := Replicate(src, "SynYTube", 1)
	ss, sy := src.ComputeStats(), syn.ComputeStats()

	if sy.Items != ss.Items {
		t.Errorf("|V| = %d, want %d", sy.Items, ss.Items)
	}
	if sy.Categories != ss.Categories {
		t.Errorf("C = %d, want %d", sy.Categories, ss.Categories)
	}
	// Producers/consumers/entities/interactions should be close, not
	// necessarily equal (paper's SynMLens: 593 vs 586 producers).
	within := func(name string, got, want int, tol float64) {
		if want == 0 {
			return
		}
		if math.Abs(float64(got-want))/float64(want) > tol {
			t.Errorf("%s = %d, want within %.0f%% of %d", name, got, tol*100, want)
		}
	}
	within("|Up|", sy.Producers, ss.Producers, 0.15)
	within("|Uc|", sy.Consumers, ss.Consumers, 0.10)
	within("|IRact|", sy.Interactions, ss.Interactions, 0.15)
	within("|E|", sy.Entities, ss.Entities, 0.25)
}

func TestReplicateFreshIDs(t *testing.T) {
	src := tinyYTube(t)
	syn := Replicate(src, "SynYTube", 2)
	for _, v := range syn.Items {
		if _, ok := src.Item(v.ID); ok {
			t.Fatalf("synthetic item reuses source ID %s", v.ID)
		}
	}
}

func TestReplicateValidReferences(t *testing.T) {
	src := tinyYTube(t)
	syn := Replicate(src, "SynYTube", 3)
	for _, ir := range syn.Interactions {
		v, ok := syn.Item(ir.ItemID)
		if !ok {
			t.Fatalf("dangling item ref %s", ir.ItemID)
		}
		if ir.Timestamp < v.Timestamp {
			t.Fatalf("interaction precedes item creation")
		}
	}
}

func TestReplicateCategoryMarginalClose(t *testing.T) {
	src := tinyYTube(t)
	syn := Replicate(src, "SynYTube", 4)
	count := func(d *Dataset) map[string]float64 {
		m := map[string]float64{}
		for _, v := range d.Items {
			m[v.Category]++
		}
		for k := range m {
			m[k] /= float64(len(d.Items))
		}
		return m
	}
	cs, cy := count(src), count(syn)
	var l1 float64
	for _, c := range src.Categories {
		l1 += math.Abs(cs[c] - cy[c])
	}
	if l1 > 0.25 {
		t.Errorf("category marginal L1 distance %.3f too large", l1)
	}
}

func TestReplicateProducerConditionalPreserved(t *testing.T) {
	// Producers in the synthetic set must still be (near-)single-palette:
	// each producer's categories should come from its source conditional.
	src := tinyYTube(t)
	syn := Replicate(src, "SynYTube", 5)
	srcCats := map[string]map[string]bool{}
	for _, v := range src.Items {
		m := srcCats[v.Producer]
		if m == nil {
			m = map[string]bool{}
			srcCats[v.Producer] = m
		}
		m[v.Category] = true
	}
	for _, v := range syn.Items {
		if allowed := srcCats[v.Producer]; allowed != nil && !allowed[v.Category] {
			t.Fatalf("producer %s emits category %s never seen in source", v.Producer, v.Category)
		}
	}
}

func TestReplicateDeterministic(t *testing.T) {
	src := tinyYTube(t)
	a := Replicate(src, "S", 9)
	b := Replicate(src, "S", 9)
	if a.ComputeStats() != b.ComputeStats() {
		t.Fatal("replication not deterministic for fixed seed")
	}
}
