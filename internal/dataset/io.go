package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ssrec/internal/model"
)

// wireDataset is the on-disk representation (gob inside gzip).
type wireDataset struct {
	Name         string
	Categories   []string
	Items        []model.Item
	Interactions []model.Interaction
}

// Save writes the dataset to w as gzip-compressed gob.
func (d *Dataset) Save(w io.Writer) error {
	gz := gzip.NewWriter(w)
	enc := gob.NewEncoder(gz)
	err := enc.Encode(wireDataset{
		Name:         d.Name,
		Categories:   d.Categories,
		Items:        d.Items,
		Interactions: d.Interactions,
	})
	if err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("dataset: gzip close: %w", err)
	}
	return nil
}

// Load reads a dataset previously written by Save.
func Load(r io.Reader) (*Dataset, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: gzip open: %w", err)
	}
	defer gz.Close()
	var w wireDataset
	if err := gob.NewDecoder(gz).Decode(&w); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	d := New(w.Name, w.Categories)
	d.Items = w.Items
	d.Interactions = w.Interactions
	d.reindex()
	return d, nil
}

// SaveFile writes the dataset to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	bw := bufio.NewWriter(f)
	if err := d.Save(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("dataset: flush %s: %w", path, err)
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}
