package dataset

import (
	"bytes"
	"strings"
	"testing"

	"ssrec/internal/model"
)

func TestItemsJSONLRoundTrip(t *testing.T) {
	src := tinyYTube(t)
	var buf bytes.Buffer
	if err := WriteItemsJSONL(&buf, src.Items); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadItemsJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(src.Items) {
		t.Fatalf("items %d, want %d", len(got), len(src.Items))
	}
	for i := range got {
		a, b := got[i], src.Items[i]
		if a.ID != b.ID || a.Category != b.Category || a.Producer != b.Producer ||
			a.Timestamp != b.Timestamp || len(a.Entities) != len(b.Entities) {
			t.Fatalf("item %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestInteractionsJSONLRoundTrip(t *testing.T) {
	src := tinyYTube(t)
	var buf bytes.Buffer
	if err := WriteInteractionsJSONL(&buf, src.Interactions); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadInteractionsJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(src.Interactions) {
		t.Fatalf("interactions %d, want %d", len(got), len(src.Interactions))
	}
	if got[0] != src.Interactions[0] {
		t.Fatalf("first interaction mismatch")
	}
}

func TestReadItemsJSONLValidation(t *testing.T) {
	cases := []string{
		`{"category":"c"}`,                // missing id
		`{"id":"a"}`,                      // missing category
		`{"id":"a","category":"c"` + "\n", // malformed JSON
	}
	for i, in := range cases {
		if _, err := ReadItemsJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Blank lines are fine.
	got, err := ReadItemsJSONL(strings.NewReader("\n{\"id\":\"a\",\"category\":\"c\"}\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank-line handling: %v %v", got, err)
	}
}

func TestReadInteractionsJSONLValidation(t *testing.T) {
	if _, err := ReadInteractionsJSONL(strings.NewReader(`{"user_id":"u"}`)); err == nil {
		t.Error("missing item_id accepted")
	}
	if _, err := ReadInteractionsJSONL(strings.NewReader(`{bad`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestFromRecords(t *testing.T) {
	items := []model.Item{
		{ID: "b", Category: "y", Timestamp: 2},
		{ID: "a", Category: "x", Timestamp: 1},
	}
	irs := []model.Interaction{
		{UserID: "u", ItemID: "b", Timestamp: 5},
		{UserID: "u", ItemID: "a", Timestamp: 3},
	}
	d, err := FromRecords("imported", items, irs)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Categories) != 2 {
		t.Errorf("categories = %v", d.Categories)
	}
	if d.Items[0].ID != "a" || d.Interactions[0].ItemID != "a" {
		t.Errorf("not time-sorted: %v %v", d.Items[0], d.Interactions[0])
	}
	st := d.ComputeStats()
	if st.Items != 2 || st.Interactions != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFromRecordsErrors(t *testing.T) {
	if _, err := FromRecords("x", []model.Item{
		{ID: "a", Category: "c"}, {ID: "a", Category: "c"},
	}, nil); err == nil {
		t.Error("duplicate item accepted")
	}
	if _, err := FromRecords("x", []model.Item{{ID: "a", Category: "c"}},
		[]model.Interaction{{UserID: "u", ItemID: "ghost"}}); err == nil {
		t.Error("dangling interaction accepted")
	}
}

func TestJSONLEndToEndThroughEngineFormat(t *testing.T) {
	// Export a generated dataset to JSONL, re-import, and verify the
	// round-tripped dataset evaluates identically at the stats level.
	src := tinyYTube(t)
	var ib, rb bytes.Buffer
	if err := WriteItemsJSONL(&ib, src.Items); err != nil {
		t.Fatal(err)
	}
	if err := WriteInteractionsJSONL(&rb, src.Interactions); err != nil {
		t.Fatal(err)
	}
	items, err := ReadItemsJSONL(&ib)
	if err != nil {
		t.Fatal(err)
	}
	irs, err := ReadInteractionsJSONL(&rb)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromRecords(src.Name, items, irs)
	if err != nil {
		t.Fatal(err)
	}
	// FromRecords derives the category universe from the observed items,
	// so compare every other Table III column.
	got, want := d.ComputeStats(), src.ComputeStats()
	got.Categories, want.Categories = 0, 0
	if got != want {
		t.Fatalf("stats changed: %v vs %v", got, want)
	}
}
