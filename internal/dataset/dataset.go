// Package dataset provides the data substrates of the ssRec reproduction:
// an in-memory dataset type, synthetic generators standing in for the
// paper's crawled YTube and derived MLens collections, and a
// synthpop-style replicator producing SynYTube/SynMLens analogues
// (Zhou et al., ICDE 2019, §VI-A, Table III).
//
// The real collections are unavailable (crawled YouTube data; MovieLens
// with the authors' derived categories/producers), so the generators plant
// exactly the statistical structure the paper's models exploit:
//
//   - producers emit items following per-producer hidden regimes over
//     categories (the a-HMM signal);
//   - consumers interleave an own-interest Markov chain with
//     producer-influenced interruptions (the b-HMM / BiHMM signal);
//   - item descriptions draw entities from per-category topic clusters so
//     proximity-based expansion has co-occurrence signal.
package dataset

import (
	"fmt"
	"sort"

	"ssrec/internal/model"
)

// Dataset is one complete collection: items, time-ordered interactions and
// the universes they draw from.
type Dataset struct {
	Name         string
	Categories   []string
	Items        []model.Item // ordered by Timestamp
	Interactions []model.Interaction
	itemByID     map[string]*model.Item
}

// New creates an empty dataset with the given category universe.
func New(name string, categories []string) *Dataset {
	return &Dataset{Name: name, Categories: categories, itemByID: make(map[string]*model.Item)}
}

// AddItem appends an item.
func (d *Dataset) AddItem(v model.Item) {
	d.Items = append(d.Items, v)
	d.itemByID[v.ID] = &d.Items[len(d.Items)-1]
}

// AddInteraction appends an interaction.
func (d *Dataset) AddInteraction(ir model.Interaction) {
	d.Interactions = append(d.Interactions, ir)
}

// Item returns the item with the given ID, or false.
func (d *Dataset) Item(id string) (model.Item, bool) {
	v := d.itemByID[id]
	if v == nil {
		return model.Item{}, false
	}
	return *v, true
}

// reindex rebuilds the item lookup; called after bulk loads.
func (d *Dataset) reindex() {
	d.itemByID = make(map[string]*model.Item, len(d.Items))
	for i := range d.Items {
		d.itemByID[d.Items[i].ID] = &d.Items[i]
	}
}

// SortByTime orders items and interactions by timestamp (stable).
func (d *Dataset) SortByTime() {
	sort.SliceStable(d.Items, func(i, j int) bool { return d.Items[i].Timestamp < d.Items[j].Timestamp })
	sort.SliceStable(d.Interactions, func(i, j int) bool {
		return d.Interactions[i].Timestamp < d.Interactions[j].Timestamp
	})
	d.reindex()
}

// Stats is the Table III row for a dataset: |Up|, |Uc|, |E|, C, |IRact|, |V|.
type Stats struct {
	Name         string
	Producers    int // |Up|
	Consumers    int // |Uc|
	Entities     int // |E|
	Categories   int // C
	Interactions int // |IRact|
	Items        int // |V|
}

func (s Stats) String() string {
	return fmt.Sprintf("%-10s |Up|=%-6d |Uc|=%-7d |E|=%-7d C=%-3d |IRact|=%-8d |V|=%d",
		s.Name, s.Producers, s.Consumers, s.Entities, s.Categories, s.Interactions, s.Items)
}

// ComputeStats derives the Table III row.
func (d *Dataset) ComputeStats() Stats {
	producers := map[string]bool{}
	entities := map[string]bool{}
	for _, v := range d.Items {
		producers[v.Producer] = true
		for _, e := range v.Entities {
			entities[e] = true
		}
	}
	consumers := map[string]bool{}
	for _, ir := range d.Interactions {
		consumers[ir.UserID] = true
	}
	return Stats{
		Name:         d.Name,
		Producers:    len(producers),
		Consumers:    len(consumers),
		Entities:     len(entities),
		Categories:   len(d.Categories),
		Interactions: len(d.Interactions),
		Items:        len(d.Items),
	}
}

// EntityVocabulary returns the distinct entities appearing in items,
// sorted — the dictionary for entity.Extractor.
func (d *Dataset) EntityVocabulary() []string {
	set := map[string]bool{}
	for _, v := range d.Items {
		for _, e := range v.Entities {
			set[e] = true
		}
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Producers returns the distinct producer IDs, sorted.
func (d *Dataset) Producers() []string {
	set := map[string]bool{}
	for _, v := range d.Items {
		set[v.Producer] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Consumers returns the distinct consumer IDs, sorted.
func (d *Dataset) Consumers() []string {
	set := map[string]bool{}
	for _, ir := range d.Interactions {
		set[ir.UserID] = true
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// InteractionsByUser groups interactions per consumer, each group in
// temporal order (assumes SortByTime was applied or generation order).
func (d *Dataset) InteractionsByUser() map[string][]model.Interaction {
	out := make(map[string][]model.Interaction)
	for _, ir := range d.Interactions {
		out[ir.UserID] = append(out[ir.UserID], ir)
	}
	return out
}

// Partition splits the interactions into n contiguous, timestamp-ordered
// partitions of (near-)equal size — the stream-simulation setup of Wang et
// al. (SIGKDD 2018) used in §VI-B: first partitions train, the rest test.
func (d *Dataset) Partition(n int) [][]model.Interaction {
	if n < 1 {
		n = 1
	}
	parts := make([][]model.Interaction, n)
	total := len(d.Interactions)
	for i := 0; i < n; i++ {
		lo := i * total / n
		hi := (i + 1) * total / n
		parts[i] = d.Interactions[lo:hi]
	}
	return parts
}
