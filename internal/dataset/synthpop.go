package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"ssrec/internal/model"
)

// Replicate produces a synthetic twin of src in the spirit of the synthpop
// R package (Nowok et al., 2016) used by the paper for SynYTube/SynMLens:
// sequential conditional synthesis that preserves the source's empirical
// distributions while generating fresh records.
//
// Concretely it preserves, per the variables the ssRec experiments depend
// on:
//
//   - the item count, timestamps, and the producer marginal;
//   - each producer's conditional category distribution;
//   - per-(category, source-item) entity multisets via hot-deck donor
//     sampling (synthpop's default CART synthesis degenerates to donor
//     sampling for high-cardinality variables);
//   - each consumer's interaction count and category trajectory, replayed
//     against synthetic items available at the original timestamps.
//
// The result therefore reports (Table III) the same C, |V| and near-equal
// |Up|, |Uc|, |E|, |IRact| as the source, matching the paper's observation
// that the synthetic sets share the source's optima.
func Replicate(src *Dataset, name string, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := New(name, append([]string(nil), src.Categories...))

	// ---- Fit stage ----
	donorsByCat := map[string][]int{} // category -> source item indices (entity donors)
	for i, v := range src.Items {
		donorsByCat[v.Category] = append(donorsByCat[v.Category], i)
	}

	// ---- Synthesise items ----
	// Keep each source item's timestamp, producer and category — the
	// joint (producer, category, time) structure is what the consumer
	// models depend on, and synthpop preserves fitted joint structure.
	// Entities are hot-deck resampled from same-category donors, so the
	// synthetic items are fresh records with the source distributions.
	synthByCat := map[string][]int{}  // category -> synthetic item indices, time-ordered
	synthByProd := map[string][]int{} // category+producer -> indices, time-ordered
	for i := range src.Items {
		srcItem := src.Items[i]
		up := srcItem.Producer
		cat := srcItem.Category
		donors := donorsByCat[cat]
		var ents []string
		var desc string
		if len(donors) > 0 {
			donor := src.Items[donors[rng.Intn(len(donors))]]
			ents = append([]string(nil), donor.Entities...)
			desc = donor.Description
			// Perturb: occasionally swap one entity with another donor's.
			if len(ents) > 0 && rng.Float64() < 0.3 {
				other := src.Items[donors[rng.Intn(len(donors))]]
				if len(other.Entities) > 0 {
					ents[rng.Intn(len(ents))] = other.Entities[rng.Intn(len(other.Entities))]
				}
			}
		}
		item := model.Item{
			ID:          fmt.Sprintf("s%07d", i),
			Category:    cat,
			Producer:    up,
			Entities:    ents,
			Description: desc,
			Timestamp:   srcItem.Timestamp,
		}
		out.AddItem(item)
		synthByCat[cat] = append(synthByCat[cat], i)
		pk := cat + "\x1f" + up
		synthByProd[pk] = append(synthByProd[pk], i)
	}

	// ---- Synthesise interactions ----
	// Replay each source interaction: same user, same timestamp, item
	// resampled among synthetic items already published at that time —
	// preferring the same (category, producer) pool so the user→producer
	// affinity patterns of the source survive, falling back to the
	// category pool (recency-biased, like real browsing).
	for _, ir := range src.Interactions {
		srcItem, ok := src.Item(ir.ItemID)
		if !ok {
			continue
		}
		pool := synthByProd[srcItem.Category+"\x1f"+srcItem.Producer]
		hi := availablePrefix(out, pool, ir.Timestamp)
		if hi == 0 {
			pool = synthByCat[srcItem.Category]
			hi = availablePrefix(out, pool, ir.Timestamp)
		}
		if hi == 0 {
			continue
		}
		pick := pool[weightedRecentIdx(hi, rng)]
		out.AddInteraction(model.Interaction{
			UserID:    ir.UserID,
			ItemID:    out.Items[pick].ID,
			Timestamp: ir.Timestamp,
		})
	}
	out.SortByTime()
	return out
}

// availablePrefix returns the count of pool items published at or before
// ts (pool is time-ordered).
func availablePrefix(d *Dataset, pool []int, ts int64) int {
	return sort.Search(len(pool), func(k int) bool {
		return d.Items[pool[k]].Timestamp > ts
	})
}
