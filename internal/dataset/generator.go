package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"ssrec/internal/model"
)

// GenConfig parameterises the synthetic social-media generator. Two presets
// (YTubeConfig, MLensConfig) mirror the shape of the paper's collections at
// laptop scale.
type GenConfig struct {
	Name string
	Seed int64

	NumCategories int
	NumProducers  int
	NumConsumers  int
	Steps         int // timeline length

	// Producer dynamics.
	ProducerStates  int     // hidden regimes per producer (a-HMM signal)
	ProducerStay    float64 // regime self-transition probability
	CreateProb      float64 // per-producer per-step item creation probability
	CategoriesPerUp int     // distinct categories a producer covers across regimes

	// Consumer dynamics.
	BrowseProb      float64 // per-consumer per-step browse probability
	PreferredCats   int     // size of a consumer's own-interest category set
	OwnStay         float64 // own-chain self-transition probability
	FollowsMin      int     // producers followed (min)
	FollowsMax      int     // producers followed (max)
	InfluenceProb   float64 // probability a browse is captured by a followed producer's fresh item
	AttentionMean   float64 // mean geometric attention span after capture (steps)
	RecencyWindow   int     // steps an item stays "fresh" for influence capture
	BrowsableWindow int     // steps an item stays browsable at all

	// NoRepeatBrowse prevents a consumer from interacting with the same
	// item twice — MovieLens-style unique (user, item) pairs. YTube-style
	// re-watching keeps it false.
	NoRepeatBrowse bool

	// Entity model.
	EntitiesPerCategory int
	TopicsPerCategory   int
	EntitiesPerItemMin  int
	EntitiesPerItemMax  int
	TopicPurity         float64 // fraction of an item's entities drawn from its topic

	BaseTime int64 // first timestamp (unix seconds)
	StepSecs int64 // seconds per timeline step
}

func (c *GenConfig) fill() {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.NumCategories, 19)
	def(&c.NumProducers, 40)
	def(&c.NumConsumers, 300)
	def(&c.Steps, 400)
	def(&c.ProducerStates, 3)
	deff(&c.ProducerStay, 0.88)
	deff(&c.CreateProb, 0.30)
	def(&c.CategoriesPerUp, 3)
	deff(&c.BrowseProb, 0.35)
	def(&c.PreferredCats, 3)
	deff(&c.OwnStay, 0.75)
	def(&c.FollowsMin, 2)
	def(&c.FollowsMax, 5)
	deff(&c.InfluenceProb, 0.35)
	deff(&c.AttentionMean, 3)
	def(&c.RecencyWindow, 3)
	def(&c.BrowsableWindow, 40)
	def(&c.EntitiesPerCategory, 80)
	def(&c.TopicsPerCategory, 6)
	def(&c.EntitiesPerItemMin, 3)
	def(&c.EntitiesPerItemMax, 7)
	deff(&c.TopicPurity, 0.85)
	if c.BaseTime == 0 {
		c.BaseTime = 1_400_000_000
	}
	if c.StepSecs == 0 {
		c.StepSecs = 3600
	}
	if c.FollowsMax < c.FollowsMin {
		c.FollowsMax = c.FollowsMin
	}
	if c.EntitiesPerItemMax < c.EntitiesPerItemMin {
		c.EntitiesPerItemMax = c.EntitiesPerItemMin
	}
}

// YTubeConfig returns the YTube-shaped preset scaled by scale (1.0 = laptop
// default). YTube's shape: many items relative to interactions per item,
// thousands of producers, 19 categories.
func YTubeConfig(scale float64) GenConfig {
	if scale <= 0 {
		scale = 1
	}
	s := func(base int) int { return maxInt(2, int(math.Round(float64(base)*scale))) }
	return GenConfig{
		Name:                "YTube",
		Seed:                42,
		NumCategories:       19,
		NumProducers:        s(50),
		NumConsumers:        s(400),
		Steps:               s(500),
		CreateProb:          0.25,
		BrowseProb:          0.35,
		EntitiesPerCategory: 80,
	}
}

// MLensConfig returns the MLens-shaped preset: fewer producers and items,
// 15 categories, denser interactions per item (MovieLens has 20M ratings
// over only 27k movies).
func MLensConfig(scale float64) GenConfig {
	if scale <= 0 {
		scale = 1
	}
	s := func(base int) int { return maxInt(2, int(math.Round(float64(base)*scale))) }
	return GenConfig{
		Name:          "MLens",
		Seed:          1337,
		NumCategories: 15,
		// The paper's derived MLens has 586 producers for 138k consumers —
		// each consumer follows a small fraction of them. Keeping that
		// selectivity (follows ≪ |Up|) preserves the producer-affinity
		// signal the ssRec models exploit.
		NumProducers:        s(40),
		NumConsumers:        s(500),
		Steps:               s(400),
		CreateProb:          0.05,
		BrowseProb:          0.55,
		EntitiesPerCategory: 60,
		BrowsableWindow:     120,  // movies stay relevant longer than clips
		NoRepeatBrowse:      true, // MovieLens ratings are unique (user, movie) pairs
	}
}

// producerState is a producer's hidden-regime machine.
type producerState struct {
	id       string
	regimes  [][]float64 // regime -> category distribution
	trans    [][]float64 // regime transition matrix
	regime   int
	lastItem int // index into dataset items of most recent creation, -1 if none
	lastStep int
}

// consumerState is a consumer's browsing machine.
type consumerState struct {
	id        string
	cats      []int        // preferred categories
	trans     [][]float64  // own chain over preferred cats
	cur       int          // index into cats
	follows   []int        // producer indices
	attention int          // producer index currently capturing attention, -1 none
	attLeft   int          // remaining attention steps
	browsed   map[int]bool // item indices already browsed (NoRepeatBrowse)
}

// Generate builds a dataset from cfg. The run is fully deterministic for a
// given config (single rand source).
func Generate(cfg GenConfig) *Dataset {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))

	cats := make([]string, cfg.NumCategories)
	for i := range cats {
		cats[i] = fmt.Sprintf("cat%02d", i)
	}
	d := New(cfg.Name, cats)

	// Entity universe: per category, entities grouped into topics.
	entNames := make([][]string, cfg.NumCategories) // category -> entity names
	entTopics := make([][][]int, cfg.NumCategories) // category -> topic -> entity indices
	for ci := range cats {
		names := make([]string, cfg.EntitiesPerCategory)
		for j := range names {
			names[j] = fmt.Sprintf("c%02de%03d", ci, j)
		}
		entNames[ci] = names
		per := cfg.EntitiesPerCategory / cfg.TopicsPerCategory
		if per < 1 {
			per = 1
		}
		var topics [][]int
		for t := 0; t*per < cfg.EntitiesPerCategory; t++ {
			var topic []int
			for j := t * per; j < (t+1)*per && j < cfg.EntitiesPerCategory; j++ {
				topic = append(topic, j)
			}
			topics = append(topics, topic)
		}
		entTopics[ci] = topics
	}

	// Producers.
	producers := make([]*producerState, cfg.NumProducers)
	for i := range producers {
		p := &producerState{id: fmt.Sprintf("up%04d", i), lastItem: -1, lastStep: -1}
		// Pick the producer's category palette.
		palette := rng.Perm(cfg.NumCategories)[:minInt(cfg.CategoriesPerUp, cfg.NumCategories)]
		p.regimes = make([][]float64, cfg.ProducerStates)
		for r := range p.regimes {
			dist := make([]float64, cfg.NumCategories)
			// Each regime concentrates on one palette category with some
			// bleed to the rest of the palette.
			main := palette[r%len(palette)]
			dist[main] = 0.8
			for _, c := range palette {
				if c != main {
					dist[c] += 0.2 / float64(maxInt(1, len(palette)-1))
				}
			}
			if len(palette) == 1 {
				dist[main] = 1.0
			}
			p.regimes[r] = dist
		}
		p.trans = stickyMatrix(cfg.ProducerStates, cfg.ProducerStay, rng)
		p.regime = rng.Intn(cfg.ProducerStates)
		producers[i] = p
	}

	// Consumers.
	consumers := make([]*consumerState, cfg.NumConsumers)
	for i := range consumers {
		u := &consumerState{id: fmt.Sprintf("uc%05d", i), attention: -1}
		if cfg.NoRepeatBrowse {
			u.browsed = make(map[int]bool)
		}
		k := minInt(cfg.PreferredCats, cfg.NumCategories)
		u.cats = rng.Perm(cfg.NumCategories)[:k]
		u.trans = stickyMatrix(k, cfg.OwnStay, rng)
		u.cur = rng.Intn(k)
		nf := cfg.FollowsMin
		if cfg.FollowsMax > cfg.FollowsMin {
			nf += rng.Intn(cfg.FollowsMax - cfg.FollowsMin + 1)
		}
		nf = minInt(nf, cfg.NumProducers)
		// Prefer producers whose palette overlaps the consumer's interests.
		u.follows = pickFollows(producers, u.cats, nf, rng)
		consumers[i] = u
	}

	// Per-category ring of recent browsable items (indices into d.Items).
	recentByCat := make([][]int, cfg.NumCategories)
	itemStep := []int{} // creation step per item index

	catIndex := func(name string) int {
		var ci int
		fmt.Sscanf(name, "cat%02d", &ci)
		return ci
	}
	_ = catIndex

	for step := 0; step < cfg.Steps; step++ {
		ts := cfg.BaseTime + int64(step)*cfg.StepSecs
		// Producers create.
		for pi, p := range producers {
			if rng.Float64() >= cfg.CreateProb {
				continue
			}
			p.regime = sampleIdx(p.trans[p.regime], rng)
			ci := sampleIdx(p.regimes[p.regime], rng)
			ents, desc := sampleEntities(entNames[ci], entTopics[ci], cfg, rng)
			item := model.Item{
				ID:          fmt.Sprintf("v%07d", len(d.Items)),
				Category:    cats[ci],
				Producer:    p.id,
				Entities:    ents,
				Description: desc,
				Timestamp:   ts,
			}
			d.AddItem(item)
			idx := len(d.Items) - 1
			itemStep = append(itemStep, step)
			recentByCat[ci] = append(recentByCat[ci], idx)
			p.lastItem = idx
			p.lastStep = step
			_ = pi
		}
		// Trim browsable windows.
		for ci := range recentByCat {
			lst := recentByCat[ci]
			cut := 0
			for cut < len(lst) && itemStep[lst[cut]] < step-cfg.BrowsableWindow {
				cut++
			}
			recentByCat[ci] = lst[cut:]
		}
		// Consumers browse.
		for _, u := range consumers {
			if rng.Float64() >= cfg.BrowseProb {
				continue
			}
			itemIdx := -1
			// 1) Fresh item from a followed producer may capture attention.
			if rng.Float64() < cfg.InfluenceProb {
				if pi, ok := freshFollowedProducer(u, producers, step, cfg.RecencyWindow, rng); ok {
					u.attention = pi
					u.attLeft = 1 + geometric(cfg.AttentionMean, rng)
					itemIdx = producers[pi].lastItem
				}
			}
			// 2) Ongoing attention: follow the captured producer's output.
			if itemIdx < 0 && u.attention >= 0 && u.attLeft > 0 {
				p := producers[u.attention]
				if p.lastItem >= 0 && step-p.lastStep <= cfg.BrowsableWindow {
					itemIdx = p.lastItem
					u.attLeft--
				} else {
					u.attention, u.attLeft = -1, 0
				}
			}
			// 3) Own interest chain.
			if itemIdx < 0 {
				u.attention, u.attLeft = -1, 0
				u.cur = sampleIdx(u.trans[u.cur], rng)
				ci := u.cats[u.cur]
				pool := recentByCat[ci]
				if len(pool) == 0 {
					continue // nothing browsable in this category yet
				}
				// Recency-weighted pick: newer items are more likely.
				// Under NoRepeatBrowse retry a few times to find a fresh
				// item, then give up (browse nothing this step).
				for try := 0; try < 4; try++ {
					cand := pool[weightedRecentIdx(len(pool), rng)]
					if u.browsed == nil || !u.browsed[cand] {
						itemIdx = cand
						break
					}
				}
				if itemIdx < 0 {
					continue
				}
			}
			if u.browsed != nil {
				if u.browsed[itemIdx] {
					continue // repeat suppressed (attention/influence path)
				}
				u.browsed[itemIdx] = true
			}
			d.AddInteraction(model.Interaction{
				UserID:    u.id,
				ItemID:    d.Items[itemIdx].ID,
				Timestamp: ts,
			})
		}
	}
	d.SortByTime()
	return d
}

// sampleEntities draws an item's entity list: a topic is chosen, most
// entities come from it (TopicPurity), the rest from the whole category
// vocabulary — this plants the co-occurrence structure used by expansion.
func sampleEntities(names []string, topics [][]int, cfg GenConfig, rng *rand.Rand) ([]string, string) {
	n := cfg.EntitiesPerItemMin
	if cfg.EntitiesPerItemMax > cfg.EntitiesPerItemMin {
		n += rng.Intn(cfg.EntitiesPerItemMax - cfg.EntitiesPerItemMin + 1)
	}
	topic := topics[rng.Intn(len(topics))]
	ents := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var idx int
		if rng.Float64() < cfg.TopicPurity {
			idx = topic[rng.Intn(len(topic))]
		} else {
			idx = rng.Intn(len(names))
		}
		ents = append(ents, names[idx])
	}
	desc := "about " + strings.Join(ents, " and ")
	return ents, desc
}

func pickFollows(producers []*producerState, cats []int, n int, rng *rand.Rand) []int {
	inCats := func(p *producerState) bool {
		for _, dist := range p.regimes {
			for _, c := range cats {
				if dist[c] > 0.3 {
					return true
				}
			}
		}
		return false
	}
	var aligned, rest []int
	for i, p := range producers {
		if inCats(p) {
			aligned = append(aligned, i)
		} else {
			rest = append(rest, i)
		}
	}
	rng.Shuffle(len(aligned), func(i, j int) { aligned[i], aligned[j] = aligned[j], aligned[i] })
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	out := append([]int{}, aligned...)
	out = append(out, rest...)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func freshFollowedProducer(u *consumerState, producers []*producerState, step, window int, rng *rand.Rand) (int, bool) {
	var fresh []int
	for _, pi := range u.follows {
		p := producers[pi]
		if p.lastItem >= 0 && step-p.lastStep <= window {
			fresh = append(fresh, pi)
		}
	}
	if len(fresh) == 0 {
		return 0, false
	}
	return fresh[rng.Intn(len(fresh))], true
}

// stickyMatrix builds an n-state transition matrix with self-probability
// stay and the remainder spread unevenly (randomly) over other states.
func stickyMatrix(n int, stay float64, rng *rand.Rand) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		row := make([]float64, n)
		if n == 1 {
			row[0] = 1
			m[i] = row
			continue
		}
		row[i] = stay
		rest := 1 - stay
		weights := make([]float64, n)
		var sum float64
		for j := range weights {
			if j != i {
				weights[j] = 0.2 + rng.Float64()
				sum += weights[j]
			}
		}
		for j := range weights {
			if j != i {
				row[j] = rest * weights[j] / sum
			}
		}
		m[i] = row
	}
	return m
}

func sampleIdx(dist []float64, rng *rand.Rand) int {
	r := rng.Float64()
	var c float64
	for i, p := range dist {
		c += p
		if r < c {
			return i
		}
	}
	return len(dist) - 1
}

// geometric samples a geometric number of steps with the given mean.
func geometric(mean float64, rng *rand.Rand) int {
	if mean <= 1 {
		return 0
	}
	p := 1 / mean
	n := 0
	for rng.Float64() > p && n < 50 {
		n++
	}
	return n
}

// weightedRecentIdx picks an index in [0,n) biased toward the end (recent
// items): quadratic bias.
func weightedRecentIdx(n int, rng *rand.Rand) int {
	u := rng.Float64()
	return int(math.Sqrt(u) * float64(n))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
