// Package profile implements the CPPse user profile of Zhou et al. (ICDE
// 2019, §IV-B): a long-term interest list L and a fixed-size short-term
// interest window W, both sequences of ⟨category, producer⟩ pairs with
// entity statistics, plus the Maximum-Likelihood estimators with Dirichlet
// smoothing used by the item–user matching (§IV-C).
//
// The short-term window keeps the user's latest |W| interactions; when it
// fills up it is flushed into the long-term list. The long-term list backs
// the MLE estimates p̂(up|uc) and p̂(e|uc), smoothed against collection-wide
// background distributions so unseen producers/entities never receive a
// zero probability (the paper's serendipity requirement).
package profile

import (
	"ssrec/internal/model"
)

// Event is one browse record kept in a profile: the ⟨category, producer⟩
// pair plus the item's entities — the CPPse sequence element.
type Event struct {
	Category  string
	Producer  string
	Entities  []string
	Timestamp int64
}

// EventFromItem converts an interacted item into a profile event.
func EventFromItem(v model.Item, ts int64) Event {
	return Event{Category: v.Category, Producer: v.Producer, Entities: v.Entities, Timestamp: ts}
}

// Profile is one consumer's CPPse profile.
type Profile struct {
	UserID string

	// Long-term statistics (the list L, aggregated):
	catCount   map[string]int            // per-category browse counts
	prodCount  map[string]int            // per-producer browse counts
	entCount   map[string]map[string]int // category -> entity -> count
	prodTotal  int                       // Σ prodCount
	entTotal   map[string]int            // per-category Σ entity counts
	history    []string                  // category sequence in temporal order (for HMM training)
	producers  []string                  // producer aligned with history
	longEvents []Event                   // the list L itself, in temporal order
	total      int                       // total long-term events

	// Short-term window W (most recent events, capacity windowSize).
	window     []Event
	windowSize int
}

// New returns an empty profile with the given short-term window size
// (minimum 1).
func New(userID string, windowSize int) *Profile {
	if windowSize < 1 {
		windowSize = 1
	}
	return &Profile{
		UserID:     userID,
		catCount:   make(map[string]int),
		prodCount:  make(map[string]int),
		entCount:   make(map[string]map[string]int),
		entTotal:   make(map[string]int),
		windowSize: windowSize,
	}
}

// WindowSize returns the capacity of the short-term window.
func (p *Profile) WindowSize() int { return p.windowSize }

// Observe appends one event to the short-term window, flushing the window
// into the long-term list first if it is full. This is the paper's
// maintenance rule: W is flushed to L when full. The return reports
// whether the window rolled (a flush happened): a roll moves every
// buffered event into long-term state, changing Pl, WindowCategories and
// the count statistics for categories far beyond this event's — callers
// maintaining per-category dirty masks must treat a roll as "all
// categories dirty".
func (p *Profile) Observe(e Event) bool {
	rolled := false
	if len(p.window) >= p.windowSize {
		p.Flush()
		rolled = true
	}
	p.window = append(p.window, e)
	return rolled
}

// ObserveLongTerm bypasses the window and adds the event directly to the
// long-term list — used when bootstrapping profiles from historical
// training data.
func (p *Profile) ObserveLongTerm(e Event) {
	p.addLongTerm(e)
}

// Flush moves every window event into the long-term list and empties the
// window.
func (p *Profile) Flush() {
	for _, e := range p.window {
		p.addLongTerm(e)
	}
	p.window = p.window[:0]
}

func (p *Profile) addLongTerm(e Event) {
	p.catCount[e.Category]++
	p.prodCount[e.Producer]++
	p.prodTotal++
	em := p.entCount[e.Category]
	if em == nil {
		em = make(map[string]int)
		p.entCount[e.Category] = em
	}
	for _, ent := range e.Entities {
		em[ent]++
		p.entTotal[e.Category]++
	}
	p.history = append(p.history, e.Category)
	p.producers = append(p.producers, e.Producer)
	p.longEvents = append(p.longEvents, e)
	p.total++
}

// LongTermEvents returns the long-term interest list L in temporal order.
func (p *Profile) LongTermEvents() []Event {
	return append([]Event(nil), p.longEvents...)
}

// Window returns a copy of the current short-term window contents, oldest
// first.
func (p *Profile) Window() []Event {
	return append([]Event(nil), p.window...)
}

// WindowCategories returns the category sequence of the short-term window.
func (p *Profile) WindowCategories() []string {
	out := make([]string, len(p.window))
	for i, e := range p.window {
		out[i] = e.Category
	}
	return out
}

// AppendWindowCategories appends the window's category sequence to dst and
// returns it — the allocation-free form of WindowCategories for callers
// holding a reusable scratch buffer.
func (p *Profile) AppendWindowCategories(dst []string) []string {
	for _, e := range p.window {
		dst = append(dst, e.Category)
	}
	return dst
}

// WindowCategoryCount returns how many window events carry category c —
// the short-term interest count without materialising the category
// sequence.
func (p *Profile) WindowCategoryCount(c string) int {
	n := 0
	for _, e := range p.window {
		if e.Category == c {
			n++
		}
	}
	return n
}

// LongTermLen returns the number of long-term events; WindowLen the number
// currently buffered in the window.
func (p *Profile) LongTermLen() int { return p.total }
func (p *Profile) WindowLen() int   { return len(p.window) }

// TotalLen is long-term plus window.
func (p *Profile) TotalLen() int { return p.total + len(p.window) }

// CategorySequence returns the long-term category history in temporal
// order (the observation sequence for HMM training).
func (p *Profile) CategorySequence() []string { return append([]string(nil), p.history...) }

// ProducerSequence returns the long-term producer history aligned with
// CategorySequence.
func (p *Profile) ProducerSequence() []string { return append([]string(nil), p.producers...) }

// CategoryCount returns the long-term browse count of a category.
func (p *Profile) CategoryCount(c string) int { return p.catCount[c] }

// ProducerCount returns the long-term browse count of a producer.
func (p *Profile) ProducerCount(up string) int { return p.prodCount[up] }

// EntityCount returns the long-term count of entity e under category c.
func (p *Profile) EntityCount(c, e string) int { return p.entCount[c][e] }

// Categories returns the distinct long-term categories.
func (p *Profile) Categories() []string {
	out := make([]string, 0, len(p.catCount))
	for c := range p.catCount {
		out = append(out, c)
	}
	return out
}

// Producers returns the distinct long-term producers.
func (p *Profile) Producers() []string {
	out := make([]string, 0, len(p.prodCount))
	for u := range p.prodCount {
		out = append(out, u)
	}
	return out
}

// EntitiesIn returns the distinct entities recorded under category c.
func (p *Profile) EntitiesIn(c string) []string {
	em := p.entCount[c]
	out := make([]string, 0, len(em))
	for e := range em {
		out = append(out, e)
	}
	return out
}

// AppendCategories, AppendProducers and AppendEntitiesIn are the
// allocation-free forms of Categories/Producers/EntitiesIn: they append
// into a caller-owned scratch slice (map order — sort before relying on
// order) and return it.
func (p *Profile) AppendCategories(dst []string) []string {
	for c := range p.catCount {
		dst = append(dst, c)
	}
	return dst
}

func (p *Profile) AppendProducers(dst []string) []string {
	for u := range p.prodCount {
		dst = append(dst, u)
	}
	return dst
}

func (p *Profile) AppendEntitiesIn(c string, dst []string) []string {
	for e := range p.entCount[c] {
		dst = append(dst, e)
	}
	return dst
}

// DistinctProducerCount and DistinctEntityCount report |Up| and |E| for the
// leaf-entry tuple of the signature tree.
func (p *Profile) DistinctProducerCount() int { return len(p.prodCount) }
func (p *Profile) DistinctEntityCount(c string) int {
	return len(p.entCount[c])
}

// ProducerTotal returns the total long-term producer-browse count (the
// denominator of the producer MLE).
func (p *Profile) ProducerTotal() int { return p.prodTotal }

// EntityTotal returns the total long-term entity count under category c
// (the denominator of the entity MLE).
func (p *Profile) EntityTotal(c string) int { return p.entTotal[c] }

// CategoryVector returns the normalised long-term category distribution
// over the supplied category universe — the feature vector used by
// one-pass clustering to form user blocks.
func (p *Profile) CategoryVector(universe []string) []float64 {
	v := make([]float64, len(universe))
	if p.total == 0 {
		return v
	}
	for i, c := range universe {
		v[i] = float64(p.catCount[c]) / float64(p.total)
	}
	return v
}

// Background holds the collection-wide reference distributions used by
// Dirichlet smoothing: p(up|collection) and p(e|collection, c). Build one
// Background over the training corpus and share it across profiles.
type Background struct {
	prodProb map[string]float64            // producer -> collection probability
	entProb  map[string]map[string]float64 // category -> entity -> probability
	// Mu is the Dirichlet pseudo-count; larger values pull estimates
	// harder toward the background. Default 10.
	Mu float64
}

// NewBackground computes background distributions from a corpus of items.
func NewBackground(items []model.Item, mu float64) *Background {
	if mu <= 0 {
		mu = 10
	}
	b := &Background{
		prodProb: make(map[string]float64),
		entProb:  make(map[string]map[string]float64),
		Mu:       mu,
	}
	prodCount := make(map[string]int)
	entCount := make(map[string]map[string]int)
	entTotal := make(map[string]int)
	var prodTotal int
	for _, v := range items {
		prodCount[v.Producer]++
		prodTotal++
		em := entCount[v.Category]
		if em == nil {
			em = make(map[string]int)
			entCount[v.Category] = em
		}
		for _, e := range v.Entities {
			em[e]++
			entTotal[v.Category]++
		}
	}
	for u, c := range prodCount {
		b.prodProb[u] = float64(c) / float64(prodTotal)
	}
	for cat, em := range entCount {
		pm := make(map[string]float64, len(em))
		for e, c := range em {
			pm[e] = float64(c) / float64(entTotal[cat])
		}
		b.entProb[cat] = pm
	}
	return b
}

// floor keeps smoothed estimates strictly positive even for
// producers/entities absent from both profile and background.
const floor = 1e-9

// ProducerProb returns the background probability of a producer.
func (b *Background) ProducerProb(up string) float64 {
	if p := b.prodProb[up]; p > 0 {
		return p
	}
	return floor
}

// EntityProb returns the background probability of entity e in category c.
func (b *Background) EntityProb(c, e string) float64 {
	if p := b.entProb[c][e]; p > 0 {
		return p
	}
	return floor
}

// ProducerMLE returns the Dirichlet-smoothed estimate p̂(up|uc):
//
//	(count(up) + μ·p(up|collection)) / (total + μ)
//
// It is strictly positive for every producer, which is what prevents the
// zero-probability collapse the paper calls out.
func (p *Profile) ProducerMLE(up string, bg *Background) float64 {
	return (float64(p.prodCount[up]) + bg.Mu*bg.ProducerProb(up)) / (float64(p.prodTotal) + bg.Mu)
}

// EntityMLE returns the Dirichlet-smoothed estimate p̂(e|uc) within
// category c.
func (p *Profile) EntityMLE(c, e string, bg *Background) float64 {
	return (float64(p.entCount[c][e]) + bg.Mu*bg.EntityProb(c, e)) / (float64(p.entTotal[c]) + bg.Mu)
}

// CategoryMLE returns the plain long-term MLE of browsing category c with
// add-one smoothing over nCats categories — the fallback category
// probability when no trained BiHMM is available.
func (p *Profile) CategoryMLE(c string, nCats int) float64 {
	return (float64(p.catCount[c]) + 1) / (float64(p.total) + float64(nCats))
}

// Snapshot is the exported wire form of a Profile (gob-friendly).
type Snapshot struct {
	UserID     string
	WindowSize int
	LongTerm   []Event // replayed through ObserveLongTerm on restore
	Window     []Event
}

// Snapshot exports the profile state. Long-term events are reconstructed
// from the recorded category/producer sequences; per-event entities are
// carried alongside so counts restore exactly.
func (p *Profile) Snapshot() Snapshot {
	s := Snapshot{UserID: p.UserID, WindowSize: p.windowSize}
	s.LongTerm = append(s.LongTerm, p.longEvents...)
	s.Window = append(s.Window, p.window...)
	return s
}

// FromSnapshot rebuilds a profile from its wire form.
func FromSnapshot(s Snapshot) *Profile {
	p := New(s.UserID, s.WindowSize)
	for _, e := range s.LongTerm {
		p.ObserveLongTerm(e)
	}
	for _, e := range s.Window {
		p.window = append(p.window, e)
	}
	return p
}

// BackgroundSnapshot is the exported wire form of a Background.
type BackgroundSnapshot struct {
	ProdProb map[string]float64
	EntProb  map[string]map[string]float64
	Mu       float64
}

// Snapshot exports the background distributions.
func (b *Background) Snapshot() BackgroundSnapshot {
	s := BackgroundSnapshot{
		ProdProb: make(map[string]float64, len(b.prodProb)),
		EntProb:  make(map[string]map[string]float64, len(b.entProb)),
		Mu:       b.Mu,
	}
	for k, v := range b.prodProb {
		s.ProdProb[k] = v
	}
	for c, m := range b.entProb {
		cm := make(map[string]float64, len(m))
		for e, v := range m {
			cm[e] = v
		}
		s.EntProb[c] = cm
	}
	return s
}

// BackgroundFromSnapshot rebuilds a Background.
func BackgroundFromSnapshot(s BackgroundSnapshot) *Background {
	b := &Background{
		prodProb: make(map[string]float64, len(s.ProdProb)),
		entProb:  make(map[string]map[string]float64, len(s.EntProb)),
		Mu:       s.Mu,
	}
	for k, v := range s.ProdProb {
		b.prodProb[k] = v
	}
	for c, m := range s.EntProb {
		cm := make(map[string]float64, len(m))
		for e, v := range m {
			cm[e] = v
		}
		b.entProb[c] = cm
	}
	return b
}

// Store is a concurrency-free collection of profiles keyed by user ID.
type Store struct {
	profiles   map[string]*Profile
	windowSize int
}

// NewStore returns an empty store creating profiles with windowSize.
func NewStore(windowSize int) *Store {
	return &Store{profiles: make(map[string]*Profile), windowSize: windowSize}
}

// Get returns the profile for userID, creating it on first use.
func (s *Store) Get(userID string) *Profile {
	p := s.profiles[userID]
	if p == nil {
		p = New(userID, s.windowSize)
		s.profiles[userID] = p
	}
	return p
}

// Lookup returns the profile and whether it exists, without creating it.
func (s *Store) Lookup(userID string) (*Profile, bool) {
	p, ok := s.profiles[userID]
	return p, ok
}

// Remove deletes the profile for userID if present. Used by tests and by
// engine-level user removal; removing an unknown user is a no-op.
func (s *Store) Remove(userID string) {
	delete(s.profiles, userID)
}

// Len returns the number of profiles.
func (s *Store) Len() int { return len(s.profiles) }

// Each calls fn for every profile (unspecified order).
func (s *Store) Each(fn func(*Profile)) {
	for _, p := range s.profiles {
		fn(p)
	}
}

// UserIDs returns all user IDs (unspecified order).
func (s *Store) UserIDs() []string {
	out := make([]string, 0, len(s.profiles))
	for id := range s.profiles {
		out = append(out, id)
	}
	return out
}
