package profile

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"ssrec/internal/model"
)

func ev(c, up string, ents ...string) Event {
	return Event{Category: c, Producer: up, Entities: ents}
}

func TestWindowFlushSemantics(t *testing.T) {
	p := New("u1", 3)
	for i := 0; i < 3; i++ {
		p.Observe(ev("sports", "bbc"))
	}
	if p.WindowLen() != 3 || p.LongTermLen() != 0 {
		t.Fatalf("window=%d long=%d, want 3/0", p.WindowLen(), p.LongTermLen())
	}
	// Fourth observation must flush the full window first.
	p.Observe(ev("music", "mtv"))
	if p.WindowLen() != 1 || p.LongTermLen() != 3 {
		t.Fatalf("window=%d long=%d, want 1/3", p.WindowLen(), p.LongTermLen())
	}
	if p.CategoryCount("sports") != 3 {
		t.Errorf("sports count = %d", p.CategoryCount("sports"))
	}
	if p.CategoryCount("music") != 0 {
		t.Errorf("music leaked into long-term before flush")
	}
}

func TestWindowNeverExceedsCapacity(t *testing.T) {
	p := New("u1", 5)
	for i := 0; i < 57; i++ {
		p.Observe(ev(fmt.Sprintf("c%d", i%3), "up"))
		if p.WindowLen() > 5 {
			t.Fatalf("window overflow at i=%d: %d", i, p.WindowLen())
		}
	}
	if p.TotalLen() != 57 {
		t.Fatalf("TotalLen = %d, want 57", p.TotalLen())
	}
}

func TestFlushPreservesCounts(t *testing.T) {
	p := New("u1", 4)
	p.Observe(ev("a", "p1", "e1", "e2"))
	p.Observe(ev("b", "p2", "e1"))
	p.Flush()
	if p.WindowLen() != 0 {
		t.Fatalf("window not empty after flush")
	}
	if p.EntityCount("a", "e1") != 1 || p.EntityCount("a", "e2") != 1 || p.EntityCount("b", "e1") != 1 {
		t.Errorf("entity counts wrong after flush")
	}
	if p.ProducerCount("p1") != 1 || p.ProducerCount("p2") != 1 {
		t.Errorf("producer counts wrong after flush")
	}
	if got := p.CategorySequence(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("history = %v", got)
	}
	if got := p.ProducerSequence(); !reflect.DeepEqual(got, []string{"p1", "p2"}) {
		t.Errorf("producers = %v", got)
	}
}

func TestMinWindowSizeOne(t *testing.T) {
	p := New("u", 0)
	if p.WindowSize() != 1 {
		t.Fatalf("WindowSize = %d, want 1", p.WindowSize())
	}
	p.Observe(ev("a", "x"))
	p.Observe(ev("b", "y"))
	if p.LongTermLen() != 1 || p.WindowLen() != 1 {
		t.Fatalf("long=%d win=%d", p.LongTermLen(), p.WindowLen())
	}
}

func TestWindowCategoriesOrder(t *testing.T) {
	p := New("u", 10)
	for _, c := range []string{"x", "y", "z"} {
		p.Observe(ev(c, "p"))
	}
	if got := p.WindowCategories(); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Errorf("WindowCategories = %v", got)
	}
}

func testBackground() *Background {
	items := []model.Item{
		{ID: "v1", Category: "sports", Producer: "bbc", Entities: []string{"Messi", "worldcup"}},
		{ID: "v2", Category: "sports", Producer: "bbc", Entities: []string{"Messi"}},
		{ID: "v3", Category: "music", Producer: "mtv", Entities: []string{"Adele"}},
		{ID: "v4", Category: "sports", Producer: "espn", Entities: []string{"Nadal"}},
	}
	return NewBackground(items, 10)
}

func TestBackgroundDistributions(t *testing.T) {
	bg := testBackground()
	if got := bg.ProducerProb("bbc"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("p(bbc) = %v, want 0.5", got)
	}
	if got := bg.EntityProb("sports", "Messi"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("p(Messi|sports) = %v, want 0.5", got)
	}
	if bg.ProducerProb("unknown") <= 0 {
		t.Errorf("unknown producer has non-positive background prob")
	}
	if bg.EntityProb("sports", "unknown") <= 0 {
		t.Errorf("unknown entity has non-positive background prob")
	}
}

func TestDirichletSmoothingNeverZero(t *testing.T) {
	bg := testBackground()
	p := New("u", 5)
	p.ObserveLongTerm(ev("sports", "bbc", "Messi"))
	if got := p.ProducerMLE("never-seen", bg); got <= 0 {
		t.Errorf("smoothed producer MLE = %v", got)
	}
	if got := p.EntityMLE("sports", "never-seen", bg); got <= 0 {
		t.Errorf("smoothed entity MLE = %v", got)
	}
	if got := p.EntityMLE("unseen-cat", "x", bg); got <= 0 {
		t.Errorf("smoothed entity MLE in unseen category = %v", got)
	}
}

func TestMLEFavorsObserved(t *testing.T) {
	bg := testBackground()
	p := New("u", 5)
	for i := 0; i < 20; i++ {
		p.ObserveLongTerm(ev("sports", "bbc", "Messi"))
	}
	p.ObserveLongTerm(ev("sports", "espn", "Nadal"))
	if p.ProducerMLE("bbc", bg) <= p.ProducerMLE("espn", bg) {
		t.Errorf("frequent producer not favored")
	}
	if p.EntityMLE("sports", "Messi", bg) <= p.EntityMLE("sports", "Nadal", bg) {
		t.Errorf("frequent entity not favored")
	}
}

func TestMLEApproachesEmpiricalWithData(t *testing.T) {
	bg := testBackground()
	p := New("u", 5)
	for i := 0; i < 990; i++ {
		p.ObserveLongTerm(ev("sports", "bbc", "Messi"))
	}
	for i := 0; i < 10; i++ {
		p.ObserveLongTerm(ev("sports", "espn", "Nadal"))
	}
	got := p.ProducerMLE("bbc", bg)
	if math.Abs(got-0.99) > 0.01 {
		t.Errorf("MLE = %v, want ≈0.99", got)
	}
}

func TestCategoryMLE(t *testing.T) {
	p := New("u", 5)
	p.ObserveLongTerm(ev("a", "x"))
	p.ObserveLongTerm(ev("a", "x"))
	p.ObserveLongTerm(ev("b", "x"))
	// add-one over 4 categories: (2+1)/(3+4)
	if got, want := p.CategoryMLE("a", 4), 3.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("CategoryMLE = %v, want %v", got, want)
	}
	if p.CategoryMLE("zzz", 4) <= 0 {
		t.Errorf("unseen category MLE is zero")
	}
}

func TestCategoryVector(t *testing.T) {
	p := New("u", 5)
	p.ObserveLongTerm(ev("a", "x"))
	p.ObserveLongTerm(ev("a", "x"))
	p.ObserveLongTerm(ev("b", "x"))
	universe := []string{"a", "b", "c"}
	got := p.CategoryVector(universe)
	want := []float64{2.0 / 3, 1.0 / 3, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("vec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	empty := New("e", 5)
	for _, v := range empty.CategoryVector(universe) {
		if v != 0 {
			t.Errorf("empty profile has non-zero vector")
		}
	}
}

func TestDistinctCounts(t *testing.T) {
	p := New("u", 5)
	p.ObserveLongTerm(ev("a", "p1", "e1", "e2"))
	p.ObserveLongTerm(ev("a", "p2", "e1"))
	p.ObserveLongTerm(ev("b", "p1", "e3"))
	if p.DistinctProducerCount() != 2 {
		t.Errorf("DistinctProducerCount = %d", p.DistinctProducerCount())
	}
	if p.DistinctEntityCount("a") != 2 || p.DistinctEntityCount("b") != 1 {
		t.Errorf("DistinctEntityCount = %d/%d", p.DistinctEntityCount("a"), p.DistinctEntityCount("b"))
	}
}

func TestEventFromItem(t *testing.T) {
	v := model.Item{ID: "i", Category: "c", Producer: "p", Entities: []string{"e"}}
	e := EventFromItem(v, 42)
	if e.Category != "c" || e.Producer != "p" || e.Timestamp != 42 || len(e.Entities) != 1 {
		t.Errorf("EventFromItem = %+v", e)
	}
}

func TestStore(t *testing.T) {
	s := NewStore(5)
	p1 := s.Get("u1")
	if s.Get("u1") != p1 {
		t.Errorf("Get not idempotent")
	}
	if _, ok := s.Lookup("u2"); ok {
		t.Errorf("Lookup invented a profile")
	}
	s.Get("u2")
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	seen := map[string]bool{}
	s.Each(func(p *Profile) { seen[p.UserID] = true })
	if !seen["u1"] || !seen["u2"] {
		t.Errorf("Each missed profiles: %v", seen)
	}
	if got := s.UserIDs(); len(got) != 2 {
		t.Errorf("UserIDs = %v", got)
	}
}

// Property: for any observation sequence, TotalLen equals the number of
// observations, the window never exceeds capacity, and category counts sum
// to LongTermLen.
func TestProfileAccountingProperty(t *testing.T) {
	f := func(raw []uint8, wRaw uint8) bool {
		w := int(wRaw%10) + 1
		p := New("u", w)
		for _, b := range raw {
			p.Observe(ev(fmt.Sprintf("c%d", b%5), fmt.Sprintf("p%d", b%3)))
			if p.WindowLen() > w {
				return false
			}
		}
		if p.TotalLen() != len(raw) {
			return false
		}
		var sum int
		for _, c := range p.Categories() {
			sum += p.CategoryCount(c)
		}
		return sum == p.LongTermLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: smoothed MLEs over a fixed support form a sub-distribution
// (each in (0,1), and the sum over observed support ≤ 1 + tolerance).
func TestMLEDistributionProperty(t *testing.T) {
	bg := testBackground()
	f := func(raw []uint8) bool {
		p := New("u", 3)
		prods := []string{"bbc", "mtv", "espn"}
		for _, b := range raw {
			p.ObserveLongTerm(ev("sports", prods[int(b)%3], "Messi"))
		}
		var sum float64
		for _, up := range prods {
			v := p.ProducerMLE(up, bg)
			if v <= 0 || v >= 1 {
				return false
			}
			sum += v
		}
		return sum <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	p := New("u", 5)
	e := ev("sports", "bbc", "Messi", "worldcup")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Observe(e)
	}
}

func BenchmarkProducerMLE(b *testing.B) {
	bg := testBackground()
	p := New("u", 5)
	for i := 0; i < 100; i++ {
		p.ObserveLongTerm(ev("sports", "bbc", "Messi"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ProducerMLE("bbc", bg)
	}
}
