// Package shx implements the shift-add-xor family of string hash functions
// (Ramakrishna & Zobel, DASFAA 1997) and the chained hash table of
// ⟨key, sptr, nextptr⟩ triads that the CPPse-index uses to map
// category–entity pairs to extended signature trees (Zhou et al., ICDE
// 2019, §V-A, Eq. 5).
//
// The hash is defined by
//
//	init(s)        = seed
//	step(h, c)     = h XOR (h<<L + h>>R + c)
//	final(h)       = h mod T
//
// computed left-to-right over the bytes of the key. L and R are the shift
// widths; the paper's "class" of functions is parameterised by the seed.
package shx

import "fmt"

// Default parameters. L=5, R=2 is the classic pairing from the paper's
// reference; the table size is chosen by the table constructor.
const (
	DefaultSeed = 1315423911
	DefaultL    = 5
	DefaultR    = 2
)

// Hasher is a reusable shift-add-xor hash function.
type Hasher struct {
	Seed uint32
	L    uint // left shift
	R    uint // right shift
}

// NewHasher returns a Hasher with the default parameters.
func NewHasher() Hasher {
	return Hasher{Seed: DefaultSeed, L: DefaultL, R: DefaultR}
}

// Hash returns the raw (pre-modulo) shift-add-xor hash of s.
func (h Hasher) Hash(s string) uint32 {
	v := h.Seed
	for i := 0; i < len(s); i++ {
		v ^= (v << h.L) + (v >> h.R) + uint32(s[i])
	}
	return v
}

// HashMod returns the hash reduced modulo t (the final(h, s) = h || T step
// of Eq. 5). t must be positive.
func (h Hasher) HashMod(s string, t uint32) uint32 {
	if t == 0 {
		panic("shx: zero table size")
	}
	return h.Hash(s) % t
}

// PairKey builds the canonical string key for a ⟨category, entity⟩ phrase.
// A unit separator keeps ("ab","c") distinct from ("a","bc").
func PairKey(category, entity string) string {
	return category + "\x1f" + entity
}

// triad is one element of a bucket chain: the paper's ⟨key, sptr, nextptr⟩.
type triad struct {
	key  string
	raw  uint32 // cached full hash for fast chain scans
	ptrs []any  // sptr: pointers to extended signature trees (one per block)
	next *triad // nextptr
}

// Table is a chained hash table from string keys to sets of tree pointers.
// It intentionally mirrors the paper's structure (bucket array of triad
// chains) rather than wrapping a Go map, so that the AblationHash benchmark
// can compare the two fairly. The zero value is not usable; use NewTable.
type Table struct {
	hasher  Hasher
	buckets []*triad
	size    int
}

// NewTable returns a table with the given number of buckets (rounded up to
// a minimum of 1).
func NewTable(buckets int) *Table {
	if buckets < 1 {
		buckets = 1
	}
	return &Table{hasher: NewHasher(), buckets: make([]*triad, buckets)}
}

// NewTableWithHasher returns a table using a custom hasher, e.g. a
// different seed from the shift-add-xor class.
func NewTableWithHasher(buckets int, h Hasher) *Table {
	t := NewTable(buckets)
	t.hasher = h
	return t
}

// Len returns the number of distinct keys stored.
func (t *Table) Len() int { return t.size }

// Buckets returns the number of buckets.
func (t *Table) Buckets() int { return len(t.buckets) }

// Insert appends ptr to the pointer set of key, creating the triad if the
// key is new. Duplicate pointers for a key are allowed (the caller — the
// CPPse-index — guarantees one pointer per block).
func (t *Table) Insert(key string, ptr any) {
	raw := t.hasher.Hash(key)
	slot := raw % uint32(len(t.buckets))
	for tr := t.buckets[slot]; tr != nil; tr = tr.next {
		if tr.raw == raw && tr.key == key {
			tr.ptrs = append(tr.ptrs, ptr)
			return
		}
	}
	t.buckets[slot] = &triad{key: key, raw: raw, ptrs: []any{ptr}, next: t.buckets[slot]}
	t.size++
}

// Lookup returns the pointer set for key, or nil if absent.
func (t *Table) Lookup(key string) []any {
	raw := t.hasher.Hash(key)
	slot := raw % uint32(len(t.buckets))
	for tr := t.buckets[slot]; tr != nil; tr = tr.next {
		if tr.raw == raw && tr.key == key {
			return tr.ptrs
		}
	}
	return nil
}

// Contains reports whether key is present.
func (t *Table) Contains(key string) bool { return t.Lookup(key) != nil }

// Delete removes key and returns whether it was present.
func (t *Table) Delete(key string) bool {
	raw := t.hasher.Hash(key)
	slot := raw % uint32(len(t.buckets))
	var prev *triad
	for tr := t.buckets[slot]; tr != nil; prev, tr = tr, tr.next {
		if tr.raw == raw && tr.key == key {
			if prev == nil {
				t.buckets[slot] = tr.next
			} else {
				prev.next = tr.next
			}
			t.size--
			return true
		}
	}
	return false
}

// Range calls fn for every (key, pointer set) pair until fn returns false.
// Iteration order is unspecified.
func (t *Table) Range(fn func(key string, ptrs []any) bool) {
	for _, head := range t.buckets {
		for tr := head; tr != nil; tr = tr.next {
			if !fn(tr.key, tr.ptrs) {
				return
			}
		}
	}
}

// ChainStats describes bucket occupancy, useful for verifying the
// uniformity property the paper cites as the reason for choosing
// shift-add-xor hashing.
type ChainStats struct {
	Buckets   int
	Keys      int
	MaxChain  int
	NonEmpty  int
	AvgChain  float64 // over non-empty buckets
	LoadRatio float64 // keys / buckets
}

// Stats computes occupancy statistics.
func (t *Table) Stats() ChainStats {
	s := ChainStats{Buckets: len(t.buckets), Keys: t.size}
	for _, head := range t.buckets {
		n := 0
		for tr := head; tr != nil; tr = tr.next {
			n++
		}
		if n > 0 {
			s.NonEmpty++
			if n > s.MaxChain {
				s.MaxChain = n
			}
		}
	}
	if s.NonEmpty > 0 {
		s.AvgChain = float64(s.Keys) / float64(s.NonEmpty)
	}
	if s.Buckets > 0 {
		s.LoadRatio = float64(s.Keys) / float64(s.Buckets)
	}
	return s
}

func (s ChainStats) String() string {
	return fmt.Sprintf("buckets=%d keys=%d nonEmpty=%d maxChain=%d avgChain=%.2f load=%.2f",
		s.Buckets, s.Keys, s.NonEmpty, s.MaxChain, s.AvgChain, s.LoadRatio)
}
