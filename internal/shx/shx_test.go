package shx

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	h := NewHasher()
	if h.Hash("sports\x1fBeckham") != h.Hash("sports\x1fBeckham") {
		t.Fatal("hash not deterministic")
	}
	if h.Hash("a") == h.Hash("b") {
		t.Fatal("trivially colliding hash")
	}
}

func TestHashSeedMatters(t *testing.T) {
	a := Hasher{Seed: 1, L: 5, R: 2}
	b := Hasher{Seed: 2, L: 5, R: 2}
	same := 0
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.Hash(k) == b.Hash(k) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds agree on %d/100 keys", same)
	}
}

func TestHashModInRange(t *testing.T) {
	h := NewHasher()
	for i := 0; i < 1000; i++ {
		v := h.HashMod(fmt.Sprintf("k%d", i), 97)
		if v >= 97 {
			t.Fatalf("HashMod out of range: %d", v)
		}
	}
}

func TestHashModPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHasher().HashMod("x", 0)
}

func TestPairKeyUnambiguous(t *testing.T) {
	if PairKey("ab", "c") == PairKey("a", "bc") {
		t.Fatal("PairKey is ambiguous")
	}
	if PairKey("sports", "Messi") == PairKey("sports", "Nadal") {
		t.Fatal("PairKey ignores entity")
	}
}

func TestUniformity(t *testing.T) {
	// The paper picks shift-add-xor for uniformity; check that over a
	// realistic key set no bucket is grossly overloaded.
	tab := NewTable(256)
	for c := 0; c < 20; c++ {
		for e := 0; e < 200; e++ {
			tab.Insert(PairKey(fmt.Sprintf("cat%d", c), fmt.Sprintf("entity-%d", e)), nil)
		}
	}
	s := tab.Stats()
	if s.Keys != 4000 {
		t.Fatalf("keys = %d", s.Keys)
	}
	// Expected load is ~15.6 per bucket; a max chain over 3x that would
	// signal poor mixing.
	if s.MaxChain > 3*16 {
		t.Errorf("max chain %d too long for %d keys / %d buckets", s.MaxChain, s.Keys, s.Buckets)
	}
}

func TestInsertLookupRoundTrip(t *testing.T) {
	tab := NewTable(16)
	type tree struct{ id int }
	t1, t2 := &tree{1}, &tree{2}
	tab.Insert("k1", t1)
	tab.Insert("k1", t2)
	tab.Insert("k2", t1)

	got := tab.Lookup("k1")
	if len(got) != 2 || got[0] != t1 || got[1] != t2 {
		t.Fatalf("Lookup(k1) = %v", got)
	}
	if got := tab.Lookup("k2"); len(got) != 1 || got[0] != t1 {
		t.Fatalf("Lookup(k2) = %v", got)
	}
	if tab.Lookup("absent") != nil {
		t.Fatal("Lookup(absent) != nil")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestDelete(t *testing.T) {
	tab := NewTable(4) // small table forces chains
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, k := range keys {
		tab.Insert(k, k)
	}
	if !tab.Delete("c") {
		t.Fatal("Delete(c) = false")
	}
	if tab.Delete("c") {
		t.Fatal("double Delete(c) = true")
	}
	if tab.Contains("c") {
		t.Fatal("deleted key still present")
	}
	for _, k := range keys {
		if k == "c" {
			continue
		}
		if !tab.Contains(k) {
			t.Fatalf("key %q lost after deleting c", k)
		}
	}
	if tab.Len() != len(keys)-1 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestRange(t *testing.T) {
	tab := NewTable(8)
	want := map[string]bool{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%d", i)
		tab.Insert(k, i)
		want[k] = true
	}
	seen := map[string]bool{}
	tab.Range(func(key string, ptrs []any) bool {
		seen[key] = true
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(seen), len(want))
	}
	// Early termination.
	n := 0
	tab.Range(func(string, []any) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("Range did not stop early: n=%d", n)
	}
}

func TestTableMinimumOneBucket(t *testing.T) {
	tab := NewTable(0)
	tab.Insert("x", 1)
	if !tab.Contains("x") {
		t.Fatal("single-bucket table broken")
	}
}

// Property: any inserted key is found with its pointers; absent keys are not.
func TestLookupProperty(t *testing.T) {
	f := func(keys []string, probe string) bool {
		tab := NewTable(32)
		inserted := map[string]bool{}
		for _, k := range keys {
			tab.Insert(k, k)
			inserted[k] = true
		}
		for k := range inserted {
			if !tab.Contains(k) {
				return false
			}
		}
		return tab.Contains(probe) == inserted[probe]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Delete removes exactly the requested key.
func TestDeleteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(8)
		keys := make([]string, 30)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d", i)
			tab.Insert(keys[i], i)
		}
		victim := keys[rng.Intn(len(keys))]
		tab.Delete(victim)
		for _, k := range keys {
			if k == victim {
				if tab.Contains(k) {
					return false
				}
			} else if !tab.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHash(b *testing.B) {
	h := NewHasher()
	key := PairKey("sports", "Australian Open")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Hash(key)
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tab := NewTable(1 << 12)
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = PairKey(fmt.Sprintf("cat%d", i%20), fmt.Sprintf("e%d", i))
		tab.Insert(keys[i], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkGoMapLookup(b *testing.B) {
	// Reference point for the AblationHash comparison.
	m := make(map[string][]any)
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = PairKey(fmt.Sprintf("cat%d", i%20), fmt.Sprintf("e%d", i))
		m[keys[i]] = append(m[keys[i]], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[keys[i%len(keys)]]
	}
}
