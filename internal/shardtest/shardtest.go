// Package shardtest is the shared test harness of the sharded-deployment
// conformance suites: one seeded stream-replay fixture, a deterministic
// replay driver and a transcript differ, used by both the in-process suite
// (internal/shard) and the network-transport suite (internal/shardrpc) so
// the two prove equivalence against the SAME reference workload.
//
// The fixture is deliberately heavyweight — a 0.5-scale YTube-shaped
// dataset whose post-training stream carries at least 10k interactions
// (the conformance acceptance floor) — and is built once per process.
package shardtest

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/model"
	"ssrec/internal/sigtree"
)

// Replay schedule constants, shared by every conformance suite.
const (
	// ReplayBatch is the observations per ObserveBatch micro-batch.
	ReplayBatch = 128
	// ReplayQueryLen is the items recommended between micro-batches.
	ReplayQueryLen = 6
	// ReplayK is the per-query result size.
	ReplayK = 10
)

// Deployment is the surface the replay drives — satisfied by *core.Engine
// (the reference), *shard.Router (in-process and remote deployments) and
// any other engine-shaped system under test.
type Deployment interface {
	ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error)
	RecommendBatch(ctx context.Context, items []model.Item, opts ...core.Option) ([]core.Result, error)
}

// Fixture is the shared deterministic workload: one trained-engine
// snapshot every deployment boots from, the post-training observation
// stream and the query schedule interleaved between micro-batches.
type Fixture struct {
	Snapshot []byte
	Obs      []core.Observation
	Queries  []model.Item
}

var fixtureCache *Fixture

// Load builds (once per process) the seeded dataset, trains the reference
// engine on the leading third and snapshots it.
func Load(tb testing.TB) *Fixture {
	tb.Helper()
	if fixtureCache != nil {
		return fixtureCache
	}
	cfg := dataset.YTubeConfig(0.5)
	cfg.Seed = 17
	ds := dataset.Generate(cfg)
	eng := core.New(core.Config{Categories: ds.Categories, TrainMaxIter: 3, Restarts: 1, Seed: 17})
	nTrain := len(ds.Interactions) / 3
	if err := eng.Train(ds.Items, ds.Interactions[:nTrain], ds.Item); err != nil {
		tb.Fatalf("train: %v", err)
	}
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		tb.Fatalf("snapshot: %v", err)
	}
	fx := &Fixture{Snapshot: buf.Bytes()}
	lastTS := ds.Interactions[nTrain-1].Timestamp
	for _, ir := range ds.Interactions[nTrain:] {
		if v, ok := ds.Item(ir.ItemID); ok {
			fx.Obs = append(fx.Obs, core.Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp})
		}
	}
	for _, v := range ds.Items {
		if v.Timestamp > lastTS {
			fx.Queries = append(fx.Queries, v)
		}
	}
	if len(fx.Obs) < 10000 {
		tb.Fatalf("replay stream has %d interactions, conformance floor is 10k", len(fx.Obs))
	}
	if len(fx.Queries) < ReplayQueryLen {
		tb.Fatalf("only %d query items", len(fx.Queries))
	}
	fixtureCache = fx
	return fx
}

// Transcript is everything a deployment exposes during one replay.
type Transcript struct {
	Reports []core.BatchReport
	Results [][]core.Result
}

// Replay drives the deterministic schedule — micro-batches of
// observations, each followed by a rotating recommendation batch over
// future items — and records the transcript. maxBatches <= 0 replays the
// full stream; extra query options (e.g. core.WithParallelism) are
// appended to the schedule's WithK.
func (fx *Fixture) Replay(tb testing.TB, d Deployment, maxBatches int, opts ...core.Option) *Transcript {
	tb.Helper()
	return fx.ReplayBatchSize(tb, d, ReplayBatch, maxBatches, opts...)
}

// ReplayBatchSize is Replay with the micro-batch size as a parameter — the
// write-path conformance suites sweep it (batch=1 flushes the index after
// every observation; larger batches accumulate dirty-category masks across
// many observations before one flush, exercising mask merging). Transcripts
// are only comparable between replays that used the SAME batch size: the
// flush schedule is observable through BatchReport.Flushed.
func (fx *Fixture) ReplayBatchSize(tb testing.TB, d Deployment, batchSize, maxBatches int, opts ...core.Option) *Transcript {
	tb.Helper()
	return fx.ReplayWithHooks(tb, d, batchSize, maxBatches, nil, opts...)
}

// ReplayWithHooks is ReplayBatchSize with mid-stream intervention points:
// hooks[i] runs just BEFORE batch i's ObserveBatch, at the exact batch
// boundary the schedule defines. The resharding conformance gates use it
// to kick off a live split/merge at a seeded batch index and to join it a
// fixed number of batches later, so the migration provably overlaps the
// stream; the fault-injection suites can likewise kill or revive replicas
// at deterministic stream positions. Hooks run on the replay goroutine —
// anything concurrent must be launched by the hook itself.
func (fx *Fixture) ReplayWithHooks(tb testing.TB, d Deployment, batchSize, maxBatches int, hooks map[int]func(batchIdx int), opts ...core.Option) *Transcript {
	tb.Helper()
	if batchSize <= 0 {
		tb.Fatalf("batchSize %d", batchSize)
	}
	ctx := context.Background()
	tr := &Transcript{}
	qopts := append([]core.Option{core.WithK(ReplayK)}, opts...)
	batchIdx := 0
	for lo := 0; lo < len(fx.Obs); lo += batchSize {
		hi := min(lo+batchSize, len(fx.Obs))
		if hook, ok := hooks[batchIdx]; ok {
			hook(batchIdx)
		}
		rep, err := d.ObserveBatch(ctx, fx.Obs[lo:hi])
		if err != nil {
			tb.Fatalf("batch %d: ObserveBatch: %v", batchIdx, err)
		}
		rep.Errors = nil // compared separately via Rejected
		tr.Reports = append(tr.Reports, rep)
		q := QueryWindow(fx.Queries, batchIdx)
		results, err := d.RecommendBatch(ctx, q, qopts...)
		if err != nil {
			tb.Fatalf("batch %d: RecommendBatch: %v", batchIdx, err)
		}
		for i := range results {
			// Pruning counters legitimately differ across shardings (each
			// deployment prunes with different bound timing); observable
			// equivalence is about results, not traversal effort.
			results[i].Stats = sigtree.SearchStats{}
		}
		tr.Results = append(tr.Results, results)
		batchIdx++
		if maxBatches > 0 && batchIdx >= maxBatches {
			break
		}
	}
	return tr
}

// ReplaySeq drives the SAME deterministic schedule as Replay, but issues
// every query as its own single-item RecommendBatch call — the engine-call
// pattern a Session produces (each Ask is one batch call after the
// pending observations are admitted). Because item registration advances
// the entity expander, per-item and whole-window query batches are
// different (both deterministic) schedules; a session transcript must be
// compared against THIS reference.
func (fx *Fixture) ReplaySeq(tb testing.TB, d Deployment, maxBatches int, opts ...core.Option) *Transcript {
	tb.Helper()
	ctx := context.Background()
	tr := &Transcript{}
	qopts := append([]core.Option{core.WithK(ReplayK)}, opts...)
	batchIdx := 0
	for lo := 0; lo < len(fx.Obs); lo += ReplayBatch {
		hi := min(lo+ReplayBatch, len(fx.Obs))
		rep, err := d.ObserveBatch(ctx, fx.Obs[lo:hi])
		if err != nil {
			tb.Fatalf("batch %d: ObserveBatch: %v", batchIdx, err)
		}
		rep.Errors = nil
		tr.Reports = append(tr.Reports, rep)
		window := make([]core.Result, 0, ReplayQueryLen)
		for _, q := range QueryWindow(fx.Queries, batchIdx) {
			results, err := d.RecommendBatch(ctx, []model.Item{q}, qopts...)
			if err != nil {
				tb.Fatalf("batch %d: RecommendBatch(%s): %v", batchIdx, q.ID, err)
			}
			results[0].Stats = sigtree.SearchStats{}
			window = append(window, results[0])
		}
		tr.Results = append(tr.Results, window)
		batchIdx++
		if maxBatches > 0 && batchIdx >= maxBatches {
			break
		}
	}
	return tr
}

// SessionDriver is the session surface the stream replay drives —
// satisfied by core.Session (over any SessionBackend: engine, in-process
// router, remote router) and by server.ClientSession (the /v2/session
// wire client), so one replay proves the whole stack.
type SessionDriver interface {
	Push(o core.Observation) error
	Ask(v model.Item, opts ...core.Option) error
	Results() <-chan core.SessionResult
	Close() error
}

// ReplaySession replays the schedule as interleaved session traffic: each
// micro-batch is Pushed observation by observation, then the query window
// is Asked item by item. Answers are collected from the ordered Results
// channel (concurrently — the driver may flow-control the pushes) and
// grouped back into the schedule's windows. The session must be opened
// with a micro-batch of ReplayBatch and no linger so its flush points
// coincide with the reference's; Close is called at the end.
func (fx *Fixture) ReplaySession(tb testing.TB, ses SessionDriver, maxBatches int, opts ...core.Option) *Transcript {
	tb.Helper()
	qopts := append([]core.Option{core.WithK(ReplayK)}, opts...)
	var collected []core.Result
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range ses.Results() {
			r.Stats = sigtree.SearchStats{}
			collected = append(collected, r.Result)
		}
	}()
	batchIdx := 0
	for lo := 0; lo < len(fx.Obs); lo += ReplayBatch {
		hi := min(lo+ReplayBatch, len(fx.Obs))
		for _, o := range fx.Obs[lo:hi] {
			if err := ses.Push(o); err != nil {
				tb.Fatalf("batch %d: Push: %v", batchIdx, err)
			}
		}
		for _, q := range QueryWindow(fx.Queries, batchIdx) {
			if err := ses.Ask(q, qopts...); err != nil {
				tb.Fatalf("batch %d: Ask(%s): %v", batchIdx, q.ID, err)
			}
		}
		batchIdx++
		if maxBatches > 0 && batchIdx >= maxBatches {
			break
		}
	}
	if err := ses.Close(); err != nil {
		tb.Fatalf("session close: %v", err)
	}
	<-done
	tr := &Transcript{}
	if len(collected) != batchIdx*ReplayQueryLen {
		tb.Fatalf("session answered %d queries, schedule asked %d", len(collected), batchIdx*ReplayQueryLen)
	}
	for i := 0; i < batchIdx; i++ {
		tr.Results = append(tr.Results, collected[i*ReplayQueryLen:(i+1)*ReplayQueryLen])
	}
	return tr
}

// QueryWindow rotates deterministically through the future-item list.
func QueryWindow(items []model.Item, batchIdx int) []model.Item {
	out := make([]model.Item, 0, ReplayQueryLen)
	for i := 0; i < ReplayQueryLen; i++ {
		out = append(out, items[(batchIdx*ReplayQueryLen+i)%len(items)])
	}
	return out
}

// Diff asserts two replays are observably identical: same ingest reports,
// same per-item errors, same ranked results (IDs, scores, order).
func Diff(t *testing.T, want, got *Transcript, label string) {
	t.Helper()
	if len(want.Reports) != len(got.Reports) {
		t.Fatalf("%s: %d reports vs %d", label, len(got.Reports), len(want.Reports))
	}
	for i := range want.Reports {
		w, g := want.Reports[i], got.Reports[i]
		if w.Applied != g.Applied || w.Rejected != g.Rejected || w.Flushed != g.Flushed {
			t.Errorf("%s: batch %d report = %+v, want %+v", label, i, g, w)
		}
	}
	DiffResults(t, want, got, label)
}

// DiffResults asserts the query halves of two replays are bit-identical —
// the comparison a session transcript supports (ingest reports travel
// per-flush and are summarised, not itemised, on a session).
func DiffResults(t *testing.T, want, got *Transcript, label string) {
	t.Helper()
	if len(want.Results) != len(got.Results) {
		t.Fatalf("%s: %d result windows vs %d", label, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		for j := range want.Results[i] {
			w, g := want.Results[i][j], got.Results[i][j]
			if w.ItemID != g.ItemID {
				t.Fatalf("%s: batch %d item %d: id %q vs %q", label, i, j, g.ItemID, w.ItemID)
			}
			if (w.Err == nil) != (g.Err == nil) {
				t.Fatalf("%s: batch %d item %s: err %v vs %v", label, i, w.ItemID, g.Err, w.Err)
			}
			if !reflect.DeepEqual(w.Recommendations, g.Recommendations) {
				t.Fatalf("%s: batch %d item %s: ranked results diverged\n got %v\nwant %v",
					label, i, w.ItemID, g.Recommendations, w.Recommendations)
			}
		}
	}
}
