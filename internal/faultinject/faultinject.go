// Package faultinject is the chaos harness of the sharded deployment: a
// shard.Shard implementation (plus Pinger / SnapshotReceiver /
// SnapshotProvider) that wraps an in-process engine behind a fault plane
// — seeded random drops, latency spikes, stalls and explicit mid-stream
// kills — so the conformance suite can prove the Router + ReplicaSet +
// Supervisor machinery keeps a replicated deployment bit-identical and
// available under process loss, without real processes or real clocks.
//
// A Node mimics a shardd's lifecycle exactly as the Router observes it:
// Boot installs an engine and mints a fresh boot epoch, Kill makes every
// call fail with shard.ErrShardUnavailable AND discards the engine (a
// crashed process loses its state), Revive brings the transport back with
// the node still blank — the restarted-but-empty shardd the fail-closed
// re-inclusion rules exist for. Handoff re-seeds it (core.LoadShardFrom +
// a new epoch), exactly like POST /shard/v1/snapshot.
//
// Every injected fault is recorded in the shared Log — the fault matrix a
// chaos run uploads as a CI artifact, proving the run actually exercised
// faults rather than passing vacuously.
package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/sigtree"
)

// Entry is one injected fault.
type Entry struct {
	Node  string // "slot<i>/replica<j>" or any label given at construction
	Op    string // the shard operation the fault hit
	Fault string // drop | spike | stall | killed | blank
}

// Log is the shared fault matrix of one chaos run.
type Log struct {
	mu      sync.Mutex
	entries []Entry
}

func (l *Log) add(e Entry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.entries = append(l.entries, e)
	l.mu.Unlock()
}

// Entries snapshots the recorded faults.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}

// Count reports how many recorded faults have the given kind ("" counts
// everything).
func (l *Log) Count(fault string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if fault == "" {
		return len(l.entries)
	}
	n := 0
	for _, e := range l.entries {
		if e.Fault == fault {
			n++
		}
	}
	return n
}

// WriteTo dumps the fault matrix as one line per fault — the CI artifact.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for i, e := range l.entries {
		n, err := fmt.Fprintf(w, "%6d %-20s %-14s %s\n", i, e.Node, e.Op, e.Fault)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Faults are the randomized fault probabilities of one Node, drawn from
// the node's seeded RNG per operation. Zero values inject nothing — kills
// are always explicit, so a run with zero rates is deterministic.
type Faults struct {
	// DropRate fails the call with shard.ErrShardUnavailable.
	DropRate float64
	// SpikeRate delays the call by SpikeDelay before running it.
	SpikeRate  float64
	SpikeDelay time.Duration
	// StallRate delays by StallDelay (a long stall models a frozen host;
	// keep it under the caller's timeout or pair it with DropRate).
	StallRate  float64
	StallDelay time.Duration
}

// bootState pairs the engine with its epoch, published atomically —
// mirroring shardrpc.Server.
type bootState struct {
	local *shard.Local
	epoch string
}

// Node is one chaos-wrapped replica.
type Node struct {
	idx, of int
	name    string
	log     *Log

	boot   atomic.Pointer[bootState]
	killed atomic.Bool
	seq    atomic.Uint64 // epoch counter (deterministic, unlike shardd's nonce)

	mu     sync.Mutex
	rng    *rand.Rand
	faults Faults
}

// New builds a blank node for slot idx of an of-slot deployment. seed
// drives the node's private fault RNG; name labels it in the fault
// matrix.
func New(idx, of int, name string, seed int64, log *Log) *Node {
	return &Node{idx: idx, of: of, name: name, log: log, rng: rand.New(rand.NewSource(seed))}
}

// SetFaults installs the randomized fault rates (safe at any time).
func (n *Node) SetFaults(f Faults) {
	n.mu.Lock()
	n.faults = f
	n.mu.Unlock()
}

// Boot installs an engine (already partitioned as slot idx of of) and
// mints a fresh boot epoch.
func (n *Node) Boot(e *core.Engine) {
	n.boot.Store(&bootState{
		local: shard.NewLocal(n.idx, e),
		epoch: fmt.Sprintf("fi-%s-%d", n.name, n.seq.Add(1)),
	})
	n.killed.Store(false)
}

// Kill crashes the node: every call fails unavailable and the engine
// state is DISCARDED — a revived node is blank until re-seeded.
func (n *Node) Kill() {
	n.killed.Store(true)
	n.boot.Store(nil)
}

// Revive restores the transport without restoring state: the node
// answers again but is blank (Ping fails, serving calls fail) until a
// snapshot handoff boots it — the restarted shardd lifecycle.
func (n *Node) Revive() {
	n.killed.Store(false)
}

// Killed reports whether the node is currently crashed.
func (n *Node) Killed() bool { return n.killed.Load() }

// Index implements shard.Shard.
func (n *Node) Index() int { return n.idx }

// fault applies the fault plane to one operation: explicit kill first,
// then the seeded random faults. Returns the error the operation must
// fail with, or nil to proceed.
func (n *Node) fault(op string) error {
	if n.killed.Load() {
		n.log.add(Entry{Node: n.name, Op: op, Fault: "killed"})
		return fmt.Errorf("faultinject: node %s killed: %s: %w", n.name, op, shard.ErrShardUnavailable)
	}
	n.mu.Lock()
	f := n.faults
	var drop, spike, stall bool
	if f.DropRate > 0 {
		drop = n.rng.Float64() < f.DropRate
	}
	if f.SpikeRate > 0 {
		spike = n.rng.Float64() < f.SpikeRate
	}
	if f.StallRate > 0 {
		stall = n.rng.Float64() < f.StallRate
	}
	n.mu.Unlock()
	if stall {
		n.log.add(Entry{Node: n.name, Op: op, Fault: "stall"})
		time.Sleep(f.StallDelay)
	} else if spike {
		n.log.add(Entry{Node: n.name, Op: op, Fault: "spike"})
		time.Sleep(f.SpikeDelay)
	}
	if drop {
		n.log.add(Entry{Node: n.name, Op: op, Fault: "drop"})
		return fmt.Errorf("faultinject: node %s dropped %s: %w", n.name, op, shard.ErrShardUnavailable)
	}
	return nil
}

// serving returns the booted local or an unavailable error — the 503 a
// blank shardd answers.
func (n *Node) serving(op string) (*shard.Local, error) {
	b := n.boot.Load()
	if b == nil {
		n.log.add(Entry{Node: n.name, Op: op, Fault: "blank"})
		return nil, fmt.Errorf("faultinject: node %s not booted: %s: %w", n.name, op, shard.ErrShardUnavailable)
	}
	return b.local, nil
}

// RegisterItems implements shard.Shard.
func (n *Node) RegisterItems(ctx context.Context, items []model.Item) (bool, error) {
	if err := n.fault("register"); err != nil {
		return false, err
	}
	l, err := n.serving("register")
	if err != nil {
		return false, err
	}
	return l.RegisterItems(ctx, items)
}

// ObserveBatch implements shard.Shard.
func (n *Node) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	if err := n.fault("observe"); err != nil {
		return core.BatchReport{}, err
	}
	l, err := n.serving("observe")
	if err != nil {
		return core.BatchReport{}, err
	}
	return l.ObserveBatch(ctx, batch)
}

// Recommend implements shard.Shard.
func (n *Node) Recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error) {
	if err := n.fault("recommend"); err != nil {
		return core.Result{ItemID: v.ID}, err
	}
	l, err := n.serving("recommend")
	if err != nil {
		return core.Result{ItemID: v.ID}, err
	}
	return l.Recommend(ctx, v, o, b)
}

// Stats implements shard.Shard (zero-valued when killed or blank, like a
// remote shard whose stats call failed).
func (n *Node) Stats() shard.Stats {
	if n.killed.Load() {
		return shard.Stats{Shard: n.idx}
	}
	b := n.boot.Load()
	if b == nil {
		return shard.Stats{Shard: n.idx}
	}
	return b.local.Stats()
}

// Ping implements shard.Pinger under the same contract as the RPC
// client: nil only when reachable AND trained, with the boot epoch.
func (n *Node) Ping(ctx context.Context) (string, error) {
	if err := n.fault("ping"); err != nil {
		return "", err
	}
	b := n.boot.Load()
	if b == nil {
		n.log.add(Entry{Node: n.name, Op: "ping", Fault: "blank"})
		return "", fmt.Errorf("faultinject: node %s not booted: %w", n.name, shard.ErrShardUnavailable)
	}
	if !b.local.Engine().Trained() {
		return "", fmt.Errorf("faultinject: node %s not trained: %w", n.name, shard.ErrShardUnavailable)
	}
	return b.epoch, nil
}

// Handoff implements shard.SnapshotReceiver: re-boots the node from the
// snapshot with a fresh epoch — the POST /shard/v1/snapshot path. The
// fault plane applies: a dropped handoff leaves the node in its previous
// state, exactly like a failed network push.
func (n *Node) Handoff(ctx context.Context, snapshot []byte) error {
	if err := n.fault("handoff"); err != nil {
		return err
	}
	e, err := core.LoadShardFrom(bytes.NewReader(snapshot), n.idx, n.of)
	if err != nil {
		return fmt.Errorf("faultinject: node %s handoff: %w", n.name, err)
	}
	n.Boot(e)
	return nil
}

// Replay implements shard.Replayer — the POST /shard/v1/replay delta
// catch-up path. The fault plane applies; a blank node refuses (it has
// no state to catch up, steering the supervisor to the snapshot path,
// like a shardd's 503). Success mints a fresh epoch, mirroring the
// shardd handler's proof-of-reseed.
func (n *Node) Replay(ctx context.Context, batches []shard.ReplayBatch) error {
	if err := n.fault("replay"); err != nil {
		return err
	}
	l, err := n.serving("replay")
	if err != nil {
		return err
	}
	if !l.Engine().Trained() {
		return fmt.Errorf("faultinject: node %s not trained; needs a snapshot, not a delta: %w", n.name, shard.ErrShardUnavailable)
	}
	if err := l.Replay(ctx, batches); err != nil {
		return err
	}
	b := n.boot.Load()
	if b != nil {
		n.boot.Store(&bootState{local: b.local, epoch: fmt.Sprintf("fi-%s-%d", n.name, n.seq.Add(1))})
	}
	return nil
}

// Snapshot implements shard.SnapshotProvider — the GET /shard/v1/snapshot
// export the supervisor reseeds from.
func (n *Node) Snapshot(ctx context.Context) ([]byte, error) {
	if err := n.fault("snapshot"); err != nil {
		return nil, err
	}
	l, err := n.serving("snapshot")
	if err != nil {
		return nil, err
	}
	return l.Snapshot(ctx)
}

var (
	_ shard.Shard            = (*Node)(nil)
	_ shard.Pinger           = (*Node)(nil)
	_ shard.SnapshotReceiver = (*Node)(nil)
	_ shard.SnapshotProvider = (*Node)(nil)
	_ shard.Replayer         = (*Node)(nil)
)
