// faultinject_test.go is the chaos conformance suite — the tentpole
// acceptance gate of the replica-set machinery. It replays the shared
// deterministic stream through a 2-slot × 2-replica deployment of
// chaos-wrapped nodes while killing one replica PER SLOT mid-replay (at a
// seeded random batch) and reviving it blank a few batches later, with
// the reseed supervisor running. The replay must stay bit-identical to
// the single reference engine with ZERO degraded (shard_unavailable)
// results — shardtest.Replay tb.Fatalf's on ANY ObserveBatch or
// RecommendBatch error, so the zero-degraded assertion is built into the
// harness — and after the stream quiesces every replica must converge
// back to healthy through supervisor auto-reseeds.
//
// With SSREC_FAULT_LOG set, the fault matrix of the kill test is written
// there — the artifact the CI chaos job uploads as proof the run
// exercised real faults.
package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/shardtest"
	"ssrec/internal/sigtree"
)

// chaosDeployment interposes a fault script on the replay's batch
// schedule: before micro-batch k is ingested, script[k] runs (kills,
// revives). Queries pass through untouched.
type chaosDeployment struct {
	r      *shard.Router
	batch  int
	script map[int]func()
}

func (d *chaosDeployment) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	if f, ok := d.script[d.batch]; ok {
		f()
	}
	d.batch++
	return d.r.ObserveBatch(ctx, batch)
}

func (d *chaosDeployment) RecommendBatch(ctx context.Context, items []model.Item, opts ...core.Option) ([]core.Result, error) {
	return d.r.RecommendBatch(ctx, items, opts...)
}

// chaosFleet stands up a slots × replicas deployment of Nodes booted from
// the fixture snapshot via the handoff protocol.
func chaosFleet(t *testing.T, fx *shardtest.Fixture, slots, replicas int, log *Log) (*shard.Router, [][]*Node) {
	t.Helper()
	nodes := make([][]*Node, slots)
	members := make([]shard.Shard, slots)
	for i := 0; i < slots; i++ {
		nodes[i] = make([]*Node, replicas)
		reps := make([]shard.Shard, replicas)
		for j := 0; j < replicas; j++ {
			nodes[i][j] = New(i, slots, fmt.Sprintf("slot%d/replica%d", i, j), int64(100*i+j+1), log)
			reps[j] = nodes[i][j]
		}
		rs, err := shard.NewReplicaSet(i, reps...)
		if err != nil {
			t.Fatalf("replica set %d: %v", i, err)
		}
		members[i] = rs
	}
	r, err := shard.NewRouter(members...)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	if err := r.HandoffSnapshot(context.Background(), fx.Snapshot); err != nil {
		t.Fatalf("boot handoff: %v", err)
	}
	return r, nodes
}

// waitHealthy polls until every replica of every slot reports healthy and
// the router excludes nothing.
func waitHealthy(t *testing.T, r *shard.Router, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		allHealthy := len(r.Down()) == 0
		for _, st := range r.ReplicaHealth() {
			if st.State != "healthy" || st.MissedWrite {
				allHealthy = false
			}
		}
		if allHealthy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged: Down()=%v health=%+v", r.Down(), r.ReplicaHealth())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosReplicaKillAutoReseed is the acceptance run: one replica per
// slot is killed at a seeded random batch mid-replay and revived blank a
// few batches later; the supervisor auto-reseeds; the transcript must be
// bit-identical to the single engine with zero degraded results.
func TestChaosReplicaKillAutoReseed(t *testing.T) {
	fx := shardtest.Load(t)
	maxBatches := 0
	totalBatches := (len(fx.Obs) + shardtest.ReplayBatch - 1) / shardtest.ReplayBatch
	if testing.Short() {
		maxBatches = 16
		totalBatches = 16
	}

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, maxBatches)

	log := &Log{}
	r, nodes := chaosFleet(t, fx, 2, 2, log)

	// Seeded, not hand-picked: the kill point moves with the seed but is
	// reproducible run to run.
	killAt := 1 + rand.New(rand.NewSource(7)).Intn(totalBatches-4)
	reviveAt := killAt + 3
	t.Logf("killing slot0/replica1 and slot1/replica0 before batch %d of %d, reviving blank before batch %d",
		killAt, totalBatches, reviveAt)
	driver := &chaosDeployment{r: r, script: map[int]func(){
		killAt: func() {
			nodes[0][1].Kill()
			nodes[1][0].Kill()
		},
		reviveAt: func() {
			nodes[0][1].Revive() // reachable again but BLANK: only a snapshot handoff restores it
			nodes[1][0].Revive()
		},
	}}

	sup := r.StartSupervisor(25 * time.Millisecond)
	defer sup.Stop()

	// Replay fatals on ANY ObserveBatch/RecommendBatch error, so finishing
	// at all proves zero degraded results while a sibling survived.
	got := fx.Replay(t, driver, maxBatches)
	shardtest.Diff(t, want, got, "chaos replica kill")

	// The stream has quiesced: the supervisor must now converge the
	// revived-blank replicas back to healthy via snapshot auto-reseed.
	waitHealthy(t, r, 15*time.Second)
	st := sup.Stats()
	if st.Reseeds < 2 {
		t.Fatalf("supervisor stats = %+v, want >= 2 reseeds (one per killed replica)", st)
	}
	if log.Count("killed")+log.Count("blank") == 0 {
		t.Fatal("fault log recorded no kill-induced faults; the chaos run was vacuous")
	}

	if path := os.Getenv("SSREC_FAULT_LOG"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatalf("create fault log: %v", err)
		}
		defer f.Close()
		if _, err := log.WriteTo(f); err != nil {
			t.Fatalf("write fault log: %v", err)
		}
		t.Logf("fault matrix (%d entries) written to %s", log.Count(""), path)
	}
}

// TestChaosDeltaReplayCatchUp is the delta catch-up acceptance gate: one
// replica per slot drops every call for a short window mid-replay, so it
// accrues missed-write debt while its state and boot epoch survive
// intact. A single supervisor sweep after the window must heal it by
// streaming just the missed batches over the replay path — WITHOUT
// sourcing a snapshot export and without a snapshot reseed. The healed
// replicas are then proven bit-identical by killing their clean siblings
// and requiring the router's answers to match the reference engine.
func TestChaosDeltaReplayCatchUp(t *testing.T) {
	fx := shardtest.Load(t)
	maxBatches := 24
	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, maxBatches)

	log := &Log{}
	r, nodes := chaosFleet(t, fx, 2, 2, log)
	// Driven manually: a background sweep during the drop window would
	// fail the delta path (pings drop too) and fall back to a snapshot,
	// defeating the thing this test proves.
	sup := shard.NewSupervisor(r, time.Hour)
	defer sup.Stop()

	dropAt, restoreAt := 8, 12
	t.Logf("dropping every call on slot0/replica1 and slot1/replica1 for batches [%d,%d) of %d",
		dropAt, restoreAt, maxBatches)
	driver := &chaosDeployment{r: r, script: map[int]func(){
		dropAt: func() {
			for i := range nodes {
				nodes[i][1].SetFaults(Faults{DropRate: 1})
			}
		},
		restoreAt: func() {
			for i := range nodes {
				nodes[i][1].SetFaults(Faults{})
			}
		},
	}}
	got := fx.Replay(t, driver, maxBatches)
	shardtest.Diff(t, want, got, "chaos delta catch-up")
	if log.Count("drop") == 0 {
		t.Fatal("no drops injected; the run proved nothing")
	}

	ctx := context.Background()
	sup.Sweep(ctx)
	st := sup.Stats()
	if st.DeltaReseeds < 2 {
		t.Fatalf("supervisor stats = %+v, want >= 2 delta reseeds (one per dropped replica)", st)
	}
	if st.SnapshotExports != 0 {
		t.Fatalf("supervisor sourced %d snapshot exports; an all-delta sweep must export none (stats %+v)",
			st.SnapshotExports, st)
	}
	if st.Reseeds != 0 {
		t.Fatalf("supervisor did %d snapshot reseeds; the stale replicas should have delta-healed (stats %+v)",
			st.Reseeds, st)
	}
	for _, h := range r.ReplicaHealth() {
		if h.State != "healthy" || h.MissedWrite {
			t.Fatalf("replica slot%d/replica%d = %+v after delta sweep, want healthy", h.Slot, h.Replica, h)
		}
	}

	// Exactness of the healed state: kill the replicas that never missed a
	// write, so only the delta-healed ones can answer, and require their
	// rankings to match the reference engine bit for bit.
	nodes[0][0].Kill()
	nodes[1][0].Kill()
	q := fx.Queries[:2*shardtest.ReplayQueryLen]
	wantRes, err := reference.RecommendBatch(ctx, q, core.WithK(shardtest.ReplayK))
	if err != nil {
		t.Fatalf("reference recommend: %v", err)
	}
	gotRes, err := r.RecommendBatch(ctx, q, core.WithK(shardtest.ReplayK))
	if err != nil {
		t.Fatalf("healed-replica recommend: %v", err)
	}
	for i := range wantRes {
		wantRes[i].Stats = sigtree.SearchStats{} // traversal counters vary with scatter order
		gotRes[i].Stats = sigtree.SearchStats{}
	}
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Fatalf("delta-healed replicas diverged from reference:\n got %+v\nwant %+v", gotRes, wantRes)
	}
}

// TestChaosRandomDropsStayExact injects seeded random drops and latency
// spikes into ONE replica per slot (its sibling stays clean, so the slot
// never loses quorum) and asserts the replay is still bit-identical with
// zero degraded results — the EWMA read balancing and per-replica
// exclusion absorb the noise.
func TestChaosRandomDropsStayExact(t *testing.T) {
	fx := shardtest.Load(t)
	maxBatches := 24
	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, maxBatches)

	log := &Log{}
	r, nodes := chaosFleet(t, fx, 2, 2, log)
	for i := range nodes {
		nodes[i][1].SetFaults(Faults{
			DropRate:   0.08,
			SpikeRate:  0.10,
			SpikeDelay: 2 * time.Millisecond,
		})
	}
	sup := r.StartSupervisor(25 * time.Millisecond)
	defer sup.Stop()

	got := fx.Replay(t, &chaosDeployment{r: r}, maxBatches)
	shardtest.Diff(t, want, got, "chaos random drops")

	if log.Count("drop") == 0 {
		t.Fatal("no drops injected; the run proved nothing")
	}
	waitHealthy(t, r, 15*time.Second)
}
