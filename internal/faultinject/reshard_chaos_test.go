// reshard_chaos_test.go is the chaos column of the online-resharding
// gate: a replicated 2-slot × 2-replica deployment of chaos-wrapped
// nodes splits LIVE to 4 in-process shards mid-replay while one replica
// of the OLD fleet is killed in the middle of the migration. The replay
// must stay bit-identical to the single reference engine with ZERO
// degraded results — the surviving sibling covers reads and writes, the
// migration sources its snapshot and catch-up from healthy state, and
// the flip retires the wounded fleet entirely.
package faultinject

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/shard"
	"ssrec/internal/shardtest"
)

// TestChaosReshardReplicaKill kills one old-fleet replica during a live
// 2→4 split and requires a bit-identical, zero-degraded transcript.
func TestChaosReshardReplicaKill(t *testing.T) {
	fx := shardtest.Load(t)
	maxBatches := 0
	totalBatches := (len(fx.Obs) + shardtest.ReplayBatch - 1) / shardtest.ReplayBatch
	joinAfter := 6
	if testing.Short() {
		maxBatches = 16
		totalBatches = 16
		joinAfter = 4
	}

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, maxBatches)

	log := &Log{}
	r, nodes := chaosFleet(t, fx, 2, 2, log)
	sup := r.StartSupervisor(25 * time.Millisecond)
	defer sup.Stop()

	// Seeded boundaries: the split starts mid-stream, the kill lands
	// right after it (while the new fleet is still seeding — in-process
	// engine boots take far longer than one micro-batch), and the join a
	// few batches later proves the migration overlapped live traffic.
	splitAt := 1 + rand.New(rand.NewSource(31)).Intn(totalBatches/2)
	joinAt := splitAt + joinAfter
	if joinAt >= totalBatches {
		t.Fatalf("schedule overflow: join %d of %d batches", joinAt, totalBatches)
	}
	t.Logf("splitting 2→4 before batch %d of %d, killing slot1/replica0 at batch %d, joining before batch %d",
		splitAt, totalBatches, splitAt+1, joinAt)

	var reshardErr error
	done := make(chan struct{})
	driver := &chaosDeployment{r: r, script: map[int]func(){
		splitAt: func() {
			go func() { defer close(done); reshardErr = r.Reshard(t.Context(), 4) }()
		},
		splitAt + 1: func() {
			nodes[1][0].Kill() // an old-fleet replica dies mid-migration
		},
		joinAt: func() {
			<-done
			if reshardErr != nil {
				t.Fatalf("split under replica kill: %v", reshardErr)
			}
			if got := r.Shards(); got != 4 {
				t.Fatalf("post-split width %d, want 4", got)
			}
		},
	}}

	// Replay fatals on ANY ObserveBatch/RecommendBatch error, so finishing
	// at all proves zero degraded results throughout the migration.
	got := fx.Replay(t, driver, maxBatches)
	shardtest.Diff(t, want, got, "chaos reshard replica kill")

	st := r.ReshardStatus()
	if st.Active || st.Phase != shard.ReshardPhaseDone || st.Completed != 1 {
		t.Fatalf("final reshard status %+v, want idle done with 1 completed", st)
	}
	// The flip retired the wounded replicated fleet: the new in-process
	// fleet has plain unreplicated shards, all healthy.
	if rep := r.Replicas(); rep != 1 {
		t.Fatalf("post-flip replication factor %d, want 1", rep)
	}
	for _, rs := range r.ReplicaHealth() {
		if rs.State != "healthy" {
			t.Fatalf("post-flip slot %d replica %d state %q, want healthy", rs.Slot, rs.Replica, rs.State)
		}
	}
	if down := r.Down(); len(down) != 0 {
		t.Fatalf("post-flip fleet excludes shards %v", down)
	}
	if log.Count("killed") == 0 {
		t.Fatal("fault log recorded no kill-induced faults; the chaos run was vacuous")
	}
}
