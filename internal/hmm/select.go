package hmm

// EvaluateNextPrediction measures next-symbol prediction accuracy of a
// trained model over the suffix of seq starting at position start: for each
// position t ≥ start, the model predicts argmax P(o_t | o_0..o_{t-1}) and
// scores a hit when it matches seq[t]. This is the Accuracy metric of the
// Fig. 5 experiment (Zhou et al., ICDE 2019, §VI-C1).
func EvaluateNextPrediction(m *Model, seq []int, start int) float64 {
	if start < 1 {
		start = 1
	}
	if start >= len(seq) {
		return 0
	}
	hits := 0
	for t := start; t < len(seq); t++ {
		p := m.PredictNext(seq[:t])
		if argmax(p) == seq[t] {
			hits++
		}
	}
	return float64(hits) / float64(len(seq)-start)
}

// SelectStates picks the optimal hidden-state count per the paper's
// protocol: the first 80% of the user's history trains the model, the last
// 20% tests next-symbol accuracy; state counts 1..maxStates are tried and
// the count with the peak accuracy wins (ties broken toward fewer states).
// It returns the chosen count, the trained model and its test accuracy.
func SelectStates(seq []int, maxStates, m int, seed int64, opts TrainOptions) (int, *Model, float64) {
	if maxStates < 1 {
		maxStates = 1
	}
	split := len(seq) * 8 / 10
	if split < 2 {
		split = len(seq) - 1
	}
	if split < 1 {
		return 1, New(1, m), 0
	}
	train := [][]int{seq[:split]}
	bestN, bestAcc := 1, -1.0
	var bestModel *Model
	for n := 1; n <= maxStates; n++ {
		h, _, err := Fit(n, m, train, seed+int64(n), opts)
		if err != nil {
			continue
		}
		acc := EvaluateNextPrediction(h, seq, split)
		if acc > bestAcc {
			bestN, bestAcc, bestModel = n, acc, h
		}
	}
	if bestModel == nil {
		bestModel = New(1, m)
		bestAcc = 0
	}
	return bestN, bestModel, bestAcc
}

func argmax(p []float64) int {
	best, arg := p[0], 0
	for i, v := range p {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}
